package twoview

import "context"

// This file is the v1 compatibility layer: the pre-context mining and
// apply signatures, kept for exactly one release so that downstream
// code migrates on its own schedule. Each wrapper runs its v2
// counterpart on context.Background() — no cancellation, no deadline —
// and produces bit-identical results. See README.md, "Migrating to the
// v2 API", for the rename table. The wrappers will be removed in the
// release after next.

// MineExactV1 is the v1 MineExact signature.
//
// Deprecated: use MineExact(ctx, d, opt); it adds cancellation and an
// error return. Behaviour on context.Background() is identical.
func MineExactV1(d *Dataset, opt ExactOptions) *Result {
	res, _ := MineExact(context.Background(), d, opt)
	return res
}

// MineSelectV1 is the v1 MineSelect signature.
//
// Deprecated: use MineSelect(ctx, d, cands, opt).
func MineSelectV1(d *Dataset, cands []Candidate, opt SelectOptions) *Result {
	res, _ := MineSelect(context.Background(), d, cands, opt)
	return res
}

// MineGreedyV1 is the v1 MineGreedy signature.
//
// Deprecated: use MineGreedy(ctx, d, cands, opt).
func MineGreedyV1(d *Dataset, cands []Candidate, opt GreedyOptions) *Result {
	res, _ := MineGreedy(context.Background(), d, cands, opt)
	return res
}

// MineCandidatesV1 is the v1 MineCandidates signature.
//
// Deprecated: use MineCandidates(ctx, d, minSupport, maxResults, par).
func MineCandidatesV1(d *Dataset, minSupport, maxResults int, par ParallelOptions) ([]Candidate, error) {
	return MineCandidates(context.Background(), d, minSupport, maxResults, par)
}

// MineCandidatesCappedV1 is the v1 MineCandidatesCapped signature.
//
// Deprecated: use MineCandidatesCapped(ctx, d, minSupport, maxResults, par).
func MineCandidatesCappedV1(d *Dataset, minSupport, maxResults int, par ParallelOptions) ([]Candidate, int, error) {
	return MineCandidatesCapped(context.Background(), d, minSupport, maxResults, par)
}

// ApplyV1 is the v1 Apply signature. It panics on a table that does not
// validate against d — v1 surfaced the same misuse as an opaque panic
// inside the translation walk.
//
// Deprecated: use Apply(ctx, d, t, from), or CompileTranslator + the
// Translator methods when applying the same table repeatedly.
func ApplyV1(d *Dataset, t *Table, from View) ApplyReport {
	rep, err := Apply(context.Background(), d, t, from)
	if err != nil {
		panic(err)
	}
	return rep
}

// MineAllPairsV1 is the v1 MineAllPairs signature.
//
// Deprecated: use MineAllPairs(ctx, d, opt).
func MineAllPairsV1(d *MultiDataset, opt MultiOptions) ([]PairResult, error) {
	return MineAllPairs(context.Background(), d, opt)
}
