// Benchmarks regenerating each table and figure of the paper on reduced-
// scale synthetic analogues (one benchmark per experiment; `go run
// ./cmd/experiments -list` is the experiment index). Dataset
// construction happens outside the timed loop; each iteration performs
// the full mining/evaluation work of the experiment.
package twoview_test

import (
	"context"
	"io"
	"testing"

	"twoview"
	"twoview/internal/baseline/assoc"
	"twoview/internal/baseline/krimp"
	"twoview/internal/baseline/reremi"
	"twoview/internal/baseline/sigrules"
	"twoview/internal/core"
	"twoview/internal/eval"
	"twoview/internal/mdl"
	"twoview/internal/synth"
)

// benchData materializes a profile at bench scale, with candidates.
func benchData(b *testing.B, name string, scale float64) (*twoview.Dataset, []twoview.Candidate, synth.Profile) {
	b.Helper()
	p, err := synth.ProfileByName(name)
	if err != nil {
		b.Fatal(err)
	}
	sp := p.Scaled(scale)
	d, _, err := synth.Generate(sp)
	if err != nil {
		b.Fatal(err)
	}
	cands, err := core.MineCandidates(context.Background(), d, sp.MinSupport, 0, core.ParallelOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return d, cands, sp
}

// --- Table 1: dataset properties ---

func BenchmarkTable1Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := eval.RunTable1(context.Background(), io.Discard, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 2 (top): search strategy comparison on small datasets ---

func BenchmarkTable2SmallExact(b *testing.B) {
	// Unbounded EXACT on wide/dense datasets takes hours (Table 2's
	// point; the paper could not run it on the large group at all); the
	// bench measures the first 5 exact iterations on the narrow
	// small-group datasets.
	for _, name := range []string{"car", "tictactoe", "yeast"} {
		b.Run(name, func(b *testing.B) {
			p, _ := synth.ProfileByName(name)
			d, _, err := synth.Generate(p.Scaled(0.1))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, _ := twoview.MineExact(context.Background(), d, twoview.ExactOptions{MaxRules: 5})
				if res.Table.Size() == 0 {
					b.Fatal("no rules")
				}
			}
		})
	}
}

func BenchmarkTable2SmallSelect1(b *testing.B) {
	benchSelect(b, 1)
}

func BenchmarkTable2SmallSelect25(b *testing.B) {
	benchSelect(b, 25)
}

func benchSelect(b *testing.B, k int) {
	for _, name := range []string{"car", "tictactoe", "yeast"} {
		b.Run(name, func(b *testing.B) {
			d, cands, _ := benchData(b, name, 0.25)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, _ := twoview.MineSelect(context.Background(), d, cands, twoview.SelectOptions{K: k})
				if res.Table.Size() == 0 {
					b.Fatal("no rules")
				}
			}
		})
	}
}

func BenchmarkTable2SmallGreedy(b *testing.B) {
	for _, name := range []string{"car", "tictactoe", "yeast"} {
		b.Run(name, func(b *testing.B) {
			d, cands, _ := benchData(b, name, 0.25)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, _ := twoview.MineGreedy(context.Background(), d, cands, twoview.GreedyOptions{})
				if res.Table.Size() == 0 {
					b.Fatal("no rules")
				}
			}
		})
	}
}

// --- Table 2 (bottom): candidate-based search on large datasets ---

func BenchmarkTable2LargeSelect1(b *testing.B) {
	for _, name := range []string{"house", "cal500", "mammals"} {
		b.Run(name, func(b *testing.B) {
			d, cands, _ := benchData(b, name, 0.25)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				twoview.MineSelect(context.Background(), d, cands, twoview.SelectOptions{K: 1})
			}
		})
	}
}

func BenchmarkTable2CandidateMining(b *testing.B) {
	d, _, sp := benchData(b, "house", 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MineCandidates(context.Background(), d, sp.MinSupport, 0, core.ParallelOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 3: baselines under the translation encoding ---

func BenchmarkTable3Translator(b *testing.B) {
	d, cands, _ := benchData(b, "house", 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := twoview.MineSelect(context.Background(), d, cands, twoview.SelectOptions{K: 1})
		twoview.Summarize(d, res)
	}
}

func BenchmarkTable3Sigrules(b *testing.B) {
	d, _, sp := benchData(b, "house", 0.5)
	coder := mdl.NewCoder(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rules, err := sigrules.Mine(d, sigrules.Options{MinSupport: sp.MinSupport, Seed: sp.Seed})
		if err != nil {
			b.Fatal(err)
		}
		eval.Evaluate(d, coder, sigrules.ToTable(rules))
	}
}

func BenchmarkTable3Reremi(b *testing.B) {
	d, _, sp := benchData(b, "house", 0.5)
	coder := mdl.NewCoder(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rds := reremi.Mine(d, reremi.Options{MinSupport: sp.MinSupport})
		eval.Evaluate(d, coder, reremi.ToTable(rds))
	}
}

func BenchmarkTable3Krimp(b *testing.B) {
	d, _, _ := benchData(b, "house", 0.25)
	coder := mdl.NewCoder(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := krimp.Mine(d, krimp.Options{MinSupport: 4})
		if err != nil {
			b.Fatal(err)
		}
		tab, _ := krimp.ToTranslationTable(res, d)
		eval.Evaluate(d, coder, tab)
	}
}

// BenchmarkTable3AssocExplosion measures the raw cross-view association
// rule count (§6.3's pattern-explosion observation).
func BenchmarkTable3AssocExplosion(b *testing.B) {
	d, _, _ := benchData(b, "house", 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assoc.Count(d, assoc.Options{MinSupport: 2, MinConfidence: 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 2: table construction trace ---

func BenchmarkFig2House(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFig2(context.Background(), io.Discard, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 3: DOT visualization ---

func BenchmarkFig3Dot(b *testing.B) {
	d, cands, _ := benchData(b, "house", 0.5)
	res, _ := twoview.MineSelect(context.Background(), d, cands, twoview.SelectOptions{K: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := twoview.WriteDot(io.Discard, d, res.Table, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figs. 4-7: example-rule extraction ---

func BenchmarkFig4to7ExampleRules(b *testing.B) {
	d, cands, _ := benchData(b, "house", 0.5)
	res, _ := twoview.MineSelect(context.Background(), d, cands, twoview.SelectOptions{K: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		twoview.TopRules(d, res.Table, 3)
	}
}

// --- Extension X1: recovery ---

func BenchmarkRecovery(b *testing.B) {
	p, _ := synth.ProfileByName("car")
	for i := 0; i < b.N; i++ {
		if err := eval.RunRecovery(context.Background(), io.Discard, 0.2, []synth.Profile{p}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension X2: pruning ablation ---

func BenchmarkExactPruningOn(b *testing.B) {
	p, _ := synth.ProfileByName("car")
	d, _, err := synth.Generate(p.Scaled(0.25))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		twoview.MineExact(context.Background(), d, twoview.ExactOptions{MaxRules: 2})
	}
}

func BenchmarkExactPruningOff(b *testing.B) {
	p, _ := synth.ProfileByName("car")
	d, _, err := synth.Generate(p.Scaled(0.25))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		twoview.MineExact(context.Background(), d, twoview.ExactOptions{MaxRules: 2, DisableRub: true, DisableQub: true})
	}
}

// --- Extension X3: parallel exact search ablation ---

// BenchmarkMineExact crosses worker count (serial vs GOMAXPROCS pool)
// with the §5.2 pruning bounds; the serial/parallel ratio is the
// headline speedup of the parallel branch-and-bound search.
func BenchmarkMineExact(b *testing.B) {
	p, _ := synth.ProfileByName("car")
	d, _, err := synth.Generate(p.Scaled(0.25))
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		opt  twoview.ExactOptions
	}{
		{"serial", twoview.ExactOptions{MaxRules: 2, ParallelOptions: twoview.Parallel(1)}},
		{"parallel", twoview.ExactOptions{MaxRules: 2}},
		{"serial-nobounds", twoview.ExactOptions{MaxRules: 2, DisableRub: true, DisableQub: true, ParallelOptions: twoview.Parallel(1)}},
		{"parallel-nobounds", twoview.ExactOptions{MaxRules: 2, DisableRub: true, DisableQub: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, _ := twoview.MineExact(context.Background(), d, cfg.opt)
				if res.Table.Size() == 0 {
					b.Fatal("no rules")
				}
			}
		})
	}
}
