// Command translator mines a translation table from a two-view dataset
// file using one of the three TRANSLATOR algorithms and prints the rules
// and compression statistics.
//
// Usage:
//
//	translator -in data.tv [-algo select|exact|greedy] [-k 1] [-minsup 1]
//	           [-max-rules 0] [-workers 0] [-trace] [-dot out.dot]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/eval"
	"twoview/internal/mdl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("translator: ")

	var (
		in       = flag.String("in", "", "input dataset file (required)")
		algo     = flag.String("algo", "select", "algorithm: exact, select or greedy")
		k        = flag.Int("k", 1, "rules per iteration for select")
		minsup   = flag.Int("minsup", 1, "minimum candidate support for select/greedy")
		maxRules = flag.Int("max-rules", 0, "stop after this many rules (0 = MDL stopping only)")
		workers  = flag.Int("workers", 0, "worker goroutines for search and candidate mining (0 = GOMAXPROCS, 1 = serial); results are identical")
		trace    = flag.Bool("trace", false, "print each iteration as it happens")
		dotOut   = flag.String("dot", "", "also write a Graphviz visualization to this file")
		saveOut  = flag.String("save", "", "write the mined translation table to this file")
		loadIn   = flag.String("load", "", "apply a stored translation table instead of mining")
		quality  = flag.Bool("quality", false, "print lift/leverage/Jaccard per rule")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	d, err := dataset.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	st := d.Stats()
	fmt.Printf("dataset: %d transactions, %d+%d items, densities %.3f/%.3f\n",
		st.Size, st.ItemsL, st.ItemsR, st.DensityL, st.DensityR)

	if *loadIn != "" {
		tab, err := core.ReadTableFile(*loadIn, d)
		if err != nil {
			log.Fatal(err)
		}
		m := eval.Evaluate(d, mdl.NewCoder(d), tab)
		fmt.Printf("loaded %d rules from %s\n", tab.Size(), *loadIn)
		fmt.Printf("L%% = %.2f, |C|%% = %.2f, avg c+ = %.2f\n", m.LPct, m.CorrPct, m.AvgConf)
		for _, from := range []dataset.View{dataset.Left, dataset.Right} {
			rep := core.Apply(d, tab, from)
			fmt.Printf("translate %v→%v: %d items produced, %d uncovered, %d errors (of %d cells)\n",
				from, from.Opposite(), rep.TranslatedOnes, rep.Uncovered, rep.Errors, rep.Cells)
		}
		return
	}

	var tracer core.TraceFunc
	if *trace {
		tracer = func(it core.IterationStats) {
			fmt.Printf("  it %3d: gain %8.2f  score %10.2f  %s\n",
				it.Iteration, it.Gain, it.Score, it.Rule.Format(d))
		}
	}

	// Candidate mining and the miner share one persistent worker
	// session (parked workers, no per-round goroutine launches).
	sess := core.NewSession()
	defer sess.Close()
	par := core.ParallelOptions{Workers: *workers, Session: sess}
	var res *core.Result
	switch *algo {
	case "exact":
		res = core.MineExact(d, core.ExactOptions{MaxRules: *maxRules, Trace: tracer, ParallelOptions: par})
	case "select", "greedy":
		cands, err := core.MineCandidates(d, *minsup, 0, par)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("candidates: %d closed two-view itemsets (minsup %d)\n", len(cands), *minsup)
		if *algo == "select" {
			res = core.MineSelect(d, cands, core.SelectOptions{K: *k, MaxRules: *maxRules, Trace: tracer, ParallelOptions: par})
		} else {
			res = core.MineGreedy(d, cands, core.GreedyOptions{MaxRules: *maxRules, Trace: tracer, ParallelOptions: par})
		}
	default:
		log.Fatalf("unknown algorithm %q", *algo)
	}

	m := eval.FromResult(d, res)
	fmt.Printf("\ntranslation table (%d rules, found in %v):\n", m.NumRules, res.Runtime)
	if *quality {
		for _, q := range eval.QualityTable(d, res.Table) {
			fmt.Printf("  %-70s supp=%-6d c+=%.2f lift=%.2f lev=%+.3f jac=%.2f\n",
				q.Rule.Format(d), q.Supp, q.Conf, q.Lift, q.Leverage, q.Jaccard)
		}
	} else {
		for _, rs := range eval.TopRules(d, res.Table, res.Table.Size()) {
			fmt.Printf("  %-70s supp=%-6d c+=%.2f\n", rs.Rule.Format(d), rs.Supp, rs.Conf)
		}
	}
	fmt.Printf("\nL%%   = %.2f (compressed/uncompressed)\n", m.LPct)
	fmt.Printf("|C|%% = %.2f (correction ones / cells)\n", m.CorrPct)
	fmt.Printf("avg rule length = %.2f items, avg c+ = %.2f\n", m.AvgLen, m.AvgConf)

	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := eval.WriteDot(f, d, res.Table, *in); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *dotOut)
	}
	if *saveOut != "" {
		if err := core.WriteTableFile(*saveOut, d, res.Table); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (reload with -load)\n", *saveOut)
	}
}
