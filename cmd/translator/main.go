// Command translator mines a translation table from a two-view dataset
// file using one of the three TRANSLATOR algorithms and prints the rules
// and compression statistics.
//
// Usage:
//
//	translator -in data.tv [-algo select|exact|greedy] [-k 1] [-minsup 1]
//	           [-max-rules 0] [-workers 0] [-shards 0] [-shard-addrs host:port,...]
//	           [-trace] [-dot out.dot]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"strings"

	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/eval"
	"twoview/internal/mdl"
	"twoview/internal/shutdown"

	// Arm the -shards flag (registers the sharded engine with core).
	_ "twoview/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("translator: ")

	var (
		in       = flag.String("in", "", "input dataset file (required)")
		algo     = flag.String("algo", "select", "algorithm: exact, select or greedy")
		k        = flag.Int("k", 1, "rules per iteration for select")
		minsup   = flag.Int("minsup", 1, "minimum candidate support for select/greedy")
		maxRules = flag.Int("max-rules", 0, "stop after this many rules (0 = MDL stopping only)")
		workers  = flag.Int("workers", 0, "worker goroutines for search and candidate mining (0 = GOMAXPROCS, 1 = serial); results are identical")
		shards   = flag.Int("shards", 0, "item-range shards for the supervised sharded engine (0 = monolithic); results are identical")
		shardAt  = flag.String("shard-addrs", "", "comma-separated shardworker addresses; partitions run in those daemons over TCP instead of in-process (implies -shards len(addrs) when -shards is 0); results are identical")
		trace    = flag.Bool("trace", false, "print each iteration as it happens")
		dotOut   = flag.String("dot", "", "also write a Graphviz visualization to this file")
		saveOut  = flag.String("save", "", "write the mined translation table to this file")
		loadIn   = flag.String("load", "", "apply a stored translation table instead of mining")
		quality  = flag.Bool("quality", false, "print lift/leverage/Jaccard per rule")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the mining context: a long mine unwinds at
	// the next search checkpoint and the partial table is still printed
	// (and saved with -save) instead of the process being killed.
	ctx, stop := shutdown.NotifyContext(context.Background())
	defer stop()

	d, err := dataset.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	st := d.Stats()
	fmt.Printf("dataset: %d transactions, %d+%d items, densities %.3f/%.3f\n",
		st.Size, st.ItemsL, st.ItemsR, st.DensityL, st.DensityR)

	if *loadIn != "" {
		tab, err := core.ReadTableFile(*loadIn, d)
		if err != nil {
			log.Fatal(err)
		}
		m := eval.Evaluate(d, mdl.NewCoder(d), tab)
		fmt.Printf("loaded %d rules from %s\n", tab.Size(), *loadIn)
		fmt.Printf("L%% = %.2f, |C|%% = %.2f, avg c+ = %.2f\n", m.LPct, m.CorrPct, m.AvgConf)
		// Compile once, apply in both directions — the serving path.
		tr, err := core.CompileTranslator(d, tab)
		if err != nil {
			log.Fatal(err)
		}
		for _, from := range []dataset.View{dataset.Left, dataset.Right} {
			rep, err := tr.Apply(ctx, d, from)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("translate %v→%v: %d items produced, %d uncovered, %d errors (of %d cells)\n",
				from, from.Opposite(), rep.TranslatedOnes, rep.Uncovered, rep.Errors, rep.Cells)
		}
		return
	}

	var tracer core.TraceFunc
	if *trace {
		tracer = func(it core.IterationStats) {
			fmt.Printf("  it %3d: gain %8.2f  score %10.2f  %s\n",
				it.Iteration, it.Gain, it.Score, it.Rule.Format(d))
		}
	}

	// Candidate mining and the miner share one persistent worker
	// session (parked workers, no per-round goroutine launches).
	sess := core.NewSession()
	defer sess.Close()
	par := core.ParallelOptions{Workers: *workers, Shards: *shards, ShardAddrs: splitAddrs(*shardAt), Session: sess}
	var res *core.Result
	var mineErr error
	switch *algo {
	case "exact":
		res, mineErr = core.MineExact(ctx, d, core.ExactOptions{MaxRules: *maxRules, Trace: tracer, ParallelOptions: par})
	case "select", "greedy":
		cands, err := core.MineCandidates(ctx, d, *minsup, 0, par)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				log.Fatal("interrupted during candidate mining; nothing to report")
			}
			log.Fatal(err)
		}
		fmt.Printf("candidates: %d closed two-view itemsets (minsup %d)\n", len(cands), *minsup)
		if *algo == "select" {
			res, mineErr = core.MineSelect(ctx, d, cands, core.SelectOptions{K: *k, MaxRules: *maxRules, Trace: tracer, ParallelOptions: par})
		} else {
			res, mineErr = core.MineGreedy(ctx, d, cands, core.GreedyOptions{MaxRules: *maxRules, Trace: tracer, ParallelOptions: par})
		}
	default:
		log.Fatalf("unknown algorithm %q", *algo)
	}
	// Mining is over: restore default signal handling so a second
	// Ctrl-C during the reporting below kills the process normally
	// instead of being swallowed by the (now useless) cancel context.
	stop()
	if mineErr != nil {
		if !errors.Is(mineErr, context.Canceled) {
			log.Fatal(mineErr)
		}
		// A cancelled mine still returns everything found so far; say so
		// and report the partial table like a completed one.
		fmt.Printf("\ninterrupted: partial table with the %d rules mined so far\n", res.Table.Size())
	}

	m := eval.FromResult(d, res)
	fmt.Printf("\ntranslation table (%d rules, found in %v):\n", m.NumRules, res.Runtime)
	if *quality {
		for _, q := range eval.QualityTable(d, res.Table) {
			fmt.Printf("  %-70s supp=%-6d c+=%.2f lift=%.2f lev=%+.3f jac=%.2f\n",
				q.Rule.Format(d), q.Supp, q.Conf, q.Lift, q.Leverage, q.Jaccard)
		}
	} else {
		for _, rs := range eval.TopRules(d, res.Table, res.Table.Size()) {
			fmt.Printf("  %-70s supp=%-6d c+=%.2f\n", rs.Rule.Format(d), rs.Supp, rs.Conf)
		}
	}
	fmt.Printf("\nL%%   = %.2f (compressed/uncompressed)\n", m.LPct)
	fmt.Printf("|C|%% = %.2f (correction ones / cells)\n", m.CorrPct)
	fmt.Printf("avg rule length = %.2f items, avg c+ = %.2f\n", m.AvgLen, m.AvgConf)

	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := eval.WriteDot(f, d, res.Table, *in); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *dotOut)
	}
	if *saveOut != "" {
		if err := core.WriteTableFile(*saveOut, d, res.Table); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (reload with -load)\n", *saveOut)
	}
}

// splitAddrs parses the -shard-addrs comma list, dropping empty entries
// so a trailing comma is harmless.
func splitAddrs(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}
