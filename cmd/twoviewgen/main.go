// Command twoviewgen generates synthetic two-view datasets, either from
// one of the fourteen calibrated paper profiles or from explicit
// dimensions, and writes them in the text format understood by the other
// tools.
//
// Usage:
//
//	twoviewgen -profile house -out house.tv
//	twoviewgen -size 1000 -items-l 20 -items-r 30 -density-l 0.2 \
//	           -density-r 0.1 -bidir 4 -uni 6 -seed 7 -out data.tv
//	twoviewgen -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"twoview/internal/dataset"
	"twoview/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("twoviewgen: ")

	var (
		profile  = flag.String("profile", "", "paper profile name (see -list)")
		fromCSV  = flag.String("from-csv", "", "convert a headered CSV file instead of synthesizing")
		fromARFF = flag.String("from-arff", "", "convert a dense ARFF file instead of synthesizing")
		bins     = flag.Int("bins", 5, "equal-height bins per numeric attribute (conversion)")
		maxFreq  = flag.Float64("max-freq", 0, "drop items above this frequency, e.g. 0.5 (conversion)")
		list     = flag.Bool("list", false, "list available profiles and exit")
		out      = flag.String("out", "", "output file (default: stdout)")
		scale    = flag.Float64("scale", 1, "scale the number of transactions")
		truth    = flag.String("truth", "", "also write the planted ground-truth rules to this file")
		size     = flag.Int("size", 1000, "transactions (custom profile)")
		itemsL   = flag.Int("items-l", 20, "left items (custom profile)")
		itemsR   = flag.Int("items-r", 20, "right items (custom profile)")
		densityL = flag.Float64("density-l", 0.2, "left density (custom profile)")
		densityR = flag.Float64("density-r", 0.2, "right density (custom profile)")
		bidir    = flag.Int("bidir", 4, "planted bidirectional rules (custom profile)")
		uni      = flag.Int("uni", 4, "planted unidirectional rules (custom profile)")
		seed     = flag.Int64("seed", 1, "random seed (custom profile)")
	)
	flag.Parse()

	if *list {
		fmt.Println("available profiles (|D|, |I_L|, |I_R|, d_L, d_R):")
		for _, p := range synth.Profiles() {
			fmt.Printf("  %-10s %6d %4d %4d  %.3f %.3f\n",
				p.Name, p.Size, p.ItemsL, p.ItemsR, p.DensityL, p.DensityR)
		}
		return
	}

	if *fromCSV != "" || *fromARFF != "" {
		d, err := convert(*fromCSV, *fromARFF, *bins, *maxFreq)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeDataset(d, *out); err != nil {
			log.Fatal(err)
		}
		if *out != "" {
			st := d.Stats()
			fmt.Printf("wrote %s: %d transactions, %d+%d items, densities %.3f/%.3f\n",
				*out, st.Size, st.ItemsL, st.ItemsR, st.DensityL, st.DensityR)
		}
		return
	}

	var p synth.Profile
	if *profile != "" {
		var err error
		if p, err = synth.ProfileByName(*profile); err != nil {
			log.Fatal(err)
		}
	} else {
		p = synth.Profile{
			Name: "custom", Size: *size, ItemsL: *itemsL, ItemsR: *itemsR,
			DensityL: *densityL, DensityR: *densityR,
			BidirRules: *bidir, UniRules: *uni, Seed: *seed,
		}
	}
	if *scale != 1 {
		p = p.Scaled(*scale)
	}

	d, rules, err := synth.Generate(p)
	if err != nil {
		log.Fatal(err)
	}
	if err := writeDataset(d, *out); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		st := d.Stats()
		fmt.Printf("wrote %s: %d transactions, %d+%d items, densities %.3f/%.3f, %d planted rules\n",
			*out, st.Size, st.ItemsL, st.ItemsR, st.DensityL, st.DensityR, len(rules))
	}

	if *truth != "" {
		f, err := os.Create(*truth)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rules {
			fmt.Fprintf(f, "%s\n", r.Format(d))
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d ground-truth rules\n", *truth, len(rules))
	}
}

// convert ingests a CSV or ARFF file through the paper's preprocessing
// pipeline (equal-height bins, categorical expansion, density-balanced
// view split).
func convert(csvPath, arffPath string, bins int, maxFreq float64) (*dataset.Dataset, error) {
	var cols []*dataset.Column
	path := csvPath
	if arffPath != "" {
		path = arffPath
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if arffPath != "" {
		cols, err = dataset.LoadARFF(f)
	} else {
		cols, err = dataset.LoadCSV(f)
	}
	if err != nil {
		return nil, err
	}
	return dataset.Ingest(cols, dataset.BooleanizeOptions{Bins: bins, MaxFrequency: maxFreq})
}

func writeDataset(d *dataset.Dataset, out string) error {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return dataset.Write(w, d)
}
