// Command twovet is the repo's multichecker: it runs the custom
// static-analysis suite of internal/lint (detorder, ctxprobe,
// freelistown, nowallclock, scratchescape) over the module, next to
// `go vet` and staticcheck in CI.
//
// Usage:
//
//	go run ./cmd/twovet ./...          # lint the module (CI invocation)
//	go run ./cmd/twovet -list          # print the registered analyzers
//	go run ./cmd/twovet <dir>          # lint one directory (testdata fixtures included)
//
// twovet must run from the module root: type checking resolves module
// import paths through the go command. Exit status: 0 clean, 1
// findings, 2 load/usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"twoview/internal/lint"
)

func main() {
	os.Exit(run(os.Stdout, os.Args[1:]))
}

func run(w io.Writer, args []string) int {
	fs := flag.NewFlagSet("twovet", flag.ContinueOnError)
	list := fs.Bool("list", false, "print the registered analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: twovet [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(w, "%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := &lint.Loader{}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "twovet:", err)
		return 2
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "twovet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(w, "twovet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
