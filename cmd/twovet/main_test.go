package main

import (
	"bytes"
	"strings"
	"testing"

	"twoview/internal/lint"
)

// TestRegistryComplete pins the multichecker's analyzer set: an
// analyzer silently falling out of lint.All() would disarm its
// invariant without any test noticing, so the roster itself is a
// contract.
func TestRegistryComplete(t *testing.T) {
	want := []string{"ctxprobe", "detorder", "freelistown", "nowallclock", "scratchescape"}
	all := lint.All()
	if len(all) != len(want) {
		t.Fatalf("lint.All() registers %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("lint.All()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("%s: missing Doc", a.Name)
		}
		if a.Directive == "" {
			t.Errorf("%s: missing suppression directive", a.Name)
		}
		if a.Run == nil {
			t.Errorf("%s: missing Run", a.Name)
		}
	}
}

// TestList checks -list prints every registered analyzer.
func TestList(t *testing.T) {
	var buf bytes.Buffer
	if code := run(&buf, []string{"-list"}); code != 0 {
		t.Fatalf("twovet -list: exit %d, want 0\n%s", code, buf.String())
	}
	for _, a := range lint.All() {
		if !strings.Contains(buf.String(), a.Name) {
			t.Errorf("-list output missing %s:\n%s", a.Name, buf.String())
		}
	}
}

// TestFlagsBrokenFixture runs the real multichecker over the
// deliberately-broken testdata package and asserts it exits non-zero —
// the end-to-end guarantee that CI's `go run ./cmd/twovet ./...` step
// actually has teeth. The loader needs the module root as working
// directory (import paths resolve through the go command).
func TestFlagsBrokenFixture(t *testing.T) {
	t.Chdir("../..")
	var buf bytes.Buffer
	code := run(&buf, []string{"./internal/lint/testdata/src/broken"})
	if code != 1 {
		t.Fatalf("twovet on broken fixture: exit %d, want 1\n%s", code, buf.String())
	}
	out := buf.String()
	for _, name := range []string{"detorder", "nowallclock"} {
		if !strings.Contains(out, name) {
			t.Errorf("broken fixture should trip %s; output:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "finding(s)") {
		t.Errorf("missing findings summary line; output:\n%s", out)
	}
}
