package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"twoview/internal/bitset"
	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/wire"
)

// blobCache is the worker's content-addressed store: raw blobs keyed by
// their SHA-256, plus the parsed forms (dataset with materialized
// columns, hydrated candidate list) they materialize into. With a
// directory it is also persistent — each blob lives in a file named by
// its hex hash, verified on load, so a restarted worker serves repeat
// HELLOs without any transfer.
type blobCache struct {
	dir string

	mu       sync.Mutex
	blobs    map[wire.Hash][]byte
	datasets map[wire.Hash]*dataset.Dataset
	// hydrated memoizes candidate lists with their support tidsets
	// computed, keyed by (dataset hash, candidates hash) — the supports
	// depend on both.
	hydrated map[[2]wire.Hash][]core.Candidate
}

func newBlobCache(dir string) *blobCache {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	return &blobCache{
		dir:      dir,
		blobs:    make(map[wire.Hash][]byte),
		datasets: make(map[wire.Hash]*dataset.Dataset),
		hydrated: make(map[[2]wire.Hash][]core.Candidate),
	}
}

// need reports which of a HELLO's content hashes the cache cannot
// serve — the Need bits of the acknowledgement.
func (c *blobCache) need(h *wire.Hello) uint8 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var need uint8
	if c.load(h.DatasetHash) == nil {
		need |= wire.NeedDataset
	}
	if !h.CandsHash.IsZero() && c.load(h.CandsHash) == nil {
		need |= wire.NeedCands
	}
	return need
}

// load returns the raw bytes of hash, pulling them from disk (and
// verifying them against the hash) on a memory miss. Caller holds mu.
func (c *blobCache) load(h wire.Hash) []byte {
	if b, ok := c.blobs[h]; ok {
		return b
	}
	if c.dir == "" {
		return nil
	}
	b, err := os.ReadFile(filepath.Join(c.dir, h.String()))
	if err != nil || wire.HashBytes(b) != h {
		return nil
	}
	c.blobs[h] = b
	return b
}

// put stores one verified transfer, in memory and (when configured) on
// disk. Content that does not match its claimed hash is an error — the
// stream that delivered it is poisoned.
func (c *blobCache) put(b *wire.Blob) error {
	if wire.HashBytes(b.Data) != b.Hash {
		return fmt.Errorf("blob content does not match its hash %s", b.Hash)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.blobs[b.Hash]; ok {
		return nil
	}
	c.blobs[b.Hash] = b.Data
	if c.dir != "" {
		// Write-then-rename so a crashed worker never leaves a torn
		// file behind a valid hash name; load verifies anyway, so a
		// failure here only costs a retransfer after restart.
		path := filepath.Join(c.dir, b.Hash.String())
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, b.Data, 0o644); err == nil {
			if err := os.Rename(tmp, path); err != nil {
				log.Printf("cache persist: %v", err)
			}
		} else {
			log.Printf("cache persist: %v", err)
		}
	}
	return nil
}

// materialize resolves a HELLO's hashes into the parsed dataset and
// hydrated candidate list, memoizing both: every later incarnation over
// the same content boots without parsing or recomputing supports.
func (c *blobCache) materialize(h *wire.Hello) (*dataset.Dataset, []core.Candidate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.datasets[h.DatasetHash]
	if !ok {
		b := c.load(h.DatasetHash)
		if b == nil {
			return nil, nil, fmt.Errorf("dataset blob %s missing from cache", h.DatasetHash)
		}
		var err error
		d, err = dataset.Read(bytes.NewReader(b))
		if err != nil {
			return nil, nil, fmt.Errorf("dataset blob %s: %w", h.DatasetHash, err)
		}
		// Materialize both column caches before any host reads them
		// concurrently.
		d.Columns(dataset.Left)
		d.Columns(dataset.Right)
		c.datasets[h.DatasetHash] = d
	}
	if h.CandsHash.IsZero() {
		return d, nil, nil
	}
	key := [2]wire.Hash{h.DatasetHash, h.CandsHash}
	if cs, ok := c.hydrated[key]; ok {
		return d, cs, nil
	}
	b := c.load(h.CandsHash)
	if b == nil {
		return nil, nil, fmt.Errorf("candidates blob %s missing from cache", h.CandsHash)
	}
	cs, err := wire.DecodeCandidates(b)
	if err != nil {
		return nil, nil, fmt.Errorf("candidates blob %s: %w", h.CandsHash, err)
	}
	// Hydrate the support tidsets the wire encoding leaves out: they
	// are dataset-static, so recomputing them here is both cheaper than
	// shipping them and guaranteed identical to the coordinator's.
	n := d.Size()
	for i := range cs {
		tx, ty := bitset.New(n), bitset.New(n)
		d.SupportSetInto(tx, dataset.Left, cs[i].X)
		d.SupportSetInto(ty, dataset.Right, cs[i].Y)
		cs[i].TidX, cs[i].TidY = tx, ty
	}
	c.hydrated[key] = cs
	return d, cs, nil
}
