package main

import (
	"context"

	"twoview/internal/bitset"
	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/pool"
	"twoview/internal/wire"
)

// hostMailboxDepth bounds each incarnation's request queue, mirroring
// the coordinator-side backpressure contract: a full mailbox drops the
// request and the coordinator's lease recovers.
const hostMailboxDepth = 2

// host is one partition incarnation — cmd/shardworker's reading of
// internal/shard's proc. It is born from (dataset, ranges, log),
// serves leased requests until cancelled, and on failure (panic, blown
// lease) retires with a CRASH frame; it never repairs itself. The
// partition state dies with the incarnation, so a half-applied update
// can never leak into a successor.
type host struct {
	sess *session
	part int32
	term uint64

	d                  *dataset.Dataset
	cands              []core.Candidate
	loL, hiL, loR, hiR int
	log                []core.Rule
	workers            int

	ctx     context.Context
	cancel  context.CancelFunc
	mailbox chan wire.Msg
}

// scorer is one pool worker's scratch: support tidsets for inline-pair
// scoring.
type scorer struct {
	tidX, tidY *bitset.Set
}

func (h *host) loop() {
	defer h.sess.hostWG.Done()
	defer h.cancel()
	defer func() {
		if r := recover(); r != nil {
			h.crash()
		}
	}()

	ps := core.NewPartialState(h.d, h.loL, h.hiL, h.loR, h.hiR)
	ps.Replay(h.log, func(int, core.Rule) {})
	n := h.d.Size()
	scorers := pool.NewOn(h.sess.w.rt, h.workers, func(int) *scorer {
		return &scorer{tidX: bitset.New(n), tidY: bitset.New(n)}
	})

	for {
		select {
		case <-h.ctx.Done():
			return
		case msg := <-h.mailbox:
			switch msg := msg.(type) {
			case *wire.Score:
				rep, err := h.score(scorers, ps, msg)
				if err != nil {
					// The scoring phase drained early: the lease expired
					// (or the session is dying). Retire; the coordinator
					// has already presumed us dead or soon will.
					h.crash()
					return
				}
				h.sess.send(rep)
			case *wire.Apply:
				h.sess.send(h.apply(ps, msg))
			}
		}
	}
}

// score runs the request's entries on the host's share of the worker
// pool under the granted lease, exactly like an in-process shard: the
// per-entry counts land in their own slots, so the reply is identical
// for every worker count.
func (h *host) score(scorers *pool.Pool[*scorer], ps *core.PartialState, req *wire.Score) (*wire.Reply, error) {
	rep := &wire.Reply{Part: h.part, Term: h.term, Seq: req.Seq}
	lease := pool.NewLease(h.ctx, req.Lease)
	defer lease.End()
	var err error
	if len(req.CandIdx) > 0 {
		rep.Counts = make([]core.DirCounts, len(req.CandIdx))
		err = scorers.RunCtx(lease.Context(), len(req.CandIdx), func(s *scorer, i int) {
			c := &h.cands[req.CandIdx[i]]
			rep.Counts[i] = ps.ScoreRule(c.X, c.Y, c.TidX, c.TidY, nil, nil)
		})
	} else {
		rep.Counts = make([]core.DirCounts, len(req.Pairs))
		err = scorers.RunCtx(lease.Context(), len(req.Pairs), func(s *scorer, i int) {
			pr := req.Pairs[i]
			h.d.SupportSetInto(s.tidX, dataset.Left, pr.X)
			h.d.SupportSetInto(s.tidY, dataset.Right, pr.Y)
			rep.Counts[i] = ps.ScoreRule(pr.X, pr.Y, s.tidX, s.tidY, nil, nil)
		})
	}
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// apply applies the accepted rule to the partition and acknowledges
// with the per-item counts (and covered tidsets when asked — the
// CoverObserver fires in the same owned-item order the counts are
// emitted in, which is what keeps the coordinator's tub mirror folds
// aligned).
func (h *host) apply(ps *core.PartialState, req *wire.Apply) *wire.Reply {
	rep := &wire.Reply{Part: h.part, Term: h.term, Seq: req.Seq}
	var onCover core.CoverObserver
	if req.WantCover {
		covers := &wire.Covers{}
		rep.Covers = covers
		onCover = func(target dataset.View, item int, covered *bitset.Set) {
			c := covered.Clone()
			if target == dataset.Right {
				covers.Fwd = append(covers.Fwd, c)
			} else {
				covers.Back = append(covers.Back, c)
			}
		}
	}
	dc := ps.Apply(req.Rule, nil, nil, onCover)
	rep.Counts = []core.DirCounts{dc}
	return rep
}

// crash retires the incarnation with a CRASH frame. Best-effort: if
// the session is already dead, nobody is listening.
func (h *host) crash() {
	h.sess.sendCrash(h.part, h.term)
}
