// Command shardworker hosts partitions of the sharded TRANSLATOR mining
// engine for a remote coordinator. It is the TCP reading of
// internal/shard's proc: the coordinator (a miner run with
// ParallelOptions.ShardAddrs set) dials in, announces partition
// incarnations via HELLO, transfers the dataset and candidate list only
// if the worker's content-hash cache misses, and then drives leased
// SCORE/APPLY rounds exactly as it would drive in-process shards. The
// worker never makes a mining decision — a partition's state is a pure
// function of (dataset, ranges, accepted-rule log), so the integers it
// returns are bit-identical to an in-process shard's and the mined
// table cannot depend on where partitions ran.
//
// One coordinator is served at a time; when its connection ends every
// hosted incarnation is retired (the coordinator rebuilds them, here or
// elsewhere, from its log) but the blob cache survives, so a
// reconnecting or repeating coordinator HELLOs straight into cache
// hits. With -cache DIR the cache also survives worker restarts.
//
// Usage:
//
//	shardworker [-addr 127.0.0.1:0] [-cache DIR] [-workers 0] [-drain 2s]
//
// The actual listen address is printed to stdout ("listening HOST:PORT"),
// so callers may bind port 0 and scrape the line.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"twoview/internal/pool"
	"twoview/internal/shutdown"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shardworker: ")

	var (
		addr    = flag.String("addr", "127.0.0.1:0", "TCP address to listen on (:0 = ephemeral; the actual address is printed to stdout)")
		cache   = flag.String("cache", "", "directory for the content-addressed blob cache (empty = in-memory only; a directory survives restarts, so a rejoining worker transfers nothing)")
		workers = flag.Int("workers", 0, "cap on scoring workers per hosted partition (0 = whatever each HELLO requests)")
		drain   = flag.Duration("drain", 2*time.Second, "shutdown drain deadline")
	)
	flag.Parse()

	ctx, stop := shutdown.NotifyContext(context.Background())
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("listening %s\n", ln.Addr())

	w := &worker{
		cache:   newBlobCache(*cache),
		rt:      pool.NewRuntime(),
		workers: *workers,
	}
	go func() { <-ctx.Done(); ln.Close() }()

	// One coordinator at a time: a session runs until its stream ends,
	// and the next dial waits in the listen backlog. Serving a second
	// coordinator concurrently would be safe for correctness (sessions
	// share only the cache) but would let two runs fight over the
	// machine, which is never what a two-coordinator schedule means.
	for {
		conn, err := ln.Accept()
		if err != nil {
			break // listener closed by the shutdown watcher
		}
		log.Printf("coordinator connected from %s", conn.RemoteAddr())
		w.serve(ctx, conn)
		log.Printf("coordinator session ended")
	}

	if err := shutdown.Drain(*drain, func(context.Context) error { w.rt.Close(); return nil }); err != nil {
		log.Print(err)
	}
}
