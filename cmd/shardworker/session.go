package main

import (
	"context"
	"log"
	"net"
	"sync"

	"twoview/internal/pool"
	"twoview/internal/wire"
)

// worker is the per-process state shared by every coordinator session:
// the content-addressed blob cache and the scoring-pool runtime.
type worker struct {
	cache   *blobCache
	rt      *pool.Runtime
	workers int
}

// serve runs one coordinator session: decode frames until the stream
// dies, then retire every hosted incarnation. The cache survives the
// session.
func (w *worker) serve(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	sctx, cancel := context.WithCancel(ctx)
	s := &session{
		w:      w,
		conn:   conn,
		ctx:    sctx,
		cancel: cancel,
		out:    make(chan []byte, 256),
		done:   make(chan struct{}),
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go s.writeLoop(&wg)
	go func() { // process shutdown must unblock the read below
		defer wg.Done()
		select {
		case <-ctx.Done():
			s.close()
		case <-s.done:
		}
	}()

	var buf []byte
	for {
		var msg wire.Msg
		var err error
		msg, buf, err = wire.ReadMsg(conn, buf)
		if err != nil {
			break
		}
		if !s.handle(msg) {
			break
		}
	}
	s.close()
	s.cancel()
	s.hostWG.Wait()
	wg.Wait()
}

// session is one coordinator connection. The hosts and pending slices
// are owned by the reader goroutine (serve); host goroutines touch only
// their own mailbox and the out queue.
type session struct {
	w      *worker
	conn   net.Conn
	ctx    context.Context
	cancel context.CancelFunc
	out    chan []byte
	done   chan struct{}
	once   sync.Once
	hostWG sync.WaitGroup

	// hosts are the live incarnations, linearly searched by partition —
	// there are at most a handful per worker.
	hosts []*host
	// pending are HELLOs whose blobs have not all arrived yet; each may
	// park the newest request for its incarnation, delivered at boot.
	pending []*pendingHello
}

type pendingHello struct {
	hello  *wire.Hello
	parked wire.Msg
}

func (s *session) close() {
	s.once.Do(func() {
		close(s.done)
		s.conn.Close()
	})
}

// handle processes one inbound frame; a false return poisons the
// stream (the coordinator recovers by redialing).
func (s *session) handle(msg wire.Msg) bool {
	switch msg := msg.(type) {
	case *wire.Hello:
		s.handleHello(msg)
	case *wire.Blob:
		return s.handleBlob(msg)
	case *wire.Score:
		s.route(msg.Part, msg.Term, msg)
	case *wire.Apply:
		s.route(msg.Part, msg.Term, msg)
	default:
		log.Printf("unexpected %T frame; dropping the session", msg)
		return false
	}
	return true
}

// handleHello announces (or re-announces) a partition incarnation.
// Idempotent for an already-hosted (part, term); a newer term replaces
// the incarnation; an older term is a stale retransmission and ignored.
func (s *session) handleHello(h *wire.Hello) {
	if old := s.findHost(h.Part); old != nil {
		switch {
		case old.term == h.Term:
			// Re-announcement of a live incarnation (the coordinator
			// resends its desired state after a reconnect): keep the
			// host and its state, ack the cache hit.
			s.ack(h.Part, h.Term, 0)
			return
		case old.term > h.Term:
			return
		}
		old.cancel()
		s.removeHost(old)
	}
	for i, ph := range s.pending {
		if ph.hello.Part == h.Part {
			if ph.hello.Term > h.Term {
				return
			}
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			break
		}
	}
	need := s.w.cache.need(h)
	s.ack(h.Part, h.Term, need)
	if need == 0 {
		s.start(h, nil)
	} else {
		s.pending = append(s.pending, &pendingHello{hello: h})
	}
}

// handleBlob stores one verified transfer and boots every pending
// incarnation it completes. A blob whose content does not match its
// hash poisons the stream — resynchronization is the redial path.
func (s *session) handleBlob(b *wire.Blob) bool {
	if err := s.w.cache.put(b); err != nil {
		log.Printf("rejecting blob: %v", err)
		return false
	}
	var still []*pendingHello
	for _, ph := range s.pending {
		if s.w.cache.need(ph.hello) == 0 {
			s.start(ph.hello, ph.parked)
		} else {
			still = append(still, ph)
		}
	}
	s.pending = still
	return true
}

// route hands a request to the addressed incarnation. A full mailbox
// drops it (the lease recovers — same backpressure contract as the
// coordinator's queues); a request for a pending incarnation is parked,
// newest wins; anything else is a stale term and dropped.
func (s *session) route(part int32, term uint64, msg wire.Msg) {
	if h := s.findHost(part); h != nil && h.term == term {
		select {
		case h.mailbox <- msg:
		default:
		}
		return
	}
	for _, ph := range s.pending {
		if ph.hello.Part == part && ph.hello.Term == term {
			ph.parked = msg
			return
		}
	}
}

// start boots the incarnation a HELLO announced, now that its content
// is fully cached.
func (s *session) start(hm *wire.Hello, parked wire.Msg) {
	d, cands, err := s.w.cache.materialize(hm)
	if err != nil {
		// The cached bytes are unusable (corrupt file, undecodable
		// candidates): no retry on our side fixes that, so crash the
		// incarnation and let the coordinator decide.
		log.Printf("partition %d term %d: %v", hm.Part, hm.Term, err)
		s.sendCrash(hm.Part, hm.Term)
		return
	}
	workers := int(hm.Workers)
	if workers < 1 {
		workers = 1
	}
	if s.w.workers > 0 && workers > s.w.workers {
		workers = s.w.workers
	}
	ctx, cancel := context.WithCancel(s.ctx)
	h := &host{
		sess: s, part: hm.Part, term: hm.Term,
		d: d, cands: cands,
		loL: int(hm.LoL), hiL: int(hm.HiL), loR: int(hm.LoR), hiR: int(hm.HiR),
		log:     hm.Log,
		workers: workers,
		ctx:     ctx, cancel: cancel,
		mailbox: make(chan wire.Msg, hostMailboxDepth),
	}
	s.hosts = append(s.hosts, h)
	s.hostWG.Add(1)
	go h.loop()
	if parked != nil {
		h.mailbox <- parked // fresh mailbox: never full here
	}
	log.Printf("hosting partition %d term %d (items L[%d,%d) R[%d,%d), %d workers, %d log rules)",
		h.part, h.term, h.loL, h.hiL, h.loR, h.hiR, workers, len(hm.Log))
}

func (s *session) findHost(part int32) *host {
	for _, h := range s.hosts {
		if h.part == part {
			return h
		}
	}
	return nil
}

func (s *session) removeHost(h *host) {
	for i, o := range s.hosts {
		if o == h {
			s.hosts = append(s.hosts[:i], s.hosts[i+1:]...)
			return
		}
	}
}

func (s *session) ack(part int32, term uint64, need uint8) {
	s.send(&wire.HelloAck{Part: part, Term: term, Need: need})
}

func (s *session) sendCrash(part int32, term uint64) {
	s.send(&wire.Crash{Part: part, Term: term})
}

// send encodes and enqueues one outbound frame, blocking until the
// writer accepts it or the session dies. Encoding our own replies can
// only fail on a frame past MaxFrame; the silent drop then surfaces as
// lease expiry coordinator-side, like any other lost completion.
func (s *session) send(m wire.Msg) {
	frame, err := wire.Encode(nil, m)
	if err != nil {
		log.Printf("dropping unencodable %T: %v", m, err)
		return
	}
	select {
	case s.out <- frame:
	case <-s.done:
	}
}

func (s *session) writeLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case frame := <-s.out:
			if _, err := s.conn.Write(frame); err != nil {
				s.close()
				return
			}
		case <-s.done:
			return
		}
	}
}
