// Command experiments regenerates every table and figure of the paper's
// evaluation section (§6) on the synthetic dataset analogues, plus the two
// extension experiments (planted-rule recovery, pruning ablation).
//
// Usage:
//
//	experiments -exp all -scale 0.1 -out results/
//	experiments -exp table2small -scale 0.05
//
// The scale factor shrinks every dataset proportionally; 1.0 reproduces
// the paper's dataset sizes (TRANSLATOR-EXACT on the larger small-group
// datasets then takes hours, exactly as reported in Table 2).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"twoview/internal/core"
	"twoview/internal/eval"

	// Arm the -shards flag (registers the sharded engine with core).
	_ "twoview/internal/shard"
)

type experiment struct {
	name string
	desc string
	run  func(ctx context.Context, w io.Writer, scale float64) error
}

func experiments() []experiment {
	return []experiment{
		{"table1", "dataset properties and L(D,∅)", func(ctx context.Context, w io.Writer, s float64) error {
			return eval.RunTable1(ctx, w, s)
		}},
		{"table2small", "search strategy comparison, small datasets (incl. EXACT)", func(ctx context.Context, w io.Writer, s float64) error {
			_, err := eval.RunTable2(ctx, w, s, true)
			return err
		}},
		{"table2large", "search strategy comparison, large datasets", func(ctx context.Context, w io.Writer, s float64) error {
			_, err := eval.RunTable2(ctx, w, s, false)
			return err
		}},
		{"table3", "TRANSLATOR vs SIGRULES, REREMI, KRIMP", func(ctx context.Context, w io.Writer, s float64) error {
			_, err := eval.RunTable3(ctx, w, s, nil)
			return err
		}},
		{"fig2", "construction of a translation table (House)", func(ctx context.Context, w io.Writer, s float64) error {
			_, err := eval.RunFig2(ctx, w, s)
			return err
		}},
		{"fig3", "DOT rule-set visualizations (CAL500, House)", eval.RunFig3},
		{"fig4", "example rules, House", func(ctx context.Context, w io.Writer, s float64) error {
			return eval.RunExampleRules(ctx, w, "house", s)
		}},
		{"fig5", "example rules, Mammals", func(ctx context.Context, w io.Writer, s float64) error {
			return eval.RunExampleRules(ctx, w, "mammals", s)
		}},
		{"fig6", "rules containing a focus item (CAL500)", eval.RunFig6},
		{"fig7", "example rules, Elections", eval.RunFig7},
		{"explosion", "§6.3 raw association-rule explosion vs |T|", func(ctx context.Context, w io.Writer, s float64) error {
			return eval.RunExplosion(ctx, w, s, nil)
		}},
		{"recovery", "extension X1: planted-rule recovery", func(ctx context.Context, w io.Writer, s float64) error {
			return eval.RunRecovery(ctx, w, s, nil)
		}},
		{"ablation", "extension X2: pruning-bound ablation", func(ctx context.Context, w io.Writer, s float64) error {
			return eval.RunAblation(ctx, w, s, 3, nil)
		}},
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		exp     = flag.String("exp", "all", "experiment id or 'all' (table1, table2small, table2large, table3, fig2..fig7, recovery, ablation)")
		scale   = flag.Float64("scale", 0.1, "dataset scale factor; 1.0 = paper-sized")
		out     = flag.String("out", "", "directory for per-experiment output files (default: stdout only)")
		list    = flag.Bool("list", false, "list experiments and exit")
		workers = flag.Int("workers", 0, "worker goroutines for mining and candidate generation (0 = GOMAXPROCS, 1 = serial); results are identical")
		shards  = flag.Int("shards", 0, "item-range shards for the supervised sharded engine (0 = monolithic); results are identical")
		shardAt = flag.String("shard-addrs", "", "comma-separated shardworker addresses; partitions run in those daemons over TCP instead of in-process (implies -shards len(addrs) when -shards is 0); results are identical")
	)
	flag.Parse()
	eval.Workers = *workers
	eval.Shards = *shards
	for _, a := range strings.Split(*shardAt, ",") {
		if a = strings.TrimSpace(a); a != "" {
			eval.ShardAddrs = append(eval.ShardAddrs, a)
		}
	}
	// One persistent worker session serves the whole batch: every
	// experiment's mining rounds reuse the same parked workers.
	eval.Session = core.NewSession()
	defer eval.Session.Close()

	// SIGINT/SIGTERM cancel the context threaded through every runner;
	// a long experiment batch then unwinds at the next mining
	// checkpoint instead of being killed mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	all := experiments()
	if *list {
		for _, e := range all {
			fmt.Printf("  %-12s %s\n", e.name, e.desc)
		}
		return
	}

	var selected []experiment
	for _, e := range all {
		if *exp == "all" || e.name == *exp {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		log.Fatalf("unknown experiment %q (use -list)", *exp)
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	for _, e := range selected {
		fmt.Printf("=== %s: %s (scale %.2f) ===\n", e.name, e.desc, *scale)
		start := time.Now()
		var w io.Writer = os.Stdout
		var f *os.File
		if *out != "" {
			var err error
			ext := ".txt"
			if e.name == "fig3" {
				ext = ".dot"
			}
			f, err = os.Create(filepath.Join(*out, e.name+ext))
			if err != nil {
				log.Fatal(err)
			}
			w = io.MultiWriter(os.Stdout, f)
		}
		if err := e.run(ctx, w, *scale); err != nil {
			if errors.Is(err, context.Canceled) {
				log.Fatalf("%s: interrupted (outputs for this experiment are incomplete)", e.name)
			}
			log.Fatalf("%s: %v", e.name, err)
		}
		if f != nil {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("--- %s done in %v ---\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if !strings.EqualFold(*exp, "all") || *out == "" {
		return
	}
	fmt.Printf("all outputs written to %s\n", *out)
}
