// Command translatord serves a mined translation table over HTTP: the
// fault-tolerant daemon form of `translator -load`. It compiles the
// table once at startup and answers single-row and batch translation
// requests with per-request deadlines, load shedding under overload,
// per-request panic containment, and zero-downtime table reloads.
//
// Usage:
//
//	translatord -data data.tv -table rules.tt [-addr :8117]
//	            [-deadline 2s] [-max-deadline 10s] [-max-inflight 64]
//	            [-queue-wait 100ms] [-max-batch 8192] [-drain 15s]
//
// Endpoints (see internal/server for the wire format):
//
//	POST /translate        {"from":"L","items":[...]}
//	POST /translate/batch  {"from":"L","rows":[[...],...]}
//	GET  /healthz          liveness (always 200 while serving)
//	GET  /readyz           readiness (503 while draining)
//	POST /reload           re-read -data/-table, compile, swap, drain old epoch
//
// SIGINT/SIGTERM triggers a graceful drain: /readyz flips to 503 so
// load balancers stop routing, in-flight requests finish, and the
// listener closes — all under the bounded -drain deadline. A second
// signal kills the process immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/server"
	"twoview/internal/shutdown"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("translatord: ")

	var (
		data        = flag.String("data", "", "two-view dataset file the table was mined from (required)")
		table       = flag.String("table", "", "stored translation table file (required)")
		addr        = flag.String("addr", ":8117", "listen address")
		deadline    = flag.Duration("deadline", 2*time.Second, "default per-request deadline")
		maxDeadline = flag.Duration("max-deadline", 10*time.Second, "cap on client-requested deadlines (X-Deadline-Ms)")
		maxInFlight = flag.Int("max-inflight", 64, "concurrent translate-request budget before shedding")
		queueWait   = flag.Duration("queue-wait", 100*time.Millisecond, "max wait for an in-flight slot before 429")
		maxBatch    = flag.Int("max-batch", 8192, "max rows per batch request")
		drain       = flag.Duration("drain", 15*time.Second, "graceful shutdown drain deadline")
	)
	flag.Parse()
	if *data == "" || *table == "" {
		flag.Usage()
		os.Exit(2)
	}

	compile := func() (*core.Translator, error) {
		d, err := dataset.ReadFile(*data)
		if err != nil {
			return nil, err
		}
		tab, err := core.ReadTableFile(*table, d)
		if err != nil {
			return nil, err
		}
		return core.CompileTranslator(d, tab)
	}
	tr, err := compile()
	if err != nil {
		log.Fatal(err)
	}

	srv := server.New(tr, server.Options{
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		MaxInFlight:     *maxInFlight,
		MaxQueueWait:    *queueWait,
		MaxBatchRows:    *maxBatch,
		// POST /reload re-reads both files: a freshly mined table (or a
		// regenerated dataset vocabulary) goes live without a restart.
		Reload: func(context.Context) (*core.Translator, error) { return compile() },
		Log:    log.Default(), // already carries the translatord: prefix
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := shutdown.NotifyContext(context.Background())
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving %d rules on %s (epoch %d)", tr.Rules(), *addr, srv.Epoch())

	select {
	case err := <-errc:
		// The listener died on its own (port in use, ...): nothing to drain.
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // second signal now kills the process the default way
	log.Printf("signal received; draining for up to %v (second signal kills)", *drain)

	err = shutdown.Drain(*drain,
		func(context.Context) error { srv.BeginShutdown(); return nil },
		httpSrv.Shutdown,
	)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		httpSrv.Close()
		log.Fatal(fmt.Errorf("drain incomplete: %w", err))
	}
	log.Print("drained; bye")
}
