// Command benchreport runs the repository's benchmarks and emits a
// machine-readable JSON report — ns/op, B/op, allocs/op per benchmark,
// serial-vs-parallel speedup ratios, and the execution environment
// (GOMAXPROCS, CPU count) — so the perf trajectory of the hot paths is
// recorded per PR (BENCH_PR*.json) and CI can gate on regressions.
//
// Usage:
//
//	benchreport [-bench 'BenchmarkMine'] [-pkgs ./internal/core/] [-benchtime 50x]
//	            [-count 3] [-label after] [-out report.json]
//	            [-parse bench-output.txt] [-baseline baseline.json] [-threshold 0.25]
//
// Modes:
//   - default: invoke `go test -run=^$ -bench <regex> -benchmem` on the
//     given packages, parse the output, write the report;
//   - -parse file: parse a pre-recorded `go test -bench` output instead
//     of running (for recording historical baselines);
//   - -baseline file: after producing the report, compare ns/op against
//     the baseline report and exit non-zero when any benchmark regressed
//     by more than -threshold (default 0.25 = +25% ns/op). A missing
//     baseline file is not an error: the gate is dormant until a
//     baseline recorded on the same hardware is supplied.
//   - -compare old.json new.json: pure offline diff of two previously
//     recorded reports — no benchmarks are run. Prints the per-benchmark
//     ns/op delta table and exits non-zero when any shared benchmark
//     regressed by more than -threshold. Unlike -baseline, both files
//     must exist: naming a report is a claim that it was recorded, so a
//     missing file is an error rather than a dormant gate.
//
// With -count > 1 the minimum ns/op per benchmark is kept (the standard
// best-of reading: the least-noise sample), while allocs/op and B/op are
// taken from the same run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Report is the JSON document benchreport emits.
type Report struct {
	Label      string      `json:"label,omitempty"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	NumCPU     int         `json:"num_cpu"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Ratios     []Ratio     `json:"serial_vs_parallel,omitempty"`
}

// Benchmark is one aggregated benchmark result.
type Benchmark struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"bytes_op,omitempty"`
	AllocsOp float64 `json:"allocs_op,omitempty"`
	Samples  int     `json:"samples"`
}

// Ratio pairs a benchmark's serial and parallel variants.
type Ratio struct {
	Name       string  `json:"name"`
	SerialNs   float64 `json:"serial_ns_op"`
	ParallelNs float64 `json:"parallel_ns_op"`
	// Speedup is serial/parallel wall time; > 1 means the parallel
	// variant is faster on this machine.
	Speedup float64 `json:"speedup"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")

	var (
		bench     = flag.String("bench", "BenchmarkMine|BenchmarkApply|BenchmarkTranslator|BenchmarkAndCount|BenchmarkIntersectIntoSum|BenchmarkWeightedSum|BenchmarkPhaseHandoff|BenchmarkShardTCPLoopback", "benchmark regex passed to go test -bench (miners, the compiled serving path including the translatord load harness, the bitset kernels, the pool phase handoff, and the shard TCP loopback transport)")
		pkgs      = flag.String("pkgs", "./internal/core/ ./internal/bitset/ ./internal/pool/ ./internal/server/ ./internal/shard/", "space-separated package patterns to benchmark")
		benchtime = flag.String("benchtime", "20x", "go test -benchtime value")
		count     = flag.Int("count", 3, "go test -count value (min ns/op is kept)")
		label     = flag.String("label", "", "free-form label recorded in the report")
		out       = flag.String("out", "", "output JSON file (default stdout)")
		parse     = flag.String("parse", "", "parse this pre-recorded go test -bench output instead of running")
		baseline  = flag.String("baseline", "", "baseline report to gate against (missing file = gate dormant)")
		threshold = flag.Float64("threshold", 0.25, "maximum tolerated ns/op regression vs the baseline (0.25 = +25%)")
		compare   = flag.Bool("compare", false, "offline mode: diff two recorded reports (old.json new.json), exit non-zero past -threshold")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			log.Fatal("usage: benchreport -compare [-threshold 0.25] old.json new.json")
		}
		old, err := loadReport(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		cur, err := loadReport(flag.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		if err := diffReports(os.Stdout, old, cur, *threshold); err != nil {
			log.Fatal(err)
		}
		return
	}

	var raw []byte
	var err error
	if *parse != "" {
		raw, err = os.ReadFile(*parse)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
			"-benchtime", *benchtime, "-count", strconv.Itoa(*count)}
		args = append(args, strings.Fields(*pkgs)...)
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		raw, err = cmd.Output()
		if err != nil {
			log.Fatalf("go %s: %v", strings.Join(args, " "), err)
		}
	}

	rep := buildReport(string(raw))
	rep.Label = *label

	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if *out == "" {
		fmt.Print(buf.String())
	} else if err := os.WriteFile(*out, []byte(buf.String()), 0o644); err != nil {
		log.Fatal(err)
	}

	if *baseline != "" {
		if err := gate(os.Stdout, rep, *baseline, *threshold); err != nil {
			log.Fatal(err)
		}
	}
}

// benchLine matches one `go test -bench -benchmem` result line, e.g.
// BenchmarkMineSelect/serial-4   100   115549 ns/op   34680 B/op   883 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// buildReport parses raw `go test -bench` output and aggregates it.
func buildReport(raw string) *Report {
	rep := &Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	best := map[string]*Benchmark{}
	var order []string
	for _, line := range strings.Split(raw, "\n") {
		line = strings.TrimSpace(line)
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rep.CPU = cpu
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		var bytes, allocs float64
		if m[3] != "" {
			bytes, _ = strconv.ParseFloat(m[3], 64)
		}
		if m[4] != "" {
			allocs, _ = strconv.ParseFloat(m[4], 64)
		}
		b, seen := best[m[1]]
		if !seen {
			b = &Benchmark{Name: m[1]}
			best[m[1]] = b
			order = append(order, m[1])
		}
		b.Samples++
		if b.Samples == 1 || ns < b.NsOp {
			b.NsOp, b.BytesOp, b.AllocsOp = ns, bytes, allocs
		}
	}
	for _, name := range order {
		rep.Benchmarks = append(rep.Benchmarks, *best[name])
	}
	rep.Ratios = pairRatios(rep.Benchmarks)
	return rep
}

// pairRatios derives serial-vs-parallel speedups from benchmarks named
// <stem>/serial<suffix> and <stem>/parallel<suffix> — the suffix covers
// variant pairs like serial-k1/parallel-k1. Variants without a
// counterpart (e.g. parallel-only block-size sweeps) have no ratio.
func pairRatios(benchmarks []Benchmark) []Ratio {
	byName := map[string]float64{}
	for _, b := range benchmarks {
		byName[b.Name] = b.NsOp
	}
	var ratios []Ratio
	for _, b := range benchmarks {
		i := strings.LastIndex(b.Name, "/serial")
		if i < 0 {
			continue
		}
		stem, suffix := b.Name[:i], b.Name[i+len("/serial"):]
		par, ok := byName[stem+"/parallel"+suffix]
		if !ok || par == 0 {
			continue
		}
		ratios = append(ratios, Ratio{
			Name:       stem + suffix,
			SerialNs:   b.NsOp,
			ParallelNs: par,
			Speedup:    b.NsOp / par,
		})
	}
	sort.Slice(ratios, func(a, b int) bool { return ratios[a].Name < ratios[b].Name })
	return ratios
}

// gate compares the current report against a baseline report and
// returns an error when any shared benchmark's ns/op regressed by more
// than threshold. A missing baseline file only logs a note.
func gate(w io.Writer, cur *Report, baselinePath string, threshold float64) error {
	base, err := loadReport(baselinePath)
	if os.IsNotExist(err) {
		fmt.Fprintf(w, "benchreport: no baseline at %s; regression gate dormant\n", baselinePath)
		return nil
	}
	if err != nil {
		return err
	}
	return diffReports(w, base, cur, threshold)
}

// loadReport reads and decodes one recorded report. A missing file is
// returned as the bare os.IsNotExist error so gate can stay dormant.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("report %s: %w", path, err)
	}
	return &rep, nil
}

// diffReports prints the per-benchmark ns/op delta table between two
// reports and returns an error when any shared benchmark regressed by
// more than threshold. Benchmarks present on only one side carry no
// verdict, but their counts are noted: a silently shrunk benchmark set
// would otherwise read as a clean pass.
func diffReports(w io.Writer, base, cur *Report, threshold float64) error {
	baseNs := map[string]float64{}
	for _, b := range base.Benchmarks {
		baseNs[b.Name] = b.NsOp
	}
	var regressed []string
	shared := 0
	for _, b := range cur.Benchmarks {
		was, ok := baseNs[b.Name]
		if !ok || was == 0 {
			continue
		}
		shared++
		change := b.NsOp/was - 1
		status := "ok"
		if change > threshold {
			status = "REGRESSED"
			regressed = append(regressed, b.Name)
		}
		fmt.Fprintf(w, "%-50s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
			b.Name, was, b.NsOp, change*100, status)
	}
	if onlyOld, onlyNew := len(base.Benchmarks)-shared, len(cur.Benchmarks)-shared; onlyOld > 0 || onlyNew > 0 {
		fmt.Fprintf(w, "benchreport: %d benchmark(s) only in the old report, %d only in the new; no verdict on those\n",
			onlyOld, onlyNew)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%: %s",
			len(regressed), threshold*100, strings.Join(regressed, ", "))
	}
	return nil
}
