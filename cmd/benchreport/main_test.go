package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: twoview/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMineSelect/serial-4         	     100	    132437 ns/op	   34680 B/op	     883 allocs/op
BenchmarkMineSelect/serial-4         	     100	    115549 ns/op	   34680 B/op	     883 allocs/op
BenchmarkMineSelect/parallel-4       	     100	    114049 ns/op	   34680 B/op	     883 allocs/op
BenchmarkMineCandidates/serial       	     100	     78119 ns/op	   40312 B/op	    1169 allocs/op
BenchmarkMineCandidates/parallel     	     100	     65958 ns/op	   40312 B/op	    1169 allocs/op
BenchmarkMineSelect/serial-k1-4      	     100	    110000 ns/op	   30000 B/op	     800 allocs/op
BenchmarkMineSelect/parallel-k1-4    	     100	     55000 ns/op	   30000 B/op	     800 allocs/op
BenchmarkMineGreedy/parallel-block64 	     100	     70000 ns/op	   20000 B/op	     700 allocs/op
BenchmarkBestRule-4                  	     100	    523847 ns/op
PASS
`

func TestBuildReport(t *testing.T) {
	rep := buildReport(sampleOutput)
	if rep.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 8 {
		t.Fatalf("%d benchmarks, want 8", len(rep.Benchmarks))
	}
	sel := rep.Benchmarks[0]
	if sel.Name != "BenchmarkMineSelect/serial" || sel.Samples != 2 {
		t.Fatalf("first benchmark %+v", sel)
	}
	if sel.NsOp != 115549 { // min of the two samples
		t.Fatalf("min ns/op not kept: %v", sel.NsOp)
	}
	if sel.AllocsOp != 883 || sel.BytesOp != 34680 {
		t.Fatalf("allocs/bytes wrong: %+v", sel)
	}
	// The -N GOMAXPROCS suffix is stripped; plain ns/op lines parse too.
	last := rep.Benchmarks[7]
	if last.Name != "BenchmarkBestRule" || last.NsOp != 523847 || last.AllocsOp != 0 {
		t.Fatalf("last benchmark %+v", last)
	}
}

func TestPairRatios(t *testing.T) {
	rep := buildReport(sampleOutput)
	// Plain pairs, plus the suffixed serial-k1/parallel-k1 pair; the
	// counterpart-less parallel-block64 variant produces no ratio.
	if len(rep.Ratios) != 3 {
		t.Fatalf("%d ratios, want 3: %+v", len(rep.Ratios), rep.Ratios)
	}
	cand := rep.Ratios[0]
	if cand.Name != "BenchmarkMineCandidates" {
		t.Fatalf("ratio order: %+v", rep.Ratios)
	}
	want := 78119.0 / 65958.0
	if cand.Speedup < want-1e-9 || cand.Speedup > want+1e-9 {
		t.Fatalf("speedup %v, want %v", cand.Speedup, want)
	}
	k1 := rep.Ratios[2]
	if k1.Name != "BenchmarkMineSelect-k1" || k1.Speedup != 2 {
		t.Fatalf("suffixed variant not paired: %+v", k1)
	}
}

func TestGateRegression(t *testing.T) {
	dir := t.TempDir()
	basePath := dir + "/base.json"

	cur := buildReport(sampleOutput)

	// Missing baseline: gate dormant, no error.
	var out strings.Builder
	if err := gate(&out, cur, basePath, 0.25); err != nil {
		t.Fatalf("missing baseline must not fail: %v", err)
	}
	if !strings.Contains(out.String(), "dormant") {
		t.Fatalf("missing-baseline note absent: %q", out.String())
	}

	// Identical baseline: passes.
	writeJSON(t, basePath, cur)
	if err := gate(&out, cur, basePath, 0.25); err != nil {
		t.Fatalf("identical baseline must pass: %v", err)
	}

	// A baseline 2x faster than current: every benchmark regressed.
	faster := *cur
	faster.Benchmarks = append([]Benchmark(nil), cur.Benchmarks...)
	for i := range faster.Benchmarks {
		faster.Benchmarks[i].NsOp /= 2
	}
	writeJSON(t, basePath, &faster)
	err := gate(&out, cur, basePath, 0.25)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("regression not detected: %v", err)
	}
}

// The -compare path: two recorded reports diffed offline, with the
// strict missing-file behaviour (unlike the dormant -baseline gate) and
// the only-on-one-side note.
func TestCompareReports(t *testing.T) {
	dir := t.TempDir()
	oldPath, newPath := dir+"/old.json", dir+"/new.json"

	if _, err := loadReport(oldPath); !os.IsNotExist(err) {
		t.Fatalf("missing compare input must surface as not-exist, got %v", err)
	}

	old := buildReport(sampleOutput)
	writeJSON(t, oldPath, old)

	cur := *old
	cur.Benchmarks = append([]Benchmark(nil), old.Benchmarks...)
	cur.Benchmarks[0].NsOp *= 1.5 // past the 25% threshold
	cur.Benchmarks = cur.Benchmarks[:len(cur.Benchmarks)-1]
	cur.Benchmarks = append(cur.Benchmarks, Benchmark{Name: "BenchmarkBrandNew", NsOp: 10})
	writeJSON(t, newPath, &cur)

	base, err := loadReport(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	next, err := loadReport(newPath)
	if err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	err = diffReports(&out, base, next, 0.25)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("regression not detected: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("delta table lacks the verdict: %q", out.String())
	}
	if !strings.Contains(out.String(), "1 benchmark(s) only in the old report, 1 only in the new") {
		t.Fatalf("one-sided benchmarks not noted: %q", out.String())
	}

	// Under a looser threshold the same pair passes.
	if err := diffReports(&out, base, next, 0.60); err != nil {
		t.Fatalf("60%% threshold must tolerate a +50%% drift: %v", err)
	}
}

func writeJSON(t *testing.T, path string, rep *Report) {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
