GO ?= go

.PHONY: test lint chaos chaos-shard chaos-net fuzz-smoke bench-kernels promote-baseline

# The tier-1 gate: everything CI's build/test steps enforce.
test:
	$(GO) build ./...
	$(GO) test ./...

# vet + the repo's own analyzer suite (cmd/twovet). Must run from the
# module root.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/twovet ./...

# The chaos suite: the deterministic failpoint registry (internal/fault)
# compiles in under -tags faultinject, and the scripted failure
# scenarios run under the race detector — injected handler panics,
# deadline blowouts, mid-stream reader faults, poisoned pool tasks,
# table reloads racing live batches, and the translatord overload storm.
chaos:
	$(GO) test -tags faultinject -race -count=1 ./internal/fault/ ./internal/dataset/ ./internal/pool/ ./internal/core/ ./internal/server/

# The sharded-mining chaos suite: scripted shard crashes (mid-score,
# mid-apply, mid-replay), lease blowouts, lost and duplicated
# completions — every scenario asserting the mined table stays
# bit-identical to the monolith while recovery demonstrably fired.
# Also re-runs the shard determinism grids with the failpoints
# compiled in.
chaos-shard:
	$(GO) test -tags faultinject -race -count=1 ./internal/shard/

# The network chaos suite: the TCP transport against real shardworker
# processes on loopback with scripted network faults — connections cut
# mid-frame, replies truncated at the wire, duplicated frames, a worker
# process killed and restarted mid-run against its on-disk blob cache.
# Every scenario asserts bit-identity to the monolith plus the recovery
# counters (restarts, redials, cache hits) that prove the machinery
# fired.
chaos-net:
	$(GO) test -tags faultinject -race -count=1 -run 'ChaosNet|TCP' ./internal/shard/

# 30-second native-fuzzing smoke on the text readers (see README,
# "Fuzzing"). Each target runs separately: `go test -fuzz` accepts a
# single fuzz target per package invocation.
fuzz-smoke:
	$(GO) test -fuzz=FuzzRowReader -fuzztime=30s ./internal/dataset
	$(GO) test -fuzz=FuzzReadTable -fuzztime=30s ./internal/core

# Striped-vs-scalar kernel comparison: the same bitset and pool
# benchmarks under the default (striped) build and under the
# -tags bitset_scalar differential build, back to back. Diff the two
# outputs (or feed them to benchstat) to read the stripe speedups.
BENCH_KERNELS = BenchmarkAndCount|BenchmarkAndNot|BenchmarkIntersectInto|BenchmarkWeightedSum|BenchmarkCount|BenchmarkEqual|BenchmarkSubsetOf|BenchmarkPhaseHandoff
bench-kernels:
	@echo '=== striped (default build) ==='
	$(GO) test -run='^$$' -bench '$(BENCH_KERNELS)' -benchtime 200ms -count 3 ./internal/bitset/ ./internal/pool/
	@echo '=== scalar (-tags bitset_scalar) ==='
	$(GO) test -tags bitset_scalar -run='^$$' -bench '$(BENCH_KERNELS)' -benchtime 200ms -count 3 ./internal/bitset/ ./internal/pool/

# Arm (or re-anchor) the benchmark regression gate from a green CI run:
# every run uploads a promotion-ready bench-baseline artifact recorded
# on the runner class the gate compares against. Usage:
#
#	make promote-baseline RUN=<ci-run-id>
#
# then review and commit bench/baseline.json.
promote-baseline:
ifndef RUN
	$(error usage: make promote-baseline RUN=<ci-run-id>)
endif
	gh run download $(RUN) -n bench-baseline -D bench
	git add bench/baseline.json
	@echo "bench/baseline.json staged; commit it to arm the regression gate"
