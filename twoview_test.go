package twoview_test

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"twoview"
)

// buildToy constructs the running example: music features on the left,
// evoked emotions on the right.
func buildToy(t testing.TB) *twoview.Dataset {
	d, err := twoview.NewDataset(
		[]string{"genre:rock", "genre:rnb", "tempo:fast", "vocals:aggressive"},
		[]string{"mood:energetic", "mood:catchy", "mood:positive"},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][2][]int{
		{{0, 2}, {0}},
		{{0, 2, 3}, {0}},
		{{0, 3}, {0}},
		{{1}, {1, 2}},
		{{1}, {1, 2}},
		{{1, 2}, {1, 2}},
		{{2}, {}},
		{{3}, {0}},
	}
	for _, r := range rows {
		if err := d.AddRow(r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestPublicAPIEndToEnd(t *testing.T) {
	d := buildToy(t)
	cands, err := twoview.MineCandidates(context.Background(), d, 1, 0, twoview.ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	res, _ := twoview.MineSelect(context.Background(), d, cands, twoview.SelectOptions{K: 1})
	if res.Table.Size() == 0 {
		t.Fatal("no rules mined")
	}
	m := twoview.Summarize(d, res)
	if m.LPct >= 100 {
		t.Fatalf("no compression: %v", m.LPct)
	}
	// Exact agrees on this small instance (score can only be better).
	exact, _ := twoview.MineExact(context.Background(), d, twoview.ExactOptions{})
	me := twoview.Summarize(d, exact)
	if me.LPct > m.LPct+1e-9 {
		t.Fatalf("exact (%v) worse than select (%v)", me.LPct, m.LPct)
	}
	// EvaluateTable replays to the same metrics.
	m2 := twoview.EvaluateTable(d, res.Table)
	if math.Abs(m2.LPct-m.LPct) > 1e-9 {
		t.Fatalf("EvaluateTable %v != Summarize %v", m2.LPct, m.LPct)
	}
	// TopRules and MaxConfidence are exposed.
	top := twoview.TopRules(d, res.Table, 1)
	if len(top) != 1 || top[0].Conf != twoview.MaxConfidence(d, top[0].Rule) {
		t.Fatal("TopRules inconsistent with MaxConfidence")
	}
}

func TestPublicAPIGreedyAndDirections(t *testing.T) {
	d := buildToy(t)
	cands, err := twoview.MineCandidates(context.Background(), d, 1, 0, twoview.ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := twoview.MineGreedy(context.Background(), d, cands, twoview.GreedyOptions{})
	if res.Table.Size() == 0 {
		t.Fatal("greedy found nothing")
	}
	for _, r := range res.Table.Rules {
		switch r.Dir {
		case twoview.Forward, twoview.Backward, twoview.Both:
		default:
			t.Fatalf("unexpected direction %v", r.Dir)
		}
	}
}

func TestPublicAPIDatasetIO(t *testing.T) {
	d := buildToy(t)
	var buf bytes.Buffer
	if err := twoview.WriteDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := twoview.ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Size() != d.Size() || d2.Items(twoview.Left) != d.Items(twoview.Left) {
		t.Fatal("round trip lost data")
	}
}

func TestPublicAPISynthesis(t *testing.T) {
	p, err := twoview.ProfileByName("wine")
	if err != nil {
		t.Fatal(err)
	}
	d, truth, err := twoview.Generate(p.Scaled(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 89 || len(truth) == 0 {
		t.Fatalf("generate: size=%d truth=%d", d.Size(), len(truth))
	}
	if len(twoview.Profiles()) != 14 {
		t.Fatal("profile count wrong")
	}
}

func TestPublicAPIDot(t *testing.T) {
	d := buildToy(t)
	cands, _ := twoview.MineCandidates(context.Background(), d, 1, 0, twoview.ParallelOptions{})
	res, _ := twoview.MineSelect(context.Background(), d, cands, twoview.SelectOptions{K: 1})
	var b strings.Builder
	if err := twoview.WriteDot(&b, d, res.Table, "toy"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "graph \"toy\"") {
		t.Fatal("DOT output malformed")
	}
}

// ExampleMineSelect demonstrates the quickstart flow on a tiny dataset.
func ExampleMineSelect() {
	d, _ := twoview.NewDataset(
		[]string{"rock", "fast"},
		[]string{"energetic"},
	)
	for i := 0; i < 8; i++ {
		d.AddRow([]int{0, 1}, []int{0})
	}
	for i := 0; i < 4; i++ {
		d.AddRow(nil, nil)
	}
	cands, _ := twoview.MineCandidates(context.Background(), d, 1, 0, twoview.ParallelOptions{})
	res, _ := twoview.MineSelect(context.Background(), d, cands, twoview.SelectOptions{K: 1})
	for _, r := range res.Table.Rules {
		fmt.Println(r.Format(d))
	}
	// Output:
	// {rock, fast} <-> {energetic}
}
