package twoview_test

// End-to-end integration tests: build the three CLI tools once and drive
// them through the full generate → mine → visualize pipeline, plus a
// cross-module pipeline test exercising the public API the way the CLIs
// do.

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"twoview"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// buildTools compiles the cmd binaries once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "twoview-bins")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"translator", "twoviewgen", "experiments"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(buildDir, tool), "./cmd/"+tool)
			out, err := cmd.CombinedOutput()
			if err != nil {
				buildErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return buildDir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v failed: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIGenerateMineVisualize(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bins := buildTools(t)
	dir := t.TempDir()
	data := filepath.Join(dir, "house.tv")
	truth := filepath.Join(dir, "house.rules")
	dot := filepath.Join(dir, "house.dot")

	// Generate a scaled-down House analogue with ground truth.
	out := run(t, filepath.Join(bins, "twoviewgen"),
		"-profile", "house", "-scale", "0.5", "-out", data, "-truth", truth)
	if !strings.Contains(out, "planted rules") {
		t.Fatalf("unexpected twoviewgen output:\n%s", out)
	}
	if _, err := os.Stat(truth); err != nil {
		t.Fatal("truth file missing")
	}

	// The generated file must load through the public API too.
	d, err := twoview.ReadDatasetFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 217 { // 435 * 0.5
		t.Fatalf("dataset size = %d", d.Size())
	}

	// Mine with the candidate-based algorithms on the House analogue.
	for _, algo := range []string{"select", "greedy"} {
		args := []string{"-in", data, "-algo", algo, "-minsup", "4"}
		if algo == "select" {
			args = append(args, "-dot", dot, "-trace")
		}
		out = run(t, filepath.Join(bins, "translator"), args...)
		if !strings.Contains(out, "translation table") || !strings.Contains(out, "L%") {
			t.Fatalf("unexpected translator output for %s:\n%s", algo, out)
		}
	}
	// EXACT needs a narrow dataset to stay fast (on House-shaped data it
	// runs for hours, exactly as Table 2 reports); use a Car analogue.
	carData := filepath.Join(dir, "car.tv")
	run(t, filepath.Join(bins, "twoviewgen"), "-profile", "car", "-scale", "0.2", "-out", carData)
	out = run(t, filepath.Join(bins, "translator"),
		"-in", carData, "-algo", "exact", "-max-rules", "2")
	if !strings.Contains(out, "translation table") {
		t.Fatalf("unexpected translator output for exact:\n%s", out)
	}

	// Persist a table and re-apply it.
	table := filepath.Join(dir, "house.tt")
	run(t, filepath.Join(bins, "translator"),
		"-in", data, "-algo", "select", "-minsup", "4", "-save", table)
	out = run(t, filepath.Join(bins, "translator"), "-in", data, "-load", table)
	if !strings.Contains(out, "loaded") || !strings.Contains(out, "translate L→R") {
		t.Fatalf("load/apply output unexpected:\n%s", out)
	}
	dotBytes, err := os.ReadFile(dot)
	if err != nil || !strings.Contains(string(dotBytes), "graph") {
		t.Fatalf("dot output missing or malformed: %v", err)
	}
}

func TestCLIExperimentsSingle(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bins := buildTools(t)
	dir := t.TempDir()
	out := run(t, filepath.Join(bins, "experiments"),
		"-exp", "fig2", "-scale", "0.2", "-out", dir)
	if !strings.Contains(out, "Fig. 2") {
		t.Fatalf("experiments output:\n%s", out)
	}
	content, err := os.ReadFile(filepath.Join(dir, "fig2.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(content), "|U_L|") {
		t.Fatal("fig2 file content wrong")
	}
}

func TestCLIExperimentsList(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bins := buildTools(t)
	out := run(t, filepath.Join(bins, "experiments"), "-list")
	for _, e := range []string{"table1", "table2small", "table3", "fig7", "recovery", "ablation"} {
		if !strings.Contains(out, e) {
			t.Fatalf("experiment %s missing from -list:\n%s", e, out)
		}
	}
	out = run(t, filepath.Join(bins, "twoviewgen"), "-list")
	if !strings.Contains(out, "elections") {
		t.Fatal("profile list incomplete")
	}
}

// TestPipelineAllModules wires dataset → candidates → all three miners →
// metrics → DOT in-process, asserting cross-module consistency.
func TestPipelineAllModules(t *testing.T) {
	p, err := twoview.ProfileByName("yeast")
	if err != nil {
		t.Fatal(err)
	}
	d, truth, err := twoview.Generate(p.Scaled(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) == 0 {
		t.Fatal("no ground truth")
	}
	cands, err := twoview.MineCandidates(context.Background(), d, 2, 0, twoview.ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := twoview.MineSelect(context.Background(), d, cands, twoview.SelectOptions{K: 1})
	gre, _ := twoview.MineGreedy(context.Background(), d, cands, twoview.GreedyOptions{})
	ms, mg := twoview.Summarize(d, sel), twoview.Summarize(d, gre)
	if ms.LPct >= 100 || mg.LPct >= 100 {
		t.Fatalf("no compression: select %v greedy %v", ms.LPct, mg.LPct)
	}
	// SELECT(1) is never worse than GREEDY on the same candidates by more
	// than numerical noise... actually GREEDY can beat SELECT in theory;
	// assert only that both are sane and consistent with EvaluateTable.
	for _, res := range []*twoview.Result{sel, gre} {
		m1 := twoview.Summarize(d, res)
		m2 := twoview.EvaluateTable(d, res.Table)
		if m1.NumRules != m2.NumRules || absDiff(m1.LPct, m2.LPct) > 1e-9 {
			t.Fatal("Summarize and EvaluateTable disagree")
		}
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
