module twoview

go 1.24
