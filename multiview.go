package twoview

import (
	"context"

	"twoview/internal/multiview"
)

// Multi-view support (the paper's §7 future-work direction): datasets
// with more than two views are decomposed into pairwise two-view
// problems; see the multiview example.
type (
	// MultiDataset is a Boolean dataset with k ≥ 2 views.
	MultiDataset = multiview.Dataset
	// PairResult is the mining outcome for one view pair.
	PairResult = multiview.PairResult
	// MultiOptions configures MineAllPairs.
	MultiOptions = multiview.Options
)

// NewMultiDataset creates an empty k-view dataset.
func NewMultiDataset(viewNames []string, itemNames [][]string) (*MultiDataset, error) {
	return multiview.New(viewNames, itemNames)
}

// MineAllPairs mines a translation table for every unordered view pair.
// Cancelling ctx aborts the batch at the next checkpoint (between pairs
// or inside the per-pair mining) and returns ctx.Err().
func MineAllPairs(ctx context.Context, d *MultiDataset, opt MultiOptions) ([]PairResult, error) {
	return multiview.MineAllPairs(ctx, d, opt)
}

// StructureMatrix summarizes pairwise compression ratios L% as a
// symmetric matrix; entries near 100 indicate independent view pairs.
func StructureMatrix(d *MultiDataset, results []PairResult) [][]float64 {
	return multiview.StructureMatrix(d, results)
}
