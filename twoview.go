// Package twoview discovers compact, non-redundant sets of association
// rules that describe how the two views (two disjoint attribute sets over
// the same objects) of a Boolean dataset relate — a Go implementation of
//
//	M. van Leeuwen and E. Galbrun,
//	"Association Discovery in Two-View Data",
//	IEEE TKDE 27(12), 2015.
//
// Models are translation tables: sets of unidirectional and bidirectional
// rules X ◇ Y (X over the left view, Y over the right) that translate one
// view into the other. Together with per-transaction correction tables the
// translation is lossless, and the Minimum Description Length principle
// scores tables so that small-but-accurate rule sets win. Three TRANSLATOR
// search algorithms are provided:
//
//   - MineExact — parameter-free; each iteration adds the rule with the
//     globally maximal compression gain, found by branch-and-bound search
//     (feasible on datasets with moderate numbers of items);
//   - MineSelect — iteratively picks the top-k rules from a fixed set of
//     closed frequent two-view itemset candidates (the best practical
//     trade-off; k=1 closely approximates exact search);
//   - MineGreedy — a single KRIMP-style pass over the candidates (fastest).
//
// # Quickstart
//
//	d, _ := twoview.NewDataset([]string{"genre:rock", "tempo:fast"},
//	                           []string{"mood:energetic", "mood:calm"})
//	d.AddRow([]int{0, 1}, []int{0})
//	...
//	ctx := context.Background()
//	cands, _ := twoview.MineCandidates(ctx, d, 1, 0, twoview.ParallelOptions{})
//	res, _ := twoview.MineSelect(ctx, d, cands, twoview.SelectOptions{K: 1})
//	for _, r := range res.Table.Rules {
//	    fmt.Println(r.Format(d))
//	}
//	fmt.Println(twoview.Summarize(d, res).LPct) // compression ratio
//
// # Contexts and cancellation
//
// Every mining entry point takes a context.Context and returns an
// error. Cancelling the context (deadline, signal, caller shutdown)
// aborts the search at the next checkpoint — an iteration or round
// boundary, a worker-phase task boundary, or the periodic probe inside
// a deep search branch — and returns the rules mined so far alongside
// ctx.Err(). A cancelled run leaves its Session reusable. With an
// uncancelled context results are bit-identical to the pre-context API
// for every worker count, and the error is nil for the in-memory
// miners. The v1 signatures survive one release as deprecated wrappers
// (MineExactV1 etc.); see README.md's "Migrating to the v2 API".
//
// # Serving
//
// Mining is the expensive, one-time step; translation is the serving
// step. A Translator compiles a mined (or loaded) table against the
// dataset vocabularies once — item-indexed rule posting lists and
// per-rule antecedent masks — and then translates rows, batches, or
// unbounded streams cheaply and concurrently; Apply is a thin wrapper
// that compiles and applies once. See README.md's "Serving" section.
//
// See the examples/ directory for complete programs, and README.md
// (section "Reproducing the paper") for the experimental reproduction
// of the paper.
package twoview

import (
	"context"
	"io"

	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/eval"
	"twoview/internal/mdl"
	"twoview/internal/synth"

	// Arm ParallelOptions.Shards: the sharded engine registers itself
	// in an init (core cannot import it — see core.RegisterShardMiner).
	_ "twoview/internal/shard"
)

// Core data types, re-exported from the implementation packages. The
// aliases keep one canonical implementation while giving users a single
// import.
type (
	// Dataset is a Boolean two-view dataset.
	Dataset = dataset.Dataset
	// View selects the left or right view of a dataset.
	View = dataset.View
	// Stats summarizes a dataset (sizes and densities).
	Stats = dataset.Stats

	// Rule is a translation rule X ◇ Y.
	Rule = core.Rule
	// Direction is a rule's direction: →, ← or ↔.
	Direction = core.Direction
	// Table is a translation table (a set of rules).
	Table = core.Table
	// Candidate is a candidate rule skeleton for SELECT/GREEDY.
	Candidate = core.Candidate
	// Result is the output of a mining run.
	Result = core.Result
	// IterationStats traces one added rule during mining.
	IterationStats = core.IterationStats
	// IterationFunc is the OnIteration progress hook of the miners'
	// options: it observes each added rule and may stop the run early
	// (cleanly, with a nil error) by returning false.
	IterationFunc = core.IterationFunc

	// ExactOptions configures MineExact.
	ExactOptions = core.ExactOptions
	// SelectOptions configures MineSelect.
	SelectOptions = core.SelectOptions
	// GreedyOptions configures MineGreedy.
	GreedyOptions = core.GreedyOptions
	// ParallelOptions is the worker-pool knob embedded by every miner's
	// options and accepted by candidate mining: Workers = 0 means
	// GOMAXPROCS, 1 means serial. Every parallel path in the library
	// goes through one internal worker-pool abstraction whose contract
	// is that results are bit-identical for any worker count.
	ParallelOptions = core.ParallelOptions
	// Session owns a persistent worker runtime shared by a whole mining
	// session (candidate mining plus any number of miner calls); carry
	// it in ParallelOptions.Session and Close it when done. A nil
	// Session means the shared package-wide runtime, which is also
	// persistent. Sessions never change results, only where the
	// parallel phases run.
	Session = core.Session

	// Metrics are the paper's evaluation criteria for a rule set.
	Metrics = eval.Metrics
	// RuleStats pairs a rule with its support and maximum confidence.
	RuleStats = eval.RuleStats

	// Profile describes a synthetic dataset to generate.
	Profile = synth.Profile
)

// Views.
const (
	Left  = dataset.Left
	Right = dataset.Right
)

// Rule directions.
const (
	Forward  = core.Forward
	Backward = core.Backward
	Both     = core.Both
)

// NewDataset returns an empty dataset over the given item vocabularies.
func NewDataset(namesL, namesR []string) (*Dataset, error) {
	return dataset.New(namesL, namesR)
}

// GenericNames returns ["p0", "p1", ...] for unnamed vocabularies.
func GenericNames(prefix string, n int) []string {
	return dataset.GenericNames(prefix, n)
}

// ReadDataset parses a dataset in the text format (see dataset.Read).
func ReadDataset(r io.Reader) (*Dataset, error) { return dataset.Read(r) }

// ReadDatasetFile reads a dataset file.
func ReadDatasetFile(path string) (*Dataset, error) { return dataset.ReadFile(path) }

// WriteDataset serializes a dataset in the text format.
func WriteDataset(w io.Writer, d *Dataset) error { return dataset.Write(w, d) }

// WriteDatasetFile writes a dataset file.
func WriteDatasetFile(path string, d *Dataset) error { return dataset.WriteFile(path, d) }

// Parallel returns a ParallelOptions with the given worker count, for
// concise option literals: ExactOptions{ParallelOptions: Parallel(4)}.
func Parallel(workers int) ParallelOptions { return core.Parallel(workers) }

// NewSession starts a mining session with its own persistent worker
// runtime: workers spawn lazily on the first parallel phase, park
// between phases, and exit on Close. Use one Session for a batch of
// related mining calls to avoid relaunching goroutines per round.
func NewSession() *Session { return core.NewSession() }

// MineExact runs TRANSLATOR-EXACT (parameter-free, optimal rule per
// iteration; for datasets with moderate numbers of items). The
// branch-and-bound search parallelizes across ParallelOptions.Workers
// goroutines (0 = GOMAXPROCS, 1 = serial) with results independent of the
// worker count. Cancelling ctx aborts the search at the next checkpoint
// and returns the table mined so far alongside ctx.Err().
func MineExact(ctx context.Context, d *Dataset, opt ExactOptions) (*Result, error) {
	return core.MineExact(ctx, d, opt)
}

// MineCandidates mines the closed frequent two-view itemsets that serve
// as candidates for MineSelect and MineGreedy. maxResults guards against
// pattern explosion (0 = unbounded). The ECLAT walk parallelizes across
// par.Workers goroutines with results independent of the worker count.
// Cancelling ctx aborts the walk and returns ctx.Err().
func MineCandidates(ctx context.Context, d *Dataset, minSupport, maxResults int, par ParallelOptions) ([]Candidate, error) {
	return core.MineCandidates(ctx, d, minSupport, maxResults, par)
}

// MineCandidatesCapped is MineCandidates with automatic support raising:
// on a pattern explosion it doubles minSupport until at most maxResults
// candidates remain, returning the effective support used (the paper's
// §6.1 protocol). Prefer this on unfamiliar data.
func MineCandidatesCapped(ctx context.Context, d *Dataset, minSupport, maxResults int, par ParallelOptions) ([]Candidate, int, error) {
	return core.MineCandidatesCapped(ctx, d, minSupport, maxResults, par)
}

// MineSelect runs TRANSLATOR-SELECT(k) over the candidates. Cancelling
// ctx aborts the run at the next checkpoint and returns the table mined
// so far alongside ctx.Err().
func MineSelect(ctx context.Context, d *Dataset, cands []Candidate, opt SelectOptions) (*Result, error) {
	return core.MineSelect(ctx, d, cands, opt)
}

// MineGreedy runs TRANSLATOR-GREEDY over the candidates. Cancelling ctx
// aborts the pass at the next checkpoint and returns the table mined so
// far alongside ctx.Err().
func MineGreedy(ctx context.Context, d *Dataset, cands []Candidate, opt GreedyOptions) (*Result, error) {
	return core.MineGreedy(ctx, d, cands, opt)
}

// Summarize computes the paper's evaluation metrics for a mining result.
func Summarize(d *Dataset, res *Result) Metrics { return eval.FromResult(d, res) }

// EvaluateTable scores an arbitrary translation table on a dataset under
// the paper's MDL encoding (useful for comparing external rule sets).
func EvaluateTable(d *Dataset, t *Table) Metrics {
	return eval.Evaluate(d, mdl.NewCoder(d), t)
}

// TopRules returns the first n rules of a table with support and maximum
// confidence, in mining order.
func TopRules(d *Dataset, t *Table, n int) []RuleStats { return eval.TopRules(d, t, n) }

// MaxConfidence returns c+(X ◇ Y) = max of the rule's two directional
// confidences on the dataset.
func MaxConfidence(d *Dataset, r Rule) float64 { return eval.MaxConfidence(d, r) }

// RuleQuality collects the standard interestingness measures of a rule
// (confidences, lift, leverage, Jaccard).
type RuleQuality = eval.RuleQuality

// Quality computes all interestingness measures for one rule.
func Quality(d *Dataset, r Rule) RuleQuality { return eval.Quality(d, r) }

// QualityTable computes interestingness measures for every rule of a
// table, in table order.
func QualityTable(d *Dataset, t *Table) []RuleQuality { return eval.QualityTable(d, t) }

// WriteDot renders a rule set as a Graphviz bipartite graph (Fig. 3 of
// the paper).
func WriteDot(w io.Writer, d *Dataset, t *Table, title string) error {
	return eval.WriteDot(w, d, t, title)
}

// WriteTable serializes a translation table using item names, so it can
// be stored, reviewed and later re-applied.
func WriteTable(w io.Writer, d *Dataset, t *Table) error { return core.WriteTable(w, d, t) }

// ReadTable parses a stored translation table against d's vocabularies.
func ReadTable(r io.Reader, d *Dataset) (*Table, error) { return core.ReadTable(r, d) }

// WriteTableFile writes a translation table to a file.
func WriteTableFile(path string, d *Dataset, t *Table) error {
	return core.WriteTableFile(path, d, t)
}

// ReadTableFile reads a translation table from a file.
func ReadTableFile(path string, d *Dataset) (*Table, error) {
	return core.ReadTableFile(path, d)
}

// ApplyReport summarizes applying a table to a dataset.
type ApplyReport = core.ApplyReport

// Apply translates view `from` of d with t and reports translation and
// correction statistics. It compiles t and applies it once; callers
// applying the same table repeatedly should CompileTranslator
// themselves and amortize the preparation across calls.
func Apply(ctx context.Context, d *Dataset, t *Table, from View) (ApplyReport, error) {
	return core.Apply(ctx, d, t, from)
}

// Translator is a translation table compiled against a dataset's
// vocabularies for repeated application — the serving-side artifact of
// "mine once, Apply many". It is immutable after compilation and safe
// for concurrent use by any number of goroutines.
type Translator = core.Translator

// Corrections is the per-transaction correction pair (U, E) of the
// lossless translation scheme.
type Corrections = core.Corrections

// CompileTranslator compiles t against d's vocabularies: item-indexed
// rule posting lists plus per-rule antecedent masks. Compile once, then
// Translate / TranslateBatch / Apply / ApplyStream any number of times.
func CompileTranslator(d *Dataset, t *Table) (*Translator, error) {
	return core.CompileTranslator(d, t)
}

// Generate builds a synthetic two-view dataset from a profile, returning
// the planted ground-truth rules alongside the data.
func Generate(p Profile) (*Dataset, []Rule, error) { return synth.Generate(p) }

// Profiles returns the fourteen dataset profiles calibrated to the
// paper's Table 1.
func Profiles() []Profile { return synth.Profiles() }

// ProfileByName returns the named calibrated profile.
func ProfileByName(name string) (Profile, error) { return synth.ProfileByName(name) }
