package twoview_test

import (
	"bytes"
	"context"
	"fmt"

	"twoview"
)

// ExampleMineExact mines the provably best rule per iteration on a tiny
// dataset where {a0,a1} ↔ {b0} is the only structure.
func ExampleMineExact() {
	d, _ := twoview.NewDataset(
		[]string{"a0", "a1"},
		[]string{"b0", "b1"},
	)
	for i := 0; i < 6; i++ {
		d.AddRow([]int{0, 1}, []int{0})
	}
	for i := 0; i < 3; i++ {
		d.AddRow(nil, []int{1})
	}
	res, _ := twoview.MineExact(context.Background(), d, twoview.ExactOptions{})
	for _, r := range res.Table.Rules {
		fmt.Println(r.Format(d))
	}
	// Output:
	// {a0, a1} <-> {b0}
}

// ExampleApply shows persisting a mined table and applying it back.
func ExampleApply() {
	d, _ := twoview.NewDataset([]string{"x"}, []string{"y"})
	for i := 0; i < 8; i++ {
		d.AddRow([]int{0}, []int{0})
	}
	for i := 0; i < 4; i++ {
		d.AddRow(nil, nil)
	}
	cands, _ := twoview.MineCandidates(context.Background(), d, 1, 0, twoview.ParallelOptions{})
	res, _ := twoview.MineSelect(context.Background(), d, cands, twoview.SelectOptions{K: 1})

	var stored bytes.Buffer
	_ = twoview.WriteTable(&stored, d, res.Table)
	loaded, _ := twoview.ReadTable(&stored, d)

	rep, _ := twoview.Apply(context.Background(), d, loaded, twoview.Left)
	fmt.Printf("produced %d items, %d uncovered, %d errors\n",
		rep.TranslatedOnes, rep.Uncovered, rep.Errors)
	// Output:
	// produced 8 items, 0 uncovered, 0 errors
}

// ExampleEvaluateTable scores a hand-written rule set under the paper's
// MDL encoding.
func ExampleEvaluateTable() {
	d, _ := twoview.NewDataset([]string{"p"}, []string{"q"})
	for i := 0; i < 10; i++ {
		d.AddRow([]int{0}, []int{0})
	}
	for i := 0; i < 10; i++ {
		d.AddRow(nil, nil)
	}
	tab := &twoview.Table{Rules: []twoview.Rule{
		{X: []int{0}, Dir: twoview.Both, Y: []int{0}},
	}}
	m := twoview.EvaluateTable(d, tab)
	fmt.Printf("rules=%d L%%=%.0f corrections=%.0f%%\n", m.NumRules, m.LPct, m.CorrPct)
	// Output:
	// rules=1 L%=15 corrections=0%
}

// ExampleMineAllPairs demonstrates the multi-view extension.
func ExampleMineAllPairs() {
	d, _ := twoview.NewMultiDataset(
		[]string{"u", "v", "w"},
		[][]string{{"u0"}, {"v0"}, {"w0"}},
	)
	for i := 0; i < 10; i++ {
		// u and v always co-occur; w is constant noise.
		if i%2 == 0 {
			d.AddRow([][]int{{0}, {0}, {0}})
		} else {
			d.AddRow([][]int{nil, nil, {0}})
		}
	}
	results, _ := twoview.MineAllPairs(context.Background(), d, twoview.MultiOptions{MinSupport: 2})
	for _, pr := range results {
		fmt.Printf("%s-%s: %d rules\n", d.ViewName(pr.I), d.ViewName(pr.J), pr.Result.Table.Size())
	}
	// Output:
	// u-v: 1 rules
	// u-w: 0 rules
	// v-w: 0 rules
}
