//lint:file-ignore SA1019 this file deliberately exercises the deprecated
// v1 compatibility wrappers against their v2 counterparts.

package twoview_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"twoview"
	"twoview/internal/synth"
)

// The serving acceptance contract: on the paper's planted profiles, the
// compiled Translator reproduces Apply's report bit for bit — one
// compilation serving both directions, the batch path, the stream path
// and the deprecated v1 wrapper all agreeing.
func TestServingMatchesApplyOnPlantedProfiles(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{"car", "house", "yeast"} {
		t.Run(name, func(t *testing.T) {
			p, err := synth.ProfileByName(name)
			if err != nil {
				t.Fatal(err)
			}
			d, _, err := twoview.Generate(p.Scaled(0.2))
			if err != nil {
				t.Fatal(err)
			}
			cands, _, err := twoview.MineCandidatesCapped(ctx, d, p.MinSupport, 100_000, twoview.ParallelOptions{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := twoview.MineSelect(ctx, d, cands, twoview.SelectOptions{K: 1})
			if err != nil {
				t.Fatal(err)
			}
			if res.Table.Size() == 0 {
				t.Fatal("no rules mined")
			}
			tr, err := twoview.CompileTranslator(d, res.Table)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := twoview.WriteDataset(&buf, d); err != nil {
				t.Fatal(err)
			}
			serialized := buf.String()
			for _, from := range []twoview.View{twoview.Left, twoview.Right} {
				want, err := twoview.Apply(ctx, d, res.Table, from)
				if err != nil {
					t.Fatal(err)
				}
				got, err := tr.Apply(ctx, d, from)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("from %v: compiled %+v, Apply %+v", from, got, want)
				}
				streamed, err := tr.ApplyStream(ctx, strings.NewReader(serialized), from)
				if err != nil {
					t.Fatal(err)
				}
				if streamed != want {
					t.Fatalf("from %v: streamed %+v, Apply %+v", from, streamed, want)
				}
				if v1 := twoview.ApplyV1(d, res.Table, from); v1 != want {
					t.Fatalf("from %v: ApplyV1 %+v, Apply %+v", from, v1, want)
				}
			}
		})
	}
}

// The deprecated v1 mining wrappers are thin: bit-identical tables and
// scores to the v2 calls on context.Background().
func TestV1WrappersMatchV2(t *testing.T) {
	ctx := context.Background()
	p, err := synth.ProfileByName("car")
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := twoview.Generate(p.Scaled(0.15))
	if err != nil {
		t.Fatal(err)
	}
	cands, err := twoview.MineCandidates(ctx, d, p.MinSupport, 0, twoview.ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	candsV1, err := twoview.MineCandidatesV1(d, p.MinSupport, 0, twoview.ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != len(candsV1) {
		t.Fatalf("v1 candidates %d, v2 %d", len(candsV1), len(cands))
	}
	v2, err := twoview.MineSelect(ctx, d, cands, twoview.SelectOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	v1 := twoview.MineSelectV1(d, cands, twoview.SelectOptions{K: 1})
	if v1.Table.Size() != v2.Table.Size() || v1.State.Score() != v2.State.Score() {
		t.Fatal("MineSelectV1 differs from MineSelect")
	}
	ex2, err := twoview.MineExact(ctx, d, twoview.ExactOptions{MaxRules: 2})
	if err != nil {
		t.Fatal(err)
	}
	ex1 := twoview.MineExactV1(d, twoview.ExactOptions{MaxRules: 2})
	if ex1.Table.Size() != ex2.Table.Size() || ex1.State.Score() != ex2.State.Score() {
		t.Fatal("MineExactV1 differs from MineExact")
	}
	gr2, err := twoview.MineGreedy(ctx, d, cands, twoview.GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gr1 := twoview.MineGreedyV1(d, cands, twoview.GreedyOptions{})
	if gr1.Table.Size() != gr2.Table.Size() || gr1.State.Score() != gr2.State.Score() {
		t.Fatal("MineGreedyV1 differs from MineGreedy")
	}
}
