package multiview

import (
	"context"
	"math/rand"
	"testing"

	"twoview/internal/dataset"
)

// threeViews builds a 3-view dataset where views A and B share planted
// structure while view C is independent noise.
func threeViews(t *testing.T) *Dataset {
	t.Helper()
	d, err := New(
		[]string{"A", "B", "C"},
		[][]string{
			dataset.GenericNames("a", 6),
			dataset.GenericNames("b", 6),
			dataset.GenericNames("c", 6),
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		var a, b, c []int
		if i%2 == 0 { // planted A-B association
			a = append(a, 0, 1)
			b = append(b, 0, 1)
		}
		for j := 2; j < 6; j++ {
			if r.Intn(6) == 0 {
				a = append(a, j)
			}
			if r.Intn(6) == 0 {
				b = append(b, j)
			}
		}
		for j := 0; j < 6; j++ {
			if r.Intn(4) == 0 {
				c = append(c, j)
			}
		}
		if err := d.AddRow([][]int{a, b, c}); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]string{"only"}, [][]string{{"x"}}); err == nil {
		t.Fatal("single view accepted")
	}
	if _, err := New([]string{"a", "a"}, [][]string{{"x"}, {"y"}}); err == nil {
		t.Fatal("duplicate view names accepted")
	}
	if _, err := New([]string{"a", "b"}, [][]string{{"x"}}); err == nil {
		t.Fatal("mismatched vocabularies accepted")
	}
}

func TestAddRowValidation(t *testing.T) {
	d, err := New([]string{"a", "b"}, [][]string{{"x"}, {"y"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddRow([][]int{{0}}); err == nil {
		t.Fatal("short row accepted")
	}
	if err := d.AddRow([][]int{{0}, {5}}); err == nil {
		t.Fatal("out-of-range item accepted")
	}
	if err := d.AddRow([][]int{{0}, {0}}); err != nil {
		t.Fatal(err)
	}
	if d.Size() != 1 || d.Views() != 2 || d.ViewName(1) != "b" {
		t.Fatal("accessors wrong")
	}
}

func TestPairProjection(t *testing.T) {
	d := threeViews(t)
	two, err := d.Pair(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if two.Size() != d.Size() || two.Items(dataset.Left) != 6 || two.Items(dataset.Right) != 6 {
		t.Fatal("projection dims wrong")
	}
	if two.Name(dataset.Left, 0) != "a0" || two.Name(dataset.Right, 0) != "c0" {
		t.Fatal("projection names wrong")
	}
	if _, err := d.Pair(1, 1); err == nil {
		t.Fatal("self-pair accepted")
	}
	if _, err := d.Pair(-1, 2); err == nil {
		t.Fatal("negative view accepted")
	}
}

func TestMineAllPairsFindsSharedStructureOnly(t *testing.T) {
	d := threeViews(t)
	results, err := MineAllPairs(context.Background(), d, Options{MinSupport: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d pair results, want 3", len(results))
	}
	m := StructureMatrix(d, results)
	// A-B share structure: clearly compressed.
	if m[0][1] >= 95 {
		t.Fatalf("A-B L%% = %v, expected compression", m[0][1])
	}
	if m[0][1] != m[1][0] || m[0][0] != 0 {
		t.Fatal("matrix not symmetric or diagonal not zero")
	}
	// Pairs involving the independent view stay near (or above) 100,
	// clearly worse than the structured pair.
	if m[0][2] < m[0][1]+5 || m[1][2] < m[0][1]+5 {
		t.Fatalf("independent pairs look structured: %v", m)
	}
}

func TestMineAllPairsDeterministic(t *testing.T) {
	d := threeViews(t)
	a, err := MineAllPairs(context.Background(), d, Options{MinSupport: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MineAllPairs(context.Background(), d, Options{MinSupport: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Result.Table.Size() != b[i].Result.Table.Size() {
			t.Fatal("not deterministic")
		}
	}
}
