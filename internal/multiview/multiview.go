// Package multiview implements the paper's future-work direction (§7):
// association discovery in data with more than two views. A k-view
// dataset is decomposed into its k·(k-1)/2 unordered view pairs; each
// pair is mined as a standard two-view problem, and the resulting matrix
// of compression ratios summarizes which views share structure. This
// keeps the paper's models and score untouched — the decomposition is the
// natural first-order generalization: a pairwise L% close to 100 means
// two views are (nearly) independent, exactly as in the two-view setting.
package multiview

import (
	"context"
	"fmt"

	"twoview/internal/core"
	"twoview/internal/dataset"
)

// Dataset is a Boolean dataset with k ≥ 2 views over disjoint item
// vocabularies.
type Dataset struct {
	viewNames []string
	itemNames [][]string
	rows      [][][]int // rows[t][v] = sorted item ids of view v
}

// New creates an empty multi-view dataset. viewNames names the views
// (must be unique); itemNames gives each view's vocabulary.
func New(viewNames []string, itemNames [][]string) (*Dataset, error) {
	if len(viewNames) < 2 {
		return nil, fmt.Errorf("multiview: need at least 2 views, have %d", len(viewNames))
	}
	if len(viewNames) != len(itemNames) {
		return nil, fmt.Errorf("multiview: %d view names but %d vocabularies",
			len(viewNames), len(itemNames))
	}
	seen := map[string]bool{}
	for _, n := range viewNames {
		if n == "" || seen[n] {
			return nil, fmt.Errorf("multiview: empty or duplicate view name %q", n)
		}
		seen[n] = true
	}
	return &Dataset{
		viewNames: append([]string(nil), viewNames...),
		itemNames: itemNames,
	}, nil
}

// Views returns the number of views.
func (d *Dataset) Views() int { return len(d.viewNames) }

// ViewName returns the name of view v.
func (d *Dataset) ViewName(v int) string { return d.viewNames[v] }

// Size returns the number of transactions.
func (d *Dataset) Size() int { return len(d.rows) }

// AddRow appends one transaction: one itemset per view.
func (d *Dataset) AddRow(itemsPerView [][]int) error {
	if len(itemsPerView) != d.Views() {
		return fmt.Errorf("multiview: row has %d views, want %d", len(itemsPerView), d.Views())
	}
	row := make([][]int, d.Views())
	for v, items := range itemsPerView {
		for _, i := range items {
			if i < 0 || i >= len(d.itemNames[v]) {
				return fmt.Errorf("multiview: view %d item %d out of range [0,%d)",
					v, i, len(d.itemNames[v]))
			}
		}
		row[v] = append([]int(nil), items...)
	}
	d.rows = append(d.rows, row)
	return nil
}

// Pair projects the dataset onto views (i, j), producing a standard
// two-view dataset with view i on the left and view j on the right.
func (d *Dataset) Pair(i, j int) (*dataset.Dataset, error) {
	if i == j || i < 0 || j < 0 || i >= d.Views() || j >= d.Views() {
		return nil, fmt.Errorf("multiview: invalid view pair (%d, %d)", i, j)
	}
	two, err := dataset.New(d.itemNames[i], d.itemNames[j])
	if err != nil {
		return nil, err
	}
	for _, row := range d.rows {
		if err := two.AddRow(row[i], row[j]); err != nil {
			return nil, err
		}
	}
	return two, nil
}

// PairResult is the mining outcome for one view pair.
type PairResult struct {
	I, J   int
	Data   *dataset.Dataset
	Result *core.Result
}

// Options configures MineAllPairs.
type Options struct {
	// MinSupport is the candidate support threshold per pair; < 1 means 1.
	MinSupport int
	// K is the SELECT parameter; < 1 means 1.
	K int
	// MaxCandidates guards against pattern explosion per pair
	// (0 = unbounded).
	MaxCandidates int
	// ParallelOptions sets the worker-pool size used for candidate
	// mining and SELECT within each pair; results are identical for any
	// value.
	core.ParallelOptions
}

// MineAllPairs mines a translation table for every unordered view pair
// with TRANSLATOR-SELECT(k), in deterministic (i < j) order. Cancelling
// ctx aborts the batch at the next checkpoint (between pairs, or at any
// cancellation checkpoint inside the per-pair candidate mine and SELECT
// run) and returns ctx.Err(); the pairs mined so far are discarded.
func MineAllPairs(ctx context.Context, d *Dataset, opt Options) ([]PairResult, error) {
	if opt.K < 1 {
		opt.K = 1
	}
	if opt.MinSupport < 1 {
		opt.MinSupport = 1
	}
	var out []PairResult
	for i := 0; i < d.Views(); i++ {
		for j := i + 1; j < d.Views(); j++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			two, err := d.Pair(i, j)
			if err != nil {
				return nil, err
			}
			cands, err := core.MineCandidates(ctx, two, opt.MinSupport, opt.MaxCandidates, opt.ParallelOptions)
			if err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				return nil, fmt.Errorf("multiview: pair (%s, %s): %w",
					d.ViewName(i), d.ViewName(j), err)
			}
			res, err := core.MineSelect(ctx, two, cands, core.SelectOptions{K: opt.K, ParallelOptions: opt.ParallelOptions})
			if err != nil {
				return nil, err
			}
			out = append(out, PairResult{I: i, J: j, Data: two, Result: res})
		}
	}
	return out, nil
}

// StructureMatrix returns the symmetric k×k matrix of pairwise
// compression ratios L% (diagonal = 0). Entries close to 100 indicate
// independent view pairs; low entries indicate shared structure.
func StructureMatrix(d *Dataset, results []PairResult) [][]float64 {
	k := d.Views()
	m := make([][]float64, k)
	for i := range m {
		m[i] = make([]float64, k)
	}
	for _, pr := range results {
		l := pr.Result.State.CompressionRatio()
		m[pr.I][pr.J] = l
		m[pr.J][pr.I] = l
	}
	return m
}
