// Package itemset implements itemsets as sorted, duplicate-free slices of
// item identifiers, together with the set algebra needed by the miners and
// the translation model. Items are small non-negative integers indexing the
// vocabulary of a single view (or the joined vocabulary, by convention).
package itemset

import (
	"fmt"
	"sort"
	"strings"
)

// Itemset is a sorted, duplicate-free slice of item ids. The nil slice is
// the empty itemset. Functions in this package never mutate their inputs;
// results are freshly allocated unless stated otherwise.
type Itemset []int

// New returns a canonical itemset (sorted, deduplicated) from items.
func New(items ...int) Itemset {
	if len(items) == 0 {
		return nil
	}
	out := make(Itemset, len(items))
	copy(out, items)
	sort.Ints(out)
	// Deduplicate in place.
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// IsCanonical reports whether s is sorted strictly ascending.
func (s Itemset) IsCanonical() bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}

// Empty reports whether s has no items.
func (s Itemset) Empty() bool { return len(s) == 0 }

// Contains reports whether item x is in s (binary search).
func (s Itemset) Contains(x int) bool {
	i := sort.SearchInts(s, x)
	return i < len(s) && s[i] == x
}

// SubsetOf reports whether every item of s is in t. Both must be canonical.
func (s Itemset) SubsetOf(t Itemset) bool {
	if len(s) > len(t) {
		return false
	}
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			i++
			j++
		case s[i] > t[j]:
			j++
		default:
			return false
		}
	}
	return i == len(s)
}

// Equal reports whether s and t contain the same items.
func (s Itemset) Equal(t Itemset) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Union returns s ∪ t.
func (s Itemset) Union(t Itemset) Itemset {
	out := make(Itemset, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	if len(out) == 0 {
		return nil
	}
	return out
}

// Intersect returns s ∩ t.
func (s Itemset) Intersect(t Itemset) Itemset {
	var out Itemset
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Minus returns s \ t.
func (s Itemset) Minus(t Itemset) Itemset {
	var out Itemset
	i, j := 0, 0
	for i < len(s) {
		switch {
		case j >= len(t) || s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			j++
		default:
			i++
			j++
		}
	}
	return out
}

// Intersects reports whether s and t share at least one item.
func (s Itemset) Intersects(t Itemset) bool {
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Extend returns s ∪ {x} assuming x > every item in s; this is the O(1)-ish
// append used by depth-first miners. It panics if the assumption is violated.
func (s Itemset) Extend(x int) Itemset {
	if len(s) > 0 && x <= s[len(s)-1] {
		panic(fmt.Sprintf("itemset: Extend(%d) would break canonical order of %v", x, s))
	}
	out := make(Itemset, len(s)+1)
	copy(out, s)
	out[len(s)] = x
	return out
}

// Clone returns a copy of s.
func (s Itemset) Clone() Itemset {
	if s == nil {
		return nil
	}
	out := make(Itemset, len(s))
	copy(out, s)
	return out
}

// Compare orders itemsets first by length, then lexicographically; it
// returns -1, 0 or +1. It provides the deterministic total order used for
// tie-breaking across the repository.
func Compare(a, b Itemset) int {
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// String renders the itemset with bare item ids, e.g. "{1 4 9}".
func (s Itemset) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, x := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte('}')
	return b.String()
}

// Format renders the itemset using the provided item names, falling back to
// ids when a name is missing.
func (s Itemset) Format(names []string) string {
	parts := make([]string, len(s))
	for i, x := range s {
		if x >= 0 && x < len(names) && names[x] != "" {
			parts[i] = names[x]
		} else {
			parts[i] = fmt.Sprintf("#%d", x)
		}
	}
	return strings.Join(parts, ", ")
}
