package itemset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewCanonicalizes(t *testing.T) {
	s := New(5, 1, 3, 1, 5)
	if !s.Equal(Itemset{1, 3, 5}) {
		t.Fatalf("New = %v", s)
	}
	if !s.IsCanonical() {
		t.Fatal("New result not canonical")
	}
	if New() != nil {
		t.Fatal("New() should be nil")
	}
}

func TestContains(t *testing.T) {
	s := New(2, 4, 8)
	for _, x := range []int{2, 4, 8} {
		if !s.Contains(x) {
			t.Fatalf("Contains(%d) = false", x)
		}
	}
	for _, x := range []int{1, 3, 9, -1} {
		if s.Contains(x) {
			t.Fatalf("Contains(%d) = true", x)
		}
	}
	if Itemset(nil).Contains(0) {
		t.Fatal("empty set contains nothing")
	}
}

func TestSubsetOf(t *testing.T) {
	cases := []struct {
		s, t Itemset
		want bool
	}{
		{nil, nil, true},
		{nil, New(1), true},
		{New(1), nil, false},
		{New(1, 3), New(1, 2, 3), true},
		{New(1, 4), New(1, 2, 3), false},
		{New(1, 2, 3), New(1, 2, 3), true},
		{New(0), New(1, 2), false},
	}
	for _, c := range cases {
		if got := c.s.SubsetOf(c.t); got != c.want {
			t.Errorf("%v ⊆ %v = %v, want %v", c.s, c.t, got, c.want)
		}
	}
}

func TestAlgebra(t *testing.T) {
	a, b := New(1, 3, 5), New(3, 4, 5, 7)
	if got := a.Union(b); !got.Equal(New(1, 3, 4, 5, 7)) {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(New(3, 5)) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(New(1)) {
		t.Fatalf("Minus = %v", got)
	}
	if got := b.Minus(a); !got.Equal(New(4, 7)) {
		t.Fatalf("Minus = %v", got)
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects = false")
	}
	if a.Intersects(New(2, 6)) {
		t.Fatal("disjoint sets must not intersect")
	}
	if Itemset(nil).Union(nil) != nil {
		t.Fatal("nil ∪ nil should be nil")
	}
}

func TestExtend(t *testing.T) {
	s := New(1, 2)
	e := s.Extend(5)
	if !e.Equal(New(1, 2, 5)) {
		t.Fatalf("Extend = %v", e)
	}
	if !s.Equal(New(1, 2)) {
		t.Fatal("Extend mutated receiver")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Extend with non-increasing item did not panic")
		}
	}()
	s.Extend(2)
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Itemset
		want int
	}{
		{nil, nil, 0},
		{New(1), nil, 1},
		{nil, New(1), -1},
		{New(1, 2), New(1, 3), -1},
		{New(2), New(1, 2), -1}, // shorter first
		{New(1, 2), New(1, 2), 0},
		{New(5), New(3), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestStringsAndFormat(t *testing.T) {
	s := New(0, 2)
	if s.String() != "{0 2}" {
		t.Fatalf("String = %q", s.String())
	}
	names := []string{"alpha", "beta", "gamma"}
	if got := s.Format(names); got != "alpha, gamma" {
		t.Fatalf("Format = %q", got)
	}
	if got := New(0, 7).Format(names); got != "alpha, #7" {
		t.Fatalf("Format fallback = %q", got)
	}
}

func TestClone(t *testing.T) {
	s := New(1, 2)
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Fatal("Clone shares storage")
	}
	if Itemset(nil).Clone() != nil {
		t.Fatal("Clone(nil) should be nil")
	}
}

// --- property-based tests against map semantics ---

func fromRef(m map[int]bool) Itemset {
	var xs []int
	for x, ok := range m {
		if ok {
			xs = append(xs, x)
		}
	}
	sort.Ints(xs)
	return Itemset(xs)
}

func randSet(r *rand.Rand) (Itemset, map[int]bool) {
	m := map[int]bool{}
	n := r.Intn(12)
	for i := 0; i < n; i++ {
		m[r.Intn(20)] = true
	}
	return fromRef(m), m
}

func TestQuickAlgebraMatchesMaps(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, ma := randSet(r)
		b, mb := randSet(r)
		union, inter, minus := map[int]bool{}, map[int]bool{}, map[int]bool{}
		for x := range ma {
			union[x] = true
			if mb[x] {
				inter[x] = true
			} else {
				minus[x] = true
			}
		}
		for x := range mb {
			union[x] = true
		}
		return a.Union(b).Equal(fromRef(union)) &&
			a.Intersect(b).Equal(fromRef(inter)) &&
			a.Minus(b).Equal(fromRef(minus)) &&
			a.Intersects(b) == (len(inter) > 0) &&
			a.SubsetOf(b) == (len(minus) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionAbsorption(t *testing.T) {
	// (a ∪ b) \ b == a \ b and (a ∩ b) ⊆ a ⊆ (a ∪ b).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, _ := randSet(r)
		b, _ := randSet(r)
		u := a.Union(b)
		return u.Minus(b).Equal(a.Minus(b)) &&
			a.Intersect(b).SubsetOf(a) &&
			a.SubsetOf(u) &&
			u.IsCanonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
