// Package krimp is a from-scratch implementation of the KRIMP algorithm
// (Vreeken, van Leeuwen & Siebes, "Krimp: mining itemsets that compress",
// DMKD 23(1), 2011) used as a baseline in §6.3: KRIMP is run on the
// *concatenation* of the two views, and the accepted non-singleton code
// table itemsets are then interpreted as bidirectional translation rules.
// Itemsets contained in a single view cannot form translation rules (one
// side would be empty) and are dropped during conversion; the paper's
// point — that the resulting "translation table" inflates the translation
// dramatically — is reproduced by scoring the converted table under the
// translation encoding.
package krimp

import (
	"context"
	"math"
	"sort"

	"twoview/internal/bitset"
	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/mdl"
	"twoview/internal/mine/eclat"
)

// Entry is one row of a code table: an itemset over the joined alphabet
// with its current usage under the cover function.
type Entry struct {
	Items itemset.Itemset // joined ids (right items offset by |I_L|)
	Supp  int             // support in the joined data
	Usage int             // cover usage (recomputed by CoverAll)
}

// CodeTable is a KRIMP code table in standard cover order. It always
// contains all singletons of the joined alphabet, so every transaction
// can be covered.
type CodeTable struct {
	entries []Entry // maintained in standard cover order
	nItems  int     // joined alphabet size
}

// Entries returns the entries in standard cover order. Read-only.
func (ct *CodeTable) Entries() []Entry { return ct.entries }

// standardCoverLess orders entries by length desc, support desc, then
// lexicographically — the standard cover order of the KRIMP paper.
func standardCoverLess(a, b *Entry) bool {
	if len(a.Items) != len(b.Items) {
		return len(a.Items) > len(b.Items)
	}
	if a.Supp != b.Supp {
		return a.Supp > b.Supp
	}
	return itemset.Compare(a.Items, b.Items) < 0
}

// standardCandidateLess orders candidates by support desc, length desc,
// then lexicographically — the standard candidate order.
func standardCandidateLess(a, b *eclat.FI) bool {
	if a.Supp != b.Supp {
		return a.Supp > b.Supp
	}
	if len(a.Items) != len(b.Items) {
		return len(a.Items) > len(b.Items)
	}
	return itemset.Compare(a.Items, b.Items) < 0
}

// Result is the outcome of running KRIMP.
type Result struct {
	CT *CodeTable
	// TotalLen is L(CT, D) = L(D|CT) + L(CT|D) in bits.
	TotalLen float64
	// BaselineLen is L(ST, D), the total size under the singleton-only
	// code table.
	BaselineLen float64
	// Candidates is the number of candidate itemsets considered.
	Candidates int
	// Accepted is the number of non-singleton itemsets in the final CT.
	Accepted int
}

// Ratio returns the KRIMP compression ratio L(CT,D)/L(ST,D) in percent.
func (r *Result) Ratio() float64 {
	if r.BaselineLen == 0 {
		return 100
	}
	return 100 * r.TotalLen / r.BaselineLen
}

// Options configures Mine.
type Options struct {
	// MinSupport is the candidate minimum support; values < 1 mean 1.
	MinSupport int
	// MaxResults guards against candidate explosion (0 = unbounded).
	MaxResults int
	// Pruning enables post-acceptance pruning: after each accepted
	// candidate, code table entries whose usage decreased are removed
	// if that improves compression (the KRIMP paper's recommended
	// variant).
	Pruning bool
}

// joined holds the concatenated two-view data.
type joined struct {
	rows []*bitset.Set // width nItems
	cols []*bitset.Set
	n    int // alphabet size
}

func joinViews(d *dataset.Dataset) *joined {
	nL, nR := d.Items(dataset.Left), d.Items(dataset.Right)
	j := &joined{n: nL + nR}
	j.rows = make([]*bitset.Set, d.Size())
	for t := 0; t < d.Size(); t++ {
		row := bitset.New(j.n)
		d.Row(dataset.Left, t).ForEach(func(i int) bool {
			row.Add(i)
			return true
		})
		d.Row(dataset.Right, t).ForEach(func(i int) bool {
			row.Add(nL + i)
			return true
		})
		j.rows[t] = row
	}
	j.cols = make([]*bitset.Set, j.n)
	for i := 0; i < j.n; i++ {
		j.cols[i] = bitset.New(d.Size())
	}
	for t, row := range j.rows {
		row.ForEach(func(i int) bool {
			j.cols[i].Add(t)
			return true
		})
	}
	return j
}

// coverTransaction covers one transaction with the standard greedy cover
// function (scan entries in standard cover order, use every entry
// contained in the still-uncovered part), adjusting usages by delta
// (+1 to add the transaction's contributions, -1 to remove them).
func (ct *CodeTable) coverTransaction(j *joined, t int, uncovered *bitset.Set, delta int) {
	uncovered.Copy(j.rows[t])
	for i := range ct.entries {
		e := &ct.entries[i]
		if !subsetOfBits(e.Items, uncovered) {
			continue
		}
		e.Usage += delta
		for _, it := range e.Items {
			uncovered.Remove(it)
		}
		if uncovered.Empty() {
			break
		}
	}
}

// coverAll recomputes all usages from scratch.
func (ct *CodeTable) coverAll(j *joined) {
	for i := range ct.entries {
		ct.entries[i].Usage = 0
	}
	uncovered := bitset.New(ct.nItems)
	for t := range j.rows {
		ct.coverTransaction(j, t, uncovered, 1)
	}
}

// recoverTids re-covers only the given transactions with the current
// table, adjusting usages by delta. Inserting or removing an itemset e
// can only change the cover of transactions containing e (for all others
// the relative order and availability of the remaining entries is
// unchanged), so the acceptance loop calls this with supp(e) instead of
// recovering the whole database.
func (ct *CodeTable) recoverTids(j *joined, tids *bitset.Set, delta int) {
	uncovered := bitset.New(ct.nItems)
	tids.ForEach(func(t int) bool {
		ct.coverTransaction(j, t, uncovered, delta)
		return true
	})
}

func subsetOfBits(s itemset.Itemset, b *bitset.Set) bool {
	for _, i := range s {
		if !b.Contains(i) {
			return false
		}
	}
	return true
}

// totalLen returns L(CT, D) = L(D|CT) + L(CT|D) for the current usages.
// stLen are the standard-code lengths of the singletons (for encoding the
// itemsets inside the code table).
func (ct *CodeTable) totalLen(stLen []float64) float64 {
	totalUsage := 0
	for i := range ct.entries {
		totalUsage += ct.entries[i].Usage
	}
	if totalUsage == 0 {
		return 0
	}
	logTotal := math.Log2(float64(totalUsage))
	dataBits, tableBits := 0.0, 0.0
	for i := range ct.entries {
		e := &ct.entries[i]
		if e.Usage == 0 {
			continue // zero-usage entries carry no code
		}
		codeLen := logTotal - math.Log2(float64(e.Usage))
		dataBits += float64(e.Usage) * codeLen
		tableBits += codeLen
		for _, it := range e.Items {
			tableBits += stLen[it]
		}
	}
	return dataBits + tableBits
}

// Mine runs KRIMP on the joined views of d.
func Mine(d *dataset.Dataset, opt Options) (*Result, error) {
	if opt.MinSupport < 1 {
		opt.MinSupport = 1
	}
	j := joinViews(d)

	// Standard code lengths: singleton codes under the singleton-only
	// cover, i.e. usage(i) = supp(i), total = total ones.
	totalOnes := 0
	for _, c := range j.cols {
		totalOnes += c.Count()
	}
	stLen := make([]float64, j.n)
	for i, c := range j.cols {
		if s := c.Count(); s > 0 {
			stLen[i] = math.Log2(float64(totalOnes)) - math.Log2(float64(s))
		} else {
			stLen[i] = math.Inf(1)
		}
	}

	// Initial code table: all occurring singletons.
	ct := &CodeTable{nItems: j.n}
	for i, c := range j.cols {
		if !c.Empty() {
			ct.entries = append(ct.entries, Entry{Items: itemset.New(i), Supp: c.Count()})
		}
	}
	sortEntries(ct)
	ct.coverAll(j)
	baseline := ct.totalLen(stLen)
	curLen := baseline

	// Candidates: closed frequent itemsets of the joined data in
	// standard candidate order.
	fis, err := eclat.Mine(context.Background(), d, eclat.Options{
		MinSupport: opt.MinSupport,
		Closed:     true,
		MaxResults: opt.MaxResults,
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(fis, func(a, b int) bool { return standardCandidateLess(&fis[a], &fis[b]) })

	for i := range fis {
		fi := &fis[i]
		if len(fi.Items) < 2 {
			continue
		}
		// Incremental cover update: only transactions containing the
		// candidate can change their cover.
		ct.recoverTids(j, fi.Tids, -1)
		ct.entries = append(ct.entries, Entry{Items: fi.Items, Supp: fi.Supp})
		sortEntries(ct)
		ct.recoverTids(j, fi.Tids, +1)
		newLen := ct.totalLen(stLen)
		if newLen < curLen {
			curLen = newLen
			if opt.Pruning {
				curLen = ct.prune(j, stLen, curLen)
			}
		} else {
			ct.recoverTids(j, fi.Tids, -1)
			removeEntry(ct, fi.Items)
			ct.recoverTids(j, fi.Tids, +1)
		}
	}

	accepted := 0
	for i := range ct.entries {
		if len(ct.entries[i].Items) > 1 {
			accepted++
		}
	}
	return &Result{
		CT:          ct,
		TotalLen:    curLen,
		BaselineLen: baseline,
		Candidates:  len(fis),
		Accepted:    accepted,
	}, nil
}

// prune removes non-singleton entries whose removal improves compression,
// iterating until stable (the KRIMP "prune on acceptance" strategy,
// considering entries by increasing usage).
func (ct *CodeTable) prune(j *joined, stLen []float64, curLen float64) float64 {
	for {
		// Candidates: non-singleton entries, lowest usage first.
		idx := make([]int, 0, len(ct.entries))
		for i := range ct.entries {
			if len(ct.entries[i].Items) > 1 {
				idx = append(idx, i)
			}
		}
		sort.Slice(idx, func(a, b int) bool {
			ea, eb := &ct.entries[idx[a]], &ct.entries[idx[b]]
			if ea.Usage != eb.Usage {
				return ea.Usage < eb.Usage
			}
			return itemset.Compare(ea.Items, eb.Items) < 0
		})
		improved := false
		for _, i := range idx {
			items := ct.entries[i].Items
			tids := suppSetOf(j, items)
			ct.recoverTids(j, tids, -1)
			removeEntry(ct, items)
			ct.recoverTids(j, tids, +1)
			if l := ct.totalLen(stLen); l < curLen {
				curLen = l
				improved = true
				break // indices shifted; restart scan
			}
			// Put it back.
			ct.recoverTids(j, tids, -1)
			ct.entries = append(ct.entries, Entry{Items: items, Supp: tids.Count()})
			sortEntries(ct)
			ct.recoverTids(j, tids, +1)
		}
		if !improved {
			return curLen
		}
	}
}

func suppSetOf(j *joined, items itemset.Itemset) *bitset.Set {
	tids := bitset.New(j.cols[0].Len())
	tids.Fill()
	for _, i := range items {
		tids.And(j.cols[i])
	}
	return tids
}

func sortEntries(ct *CodeTable) {
	sort.Slice(ct.entries, func(a, b int) bool {
		return standardCoverLess(&ct.entries[a], &ct.entries[b])
	})
}

func removeEntry(ct *CodeTable, items itemset.Itemset) {
	for i := range ct.entries {
		if ct.entries[i].Items.Equal(items) {
			ct.entries = append(ct.entries[:i], ct.entries[i+1:]...)
			return
		}
	}
}

// ToTranslationTable interprets the code table as a translation table, as
// §6.3 prescribes: every used non-singleton itemset spanning both views
// becomes one bidirectional rule. Itemsets lying within a single view
// cannot form valid rules (one side would be empty); they are returned
// separately (as joined-id itemsets) so callers can still charge their
// encoding cost to the table — the paper treats the *complete* code table
// as the model, which is what makes KRIMP's translation compression so
// poor (ratios up to 816% in Table 3).
func ToTranslationTable(res *Result, d *dataset.Dataset) (*core.Table, []itemset.Itemset) {
	nL := d.Items(dataset.Left)
	t := &core.Table{}
	var dropped []itemset.Itemset
	for _, e := range res.CT.Entries() {
		if len(e.Items) < 2 || e.Usage == 0 {
			continue
		}
		x, y := eclat.Split(e.Items, nL)
		if x.Empty() || y.Empty() {
			dropped = append(dropped, e.Items)
			continue
		}
		t.Rules = append(t.Rules, core.Rule{X: x, Dir: core.Both, Y: y})
	}
	return t, dropped
}

// SingleViewTableLen returns the encoded length, under the translation
// encoding, of single-view code table itemsets when kept in a translation
// table: item code lengths plus one direction bit per itemset. This is
// the cost the paper implicitly charges by putting the whole code table
// into the model.
func SingleViewTableLen(d *dataset.Dataset, coder *mdl.Coder, dropped []itemset.Itemset) float64 {
	nL := d.Items(dataset.Left)
	total := 0.0
	for _, items := range dropped {
		x, y := eclat.Split(items, nL)
		total += coder.SetLen(dataset.Left, x) + coder.SetLen(dataset.Right, y) + 1
	}
	return total
}
