package krimp

import (
	"math"
	"math/rand"
	"testing"

	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/mdl"
)

// patternData has a strong joint pattern spanning both views ({l0,l1,r0})
// plus noise, so KRIMP should accept at least that itemset.
func patternData(t testing.TB) *dataset.Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(11))
	d := dataset.MustNew(dataset.GenericNames("l", 4), dataset.GenericNames("r", 4))
	for i := 0; i < 100; i++ {
		var left, right []int
		if i%2 == 0 {
			left = append(left, 0, 1)
			right = append(right, 0)
		}
		for j := 2; j < 4; j++ {
			if r.Intn(4) == 0 {
				left = append(left, j)
			}
			if r.Intn(4) == 0 {
				right = append(right, j)
			}
		}
		if err := d.AddRow(left, right); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestMineCompresses(t *testing.T) {
	d := patternData(t)
	res, err := Mine(d, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalLen >= res.BaselineLen {
		t.Fatalf("KRIMP did not compress: %v >= %v", res.TotalLen, res.BaselineLen)
	}
	if res.Ratio() >= 100 {
		t.Fatalf("Ratio = %v", res.Ratio())
	}
	if res.Accepted == 0 {
		t.Fatal("no itemsets accepted")
	}
	// The planted pattern (joined ids {0,1,4}) must be in the table.
	found := false
	for _, e := range res.CT.Entries() {
		if e.Items.Equal(itemset.New(0, 1, 4)) && e.Usage > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("planted itemset not accepted")
	}
}

func TestCoverDisjointAndComplete(t *testing.T) {
	d := patternData(t)
	res, err := Mine(d, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Re-cover and verify: usages sum to at least the number of
	// transactions, and every transaction is covered exactly (cover is a
	// partition of the transaction's items).
	j := joinViews(d)
	ct := res.CT
	ct.coverAll(j)
	for _, row := range j.rows {
		remaining := row.Clone()
		for _, e := range ct.Entries() {
			if subsetOfBits(e.Items, remaining) {
				for _, it := range e.Items {
					remaining.Remove(it)
				}
			}
		}
		if !remaining.Empty() {
			t.Fatal("transaction not fully covered")
		}
	}
	total := 0
	for _, e := range ct.Entries() {
		if e.Usage < 0 {
			t.Fatal("negative usage")
		}
		total += e.Usage
	}
	if total == 0 {
		t.Fatal("zero total usage")
	}
}

func TestStandardOrders(t *testing.T) {
	a := &Entry{Items: itemset.New(0, 1, 2), Supp: 5}
	b := &Entry{Items: itemset.New(0, 1), Supp: 9}
	if !standardCoverLess(a, b) {
		t.Fatal("cover order must put longer sets first")
	}
	c := &Entry{Items: itemset.New(0, 2), Supp: 9}
	if !standardCoverLess(b, c) {
		t.Fatal("cover order must break length ties lexicographically at equal support")
	}
	dEnt := &Entry{Items: itemset.New(0, 3), Supp: 11}
	if standardCoverLess(b, dEnt) {
		t.Fatal("cover order must put higher support first at equal length")
	}
}

func TestRatioBaselineGuard(t *testing.T) {
	r := &Result{TotalLen: 10, BaselineLen: 0}
	if r.Ratio() != 100 {
		t.Fatal("zero baseline should give 100")
	}
}

func TestToTranslationTable(t *testing.T) {
	d := patternData(t)
	res, err := Mine(d, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	tab, dropped := ToTranslationTable(res, d)
	if tab.Size()+len(dropped) == 0 {
		t.Fatal("conversion produced nothing at all")
	}
	coder := mdl.NewCoder(d)
	extra := SingleViewTableLen(d, coder, dropped)
	if (len(dropped) > 0) != (extra > 0) {
		t.Fatalf("dropped=%d but extra length %v", len(dropped), extra)
	}
	// Each dropped itemset costs at least its direction bit.
	if extra < float64(len(dropped)) {
		t.Fatalf("extra length %v below direction-bit floor %d", extra, len(dropped))
	}
	for _, r := range tab.Rules {
		if r.Dir != core.Both {
			t.Fatal("KRIMP-derived rules must be bidirectional")
		}
		if r.X.Empty() || r.Y.Empty() {
			t.Fatal("single-view itemset leaked into the table")
		}
	}
	if err := tab.Validate(d); err != nil {
		t.Fatal(err)
	}
}

func TestPruningNeverWorse(t *testing.T) {
	d := patternData(t)
	plain, err := Mine(d, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Mine(d, Options{MinSupport: 2, Pruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.TotalLen > plain.TotalLen+1e-9 {
		t.Fatalf("pruning made compression worse: %v > %v", pruned.TotalLen, plain.TotalLen)
	}
}

func TestMineDeterministic(t *testing.T) {
	d := patternData(t)
	a, err := Mine(d, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(d, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.TotalLen-b.TotalLen) > 1e-12 || a.Accepted != b.Accepted {
		t.Fatal("KRIMP not deterministic")
	}
}

func TestJoinViews(t *testing.T) {
	d := dataset.MustNew([]string{"a", "b"}, []string{"p"})
	d.AddRow([]int{1}, []int{0})
	j := joinViews(d)
	if j.n != 3 {
		t.Fatalf("joined alphabet = %d", j.n)
	}
	if !j.rows[0].Contains(1) || !j.rows[0].Contains(2) || j.rows[0].Contains(0) {
		t.Fatalf("joined row wrong: %v", j.rows[0])
	}
	if j.cols[2].Count() != 1 {
		t.Fatal("joined columns wrong")
	}
}

// The incremental cover maintenance must agree exactly with a from-scratch
// re-cover: same usages and same total length.
func TestIncrementalCoverMatchesFull(t *testing.T) {
	d := patternData(t)
	for _, pruning := range []bool{false, true} {
		res, err := Mine(d, Options{MinSupport: 2, Pruning: pruning})
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]int{}
		for _, e := range res.CT.Entries() {
			got[e.Items.String()] = e.Usage
		}
		j := joinViews(d)
		res.CT.coverAll(j)
		for _, e := range res.CT.Entries() {
			if got[e.Items.String()] != e.Usage {
				t.Fatalf("pruning=%v: usage of %v: incremental %d, full %d",
					pruning, e.Items, got[e.Items.String()], e.Usage)
			}
		}
	}
}
