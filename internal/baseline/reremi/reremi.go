// Package reremi implements the redescription mining baseline of §6.3 in
// the spirit of the REREMI algorithm (Galbrun & Miettinen, 2012),
// restricted — as in the paper's experiments — to monotone conjunctions:
// a redescription is a pair of itemsets (X over I_L, Y over I_R) whose
// support sets are nearly identical, quality being the Jaccard coefficient
// of the two supports. Mining proceeds from the best singleton pairs by
// alternating greedy extension driven purely by accuracy, mirroring
// REREMI's "ad-hoc pruning, driven primarily by accuracy". Every accepted
// redescription is a bidirectional rule; the set is typically redundant
// and covers only part of the two-view structure, which is exactly the
// behaviour Table 3 contrasts with TRANSLATOR.
package reremi

import (
	"sort"

	"twoview/internal/bitset"
	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
)

// Redescription is a pair of monotone conjunctive queries with its
// accuracy.
type Redescription struct {
	X, Y itemset.Itemset
	// Supp is |supp(X) ∩ supp(Y)|.
	Supp int
	// Jaccard is |supp(X) ∩ supp(Y)| / |supp(X) ∪ supp(Y)|.
	Jaccard float64
}

// Options configures Mine.
type Options struct {
	// MinJaccard is the acceptance threshold; 0 means 0.2.
	MinJaccard float64
	// MinSupport is the minimal joint support; values < 1 mean 1.
	MinSupport int
	// MaxItems bounds the query length per side; 0 means 4.
	MaxItems int
	// InitialPairs is the number of singleton pairs seeding the greedy
	// extension; 0 means 100.
	InitialPairs int
	// MaxRules caps the output; 0 means 100.
	MaxRules int
}

func (o Options) withDefaults() Options {
	if o.MinJaccard == 0 {
		o.MinJaccard = 0.2
	}
	if o.MinSupport < 1 {
		o.MinSupport = 1
	}
	if o.MaxItems == 0 {
		o.MaxItems = 4
	}
	if o.InitialPairs == 0 {
		o.InitialPairs = 100
	}
	if o.MaxRules == 0 {
		o.MaxRules = 100
	}
	return o
}

// Mine returns the redescriptions found by alternating greedy extension
// from the best singleton pairs, deduplicated and sorted by decreasing
// accuracy.
func Mine(d *dataset.Dataset, opt Options) []Redescription {
	opt = opt.withDefaults()
	type seed struct {
		i, j int
		jac  float64
	}
	colsL, colsR := d.Columns(dataset.Left), d.Columns(dataset.Right)
	var seeds []seed
	for i := range colsL {
		if colsL[i].Empty() {
			continue
		}
		for j := range colsR {
			if colsR[j].Empty() {
				continue
			}
			inter := bitset.AndCount(colsL[i], colsR[j])
			if inter < opt.MinSupport {
				continue
			}
			union := colsL[i].Count() + colsR[j].Count() - inter
			seeds = append(seeds, seed{i, j, float64(inter) / float64(union)})
		}
	}
	sort.Slice(seeds, func(a, b int) bool {
		if seeds[a].jac != seeds[b].jac {
			return seeds[a].jac > seeds[b].jac
		}
		if seeds[a].i != seeds[b].i {
			return seeds[a].i < seeds[b].i
		}
		return seeds[a].j < seeds[b].j
	})
	if len(seeds) > opt.InitialPairs {
		seeds = seeds[:opt.InitialPairs]
	}

	seen := map[string]bool{}
	var out []Redescription
	for _, sd := range seeds {
		rd := extend(d, itemset.New(sd.i), itemset.New(sd.j), opt)
		if rd == nil {
			continue
		}
		key := rd.X.String() + "|" + rd.Y.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, *rd)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Jaccard != out[b].Jaccard {
			return out[a].Jaccard > out[b].Jaccard
		}
		if c := itemset.Compare(out[a].X, out[b].X); c != 0 {
			return c < 0
		}
		return itemset.Compare(out[a].Y, out[b].Y) < 0
	})
	if len(out) > opt.MaxRules {
		out = out[:opt.MaxRules]
	}
	return out
}

// extend alternately grows X and Y by the single item that maximizes the
// Jaccard coefficient, as long as it improves, then applies the
// acceptance thresholds.
func extend(d *dataset.Dataset, x, y itemset.Itemset, opt Options) *Redescription {
	suppX := d.SupportSet(dataset.Left, x)
	suppY := d.SupportSet(dataset.Right, y)
	cur := jaccard(suppX, suppY)
	for {
		improved := false
		if len(x) < opt.MaxItems {
			if item, jac := bestExtension(d, dataset.Left, x, suppX, suppY, opt.MinSupport); item >= 0 && jac > cur {
				x = x.Union(itemset.New(item))
				suppX.And(d.Columns(dataset.Left)[item])
				cur = jac
				improved = true
			}
		}
		if len(y) < opt.MaxItems {
			if item, jac := bestExtension(d, dataset.Right, y, suppY, suppX, opt.MinSupport); item >= 0 && jac > cur {
				y = y.Union(itemset.New(item))
				suppY.And(d.Columns(dataset.Right)[item])
				cur = jac
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	inter := bitset.AndCount(suppX, suppY)
	if cur < opt.MinJaccard || inter < opt.MinSupport {
		return nil
	}
	return &Redescription{X: x, Y: y, Supp: inter, Jaccard: cur}
}

// bestExtension returns the item of view v (not yet in q) whose addition
// to the query maximizes Jaccard against the other side's support, with a
// deterministic tie-break. It returns -1 when no extension keeps the
// joint support above minSupp.
func bestExtension(d *dataset.Dataset, v dataset.View, q itemset.Itemset, suppQ, suppOther *bitset.Set, minSupp int) (int, float64) {
	cols := d.Columns(v)
	bestItem, bestJac := -1, -1.0
	probe := bitset.New(d.Size())
	for i := range cols {
		if q.Contains(i) {
			continue
		}
		bitset.IntersectInto(probe, suppQ, cols[i])
		inter := bitset.AndCount(probe, suppOther)
		if inter < minSupp {
			continue
		}
		union := probe.Count() + suppOther.Count() - inter
		jac := float64(inter) / float64(union)
		if jac > bestJac {
			bestItem, bestJac = i, jac
		}
	}
	return bestItem, bestJac
}

func jaccard(a, b *bitset.Set) float64 {
	inter := bitset.AndCount(a, b)
	union := a.Count() + b.Count() - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// ToTable converts redescriptions into a translation table of
// bidirectional rules for scoring under the paper's encoding.
func ToTable(rds []Redescription) *core.Table {
	t := &core.Table{Rules: make([]core.Rule, len(rds))}
	for i, rd := range rds {
		t.Rules[i] = core.Rule{X: rd.X, Dir: core.Both, Y: rd.Y}
	}
	return t
}

// MaxConfidence returns c+ of a redescription interpreted as a
// bidirectional rule on the dataset.
func MaxConfidence(d *dataset.Dataset, rd Redescription) float64 {
	suppX := d.Support(dataset.Left, rd.X)
	suppY := d.Support(dataset.Right, rd.Y)
	best := 0.0
	if suppX > 0 {
		best = float64(rd.Supp) / float64(suppX)
	}
	if suppY > 0 {
		if c := float64(rd.Supp) / float64(suppY); c > best {
			best = c
		}
	}
	return best
}
