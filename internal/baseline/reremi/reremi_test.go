package reremi

import (
	"math"
	"math/rand"
	"testing"

	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
)

// redescData plants two redescriptions: ({l0,l1},{r0}) with Jaccard 1 and
// ({l2},{r1}) with high but imperfect Jaccard.
func redescData(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := dataset.MustNew([]string{"l0", "l1", "l2", "l3"}, []string{"r0", "r1", "r2"})
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 120; i++ {
		var left, right []int
		if i%3 == 0 { // 40 rows: l0 l1 <=> r0
			left = append(left, 0, 1)
			right = append(right, 0)
		} else if i%3 == 1 { // l0 alone, no r0
			left = append(left, 0)
		}
		if i%4 == 0 { // 30 rows: l2 <=> r1 ...
			left = append(left, 2)
			if i != 0 { // ... except one row
				right = append(right, 1)
			}
		}
		if r.Intn(6) == 0 {
			left = append(left, 3)
		}
		if r.Intn(6) == 0 {
			right = append(right, 2)
		}
		if err := d.AddRow(left, right); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestMineFindsPlantedRedescriptions(t *testing.T) {
	d := redescData(t)
	rds := Mine(d, Options{MinJaccard: 0.5, MinSupport: 5})
	if len(rds) == 0 {
		t.Fatal("nothing found")
	}
	// The perfect redescription must be first (Jaccard 1).
	first := rds[0]
	if math.Abs(first.Jaccard-1) > 1e-12 {
		t.Fatalf("best Jaccard = %v, want 1 (%v / %v)", first.Jaccard, first.X, first.Y)
	}
	if !first.Y.Equal(itemset.New(0)) || !first.X.Contains(1) {
		t.Fatalf("unexpected best redescription %v / %v", first.X, first.Y)
	}
	// Some accepted redescription must capture the imperfect planted pair
	// l2 ~ r1 with high accuracy (other, noisier rules may contain the
	// same items with lower Jaccard — redescription sets are redundant).
	foundL2 := false
	for _, rd := range rds {
		if rd.X.Contains(2) && rd.Y.Contains(1) && rd.Jaccard >= 0.9 {
			foundL2 = true
		}
	}
	if !foundL2 {
		t.Fatal("imperfect planted redescription not found accurately")
	}
}

func TestMineThresholds(t *testing.T) {
	d := redescData(t)
	for _, rd := range Mine(d, Options{MinJaccard: 0.8, MinSupport: 10}) {
		if rd.Jaccard < 0.8 {
			t.Fatalf("Jaccard %v below threshold", rd.Jaccard)
		}
		if rd.Supp < 10 {
			t.Fatalf("support %d below threshold", rd.Supp)
		}
	}
}

func TestMineMaxItemsRespected(t *testing.T) {
	d := redescData(t)
	for _, rd := range Mine(d, Options{MinJaccard: 0.1, MaxItems: 1}) {
		if len(rd.X) > 1 || len(rd.Y) > 1 {
			t.Fatalf("query too long: %v / %v", rd.X, rd.Y)
		}
	}
}

func TestMineMaxRules(t *testing.T) {
	d := redescData(t)
	rds := Mine(d, Options{MinJaccard: 0.01, MaxRules: 2})
	if len(rds) > 2 {
		t.Fatalf("MaxRules violated: %d", len(rds))
	}
}

func TestMineDeterministic(t *testing.T) {
	d := redescData(t)
	a := Mine(d, Options{MinJaccard: 0.3})
	b := Mine(d, Options{MinJaccard: 0.3})
	if len(a) != len(b) {
		t.Fatal("not deterministic")
	}
	for i := range a {
		if !a[i].X.Equal(b[i].X) || !a[i].Y.Equal(b[i].Y) {
			t.Fatal("redescription mismatch")
		}
	}
}

func TestJaccardDefinition(t *testing.T) {
	d := redescData(t)
	rds := Mine(d, Options{MinJaccard: 0.3})
	for _, rd := range rds {
		suppX := d.SupportSet(dataset.Left, rd.X)
		suppY := d.SupportSet(dataset.Right, rd.Y)
		inter := 0
		suppX.ForEach(func(i int) bool {
			if suppY.Contains(i) {
				inter++
			}
			return true
		})
		union := suppX.Count() + suppY.Count() - inter
		if rd.Supp != inter {
			t.Fatalf("Supp %d != |X∩Y| %d", rd.Supp, inter)
		}
		if math.Abs(rd.Jaccard-float64(inter)/float64(union)) > 1e-12 {
			t.Fatalf("Jaccard mismatch for %v/%v", rd.X, rd.Y)
		}
	}
}

func TestToTableAndMaxConfidence(t *testing.T) {
	d := redescData(t)
	rds := Mine(d, Options{MinJaccard: 0.5})
	tab := ToTable(rds)
	if tab.Size() != len(rds) {
		t.Fatal("ToTable lost redescriptions")
	}
	for _, r := range tab.Rules {
		if r.Dir != core.Both {
			t.Fatal("redescription rules must be bidirectional")
		}
	}
	if err := tab.Validate(d); err != nil {
		t.Fatal(err)
	}
	// c+ of the perfect redescription is 1.
	if c := MaxConfidence(d, rds[0]); math.Abs(c-1) > 1e-12 {
		t.Fatalf("MaxConfidence = %v, want 1", c)
	}
}
