package sigrules

import (
	"math"
	"math/rand"
	"testing"

	"twoview/internal/core"
	"twoview/internal/dataset"
)

func TestBinomialTailPExactSmall(t *testing.T) {
	// Direct enumeration for n = 4, p = 0.5: P[X>=2] = 11/16.
	if got := BinomialTailP(2, 4, 0.5); math.Abs(got-11.0/16) > 1e-12 {
		t.Fatalf("P[X>=2|4,0.5] = %v, want %v", got, 11.0/16)
	}
	if got := BinomialTailP(0, 10, 0.3); got != 1 {
		t.Fatalf("P[X>=0] = %v, want 1", got)
	}
	if got := BinomialTailP(11, 10, 0.3); got != 0 {
		t.Fatalf("P[X>11 trials] = %v, want 0", got)
	}
	if got := BinomialTailP(10, 10, 0.5); math.Abs(got-math.Pow(0.5, 10)) > 1e-15 {
		t.Fatalf("P[X=n] = %v", got)
	}
	if BinomialTailP(1, 10, 0) != 0 || BinomialTailP(1, 10, 1) != 1 {
		t.Fatal("degenerate p handling wrong")
	}
}

func TestBinomialTailPMonotonicity(t *testing.T) {
	// Tail probability decreases in k and increases in p.
	prev := 2.0
	for k := 0; k <= 20; k++ {
		cur := BinomialTailP(k, 20, 0.4)
		if cur > prev+1e-12 {
			t.Fatalf("tail not decreasing at k=%d", k)
		}
		prev = cur
	}
	if BinomialTailP(5, 20, 0.2) > BinomialTailP(5, 20, 0.6) {
		t.Fatal("tail not increasing in p")
	}
}

func TestBinomialTailPAgainstBruteForce(t *testing.T) {
	choose := func(n, k int) float64 {
		c := 1.0
		for i := 0; i < k; i++ {
			c = c * float64(n-i) / float64(i+1)
		}
		return c
	}
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(25)
		k := r.Intn(n + 1)
		p := r.Float64()
		want := 0.0
		for i := k; i <= n; i++ {
			want += choose(n, i) * math.Pow(p, float64(i)) * math.Pow(1-p, float64(n-i))
		}
		if got := BinomialTailP(k, n, p); math.Abs(got-want) > 1e-9 {
			t.Fatalf("P[X>=%d|%d,%v] = %v, want %v", k, n, p, got, want)
		}
	}
}

// strongData plants a near-perfect implication l0 → r0 in 200 rows plus a
// noise item; big enough that the holdout half still shows significance.
func strongData(t *testing.T) *dataset.Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(17))
	d := dataset.MustNew([]string{"l0", "l1"}, []string{"r0", "r1"})
	for i := 0; i < 200; i++ {
		var left, right []int
		if i%2 == 0 {
			left = append(left, 0)
			right = append(right, 0) // l0 ⇒ r0 always
		}
		if r.Intn(4) == 0 {
			left = append(left, 1)
		}
		if r.Intn(4) == 0 {
			right = append(right, 1)
		}
		if err := d.AddRow(left, right); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestMineFindsSignificantRule(t *testing.T) {
	d := strongData(t)
	rules, err := Mine(d, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no significant rules found")
	}
	found := false
	for _, r := range rules {
		if r.X.Equal([]int{0}) && r.Y.Equal([]int{0}) {
			found = true
			if r.Conf < 0.95 {
				t.Fatalf("l0→r0 confidence %v too low", r.Conf)
			}
			// The implication holds both ways here (r0 occurs only with
			// l0), so the merged rule should be bidirectional.
			if r.Dir != core.Both {
				t.Fatalf("expected bidirectional merge, got %v", r.Dir)
			}
		}
	}
	if !found {
		t.Fatalf("planted rule not found; got %d rules", len(rules))
	}
	// No rule involving the pure-noise items should be significant.
	for _, r := range rules {
		if r.X.Equal([]int{1}) && r.Y.Equal([]int{1}) {
			t.Fatal("noise rule declared significant")
		}
	}
}

func TestMineRejectsNoise(t *testing.T) {
	// Fully independent views: nothing should be significant.
	r := rand.New(rand.NewSource(23))
	d := dataset.MustNew(dataset.GenericNames("l", 4), dataset.GenericNames("r", 4))
	for i := 0; i < 300; i++ {
		var left, right []int
		for j := 0; j < 4; j++ {
			if r.Intn(3) == 0 {
				left = append(left, j)
			}
			if r.Intn(3) == 0 {
				right = append(right, j)
			}
		}
		d.AddRow(left, right)
	}
	rules, err := Mine(d, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Bonferroni keeps the family-wise error at 5%; tolerate at most one
	// fluke to keep the test robust.
	if len(rules) > 1 {
		t.Fatalf("%d rules declared significant on independent noise", len(rules))
	}
}

func TestMineTinyDataset(t *testing.T) {
	d := dataset.MustNew([]string{"a"}, []string{"b"})
	d.AddRow([]int{0}, []int{0})
	rules, err := Mine(d, Options{})
	if err != nil || len(rules) != 0 {
		t.Fatalf("tiny dataset should yield nothing: %v, %v", rules, err)
	}
}

func TestToTable(t *testing.T) {
	d := strongData(t)
	rules, err := Mine(d, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tab := ToTable(rules)
	if tab.Size() != len(rules) {
		t.Fatal("ToTable lost rules")
	}
	if err := tab.Validate(d); err != nil {
		t.Fatal(err)
	}
}

func TestMineDeterministicForSeed(t *testing.T) {
	d := strongData(t)
	a, err := Mine(d, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(d, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("not deterministic")
	}
	for i := range a {
		if !a[i].X.Equal(b[i].X) || !a[i].Y.Equal(b[i].Y) || a[i].Dir != b[i].Dir {
			t.Fatal("rule mismatch between runs")
		}
	}
}
