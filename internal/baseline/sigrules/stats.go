package sigrules

import "math"

// BinomialTailP returns P[Bin(n, p) >= k], the one-sided p-value of
// observing at least k successes in n trials under success probability p.
// Computed in log space for numerical stability.
func BinomialTailP(k, n int, p float64) float64 {
	switch {
	case n < 0 || k < 0:
		return 1
	case k <= 0:
		return 1
	case k > n:
		return 0
	case p <= 0:
		return 0 // k >= 1 successes are impossible
	case p >= 1:
		return 1
	}
	lp, lq := math.Log(p), math.Log1p(-p)
	total := math.Inf(-1) // log(0)
	for i := k; i <= n; i++ {
		lterm := logChoose(n, i) + float64(i)*lp + float64(n-i)*lq
		total = logAdd(total, lterm)
	}
	pv := math.Exp(total)
	if pv > 1 {
		pv = 1
	}
	return pv
}

// logChoose returns log C(n, k) via the log-gamma function.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// logAdd returns log(exp(a) + exp(b)) without overflow.
func logAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}
