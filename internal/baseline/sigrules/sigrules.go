// Package sigrules implements the significant rule discovery baseline of
// §6.3 in the spirit of MAGNUM OPUS (Webb, "Discovering significant
// patterns", Machine Learning 68(1), 2007): candidate rules with an
// itemset antecedent from one view and a single-item consequent from the
// other are ranked by leverage on an exploratory half of the data, and the
// top candidates are then assessed on a holdout half with one-sided
// binomial tests under a Bonferroni correction. The tool is applied once
// per direction (antecedent restricted to the left view, then to the
// right view) and the resulting rule sets are merged, turning rules found
// in both directions into single bidirectional rules — exactly the
// protocol the paper uses to obtain comparable two-view output.
package sigrules

import (
	"context"
	"math/rand"
	"sort"

	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/mine/eclat"
)

// Options configures Mine.
type Options struct {
	// MinSupport is the minimal absolute support of X ∪ {c} on the
	// exploratory half. Values < 1 mean 1.
	MinSupport int
	// MaxAntecedent bounds |X|; 0 means 4 (Magnum Opus' default search
	// depth is of this order).
	MaxAntecedent int
	// TopK bounds the number of candidates per direction that proceed
	// to holdout assessment; 0 means 1000.
	TopK int
	// Alpha is the family-wise significance level; 0 means 0.05.
	Alpha float64
	// Seed drives the exploratory/holdout split.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MinSupport < 1 {
		o.MinSupport = 1
	}
	if o.MaxAntecedent == 0 {
		o.MaxAntecedent = 4
	}
	if o.TopK == 0 {
		o.TopK = 1000
	}
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	return o
}

// Rule is a significant rule with its quality measures on the full data.
type Rule struct {
	X, Y itemset.Itemset
	Dir  core.Direction
	// Supp is |supp(X ∪ Y)| on the full data.
	Supp int
	// Conf is c+ on the full data.
	Conf float64
	// PValue is the (uncorrected) holdout binomial p-value; for
	// bidirectional rules, the larger of the two directions.
	PValue float64
}

type candidate struct {
	ant      itemset.Itemset // antecedent, in its own view's ids
	cons     int             // consequent item id in the opposite view
	leverage float64
}

// Mine runs the two passes and merges their outputs.
func Mine(d *dataset.Dataset, opt Options) ([]Rule, error) {
	opt = opt.withDefaults()
	if d.Size() < 4 {
		return nil, nil // nothing to split or test
	}
	expl, hold, err := split(d, opt.Seed)
	if err != nil {
		return nil, err
	}

	fwd, err := minePass(d, expl, hold, dataset.Left, opt)
	if err != nil {
		return nil, err
	}
	bwd, err := minePass(d, expl, hold, dataset.Right, opt)
	if err != nil {
		return nil, err
	}

	// Merge: identical (X, Y) found in both directions → bidirectional.
	type key struct{ x, y string }
	byKey := map[key]int{}
	var out []Rule
	for _, r := range fwd {
		byKey[key{r.X.String(), r.Y.String()}] = len(out)
		out = append(out, r)
	}
	for _, r := range bwd {
		if i, ok := byKey[key{r.X.String(), r.Y.String()}]; ok {
			prev := &out[i]
			prev.Dir = core.Both
			if r.PValue > prev.PValue {
				prev.PValue = r.PValue
			}
			if r.Conf > prev.Conf {
				prev.Conf = r.Conf
			}
			continue
		}
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].PValue != out[b].PValue {
			return out[a].PValue < out[b].PValue
		}
		ra := core.Rule{X: out[a].X, Dir: out[a].Dir, Y: out[a].Y}
		rb := core.Rule{X: out[b].X, Dir: out[b].Dir, Y: out[b].Y}
		return ra.Compare(rb) < 0
	})
	return out, nil
}

// split shuffles transactions and halves the dataset.
func split(d *dataset.Dataset, seed int64) (expl, hold *dataset.Dataset, err error) {
	r := rand.New(rand.NewSource(seed))
	perm := r.Perm(d.Size())
	half := len(perm) / 2
	if expl, err = d.Subset(perm[:half]); err != nil {
		return nil, nil, err
	}
	if hold, err = d.Subset(perm[half:]); err != nil {
		return nil, nil, err
	}
	return expl, hold, nil
}

// minePass runs one direction: antecedents from view `antView`.
func minePass(full, expl, hold *dataset.Dataset, antView dataset.View, opt Options) ([]Rule, error) {
	consView := antView.Opposite()
	// Candidate generation on the exploratory half: frequent two-view
	// itemsets whose projection on the consequent view is one item.
	fis, err := eclat.Mine(context.Background(), expl, eclat.Options{
		MinSupport: opt.MinSupport,
		TwoView:    true,
		MaxItems:   opt.MaxAntecedent + 1,
	})
	if err != nil {
		return nil, err
	}
	nL := expl.Items(dataset.Left)
	nExpl := float64(expl.Size())
	var cands []candidate
	for _, fi := range fis {
		x, y := eclat.Split(fi.Items, nL)
		ant, cons := x, y
		if antView == dataset.Right {
			ant, cons = y, x
		}
		if len(cons) != 1 || len(ant) > opt.MaxAntecedent {
			continue
		}
		suppAnt := expl.Support(antView, ant)
		suppCons := expl.ItemSupport(consView, cons[0])
		lev := float64(fi.Supp)/nExpl -
			(float64(suppAnt)/nExpl)*(float64(suppCons)/nExpl)
		cands = append(cands, candidate{ant: ant, cons: cons[0], leverage: lev})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].leverage != cands[b].leverage {
			return cands[a].leverage > cands[b].leverage
		}
		if c := itemset.Compare(cands[a].ant, cands[b].ant); c != 0 {
			return c < 0
		}
		return cands[a].cons < cands[b].cons
	})
	if len(cands) > opt.TopK {
		cands = cands[:opt.TopK]
	}

	// Holdout assessment with Bonferroni correction over the candidates
	// actually tested (both passes use the same per-pass budget).
	threshold := opt.Alpha / float64(maxInt(1, len(cands)))
	var out []Rule
	consCols := hold.Columns(consView)
	for _, c := range cands {
		antTids := hold.SupportSet(antView, c.ant)
		n := antTids.Count()
		if n == 0 {
			continue
		}
		k := 0
		antTids.ForEach(func(t int) bool {
			if consCols[c.cons].Contains(t) {
				k++
			}
			return true
		})
		p0 := float64(consCols[c.cons].Count()) / float64(hold.Size())
		pv := BinomialTailP(k, n, p0)
		if pv > threshold {
			continue
		}
		r := buildRule(full, antView, c, pv)
		if r != nil {
			out = append(out, *r)
		}
	}
	return out, nil
}

// buildRule re-measures the accepted rule on the full data and puts X on
// the left as the core.Rule convention requires.
func buildRule(full *dataset.Dataset, antView dataset.View, c candidate, pv float64) *Rule {
	var x, y itemset.Itemset
	var dir core.Direction
	if antView == dataset.Left {
		x, y, dir = c.ant, itemset.New(c.cons), core.Forward
	} else {
		x, y, dir = itemset.New(c.cons), c.ant, core.Backward
	}
	joint := full.JointSupportSet(x, y).Count()
	if joint == 0 {
		return nil
	}
	suppAnt := full.Support(antView, c.ant)
	if suppAnt == 0 {
		return nil
	}
	return &Rule{
		X: x, Y: y, Dir: dir,
		Supp:   joint,
		Conf:   float64(joint) / float64(suppAnt),
		PValue: pv,
	}
}

// ToTable converts significant rules into a translation table for scoring
// under the paper's encoding.
func ToTable(rules []Rule) *core.Table {
	t := &core.Table{Rules: make([]core.Rule, len(rules))}
	for i, r := range rules {
		t.Rules[i] = core.Rule{X: r.X, Dir: r.Dir, Y: r.Y}
	}
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
