package assoc

import (
	"errors"
	"math"
	"testing"

	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
)

func testData(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := dataset.MustNew([]string{"a", "b"}, []string{"p", "q"})
	rows := [][2][]int{
		{{0}, {0}},
		{{0}, {0}},
		{{0}, {0}},
		{{0}, {1}},
		{{1}, {0, 1}},
		{{1}, {1}},
	}
	for _, r := range rows {
		if err := d.AddRow(r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func find(rules []Rule, x, y itemset.Itemset) *Rule {
	for i := range rules {
		if rules[i].X.Equal(x) && rules[i].Y.Equal(y) {
			return &rules[i]
		}
	}
	return nil
}

func TestMineConfidenceAndDirections(t *testing.T) {
	d := testData(t)
	rules, err := Mine(d, Options{MinSupport: 1, MinConfidence: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	// a<->p: supp 3, conf 3/4 = 0.75 in both directions → bidirectional.
	r := find(rules, itemset.New(0), itemset.New(0))
	if r == nil || r.Dir != core.Both || math.Abs(r.Conf-0.75) > 1e-12 {
		t.Fatalf("a<->p rule = %+v", r)
	}
	// b->q: supp 2, conf fwd 2/2 = 1, bwd 2/3 < 0.7 → Forward with conf 1.
	r = find(rules, itemset.New(1), itemset.New(1))
	if r == nil || r.Dir != core.Forward || math.Abs(r.Conf-1) > 1e-12 {
		t.Fatalf("b->q rule = %+v", r)
	}
	// a-q: conf fwd 1/4, bwd 1/4 → below threshold, absent.
	if find(rules, itemset.New(0), itemset.New(1)) != nil {
		t.Fatal("low-confidence rule present")
	}
}

func TestMineMinSupport(t *testing.T) {
	d := testData(t)
	rules, err := Mine(d, Options{MinSupport: 3, MinConfidence: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Supp < 3 {
			t.Fatalf("rule %v/%v below support", r.X, r.Y)
		}
	}
}

func TestCountMatchesMine(t *testing.T) {
	d := testData(t)
	opt := Options{MinSupport: 1, MinConfidence: 0.7}
	rules, err := Mine(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Count(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(rules) {
		t.Fatalf("Count = %d, Mine = %d", n, len(rules))
	}
}

func TestExplosionGuard(t *testing.T) {
	d := testData(t)
	_, err := Mine(d, Options{MinSupport: 1, MinConfidence: 0, MaxResults: 1})
	var ex *ExplosionError
	if !errors.As(err, &ex) {
		t.Fatalf("expected ExplosionError, got %v", err)
	}
	if ex.AtLeast < 2 || ex.Error() == "" {
		t.Fatalf("explosion error incomplete: %+v", ex)
	}
}

func TestToTableScorable(t *testing.T) {
	d := testData(t)
	rules, err := Mine(d, Options{MinSupport: 1, MinConfidence: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	tab := ToTable(rules)
	if tab.Size() != len(rules) {
		t.Fatal("ToTable lost rules")
	}
	if err := tab.Validate(d); err != nil {
		t.Fatal(err)
	}
}

func TestSortedByConfidence(t *testing.T) {
	d := testData(t)
	rules, err := Mine(d, Options{MinSupport: 1, MinConfidence: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rules); i++ {
		if rules[i].Conf > rules[i-1].Conf {
			t.Fatal("rules not sorted by confidence")
		}
	}
}
