// Package assoc implements the classic cross-view association rule mining
// baseline of §6.3: all rules X → Y with X ⊆ I_L, Y ⊆ I_R (and the reverse
// direction) whose support and confidence clear the given thresholds,
// mined by an adapted miner that only produces rules spanning the two
// views. The paper uses it to demonstrate the pattern explosion: orders of
// magnitude more rules than TRANSLATOR selects.
package assoc

import (
	"context"
	"sort"

	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/mine/eclat"
)

// Rule is an association rule across the views with its quality measures.
type Rule struct {
	X, Y itemset.Itemset
	Dir  core.Direction
	// Supp is |supp(X ∪ Y)|.
	Supp int
	// Conf is the confidence of the rule in its direction; for
	// bidirectional rules it is the maximum confidence c+ (§6).
	Conf float64
}

// Options holds the thresholds of the miner.
type Options struct {
	// MinSupport is the minimal absolute joint support.
	MinSupport int
	// MinConfidence is the minimal confidence in at least one direction.
	MinConfidence float64
	// MaxResults aborts when the rule explosion exceeds this many rules
	// (0 = unbounded). The count is still reported in the error case by
	// Count, which never materializes rules.
	MaxResults int
}

// Mine returns all cross-view association rules clearing the thresholds.
// A pair (X, Y) passing in both directions yields one bidirectional rule
// carrying c+; otherwise one unidirectional rule per passing direction.
func Mine(d *dataset.Dataset, opt Options) ([]Rule, error) {
	fis, err := eclat.Mine(context.Background(), d, eclat.Options{
		MinSupport: opt.MinSupport,
		TwoView:    true,
		MaxResults: 0,
	})
	if err != nil {
		return nil, err
	}
	nL := d.Items(dataset.Left)
	var out []Rule
	for _, fi := range fis {
		x, y := eclat.Split(fi.Items, nL)
		suppX := d.Support(dataset.Left, x)
		suppY := d.Support(dataset.Right, y)
		confF := float64(fi.Supp) / float64(suppX)
		confB := float64(fi.Supp) / float64(suppY)
		okF := confF >= opt.MinConfidence
		okB := confB >= opt.MinConfidence
		switch {
		case okF && okB:
			out = append(out, Rule{X: x, Y: y, Dir: core.Both, Supp: fi.Supp, Conf: max(confF, confB)})
		case okF:
			out = append(out, Rule{X: x, Y: y, Dir: core.Forward, Supp: fi.Supp, Conf: confF})
		case okB:
			out = append(out, Rule{X: x, Y: y, Dir: core.Backward, Supp: fi.Supp, Conf: confB})
		}
		if opt.MaxResults > 0 && len(out) > opt.MaxResults {
			return nil, &ExplosionError{AtLeast: len(out)}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Conf != out[b].Conf {
			return out[a].Conf > out[b].Conf
		}
		if out[a].Supp != out[b].Supp {
			return out[a].Supp > out[b].Supp
		}
		return ruleOf(out[a]).Compare(ruleOf(out[b])) < 0
	})
	return out, nil
}

// Count returns the number of rules Mine would produce, without keeping
// them; it is used to report the pattern explosion sizes of §6.3.
func Count(d *dataset.Dataset, opt Options) (int, error) {
	fis, err := eclat.Mine(context.Background(), d, eclat.Options{MinSupport: opt.MinSupport, TwoView: true})
	if err != nil {
		return 0, err
	}
	nL := d.Items(dataset.Left)
	n := 0
	for _, fi := range fis {
		x, y := eclat.Split(fi.Items, nL)
		if float64(fi.Supp)/float64(d.Support(dataset.Left, x)) >= opt.MinConfidence ||
			float64(fi.Supp)/float64(d.Support(dataset.Right, y)) >= opt.MinConfidence {
			n++
		}
	}
	return n, nil
}

// ExplosionError reports that MaxResults was exceeded.
type ExplosionError struct{ AtLeast int }

func (e *ExplosionError) Error() string {
	return "assoc: pattern explosion: more rules than the configured maximum"
}

// ToTable converts mined association rules into a translation table so
// they can be scored under the paper's encoding.
func ToTable(rules []Rule) *core.Table {
	t := &core.Table{Rules: make([]core.Rule, len(rules))}
	for i, r := range rules {
		t.Rules[i] = core.Rule{X: r.X, Dir: r.Dir, Y: r.Y}
	}
	return t
}

func ruleOf(r Rule) core.Rule { return core.Rule{X: r.X, Dir: r.Dir, Y: r.Y} }
