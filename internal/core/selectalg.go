package core

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/mdl"
)

// This file implements TRANSLATOR-SELECT(k) (Algorithm 3): in each round,
// score every rule constructible from the candidate set (three directions
// per candidate itemset), take the k rules with the highest gain, and add
// them one by one, discarding rules whose itemsets overlap the items used
// by a rule already added in the same round. Rounds repeat until no rule
// improves compression.

// SelectOptions configures MineSelect.
type SelectOptions struct {
	// K is the number of rules selected per round; the paper evaluates
	// k=1 and k=25. Values < 1 mean 1.
	K int
	// MaxRules stops after this many rules in total; 0 means no limit.
	MaxRules int
	// Trace observes each added rule.
	Trace TraceFunc
	// Workers sets the number of goroutines scoring candidates per
	// round; 0 means GOMAXPROCS, 1 disables parallelism. Results are
	// identical regardless of the value (scoring is read-only and the
	// merged ranking uses a total order).
	Workers int
}

type scoredRule struct {
	rule Rule
	gain float64
	cand int // candidate index, for cached tidsets
}

// MineSelect runs TRANSLATOR-SELECT(k) over the given candidates.
func MineSelect(d *dataset.Dataset, cands []Candidate, opt SelectOptions) *Result {
	start := time.Now()
	if opt.K < 1 {
		opt.K = 1
	}
	coder := mdl.NewCoder(d)
	s := NewState(d, coder)
	res := &Result{State: s}

	scored := make([]scoredRule, 0, 3*len(cands))
	for {
		if opt.MaxRules > 0 && len(s.table.Rules) >= opt.MaxRules {
			break
		}
		// Line 3: select the k rules with the highest Δ_{D,T} among all
		// rules constructible from the candidates.
		scored = scoreCandidates(s, cands, scored[:0], opt.Workers)
		if len(scored) == 0 {
			break
		}
		sort.Slice(scored, func(a, b int) bool {
			if scored[a].gain != scored[b].gain {
				return scored[a].gain > scored[b].gain
			}
			return scored[a].rule.Compare(scored[b].rule) < 0
		})
		if len(scored) > opt.K {
			scored = scored[:opt.K]
		}

		// Lines 5-10: add the selected rules, skipping rules whose
		// itemsets overlap items already used in this round (their gain
		// has changed and they may no longer belong to the top-k).
		var usedL, usedR itemset.Itemset
		added := false
		for _, sr := range scored {
			if opt.MaxRules > 0 && len(s.table.Rules) >= opt.MaxRules {
				break
			}
			if sr.rule.X.Intersects(usedL) || sr.rule.Y.Intersects(usedR) {
				continue
			}
			// Line 8: re-check that the rule still improves compression
			// against the *current* table.
			c := &cands[sr.cand]
			gain := s.GainWithTids(sr.rule, c.TidX, c.TidY)
			if gain <= gainEpsilon {
				continue
			}
			s.AddRule(sr.rule)
			res.record(s, sr.rule, gain, opt.Trace)
			usedL = usedL.Union(sr.rule.X)
			usedR = usedR.Union(sr.rule.Y)
			added = true
		}
		if !added {
			break
		}
	}
	res.Table = s.Table()
	res.Runtime = time.Since(start)
	return res
}

// scoreCandidates computes the positive-gain rules of every candidate,
// appending to dst. Scoring only reads the state, so candidates are
// partitioned across workers; the caller's subsequent sort imposes a
// total order, making the result independent of the partitioning.
func scoreCandidates(s *State, cands []Candidate, dst []scoredRule, workers int) []scoredRule {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		return scoreRange(s, cands, 0, len(cands), dst)
	}
	parts := make([][]scoredRule, workers)
	var wg sync.WaitGroup
	chunk := (len(cands) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w] = scoreRange(s, cands, lo, hi, nil)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, p := range parts {
		dst = append(dst, p...)
	}
	return dst
}

// scoreRange scores candidates [lo, hi), appending positive-gain rules.
func scoreRange(s *State, cands []Candidate, lo, hi int, dst []scoredRule) []scoredRule {
	coder := s.coder
	for ci := lo; ci < hi; ci++ {
		c := &cands[ci]
		// qub bounds all three directions; a candidate that cannot
		// reach positive gain is skipped without exact evaluation.
		if s.Qub(c.X, c.Y, c.TidX.Count(), c.TidY.Count()) <= gainEpsilon {
			continue
		}
		gainF := s.gainDir(dataset.Left, c.TidX, c.Y)
		gainB := s.gainDir(dataset.Right, c.TidY, c.X)
		lenUni := coder.RuleLen(c.X, c.Y, false)
		lenBi := coder.RuleLen(c.X, c.Y, true)
		for _, sr := range [3]scoredRule{
			{Rule{X: c.X, Dir: Forward, Y: c.Y}, gainF - lenUni, ci},
			{Rule{X: c.X, Dir: Backward, Y: c.Y}, gainB - lenUni, ci},
			{Rule{X: c.X, Dir: Both, Y: c.Y}, gainF + gainB - lenBi, ci},
		} {
			if sr.gain > gainEpsilon {
				dst = append(dst, sr)
			}
		}
	}
	return dst
}
