package core

import (
	"context"
	"sort"

	"twoview/internal/dataset"
	"twoview/internal/mdl"
	"twoview/internal/pool"
)

// This file implements TRANSLATOR-SELECT(k) (Algorithm 3): in each round,
// score every rule constructible from the candidate set (three directions
// per candidate itemset), take the k rules with the highest gain, and add
// them one by one, discarding rules whose itemsets overlap the items used
// by a rule already added in the same round. Rounds repeat until no rule
// improves compression.
//
// Both per-round loops run on the internal/pool worker pool: candidate
// scoring partitions the candidates into fixed-size chunks (the chunk
// size, not the worker count, fixes the output order), and the Line-8
// re-check gains of the selected top-k rules are precomputed in parallel
// before the serial add walk (see the state-invariance note at
// recheckGains).

// SelectOptions configures MineSelect.
type SelectOptions struct {
	// K is the number of rules selected per round; the paper evaluates
	// k=1 and k=25. Values < 1 mean 1.
	K int
	// MaxRules stops after this many rules in total; 0 means no limit.
	MaxRules int
	// Trace observes each added rule.
	Trace TraceFunc
	// OnIteration observes each added rule and may stop the run early by
	// returning false (the partial table is returned with a nil error).
	OnIteration IterationFunc
	// ParallelOptions sets the worker-pool size for per-round scoring
	// and re-checking; results are identical for any value.
	ParallelOptions
}

type scoredRule struct {
	rule Rule
	gain float64
	cand int // candidate index, for cached tidsets
}

// MineSelect runs TRANSLATOR-SELECT(k) over the given candidates.
//
// Cancelling ctx aborts the run at the next checkpoint (a round
// boundary or a task boundary inside the scoring/re-check phases) and
// returns the table mined so far alongside ctx.Err(). With an
// uncancelled context the result is bit-identical for every worker
// count and the error is nil.
func MineSelect(ctx context.Context, d *dataset.Dataset, cands []Candidate, opt SelectOptions) (*Result, error) {
	if m, err := shardEngine(opt.ParallelOptions); err != nil {
		return nil, err
	} else if m != nil {
		return m.MineSelect(ctx, d, cands, opt)
	}
	elapsed := stopwatch()
	if opt.K < 1 {
		opt.K = 1
	}
	coder := mdl.NewCoder(d)
	s := NewState(d, coder)
	res := &Result{State: s}

	// All rounds submit their phases to one persistent runtime (the
	// workers park between rounds instead of being relaunched) and reuse
	// one set of session-pooled buffers: the scored-rule slice, the
	// Line-8 gain slice, and the per-round used-item masks all reach a
	// steady state where rounds allocate nothing.
	rt := opt.runtime()
	sc := opt.getScratch()
	scored := sc.scored[:0]
	usedL, usedR := &sc.usedL, &sc.usedR
	var err error
	stopped := false
	for !stopped {
		if err = ctx.Err(); err != nil {
			break
		}
		if opt.MaxRules > 0 && len(s.table.Rules) >= opt.MaxRules {
			break
		}
		// Line 3: select the k rules with the highest Δ_{D,T} among all
		// rules constructible from the candidates.
		if scored, err = scoreCandidates(ctx, rt, s, cands, scored[:0], opt.Workers); err != nil {
			break
		}
		if len(scored) == 0 {
			break
		}
		sort.Slice(scored, func(a, b int) bool {
			if scored[a].gain != scored[b].gain {
				return scored[a].gain > scored[b].gain
			}
			return scored[a].rule.Compare(scored[b].rule) < 0
		})
		if len(scored) > opt.K {
			scored = scored[:opt.K]
		}
		// Precomputing the Line-8 gains of all selected rules is
		// speculative (overlap-filtered rules never consult theirs), so
		// only do it when there are workers to amortize it; the serial
		// walk computes each needed gain lazily at its turn instead.
		var gains []float64
		if opt.workerCount(len(scored)) > 1 {
			if sc.gains, err = recheckGains(ctx, rt, s, cands, scored, sc.gains, opt.Workers); err != nil {
				break
			}
			gains = sc.gains
		}

		// Lines 5-10: add the selected rules, skipping rules whose
		// itemsets overlap items already used in this round (their gain
		// has changed and they may no longer belong to the top-k). The
		// used items are tracked as per-view bitmasks, reset (not
		// reallocated) each round.
		usedL.Reset(d.Items(dataset.Left))
		usedR.Reset(d.Items(dataset.Right))
		added := false
		for i, sr := range scored {
			if opt.MaxRules > 0 && len(s.table.Rules) >= opt.MaxRules {
				break
			}
			if anyIn(sr.rule.X, usedL) || anyIn(sr.rule.Y, usedR) {
				continue
			}
			// Line 8: the rule must still improve compression against
			// the *current* table; the precomputed gains[i] is exactly
			// that gain (see recheckGains), and the lazy serial
			// computation trivially is.
			var gain float64
			if gains != nil {
				gain = gains[i]
			} else {
				c := &cands[sr.cand]
				gain = s.GainWithTids(sr.rule, c.TidX, c.TidY)
			}
			if gain <= gainEpsilon {
				continue
			}
			s.AddRule(sr.rule)
			if !res.record(s, sr.rule, gain, opt.Trace, opt.OnIteration) {
				stopped = true
			}
			for _, it := range sr.rule.X {
				usedL.Add(it)
			}
			for _, it := range sr.rule.Y {
				usedR.Add(it)
			}
			added = true
			if stopped {
				break // OnIteration asked for an early stop
			}
		}
		if !added {
			break
		}
	}
	sc.scored = scored // hand the grown capacity back to the pool
	opt.putScratch(sc)
	res.Table = s.Table()
	res.Runtime = elapsed()
	return res, err
}

// scoreChunk is the fixed candidate-chunk size of the scoring pass. It
// bounds the scheduling granularity; because it never depends on the
// worker count, the chunked output order — and hence the result — is
// identical for every worker count.
const scoreChunk = 256

// scoreCandidates computes the positive-gain rules of every candidate,
// appending to dst (reused across rounds). Scoring only reads the
// state, so fixed-size candidate chunks are distributed over the pool
// and their outputs concatenated in chunk order — i.e. candidate index
// order, exactly what the serial path appends directly; the caller's
// subsequent sort imposes a total order on top.
func scoreCandidates(ctx context.Context, rt *pool.Runtime, s *State, cands []Candidate, dst []scoredRule, workers int) ([]scoredRule, error) {
	tasks := (len(cands) + scoreChunk - 1) / scoreChunk
	if pool.Size(workers, tasks) <= 1 {
		// The serial pass probes ctx at the same chunk granularity the
		// parallel path gets from its task boundaries, so cancellation
		// latency does not depend on the worker count. Chunked scoring
		// appends exactly what one pass would.
		for lo := 0; lo < len(cands); lo += scoreChunk {
			if err := ctx.Err(); err != nil {
				return dst, err
			}
			dst = scoreRange(s, cands, lo, min(lo+scoreChunk, len(cands)), dst)
		}
		return dst, nil
	}
	return pool.MapChunksIntoCtxOn(rt, ctx, dst, workers, len(cands), scoreChunk, func(lo, hi int) []scoredRule {
		return scoreRange(s, cands, lo, hi, nil)
	})
}

// recheckGains returns, for each selected rule, its gain against the
// current table (the Line-8 re-check), computed in parallel before the
// serial add walk into dst's reused storage.
//
// Precomputing is exact, not heuristic: a rule is only added if its X
// and Y are disjoint from every itemset already used in this round, and
// rules added earlier in the round modify the correction state (U, E)
// only at items of their own X and Y. A rule that passes the overlap
// filter therefore reads exactly the same state entries at its turn in
// the walk as at the start of the round, so the gain computed here is
// bit-identical to the one the serial loop would compute mid-round.
// Rules that fail the filter never have their gain consulted.
func recheckGains(ctx context.Context, rt *pool.Runtime, s *State, cands []Candidate, scored []scoredRule, dst []float64, workers int) ([]float64, error) {
	return pool.MapOrderedIntoCtxOn(rt, ctx, dst, workers, len(scored), func(i int) float64 {
		c := &cands[scored[i].cand]
		return s.GainWithTids(scored[i].rule, c.TidX, c.TidY)
	})
}

// scoreRange scores candidates [lo, hi), appending positive-gain rules.
func scoreRange(s *State, cands []Candidate, lo, hi int, dst []scoredRule) []scoredRule {
	coder := s.coder
	for ci := lo; ci < hi; ci++ {
		c := &cands[ci]
		// qub bounds all three directions; a candidate that cannot
		// reach positive gain is skipped without exact evaluation.
		if s.Qub(c.X, c.Y, c.TidX.Count(), c.TidY.Count()) <= gainEpsilon {
			continue
		}
		gainF := s.gainDir(dataset.Left, c.TidX, c.Y)
		gainB := s.gainDir(dataset.Right, c.TidY, c.X)
		lenUni := coder.RuleLen(c.X, c.Y, false)
		lenBi := coder.RuleLen(c.X, c.Y, true)
		for _, sr := range [3]scoredRule{
			{Rule{X: c.X, Dir: Forward, Y: c.Y}, gainF - lenUni, ci},
			{Rule{X: c.X, Dir: Backward, Y: c.Y}, gainB - lenUni, ci},
			{Rule{X: c.X, Dir: Both, Y: c.Y}, gainF + gainB - lenBi, ci},
		} {
			if sr.gain > gainEpsilon {
				dst = append(dst, sr)
			}
		}
	}
	return dst
}
