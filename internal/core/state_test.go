package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/mdl"
)

func newStateFor(t *testing.T, d *dataset.Dataset) *State {
	t.Helper()
	return NewState(d, mdl.NewCoder(d))
}

func TestNewStateIsBaseline(t *testing.T) {
	d := fig1(t)
	s := newStateFor(t, d)
	if math.Abs(s.Score()-s.Baseline()) > 1e-9 {
		t.Fatalf("empty-table score %v != baseline %v", s.Score(), s.Baseline())
	}
	if s.TableLen() != 0 || s.Table().Size() != 0 {
		t.Fatal("empty table must have zero length")
	}
	if s.ErrorOnes(dataset.Left) != 0 || s.ErrorOnes(dataset.Right) != 0 {
		t.Fatal("no errors before any rule")
	}
	wantU := d.Ones(dataset.Left)
	if s.UncoveredOnes(dataset.Left) != wantU {
		t.Fatalf("|U_L| = %d, want %d", s.UncoveredOnes(dataset.Left), wantU)
	}
	if s.CorrectionOnes() != d.Ones(dataset.Left)+d.Ones(dataset.Right) {
		t.Fatal("|C| must equal all ones initially")
	}
	// tub(t) = L(row) initially.
	for i := 0; i < d.Size(); i++ {
		want := s.Coder().BitsLen(dataset.Right, d.Row(dataset.Right, i))
		if math.Abs(s.Tub(dataset.Right, i)-want) > 1e-9 {
			t.Fatalf("tub(R,%d) = %v, want %v", i, s.Tub(dataset.Right, i), want)
		}
	}
}

func TestGainMatchesScoreDelta(t *testing.T) {
	d := fig1(t)
	rules := []Rule{
		{X: itemset.New(0, 1), Dir: Both, Y: itemset.New(1, 5)},
		{X: itemset.New(2), Dir: Forward, Y: itemset.New(4)},
		{X: itemset.New(3), Dir: Backward, Y: itemset.New(3)},
		{X: itemset.New(1), Dir: Forward, Y: itemset.New(2)},
	}
	s := newStateFor(t, d)
	for _, r := range rules {
		gain := s.Gain(r)
		before := s.Score()
		s.AddRule(r)
		after := s.Score()
		if math.Abs((before-after)-gain) > 1e-9 {
			t.Fatalf("rule %v: gain=%v but score delta=%v", r, gain, before-after)
		}
	}
}

// stateMatchesReference checks every incremental structure against the
// non-incremental reference implementation in translate.go.
func stateMatchesReference(s *State) bool {
	d := s.Dataset()
	for _, from := range []dataset.View{dataset.Left, dataset.Right} {
		target := from.Opposite()
		u, e := CorrectionTables(d, s.Table(), from)
		uOnes, eOnes, corrLen := 0, 0, 0.0
		for i := 0; i < d.Size(); i++ {
			if !s.Uncovered(target, i).Equal(u[i]) || !s.Errors(target, i).Equal(e[i]) {
				return false
			}
			uOnes += u[i].Count()
			eOnes += e[i].Count()
			corrLen += s.Coder().BitsLen(target, u[i]) + s.Coder().BitsLen(target, e[i])
			if math.Abs(s.Tub(target, i)-s.Coder().BitsLen(target, u[i])) > 1e-9 {
				return false
			}
		}
		if s.UncoveredOnes(target) != uOnes || s.ErrorOnes(target) != eOnes {
			return false
		}
		if math.Abs(s.CorrLen(target)-corrLen) > 1e-9 {
			return false
		}
	}
	return true
}

func TestQuickStateMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d, tab := randomDataAndTable(r)
		s := NewState(d, mdl.NewCoder(d))
		prevErrL, prevErrR := 0, 0
		for _, rule := range tab.Rules {
			s.AddRule(rule)
			// Errors are monotone (§5.1).
			if s.ErrorOnes(dataset.Left) < prevErrL || s.ErrorOnes(dataset.Right) < prevErrR {
				return false
			}
			prevErrL, prevErrR = s.ErrorOnes(dataset.Left), s.ErrorOnes(dataset.Right)
		}
		return stateMatchesReference(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGainEqualsDelta(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d, tab := randomDataAndTable(r)
		s := NewState(d, mdl.NewCoder(d))
		for _, rule := range tab.Rules {
			gain := s.Gain(rule)
			before := s.Score()
			s.AddRule(rule)
			if math.Abs((before-s.Score())-gain) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateTableOrderIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		d, tab := randomDataAndTable(r)
		coder := mdl.NewCoder(d)
		a := EvaluateTable(d, coder, tab)
		perm := &Table{Rules: append([]Rule(nil), tab.Rules...)}
		r.Shuffle(len(perm.Rules), func(i, j int) {
			perm.Rules[i], perm.Rules[j] = perm.Rules[j], perm.Rules[i]
		})
		b := EvaluateTable(d, coder, perm)
		if math.Abs(a.Score()-b.Score()) > 1e-9 ||
			a.CorrectionOnes() != b.CorrectionOnes() {
			t.Fatalf("EvaluateTable depends on rule order (trial %d)", trial)
		}
	}
}

func TestGainWithTidsMatchesGain(t *testing.T) {
	d := fig1(t)
	s := newStateFor(t, d)
	r := Rule{X: itemset.New(0, 1), Dir: Both, Y: itemset.New(1, 5)}
	tidX := d.SupportSet(dataset.Left, r.X)
	tidY := d.SupportSet(dataset.Right, r.Y)
	if g1, g2 := s.Gain(r), s.GainWithTids(r, tidX, tidY); math.Abs(g1-g2) > 1e-12 {
		t.Fatalf("GainWithTids %v != Gain %v", g2, g1)
	}
}

func TestBoundsAreUpperBounds(t *testing.T) {
	// rub and qub must never be below the true gain of the rule itself.
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		d, tab := randomDataAndTable(r)
		s := NewState(d, mdl.NewCoder(d))
		// Evolve the state a bit first so U/E are non-trivial.
		for _, rule := range tab.Rules {
			s.AddRule(rule)
		}
		var probe Table
		for k := 0; k < 8; k++ {
			x := itemset.New(r.Intn(d.Items(dataset.Left)), r.Intn(d.Items(dataset.Left)))
			y := itemset.New(r.Intn(d.Items(dataset.Right)), r.Intn(d.Items(dataset.Right)))
			probe.Rules = append(probe.Rules, Rule{X: x, Dir: Direction(r.Intn(3)), Y: y})
		}
		for _, rule := range probe.Rules {
			tidX := d.SupportSet(dataset.Left, rule.X)
			tidY := d.SupportSet(dataset.Right, rule.Y)
			gain := s.GainWithTids(rule, tidX, tidY)
			rub := s.Rub(rule.X, rule.Y, tidX, tidY)
			qub := s.Qub(rule.X, rule.Y, tidX.Count(), tidY.Count())
			if gain > rub+1e-9 {
				t.Fatalf("rub %v < gain %v for %v", rub, gain, rule)
			}
			if gain > qub+1e-9 {
				t.Fatalf("qub %v < gain %v for %v", qub, gain, rule)
			}
		}
	}
}

func TestRubAntitoneUnderExtension(t *testing.T) {
	// Extending X or Y must never increase rub (the pruning soundness
	// condition of §5.2).
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 60; trial++ {
		d, tab := randomDataAndTable(r)
		s := NewState(d, mdl.NewCoder(d))
		for _, rule := range tab.Rules {
			s.AddRule(rule)
		}
		x, y := itemset.New(r.Intn(d.Items(dataset.Left))), itemset.New(r.Intn(d.Items(dataset.Right)))
		tidX := d.SupportSet(dataset.Left, x)
		tidY := d.SupportSet(dataset.Right, y)
		base := s.Rub(x, y, tidX, tidY)
		// Extend X by one more item.
		for extra := 0; extra < d.Items(dataset.Left); extra++ {
			if x.Contains(extra) {
				continue
			}
			x2 := x.Union(itemset.New(extra))
			tidX2 := d.SupportSet(dataset.Left, x2)
			if got := s.Rub(x2, y, tidX2, tidY); got > base+1e-9 {
				t.Fatalf("rub grew under extension: %v > %v", got, base)
			}
		}
	}
}

func TestCompressionAndCorrectionRatio(t *testing.T) {
	d := fig1(t)
	s := newStateFor(t, d)
	if math.Abs(s.CompressionRatio()-100) > 1e-9 {
		t.Fatalf("empty table L%% = %v, want 100", s.CompressionRatio())
	}
	ones := d.Ones(dataset.Left) + d.Ones(dataset.Right)
	cells := (d.Items(dataset.Left) + d.Items(dataset.Right)) * d.Size()
	want := 100 * float64(ones) / float64(cells)
	if math.Abs(s.CorrectionRatio()-want) > 1e-9 {
		t.Fatalf("|C|%% = %v, want %v", s.CorrectionRatio(), want)
	}
	empty := dataset.MustNew([]string{"a"}, []string{"b"})
	se := NewState(empty, mdl.NewCoder(empty))
	if se.CompressionRatio() != 100 || se.CorrectionRatio() != 0 {
		t.Fatal("degenerate ratios wrong")
	}
}

func TestAddRulePanicsOnZeroSupportItem(t *testing.T) {
	// Left item 4 ("E") occurs, but right item ids beyond the data would
	// not; craft a dataset with a never-occurring right item.
	d := dataset.MustNew([]string{"a"}, []string{"p", "never"})
	d.AddRow([]int{0}, []int{0})
	s := NewState(d, mdl.NewCoder(d))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when a rule drags in a zero-support item")
		}
	}()
	s.AddRule(Rule{X: itemset.New(0), Dir: Forward, Y: itemset.New(1)})
}
