package core

import (
	"bytes"
	"strings"
	"testing"

	"twoview/internal/dataset"
)

// FuzzReadTable: the table parser must never panic, and accepted tables
// must round-trip and validate.
func FuzzReadTable(f *testing.F) {
	f.Add("A -> L\n")
	f.Add("A, B <-> L, U\nC <- S\n")
	f.Add("# comment\n\nD -> Q\n")
	f.Add("A ->\n")
	f.Add("-> L\n")
	f.Add("A <-> <-> L\n")
	f.Fuzz(func(t *testing.T, input string) {
		d := dataset.MustNew(
			[]string{"A", "B", "C", "D", "E"},
			[]string{"K", "L", "P", "Q", "S", "U"},
		)
		d.AddRow([]int{0, 1, 2, 3, 4}, []int{0, 1, 2, 3, 4, 5})
		tab, err := ReadTable(strings.NewReader(input), d)
		if err != nil {
			return
		}
		if err := tab.Validate(d); err != nil {
			t.Fatalf("accepted table does not validate: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteTable(&buf, d, tab); err != nil {
			t.Fatalf("accepted table failed to serialize: %v", err)
		}
		tab2, err := ReadTable(&buf, d)
		if err != nil || tab2.Size() != tab.Size() {
			t.Fatalf("round trip failed: %v", err)
		}
		for i := range tab.Rules {
			if tab2.Rules[i].Compare(tab.Rules[i]) != 0 {
				t.Fatal("round trip changed a rule")
			}
		}
	})
}
