package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"twoview/internal/dataset"
	"twoview/internal/itemset"
)

// minedTable mines a table from the planted dataset with the given
// miner, for serving-path fixtures built on real mined models.
func minedTables(t testing.TB, d *dataset.Dataset) map[string]*Table {
	t.Helper()
	cands := mustCandidates(t, d, 1, 0, Parallel(1))
	return map[string]*Table{
		"exact":  mustExact(t, d, ExactOptions{}).Table,
		"select": mustSelect(t, d, cands, SelectOptions{K: 25}).Table,
		"greedy": mustGreedy(t, d, cands, GreedyOptions{}).Table,
	}
}

// The compiled single-row translation must be bit-identical to the
// reference TranslateRow, for random datasets and tables, in both
// directions.
func TestQuickTranslatorMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d, tab := randomDataAndTable(r)
		tr, err := CompileTranslator(d, tab)
		if err != nil {
			return false
		}
		for _, from := range []dataset.View{dataset.Left, dataset.Right} {
			for ti := 0; ti < d.Size(); ti++ {
				row := d.Row(from, ti)
				want := TranslateRow(d, tab, from, row).Indices()
				got := tr.Translate(from, row)
				if len(got) != len(want) {
					return false
				}
				for i := range want {
					if got[i] != want[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The compiled Apply must reproduce the reference (uncompiled) report
// bit for bit on tables mined by all three miners from the planted
// dataset, and the package-level Apply is exactly that compiled path.
func TestTranslatorApplyMatchesReference(t *testing.T) {
	d := plantedDataset(t, 61)
	for name, tab := range minedTables(t, d) {
		tr, err := CompileTranslator(d, tab)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, from := range []dataset.View{dataset.Left, dataset.Right} {
			want := applyReference(d, tab, from)
			got, err := tr.Apply(context.Background(), d, from)
			if err != nil {
				t.Fatalf("%s from %v: %v", name, from, err)
			}
			if got != want {
				t.Fatalf("%s from %v: compiled report %+v, reference %+v", name, from, got, want)
			}
			viaApply, err := Apply(context.Background(), d, tab, from)
			if err != nil {
				t.Fatalf("%s from %v: Apply: %v", name, from, err)
			}
			if viaApply != want {
				t.Fatalf("%s from %v: Apply wrapper %+v, reference %+v", name, from, viaApply, want)
			}
		}
	}
}

// TranslateCorrect must agree with the reference correction tables, and
// the reconstruction identity t = t′ ⊕ (U ∪ E) must hold per row.
func TestTranslatorCorrections(t *testing.T) {
	d := plantedDataset(t, 62)
	tab := minedTables(t, d)["select"]
	tr, err := CompileTranslator(d, tab)
	if err != nil {
		t.Fatal(err)
	}
	for _, from := range []dataset.View{dataset.Left, dataset.Right} {
		u, e := CorrectionTables(d, tab, from)
		target := from.Opposite()
		for ti := 0; ti < d.Size(); ti++ {
			trans, c := tr.TranslateCorrect(from, d.Row(from, ti), d.Row(target, ti))
			if !equalInts(c.Uncovered, u[ti].Indices()) || !equalInts(c.Errors, e[ti].Indices()) {
				t.Fatalf("from %v t%d: corrections (%v, %v) differ from reference (%v, %v)",
					from, ti, c.Uncovered, c.Errors, u[ti].Indices(), e[ti].Indices())
			}
			// Reconstruction: t′ ⊕ (U ∪ E) = t.
			rec := map[int]bool{}
			for _, i := range trans {
				rec[i] = true
			}
			for _, i := range c.Uncovered {
				rec[i] = !rec[i]
			}
			for _, i := range c.Errors {
				rec[i] = !rec[i]
			}
			truth := d.Row(target, ti)
			for i := 0; i < d.Items(target); i++ {
				if rec[i] != truth.Contains(i) {
					t.Fatalf("from %v t%d: reconstruction differs at item %d", from, ti, i)
				}
			}
		}
	}
}

// MatchingRules must return exactly the firing rules, in table order.
func TestTranslatorMatchingRules(t *testing.T) {
	d := fig1(t)
	tab := &Table{Rules: []Rule{
		{X: itemset.New(0, 1), Dir: Both, Y: itemset.New(1, 5)}, // {A,B} <-> {L,U}
		{X: itemset.New(2), Dir: Forward, Y: itemset.New(4)},    // {C} -> {S}
		{X: itemset.New(3), Dir: Backward, Y: itemset.New(3)},   // {D} <- {Q}
	}}
	tr, err := CompileTranslator(d, tab)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 = {A,B}: rule 0 fires from the left; rule 2 is <- (not
	// applicable from the left); rule 1 needs C.
	if got := tr.MatchingRules(dataset.Left, d.Row(dataset.Left, 0)); !equalInts(got, []int{0}) {
		t.Fatalf("MatchingRules(L, row0) = %v, want [0]", got)
	}
	// Row 1 = {B,C}: only rule 1 fires.
	if got := tr.MatchingRules(dataset.Left, d.Row(dataset.Left, 1)); !equalInts(got, []int{1}) {
		t.Fatalf("MatchingRules(L, row1) = %v, want [1]", got)
	}
	// From the right, row 3 = {L,Q,U}: rule 0 (<->, {L,U} ⊆ row) and
	// rule 2 (<-, {Q} ⊆ row).
	if got := tr.MatchingRules(dataset.Right, d.Row(dataset.Right, 3)); !equalInts(got, []int{0, 2}) {
		t.Fatalf("MatchingRules(R, row3) = %v, want [0 2]", got)
	}
}

// TranslateBatch must equal per-row Translate and honour cancellation.
func TestTranslatorBatch(t *testing.T) {
	d := plantedDataset(t, 63)
	tab := minedTables(t, d)["greedy"]
	tr, err := CompileTranslator(d, tab)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := tr.TranslateBatch(context.Background(), d, dataset.Left)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != d.Size() {
		t.Fatalf("batch has %d rows, dataset %d", len(batch), d.Size())
	}
	for ti := range batch {
		if want := tr.Translate(dataset.Left, d.Row(dataset.Left, ti)); !equalInts(batch[ti], want) {
			t.Fatalf("batch row %d = %v, per-row %v", ti, batch[ti], want)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tr.TranslateBatch(ctx, d, dataset.Left); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch: err = %v", err)
	}
}

// One Translator instance must serve many goroutines concurrently and
// agree with the serial answers (run under -race in CI).
func TestTranslatorConcurrent(t *testing.T) {
	d := plantedDataset(t, 64)
	tab := minedTables(t, d)["select"]
	tr, err := CompileTranslator(d, tab)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tr.TranslateBatch(context.Background(), d, dataset.Left)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := 0; ti < d.Size(); ti++ {
				if got := tr.Translate(dataset.Left, d.Row(dataset.Left, ti)); !equalInts(got, want[ti]) {
					errs <- errors.New("concurrent translation differs")
					return
				}
				// Exercise the corrections path concurrently too (the
				// race detector is the assertion here).
				tr.TranslateCorrect(dataset.Left, d.Row(dataset.Left, ti), d.Row(dataset.Right, ti))
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// ApplyStream over the serialized dataset must match the in-memory
// Apply bit for bit; vocabulary mismatches, bad ids and cancellation
// must error.
func TestTranslatorApplyStream(t *testing.T) {
	d := plantedDataset(t, 65)
	tab := minedTables(t, d)["select"]
	tr, err := CompileTranslator(d, tab)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dataset.Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	serialized := buf.String()

	for _, from := range []dataset.View{dataset.Left, dataset.Right} {
		want, err := tr.Apply(context.Background(), d, from)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tr.ApplyStream(context.Background(), strings.NewReader(serialized), from)
		if err != nil {
			t.Fatalf("from %v: %v", from, err)
		}
		if got != want {
			t.Fatalf("from %v: stream report %+v, in-memory %+v", from, got, want)
		}
	}

	// A stream over different vocabularies must be rejected.
	other := dataset.MustNew(dataset.GenericNames("x", 6), dataset.GenericNames("r", 6))
	other.AddRow([]int{0}, []int{0})
	buf.Reset()
	if err := dataset.Write(&buf, other); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ApplyStream(context.Background(), &buf, dataset.Left); err == nil {
		t.Fatal("vocabulary mismatch not detected")
	}

	// Out-of-range ids are reported with their line.
	bad := "L\tl0\tl1\tl2\tl3\tl4\tl5\nR\tr0\tr1\tr2\tr3\tr4\tr5\n0 99 | 1\n"
	if _, err := tr.ApplyStream(context.Background(), strings.NewReader(bad), dataset.Left); err == nil || !strings.Contains(err.Error(), "99") {
		t.Fatalf("bad id not reported: %v", err)
	}

	// Cancellation aborts the stream.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tr.ApplyStream(ctx, strings.NewReader(serialized), dataset.Left); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled stream: err = %v", err)
	}
}

// TranslateIDs and NewRow are the fresh-traffic entries: ids in, ids
// out, matching the row-based path; out-of-vocabulary ids error.
func TestTranslatorTranslateIDs(t *testing.T) {
	d := plantedDataset(t, 66)
	tab := minedTables(t, d)["select"]
	tr, err := CompileTranslator(d, tab)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < d.Size(); ti++ {
		row := d.Row(dataset.Left, ti)
		want := tr.Translate(dataset.Left, row)
		got, err := tr.TranslateIDs(nil, dataset.Left, row.Indices())
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(got, want) {
			t.Fatalf("t%d: TranslateIDs %v, Translate %v", ti, got, want)
		}
		built, err := tr.NewRow(dataset.Left, row.Indices())
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(tr.Translate(dataset.Left, built), want) {
			t.Fatalf("t%d: NewRow-based translation differs", ti)
		}
	}
	if _, err := tr.TranslateIDs(nil, dataset.Left, []int{99}); err == nil || !strings.Contains(err.Error(), "99") {
		t.Fatalf("out-of-range id not reported: %v", err)
	}
	if _, err := tr.NewRow(dataset.Right, []int{-1}); err == nil {
		t.Fatal("negative id accepted")
	}
}

// Compilation validates the table against the vocabularies.
func TestCompileTranslatorValidates(t *testing.T) {
	d := fig1(t)
	bad := &Table{Rules: []Rule{{X: itemset.New(99), Dir: Forward, Y: itemset.New(0)}}}
	if _, err := CompileTranslator(d, bad); err == nil {
		t.Fatal("out-of-vocabulary rule compiled")
	}
	empty := &Table{}
	tr, err := CompileTranslator(d, empty)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Translate(dataset.Left, d.Row(dataset.Left, 0)); len(got) != 0 {
		t.Fatalf("empty table translated to %v", got)
	}
	if tr.Rules() != 0 || tr.Items(dataset.Left) != 5 || tr.Items(dataset.Right) != 6 {
		t.Fatal("compiled metadata wrong")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
