package core

import "twoview/internal/pool"

// ParallelOptions is the shared concurrency knob embedded by every
// miner's options (ExactOptions, SelectOptions, GreedyOptions) and
// accepted by candidate mining. All parallel paths go through
// internal/pool and honour its determinism contract: results are
// bit-identical for every value of Workers.
type ParallelOptions struct {
	// Workers sets the worker-pool size: 0 means GOMAXPROCS, 1 disables
	// parallelism (no goroutines are spawned). Results are identical
	// regardless of the value.
	Workers int
}

// Parallel returns a ParallelOptions with the given worker count, for
// concise composite literals: ExactOptions{ParallelOptions: Parallel(4)}.
func Parallel(workers int) ParallelOptions {
	return ParallelOptions{Workers: workers}
}

// workerCount resolves Workers against the machine and a task count.
func (o ParallelOptions) workerCount(tasks int) int {
	return pool.Size(o.Workers, tasks)
}
