package core

import (
	"sync"

	"twoview/internal/pool"
)

// Session owns a persistent worker runtime for a whole mining session:
// candidate mining plus any number of MineExact / MineSelect /
// MineGreedy calls submit their parallel phases to one set of
// long-lived, parked workers instead of launching goroutines per round.
// Carry it in ParallelOptions.Session and Close it when the session is
// over; a nil Session means the shared package-wide runtime, which is
// also persistent but never shuts down.
//
// Sessions only change where the work runs, never what it computes:
// the determinism contract (results bit-identical for every worker
// count) holds with or without one.
type Session struct {
	rt *pool.Runtime
	// scratch recycles the round-structured miners' working buffers
	// (see miningScratch) across the session's mining calls.
	scratch sync.Pool
}

// NewSession starts a session with its own worker runtime. Workers are
// spawned lazily by the first parallel phase and grow to the largest
// worker count any call requests.
func NewSession() *Session {
	return &Session{rt: pool.NewRuntime()}
}

// Close shuts the session's workers down. The session must not be used
// afterwards. Close on a nil Session is a no-op.
func (s *Session) Close() {
	if s != nil && s.rt != nil {
		s.rt.Close()
	}
}

// runtime resolves the session to a pool runtime (nil-safe).
func (s *Session) runtime() *pool.Runtime {
	if s == nil || s.rt == nil {
		return pool.Default()
	}
	return s.rt
}

// scratchPool resolves the session to a miner-scratch pool (nil-safe):
// sessionless calls share the package-wide pool.
func (s *Session) scratchPool() *sync.Pool {
	if s == nil {
		return &defaultScratchPool
	}
	return &s.scratch
}

// ParallelOptions is the shared concurrency knob embedded by every
// miner's options (ExactOptions, SelectOptions, GreedyOptions) and
// accepted by candidate mining. All parallel paths go through
// internal/pool and honour its determinism contract: results are
// bit-identical for every value of Workers.
type ParallelOptions struct {
	// Workers sets the worker-pool size: 0 means GOMAXPROCS, 1 disables
	// parallelism (no goroutines are spawned). Results are identical
	// regardless of the value.
	Workers int
	// Shards opts the miner into the supervised sharded engine
	// (internal/shard): the columnar cover state is partitioned by item
	// range into this many shard goroutine groups that exchange only
	// messages with a coordinator — no shared State — with lease-based
	// crash recovery. 0 (the default) runs the monolithic in-process
	// engine; any value >= 1 runs the sharded one (1 still exercises
	// the full message protocol, with a single shard). Results are
	// bit-identical to the monolith for every shard count, worker
	// count, and injected failure schedule. Requires the shard engine
	// to be linked in: importing the twoview facade (or
	// twoview/internal/shard directly) registers it; with neither
	// linked, Shards > 0 is an error.
	Shards int
	// ShardAddrs lifts the sharded engine onto TCP: each address is a
	// shardworker daemon (cmd/shardworker) that hosts partitions, dialed
	// and supervised by the coordinator with the same lease-based crash
	// recovery as the in-process engine — a broken or timed-out
	// connection is a crash, redialed with deterministic backoff.
	// Partitions are placed round-robin over the addresses. Empty (the
	// default) keeps every shard in-process. When ShardAddrs is set and
	// Shards is 0, Shards defaults to len(ShardAddrs). Results are
	// bit-identical to the monolith for every placement, connection-
	// failure schedule, and worker count.
	ShardAddrs []string
	// Session is the persistent worker runtime to run on; nil means the
	// shared package-wide runtime. See Session.
	Session *Session
}

// Parallel returns a ParallelOptions with the given worker count, for
// concise composite literals: ExactOptions{ParallelOptions: Parallel(4)}.
func Parallel(workers int) ParallelOptions {
	return ParallelOptions{Workers: workers}
}

// workerCount resolves Workers against the machine and a task count.
func (o ParallelOptions) workerCount(tasks int) int {
	return pool.Size(o.Workers, tasks)
}

// runtime resolves the session to a pool runtime.
func (o ParallelOptions) runtime() *pool.Runtime { return o.Session.runtime() }
