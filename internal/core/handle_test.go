package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"twoview/internal/dataset"
	"twoview/internal/itemset"
)

// handleFixture compiles two distinguishable single-rule translators
// over the same tiny vocabulary: epoch A maps l0 -> r0, epoch B maps
// l0 -> r1. A reader that ever sees a mix has observed a torn table.
func handleFixture(t testing.TB) (trA, trB *Translator, d *dataset.Dataset) {
	t.Helper()
	d = dataset.MustNew(dataset.GenericNames("l", 2), dataset.GenericNames("r", 2))
	mk := func(target int) *Translator {
		tab := &Table{Rules: []Rule{{
			X: itemset.Itemset{0}, Y: itemset.Itemset{target}, Dir: Forward,
		}}}
		tr, err := CompileTranslator(d, tab)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	return mk(0), mk(1), d
}

func TestTranslatorHandleSwapAndEpochs(t *testing.T) {
	trA, trB, _ := handleFixture(t)
	h := NewTranslatorHandle(trA)
	if tr, ep := h.Current(); tr != trA || ep != 1 {
		t.Fatalf("Current = (%p, %d), want (%p, 1)", tr, ep, trA)
	}
	e := h.Acquire()
	if e.Translator() != trA || e.Epoch() != 1 {
		t.Fatalf("Acquire = epoch %d on %p", e.Epoch(), e.Translator())
	}
	old := h.Swap(trB)
	if old.Epoch() != 1 {
		t.Fatalf("retired epoch = %d, want 1", old.Epoch())
	}
	if tr, ep := h.Current(); tr != trB || ep != 2 {
		t.Fatalf("after swap Current = (%p, %d), want (%p, 2)", tr, ep, trB)
	}
	// The old epoch is still referenced: Drain must time out.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := old.Drain(ctx); err == nil {
		t.Fatal("Drain returned while a reference was held")
	}
	e.Release()
	if err := old.Drain(context.Background()); err != nil {
		t.Fatalf("Drain after release: %v", err)
	}
	// Draining an already-drained epoch is immediate and nil even with
	// a cancelled context racing it.
	if err := old.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

// Hammer the handle with concurrent readers while a writer swaps
// between two tables, asserting (a) every read is internally
// consistent — a request's translation matches the epoch it pinned,
// never a mix — and (b) every retired epoch drains.
func TestTranslatorHandleConcurrentSwapNoTornReads(t *testing.T) {
	trA, trB, _ := handleFixture(t)
	h := NewTranslatorHandle(trA)
	stop := make(chan struct{})
	var torn atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := h.Acquire()
				ids, err := e.Translator().TranslateIDs(nil, dataset.Left, []int{0})
				if err != nil || len(ids) != 1 {
					torn.Add(1)
				} else {
					want := 0
					if e.Translator() == trB {
						want = 1
					}
					if ids[0] != want {
						torn.Add(1)
					}
				}
				e.Release()
			}
		}()
	}
	cur := trA
	for i := 0; i < 200; i++ {
		if cur == trA {
			cur = trB
		} else {
			cur = trA
		}
		old := h.Swap(cur)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := old.Drain(ctx)
		cancel()
		if err != nil {
			t.Fatalf("swap %d: old epoch did not drain: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d torn/inconsistent reads", n)
	}
	if _, ep := h.Current(); ep != 201 {
		t.Fatalf("final epoch = %d, want 201", ep)
	}
}
