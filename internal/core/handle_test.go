package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"twoview/internal/dataset"
	"twoview/internal/itemset"
)

// handleFixture compiles two distinguishable single-rule translators
// over the same tiny vocabulary: epoch A maps l0 -> r0, epoch B maps
// l0 -> r1. A reader that ever sees a mix has observed a torn table.
func handleFixture(t testing.TB) (trA, trB *Translator, d *dataset.Dataset) {
	t.Helper()
	d = dataset.MustNew(dataset.GenericNames("l", 2), dataset.GenericNames("r", 2))
	mk := func(target int) *Translator {
		tab := &Table{Rules: []Rule{{
			X: itemset.Itemset{0}, Y: itemset.Itemset{target}, Dir: Forward,
		}}}
		tr, err := CompileTranslator(d, tab)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	return mk(0), mk(1), d
}

func TestTranslatorHandleSwapAndEpochs(t *testing.T) {
	trA, trB, _ := handleFixture(t)
	h := NewTranslatorHandle(trA)
	if tr, ep := h.Current(); tr != trA || ep != 1 {
		t.Fatalf("Current = (%p, %d), want (%p, 1)", tr, ep, trA)
	}
	e := h.Acquire()
	if e.Translator() != trA || e.Epoch() != 1 {
		t.Fatalf("Acquire = epoch %d on %p", e.Epoch(), e.Translator())
	}
	old := h.Swap(trB)
	if old.Epoch() != 1 {
		t.Fatalf("retired epoch = %d, want 1", old.Epoch())
	}
	if tr, ep := h.Current(); tr != trB || ep != 2 {
		t.Fatalf("after swap Current = (%p, %d), want (%p, 2)", tr, ep, trB)
	}
	// The old epoch is still referenced: Drain must time out.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := old.Drain(ctx); err == nil {
		t.Fatal("Drain returned while a reference was held")
	}
	e.Release()
	if err := old.Drain(context.Background()); err != nil {
		t.Fatalf("Drain after release: %v", err)
	}
	// Draining an already-drained epoch is immediate and nil even with
	// a cancelled context racing it.
	if err := old.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

// The scripted interleavings below replay, step by explicit step, the
// orderings the hammer test can only hope to hit: each party's next
// move is sequenced by the test, so every run exercises exactly the
// claimed schedule.

// The Acquire retry window: a Swap lands between a reader's epoch load
// and its reference bump. The test performs Acquire's steps by hand
// around a real Swap, pinning the backout path — including the
// documented subtlety that the retired epoch's refcount touches zero
// twice (once when Swap drops the installation reference, once when
// the backed-out reader re-releases) without double-closing the drain.
func TestTranslatorHandleScriptedAcquireSwapBackout(t *testing.T) {
	trA, trB, _ := handleFixture(t)
	h := NewTranslatorHandle(trA)

	// Reader step 1: load the current epoch, but don't pin it yet.
	stale := h.cur.Load()

	// Writer: swap. The loaded epoch is retired with no references
	// outstanding, so it is already drained.
	old := h.Swap(trB)
	if old != stale {
		t.Fatal("script broken: swap retired a different epoch than the reader loaded")
	}
	if err := old.Drain(context.Background()); err != nil {
		t.Fatalf("reference-free retired epoch not drained: %v", err)
	}

	// Reader steps 2-3: bump the stale epoch, notice the swap, back
	// out — the body of Acquire's retry loop.
	stale.refs.Add(1)
	if h.cur.Load() == stale {
		t.Fatal("script broken: stale epoch is still current")
	}
	stale.Release()

	// The zero-crossing from the backout must be idempotent: still
	// drained, no panic, and a real Acquire lands on the new epoch.
	if err := old.Drain(context.Background()); err != nil {
		t.Fatalf("drain signal lost after backout: %v", err)
	}
	e := h.Acquire()
	defer e.Release()
	if e.Epoch() != 2 || e.Translator() != trB {
		t.Fatalf("post-backout Acquire = epoch %d, want 2 on the new table", e.Epoch())
	}
}

// Drain-while-Swap-while-Acquire, fully sequenced: a reader pins epoch
// 1; the writer swaps and blocks in Drain; readers churn on epoch 2
// (admission never stalls behind a drain, and their releases must not
// leak into epoch 1's count); a context-bounded Drain times out while
// the epoch is pinned; only the pinned reader's release unblocks the
// writer — who then still holds a fully readable epoch-1 view.
func TestTranslatorHandleScriptedDrainSwapAcquire(t *testing.T) {
	trA, trB, _ := handleFixture(t)
	h := NewTranslatorHandle(trA)

	reader := h.Acquire()
	old := h.Swap(trB)

	drained := make(chan error, 1)
	go func() { drained <- old.Drain(context.Background()) }()

	// Pinned epoch: the blocking Drain must not return, and a
	// deadline-bounded one must report the deadline, not success.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	if err := old.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("bounded Drain on a pinned epoch = %v, want deadline", err)
	}
	cancel()

	// Epoch-2 churn: admission proceeds, and returning epoch 2 to idle
	// must not satisfy epoch 1's drain.
	for i := 0; i < 3; i++ {
		e := h.Acquire()
		if e.Epoch() != 2 {
			t.Fatalf("churn Acquire = epoch %d, want 2", e.Epoch())
		}
		e.Release()
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned (%v) while epoch 1 was pinned", err)
	case <-time.After(20 * time.Millisecond):
	}

	// The pinned reader's table must still be epoch 1's, in full.
	ids, err := reader.Translator().TranslateIDs(nil, dataset.Left, []int{0})
	if err != nil || len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("pinned reader lost its epoch-1 view: ids=%v err=%v", ids, err)
	}

	reader.Release()
	if err := <-drained; err != nil {
		t.Fatalf("Drain after the last release: %v", err)
	}
}

// The epoch chain out of order: drain waiters parked on the installed
// epoch survive reader churn and a double swap; a later retired epoch
// (empty) drains before an earlier one (pinned); the earlier epoch's
// waiters — both parked before and arriving after its swap — all
// unblock on its final release.
func TestTranslatorHandleScriptedEpochChain(t *testing.T) {
	trA, trB, _ := handleFixture(t)
	h := NewTranslatorHandle(trA)

	pin := h.Acquire()
	e1 := h.cur.Load()
	w1, w2 := make(chan error, 1), make(chan error, 1)
	go func() { w1 <- e1.Drain(context.Background()) }()
	go func() { w2 <- e1.Drain(context.Background()) }()

	// Churn on the installed epoch: refs returns to its idle value
	// (installation + pin), which must not look like a drain.
	for i := 0; i < 3; i++ {
		e := h.Acquire()
		e.Release()
	}
	select {
	case <-w1:
		t.Fatal("Drain of the installed epoch returned before any Swap")
	case <-w2:
		t.Fatal("Drain of the installed epoch returned before any Swap")
	case <-time.After(20 * time.Millisecond):
	}

	// Double swap: epoch 1 retires pinned, epoch 2 retires empty.
	old1 := h.Swap(trB)
	old2 := h.Swap(trA)
	if old1 != e1 || old1.Epoch() != 1 || old2.Epoch() != 2 {
		t.Fatalf("retired epochs %d, %d; want 1, 2", old1.Epoch(), old2.Epoch())
	}

	// Epoch 2 drains immediately — out of order with pinned epoch 1.
	if err := old2.Drain(context.Background()); err != nil {
		t.Fatalf("empty retired epoch 2 did not drain: %v", err)
	}
	select {
	case <-w1:
		t.Fatal("epoch 1 drained while pinned")
	case <-w2:
		t.Fatal("epoch 1 drained while pinned")
	default:
	}

	// A third waiter arrives after the swaps; the release wakes all.
	w3 := make(chan error, 1)
	go func() { w3 <- old1.Drain(context.Background()) }()
	pin.Release()
	for i, w := range []chan error{w1, w2, w3} {
		if err := <-w; err != nil {
			t.Fatalf("waiter %d: %v", i+1, err)
		}
	}
	if _, ep := h.Current(); ep != 3 {
		t.Fatalf("final epoch = %d, want 3", ep)
	}
}

// Hammer the handle with concurrent readers while a writer swaps
// between two tables, asserting (a) every read is internally
// consistent — a request's translation matches the epoch it pinned,
// never a mix — and (b) every retired epoch drains.
func TestTranslatorHandleConcurrentSwapNoTornReads(t *testing.T) {
	trA, trB, _ := handleFixture(t)
	h := NewTranslatorHandle(trA)
	stop := make(chan struct{})
	var torn atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := h.Acquire()
				ids, err := e.Translator().TranslateIDs(nil, dataset.Left, []int{0})
				if err != nil || len(ids) != 1 {
					torn.Add(1)
				} else {
					want := 0
					if e.Translator() == trB {
						want = 1
					}
					if ids[0] != want {
						torn.Add(1)
					}
				}
				e.Release()
			}
		}()
	}
	cur := trA
	for i := 0; i < 200; i++ {
		if cur == trA {
			cur = trB
		} else {
			cur = trA
		}
		old := h.Swap(cur)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := old.Drain(ctx)
		cancel()
		if err != nil {
			t.Fatalf("swap %d: old epoch did not drain: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d torn/inconsistent reads", n)
	}
	if _, ep := h.Current(); ep != 201 {
		t.Fatalf("final epoch = %d, want 201", ep)
	}
}
