package core

import (
	"sync"

	"twoview/internal/bitset"
)

// miningScratch holds the per-call working buffers of the round-structured
// miners (MineSelect's scored/gain slices and used-item masks, MineGreedy's
// candidate order and block scores). The buffers are recycled through the
// Session (or, for sessionless calls, a package-wide pool), so repeated
// mining calls in one session reach a steady state where rounds allocate
// nothing. Scratch never influences results: every buffer is either
// truncated to zero length or fully overwritten before it is read.
type miningScratch struct {
	scored []scoredRule  // SELECT: per-round scored rules
	gains  []float64     // SELECT: per-round Line-8 re-check gains
	usedL  bitset.Set    // SELECT: items used this round, left view
	usedR  bitset.Set    // SELECT: items used this round, right view
	order  []int         // GREEDY: candidate order
	scores []greedyScore // GREEDY: per-block speculative scores
}

// defaultScratchPool recycles scratch for callers without a Session.
var defaultScratchPool sync.Pool

// getScratch borrows a scratch from the options' session (falling back
// to the package-wide pool); return it with putScratch.
func (o ParallelOptions) getScratch() *miningScratch {
	sc, _ := o.Session.scratchPool().Get().(*miningScratch)
	if sc == nil {
		sc = new(miningScratch)
	}
	return sc
}

// putScratch returns a scratch borrowed with getScratch. The buffers keep
// their capacity (that is the point) but hold stale values; holders must
// not use sc afterwards.
func (o ParallelOptions) putScratch(sc *miningScratch) {
	o.Session.scratchPool().Put(sc)
}

// anyIn reports whether any item of s is set in mask. Items must be
// within the mask's width.
func anyIn(s []int, mask *bitset.Set) bool {
	for _, i := range s {
		if mask.Contains(i) {
			return true
		}
	}
	return false
}
