package core

import (
	"context"

	"twoview/internal/bitset"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/mine/eclat"
	"twoview/internal/pool"
)

// Candidate is one candidate rule skeleton for TRANSLATOR-SELECT and
// TRANSLATOR-GREEDY: a two-view itemset Z split into X = Z ∩ I_L and
// Y = Z ∩ I_R, with cached support tidsets for both sides.
type Candidate struct {
	X, Y itemset.Itemset
	// Supp is the joint support |supp(X ∪ Y)|.
	Supp int
	// TidX and TidY are the per-view supports of X and Y, used to
	// compute gains without re-intersecting columns.
	TidX, TidY *bitset.Set
}

// MineCandidates mines closed frequent two-view itemsets at the given
// minimum support and converts them into candidates, mirroring §5.3 ("all
// itemsets Z with |supp(Z)| > minsup, Z ∩ I_L ≠ ∅ and Z ∩ I_R ≠ ∅",
// restricted to closed sets as in §6.1). maxResults guards against
// pattern explosion (0 = unbounded). Both the ECLAT walk and the
// per-candidate tidset materialization run on the internal/pool worker
// pool sized by par; the result is identical for any worker count.
// Cancelling ctx aborts the walk and returns ctx.Err().
func MineCandidates(ctx context.Context, d *dataset.Dataset, minSupport, maxResults int, par ParallelOptions) ([]Candidate, error) {
	fis, err := eclat.Mine(ctx, d, eclat.Options{
		MinSupport: minSupport,
		Closed:     true,
		TwoView:    true,
		MaxResults: maxResults,
		// Candidates carry per-view tidsets, not the joint ones, so the
		// walk can recycle every tidset it touches.
		DropTids: true,
		Workers:  par.Workers,
		Runtime:  par.runtime(),
	})
	if err != nil {
		return nil, err
	}
	nLeft := d.Items(dataset.Left)
	// Bulk-allocate the retained per-candidate tidsets (two per
	// candidate) and split each mined itemset in place: the joined
	// itemset is already a fresh, owned allocation (fis is discarded
	// afterwards), so X and Y can alias its two halves. Each task
	// touches only its own candidate's slots, so the parallel
	// materialization stays deterministic.
	tids := bitset.NewBatch(2*len(fis), d.Size())
	cands, err := pool.MapOrderedIntoCtxOn(par.runtime(), ctx, nil, par.Workers, len(fis), func(i int) Candidate {
		x, y := eclat.SplitInPlace(fis[i].Items, nLeft)
		tidX, tidY := &tids[2*i], &tids[2*i+1]
		d.SupportSetInto(tidX, dataset.Left, x)
		d.SupportSetInto(tidY, dataset.Right, y)
		return Candidate{X: x, Y: y, Supp: fis[i].Supp, TidX: tidX, TidY: tidY}
	})
	if err != nil {
		return nil, err
	}
	return cands, nil
}

// MineCandidatesCapped mines candidates like MineCandidates but, instead
// of failing on a pattern explosion, doubles the minimum support until at
// most maxResults candidates remain — the paper's protocol of fixing
// minsup "such that the number of candidates remains manageable" (§6.1).
// It returns the candidates and the effective minimum support.
// A context cancellation is never retried: it aborts the doubling loop
// immediately with ctx.Err().
func MineCandidatesCapped(ctx context.Context, d *dataset.Dataset, minSupport, maxResults int, par ParallelOptions) ([]Candidate, int, error) {
	if minSupport < 1 {
		minSupport = 1
	}
	if maxResults <= 0 {
		cands, err := MineCandidates(ctx, d, minSupport, 0, par)
		return cands, minSupport, err
	}
	for {
		cands, err := MineCandidates(ctx, d, minSupport, maxResults, par)
		if err == nil {
			return cands, minSupport, nil
		}
		if ctx.Err() != nil {
			return nil, minSupport, ctx.Err()
		}
		next := minSupport * 2
		if next > d.Size() {
			return nil, minSupport, err
		}
		minSupport = next
	}
}
