package core

import (
	"math"
	"strings"
	"testing"

	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/mdl"
)

// fig1 reproduces the structure of the toy dataset of Fig. 1: left items
// A..E, right items K..U (a small subset suffices).
func fig1(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := dataset.MustNew(
		[]string{"A", "B", "C", "D", "E"},
		[]string{"K", "L", "P", "Q", "S", "U"},
	)
	rows := [][2][]int{
		{{0, 1}, {1, 5}},       // A B     | L U
		{{1, 2}, {2, 3, 4}},    //   B C   | P Q S
		{{2, 3}, {4}},          //     C D | S
		{{0, 1, 3}, {1, 3, 5}}, // A B D   | L Q U
		{{0, 1, 4}, {0, 1, 5}}, // A B   E | K L U
	}
	for _, r := range rows {
		if err := d.AddRow(r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestDirectionBasics(t *testing.T) {
	if Forward.String() != "->" || Backward.String() != "<-" || Both.String() != "<->" {
		t.Fatal("Direction strings wrong")
	}
	if !strings.Contains(Direction(9).String(), "9") {
		t.Fatal("unknown direction should render its value")
	}
	if !Both.Bidirectional() || Forward.Bidirectional() || Backward.Bidirectional() {
		t.Fatal("Bidirectional wrong")
	}
}

func TestRuleAppliesToAndSides(t *testing.T) {
	r := Rule{X: itemset.New(0), Dir: Forward, Y: itemset.New(1)}
	if !r.AppliesTo(dataset.Left) || r.AppliesTo(dataset.Right) {
		t.Fatal("Forward applies only from Left")
	}
	r.Dir = Backward
	if r.AppliesTo(dataset.Left) || !r.AppliesTo(dataset.Right) {
		t.Fatal("Backward applies only from Right")
	}
	r.Dir = Both
	if !r.AppliesTo(dataset.Left) || !r.AppliesTo(dataset.Right) {
		t.Fatal("Both applies from both sides")
	}
	if !r.Antecedent(dataset.Left).Equal(r.X) || !r.Consequent(dataset.Left).Equal(r.Y) {
		t.Fatal("Left antecedent/consequent wrong")
	}
	if !r.Antecedent(dataset.Right).Equal(r.Y) || !r.Consequent(dataset.Right).Equal(r.X) {
		t.Fatal("Right antecedent/consequent wrong")
	}
}

func TestRuleValidate(t *testing.T) {
	d := fig1(t)
	good := Rule{X: itemset.New(0, 1), Dir: Both, Y: itemset.New(1)}
	if err := good.Validate(d); err != nil {
		t.Fatal(err)
	}
	bad := []Rule{
		{X: nil, Dir: Forward, Y: itemset.New(0)},
		{X: itemset.New(0), Dir: Forward, Y: nil},
		{X: itemset.New(0), Dir: Direction(7), Y: itemset.New(0)},
		{X: itemset.New(99), Dir: Forward, Y: itemset.New(0)},
		{X: itemset.New(0), Dir: Forward, Y: itemset.New(99)},
		{X: itemset.Itemset{2, 1}, Dir: Forward, Y: itemset.New(0)},
		{X: itemset.Itemset{-1}, Dir: Forward, Y: itemset.New(0)},
	}
	for i, r := range bad {
		if err := r.Validate(d); err == nil {
			t.Errorf("bad rule %d validated: %v", i, r)
		}
	}
}

func TestRuleLenAndCompare(t *testing.T) {
	d := fig1(t)
	coder := mdl.NewCoder(d)
	x, y := itemset.New(0), itemset.New(1)
	uni := Rule{X: x, Dir: Forward, Y: y}.Len(coder)
	bi := Rule{X: x, Dir: Both, Y: y}.Len(coder)
	if math.Abs(uni-bi-1) > 1e-12 {
		t.Fatalf("unidirectional rule must cost exactly 1 extra bit: %v vs %v", uni, bi)
	}
	a := Rule{X: itemset.New(0), Dir: Forward, Y: itemset.New(1)}
	b := Rule{X: itemset.New(0), Dir: Both, Y: itemset.New(1)}
	c := Rule{X: itemset.New(1), Dir: Forward, Y: itemset.New(1)}
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 || a.Compare(a) != 0 || a.Compare(c) >= 0 {
		t.Fatal("Compare order wrong")
	}
}

func TestRuleStringsAndTable(t *testing.T) {
	d := fig1(t)
	r := Rule{X: itemset.New(0, 1), Dir: Both, Y: itemset.New(1)}
	if got := r.Format(d); got != "{A, B} <-> {L}" {
		t.Fatalf("Format = %q", got)
	}
	if got := r.String(); got != "{0 1} <-> {1}" {
		t.Fatalf("String = %q", got)
	}
	tab := &Table{Rules: []Rule{
		r,
		{X: itemset.New(2), Dir: Forward, Y: itemset.New(4)},
	}}
	if tab.Size() != 2 {
		t.Fatal("Size wrong")
	}
	if got := tab.AvgRuleItems(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("AvgRuleItems = %v, want 2.5", got)
	}
	if (&Table{}).AvgRuleItems() != 0 {
		t.Fatal("empty table AvgRuleItems should be 0")
	}
	if err := tab.Validate(d); err != nil {
		t.Fatal(err)
	}
	tab.Rules = append(tab.Rules, Rule{})
	if err := tab.Validate(d); err == nil {
		t.Fatal("invalid rule in table not caught")
	}
	coder := mdl.NewCoder(d)
	want := tab.Rules[0].Len(coder) + tab.Rules[1].Len(coder)
	tab.Rules = tab.Rules[:2]
	if got := tab.Len(coder); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Table.Len = %v, want %v", got, want)
	}
}

func TestTableClone(t *testing.T) {
	tab := &Table{Rules: []Rule{{X: itemset.New(0), Dir: Both, Y: itemset.New(1)}}}
	c := tab.Clone()
	c.Rules[0].X[0] = 42
	if tab.Rules[0].X[0] != 0 {
		t.Fatal("Clone shares itemset storage")
	}
}
