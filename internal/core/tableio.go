package core

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"strings"

	"twoview/internal/dataset"
)

// This file implements persistence for translation tables, so that a
// table mined once can be stored, inspected, diffed and later applied to
// new data. The format is line-oriented and uses item *names* (not ids),
// making files robust against vocabulary reordering:
//
//	# comments and blank lines ignored
//	name1, name2 -> name3          (one rule per line)
//	name4 <-> name5, name6
//
// Directions are "->", "<-" and "<->". Item names containing commas are
// not supported by the format (the dataset package never produces them
// from its own preprocessing).

// WriteTable serializes t against d's vocabularies.
func WriteTable(w io.Writer, d *dataset.Dataset, t *Table) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# twoview translation table: %d rules\n", t.Size())
	for _, r := range t.Rules {
		if err := r.Validate(d); err != nil {
			return fmt.Errorf("core: cannot serialize: %w", err)
		}
		fmt.Fprintf(bw, "%s %s %s\n",
			joinNames(r.X, d.Names(dataset.Left)),
			r.Dir,
			joinNames(r.Y, d.Names(dataset.Right)))
	}
	return bw.Flush()
}

func joinNames(s []int, names []string) string {
	parts := make([]string, len(s))
	for i, id := range s {
		parts[i] = names[id]
	}
	return strings.Join(parts, ", ")
}

// ReadTable parses a translation table, resolving item names against d's
// vocabularies.
func ReadTable(r io.Reader, d *dataset.Dataset) (*Table, error) {
	idxL := nameIndex(d.Names(dataset.Left))
	idxR := nameIndex(d.Names(dataset.Right))
	t := &Table{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		rule, err := parseRuleLine(text, idxL, idxR)
		if err != nil {
			return nil, fmt.Errorf("core: line %d: %w", line, err)
		}
		if err := rule.Validate(d); err != nil {
			return nil, fmt.Errorf("core: line %d: %w", line, err)
		}
		t.Rules = append(t.Rules, rule)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

func nameIndex(names []string) map[string]int {
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	return idx
}

func parseRuleLine(text string, idxL, idxR map[string]int) (Rule, error) {
	var dir Direction
	var sep string
	switch {
	case strings.Contains(text, "<->"):
		dir, sep = Both, "<->"
	case strings.Contains(text, "->"):
		dir, sep = Forward, "->"
	case strings.Contains(text, "<-"):
		dir, sep = Backward, "<-"
	default:
		return Rule{}, fmt.Errorf("no direction in rule %q", text)
	}
	parts := strings.SplitN(text, sep, 2)
	x, err := parseNames(parts[0], idxL, "left")
	if err != nil {
		return Rule{}, err
	}
	y, err := parseNames(parts[1], idxR, "right")
	if err != nil {
		return Rule{}, err
	}
	return Rule{X: x, Dir: dir, Y: y}, nil
}

func parseNames(s string, idx map[string]int, side string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		id, ok := idx[name]
		if !ok {
			return nil, fmt.Errorf("unknown %s item %q", side, name)
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty %s side", side)
	}
	// Canonicalize: names may be listed in any order.
	sortInts(out)
	return out, nil
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// WriteTableFile writes the table to a file.
func WriteTableFile(path string, d *dataset.Dataset, t *Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTable(f, d, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTableFile reads a table from a file.
func ReadTableFile(path string, d *dataset.Dataset) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTable(f, d)
}

// ApplyReport summarizes applying a stored table to a dataset: the
// translated view, the corrections needed, and the reconstruction check.
type ApplyReport struct {
	From dataset.View
	// TranslatedOnes is the number of items produced by the rules.
	TranslatedOnes int
	// Uncovered and Errors are |U| and |E| against the actual target view.
	Uncovered int
	Errors    int
	// Cells is |D| · |I_target|, for turning counts into rates.
	Cells int
}

// Apply translates view `from` of d with t and reports the correction
// statistics; Reconstruct-style losslessness is implied by construction
// (tests assert it). It is a thin wrapper over the compiled serving
// path — compile once, apply once; callers applying the same table many
// times should CompileTranslator themselves and amortize the
// preparation. Cancelling ctx aborts between rows with ctx.Err(). The
// report is bit-identical to the reference (Translate +
// CorrectionTables) computation, which tests cross-check.
func Apply(ctx context.Context, d *dataset.Dataset, t *Table, from dataset.View) (ApplyReport, error) {
	tr, err := CompileTranslator(d, t)
	if err != nil {
		return ApplyReport{}, err
	}
	return tr.Apply(ctx, d, from)
}

// applyReference is the uncompiled Apply: the reference Translate /
// CorrectionTables walk. Tests assert the compiled path reproduces it
// bit-for-bit.
func applyReference(d *dataset.Dataset, t *Table, from dataset.View) ApplyReport {
	target := from.Opposite()
	trans := Translate(d, t, from)
	u, e := CorrectionTables(d, t, from)
	rep := ApplyReport{From: from, Cells: d.Size() * d.Items(target)}
	for i := range trans {
		rep.TranslatedOnes += trans[i].Count()
		rep.Uncovered += u[i].Count()
		rep.Errors += e[i].Count()
	}
	return rep
}
