package core

import (
	"twoview/internal/bitset"
	"twoview/internal/dataset"
)

// This file implements the TRANSLATE scheme (Algorithm 1) and lossless
// reconstruction via correction tables (§3). These are the reference
// (non-incremental) implementations; State maintains the same quantities
// incrementally and is cross-checked against these in tests.

// TranslateRow applies Algorithm 1 to a single transaction: it returns t′,
// the union of the consequents of all rules firing from view `from` whose
// antecedent occurs in row. The result is a bitset over the opposite
// view's vocabulary.
func TranslateRow(d *dataset.Dataset, t *Table, from dataset.View, row *bitset.Set) *bitset.Set {
	out := bitset.New(d.Items(from.Opposite()))
	for _, r := range t.Rules {
		if !r.AppliesTo(from) {
			continue
		}
		if row.ContainsAll(r.Antecedent(from)) {
			for _, i := range r.Consequent(from) {
				out.Add(i)
			}
		}
	}
	return out
}

// Translate translates every transaction of view `from` into the opposite
// view, returning one bitset per transaction.
func Translate(d *dataset.Dataset, t *Table, from dataset.View) []*bitset.Set {
	out := make([]*bitset.Set, d.Size())
	for i := 0; i < d.Size(); i++ {
		out[i] = TranslateRow(d, t, from, d.Row(from, i))
	}
	return out
}

// CorrectionTables returns, for the translation from view `from`, the
// correction table C (c_t = t ⊕ t′ for the target view) split into its two
// parts: U (uncovered: items of the data missing from the translation) and
// E (errors: items introduced by the translation that are not in the
// data). C = U ∪ E with U ∩ E = ∅ (§5.1).
func CorrectionTables(d *dataset.Dataset, t *Table, from dataset.View) (u, e []*bitset.Set) {
	to := from.Opposite()
	trans := Translate(d, t, from)
	u = make([]*bitset.Set, d.Size())
	e = make([]*bitset.Set, d.Size())
	for i := 0; i < d.Size(); i++ {
		row := d.Row(to, i)
		ut := row.Clone()
		ut.AndNot(trans[i]) // t \ t′
		et := trans[i].Clone()
		et.AndNot(row) // t′ \ t
		u[i], e[i] = ut, et
	}
	return u, e
}

// Reconstruct performs the lossless reconstruction of the target view:
// t = t′ ⊕ c. It returns the reconstructed rows, which tests verify to be
// exactly the original view.
func Reconstruct(d *dataset.Dataset, t *Table, from dataset.View) []*bitset.Set {
	trans := Translate(d, t, from)
	u, e := CorrectionTables(d, t, from)
	out := make([]*bitset.Set, d.Size())
	for i := range trans {
		c := u[i].Clone()
		c.Or(e[i]) // C = U ∪ E (disjoint)
		rec := trans[i].Clone()
		rec.Xor(c)
		out[i] = rec
	}
	return out
}
