package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twoview/internal/dataset"
	"twoview/internal/itemset"
)

func TestTranslateRowAlgorithm1(t *testing.T) {
	d := fig1(t)
	tab := &Table{Rules: []Rule{
		{X: itemset.New(0, 1), Dir: Both, Y: itemset.New(1, 5)}, // {A,B} <-> {L,U}
		{X: itemset.New(2), Dir: Forward, Y: itemset.New(4)},    // {C} -> {S}
		{X: itemset.New(3), Dir: Backward, Y: itemset.New(3)},   // {D} <- {Q}
	}}
	// Transaction 0 = A B | L U: both <-> and -> rules checked L→R.
	got := TranslateRow(d, tab, dataset.Left, d.Row(dataset.Left, 0))
	if !got.ContainsAll([]int{1, 5}) || got.Count() != 2 {
		t.Fatalf("t0 L→R = %v", got)
	}
	// Backward rule must not fire L→R.
	got = TranslateRow(d, tab, dataset.Left, d.Row(dataset.Left, 3)) // A B D
	if !got.ContainsAll([]int{1, 5}) || got.Count() != 2 {
		t.Fatalf("t3 L→R = %v (backward rule must not fire)", got)
	}
	// R→L: transaction 3 = L Q U: <-> fires (L,U ⊆ tR), <- fires (Q ⊆ tR).
	got = TranslateRow(d, tab, dataset.Right, d.Row(dataset.Right, 3))
	if !got.ContainsAll([]int{0, 1, 3}) || got.Count() != 3 {
		t.Fatalf("t3 R→L = %v", got)
	}
	// Rule order must not matter.
	rev := &Table{Rules: []Rule{tab.Rules[2], tab.Rules[1], tab.Rules[0]}}
	for i := 0; i < d.Size(); i++ {
		a := TranslateRow(d, tab, dataset.Left, d.Row(dataset.Left, i))
		b := TranslateRow(d, rev, dataset.Left, d.Row(dataset.Left, i))
		if !a.Equal(b) {
			t.Fatalf("translation depends on rule order at t%d", i)
		}
	}
}

func TestCorrectionTablesDisjointAndComplete(t *testing.T) {
	d := fig1(t)
	tab := &Table{Rules: []Rule{
		{X: itemset.New(0, 1), Dir: Both, Y: itemset.New(1, 5)},
	}}
	u, e := CorrectionTables(d, tab, dataset.Left)
	trans := Translate(d, tab, dataset.Left)
	for i := 0; i < d.Size(); i++ {
		if u[i].Intersects(e[i]) {
			t.Fatalf("U and E overlap at t%d", i)
		}
		row := d.Row(dataset.Right, i)
		if !u[i].SubsetOf(row) {
			t.Fatalf("U ⊄ row at t%d", i)
		}
		if e[i].Intersects(row) {
			t.Fatalf("E intersects row at t%d", i)
		}
		// C = t ⊕ t′.
		c := row.Clone()
		c.Xor(trans[i])
		both := u[i].Clone()
		both.Or(e[i])
		if !c.Equal(both) {
			t.Fatalf("C != U ∪ E at t%d", i)
		}
	}
}

func TestReconstructLossless(t *testing.T) {
	d := fig1(t)
	tab := &Table{Rules: []Rule{
		{X: itemset.New(0, 1), Dir: Both, Y: itemset.New(1, 5)},
		{X: itemset.New(2), Dir: Forward, Y: itemset.New(4)},
		{X: itemset.New(3), Dir: Backward, Y: itemset.New(3)},
	}}
	for _, from := range []dataset.View{dataset.Left, dataset.Right} {
		rec := Reconstruct(d, tab, from)
		for i := 0; i < d.Size(); i++ {
			if !rec[i].Equal(d.Row(from.Opposite(), i)) {
				t.Fatalf("reconstruction from %v differs at t%d", from, i)
			}
		}
	}
}

// randomDataAndTable builds a random dataset and a random valid table.
// Every item is made to occur at least once so that all code lengths are
// finite (rules over zero-support items are rejected by the state).
func randomDataAndTable(r *rand.Rand) (*dataset.Dataset, *Table) {
	nL, nR := 2+r.Intn(5), 2+r.Intn(5)
	d := dataset.MustNew(dataset.GenericNames("l", nL), dataset.GenericNames("r", nR))
	allL := make([]int, nL)
	for i := range allL {
		allL[i] = i
	}
	allR := make([]int, nR)
	for i := range allR {
		allR[i] = i
	}
	d.AddRow(allL, allR)
	n := 1 + r.Intn(30)
	for i := 0; i < n; i++ {
		var left, right []int
		for j := 0; j < nL; j++ {
			if r.Intn(3) == 0 {
				left = append(left, j)
			}
		}
		for j := 0; j < nR; j++ {
			if r.Intn(3) == 0 {
				right = append(right, j)
			}
		}
		d.AddRow(left, right)
	}
	tab := &Table{}
	for k := 0; k < r.Intn(6); k++ {
		x := itemset.New(r.Intn(nL))
		if r.Intn(2) == 0 {
			x = x.Union(itemset.New(r.Intn(nL)))
		}
		y := itemset.New(r.Intn(nR))
		if r.Intn(2) == 0 {
			y = y.Union(itemset.New(r.Intn(nR)))
		}
		tab.Rules = append(tab.Rules, Rule{X: x, Dir: Direction(r.Intn(3)), Y: y})
	}
	return d, tab
}

// The central model property: translation + correction is lossless for any
// dataset and any valid translation table, in both directions (§3).
func TestQuickLosslessTranslation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d, tab := randomDataAndTable(r)
		for _, from := range []dataset.View{dataset.Left, dataset.Right} {
			rec := Reconstruct(d, tab, from)
			for i := 0; i < d.Size(); i++ {
				if !rec[i].Equal(d.Row(from.Opposite(), i)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Rule-order invariance of translation (§3) for random tables.
func TestQuickOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d, tab := randomDataAndTable(r)
		perm := &Table{Rules: append([]Rule(nil), tab.Rules...)}
		r.Shuffle(len(perm.Rules), func(i, j int) {
			perm.Rules[i], perm.Rules[j] = perm.Rules[j], perm.Rules[i]
		})
		for _, from := range []dataset.View{dataset.Left, dataset.Right} {
			a := Translate(d, tab, from)
			b := Translate(d, perm, from)
			for i := range a {
				if !a[i].Equal(b[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
