package core

import (
	"testing"
)

// Parallel candidate scoring must not change results: SELECT with one
// worker and with many workers produce identical tables.
func TestMineSelectParallelDeterminism(t *testing.T) {
	d := plantedDataset(t, 31)
	cands, err := MineCandidates(d, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	serial := MineSelect(d, cands, SelectOptions{K: 25, Workers: 1})
	for _, workers := range []int{2, 4, 7} {
		par := MineSelect(d, cands, SelectOptions{K: 25, Workers: workers})
		if par.Table.Size() != serial.Table.Size() {
			t.Fatalf("workers=%d: %d rules, serial %d",
				workers, par.Table.Size(), serial.Table.Size())
		}
		for i := range serial.Table.Rules {
			if par.Table.Rules[i].Compare(serial.Table.Rules[i]) != 0 {
				t.Fatalf("workers=%d: rule %d differs", workers, i)
			}
		}
		if par.State.Score() != serial.State.Score() {
			t.Fatalf("workers=%d: score differs", workers)
		}
	}
}

// Default (Workers=0 → GOMAXPROCS) matches the serial result too.
func TestMineSelectDefaultWorkers(t *testing.T) {
	d := plantedDataset(t, 32)
	cands, err := MineCandidates(d, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := MineSelect(d, cands, SelectOptions{K: 1, Workers: 1})
	b := MineSelect(d, cands, SelectOptions{K: 1})
	if a.Table.Size() != b.Table.Size() || a.State.Score() != b.State.Score() {
		t.Fatal("default workers changed the result")
	}
}
