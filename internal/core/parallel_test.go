package core

import (
	"context"
	"testing"
)

// Parallel candidate scoring must not change results: SELECT with one
// worker and with many workers produce identical tables.
func TestMineSelectParallelDeterminism(t *testing.T) {
	d := plantedDataset(t, 31)
	cands, err := MineCandidates(context.Background(), d, 1, 0, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	serial := mustSelect(t, d, cands, SelectOptions{K: 25, ParallelOptions: Parallel(1)})
	for _, workers := range []int{2, 4, 7} {
		par := mustSelect(t, d, cands, SelectOptions{K: 25, ParallelOptions: Parallel(workers)})
		if par.Table.Size() != serial.Table.Size() {
			t.Fatalf("workers=%d: %d rules, serial %d",
				workers, par.Table.Size(), serial.Table.Size())
		}
		for i := range serial.Table.Rules {
			if par.Table.Rules[i].Compare(serial.Table.Rules[i]) != 0 {
				t.Fatalf("workers=%d: rule %d differs", workers, i)
			}
		}
		if par.State.Score() != serial.State.Score() {
			t.Fatalf("workers=%d: score differs", workers)
		}
	}
}

// Parallel best-rule search must not change results: EXACT with one
// worker and with many workers produce bit-identical tables, per-rule
// gains, and final scores.
func TestMineExactParallelDeterminism(t *testing.T) {
	for _, seed := range []int64{31, 33, 35} {
		d := plantedDataset(t, seed)
		serial := mustExact(t, d, ExactOptions{ParallelOptions: Parallel(1)})
		if serial.Table.Size() == 0 {
			t.Fatalf("seed %d: serial found no rules", seed)
		}
		for _, workers := range []int{2, 4, 7} {
			par := mustExact(t, d, ExactOptions{ParallelOptions: Parallel(workers)})
			if par.Table.Size() != serial.Table.Size() {
				t.Fatalf("seed %d workers=%d: %d rules, serial %d",
					seed, workers, par.Table.Size(), serial.Table.Size())
			}
			for i := range serial.Table.Rules {
				if par.Table.Rules[i].Compare(serial.Table.Rules[i]) != 0 {
					t.Fatalf("seed %d workers=%d: rule %d differs: %v vs %v",
						seed, workers, i, par.Table.Rules[i], serial.Table.Rules[i])
				}
			}
			for i := range serial.Iterations {
				if par.Iterations[i].Gain != serial.Iterations[i].Gain {
					t.Fatalf("seed %d workers=%d: gain %d differs: %v vs %v",
						seed, workers, i, par.Iterations[i].Gain, serial.Iterations[i].Gain)
				}
			}
			if par.State.Score() != serial.State.Score() {
				t.Fatalf("seed %d workers=%d: score %v, serial %v",
					seed, workers, par.State.Score(), serial.State.Score())
			}
		}
	}
}

// The parallel search stays exact with the pruning bounds disabled (the
// ablation configurations walk the same enumeration).
func TestMineExactParallelNoBounds(t *testing.T) {
	d := plantedDataset(t, 34)
	serial := mustExact(t, d, ExactOptions{MaxRules: 3, ParallelOptions: Parallel(1)})
	par := mustExact(t, d, ExactOptions{MaxRules: 3, DisableRub: true, DisableQub: true, ParallelOptions: Parallel(4)})
	if par.Table.Size() != serial.Table.Size() {
		t.Fatalf("%d rules, serial %d", par.Table.Size(), serial.Table.Size())
	}
	for i := range serial.Table.Rules {
		if par.Table.Rules[i].Compare(serial.Table.Rules[i]) != 0 {
			t.Fatalf("rule %d differs", i)
		}
	}
	if par.State.Score() != serial.State.Score() {
		t.Fatal("score differs")
	}
}

// Default (Workers=0 → GOMAXPROCS) matches the serial result for EXACT.
func TestMineExactDefaultWorkers(t *testing.T) {
	d := plantedDataset(t, 36)
	a := mustExact(t, d, ExactOptions{MaxRules: 4, ParallelOptions: Parallel(1)})
	b := mustExact(t, d, ExactOptions{MaxRules: 4})
	if a.Table.Size() != b.Table.Size() || a.State.Score() != b.State.Score() {
		t.Fatal("default workers changed the result")
	}
}

// Default (Workers=0 → GOMAXPROCS) matches the serial result too.
func TestMineSelectDefaultWorkers(t *testing.T) {
	d := plantedDataset(t, 32)
	cands, err := MineCandidates(context.Background(), d, 1, 0, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := mustSelect(t, d, cands, SelectOptions{K: 1, ParallelOptions: Parallel(1)})
	b := mustSelect(t, d, cands, SelectOptions{K: 1})
	if a.Table.Size() != b.Table.Size() || a.State.Score() != b.State.Score() {
		t.Fatal("default workers changed the result")
	}
}

// Speculative block scoring must not change GREEDY results: one worker
// and many workers produce bit-identical tables, gains and scores.
func TestMineGreedyParallelDeterminism(t *testing.T) {
	for _, seed := range []int64{31, 35} {
		d := plantedDataset(t, seed)
		cands, err := MineCandidates(context.Background(), d, 1, 0, ParallelOptions{})
		if err != nil {
			t.Fatal(err)
		}
		serial := mustGreedy(t, d, cands, GreedyOptions{ParallelOptions: Parallel(1)})
		if serial.Table.Size() == 0 {
			t.Fatalf("seed %d: serial found no rules", seed)
		}
		for _, workers := range []int{2, 4, 7} {
			par := mustGreedy(t, d, cands, GreedyOptions{ParallelOptions: Parallel(workers)})
			if par.Table.Size() != serial.Table.Size() {
				t.Fatalf("seed %d workers=%d: %d rules, serial %d",
					seed, workers, par.Table.Size(), serial.Table.Size())
			}
			for i := range serial.Table.Rules {
				if par.Table.Rules[i].Compare(serial.Table.Rules[i]) != 0 {
					t.Fatalf("seed %d workers=%d: rule %d differs", seed, workers, i)
				}
			}
			for i := range serial.Iterations {
				if par.Iterations[i].Gain != serial.Iterations[i].Gain {
					t.Fatalf("seed %d workers=%d: gain %d differs", seed, workers, i)
				}
			}
			if par.State.Score() != serial.State.Score() {
				t.Fatalf("seed %d workers=%d: score differs", seed, workers)
			}
		}
	}
}

// The MaxRules cut must land on the same prefix for any worker count
// (the speculative walk may not run past the cap).
func TestMineGreedyParallelMaxRules(t *testing.T) {
	d := plantedDataset(t, 37)
	cands, err := MineCandidates(context.Background(), d, 1, 0, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	serial := mustGreedy(t, d, cands, GreedyOptions{MaxRules: 2, ParallelOptions: Parallel(1)})
	par := mustGreedy(t, d, cands, GreedyOptions{MaxRules: 2, ParallelOptions: Parallel(4)})
	if serial.Table.Size() != par.Table.Size() {
		t.Fatalf("%d rules, serial %d", par.Table.Size(), serial.Table.Size())
	}
	for i := range serial.Table.Rules {
		if par.Table.Rules[i].Compare(serial.Table.Rules[i]) != 0 {
			t.Fatalf("rule %d differs", i)
		}
	}
}

// The parallel ECLAT walk must not change the candidate set: identical
// itemsets, supports and cached tidsets in identical order for any
// worker count.
func TestMineCandidatesParallelDeterminism(t *testing.T) {
	d := plantedDataset(t, 31)
	serial, err := MineCandidates(context.Background(), d, 1, 0, Parallel(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) == 0 {
		t.Fatal("no candidates")
	}
	for _, workers := range []int{2, 4, 7} {
		par, err := MineCandidates(context.Background(), d, 1, 0, Parallel(workers))
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d candidates, serial %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if !par[i].X.Equal(serial[i].X) || !par[i].Y.Equal(serial[i].Y) ||
				par[i].Supp != serial[i].Supp {
				t.Fatalf("workers=%d: candidate %d differs", workers, i)
			}
			if !par[i].TidX.Equal(serial[i].TidX) || !par[i].TidY.Equal(serial[i].TidY) {
				t.Fatalf("workers=%d: candidate %d tidsets differ", workers, i)
			}
		}
	}
}

// The capped variant raises the support identically for any worker count
// (the overflow guard is schedule-independent), and the explosion error
// itself is deterministic.
func TestMineCandidatesCappedParallelDeterminism(t *testing.T) {
	d := plantedDataset(t, 33)
	serial, ms1, err := MineCandidatesCapped(context.Background(), d, 1, 10, Parallel(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		par, ms, err := MineCandidatesCapped(context.Background(), d, 1, 10, Parallel(workers))
		if err != nil {
			t.Fatal(err)
		}
		if ms != ms1 || len(par) != len(serial) {
			t.Fatalf("workers=%d: minsup %d / %d cands, serial %d / %d",
				workers, ms, len(par), ms1, len(serial))
		}
		for i := range serial {
			if !par[i].X.Equal(serial[i].X) || !par[i].Y.Equal(serial[i].Y) {
				t.Fatalf("workers=%d: candidate %d differs", workers, i)
			}
		}
	}
	if _, err := MineCandidates(context.Background(), d, 1, 2, Parallel(4)); err == nil {
		t.Fatal("parallel MaxResults guard did not trigger")
	}
}
