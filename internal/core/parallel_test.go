package core

import (
	"testing"
)

// Parallel candidate scoring must not change results: SELECT with one
// worker and with many workers produce identical tables.
func TestMineSelectParallelDeterminism(t *testing.T) {
	d := plantedDataset(t, 31)
	cands, err := MineCandidates(d, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	serial := MineSelect(d, cands, SelectOptions{K: 25, Workers: 1})
	for _, workers := range []int{2, 4, 7} {
		par := MineSelect(d, cands, SelectOptions{K: 25, Workers: workers})
		if par.Table.Size() != serial.Table.Size() {
			t.Fatalf("workers=%d: %d rules, serial %d",
				workers, par.Table.Size(), serial.Table.Size())
		}
		for i := range serial.Table.Rules {
			if par.Table.Rules[i].Compare(serial.Table.Rules[i]) != 0 {
				t.Fatalf("workers=%d: rule %d differs", workers, i)
			}
		}
		if par.State.Score() != serial.State.Score() {
			t.Fatalf("workers=%d: score differs", workers)
		}
	}
}

// Parallel best-rule search must not change results: EXACT with one
// worker and with many workers produce bit-identical tables, per-rule
// gains, and final scores.
func TestMineExactParallelDeterminism(t *testing.T) {
	for _, seed := range []int64{31, 33, 35} {
		d := plantedDataset(t, seed)
		serial := MineExact(d, ExactOptions{Workers: 1})
		if serial.Table.Size() == 0 {
			t.Fatalf("seed %d: serial found no rules", seed)
		}
		for _, workers := range []int{2, 4, 7} {
			par := MineExact(d, ExactOptions{Workers: workers})
			if par.Table.Size() != serial.Table.Size() {
				t.Fatalf("seed %d workers=%d: %d rules, serial %d",
					seed, workers, par.Table.Size(), serial.Table.Size())
			}
			for i := range serial.Table.Rules {
				if par.Table.Rules[i].Compare(serial.Table.Rules[i]) != 0 {
					t.Fatalf("seed %d workers=%d: rule %d differs: %v vs %v",
						seed, workers, i, par.Table.Rules[i], serial.Table.Rules[i])
				}
			}
			for i := range serial.Iterations {
				if par.Iterations[i].Gain != serial.Iterations[i].Gain {
					t.Fatalf("seed %d workers=%d: gain %d differs: %v vs %v",
						seed, workers, i, par.Iterations[i].Gain, serial.Iterations[i].Gain)
				}
			}
			if par.State.Score() != serial.State.Score() {
				t.Fatalf("seed %d workers=%d: score %v, serial %v",
					seed, workers, par.State.Score(), serial.State.Score())
			}
		}
	}
}

// The parallel search stays exact with the pruning bounds disabled (the
// ablation configurations walk the same enumeration).
func TestMineExactParallelNoBounds(t *testing.T) {
	d := plantedDataset(t, 34)
	serial := MineExact(d, ExactOptions{Workers: 1, MaxRules: 3})
	par := MineExact(d, ExactOptions{Workers: 4, MaxRules: 3, DisableRub: true, DisableQub: true})
	if par.Table.Size() != serial.Table.Size() {
		t.Fatalf("%d rules, serial %d", par.Table.Size(), serial.Table.Size())
	}
	for i := range serial.Table.Rules {
		if par.Table.Rules[i].Compare(serial.Table.Rules[i]) != 0 {
			t.Fatalf("rule %d differs", i)
		}
	}
	if par.State.Score() != serial.State.Score() {
		t.Fatal("score differs")
	}
}

// Default (Workers=0 → GOMAXPROCS) matches the serial result for EXACT.
func TestMineExactDefaultWorkers(t *testing.T) {
	d := plantedDataset(t, 36)
	a := MineExact(d, ExactOptions{Workers: 1, MaxRules: 4})
	b := MineExact(d, ExactOptions{MaxRules: 4})
	if a.Table.Size() != b.Table.Size() || a.State.Score() != b.State.Score() {
		t.Fatal("default workers changed the result")
	}
}

// Default (Workers=0 → GOMAXPROCS) matches the serial result too.
func TestMineSelectDefaultWorkers(t *testing.T) {
	d := plantedDataset(t, 32)
	cands, err := MineCandidates(d, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := MineSelect(d, cands, SelectOptions{K: 1, Workers: 1})
	b := MineSelect(d, cands, SelectOptions{K: 1})
	if a.Table.Size() != b.Table.Size() || a.State.Score() != b.State.Score() {
		t.Fatal("default workers changed the result")
	}
}
