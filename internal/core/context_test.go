package core

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"twoview/internal/dataset"
)

// The acceptance contract of the v2 API: a mid-search cancellation of
// each miner returns context.Canceled promptly, the partial table mined
// before the cut is still returned, and the Session runtime stays fully
// reusable — a follow-up mine on the same Session reproduces the
// uncancelled reference bit for bit.

// minerRun adapts the three miners to one shape for the cancellation
// tests.
type minerRun func(ctx context.Context, onIter IterationFunc, par ParallelOptions) (*Result, error)

func minerRuns(d *datasetWithCands) map[string]minerRun {
	return map[string]minerRun{
		"exact": func(ctx context.Context, onIter IterationFunc, par ParallelOptions) (*Result, error) {
			return MineExact(ctx, d.d, ExactOptions{OnIteration: onIter, ParallelOptions: par})
		},
		"select": func(ctx context.Context, onIter IterationFunc, par ParallelOptions) (*Result, error) {
			return MineSelect(ctx, d.d, d.cands, SelectOptions{K: 1, OnIteration: onIter, ParallelOptions: par})
		},
		"greedy": func(ctx context.Context, onIter IterationFunc, par ParallelOptions) (*Result, error) {
			return MineGreedy(ctx, d.d, d.cands, GreedyOptions{OnIteration: onIter, ParallelOptions: par})
		},
	}
}

type datasetWithCands struct {
	d     *dataset.Dataset
	cands []Candidate
}

// twoPatternDataset plants two disjoint bidirectional associations, so
// every miner needs at least two iterations — room for a mid-search
// cut between them.
func twoPatternDataset(t testing.TB, seed int64) *dataset.Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	d := dataset.MustNew(dataset.GenericNames("l", 8), dataset.GenericNames("r", 8))
	for i := 0; i < 120; i++ {
		var left, right []int
		if i%2 == 0 {
			left = append(left, 0, 1)
			right = append(right, 0, 1)
		}
		if i%3 != 0 {
			left = append(left, 2, 3)
			right = append(right, 2, 3)
		}
		for j := 4; j < 8; j++ {
			if r.Intn(6) == 0 {
				left = append(left, j)
			}
			if r.Intn(6) == 0 {
				right = append(right, j)
			}
		}
		if err := d.AddRow(left, right); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// TestMinerCancellationMidSearch cancels each miner from its own
// OnIteration hook — a deterministic mid-search cut — and checks the
// contract for every worker count, reusing one Session across the
// cancelled run and a follow-up full run.
func TestMinerCancellationMidSearch(t *testing.T) {
	d := twoPatternDataset(t, 41)
	cands := mustCandidates(t, d, 1, 0, Parallel(1))
	fixture := &datasetWithCands{d: d, cands: cands}

	// Uncancelled references, serial.
	refs := map[string]*Result{}
	for name, run := range minerRuns(fixture) {
		res, err := run(context.Background(), nil, Parallel(1))
		if err != nil {
			t.Fatalf("%s reference: %v", name, err)
		}
		if res.Table.Size() < 2 {
			t.Fatalf("%s reference found %d rules; need ≥ 2 for a mid-search cut", name, res.Table.Size())
		}
		refs[name] = res
	}

	for _, workers := range []int{1, 2, 4, 7} {
		sess := NewSession()
		par := ParallelOptions{Workers: workers, Session: sess}
		for name, run := range minerRuns(fixture) {
			ctx, cancel := context.WithCancel(context.Background())
			res, err := run(ctx, func(IterationStats) bool { cancel(); return true }, par)
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d %s: err = %v, want context.Canceled", workers, name, err)
			}
			if res == nil || res.Table.Size() == 0 {
				t.Fatalf("workers=%d %s: cancelled run returned no partial table", workers, name)
			}
			if res.Table.Size() >= refs[name].Table.Size() {
				t.Fatalf("workers=%d %s: cancellation did not cut the run (%d rules, reference %d)",
					workers, name, res.Table.Size(), refs[name].Table.Size())
			}
			// The partial table must be a prefix of the reference: the
			// run was bit-identical up to the cut.
			for i := range res.Table.Rules {
				if res.Table.Rules[i].Compare(refs[name].Table.Rules[i]) != 0 {
					t.Fatalf("workers=%d %s: partial rule %d differs from reference", workers, name, i)
				}
			}

			// The Session survives the cancelled run: a follow-up mine on
			// the same runtime reproduces the reference exactly.
			again, err := run(context.Background(), nil, par)
			if err != nil {
				t.Fatalf("workers=%d %s: follow-up mine on the same session: %v", workers, name, err)
			}
			if again.Table.Size() != refs[name].Table.Size() {
				t.Fatalf("workers=%d %s: follow-up found %d rules, reference %d",
					workers, name, again.Table.Size(), refs[name].Table.Size())
			}
			for i := range again.Table.Rules {
				if again.Table.Rules[i].Compare(refs[name].Table.Rules[i]) != 0 {
					t.Fatalf("workers=%d %s: follow-up rule %d differs", workers, name, i)
				}
			}
			if again.State.Score() != refs[name].State.Score() {
				t.Fatalf("workers=%d %s: follow-up score differs", workers, name)
			}
		}
		sess.Close()
	}
}

// TestMinerPreCancelled: a context cancelled before the call returns
// immediately with an empty table and context.Canceled.
func TestMinerPreCancelled(t *testing.T) {
	d := plantedDataset(t, 42)
	cands := mustCandidates(t, d, 1, 0, Parallel(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, run := range minerRuns(&datasetWithCands{d: d, cands: cands}) {
		res, err := run(ctx, nil, ParallelOptions{})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", name, err)
		}
		if res.Table.Size() != 0 {
			t.Fatalf("%s: pre-cancelled run mined %d rules", name, res.Table.Size())
		}
	}
	if _, err := MineCandidates(ctx, d, 1, 0, ParallelOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MineCandidates: err = %v, want context.Canceled", err)
	}
	if _, _, err := MineCandidatesCapped(ctx, d, 1, 10, ParallelOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MineCandidatesCapped: err = %v, want context.Canceled", err)
	}
	if _, err := Apply(ctx, d, &Table{}, 0); !errors.Is(err, context.Canceled) {
		// An empty table applies in zero rows... the probe still fires
		// before the first row batch.
		t.Fatalf("Apply: err = %v, want context.Canceled", err)
	}
}

// countdownCtx is a context whose Err flips to Canceled after a fixed
// number of probes — a deterministic way to cut a run *inside* a search
// phase (between tasks or at an in-branch probe) rather than at an
// iteration boundary. Done/Deadline/Value delegate to the parent; the
// mining paths only consult Err.
type countdownCtx struct {
	context.Context
	probes atomic.Int64
	limit  int64
}

func (c *countdownCtx) Err() error {
	if c.probes.Add(1) > c.limit {
		return context.Canceled
	}
	return c.Context.Err()
}

// TestMinerCancellationMidPhase cuts each miner inside its search
// phases via a probe-countdown context: the run must return
// context.Canceled without wedging, for serial and parallel workers.
func TestMinerCancellationMidPhase(t *testing.T) {
	d := plantedDataset(t, 43)
	cands := mustCandidates(t, d, 1, 0, Parallel(1))
	for _, workers := range []int{1, 4} {
		sess := NewSession()
		par := ParallelOptions{Workers: workers, Session: sess}
		for name, run := range minerRuns(&datasetWithCands{d: d, cands: cands}) {
			ctx := &countdownCtx{Context: context.Background(), limit: 3}
			_, err := run(ctx, nil, par)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d %s: err = %v, want context.Canceled", workers, name, err)
			}
		}
		// Candidate mining through the same session's runtime.
		ctx := &countdownCtx{Context: context.Background(), limit: 1}
		if _, err := MineCandidates(ctx, d, 1, 0, par); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d candidates: err = %v, want context.Canceled", workers, err)
		}
		// The session is still usable after every mid-phase cut.
		if res := mustExact(t, d, ExactOptions{MaxRules: 1, ParallelOptions: par}); res.Table.Size() != 1 {
			t.Fatalf("workers=%d: session unusable after mid-phase cancellations", workers)
		}
		sess.Close()
	}
}

// TestOnIterationEarlyStop: returning false stops cleanly — partial
// table, nil error — for all three miners.
func TestOnIterationEarlyStop(t *testing.T) {
	d := twoPatternDataset(t, 44)
	cands := mustCandidates(t, d, 1, 0, Parallel(1))
	for name, run := range minerRuns(&datasetWithCands{d: d, cands: cands}) {
		ref, err := run(context.Background(), nil, Parallel(1))
		if err != nil {
			t.Fatal(err)
		}
		if ref.Table.Size() < 2 {
			t.Fatalf("%s: reference too small (%d rules)", name, ref.Table.Size())
		}
		res, err := run(context.Background(), func(it IterationStats) bool { return it.Iteration < 1+1 }, Parallel(1))
		if err != nil {
			t.Fatalf("%s: early stop must not error: %v", name, err)
		}
		if res.Table.Size() != 2 {
			t.Fatalf("%s: stopped after %d rules, want 2", name, res.Table.Size())
		}
		for i := range res.Table.Rules {
			if res.Table.Rules[i].Compare(ref.Table.Rules[i]) != 0 {
				t.Fatalf("%s: early-stopped rule %d differs from reference", name, i)
			}
		}
	}
}

// The hook also observes without stopping: returning true throughout
// must not change the result.
func TestOnIterationObserveOnly(t *testing.T) {
	d := plantedDataset(t, 45)
	cands := mustCandidates(t, d, 1, 0, Parallel(1))
	seen := 0
	res, err := MineSelect(context.Background(), d, cands, SelectOptions{K: 1,
		OnIteration: func(IterationStats) bool { seen++; return true }})
	if err != nil {
		t.Fatal(err)
	}
	if seen != res.Table.Size() {
		t.Fatalf("hook saw %d iterations, table has %d rules", seen, res.Table.Size())
	}
	ref := mustSelect(t, d, cands, SelectOptions{K: 1})
	if res.Table.Size() != ref.Table.Size() || res.State.Score() != ref.State.Score() {
		t.Fatal("observing hook changed the result")
	}
}
