// Package core implements the paper's primary contribution: translation
// rules and translation tables for Boolean two-view data (§3), the
// MDL-based score (§4), the incremental cover state with the exact gain
// computation and its bounds (§5.1), and the three TRANSLATOR search
// algorithms — EXACT (§5.2), SELECT(k) (§5.3) and GREEDY (§5.4).
package core

import (
	"fmt"

	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/mdl"
)

// Direction is the second column of a translation rule: →, ← or ↔.
type Direction int

const (
	// Forward is X → Y: X in the left view implies Y in the right view.
	Forward Direction = iota
	// Backward is X ← Y: Y in the right view implies X in the left view.
	Backward
	// Both is X ↔ Y: the rule applies in both directions.
	Both
)

// Directions lists all three directions in canonical order.
var Directions = [3]Direction{Forward, Backward, Both}

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Forward:
		return "->"
	case Backward:
		return "<-"
	case Both:
		return "<->"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// Bidirectional reports whether d is ↔.
func (d Direction) Bidirectional() bool { return d == Both }

// Rule is a translation rule X ◇ Y with X ⊆ I_L and Y ⊆ I_R, both
// non-empty (Definition 1).
type Rule struct {
	X   itemset.Itemset // over I_L
	Dir Direction
	Y   itemset.Itemset // over I_R
}

// Validate checks Definition 1 against a dataset's vocabularies.
func (r Rule) Validate(d *dataset.Dataset) error {
	if r.X.Empty() || r.Y.Empty() {
		return fmt.Errorf("core: rule %v has an empty side", r)
	}
	if !r.X.IsCanonical() || !r.Y.IsCanonical() {
		return fmt.Errorf("core: rule %v has non-canonical itemsets", r)
	}
	if r.X[len(r.X)-1] >= d.Items(dataset.Left) || r.X[0] < 0 {
		return fmt.Errorf("core: rule %v: X outside I_L", r)
	}
	if r.Y[len(r.Y)-1] >= d.Items(dataset.Right) || r.Y[0] < 0 {
		return fmt.Errorf("core: rule %v: Y outside I_R", r)
	}
	if r.Dir != Forward && r.Dir != Backward && r.Dir != Both {
		return fmt.Errorf("core: rule %v: invalid direction", r)
	}
	return nil
}

// AppliesTo reports whether the rule fires when translating from view
// `from`: → and ↔ fire from the left, ← and ↔ from the right.
func (r Rule) AppliesTo(from dataset.View) bool {
	if from == dataset.Left {
		return r.Dir == Forward || r.Dir == Both
	}
	return r.Dir == Backward || r.Dir == Both
}

// Antecedent returns the side of the rule matched against view `from`.
func (r Rule) Antecedent(from dataset.View) itemset.Itemset {
	if from == dataset.Left {
		return r.X
	}
	return r.Y
}

// Consequent returns the side of the rule added to the opposite view.
func (r Rule) Consequent(from dataset.View) itemset.Itemset {
	if from == dataset.Left {
		return r.Y
	}
	return r.X
}

// Len returns L(X ◇ Y) in bits under the given coder (§4.1).
func (r Rule) Len(c *mdl.Coder) float64 {
	return c.RuleLen(r.X, r.Y, r.Dir.Bidirectional())
}

// Compare provides the deterministic total order used for tie-breaking:
// by X, then Y (length-lexicographic), then direction.
func (r Rule) Compare(o Rule) int {
	if c := itemset.Compare(r.X, o.X); c != 0 {
		return c
	}
	if c := itemset.Compare(r.Y, o.Y); c != 0 {
		return c
	}
	return int(r.Dir) - int(o.Dir)
}

// String renders the rule with item ids.
func (r Rule) String() string {
	return fmt.Sprintf("%v %v %v", r.X, r.Dir, r.Y)
}

// Format renders the rule with item names from the dataset.
func (r Rule) Format(d *dataset.Dataset) string {
	return fmt.Sprintf("{%s} %v {%s}",
		r.X.Format(d.Names(dataset.Left)), r.Dir, r.Y.Format(d.Names(dataset.Right)))
}

// Table is a translation table: an (unordered) collection of translation
// rules (Definition 2). Rule order never influences translation (§3).
type Table struct {
	Rules []Rule
}

// Len returns L(T), the encoded length of the table (§4.1).
func (t *Table) Len(c *mdl.Coder) float64 {
	total := 0.0
	for _, r := range t.Rules {
		total += r.Len(c)
	}
	return total
}

// Size returns |T|, the number of rules.
func (t *Table) Size() int { return len(t.Rules) }

// AvgRuleItems returns the average number of items per rule (|X|+|Y|),
// the "l" column of Table 3.
func (t *Table) AvgRuleItems() float64 {
	if len(t.Rules) == 0 {
		return 0
	}
	total := 0
	for _, r := range t.Rules {
		total += len(r.X) + len(r.Y)
	}
	return float64(total) / float64(len(t.Rules))
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := &Table{Rules: make([]Rule, len(t.Rules))}
	for i, r := range t.Rules {
		c.Rules[i] = Rule{X: r.X.Clone(), Dir: r.Dir, Y: r.Y.Clone()}
	}
	return c
}

// Validate checks every rule in the table.
func (t *Table) Validate(d *dataset.Dataset) error {
	for i, r := range t.Rules {
		if err := r.Validate(d); err != nil {
			return fmt.Errorf("rule %d: %w", i, err)
		}
	}
	return nil
}
