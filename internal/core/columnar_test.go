package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"twoview/internal/bitset"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/mdl"
)

// This file pins the columnar cover state (ucol/ecol + fused popcount
// kernels) to a row-wise reference, in the spirit of
// eclat/reference_test.go: refGainDir walks the support
// transaction-by-transaction and probes the *row* mirror bit-by-bit —
// the pre-columnar evaluation strategy — and accumulates per-item
// integer counts. Counting in integers makes the per-item tallies
// exact, and the reference combines them with the identical
// floating-point expression as the columnar kernel, so the property
// tests can demand agreement to the last bit (==, no tolerance) on
// random datasets and random partially-applied tables.

// refGainDir is the row-wise reference for State.gainDir.
func refGainDir(s *State, from dataset.View, tids *bitset.Set, cons itemset.Itemset) float64 {
	target := from.Opposite()
	d := s.Dataset()
	gain := 0.0
	for _, y := range cons {
		covered, errs := 0, 0
		tids.ForEach(func(t int) bool {
			switch {
			case s.Uncovered(target, t).Contains(y):
				covered++
			case !d.Row(target, t).Contains(y) && !s.Errors(target, t).Contains(y):
				errs++
			}
			return true
		})
		if covered == errs {
			continue
		}
		gain += s.Coder().ItemLen(target, y) * float64(covered-errs)
	}
	return gain
}

// refGainWithTids is the row-wise reference for State.GainWithTids.
func refGainWithTids(s *State, r Rule, tidX, tidY *bitset.Set) float64 {
	gain := 0.0
	if r.AppliesTo(dataset.Left) {
		gain += refGainDir(s, dataset.Left, tidX, r.Y)
	}
	if r.AppliesTo(dataset.Right) {
		gain += refGainDir(s, dataset.Right, tidY, r.X)
	}
	return gain - r.Len(s.Coder())
}

// refSumTub is the closure-based walk State.SumTub replaced.
func refSumTub(s *State, target dataset.View, tids *bitset.Set) float64 {
	total := 0.0
	tids.ForEach(func(t int) bool {
		total += s.Tub(target, t)
		return true
	})
	return total
}

// refRub is Rub on top of refSumTub.
func refRub(s *State, x, y itemset.Itemset, tidX, tidY *bitset.Set) float64 {
	return refSumTub(s, dataset.Right, tidX) + refSumTub(s, dataset.Left, tidY) -
		s.Coder().RuleLen(x, y, true)
}

// columnsMatchRowTranspose checks ucol/ecol against a fresh transpose of
// the row mirror: ucol[v][i] must be exactly {t : i ∈ u[v][t]}.
func columnsMatchRowTranspose(t *testing.T, s *State, ctx string) {
	t.Helper()
	d := s.Dataset()
	for _, v := range []dataset.View{dataset.Left, dataset.Right} {
		for i := 0; i < d.Items(v); i++ {
			wantU := bitset.New(d.Size())
			wantE := bitset.New(d.Size())
			for tr := 0; tr < d.Size(); tr++ {
				if s.Uncovered(v, tr).Contains(i) {
					wantU.Add(tr)
				}
				if s.Errors(v, tr).Contains(i) {
					wantE.Add(tr)
				}
			}
			if !s.UncoveredCol(v, i).Equal(wantU) {
				t.Fatalf("%s: ucol[%v][%d] = %v, transpose %v", ctx, v, i, s.UncoveredCol(v, i), wantU)
			}
			if !s.ErrorsCol(v, i).Equal(wantE) {
				t.Fatalf("%s: ecol[%v][%d] = %v, transpose %v", ctx, v, i, s.ErrorsCol(v, i), wantE)
			}
		}
	}
}

// randomProbeRule builds a rule from random (possibly overlapping,
// possibly low-support) itemsets, to probe states off the mined path.
func randomProbeRule(r *rand.Rand, d *dataset.Dataset) Rule {
	x := itemset.New(r.Intn(d.Items(dataset.Left)))
	if r.Intn(2) == 0 {
		x = x.Union(itemset.New(r.Intn(d.Items(dataset.Left))))
	}
	y := itemset.New(r.Intn(d.Items(dataset.Right)))
	if r.Intn(2) == 0 {
		y = y.Union(itemset.New(r.Intn(d.Items(dataset.Right))))
	}
	return Rule{X: x, Dir: Direction(r.Intn(3)), Y: y}
}

// The central row-vs-column property: on random datasets and random
// partially-applied tables, Gain/GainWithTids/Rub/SumTub computed through
// the columnar mirror equal the row-wise reference bit for bit — before
// any rule, between any two rules, and after all of them.
func TestQuickColumnarMatchesRowReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d, tab := randomDataAndTable(r)
		s := NewState(d, mdl.NewCoder(d))
		step := -1
		check := func() bool {
			step++
			// Probe rules: a few random ones plus every table rule.
			probes := append([]Rule(nil), tab.Rules...)
			for k := 0; k < 4; k++ {
				probes = append(probes, randomProbeRule(r, d))
			}
			for _, probe := range probes {
				tidX := d.SupportSet(dataset.Left, probe.X)
				tidY := d.SupportSet(dataset.Right, probe.Y)
				if s.GainWithTids(probe, tidX, tidY) != refGainWithTids(s, probe, tidX, tidY) {
					t.Logf("seed %d step %d: GainWithTids differs for %v", seed, step, probe)
					return false
				}
				if s.Gain(probe) != refGainWithTids(s, probe, tidX, tidY) {
					t.Logf("seed %d step %d: Gain differs for %v", seed, step, probe)
					return false
				}
				if s.Rub(probe.X, probe.Y, tidX, tidY) != refRub(s, probe.X, probe.Y, tidX, tidY) {
					t.Logf("seed %d step %d: Rub differs for %v", seed, step, probe)
					return false
				}
				for _, v := range []dataset.View{dataset.Left, dataset.Right} {
					if s.SumTub(v, tidX) != refSumTub(s, v, tidX) {
						t.Logf("seed %d step %d: SumTub differs", seed, step)
						return false
					}
				}
			}
			return true
		}
		if !check() {
			return false
		}
		for _, rule := range tab.Rules {
			s.AddRule(rule)
			if !check() {
				return false
			}
		}
		columnsMatchRowTranspose(t, s, "after replay")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// All three miners must produce bit-identical gains, rules and final
// tables for workers ∈ {1, 2, 4, 7} on random datasets, and their final
// states' columnar mirrors must match the row transpose. Run under
// -race this also exercises the concurrent columnar reads.
func TestMinersColumnarBitIdenticalAcrossWorkers(t *testing.T) {
	workerSets := []int{1, 2, 4, 7}
	for _, seed := range []int64{3, 17, 41} {
		d := plantedDataset(t, seed)
		cands, err := MineCandidates(context.Background(), d, 1, 0, Parallel(1))
		if err != nil {
			t.Fatal(err)
		}
		type miner struct {
			name string
			run  func(workers int) *Result
		}
		miners := []miner{
			{"exact", func(w int) *Result {
				return mustExact(t, d, ExactOptions{ParallelOptions: Parallel(w)})
			}},
			{"select", func(w int) *Result {
				return mustSelect(t, d, cands, SelectOptions{K: 25, ParallelOptions: Parallel(w)})
			}},
			{"greedy", func(w int) *Result {
				return mustGreedy(t, d, cands, GreedyOptions{ParallelOptions: Parallel(w)})
			}},
		}
		for _, m := range miners {
			base := m.run(1)
			if base.Table.Size() == 0 {
				t.Fatalf("%s seed %d: mined nothing", m.name, seed)
			}
			columnsMatchRowTranspose(t, base.State, m.name+" serial")
			// The final state must replay to the same gains the miner saw.
			replay := NewState(d, mdl.NewCoder(d))
			for i, rule := range base.Table.Rules {
				tidX := d.SupportSet(dataset.Left, rule.X)
				tidY := d.SupportSet(dataset.Right, rule.Y)
				if g := refGainWithTids(replay, rule, tidX, tidY); g != base.Iterations[i].Gain {
					t.Fatalf("%s seed %d: rule %d recorded gain %v, row-wise replay %v",
						m.name, seed, i, base.Iterations[i].Gain, g)
				}
				replay.AddRule(rule)
			}
			for _, w := range workerSets[1:] {
				got := m.run(w)
				if got.Table.Size() != base.Table.Size() {
					t.Fatalf("%s seed %d workers %d: %d rules, serial %d",
						m.name, seed, w, got.Table.Size(), base.Table.Size())
				}
				for i := range base.Table.Rules {
					if got.Table.Rules[i].Compare(base.Table.Rules[i]) != 0 {
						t.Fatalf("%s seed %d workers %d: rule %d differs", m.name, seed, w, i)
					}
					if got.Iterations[i].Gain != base.Iterations[i].Gain {
						t.Fatalf("%s seed %d workers %d: gain %d differs", m.name, seed, w, i)
					}
				}
				if got.State.Score() != base.State.Score() {
					t.Fatalf("%s seed %d workers %d: score differs", m.name, seed, w)
				}
				columnsMatchRowTranspose(t, got.State, m.name+" parallel")
			}
		}
	}
}
