package core

import (
	"context"
	"fmt"
	"testing"

	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/mdl"
)

// Micro-benchmarks of the hot core operations: gain evaluation, rule
// application, and one exact best-rule search.

func benchState(b *testing.B) (*State, *dataset.Dataset) {
	b.Helper()
	d := plantedDataset(b, 77)
	return NewState(d, mdl.NewCoder(d)), d
}

func BenchmarkGain(b *testing.B) {
	s, _ := benchState(b)
	r := Rule{X: itemset.New(0, 1), Dir: Both, Y: itemset.New(0, 1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Gain(r)
	}
}

func BenchmarkGainWithTids(b *testing.B) {
	s, d := benchState(b)
	r := Rule{X: itemset.New(0, 1), Dir: Both, Y: itemset.New(0, 1)}
	tidX := d.SupportSet(dataset.Left, r.X)
	tidY := d.SupportSet(dataset.Right, r.Y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.GainWithTids(r, tidX, tidY)
	}
}

func BenchmarkAddRule(b *testing.B) {
	d := plantedDataset(b, 78)
	coder := mdl.NewCoder(d)
	r := Rule{X: itemset.New(0, 1), Dir: Both, Y: itemset.New(0, 1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewState(d, coder)
		s.AddRule(r)
	}
}

func BenchmarkBestRule(b *testing.B) {
	s, _ := benchState(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := bestRule(s, ExactOptions{}); !ok {
			b.Fatal("no rule found")
		}
	}
}

// BenchmarkMineExact measures full exact mining end to end; allocs/op
// tracks the scratch reuse of the DFS (itemset extension and per-depth
// tidsets), and serial vs parallel the worker-pool overhead/speedup.
func BenchmarkMineExact(b *testing.B) {
	d := plantedDataset(b, 77)
	for _, bench := range []struct {
		name string
		opt  ExactOptions
	}{
		{"serial", ExactOptions{ParallelOptions: Parallel(1)}},
		{"parallel", ExactOptions{}},
		{"serial-nobounds", ExactOptions{DisableRub: true, DisableQub: true, ParallelOptions: Parallel(1)}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if res := mustExact(b, d, bench.opt); res.Table.Size() == 0 {
					b.Fatal("no rules")
				}
			}
		})
	}
}

// BenchmarkMineSelect measures full SELECT mining (scoring + re-check
// rounds) serial vs parallel over a realistic candidate set. The k1
// variants force one accepted rule per round — the many-cheap-rounds
// shape that stresses the per-phase overhead of the persistent pool.
func BenchmarkMineSelect(b *testing.B) {
	d := plantedDataset(b, 77)
	cands, err := MineCandidates(context.Background(), d, 1, 0, Parallel(1))
	if err != nil {
		b.Fatal(err)
	}
	for _, bench := range []struct {
		name string
		opt  SelectOptions
	}{
		{"serial", SelectOptions{K: 25, ParallelOptions: Parallel(1)}},
		{"parallel", SelectOptions{K: 25}},
		{"serial-k1", SelectOptions{K: 1, ParallelOptions: Parallel(1)}},
		{"parallel-k1", SelectOptions{K: 1}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if res := mustSelect(b, d, cands, bench.opt); res.Table.Size() == 0 {
					b.Fatal("no rules")
				}
			}
		})
	}
}

// BenchmarkMineGreedy measures the single-pass filter serial vs the
// speculative block-parallel version.
func BenchmarkMineGreedy(b *testing.B) {
	d := plantedDataset(b, 77)
	cands, err := MineCandidates(context.Background(), d, 1, 0, Parallel(1))
	if err != nil {
		b.Fatal(err)
	}
	for _, bench := range []struct {
		name string
		opt  GreedyOptions
	}{
		{"serial", GreedyOptions{ParallelOptions: Parallel(1)}},
		{"parallel", GreedyOptions{}},
		// Block-size sweep for the speculation window (results are
		// identical; only waste-vs-granularity changes).
		{"parallel-block64", GreedyOptions{BlockSize: 64}},
		{"parallel-block2048", GreedyOptions{BlockSize: 2048}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if res := mustGreedy(b, d, cands, bench.opt); res.Table.Size() == 0 {
					b.Fatal("no rules")
				}
			}
		})
	}
}

// BenchmarkMineCandidates quantifies the parallel ECLAT walk (and the
// parallel tidset materialization) against the serial baseline.
func BenchmarkMineCandidates(b *testing.B) {
	d := plantedDataset(b, 77)
	for _, bench := range []struct {
		name string
		par  ParallelOptions
	}{
		{"serial", Parallel(1)},
		{"parallel", ParallelOptions{}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cands, err := MineCandidates(context.Background(), d, 1, 0, bench.par)
				if err != nil || len(cands) == 0 {
					b.Fatalf("candidates: %v (%d)", err, len(cands))
				}
			}
		})
	}
}

func BenchmarkTranslateRow(b *testing.B) {
	d := plantedDataset(b, 79)
	tab := &Table{Rules: []Rule{
		{X: itemset.New(0, 1), Dir: Both, Y: itemset.New(0, 1)},
		{X: itemset.New(2), Dir: Forward, Y: itemset.New(3)},
	}}
	row := d.Row(dataset.Left, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TranslateRow(d, tab, dataset.Left, row)
	}
}

// servingFixture mines a realistic table once; the serving benchmarks
// apply it many times.
func servingFixture(b *testing.B) (*dataset.Dataset, *Table) {
	b.Helper()
	d := plantedDataset(b, 81)
	cands := mustCandidates(b, d, 1, 0, Parallel(1))
	res := mustSelect(b, d, cands, SelectOptions{K: 25, ParallelOptions: Parallel(1)})
	if res.Table.Size() == 0 {
		b.Fatal("no rules to serve")
	}
	return d, res.Table
}

// BenchmarkApply measures the one-shot Apply path: table preparation
// (compilation) is paid on every call — the cost profile of the v1 API,
// which re-derived everything per call.
func BenchmarkApply(b *testing.B) {
	d, tab := servingFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Apply(context.Background(), d, tab, dataset.Left); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranslatorBatch measures the compiled batch translation:
// the Translator is compiled once outside the loop and each iteration
// runs TranslateBatch over the whole view, materializing the per-row
// translations — the "mine once, Apply many" steady state. Its ns/op
// against BenchmarkApply quantifies the amortized preparation; both
// enter cmd/benchreport's parsed set and the CI regression gate.
func BenchmarkTranslatorBatch(b *testing.B) {
	d, tab := servingFixture(b)
	tr, err := CompileTranslator(d, tab)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.TranslateBatch(context.Background(), d, dataset.Left); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranslatorSparseRow pins the generational counter reset of
// the counting matcher: a sparse 3-item row translated through tables
// of growing size. With the lazy generation tags the per-row cost is
// O(postings touched by the row) — near-constant across the rules axis
// — where the old clear(counts[:|T|]) made it grow linearly with the
// table. A regression that reintroduces an O(|T|) per-row term shows up
// as rules=4096 drifting to a multiple of rules=128.
func BenchmarkTranslatorSparseRow(b *testing.B) {
	const items = 256
	d := dataset.MustNew(dataset.GenericNames("l", items), dataset.GenericNames("r", items))
	for _, nRules := range []int{128, 1024, 4096} {
		tab := &Table{}
		for k := 0; k < nRules; k++ {
			// Two-item antecedents spread over the vocabulary; only the
			// postings of items {0,1,2} overlap the benchmarked row.
			a, c := k%items, (k*7+1)%items
			if a == c {
				c = (c + 1) % items
			}
			tab.Rules = append(tab.Rules, Rule{
				X: itemset.New(a, c), Dir: Forward, Y: itemset.New(k % items),
			})
		}
		tr, err := CompileTranslator(d, tab)
		if err != nil {
			b.Fatal(err)
		}
		row, err := tr.NewRow(dataset.Left, []int{0, 1, 2})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("rules=%d", nRules), func(b *testing.B) {
			var dst []int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = tr.TranslateInto(dst[:0], dataset.Left, row)
			}
		})
	}
}

// BenchmarkTranslatorApply measures the compiled report path (the
// counting matcher plus fused correction counts, nothing
// materialized): the pure serving cost of one Apply pass once
// compilation is amortized away.
func BenchmarkTranslatorApply(b *testing.B) {
	d, tab := servingFixture(b)
	tr, err := CompileTranslator(d, tab)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Apply(context.Background(), d, dataset.Left); err != nil {
			b.Fatal(err)
		}
	}
}
