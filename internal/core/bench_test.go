package core

import (
	"testing"

	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/mdl"
)

// Micro-benchmarks of the hot core operations: gain evaluation, rule
// application, and one exact best-rule search.

func benchState(b *testing.B) (*State, *dataset.Dataset) {
	b.Helper()
	d := plantedDataset(b, 77)
	return NewState(d, mdl.NewCoder(d)), d
}

func BenchmarkGain(b *testing.B) {
	s, _ := benchState(b)
	r := Rule{X: itemset.New(0, 1), Dir: Both, Y: itemset.New(0, 1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Gain(r)
	}
}

func BenchmarkGainWithTids(b *testing.B) {
	s, d := benchState(b)
	r := Rule{X: itemset.New(0, 1), Dir: Both, Y: itemset.New(0, 1)}
	tidX := d.SupportSet(dataset.Left, r.X)
	tidY := d.SupportSet(dataset.Right, r.Y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.GainWithTids(r, tidX, tidY)
	}
}

func BenchmarkAddRule(b *testing.B) {
	d := plantedDataset(b, 78)
	coder := mdl.NewCoder(d)
	r := Rule{X: itemset.New(0, 1), Dir: Both, Y: itemset.New(0, 1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewState(d, coder)
		s.AddRule(r)
	}
}

func BenchmarkBestRule(b *testing.B) {
	s, _ := benchState(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := bestRule(s, ExactOptions{}); !ok {
			b.Fatal("no rule found")
		}
	}
}

// BenchmarkMineExact measures full exact mining end to end; allocs/op
// tracks the scratch reuse of the DFS (itemset extension and per-depth
// tidsets), and serial vs parallel the worker-pool overhead/speedup.
func BenchmarkMineExact(b *testing.B) {
	d := plantedDataset(b, 77)
	for _, bench := range []struct {
		name string
		opt  ExactOptions
	}{
		{"serial", ExactOptions{Workers: 1}},
		{"parallel", ExactOptions{}},
		{"serial-nobounds", ExactOptions{Workers: 1, DisableRub: true, DisableQub: true}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if res := MineExact(d, bench.opt); res.Table.Size() == 0 {
					b.Fatal("no rules")
				}
			}
		})
	}
}

func BenchmarkTranslateRow(b *testing.B) {
	d := plantedDataset(b, 79)
	tab := &Table{Rules: []Rule{
		{X: itemset.New(0, 1), Dir: Both, Y: itemset.New(0, 1)},
		{X: itemset.New(2), Dir: Forward, Y: itemset.New(3)},
	}}
	row := d.Row(dataset.Left, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TranslateRow(d, tab, dataset.Left, row)
	}
}
