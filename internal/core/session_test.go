package core

import (
	"context"
	"testing"
)

// A whole mining session on one private Session must produce the same
// results as the shared default runtime, for any worker count, and the
// Session must survive candidate mining plus all three miners
// back-to-back (many phases on the same parked workers).
func TestSessionEndToEnd(t *testing.T) {
	d := plantedDataset(t, 31)
	ref, err := MineCandidates(context.Background(), d, 1, 0, Parallel(1))
	if err != nil {
		t.Fatal(err)
	}
	refSel := mustSelect(t, d, ref, SelectOptions{K: 25, ParallelOptions: Parallel(1)})
	refGr := mustGreedy(t, d, ref, GreedyOptions{ParallelOptions: Parallel(1)})
	refEx := mustExact(t, d, ExactOptions{MaxRules: 3, ParallelOptions: Parallel(1)})

	for _, workers := range []int{1, 2, 4, 7} {
		sess := NewSession()
		par := ParallelOptions{Workers: workers, Session: sess}

		cands, err := MineCandidates(context.Background(), d, 1, 0, par)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) != len(ref) {
			t.Fatalf("workers=%d: %d candidates, want %d", workers, len(cands), len(ref))
		}
		for i := range ref {
			if !cands[i].X.Equal(ref[i].X) || !cands[i].Y.Equal(ref[i].Y) ||
				cands[i].Supp != ref[i].Supp ||
				!cands[i].TidX.Equal(ref[i].TidX) || !cands[i].TidY.Equal(ref[i].TidY) {
				t.Fatalf("workers=%d: candidate %d differs", workers, i)
			}
		}

		sel := mustSelect(t, d, cands, SelectOptions{K: 25, ParallelOptions: par})
		gr := mustGreedy(t, d, cands, GreedyOptions{ParallelOptions: par})
		ex := mustExact(t, d, ExactOptions{MaxRules: 3, ParallelOptions: par})
		sess.Close()

		for _, cmp := range []struct {
			name      string
			got, want *Result
		}{
			{"select", sel, refSel}, {"greedy", gr, refGr}, {"exact", ex, refEx},
		} {
			if cmp.got.Table.Size() != cmp.want.Table.Size() {
				t.Fatalf("workers=%d %s: %d rules, want %d",
					workers, cmp.name, cmp.got.Table.Size(), cmp.want.Table.Size())
			}
			for i := range cmp.want.Table.Rules {
				if cmp.got.Table.Rules[i].Compare(cmp.want.Table.Rules[i]) != 0 {
					t.Fatalf("workers=%d %s: rule %d differs", workers, cmp.name, i)
				}
			}
			if cmp.got.State.Score() != cmp.want.State.Score() {
				t.Fatalf("workers=%d %s: score differs", workers, cmp.name)
			}
		}
	}
}

// Close on a nil Session is a no-op, and nil Sessions fall back to the
// shared runtime.
func TestSessionNil(t *testing.T) {
	var s *Session
	s.Close()
	if s.runtime() == nil {
		t.Fatal("nil session must resolve to the default runtime")
	}
}

// BlockSize only tunes the speculation window; results are identical
// for any value, including sub-minimum and giant windows.
func TestMineGreedyBlockSizes(t *testing.T) {
	d := plantedDataset(t, 35)
	cands, err := MineCandidates(context.Background(), d, 1, 0, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref := mustGreedy(t, d, cands, GreedyOptions{ParallelOptions: Parallel(1)})
	for _, bs := range []int{1, 4, 8, 64, 512, 1 << 20} {
		for _, workers := range []int{1, 4} {
			got := mustGreedy(t, d, cands, GreedyOptions{BlockSize: bs, ParallelOptions: Parallel(workers)})
			if got.Table.Size() != ref.Table.Size() {
				t.Fatalf("block=%d workers=%d: %d rules, want %d",
					bs, workers, got.Table.Size(), ref.Table.Size())
			}
			for i := range ref.Table.Rules {
				if got.Table.Rules[i].Compare(ref.Table.Rules[i]) != 0 {
					t.Fatalf("block=%d workers=%d: rule %d differs", bs, workers, i)
				}
			}
			if got.State.Score() != ref.State.Score() {
				t.Fatalf("block=%d workers=%d: score differs", bs, workers)
			}
		}
	}
}
