package core

import (
	"testing"

	"twoview/internal/bitset"
	"twoview/internal/dataset"
	"twoview/internal/mdl"
)

// splitRange partitions [0, m) into n ascending contiguous ranges, the
// same balanced split internal/shard uses.
func splitRange(m, n, p int) (lo, hi int) {
	return p * m / n, (p + 1) * m / n
}

// partitionAll builds the n PartialStates covering both item alphabets.
func partitionAll(d *dataset.Dataset, n int) []*PartialState {
	parts := make([]*PartialState, n)
	for p := 0; p < n; p++ {
		loL, hiL := splitRange(d.Items(dataset.Left), n, p)
		loR, hiR := splitRange(d.Items(dataset.Right), n, p)
		parts[p] = NewPartialState(d, loL, hiL, loR, hiR)
	}
	return parts
}

// TestPartialStateMirrorsState drives a realistic rule sequence through
// a monolithic State and, in parallel, through every partition count in
// the acceptance grid, checking after every rule that
//
//   - the merged ScoreDir counts reproduce gainDir's floats exactly,
//   - CoverTotals reproduces the scalar summaries exactly,
//   - TubMirror (fed by the apply covered tidsets) reproduces tub
//     exactly, and
//   - the partitions' columns equal the owned slices of the State's.
func TestPartialStateMirrorsState(t *testing.T) {
	d := plantedDataset(t, 101)
	coder := mdl.NewCoder(d)
	// A realistic rule log: whatever SELECT mines, which exercises
	// covered and error updates across both views.
	cands := mustCandidates(t, d, 5, 0, ParallelOptions{Workers: 1})
	table := mustSelect(t, d, cands, SelectOptions{K: 3}).Table
	if len(table.Rules) == 0 {
		t.Fatal("planted dataset mined no rules; test is vacuous")
	}

	for _, shards := range []int{1, 2, 3, 4, 7} {
		s := NewState(d, coder)
		parts := partitionAll(d, shards)
		totals := NewCoverTotals(d, coder)
		tubm := NewTubMirror(d, coder)

		if totals.UOnes != [2]int{s.uOnes[0], s.uOnes[1]} || totals.CorrLen != s.corrLen {
			t.Fatalf("shards=%d: initial totals diverge: %+v vs %v/%v", shards, totals, s.uOnes, s.corrLen)
		}

		for ri, r := range table.Rules {
			// Scoring parity before the rule is applied.
			tidX := d.SupportSet(dataset.Left, r.X)
			tidY := d.SupportSet(dataset.Right, r.Y)
			var fwdParts, backParts [][]ItemCount
			for _, ps := range parts {
				fwdParts = append(fwdParts, ps.ScoreDir(dataset.Right, tidX, r.Y, nil))
				backParts = append(backParts, ps.ScoreDir(dataset.Left, tidY, r.X, nil))
			}
			if got, want := GainFromCounts(coder, dataset.Right, fwdParts...), s.gainDir(dataset.Left, tidX, r.Y); got != want {
				t.Fatalf("shards=%d rule %d: fwd gain %v != gainDir %v", shards, ri, got, want)
			}
			if got, want := GainFromCounts(coder, dataset.Left, backParts...), s.gainDir(dataset.Right, tidY, r.X); got != want {
				t.Fatalf("shards=%d rule %d: back gain %v != gainDir %v", shards, ri, got, want)
			}

			// Apply through both paths.
			fwdParts, backParts = fwdParts[:0], backParts[:0]
			for _, ps := range parts {
				pc := ps.Apply(r, nil, nil, func(target dataset.View, item int, covered *bitset.Set) {
					tubm.ApplyItem(target, item, covered)
				})
				fwdParts = append(fwdParts, pc.Fwd)
				backParts = append(backParts, pc.Back)
			}
			totals.Apply(r, fwdParts, backParts)
			s.AddRule(r)

			if totals.UOnes != s.uOnes || totals.EOnes != s.eOnes || totals.CorrLen != s.corrLen {
				t.Fatalf("shards=%d rule %d: totals diverge:\n got %+v\nwant %v %v %v",
					shards, ri, totals, s.uOnes, s.eOnes, s.corrLen)
			}
			sub := &Table{Rules: table.Rules[:ri+1]}
			if got, want := totals.Score(sub), s.Score(); got != want {
				t.Fatalf("shards=%d rule %d: score %v != %v", shards, ri, got, want)
			}
			for _, v := range []dataset.View{dataset.Left, dataset.Right} {
				for tr := 0; tr < d.Size(); tr++ {
					if got, want := tubm.tub[v][tr], s.tub[v][tr]; got != want {
						t.Fatalf("shards=%d rule %d: tub[%v][%d] %v != %v", shards, ri, v, tr, got, want)
					}
				}
			}
		}

		// Column parity and replay determinism after the full log.
		for p, ps := range parts {
			replayed := NewPartialState(d,
				ps.lo[dataset.Left], ps.hi[dataset.Left],
				ps.lo[dataset.Right], ps.hi[dataset.Right])
			replayed.Replay(table.Rules, nil)
			for _, v := range []dataset.View{dataset.Left, dataset.Right} {
				lo, hi := ps.Range(v)
				for i := lo; i < hi; i++ {
					if !ps.UncoveredCol(v, i).Equal(s.UncoveredCol(v, i)) ||
						!ps.ErrorsCol(v, i).Equal(s.ErrorsCol(v, i)) {
						t.Fatalf("shards=%d part %d: columns diverge at view %v item %d", shards, p, v, i)
					}
					if !replayed.UncoveredCol(v, i).Equal(ps.UncoveredCol(v, i)) ||
						!replayed.ErrorsCol(v, i).Equal(ps.ErrorsCol(v, i)) {
						t.Fatalf("shards=%d part %d: replay diverges at view %v item %d", shards, p, v, i)
					}
				}
			}
		}
	}
}

// TestPartialStateScoreRuleMatchesScoreDir pins the convenience wrapper
// (which computes supports itself when none are passed) to the explicit
// path.
func TestPartialStateScoreRuleMatchesScoreDir(t *testing.T) {
	d := plantedDataset(t, 102)
	cands := mustCandidates(t, d, 5, 0, ParallelOptions{Workers: 1})
	ps := NewPartialState(d, 0, d.Items(dataset.Left), 0, d.Items(dataset.Right))
	for ci := range cands {
		c := &cands[ci]
		cached := ps.ScoreRule(c.X, c.Y, c.TidX, c.TidY, nil, nil)
		fresh := ps.ScoreRule(c.X, c.Y, nil, nil, nil, nil)
		if len(cached.Fwd) != len(fresh.Fwd) || len(cached.Back) != len(fresh.Back) {
			t.Fatalf("cand %d: count lengths diverge", ci)
		}
		for i := range cached.Fwd {
			if cached.Fwd[i] != fresh.Fwd[i] {
				t.Fatalf("cand %d fwd[%d]: %+v != %+v", ci, i, cached.Fwd[i], fresh.Fwd[i])
			}
		}
		for i := range cached.Back {
			if cached.Back[i] != fresh.Back[i] {
				t.Fatalf("cand %d back[%d]: %+v != %+v", ci, i, cached.Back[i], fresh.Back[i])
			}
		}
	}
}
