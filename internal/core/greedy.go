package core

import (
	"sort"
	"time"

	"twoview/internal/dataset"
	"twoview/internal/mdl"
)

// This file implements TRANSLATOR-GREEDY (§5.4): single-pass filtering in
// the style of KRIMP. Candidates are ordered descending first by length
// and then by support; each candidate is considered exactly once, the best
// of its three rule instantiations is added if its gain is strictly
// positive, and discarded candidates are never revisited.

// GreedyOptions configures MineGreedy.
type GreedyOptions struct {
	// MaxRules stops after this many rules; 0 means no limit.
	MaxRules int
	// Trace observes each added rule.
	Trace TraceFunc
}

// MineGreedy runs TRANSLATOR-GREEDY over the given candidates.
func MineGreedy(d *dataset.Dataset, cands []Candidate, opt GreedyOptions) *Result {
	start := time.Now()
	coder := mdl.NewCoder(d)
	s := NewState(d, coder)
	res := &Result{State: s}

	// Order: length desc, then support desc, then deterministic.
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := &cands[order[a]], &cands[order[b]]
		la, lb := len(ca.X)+len(ca.Y), len(cb.X)+len(cb.Y)
		if la != lb {
			return la > lb
		}
		if ca.Supp != cb.Supp {
			return ca.Supp > cb.Supp
		}
		ra := Rule{X: ca.X, Y: ca.Y}
		rb := Rule{X: cb.X, Y: cb.Y}
		return ra.Compare(rb) < 0
	})

	for _, ci := range order {
		if opt.MaxRules > 0 && len(s.table.Rules) >= opt.MaxRules {
			break
		}
		c := &cands[ci]
		if s.Qub(c.X, c.Y, c.TidX.Count(), c.TidY.Count()) <= gainEpsilon {
			continue
		}
		gainF := s.gainDir(dataset.Left, c.TidX, c.Y)
		gainB := s.gainDir(dataset.Right, c.TidY, c.X)
		lenUni := coder.RuleLen(c.X, c.Y, false)
		lenBi := coder.RuleLen(c.X, c.Y, true)

		best := Rule{X: c.X, Dir: Forward, Y: c.Y}
		bestGain := gainF - lenUni
		if g := gainB - lenUni; g > bestGain {
			best, bestGain = Rule{X: c.X, Dir: Backward, Y: c.Y}, g
		}
		if g := gainF + gainB - lenBi; g > bestGain {
			best, bestGain = Rule{X: c.X, Dir: Both, Y: c.Y}, g
		}
		if bestGain <= gainEpsilon {
			continue // discarded and never considered again
		}
		s.AddRule(best)
		res.record(s, best, bestGain, opt.Trace)
	}
	res.Table = s.Table()
	res.Runtime = time.Since(start)
	return res
}
