package core

import (
	"context"
	"slices"

	"twoview/internal/dataset"
	"twoview/internal/mdl"
	"twoview/internal/pool"
)

// This file implements TRANSLATOR-GREEDY (§5.4): single-pass filtering in
// the style of KRIMP. Candidates are ordered descending first by length
// and then by support; each candidate is considered exactly once, the best
// of its three rule instantiations is added if its gain is strictly
// positive, and discarded candidates are never revisited.
//
// The pass is sequential by definition — every accepted rule changes the
// state all later candidates are scored against — so it parallelizes by
// speculation: candidates are scored against the current state in blocks
// on the internal/pool worker pool, the block is walked serially, and on
// the first accepted rule the not-yet-walked remainder of the block is
// discarded and re-scored against the updated state. Every decision is
// therefore made against exactly the state the serial pass would have
// used, and since most candidates are rejected (their state-dependent
// scores untouched by the rare accepts), most speculative work is kept.

// GreedyOptions configures MineGreedy.
type GreedyOptions struct {
	// MaxRules stops after this many rules; 0 means no limit.
	MaxRules int
	// BlockSize caps the speculative scoring window: the number of
	// candidates scored ahead per pool phase grows geometrically from 8
	// up to this bound. 0 means the default of 512. The value trades
	// re-scored waste on accept against scheduling granularity; results
	// are identical for any value (window boundaries depend only on the
	// accept positions, which are schedule-independent).
	BlockSize int
	// Trace observes each added rule.
	Trace TraceFunc
	// OnIteration observes each added rule and may stop the run early by
	// returning false (the partial table is returned with a nil error).
	OnIteration IterationFunc
	// ParallelOptions sets the worker-pool size for speculative
	// candidate scoring; results are identical for any value.
	ParallelOptions
}

// The speculation window grows geometrically from greedyMinBlock to
// GreedyOptions.BlockSize (default greedyMaxBlock): each accepted rule
// invalidates the rest of its block, and accepts cluster at the head of
// the length/support-descending candidate order, so the window restarts
// small after every accept and doubles across accept-free blocks.
// Window boundaries depend only on the accept positions — which are
// schedule-independent — never on the worker count, so the scored
// values (and all decisions) are identical for any parallelism; the
// sizes only trade re-scored waste on accept against scheduling
// granularity.
const (
	greedyMinBlock = 8
	greedyMaxBlock = 512
)

// greedyCtxProbeMask gates the lazy serial walk's cancellation probe:
// one ctx.Err() call per 256 scored candidates.
const greedyCtxProbeMask = 1<<8 - 1

// greedyScore is one candidate's speculative evaluation: the best of its
// three rule instantiations, or ok=false when the candidate is discarded
// (qub hopeless or no strictly positive gain).
type greedyScore struct {
	rule Rule
	gain float64
	ok   bool
}

// MineGreedy runs TRANSLATOR-GREEDY over the given candidates.
//
// Cancelling ctx aborts the pass at the next checkpoint (a block
// boundary or a task boundary inside the speculative scoring phase) and
// returns the table mined so far alongside ctx.Err(). With an
// uncancelled context the result is bit-identical for every worker
// count and the error is nil.
func MineGreedy(ctx context.Context, d *dataset.Dataset, cands []Candidate, opt GreedyOptions) (*Result, error) {
	if m, err := shardEngine(opt.ParallelOptions); err != nil {
		return nil, err
	} else if m != nil {
		return m.MineGreedy(ctx, d, cands, opt)
	}
	elapsed := stopwatch()
	coder := mdl.NewCoder(d)
	s := NewState(d, coder)
	res := &Result{State: s}

	// Order: length desc, then support desc, then deterministic. The
	// order slice and the per-block score buffer come from the session's
	// scratch pool, so repeated greedy passes allocate nothing here.
	scr := opt.getScratch()
	if cap(scr.order) < len(cands) {
		scr.order = make([]int, len(cands))
	}
	order := scr.order[:len(cands)]
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		ca, cb := &cands[a], &cands[b]
		la, lb := len(ca.X)+len(ca.Y), len(cb.X)+len(cb.Y)
		if la != lb {
			return lb - la
		}
		if ca.Supp != cb.Supp {
			return cb.Supp - ca.Supp
		}
		ra := Rule{X: ca.X, Y: ca.Y}
		rb := Rule{X: cb.X, Y: cb.Y}
		return ra.Compare(rb)
	})

	// Speculation only pays when there are workers to keep busy: with a
	// single worker the lazy walk below scores each candidate exactly
	// once at its turn, which strictly dominates scoring ahead and
	// discarding on accept. Results are identical either way — every
	// decision is made against the same state in the same order.
	speculate := opt.workerCount(len(order)) > 1
	rt := opt.runtime()
	maxBlock := opt.BlockSize
	if maxBlock <= 0 {
		maxBlock = greedyMaxBlock
	}
	pos, block := 0, min(greedyMinBlock, maxBlock)
	var err error
	stopped := false
	for pos < len(order) && !stopped {
		if err = ctx.Err(); err != nil {
			break
		}
		if opt.MaxRules > 0 && len(s.table.Rules) >= opt.MaxRules {
			break
		}
		end := pos + block
		if end > len(order) {
			end = len(order)
		}
		// Speculatively score the block against the current state, into
		// the reused block buffer.
		var scores []greedyScore
		if speculate {
			if scr.scores, err = pool.MapOrderedIntoCtxOn(rt, ctx, scr.scores, opt.Workers, end-pos, func(i int) greedyScore {
				return scoreGreedyCandidate(s, &cands[order[pos+i]])
			}); err != nil {
				break
			}
			scores = scr.scores
		}
		// Serial walk: the first accepted rule invalidates the remaining
		// speculative scores (the state changed), so the walk restarts
		// right after it with a fresh, minimum-size block.
		next := end
		block = min(block*2, maxBlock)
		for j := pos; j < end; j++ {
			var sc greedyScore
			if speculate {
				sc = scores[j-pos]
			} else {
				// The lazy serial walk probes ctx at the granularity the
				// speculative path gets from its phase task boundaries;
				// BlockSize may be arbitrarily large, so the block loop
				// alone does not bound cancellation latency.
				if (j-pos)&greedyCtxProbeMask == greedyCtxProbeMask {
					if err = ctx.Err(); err != nil {
						break
					}
				}
				sc = scoreGreedyCandidate(s, &cands[order[j]])
			}
			if !sc.ok {
				continue // discarded and never considered again
			}
			s.AddRule(sc.rule)
			if !res.record(s, sc.rule, sc.gain, opt.Trace, opt.OnIteration) {
				stopped = true
			}
			next = j + 1
			block = min(greedyMinBlock, maxBlock)
			break
		}
		pos = next
	}
	opt.putScratch(scr)
	res.Table = s.Table()
	res.Runtime = elapsed()
	return res, err
}

// scoreGreedyCandidate evaluates one candidate against the current state:
// the single-pass filter's per-candidate body.
func scoreGreedyCandidate(s *State, c *Candidate) greedyScore {
	if s.Qub(c.X, c.Y, c.TidX.Count(), c.TidY.Count()) <= gainEpsilon {
		return greedyScore{}
	}
	gainF := s.gainDir(dataset.Left, c.TidX, c.Y)
	gainB := s.gainDir(dataset.Right, c.TidY, c.X)
	lenUni := s.coder.RuleLen(c.X, c.Y, false)
	lenBi := s.coder.RuleLen(c.X, c.Y, true)

	best := Rule{X: c.X, Dir: Forward, Y: c.Y}
	bestGain := gainF - lenUni
	if g := gainB - lenUni; g > bestGain {
		best, bestGain = Rule{X: c.X, Dir: Backward, Y: c.Y}, g
	}
	if g := gainF + gainB - lenBi; g > bestGain {
		best, bestGain = Rule{X: c.X, Dir: Both, Y: c.Y}, g
	}
	if bestGain <= gainEpsilon {
		return greedyScore{}
	}
	return greedyScore{rule: best, gain: bestGain, ok: true}
}
