package core

import (
	"sort"
	"time"

	"twoview/internal/bitset"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/mdl"
)

// This file implements TRANSLATOR-EXACT (Algorithm 2): starting from the
// empty table, iteratively add the rule with the globally maximal gain
// until no rule improves compression. The best rule is found by an
// ECLAT-style depth-first search over all pairs of itemsets occurring
// jointly in the data, with branch-and-bound pruning via the rule-based
// upper bound rub and evaluation skipping via the quick bound qub (§5.2).
//
// As the paper observes (§6.1), the bounds are highly effective in the
// first iterations and lose power once per-rule gains shrink, so exact
// search is "most attractive when one is only interested in few rules";
// MaxRules caps the iterations for that use.

// ExactOptions configures MineExact.
type ExactOptions struct {
	// MaxRules stops after this many rules; 0 means no limit (the
	// natural MDL stopping criterion applies either way).
	MaxRules int
	// Trace observes each added rule.
	Trace TraceFunc
	// DisableRub and DisableQub turn off the §5.2 pruning bounds. The
	// search then degenerates to exhaustive enumeration of occurring
	// pairs; results are identical. Used by the ablation benchmarks.
	DisableRub bool
	DisableQub bool
}

// MineExact runs TRANSLATOR-EXACT on d and returns the induced translation
// table. It is parameter-free (ExactOptions only bounds or observes it).
func MineExact(d *dataset.Dataset, opt ExactOptions) *Result {
	start := time.Now()
	coder := mdl.NewCoder(d)
	s := NewState(d, coder)
	res := &Result{State: s}
	for opt.MaxRules == 0 || len(s.table.Rules) < opt.MaxRules {
		r, gain, ok := bestRule(s, opt)
		if !ok || gain <= gainEpsilon {
			break
		}
		s.AddRule(r)
		res.record(s, r, gain, opt.Trace)
	}
	res.Table = s.Table()
	res.Runtime = time.Since(start)
	return res
}

// joinedItem is one item of the joined alphabet used by the search.
type joinedItem struct {
	view dataset.View
	id   int         // id within its view
	col  *bitset.Set // tidset
	len  float64     // L(item | its view)
	pot  float64     // ordering potential Σ_{t∈supp} tub(t_opposite)
}

// exactSearch carries the state of one best-rule search.
type exactSearch struct {
	s     *State
	opt   ExactOptions
	items []joinedItem

	// Per-depth scratch bitsets, so the DFS allocates only when it goes
	// deeper than ever before.
	levels []levelBufs

	best     Rule
	bestGain float64
	found    bool
}

type levelBufs struct {
	xy   *bitset.Set // joint support of the extended pair
	side *bitset.Set // per-view support of the extended side
}

func (se *exactSearch) bufs(depth int) *levelBufs {
	for len(se.levels) <= depth {
		n := se.s.d.Size()
		se.levels = append(se.levels, levelBufs{xy: bitset.New(n), side: bitset.New(n)})
	}
	return &se.levels[depth]
}

// bestRule returns argmax_r Δ_{D,T}(r) over all rules whose X∪Y occurs in
// the data, with a deterministic tie-break. ok is false when the dataset
// admits no rule at all.
func bestRule(s *State, opt ExactOptions) (Rule, float64, bool) {
	d := s.d
	var items []joinedItem
	for _, v := range []dataset.View{dataset.Left, dataset.Right} {
		cols := d.Columns(v)
		for i := 0; i < d.Items(v); i++ {
			if cols[i].Empty() {
				continue // items that never occur cannot enter a rule
			}
			items = append(items, joinedItem{
				view: v,
				id:   i,
				col:  cols[i],
				len:  s.coder.ItemLen(v, i),
				pot:  s.SumTub(v.Opposite(), cols[i]),
			})
		}
	}
	// Descending by potential; deterministic tie-break by view then id.
	sort.Slice(items, func(a, b int) bool {
		ia, ib := items[a], items[b]
		if ia.pot != ib.pot {
			return ia.pot > ib.pot
		}
		if ia.view != ib.view {
			return ia.view < ib.view
		}
		return ia.id < ib.id
	})

	se := &exactSearch{s: s, opt: opt, items: items}
	se.seed()
	n := d.Size()
	full := bitset.New(n)
	full.Fill()
	se.dfs(nil, nil, full, full.Clone(), full.Clone(), 0, 0, 0, 0)
	return se.best, se.bestGain, se.found
}

// seed evaluates every occurring singleton pair ({i}, {j}) before the
// depth-first search. The resulting incumbent is a true gain, so pruning
// against it is sound — it just starts the search with a competitive
// threshold instead of zero, which the tub-based item order alone cannot
// guarantee. Exactness is unaffected: the DFS still visits every
// candidate subtree whose bound exceeds the incumbent.
func (se *exactSearch) seed() {
	var lefts, rights []*joinedItem
	for i := range se.items {
		if se.items[i].view == dataset.Left {
			lefts = append(lefts, &se.items[i])
		} else {
			rights = append(rights, &se.items[i])
		}
	}
	for _, li := range lefts {
		for _, ri := range rights {
			if !li.col.Intersects(ri.col) {
				continue // the pair must occur in the data
			}
			se.evaluate(itemset.New(li.id), itemset.New(ri.id),
				li.col, ri.col, li.len, ri.len)
		}
	}
}

// dfs extends the pair (x, y) with items at positions ≥ start in the
// global order. tidX and tidY are the supports of x and y within their
// own views; tidXY is their intersection (the joint support of x ∪ y).
// lenX and lenY carry L(x|D_L) and L(y|D_R) incrementally; depth is the
// recursion level used for scratch buffers.
func (se *exactSearch) dfs(x, y itemset.Itemset, tidX, tidY, tidXY *bitset.Set, start, depth int, lenX, lenY float64) {
	for k := start; k < len(se.items); k++ {
		it := se.items[k]
		bufs := se.bufs(depth)
		// The joint support of the extended pair.
		childXY := bufs.xy
		bitset.IntersectInto(childXY, tidXY, it.col)
		if childXY.Empty() {
			continue // X∪Y must occur in the data (§5.2)
		}
		var cx, cy itemset.Itemset
		var ctX, ctY *bitset.Set
		clenX, clenY := lenX, lenY
		if it.view == dataset.Left {
			cx, cy = insertItem(x, it.id), y
			ctX = bufs.side
			bitset.IntersectInto(ctX, tidX, it.col)
			ctY = tidY
			clenX += it.len
		} else {
			cx, cy = x, insertItem(y, it.id)
			ctX = tidX
			ctY = bufs.side
			bitset.IntersectInto(ctY, tidY, it.col)
			clenY += it.len
		}
		if !se.opt.DisableRub {
			// rub(X◇Y) = Σ_{X⊆tL} tub(tR) + Σ_{Y⊆tR} tub(tL) − L(X↔Y),
			// antitone under extension, so it prunes the whole subtree.
			rub := se.s.SumTub(dataset.Right, ctX) +
				se.s.SumTub(dataset.Left, ctY) - (clenX + clenY + 1)
			if rub <= se.bestGain {
				continue
			}
		}
		if len(cx) > 0 && len(cy) > 0 {
			se.evaluate(cx, cy, ctX, ctY, clenX, clenY)
		}
		se.dfs(cx, cy, ctX, ctY, childXY, k+1, depth+1, clenX, clenY)
	}
}

// insertItem returns s ∪ {x} in canonical order (x may fall anywhere,
// since the global search order mixes the two views arbitrarily).
func insertItem(s itemset.Itemset, x int) itemset.Itemset {
	i := sort.SearchInts(s, x)
	out := make(itemset.Itemset, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, x)
	out = append(out, s[i:]...)
	return out
}

// evaluate computes the exact gains of the three rules formed by (x, y)
// and updates the incumbent.
func (se *exactSearch) evaluate(x, y itemset.Itemset, tidX, tidY *bitset.Set, lenX, lenY float64) {
	s := se.s
	lenBi := lenX + lenY + 1
	lenUni := lenX + lenY + 2
	if !se.opt.DisableQub {
		// qub(X◇Y) = |supp(X)|·L(Y) + |supp(Y)|·L(X) − L(X↔Y) bounds all
		// three directions; skip the exact gain computation if hopeless.
		qub := float64(tidX.Count())*lenY + float64(tidY.Count())*lenX - lenBi
		if qub <= se.bestGain {
			return
		}
	}
	gainF := s.gainDir(dataset.Left, tidX, y)
	gainB := s.gainDir(dataset.Right, tidY, x)
	for _, cand := range [3]struct {
		dir  Direction
		gain float64
	}{
		{Forward, gainF - lenUni},
		{Backward, gainB - lenUni},
		{Both, gainF + gainB - lenBi},
	} {
		r := Rule{X: x, Dir: cand.dir, Y: y}
		if cand.gain > se.bestGain ||
			(se.found && cand.gain == se.bestGain && r.Compare(se.best) < 0) {
			se.best = Rule{X: x.Clone(), Dir: cand.dir, Y: y.Clone()}
			se.bestGain = cand.gain
			se.found = true
		}
	}
}
