package core

import (
	"context"
	"slices"
	"sort"

	"twoview/internal/bitset"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/mdl"
	"twoview/internal/pool"
)

// This file implements TRANSLATOR-EXACT (Algorithm 2): starting from the
// empty table, iteratively add the rule with the globally maximal gain
// until no rule improves compression. The best rule is found by an
// ECLAT-style depth-first search over all pairs of itemsets occurring
// jointly in the data, with branch-and-bound pruning via the rule-based
// upper bound rub and evaluation skipping via the quick bound qub (§5.2).
//
// As the paper observes (§6.1), the bounds are highly effective in the
// first iterations and lose power once per-rule gains shrink, so exact
// search is "most attractive when one is only interested in few rules";
// MaxRules caps the iterations for that use.
//
// The best-rule search parallelizes naturally: within one call the state
// is read-only, so the seed singleton pairs and the top-level branches of
// the depth-first search are distributed over an internal/pool worker
// pool. Workers share the incumbent best gain through a pool.Max, so the
// rub/qub pruning threshold tightens across all of them as soon as any
// worker improves it. Each worker keeps its own champion rule under the
// (gain, Rule.Compare) total order and the champions are merged under the
// same order, making the result independent of the number of workers and
// of scheduling (see the note on tie pruning at threshold()).
//
// The rub bound rub(X◇Y) = Σ_{X⊆tL} tub(tR) + Σ_{Y⊆tR} tub(tL) − L(X↔Y)
// is maintained incrementally across DFS levels: extending a pair changes
// the support of only one side, so that side's tub sum is re-accumulated
// while intersecting its tidset (bitset.IntersectIntoSum) and the other
// side's sum is inherited from the parent node unchanged. The inherited
// value was accumulated over the same tidset in the same ascending order,
// so the bound — and therefore every pruning decision — is bit-identical
// to recomputing both sums from scratch at each node.

// ExactOptions configures MineExact.
type ExactOptions struct {
	// MaxRules stops after this many rules; 0 means no limit (the
	// natural MDL stopping criterion applies either way).
	MaxRules int
	// Trace observes each added rule.
	Trace TraceFunc
	// OnIteration observes each added rule and may stop the run early by
	// returning false (the partial table is returned with a nil error).
	OnIteration IterationFunc
	// DisableRub and DisableQub turn off the §5.2 pruning bounds. The
	// search then degenerates to exhaustive enumeration of occurring
	// pairs; results are identical. Used by the ablation benchmarks.
	DisableRub bool
	DisableQub bool
	// ParallelOptions sets the worker-pool size for the per-iteration
	// best-rule search; results are identical for any value.
	ParallelOptions
}

// MineExact runs TRANSLATOR-EXACT on d and returns the induced translation
// table. It is parameter-free (ExactOptions only bounds or observes it).
//
// Cancelling ctx aborts the search at the next checkpoint — the
// iteration boundary, a phase task boundary, or the periodic in-branch
// probe of the depth-first search — and returns the table mined so far
// alongside ctx.Err(). With an uncancelled context the result is
// bit-identical for every worker count and the error is nil.
func MineExact(ctx context.Context, d *dataset.Dataset, opt ExactOptions) (*Result, error) {
	if m, err := shardEngine(opt.ParallelOptions); err != nil {
		return nil, err
	} else if m != nil {
		return m.MineExact(ctx, d, opt)
	}
	elapsed := stopwatch()
	coder := mdl.NewCoder(d)
	s := NewState(d, coder)
	res := &Result{State: s}
	// One worker pool serves every iteration's best-rule search: the
	// per-worker states (and their per-depth DFS scratch) persist across
	// iterations, and the phases run on the session's parked workers.
	search := newExactRun(s, opt)
	var err error
	for opt.MaxRules == 0 || len(s.table.Rules) < opt.MaxRules {
		if err = ctx.Err(); err != nil {
			break
		}
		var r Rule
		var gain float64
		var ok bool
		if r, gain, ok, err = search.bestRule(ctx); err != nil || !ok || gain <= gainEpsilon {
			break
		}
		s.AddRule(r)
		if !res.record(s, r, gain, opt.Trace, opt.OnIteration) {
			break
		}
	}
	res.Table = s.Table()
	res.Runtime = elapsed()
	return res, err
}

// joinedItem is one item of the joined alphabet used by the search.
type joinedItem struct {
	view dataset.View
	id   int         // id within its view
	col  *bitset.Set // tidset
	len  float64     // L(item | its view)
	pot  float64     // ordering potential Σ_{t∈supp} tub(t_opposite)
}

// exactRun is the cross-iteration context of one MineExact call: the
// worker pool, the per-worker search states and the structures every
// iteration's best-rule search shares. Building it once means worker
// scratch (per-depth tidsets, itemset buffers) and the parked pool
// workers are reused by all iterations.
type exactRun struct {
	s    *State
	opt  ExactOptions
	pool *pool.Pool[*exactSearch]
	// ctx is the context of the current bestRule call, installed before
	// the phases are submitted (the phase barrier publishes it to the
	// workers) and probed periodically inside the DFS.
	ctx context.Context

	// items is rebuilt (re-sorted by potential) every iteration; the
	// slice itself is reused, as are its per-view partitions. All worker
	// states read them through the run.
	items  []joinedItem
	lefts  []*joinedItem
	rights []*joinedItem

	// shared is the cross-worker incumbent gain, Reset between
	// iterations; nil when serial.
	shared *pool.Max

	full, fullY, fullXY *bitset.Set // root tidsets, shared read-only
}

// exactSearch carries one worker's share of a best-rule search.
type exactSearch struct {
	*exactRun

	// Per-depth scratch, so the DFS allocates only when it goes deeper
	// than ever before — across all iterations of the run.
	levels []levelBufs
	// Scratch singletons for the seed pass.
	sx, sy [1]int

	// The champion rule. best.X and best.Y alias bestX and bestY, a pair
	// of per-worker buffers improvements copy into in place, so taking
	// the lead does not allocate; bestRule clones the merged winner once
	// per iteration before it escapes to the caller.
	best         Rule
	bestX, bestY itemset.Itemset
	bestGain     float64
	found        bool

	// Cancellation probe state: ticks counts visited DFS nodes, and
	// stopped latches once the run's context reports cancellation, so
	// the recursion unwinds without re-probing at every level.
	ticks   uint
	stopped bool
}

// exactCtxProbeMask gates the in-branch cancellation probe of the
// branch-and-bound DFS: one ctx.Err() call per 1024 extensions.
const exactCtxProbeMask = 1<<10 - 1

type levelBufs struct {
	xy   *bitset.Set     // joint support of the extended pair
	side *bitset.Set     // per-view support of the extended side
	set  itemset.Itemset // the extended itemset at this depth
}

func (se *exactSearch) bufs(depth int) *levelBufs {
	for len(se.levels) <= depth {
		n := se.s.d.Size()
		se.levels = append(se.levels, levelBufs{xy: bitset.New(n), side: bitset.New(n)})
	}
	return &se.levels[depth]
}

// threshold returns the tightest known incumbent gain, against which the
// rub/qub bounds prune. Pruning is strict (bound < threshold): a subtree
// whose bound merely equals the incumbent may still hold an equal-gain
// rule that wins the Rule.Compare tie-break, and visiting those keeps the
// reported rule identical whether the threshold was raised by this worker
// or another one — i.e. independent of worker count and scheduling.
func (se *exactSearch) threshold() float64 {
	if se.shared == nil {
		return se.bestGain
	}
	return se.shared.Load()
}

// newExactRun builds the cross-iteration search context: the worker
// pool (sized once — the set of occurring items never changes within
// one MineExact call), the shared incumbent, and the root tidsets.
func newExactRun(s *State, opt ExactOptions) *exactRun {
	d := s.d
	occurring := 0
	for _, v := range []dataset.View{dataset.Left, dataset.Right} {
		cols := d.Columns(v)
		for i := 0; i < d.Items(v); i++ {
			if !cols[i].Empty() {
				occurring++
			}
		}
	}
	run := &exactRun{s: s, opt: opt}
	workers := opt.workerCount(occurring)
	if workers > 1 {
		run.shared = new(pool.Max)
	}
	run.pool = pool.NewOn(opt.runtime(), workers, func(int) *exactSearch {
		return &exactSearch{exactRun: run}
	})
	n := d.Size()
	run.full = bitset.New(n)
	run.full.Fill()
	run.fullY, run.fullXY = run.full.Clone(), run.full.Clone()
	return run
}

// bestRule returns argmax_r Δ_{D,T}(r) over all rules whose X∪Y occurs in
// the data, with a deterministic tie-break. ok is false when the dataset
// admits no rule at all. The search runs on the run's worker pool in two
// phases — singleton seeding, then one task per top-level DFS branch
// (dynamic assignment: branch costs are heavily skewed toward early
// items) — followed by a champion merge under the (gain, Rule.Compare)
// total order. A cancelled ctx aborts both phases and returns ctx.Err();
// the partial champions are discarded.
func (run *exactRun) bestRule(ctx context.Context) (Rule, float64, bool, error) {
	s, opt := run.s, run.opt
	d := s.d
	// Rebuild the item order: the potentials depend on the current
	// state, so they change as rules are added. The slice is reused.
	items := run.items[:0]
	for _, v := range []dataset.View{dataset.Left, dataset.Right} {
		cols := d.Columns(v)
		for i := 0; i < d.Items(v); i++ {
			if cols[i].Empty() {
				continue // items that never occur cannot enter a rule
			}
			items = append(items, joinedItem{
				view: v,
				id:   i,
				col:  cols[i],
				len:  s.coder.ItemLen(v, i),
				pot:  s.SumTub(v.Opposite(), cols[i]),
			})
		}
	}
	// Descending by potential; deterministic tie-break by view then id.
	// slices.SortFunc rather than sort.Slice: the generic sort keeps the
	// per-iteration re-sort allocation-free.
	slices.SortFunc(items, func(a, b joinedItem) int {
		switch {
		case a.pot > b.pot:
			return -1
		case a.pot < b.pot:
			return 1
		case a.view != b.view:
			return int(a.view) - int(b.view)
		default:
			return a.id - b.id
		}
	})
	run.items = items

	// Reset the per-iteration search state; worker scratch persists.
	run.ctx = ctx
	if run.shared != nil {
		run.shared.Reset()
	}
	for _, se := range run.pool.States() {
		se.best, se.bestGain, se.found = Rule{}, 0, false
		se.stopped = false
	}

	// Root values of the incremental rub sums: both sides start at full
	// support, so the sums cover every transaction of the target view.
	var rootRX, rootLY float64
	if !opt.DisableRub {
		rootRX = s.SumTub(dataset.Right, run.full)
		rootLY = s.SumTub(dataset.Left, run.full)
	}

	lefts, rights := run.splitViews(items)
	// Seed phase: each task is one left singleton crossed with every
	// right singleton. The resulting incumbent is a true gain, so pruning
	// against it is sound — it just starts the DFS with a competitive
	// threshold instead of zero, which the tub-based item order alone
	// cannot guarantee. Exactness is unaffected: the DFS still visits
	// every candidate subtree whose bound reaches the incumbent.
	if err := run.pool.RunCtx(ctx, len(lefts), func(se *exactSearch, i int) {
		for _, ri := range rights {
			if !lefts[i].col.Intersects(ri.col) {
				continue // the pair must occur in the data
			}
			se.seedPair(lefts[i], ri)
		}
	}); err != nil {
		return Rule{}, 0, false, err
	}
	// DFS phase: each task is one top-level branch (extend the empty
	// pair with item k, then search positions > k). The root tidsets are
	// only read, so all workers share them.
	if err := run.pool.RunCtx(ctx, len(items), func(se *exactSearch, k int) {
		se.extend(nil, nil, run.full, run.fullY, run.fullXY, k, 0, 0, 0, rootRX, rootLY)
	}); err != nil {
		return Rule{}, 0, false, err
	}

	// Champion merge under the same (gain, Rule.Compare) total order the
	// workers use internally, so the result is bit-identical to the
	// serial search.
	var best Rule
	bestGain := 0.0
	found := false
	for _, se := range run.pool.States() {
		if !se.found {
			continue
		}
		if !found || se.bestGain > bestGain ||
			(se.bestGain == bestGain && se.best.Compare(best) < 0) {
			best, bestGain, found = se.best, se.bestGain, true
		}
	}
	if !found {
		return Rule{}, 0, false, nil
	}
	// The winner still aliases its worker's champion buffers, which the
	// next iteration overwrites; clone once here — the only per-iteration
	// champion allocation left.
	return Rule{X: best.X.Clone(), Dir: best.Dir, Y: best.Y.Clone()}, bestGain, true, nil
}

// bestRule runs a single best-rule search on a transient run context,
// for one-shot callers (tests, benchmarks); MineExact reuses one run
// across its iterations instead.
func bestRule(s *State, opt ExactOptions) (Rule, float64, bool) {
	r, gain, ok, _ := newExactRun(s, opt).bestRule(context.Background())
	return r, gain, ok
}

// splitViews partitions the search items by view, preserving the global
// potential order within each side. The partition slices live on the run
// and are reused by every iteration.
func (run *exactRun) splitViews(items []joinedItem) (lefts, rights []*joinedItem) {
	run.lefts, run.rights = run.lefts[:0], run.rights[:0]
	for i := range items {
		if items[i].view == dataset.Left {
			run.lefts = append(run.lefts, &items[i])
		} else {
			run.rights = append(run.rights, &items[i])
		}
	}
	return run.lefts, run.rights
}

// seedPair evaluates the singleton pair ({li}, {ri}) through per-search
// scratch itemsets (evaluate clones before keeping anything).
func (se *exactSearch) seedPair(li, ri *joinedItem) {
	se.sx[0], se.sy[0] = li.id, ri.id
	se.evaluate(itemset.Itemset(se.sx[:]), itemset.Itemset(se.sy[:]),
		li.col, ri.col, li.len, ri.len)
}

// dfs extends the pair (x, y) with items at positions ≥ start in the
// global order. tidX and tidY are the supports of x and y within their
// own views; tidXY is their intersection (the joint support of x ∪ y).
// lenX and lenY carry L(x|D_L) and L(y|D_R) incrementally; sumRX and
// sumLY carry the rub partial sums Σ_{t∈tidX} tub_R(t) and
// Σ_{t∈tidY} tub_L(t); depth is the recursion level used for scratch
// buffers.
func (se *exactSearch) dfs(x, y itemset.Itemset, tidX, tidY, tidXY *bitset.Set, start, depth int, lenX, lenY, sumRX, sumLY float64) {
	for k := start; k < len(se.items); k++ {
		se.extend(x, y, tidX, tidY, tidXY, k, depth, lenX, lenY, sumRX, sumLY)
	}
}

// extend grows the pair (x, y) by the single item at position k, evaluates
// the result when both sides are non-empty, and recurses into extensions
// at positions > k. Only one side's support shrinks, so its tub partial
// sum is re-accumulated while intersecting (one fused pass) and the other
// side's sum is inherited unchanged.
func (se *exactSearch) extend(x, y itemset.Itemset, tidX, tidY, tidXY *bitset.Set, k, depth int, lenX, lenY, sumRX, sumLY float64) {
	// Cancellation probe: once the run's context is cancelled the whole
	// recursion unwinds via the latched flag. The champions this search
	// has accumulated are discarded by bestRule, so cutting mid-branch
	// cannot leak a schedule-dependent result.
	if se.stopped {
		return
	}
	if se.ticks++; se.ticks&exactCtxProbeMask == 0 && se.ctx.Err() != nil {
		se.stopped = true
		return
	}
	it := se.items[k]
	bufs := se.bufs(depth)
	// The joint support of the extended pair.
	childXY := bufs.xy
	bitset.IntersectInto(childXY, tidXY, it.col)
	if childXY.Empty() {
		return // X∪Y must occur in the data (§5.2)
	}
	// The extended side lives in this depth's scratch itemset: siblings at
	// the same depth overwrite it after the subtree below has returned,
	// and evaluate clones before keeping a rule.
	bufs.set = insertItemInto(bufs.set, x, y, it)
	useRub := !se.opt.DisableRub
	var cx, cy itemset.Itemset
	var ctX, ctY *bitset.Set
	clenX, clenY := lenX, lenY
	csumRX, csumLY := sumRX, sumLY
	if it.view == dataset.Left {
		cx, cy = bufs.set, y
		ctX = bufs.side
		if useRub {
			csumRX = bitset.IntersectIntoSum(ctX, tidX, it.col, se.s.tub[dataset.Right])
		} else {
			bitset.IntersectInto(ctX, tidX, it.col)
		}
		ctY = tidY
		clenX += it.len
	} else {
		cx, cy = x, bufs.set
		ctX = tidX
		ctY = bufs.side
		if useRub {
			csumLY = bitset.IntersectIntoSum(ctY, tidY, it.col, se.s.tub[dataset.Left])
		} else {
			bitset.IntersectInto(ctY, tidY, it.col)
		}
		clenY += it.len
	}
	if useRub {
		// rub(X◇Y) = Σ_{X⊆tL} tub(tR) + Σ_{Y⊆tR} tub(tL) − L(X↔Y),
		// antitone under extension, so it prunes the whole subtree.
		rub := csumRX + csumLY - (clenX + clenY + 1)
		if rub < se.threshold() {
			return
		}
	}
	if len(cx) > 0 && len(cy) > 0 {
		se.evaluate(cx, cy, ctX, ctY, clenX, clenY)
	}
	se.dfs(cx, cy, ctX, ctY, childXY, k+1, depth+1, clenX, clenY, csumRX, csumLY)
}

// insertItemInto writes (x or y) ∪ {it.id} into dst, reusing its capacity:
// the side matching it.view is extended (it.id may fall anywhere, since
// the global search order mixes the two views arbitrarily).
func insertItemInto(dst itemset.Itemset, x, y itemset.Itemset, it joinedItem) itemset.Itemset {
	s := x
	if it.view == dataset.Right {
		s = y
	}
	i := sort.SearchInts(s, it.id)
	dst = append(dst[:0], s[:i]...)
	dst = append(dst, it.id)
	return append(dst, s[i:]...)
}

// evaluate computes the exact gains of the three rules formed by (x, y)
// and updates the incumbent. x and y may live in scratch buffers; the
// champion is copied into the worker's preallocated buffers, not cloned.
func (se *exactSearch) evaluate(x, y itemset.Itemset, tidX, tidY *bitset.Set, lenX, lenY float64) {
	s := se.s
	lenBi := lenX + lenY + 1
	lenUni := lenX + lenY + 2
	if !se.opt.DisableQub {
		// qub(X◇Y) = |supp(X)|·L(Y) + |supp(Y)|·L(X) − L(X↔Y) bounds all
		// three directions; skip the exact gain computation if hopeless.
		qub := float64(tidX.Count())*lenY + float64(tidY.Count())*lenX - lenBi
		if qub < se.threshold() {
			return
		}
	}
	gainF := s.gainDir(dataset.Left, tidX, y)
	gainB := s.gainDir(dataset.Right, tidY, x)
	for _, cand := range [3]struct {
		dir  Direction
		gain float64
	}{
		{Forward, gainF - lenUni},
		{Backward, gainB - lenUni},
		{Both, gainF + gainB - lenBi},
	} {
		r := Rule{X: x, Dir: cand.dir, Y: y}
		if cand.gain > se.bestGain ||
			(se.found && cand.gain == se.bestGain && r.Compare(se.best) < 0) {
			se.bestX = append(se.bestX[:0], x...)
			se.bestY = append(se.bestY[:0], y...)
			se.best = Rule{X: se.bestX, Dir: cand.dir, Y: se.bestY}
			se.bestGain = cand.gain
			se.found = true
			if se.shared != nil {
				se.shared.Raise(cand.gain)
			}
		}
	}
}
