package core

import (
	"math"

	"twoview/internal/bitset"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/mdl"
)

// State maintains, incrementally, everything needed to score a growing
// translation table: per transaction and per target view the uncovered
// items U (in the data but not yet translated) and the errors E
// (translated but not in the data), the encoded correction lengths, the
// table length, and the transaction-based upper bounds tub (§5.1–5.2).
//
// The correction state is kept in two layouts at once:
//
//   - row-wise, u[v][t]/e[v][t]: one bitset over I_v per transaction,
//     the layout of Algorithm 1 and of the read accessors
//     (Uncovered/Errors, table reports, reconstruction tests);
//   - columnar, ucol[v][i]/ecol[v][i]: one tidset over the transactions
//     per *item*, the same vertical layout as Dataset.Columns. This is
//     the layout every gain evaluation reads: scoring a candidate rule
//     against a support tidset becomes a handful of fused
//     popcount loops per consequent item (see gainDir) instead of
//     per-transaction bit probes.
//
// Both mirrors are updated together by AddRule/applyDir; the columnar
// mirror is property-tested against a row-wise reference in
// columnar_test.go. All bitsets are carved out of per-view batch
// allocations (bitset.NewBatch), so building a State costs O(1)
// allocations per view rather than O(|D| + |I|).
//
// Invariants (checked in tests):
//   - U_t ⊆ t and E_t ∩ t = ∅ for the target view's row t;
//   - t′ = (t \ U_t) ∪ E_t matches TranslateRow for the current table;
//   - E only grows as rules are added (errors are never removed);
//   - ucol[v][i] = {t : i ∈ u[v][t]} and ecol[v][i] = {t : i ∈ e[v][t]};
//   - corrLen[v] = Σ_t BitsLen(U_t) + BitsLen(E_t).
type State struct {
	d     *dataset.Dataset
	coder *mdl.Coder
	table Table

	// Arrays indexed by the *target* view of a translation:
	// target Right ⇔ translation D_L→R, target Left ⇔ D_L←R.
	u       [2][]bitset.Set // row-wise U, indexed by transaction
	e       [2][]bitset.Set // row-wise E, indexed by transaction
	ucol    [2][]bitset.Set // columnar U, indexed by item (tidsets)
	ecol    [2][]bitset.Set // columnar E, indexed by item (tidsets)
	uOnes   [2]int
	eOnes   [2]int
	corrLen [2]float64
	tub     [2][]float64 // tub(t) = L(U_t | D_target) per transaction

	scratch *bitset.Set // width |D|, used serially by applyDir
}

// NewState returns the state of the empty translation table: everything is
// uncovered, nothing is in error, and the score is the baseline L(D,∅).
func NewState(d *dataset.Dataset, coder *mdl.Coder) *State {
	s := &State{d: d, coder: coder}
	n := d.Size()
	for _, v := range []dataset.View{dataset.Left, dataset.Right} {
		items := d.Items(v)
		s.u[v] = bitset.NewBatch(n, items)
		s.e[v] = bitset.NewBatch(n, items)
		s.tub[v] = make([]float64, n)
		for t := 0; t < n; t++ {
			row := d.Row(v, t)
			s.u[v][t].Copy(row)
			s.uOnes[v] += row.Count()
			s.tub[v][t] = coder.BitsLen(v, row)
			s.corrLen[v] += s.tub[v][t]
		}
		// Initially U_t = t, so the U column of item i is exactly the
		// item's support tidset. Materializing Columns here also makes
		// the lazily built cache safe to read from parallel phases.
		cols := d.Columns(v)
		s.ucol[v] = bitset.NewBatch(items, n)
		s.ecol[v] = bitset.NewBatch(items, n)
		for i := 0; i < items; i++ {
			s.ucol[v][i].Copy(cols[i])
		}
	}
	s.scratch = bitset.New(n)
	return s
}

// Dataset returns the underlying dataset.
func (s *State) Dataset() *dataset.Dataset { return s.d }

// Coder returns the coder used for all lengths.
func (s *State) Coder() *mdl.Coder { return s.coder }

// Table returns the current translation table. Callers must not modify it.
func (s *State) Table() *Table { return &s.table }

// Uncovered returns U_t for the given target view. Read-only.
func (s *State) Uncovered(target dataset.View, t int) *bitset.Set { return &s.u[target][t] }

// Errors returns E_t for the given target view. Read-only.
func (s *State) Errors(target dataset.View, t int) *bitset.Set { return &s.e[target][t] }

// UncoveredCol returns the columnar mirror of U for item i of the target
// view: the tidset {t : i ∈ U_t}. Read-only.
func (s *State) UncoveredCol(target dataset.View, i int) *bitset.Set { return &s.ucol[target][i] }

// ErrorsCol returns the columnar mirror of E for item i of the target
// view: the tidset {t : i ∈ E_t}. Read-only.
func (s *State) ErrorsCol(target dataset.View, i int) *bitset.Set { return &s.ecol[target][i] }

// UncoveredOnes returns |U| for the target view (Fig. 2, top).
func (s *State) UncoveredOnes(target dataset.View) int { return s.uOnes[target] }

// ErrorOnes returns |E| for the target view (Fig. 2, top).
func (s *State) ErrorOnes(target dataset.View) int { return s.eOnes[target] }

// CorrectionOnes returns |C| = |U|+|E| summed over both views, the
// numerator of the |C|% metric of Table 3.
func (s *State) CorrectionOnes() int {
	return s.uOnes[0] + s.uOnes[1] + s.eOnes[0] + s.eOnes[1]
}

// CorrLen returns L(C_target | T) in bits.
func (s *State) CorrLen(target dataset.View) float64 { return s.corrLen[target] }

// TableLen returns L(T) in bits.
func (s *State) TableLen() float64 { return s.table.Len(s.coder) }

// Score returns the total encoded size L(D_L↔R, T) = L(T) + L(C_L|T) +
// L(C_R|T) minimized in Problem 1.
func (s *State) Score() float64 {
	return s.TableLen() + s.corrLen[dataset.Left] + s.corrLen[dataset.Right]
}

// Baseline returns L(D,∅), the score of the empty table.
func (s *State) Baseline() float64 { return s.coder.BaselineLen(s.d) }

// Tub returns the transaction-based upper bound tub(t) = L(U_t|D_target)
// for the given target view (§5.2). It is kept up to date by AddRule.
func (s *State) Tub(target dataset.View, t int) float64 { return s.tub[target][t] }

// SumTub returns Σ_{t ∈ tids} tub(t) for the target view, accumulated in
// ascending transaction order (the same order ForEach would visit, so
// the value is bit-identical to the closure-based walk it replaced —
// WeightedSum guarantees that order under both kernel builds).
func (s *State) SumTub(target dataset.View, tids *bitset.Set) float64 {
	return bitset.WeightedSum(tids, s.tub[target])
}

// gainDir computes Δ_{D|T} for one direction of a rule (Equation 2): the
// antecedent's support tidset in view `from` and the consequent itemset in
// the opposite view. It does not subtract the rule length.
//
// This is the innermost loop of all three miners, and it runs entirely on
// the columnar mirror: per consequent item y, the number of transactions
// where y becomes covered is |tids ∩ ucol[y]| and the number where y
// becomes an error is |tids \ (supp(y) ∪ ecol[y])| — two fused popcount
// word loops (bitset.AndCount / AndNotAndNotCount), no per-transaction
// branching, no allocation.
func (s *State) gainDir(from dataset.View, tids *bitset.Set, cons itemset.Itemset) float64 {
	target := from.Opposite()
	ucol, ecol := s.ucol[target], s.ecol[target]
	cols := s.d.Columns(target)
	gain := 0.0
	//lint:ctxprobe-ok bounded per-rule work (|cons| kernel calls); callers probe ctx at rule granularity
	for _, y := range cons {
		covered := bitset.AndCount(tids, &ucol[y])                // L(Y ∩ U_t) terms
		errs := bitset.AndNotAndNotCount(tids, cols[y], &ecol[y]) // L(Y \ (t_R ∪ E_t)) terms
		if covered == errs {
			// Skip the multiply: ±0 contributions cancel, and a
			// zero-support item (ItemLen +Inf) over an empty tidset
			// must contribute 0, not Inf·0 = NaN.
			continue
		}
		gain += s.coder.ItemLen(target, y) * float64(covered-errs)
	}
	return gain
}

// Gain returns Δ_{D,T}(r) = Δ_{D|T}(r) − L(r) (Equation 1): the decrease in
// total compressed size obtained by adding r to the current table.
func (s *State) Gain(r Rule) float64 {
	return s.GainWithTids(r, nil, nil)
}

// GainWithTids is Gain with optional precomputed support tidsets for X (in
// the left view) and Y (in the right view); nil tidsets are computed on
// the fly. Passing cached tidsets avoids recomputation in the search
// algorithms' inner loops.
func (s *State) GainWithTids(r Rule, tidX, tidY *bitset.Set) float64 {
	gain := 0.0
	if r.AppliesTo(dataset.Left) {
		if tidX == nil {
			tidX = s.d.SupportSet(dataset.Left, r.X)
		}
		gain += s.gainDir(dataset.Left, tidX, r.Y)
	}
	if r.AppliesTo(dataset.Right) {
		if tidY == nil {
			tidY = s.d.SupportSet(dataset.Right, r.Y)
		}
		gain += s.gainDir(dataset.Right, tidY, r.X)
	}
	return gain - r.Len(s.coder)
}

// Qub returns the quick upper bound qub(X ◇ Y) of §5.2, valid for all
// three directions of the rule: |supp(X)|·L(Y|D_R) + |supp(Y)|·L(X|D_L) −
// L(X↔Y). It cannot be used for subtree pruning but safely skips exact
// gain computations.
func (s *State) Qub(x, y itemset.Itemset, suppX, suppY int) float64 {
	return float64(suppX)*s.coder.SetLen(dataset.Right, y) +
		float64(suppY)*s.coder.SetLen(dataset.Left, x) -
		s.coder.RuleLen(x, y, true)
}

// Rub returns the rule-based upper bound rub(X ◇ Y) of §5.2: it bounds the
// gain of the rule and of every extension of it, so subtrees with
// rub ≤ best gain can be pruned.
func (s *State) Rub(x, y itemset.Itemset, tidX, tidY *bitset.Set) float64 {
	return s.SumTub(dataset.Right, tidX) + s.SumTub(dataset.Left, tidY) -
		s.coder.RuleLen(x, y, true)
}

// applyDir updates U, E (both layouts), tub and corrLen for one direction
// of a rule. Like gainDir it works item-major: per consequent item y it
// materializes the covered tidset tids ∩ ucol[y] and the new-error tidset
// tids \ (supp(y) ∪ ecol[y]) with word-level operations, updates the
// columns wholesale, and walks only the affected transactions to keep the
// row mirror and tub in sync. For each transaction the per-item deltas are
// applied in consequent order, exactly as the row-wise version did, so tub
// stays bit-identical. applyDir is only called between search phases
// (AddRule), never concurrently, so it may use the state's scratch set.
func (s *State) applyDir(from dataset.View, tids *bitset.Set, cons itemset.Itemset) {
	target := from.Opposite()
	u, e := s.u[target], s.e[target]
	cols := s.d.Columns(target)
	tub := s.tub[target]
	//lint:ctxprobe-ok bounded per-rule work (|cons| kernel calls); AddRule runs between iteration checkpoints
	for _, y := range cons {
		l := s.coder.ItemLen(target, y)
		ucol, ecol := &s.ucol[target][y], &s.ecol[target][y]

		// Transactions where y was still uncovered: it becomes covered.
		covered := s.scratch
		bitset.IntersectInto(covered, tids, ucol)
		covCnt := covered.Count()
		if covCnt > 0 {
			ucol.AndNot(covered)
			covered.ForEach(func(t int) bool {
				u[t].Remove(y)
				tub[t] -= l
				return true
			})
		}

		// Transactions where y is neither in the data nor already an
		// error: it becomes a new error (errors are never removed).
		errs := s.scratch
		errs.Copy(tids)
		errs.AndNot(cols[y])
		errs.AndNot(ecol)
		errCnt := errs.Count()
		if errCnt > 0 {
			ecol.Or(errs)
			errs.ForEach(func(t int) bool {
				e[t].Add(y)
				return true
			})
		}

		s.uOnes[target] -= covCnt
		s.eOnes[target] += errCnt
		if covCnt != errCnt {
			// Same single-multiply form as gainDir, so Gain(r) computed
			// immediately before AddRule(r) matches the score change
			// exactly (negation is lossless in floating point).
			s.corrLen[target] += l * float64(errCnt-covCnt)
		}
	}
}

// AddRule appends r to the table and updates all incremental structures.
// The change in Score equals -Gain(r) computed immediately before the call.
func (s *State) AddRule(r Rule) {
	if r.AppliesTo(dataset.Left) {
		s.applyDir(dataset.Left, s.d.SupportSet(dataset.Left, r.X), r.Y)
	}
	if r.AppliesTo(dataset.Right) {
		s.applyDir(dataset.Right, s.d.SupportSet(dataset.Right, r.Y), r.X)
	}
	s.table.Rules = append(s.table.Rules, r)
	s.checkFinite()
}

// EvaluateTable scores an arbitrary translation table against a dataset by
// replaying its rules through a fresh state. Because translation is
// order-independent, the resulting state is canonical for the table. This
// is how baseline rule sets (MAGNUM OPUS, REREMI, KRIMP) are compared
// under the paper's encoding in Table 3.
func EvaluateTable(d *dataset.Dataset, coder *mdl.Coder, t *Table) *State {
	s := NewState(d, coder)
	for _, r := range t.Rules {
		s.AddRule(r)
	}
	return s
}

// CompressionRatio returns L% = L(D,T) / L(D,∅) as a percentage. An empty
// dataset has ratio 100 (nothing to compress). Ratios above 100 mean the
// table inflates the translation.
func (s *State) CompressionRatio() float64 {
	base := s.Baseline()
	if base == 0 {
		return 100
	}
	return 100 * s.Score() / base
}

// CorrectionRatio returns |C|% = |C| / ((|I_L|+|I_R|)·|D|) as a percentage
// (Table 3).
func (s *State) CorrectionRatio() float64 {
	cells := (s.d.Items(dataset.Left) + s.d.Items(dataset.Right)) * s.d.Size()
	if cells == 0 {
		return 0
	}
	return 100 * float64(s.CorrectionOnes()) / float64(cells)
}

// checkFinite panics if the score became NaN/Inf, which would indicate a
// rule or correction referencing a zero-support item.
func (s *State) checkFinite() {
	if sc := s.Score(); math.IsNaN(sc) || math.IsInf(sc, 0) {
		panic("core: non-finite score; rule or correction uses a zero-support item")
	}
}
