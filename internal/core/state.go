package core

import (
	"math"

	"twoview/internal/bitset"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/mdl"
)

// State maintains, incrementally, everything needed to score a growing
// translation table: per transaction and per target view the uncovered
// items U (in the data but not yet translated) and the errors E
// (translated but not in the data), the encoded correction lengths, the
// table length, and the transaction-based upper bounds tub (§5.1–5.2).
//
// Invariants (checked in tests):
//   - U_t ⊆ t and E_t ∩ t = ∅ for the target view's row t;
//   - t′ = (t \ U_t) ∪ E_t matches TranslateRow for the current table;
//   - E only grows as rules are added (errors are never removed);
//   - corrLen[v] = Σ_t BitsLen(U_t) + BitsLen(E_t).
type State struct {
	d     *dataset.Dataset
	coder *mdl.Coder
	table Table

	// Arrays indexed by the *target* view of a translation:
	// target Right ⇔ translation D_L→R, target Left ⇔ D_L←R.
	u       [2][]*bitset.Set
	e       [2][]*bitset.Set
	uOnes   [2]int
	eOnes   [2]int
	corrLen [2]float64
	tub     [2][]float64 // tub(t) = L(U_t | D_target) per transaction
}

// NewState returns the state of the empty translation table: everything is
// uncovered, nothing is in error, and the score is the baseline L(D,∅).
func NewState(d *dataset.Dataset, coder *mdl.Coder) *State {
	s := &State{d: d, coder: coder}
	for _, v := range []dataset.View{dataset.Left, dataset.Right} {
		n := d.Size()
		s.u[v] = make([]*bitset.Set, n)
		s.e[v] = make([]*bitset.Set, n)
		s.tub[v] = make([]float64, n)
		for t := 0; t < n; t++ {
			row := d.Row(v, t)
			s.u[v][t] = row.Clone()
			s.e[v][t] = bitset.New(d.Items(v))
			s.uOnes[v] += row.Count()
			s.tub[v][t] = coder.BitsLen(v, row)
			s.corrLen[v] += s.tub[v][t]
		}
	}
	return s
}

// Dataset returns the underlying dataset.
func (s *State) Dataset() *dataset.Dataset { return s.d }

// Coder returns the coder used for all lengths.
func (s *State) Coder() *mdl.Coder { return s.coder }

// Table returns the current translation table. Callers must not modify it.
func (s *State) Table() *Table { return &s.table }

// Uncovered returns U_t for the given target view. Read-only.
func (s *State) Uncovered(target dataset.View, t int) *bitset.Set { return s.u[target][t] }

// Errors returns E_t for the given target view. Read-only.
func (s *State) Errors(target dataset.View, t int) *bitset.Set { return s.e[target][t] }

// UncoveredOnes returns |U| for the target view (Fig. 2, top).
func (s *State) UncoveredOnes(target dataset.View) int { return s.uOnes[target] }

// ErrorOnes returns |E| for the target view (Fig. 2, top).
func (s *State) ErrorOnes(target dataset.View) int { return s.eOnes[target] }

// CorrectionOnes returns |C| = |U|+|E| summed over both views, the
// numerator of the |C|% metric of Table 3.
func (s *State) CorrectionOnes() int {
	return s.uOnes[0] + s.uOnes[1] + s.eOnes[0] + s.eOnes[1]
}

// CorrLen returns L(C_target | T) in bits.
func (s *State) CorrLen(target dataset.View) float64 { return s.corrLen[target] }

// TableLen returns L(T) in bits.
func (s *State) TableLen() float64 { return s.table.Len(s.coder) }

// Score returns the total encoded size L(D_L↔R, T) = L(T) + L(C_L|T) +
// L(C_R|T) minimized in Problem 1.
func (s *State) Score() float64 {
	return s.TableLen() + s.corrLen[dataset.Left] + s.corrLen[dataset.Right]
}

// Baseline returns L(D,∅), the score of the empty table.
func (s *State) Baseline() float64 { return s.coder.BaselineLen(s.d) }

// Tub returns the transaction-based upper bound tub(t) = L(U_t|D_target)
// for the given target view (§5.2). It is kept up to date by AddRule.
func (s *State) Tub(target dataset.View, t int) float64 { return s.tub[target][t] }

// SumTub returns Σ_{t ∈ tids} tub(t) for the target view.
func (s *State) SumTub(target dataset.View, tids *bitset.Set) float64 {
	total := 0.0
	tub := s.tub[target]
	tids.ForEach(func(t int) bool {
		total += tub[t]
		return true
	})
	return total
}

// gainDir computes Δ_{D|T} for one direction of a rule (Equation 2): the
// antecedent's support tidset in view `from` and the consequent itemset in
// the opposite view. It does not subtract the rule length.
func (s *State) gainDir(from dataset.View, tids *bitset.Set, cons itemset.Itemset) float64 {
	target := from.Opposite()
	lens := make([]float64, len(cons))
	for i, y := range cons {
		lens[i] = s.coder.ItemLen(target, y)
	}
	u, e := s.u[target], s.e[target]
	gain := 0.0
	tids.ForEach(func(t int) bool {
		row := s.d.Row(target, t)
		for i, y := range cons {
			switch {
			case u[t].Contains(y):
				gain += lens[i] // item becomes covered: L(Y ∩ U_t)
			case !row.Contains(y) && !e[t].Contains(y):
				gain -= lens[i] // new error: L(Y \ (t_R ∪ E_t))
			}
		}
		return true
	})
	return gain
}

// Gain returns Δ_{D,T}(r) = Δ_{D|T}(r) − L(r) (Equation 1): the decrease in
// total compressed size obtained by adding r to the current table.
func (s *State) Gain(r Rule) float64 {
	return s.GainWithTids(r, nil, nil)
}

// GainWithTids is Gain with optional precomputed support tidsets for X (in
// the left view) and Y (in the right view); nil tidsets are computed on
// the fly. Passing cached tidsets avoids recomputation in the search
// algorithms' inner loops.
func (s *State) GainWithTids(r Rule, tidX, tidY *bitset.Set) float64 {
	gain := 0.0
	if r.AppliesTo(dataset.Left) {
		if tidX == nil {
			tidX = s.d.SupportSet(dataset.Left, r.X)
		}
		gain += s.gainDir(dataset.Left, tidX, r.Y)
	}
	if r.AppliesTo(dataset.Right) {
		if tidY == nil {
			tidY = s.d.SupportSet(dataset.Right, r.Y)
		}
		gain += s.gainDir(dataset.Right, tidY, r.X)
	}
	return gain - r.Len(s.coder)
}

// Qub returns the quick upper bound qub(X ◇ Y) of §5.2, valid for all
// three directions of the rule: |supp(X)|·L(Y|D_R) + |supp(Y)|·L(X|D_L) −
// L(X↔Y). It cannot be used for subtree pruning but safely skips exact
// gain computations.
func (s *State) Qub(x, y itemset.Itemset, suppX, suppY int) float64 {
	return float64(suppX)*s.coder.SetLen(dataset.Right, y) +
		float64(suppY)*s.coder.SetLen(dataset.Left, x) -
		s.coder.RuleLen(x, y, true)
}

// Rub returns the rule-based upper bound rub(X ◇ Y) of §5.2: it bounds the
// gain of the rule and of every extension of it, so subtrees with
// rub ≤ best gain can be pruned.
func (s *State) Rub(x, y itemset.Itemset, tidX, tidY *bitset.Set) float64 {
	return s.SumTub(dataset.Right, tidX) + s.SumTub(dataset.Left, tidY) -
		s.coder.RuleLen(x, y, true)
}

// applyDir updates U, E, tub and corrLen for one direction of a rule.
func (s *State) applyDir(from dataset.View, tids *bitset.Set, cons itemset.Itemset) {
	target := from.Opposite()
	lens := make([]float64, len(cons))
	for i, y := range cons {
		lens[i] = s.coder.ItemLen(target, y)
	}
	u, e := s.u[target], s.e[target]
	tids.ForEach(func(t int) bool {
		row := s.d.Row(target, t)
		for i, y := range cons {
			switch {
			case u[t].Contains(y):
				u[t].Remove(y)
				s.uOnes[target]--
				s.corrLen[target] -= lens[i]
				s.tub[target][t] -= lens[i]
			case !row.Contains(y) && !e[t].Contains(y):
				e[t].Add(y)
				s.eOnes[target]++
				s.corrLen[target] += lens[i]
			}
		}
		return true
	})
}

// AddRule appends r to the table and updates all incremental structures.
// The change in Score equals -Gain(r) computed immediately before the call.
func (s *State) AddRule(r Rule) {
	if r.AppliesTo(dataset.Left) {
		s.applyDir(dataset.Left, s.d.SupportSet(dataset.Left, r.X), r.Y)
	}
	if r.AppliesTo(dataset.Right) {
		s.applyDir(dataset.Right, s.d.SupportSet(dataset.Right, r.Y), r.X)
	}
	s.table.Rules = append(s.table.Rules, r)
	s.checkFinite()
}

// EvaluateTable scores an arbitrary translation table against a dataset by
// replaying its rules through a fresh state. Because translation is
// order-independent, the resulting state is canonical for the table. This
// is how baseline rule sets (MAGNUM OPUS, REREMI, KRIMP) are compared
// under the paper's encoding in Table 3.
func EvaluateTable(d *dataset.Dataset, coder *mdl.Coder, t *Table) *State {
	s := NewState(d, coder)
	for _, r := range t.Rules {
		s.AddRule(r)
	}
	return s
}

// CompressionRatio returns L% = L(D,T) / L(D,∅) as a percentage. An empty
// dataset has ratio 100 (nothing to compress). Ratios above 100 mean the
// table inflates the translation.
func (s *State) CompressionRatio() float64 {
	base := s.Baseline()
	if base == 0 {
		return 100
	}
	return 100 * s.Score() / base
}

// CorrectionRatio returns |C|% = |C| / ((|I_L|+|I_R|)·|D|) as a percentage
// (Table 3).
func (s *State) CorrectionRatio() float64 {
	cells := (s.d.Items(dataset.Left) + s.d.Items(dataset.Right)) * s.d.Size()
	if cells == 0 {
		return 0
	}
	return 100 * float64(s.CorrectionOnes()) / float64(cells)
}

// checkFinite panics if the score became NaN/Inf, which would indicate a
// rule or correction referencing a zero-support item.
func (s *State) checkFinite() {
	if sc := s.Score(); math.IsNaN(sc) || math.IsInf(sc, 0) {
		panic("core: non-finite score; rule or correction uses a zero-support item")
	}
}
