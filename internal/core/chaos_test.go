//go:build faultinject

package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"twoview/internal/dataset"
	"twoview/internal/fault"
)

// Chaos coverage for the mining/serving core under -tags faultinject:
// scripted failpoints (internal/fault) strike inside pool tasks and the
// streaming reader, and the recovery contract is that sessions, pools
// and translators stay fully usable — and bit-identical to undisturbed
// runs — once the fault passes.

// A panic injected into a pool *task* (not the submitter) re-raises at
// the mining call; the Session and its parked workers must survive and
// the very next mine on the same Session must match a fresh session's
// table bit for bit.
func TestChaosSessionReuseAfterInjectedTaskPanic(t *testing.T) {
	defer fault.Reset()
	d := plantedDataset(t, 91)
	ref := mustExact(t, d, ExactOptions{ParallelOptions: Parallel(4)})

	sess := NewSession()
	defer sess.Close()
	par := ParallelOptions{Workers: 4, Session: sess}

	fault.Set("pool.task", fault.Action{Skip: 5, Panic: "chaos: poisoned task"})
	panicked := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
			}
		}()
		_, _ = MineExact(context.Background(), d, ExactOptions{ParallelOptions: par})
	}()
	if !panicked {
		t.Fatal("injected task panic did not reach the submitter")
	}
	fault.Reset()

	// Same session, clean schedule: the mine must run to completion and
	// reproduce the reference table exactly.
	res := mustExact(t, d, ExactOptions{ParallelOptions: par})
	if res.Table.Size() != ref.Table.Size() {
		t.Fatalf("table size after panic recovery: %d, want %d", res.Table.Size(), ref.Table.Size())
	}
	for i := range res.Table.Rules {
		if res.Table.Rules[i].Compare(ref.Table.Rules[i]) != 0 {
			t.Fatalf("rule %d differs after panic recovery: %v != %v",
				i, res.Table.Rules[i], ref.Table.Rules[i])
		}
	}
}

// A transient reader error mid-stream fails ApplyStream cleanly with
// the injected error in the chain; a clean retry over the same bytes
// reproduces the in-memory Apply report exactly.
func TestChaosApplyStreamReaderFault(t *testing.T) {
	defer fault.Reset()
	d := plantedDataset(t, 92)
	cands := mustCandidates(t, d, 1, 0, Parallel(1))
	res := mustSelect(t, d, cands, SelectOptions{K: 10, ParallelOptions: Parallel(1)})
	tr, err := CompileTranslator(d, res.Table)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dataset.Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	transient := errors.New("chaos: storage hiccup")
	fault.Set("dataset.rowreader.next", fault.Action{Skip: 10, Err: transient})
	if _, err := tr.ApplyStream(context.Background(), strings.NewReader(text), dataset.Left); !errors.Is(err, transient) {
		t.Fatalf("ApplyStream under reader fault = %v, want wrapped %v", err, transient)
	}
	fault.Reset()

	want, err := tr.Apply(context.Background(), d, dataset.Left)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.ApplyStream(context.Background(), strings.NewReader(text), dataset.Left)
	if err != nil {
		t.Fatalf("clean retry after transient fault: %v", err)
	}
	if got != want {
		t.Fatalf("retry report %+v != in-memory report %+v", got, want)
	}
}
