package core

import (
	"context"
	"sync"
	"sync/atomic"
)

// TranslatorHandle is the zero-downtime table-swap primitive of the
// serving daemon: an atomic, epoch-tagged pointer to the current
// compiled Translator plus a per-epoch reference count that lets a
// swapped-out epoch be drained before it is released.
//
// Readers (request handlers) pin the current epoch with Acquire, use
// its immutable Translator for the whole request, and Release it;
// because a Translator is never mutated after compilation and the
// handle swaps whole epochs, no reader can ever observe a torn table —
// a request sees exactly the table that was current when it acquired,
// for its entire lifetime. Writers install a freshly compiled
// Translator with Swap (epoch numbers increase by one per swap) and
// then Drain the returned retired epoch: Drain returns once the last
// in-flight reference is released, i.e. once no request can still be
// reading the old table.
//
// All methods are safe for concurrent use. Acquire/Release are two
// atomic operations in the common case; the retry in Acquire only
// triggers when a Swap lands between the load and the reference bump,
// so readers never block and swaps never stall admission.
type TranslatorHandle struct {
	cur atomic.Pointer[TranslatorEpoch]

	// swapMu serializes writers: concurrent Swaps must retire epochs in
	// installation order, or one of the racing epochs would be replaced
	// without ever being retired and its Drain would hang forever.
	// Readers never take it.
	swapMu sync.Mutex
}

// TranslatorEpoch pins one installed Translator generation: the
// immutable Translator, its epoch number, and the in-flight reference
// count used to drain it after a swap.
type TranslatorEpoch struct {
	tr    *Translator
	epoch uint64

	// refs counts Acquires plus one installation reference held by the
	// handle itself; the epoch is drained when it reaches zero, which
	// can only happen after Swap dropped the installation reference.
	refs      atomic.Int64
	drainOnce sync.Once
	drained   chan struct{}
}

// NewTranslatorHandle returns a handle serving tr as epoch 1.
func NewTranslatorHandle(tr *Translator) *TranslatorHandle {
	h := &TranslatorHandle{}
	h.cur.Store(newEpoch(tr, 1))
	return h
}

func newEpoch(tr *Translator, n uint64) *TranslatorEpoch {
	e := &TranslatorEpoch{tr: tr, epoch: n, drained: make(chan struct{})}
	e.refs.Store(1) // the installation reference, dropped by Swap
	return e
}

// Translator returns the epoch's immutable compiled table.
func (e *TranslatorEpoch) Translator() *Translator { return e.tr }

// Epoch returns the epoch's generation number (1 for the first table).
func (e *TranslatorEpoch) Epoch() uint64 { return e.epoch }

// Release drops one Acquire reference. The last release of a retired
// epoch marks it drained.
func (e *TranslatorEpoch) Release() {
	if e.refs.Add(-1) == 0 {
		// refs can touch zero more than once: a racing Acquire on an
		// already-retired epoch bumps it back up and re-releases (see
		// Acquire), so the drain signal must be idempotent.
		e.drainOnce.Do(func() { close(e.drained) })
	}
}

// Drain blocks until every reference to this retired epoch has been
// released — i.e. no in-flight request is still reading its table — or
// until ctx is done. Calling Drain on the still-installed epoch blocks
// until it is swapped out and drained (the installation reference is
// only dropped by Swap).
func (e *TranslatorEpoch) Drain(ctx context.Context) error {
	select {
	case <-e.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Acquire pins and returns the current epoch. The caller must Release
// it when done with the Translator (typically deferred for the request
// lifetime).
func (h *TranslatorHandle) Acquire() *TranslatorEpoch {
	for {
		e := h.cur.Load()
		e.refs.Add(1)
		if h.cur.Load() == e {
			return e
		}
		// A swap landed between the load and the bump: this epoch is
		// retired, and holding a fresh reference on it would stall its
		// drain. Back out and pin the new current epoch instead.
		e.Release()
	}
}

// Current returns the installed Translator and its epoch number
// without pinning it — an introspection read (readiness, status
// endpoints), not a license to translate: a request that will use the
// table must Acquire.
func (h *TranslatorHandle) Current() (*Translator, uint64) {
	e := h.cur.Load()
	return e.tr, e.epoch
}

// Swap atomically installs tr as the new current epoch and retires the
// previous one, dropping its installation reference. It returns the
// retired epoch so the caller can Drain it before releasing resources
// tied to the old table. Requests that acquired before the swap finish
// on the old table; requests acquiring after it see only the new one.
func (h *TranslatorHandle) Swap(tr *Translator) *TranslatorEpoch {
	h.swapMu.Lock()
	old := h.cur.Load()
	h.cur.Store(newEpoch(tr, old.epoch+1))
	h.swapMu.Unlock()
	old.Release()
	return old
}
