package core

import (
	"time"

	"twoview/internal/dataset"
)

// IterationStats records one step of table construction. The series over
// all iterations regenerates Fig. 2 of the paper (numbers of uncovered
// and erroneous items, and the evolution of the encoded lengths).
type IterationStats struct {
	Iteration  int     // 1-based
	Rule       Rule    // the rule added in this iteration
	Gain       float64 // Δ_{D,T}(rule) at the time of addition
	Score      float64 // L(D_L↔R, T) after the addition
	UncoveredL int     // |U_L| after the addition
	UncoveredR int     // |U_R|
	ErrorsL    int     // |E_L|
	ErrorsR    int     // |E_R|
	TableLen   float64 // L(T)
	CorrLenL   float64 // L(D_L←R | T) = L(C_L | T)
	CorrLenR   float64 // L(D_L→R | T) = L(C_R | T)
}

// TraceFunc observes each iteration of a TRANSLATOR algorithm as it runs.
type TraceFunc func(IterationStats)

// IterationFunc is the OnIteration progress hook shared by all three
// miners: it observes each added rule like TraceFunc and additionally
// steers the run — returning false stops mining cleanly after the
// current iteration (the partial table is returned with a nil error).
// It is invoked between search phases, never concurrently.
type IterationFunc func(IterationStats) bool

// Result is the output of a TRANSLATOR algorithm.
type Result struct {
	Table      *Table
	State      *State           // final state; Score, L%, |C|% etc.
	Iterations []IterationStats // one entry per added rule
	Runtime    time.Duration
}

// record captures the state after adding rule r and appends it to the
// result, forwarding to the trace and progress callbacks if any. It
// reports whether mining should continue: false as soon as the
// OnIteration hook asks for an early stop.
func (res *Result) record(s *State, r Rule, gain float64, trace TraceFunc, onIter IterationFunc) bool {
	it := IterationStats{
		Iteration:  len(res.Iterations) + 1,
		Rule:       r,
		Gain:       gain,
		Score:      s.Score(),
		UncoveredL: s.UncoveredOnes(dataset.Left),
		UncoveredR: s.UncoveredOnes(dataset.Right),
		ErrorsL:    s.ErrorOnes(dataset.Left),
		ErrorsR:    s.ErrorOnes(dataset.Right),
		TableLen:   s.TableLen(),
		CorrLenL:   s.CorrLen(dataset.Left),
		CorrLenR:   s.CorrLen(dataset.Right),
	}
	res.Iterations = append(res.Iterations, it)
	if trace != nil {
		trace(it)
	}
	if onIter != nil {
		return onIter(it)
	}
	return true
}

// GainEpsilon guards against accepting rules whose gain is positive
// only through floating-point noise. Exported for the sharded engine
// (internal/shard), which must apply the identical acceptance threshold
// to stay bit-identical to the monolith.
const GainEpsilon = 1e-9

// gainEpsilon is the package-internal name the miners predate the
// export with.
const gainEpsilon = GainEpsilon

// stopwatch starts timing and returns a function reporting the elapsed
// wall time. It is the single sanctioned wall-clock read in this
// package: the duration lands in Result.Runtime, which is observational
// metadata and never feeds back into a mining decision, so confining
// time.Now/Since here keeps the nowallclock invariant auditable at one
// site.
func stopwatch() func() time.Duration {
	start := time.Now() //lint:wallclock-ok observational: feeds Result.Runtime only, never a mining decision
	return func() time.Duration {
		return time.Since(start) //lint:wallclock-ok observational: feeds Result.Runtime only, never a mining decision
	}
}
