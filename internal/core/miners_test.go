package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/mdl"
)

// plantedDataset embeds a strong bidirectional association {l0,l1} <->
// {r0,r1} in 60 of 80 transactions plus background noise, so that the
// miners have something unambiguous to find.
func plantedDataset(t testing.TB, seed int64) *dataset.Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	d := dataset.MustNew(dataset.GenericNames("l", 6), dataset.GenericNames("r", 6))
	for i := 0; i < 80; i++ {
		var left, right []int
		if i < 60 {
			left = append(left, 0, 1)
			right = append(right, 0, 1)
		}
		for j := 2; j < 6; j++ {
			if r.Intn(5) == 0 {
				left = append(left, j)
			}
			if r.Intn(5) == 0 {
				right = append(right, j)
			}
		}
		if err := d.AddRow(left, right); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// Test harness for the ctx-first miners: run on context.Background()
// and fail the test on any error (uncancelled in-memory runs must not
// error).
func mustExact(tb testing.TB, d *dataset.Dataset, opt ExactOptions) *Result {
	tb.Helper()
	res, err := MineExact(context.Background(), d, opt)
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

func mustSelect(tb testing.TB, d *dataset.Dataset, cands []Candidate, opt SelectOptions) *Result {
	tb.Helper()
	res, err := MineSelect(context.Background(), d, cands, opt)
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

func mustGreedy(tb testing.TB, d *dataset.Dataset, cands []Candidate, opt GreedyOptions) *Result {
	tb.Helper()
	res, err := MineGreedy(context.Background(), d, cands, opt)
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

func mustCandidates(tb testing.TB, d *dataset.Dataset, minSupport, maxResults int, par ParallelOptions) []Candidate {
	tb.Helper()
	cands, err := MineCandidates(context.Background(), d, minSupport, maxResults, par)
	if err != nil {
		tb.Fatal(err)
	}
	return cands
}

// bruteForceBestRule enumerates every rule whose X∪Y occurs in the data
// (the paper's rule space) and returns the maximal gain.
func bruteForceBestRule(s *State) (Rule, float64, bool) {
	d := s.Dataset()
	nL, nR := d.Items(dataset.Left), d.Items(dataset.Right)
	var best Rule
	bestGain := 0.0
	found := false
	for mx := 1; mx < 1<<nL; mx++ {
		var x itemset.Itemset
		for i := 0; i < nL; i++ {
			if mx&(1<<i) != 0 {
				x = append(x, i)
			}
		}
		for my := 1; my < 1<<nR; my++ {
			var y itemset.Itemset
			for i := 0; i < nR; i++ {
				if my&(1<<i) != 0 {
					y = append(y, i)
				}
			}
			if d.JointSupportSet(x, y).Empty() {
				continue
			}
			for _, dir := range Directions {
				r := Rule{X: x, Dir: dir, Y: y}
				g := s.Gain(r)
				if g > bestGain || (found && g == bestGain && r.Compare(best) < 0) {
					best, bestGain, found = r, g, true
				}
			}
		}
	}
	return best, bestGain, found
}

func smallRandomDataset(r *rand.Rand) *dataset.Dataset {
	nL, nR := 2+r.Intn(3), 2+r.Intn(3)
	d := dataset.MustNew(dataset.GenericNames("l", nL), dataset.GenericNames("r", nR))
	n := 5 + r.Intn(20)
	for i := 0; i < n; i++ {
		var left, right []int
		for j := 0; j < nL; j++ {
			if r.Intn(2) == 0 {
				left = append(left, j)
			}
		}
		for j := 0; j < nR; j++ {
			if r.Intn(2) == 0 {
				right = append(right, j)
			}
		}
		d.AddRow(left, right)
	}
	return d
}

func TestBestRuleMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		d := smallRandomDataset(r)
		s := NewState(d, mdl.NewCoder(d))
		// Also verify mid-search states: add the brute-force best first.
		for step := 0; step < 2; step++ {
			wantRule, wantGain, wantFound := bruteForceBestRule(s)
			gotRule, gotGain, gotFound := bestRule(s, ExactOptions{})
			if wantFound != gotFound {
				t.Fatalf("trial %d step %d: found=%v, want %v", trial, step, gotFound, wantFound)
			}
			if !wantFound {
				break
			}
			if math.Abs(wantGain-gotGain) > 1e-9 {
				t.Fatalf("trial %d step %d: gain %v (%v), want %v (%v)",
					trial, step, gotGain, gotRule, wantGain, wantRule)
			}
			s.AddRule(gotRule)
		}
	}
}

func TestBestRulePruningAblation(t *testing.T) {
	// Disabling rub/qub must not change the result, only the work done.
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 20; trial++ {
		d := smallRandomDataset(r)
		s := NewState(d, mdl.NewCoder(d))
		r1, g1, f1 := bestRule(s, ExactOptions{})
		r2, g2, f2 := bestRule(s, ExactOptions{DisableRub: true})
		r3, g3, f3 := bestRule(s, ExactOptions{DisableQub: true})
		r4, g4, f4 := bestRule(s, ExactOptions{DisableRub: true, DisableQub: true})
		if f1 != f2 || f1 != f3 || f1 != f4 {
			t.Fatalf("trial %d: found flags differ", trial)
		}
		if !f1 {
			continue
		}
		for i, g := range []float64{g2, g3, g4} {
			if math.Abs(g-g1) > 1e-9 {
				t.Fatalf("trial %d: ablation %d changed gain: %v vs %v", trial, i, g, g1)
			}
		}
		for i, rr := range []Rule{r2, r3, r4} {
			if rr.Compare(r1) != 0 {
				t.Fatalf("trial %d: ablation %d changed rule: %v vs %v", trial, i, rr, r1)
			}
		}
	}
}

func TestMineExactFindsPlantedRule(t *testing.T) {
	d := plantedDataset(t, 5)
	res := mustExact(t, d, ExactOptions{})
	if res.Table.Size() == 0 {
		t.Fatal("no rules found")
	}
	first := res.Table.Rules[0]
	if !first.X.Equal(itemset.New(0, 1)) || !first.Y.Equal(itemset.New(0, 1)) || first.Dir != Both {
		t.Fatalf("first rule = %v, want {0 1} <-> {0 1}", first)
	}
	if res.State.CompressionRatio() >= 100 {
		t.Fatalf("L%% = %v, expected compression", res.State.CompressionRatio())
	}
	// Gains must be decreasing is not guaranteed, but all must be positive
	// and the score must strictly decrease.
	prev := res.State.Baseline()
	for _, it := range res.Iterations {
		if it.Gain <= 0 {
			t.Fatalf("iteration %d has non-positive gain %v", it.Iteration, it.Gain)
		}
		if it.Score >= prev {
			t.Fatalf("score did not decrease at iteration %d", it.Iteration)
		}
		prev = it.Score
	}
}

func TestMineExactMaxRules(t *testing.T) {
	d := plantedDataset(t, 6)
	res := mustExact(t, d, ExactOptions{MaxRules: 1})
	if res.Table.Size() != 1 {
		t.Fatalf("MaxRules=1 produced %d rules", res.Table.Size())
	}
}

func TestMineExactTrace(t *testing.T) {
	d := plantedDataset(t, 7)
	var seen int
	res := mustExact(t, d, ExactOptions{Trace: func(it IterationStats) { seen++ }})
	if seen != len(res.Iterations) {
		t.Fatalf("trace saw %d iterations, result has %d", seen, len(res.Iterations))
	}
}

func TestMineSelectBasics(t *testing.T) {
	d := plantedDataset(t, 8)
	cands, err := MineCandidates(context.Background(), d, 1, 0, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	res := mustSelect(t, d, cands, SelectOptions{K: 1})
	if res.Table.Size() == 0 {
		t.Fatal("SELECT(1) found nothing")
	}
	first := res.Table.Rules[0]
	if !first.X.Equal(itemset.New(0, 1)) || !first.Y.Equal(itemset.New(0, 1)) {
		t.Fatalf("SELECT first rule = %v", first)
	}
	if res.State.CompressionRatio() >= 100 {
		t.Fatal("SELECT did not compress")
	}
	// The EXACT compression is at least as good on this easy data.
	exact := mustExact(t, d, ExactOptions{})
	if exact.State.Score() > res.State.Score()+1e-6 {
		t.Fatalf("EXACT (%v) worse than SELECT (%v)", exact.State.Score(), res.State.Score())
	}
}

func TestMineSelectKBatches(t *testing.T) {
	d := plantedDataset(t, 9)
	cands, err := MineCandidates(context.Background(), d, 1, 0, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k1 := mustSelect(t, d, cands, SelectOptions{K: 1})
	k25 := mustSelect(t, d, cands, SelectOptions{K: 25})
	// Both must compress; k=25 may be slightly worse but never inflate.
	if k1.State.CompressionRatio() >= 100 || k25.State.CompressionRatio() >= 100 {
		t.Fatal("SELECT variants failed to compress")
	}
	// Determinism.
	again := mustSelect(t, d, cands, SelectOptions{K: 25})
	if again.Table.Size() != k25.Table.Size() {
		t.Fatal("SELECT(25) not deterministic")
	}
	for i := range again.Table.Rules {
		if again.Table.Rules[i].Compare(k25.Table.Rules[i]) != 0 {
			t.Fatal("SELECT(25) rule order not deterministic")
		}
	}
}

func TestMineSelectOverlapFilter(t *testing.T) {
	// With K large, rules added in one round must not share items on
	// either side within that round. We can't observe rounds from the
	// result alone, so use a trace that groups by round via score
	// boundaries: instead, simply check the first round: run with
	// MaxRules equal to what one round can add and validate disjointness.
	d := plantedDataset(t, 10)
	cands, err := MineCandidates(context.Background(), d, 1, 0, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := mustSelect(t, d, cands, SelectOptions{K: 1000, MaxRules: 1000})
	if res.Table.Size() == 0 {
		t.Fatal("nothing mined")
	}
	// All rules valid and gains positive.
	if err := res.Table.Validate(d); err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Iterations {
		if it.Gain <= 0 {
			t.Fatalf("non-positive gain %v", it.Gain)
		}
	}
}

func TestMineGreedyBasics(t *testing.T) {
	d := plantedDataset(t, 11)
	cands, err := MineCandidates(context.Background(), d, 1, 0, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := mustGreedy(t, d, cands, GreedyOptions{})
	if res.Table.Size() == 0 {
		t.Fatal("GREEDY found nothing")
	}
	if res.State.CompressionRatio() >= 100 {
		t.Fatal("GREEDY did not compress")
	}
	if err := res.Table.Validate(d); err != nil {
		t.Fatal(err)
	}
	// Determinism.
	again := mustGreedy(t, d, cands, GreedyOptions{})
	if again.Table.Size() != res.Table.Size() {
		t.Fatal("GREEDY not deterministic")
	}
	// MaxRules respected.
	one := mustGreedy(t, d, cands, GreedyOptions{MaxRules: 1})
	if one.Table.Size() != 1 {
		t.Fatalf("MaxRules=1 gave %d rules", one.Table.Size())
	}
}

func TestMinersScoreConsistency(t *testing.T) {
	// For every miner, the recorded final score must equal an independent
	// EvaluateTable replay of the mined table.
	d := plantedDataset(t, 12)
	cands, err := MineCandidates(context.Background(), d, 1, 0, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	results := map[string]*Result{
		"exact":  mustExact(t, d, ExactOptions{}),
		"select": mustSelect(t, d, cands, SelectOptions{K: 1}),
		"greedy": mustGreedy(t, d, cands, GreedyOptions{}),
	}
	coder := mdl.NewCoder(d)
	for name, res := range results {
		replay := EvaluateTable(d, coder, res.Table)
		if math.Abs(replay.Score()-res.State.Score()) > 1e-6 {
			t.Errorf("%s: replay score %v != miner score %v", name, replay.Score(), res.State.Score())
		}
	}
}

func TestMineCandidatesRespectsMinSupport(t *testing.T) {
	d := plantedDataset(t, 13)
	cands, err := MineCandidates(context.Background(), d, 30, 0, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Supp < 30 {
			t.Fatalf("candidate %v/%v has supp %d < 30", c.X, c.Y, c.Supp)
		}
		if c.X.Empty() || c.Y.Empty() {
			t.Fatal("candidate not two-view")
		}
		if c.TidX.Count() < c.Supp || c.TidY.Count() < c.Supp {
			t.Fatal("per-side support below joint support")
		}
	}
	if _, err := MineCandidates(context.Background(), d, 1, 2, ParallelOptions{}); err == nil {
		t.Fatal("MaxResults guard did not trigger")
	}
}

func TestMineCandidatesCapped(t *testing.T) {
	d := plantedDataset(t, 14)
	// Uncapped: equivalent to MineCandidates.
	a, ms, err := MineCandidatesCapped(context.Background(), d, 1, 0, ParallelOptions{})
	if err != nil || ms != 1 {
		t.Fatalf("uncapped: ms=%d err=%v", ms, err)
	}
	b, err := MineCandidates(context.Background(), d, 1, 0, ParallelOptions{})
	if err != nil || len(a) != len(b) {
		t.Fatalf("uncapped mismatch: %d vs %d", len(a), len(b))
	}
	// Tight cap: support must rise until the candidate set fits.
	capped, ms, err := MineCandidatesCapped(context.Background(), d, 1, 10, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) > 10 || ms <= 1 {
		t.Fatalf("cap not honoured: %d cands at minsup %d", len(capped), ms)
	}
	for _, c := range capped {
		if c.Supp < ms {
			t.Fatalf("candidate below effective minsup: %d < %d", c.Supp, ms)
		}
	}
}
