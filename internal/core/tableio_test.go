package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"twoview/internal/dataset"
	"twoview/internal/itemset"
)

func TestTableWriteReadRoundTrip(t *testing.T) {
	d := fig1(t)
	tab := &Table{Rules: []Rule{
		{X: itemset.New(0, 1), Dir: Both, Y: itemset.New(1, 5)},
		{X: itemset.New(2), Dir: Forward, Y: itemset.New(4)},
		{X: itemset.New(3), Dir: Backward, Y: itemset.New(3)},
	}}
	var buf bytes.Buffer
	if err := WriteTable(&buf, d, tab); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf, d)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != tab.Size() {
		t.Fatalf("round trip lost rules: %d != %d", got.Size(), tab.Size())
	}
	for i := range tab.Rules {
		if got.Rules[i].Compare(tab.Rules[i]) != 0 {
			t.Fatalf("rule %d: %v != %v", i, got.Rules[i], tab.Rules[i])
		}
	}
}

func TestTableFileRoundTrip(t *testing.T) {
	d := fig1(t)
	tab := &Table{Rules: []Rule{
		{X: itemset.New(0), Dir: Both, Y: itemset.New(0)},
	}}
	path := filepath.Join(t.TempDir(), "rules.tt")
	if err := WriteTableFile(path, d, tab); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTableFile(path, d)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 1 || got.Rules[0].Compare(tab.Rules[0]) != 0 {
		t.Fatal("file round trip wrong")
	}
}

func TestReadTableSyntax(t *testing.T) {
	d := fig1(t)
	in := `
# comment
A, B <-> L, U
C -> S
D <- Q
`
	tab, err := ReadTable(strings.NewReader(in), d)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Size() != 3 {
		t.Fatalf("parsed %d rules", tab.Size())
	}
	if tab.Rules[0].Dir != Both || tab.Rules[1].Dir != Forward || tab.Rules[2].Dir != Backward {
		t.Fatal("directions wrong")
	}
	if !tab.Rules[0].X.Equal(itemset.New(0, 1)) || !tab.Rules[0].Y.Equal(itemset.New(1, 5)) {
		t.Fatalf("rule 0 itemsets wrong: %v", tab.Rules[0])
	}
	// Names out of order canonicalize.
	tab, err = ReadTable(strings.NewReader("B, A -> U, L\n"), d)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Rules[0].X.IsCanonical() || !tab.Rules[0].Y.IsCanonical() {
		t.Fatal("itemsets not canonicalized")
	}
}

func TestReadTableErrors(t *testing.T) {
	d := fig1(t)
	for name, in := range map[string]string{
		"no direction":         "A, B\n",
		"unknown left":         "Z -> S\n",
		"unknown right":        "A -> Z\n",
		"empty left":           " -> S\n",
		"empty right":          "A -> \n",
		"reversed glyph":       "A >- S\n",
		"doubled glyph":        "A ->> S\n", // parses as ->, then "> S" is unknown
		"spaced glyph":         "A - > S\n",
		"wrong-case name":      "a -> S\n",
		"direction only":       "->\n",
		"swapped views":        "K -> A\n", // right-view name on the left side
		"truncated mid-rule":   "A, B <-> L, U\nC -",
		"truncated mid-name":   "A, B <-> L, U\nC -> SOMETHINGLON",
		"binary junk":          "\x00\x01\x02 -> S\n",
		"comma only left side": ", -> S\n",
	} {
		if _, err := ReadTable(strings.NewReader(in), d); err == nil {
			t.Errorf("%s: no error for %q", name, in)
		}
	}
}

// Error messages must carry the offending line number so stored tables
// can be fixed by hand.
func TestReadTableErrorLineNumbers(t *testing.T) {
	d := fig1(t)
	in := "# header comment\nA -> S\n\nZ -> S\n"
	_, err := ReadTable(strings.NewReader(in), d)
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error does not name line 4: %v", err)
	}
	if !strings.Contains(err.Error(), `"Z"`) {
		t.Fatalf("error does not name the unknown item: %v", err)
	}
}

// errReader fails after yielding its prefix, like a truncated or broken
// stream; the reader error must propagate out of ReadTable.
type errReader struct {
	data []byte
	err  error
}

func (r *errReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

func TestReadTableReaderError(t *testing.T) {
	d := fig1(t)
	broken := errors.New("disk gone")
	// The prefix ends on a complete line: the parse succeeds up to the
	// cut and the stream error itself must surface.
	_, err := ReadTable(&errReader{data: []byte("A -> S\n"), err: broken}, d)
	if !errors.Is(err, broken) {
		t.Fatalf("reader error not propagated: %v", err)
	}
	// A truncated final line (no trailing newline, stream broken) still
	// errors — as a parse failure of the partial line.
	if _, err := ReadTable(&errReader{data: []byte("A -> S\nB -> "), err: broken}, d); err == nil {
		t.Fatal("truncated final line accepted")
	}
}

// A line longer than the scanner's 4 MiB ceiling is an error, not an
// OOM or a silent truncation.
func TestReadTableOverlongLine(t *testing.T) {
	d := fig1(t)
	long := "A -> S, " + strings.Repeat("S, ", 1<<21) + "S\n"
	if _, err := ReadTable(strings.NewReader(long), d); err == nil {
		t.Fatal("overlong line accepted")
	}
}

func TestWriteTableValidates(t *testing.T) {
	d := fig1(t)
	bad := &Table{Rules: []Rule{{X: itemset.New(99), Dir: Forward, Y: itemset.New(0)}}}
	var buf bytes.Buffer
	if err := WriteTable(&buf, d, bad); err == nil {
		t.Fatal("invalid rule serialized")
	}
}

func TestQuickTableRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d, tab := randomDataAndTable(r)
		var buf bytes.Buffer
		if err := WriteTable(&buf, d, tab); err != nil {
			return false
		}
		got, err := ReadTable(&buf, d)
		if err != nil || got.Size() != tab.Size() {
			return false
		}
		for i := range tab.Rules {
			if got.Rules[i].Compare(tab.Rules[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyReport(t *testing.T) {
	d := fig1(t)
	tab := &Table{Rules: []Rule{
		{X: itemset.New(0, 1), Dir: Both, Y: itemset.New(1, 5)},
	}}
	rep, err := Apply(context.Background(), d, tab, dataset.Left)
	if err != nil {
		t.Fatal(err)
	}
	if rep.From != dataset.Left {
		t.Fatal("From wrong")
	}
	if rep.Cells != d.Size()*d.Items(dataset.Right) {
		t.Fatal("Cells wrong")
	}
	// {A,B} occurs in rows 0, 3, 4 → 3 applications × 2 items.
	if rep.TranslatedOnes != 6 {
		t.Fatalf("TranslatedOnes = %d, want 6", rep.TranslatedOnes)
	}
	// Consistency with the state implementation.
	s := newStateFor(t, d)
	s.AddRule(tab.Rules[0])
	if rep.Uncovered != s.UncoveredOnes(dataset.Right) || rep.Errors != s.ErrorOnes(dataset.Right) {
		t.Fatalf("Apply (%d,%d) disagrees with state (%d,%d)",
			rep.Uncovered, rep.Errors,
			s.UncoveredOnes(dataset.Right), s.ErrorOnes(dataset.Right))
	}
}
