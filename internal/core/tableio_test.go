package core

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"twoview/internal/dataset"
	"twoview/internal/itemset"
)

func TestTableWriteReadRoundTrip(t *testing.T) {
	d := fig1(t)
	tab := &Table{Rules: []Rule{
		{X: itemset.New(0, 1), Dir: Both, Y: itemset.New(1, 5)},
		{X: itemset.New(2), Dir: Forward, Y: itemset.New(4)},
		{X: itemset.New(3), Dir: Backward, Y: itemset.New(3)},
	}}
	var buf bytes.Buffer
	if err := WriteTable(&buf, d, tab); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf, d)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != tab.Size() {
		t.Fatalf("round trip lost rules: %d != %d", got.Size(), tab.Size())
	}
	for i := range tab.Rules {
		if got.Rules[i].Compare(tab.Rules[i]) != 0 {
			t.Fatalf("rule %d: %v != %v", i, got.Rules[i], tab.Rules[i])
		}
	}
}

func TestTableFileRoundTrip(t *testing.T) {
	d := fig1(t)
	tab := &Table{Rules: []Rule{
		{X: itemset.New(0), Dir: Both, Y: itemset.New(0)},
	}}
	path := filepath.Join(t.TempDir(), "rules.tt")
	if err := WriteTableFile(path, d, tab); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTableFile(path, d)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 1 || got.Rules[0].Compare(tab.Rules[0]) != 0 {
		t.Fatal("file round trip wrong")
	}
}

func TestReadTableSyntax(t *testing.T) {
	d := fig1(t)
	in := `
# comment
A, B <-> L, U
C -> S
D <- Q
`
	tab, err := ReadTable(strings.NewReader(in), d)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Size() != 3 {
		t.Fatalf("parsed %d rules", tab.Size())
	}
	if tab.Rules[0].Dir != Both || tab.Rules[1].Dir != Forward || tab.Rules[2].Dir != Backward {
		t.Fatal("directions wrong")
	}
	if !tab.Rules[0].X.Equal(itemset.New(0, 1)) || !tab.Rules[0].Y.Equal(itemset.New(1, 5)) {
		t.Fatalf("rule 0 itemsets wrong: %v", tab.Rules[0])
	}
	// Names out of order canonicalize.
	tab, err = ReadTable(strings.NewReader("B, A -> U, L\n"), d)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Rules[0].X.IsCanonical() || !tab.Rules[0].Y.IsCanonical() {
		t.Fatal("itemsets not canonicalized")
	}
}

func TestReadTableErrors(t *testing.T) {
	d := fig1(t)
	for name, in := range map[string]string{
		"no direction":  "A, B\n",
		"unknown left":  "Z -> S\n",
		"unknown right": "A -> Z\n",
		"empty left":    " -> S\n",
		"empty right":   "A -> \n",
	} {
		if _, err := ReadTable(strings.NewReader(in), d); err == nil {
			t.Errorf("%s: no error for %q", name, in)
		}
	}
}

func TestWriteTableValidates(t *testing.T) {
	d := fig1(t)
	bad := &Table{Rules: []Rule{{X: itemset.New(99), Dir: Forward, Y: itemset.New(0)}}}
	var buf bytes.Buffer
	if err := WriteTable(&buf, d, bad); err == nil {
		t.Fatal("invalid rule serialized")
	}
}

func TestQuickTableRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d, tab := randomDataAndTable(r)
		var buf bytes.Buffer
		if err := WriteTable(&buf, d, tab); err != nil {
			return false
		}
		got, err := ReadTable(&buf, d)
		if err != nil || got.Size() != tab.Size() {
			return false
		}
		for i := range tab.Rules {
			if got.Rules[i].Compare(tab.Rules[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyReport(t *testing.T) {
	d := fig1(t)
	tab := &Table{Rules: []Rule{
		{X: itemset.New(0, 1), Dir: Both, Y: itemset.New(1, 5)},
	}}
	rep := Apply(d, tab, dataset.Left)
	if rep.From != dataset.Left {
		t.Fatal("From wrong")
	}
	if rep.Cells != d.Size()*d.Items(dataset.Right) {
		t.Fatal("Cells wrong")
	}
	// {A,B} occurs in rows 0, 3, 4 → 3 applications × 2 items.
	if rep.TranslatedOnes != 6 {
		t.Fatalf("TranslatedOnes = %d, want 6", rep.TranslatedOnes)
	}
	// Consistency with the state implementation.
	s := newStateFor(t, d)
	s.AddRule(tab.Rules[0])
	if rep.Uncovered != s.UncoveredOnes(dataset.Right) || rep.Errors != s.ErrorOnes(dataset.Right) {
		t.Fatalf("Apply (%d,%d) disagrees with state (%d,%d)",
			rep.Uncovered, rep.Errors,
			s.UncoveredOnes(dataset.Right), s.ErrorOnes(dataset.Right))
	}
}
