package core

import (
	"context"
	"fmt"
	"io"
	"math/bits"
	"slices"
	"sync"

	"twoview/internal/bitset"
	"twoview/internal/dataset"
)

// This file implements the compiled serving layer: a Translator is a
// translation table prepared once against a dataset's vocabularies so
// that the per-row cost of "mine once, Apply many" serving is a few
// posting-list walks and word-level set operations instead of a full
// rule scan with per-item subset probes.
//
// Compilation builds, per translation direction, an item-indexed
// posting list (post[i] = the rules whose antecedent contains item i)
// plus per-rule LHS/RHS bit masks. A row is translated with the
// counting subset matcher: walking the postings of the row's items
// increments one counter per touched rule, and a rule fires exactly
// when its counter reaches its antecedent size — each rule is examined
// proportionally to its overlap with the row, so rules whose antecedent
// shares nothing with the row cost nothing. The LHS masks additionally
// power MatchingRules, the word-level per-rule subset test used for
// serving-side introspection.

// Corrections is the per-transaction correction pair of the lossless
// translation scheme (§3 of the paper): for a translated row t′ and
// the true target-view row t, Uncovered = t \ t′ (the U table) and
// Errors = t′ \ t (the E table). t is reconstructed losslessly as
// t′ ⊕ (U ∪ E).
type Corrections struct {
	Uncovered []int
	Errors    []int
}

// Translator is a translation table compiled against a dataset's
// vocabularies for repeated application — the serving-side artifact of
// "mine once, Apply many". Compile it once with CompileTranslator and
// share it freely: a Translator is immutable after compilation and all
// its methods are safe for concurrent use by any number of goroutines
// (per-call scratch is pooled internally), so one instance can serve
// every request thread of a process.
type Translator struct {
	names   [2][]string // vocabularies captured at compile time, by view
	items   [2]int      // vocabulary sizes, by view
	dirs    [2]compiledDir
	nRules  int // rules in the source table
	scratch sync.Pool
}

// compiledDir is the compiled program for one translation direction,
// indexed by the from-view.
type compiledDir struct {
	rules []compiledRule
	post  [][]int32 // post[fromItem] = indices into rules
}

// compiledRule is one rule prepared for the counting matcher.
type compiledRule struct {
	lhs      *bitset.Set // antecedent mask over the from vocabulary
	rhs      *bitset.Set // consequent mask over the target vocabulary
	lhsLen   int32       // |antecedent|: the counter value at which the rule fires
	tableIdx int32       // index of the rule in the source table
}

// translatorScratch is the per-call working set: one rule-hit counter
// slice (shared by both directions; sized to the larger), the matching
// generation tags, one translation accumulator per target view, and one
// id-built row per from view (for the TranslateIDs entry).
//
// The counters are reset lazily via the generation tags: a counter is
// valid only when its tag equals the scratch's current generation, and
// every row bumps the generation instead of clearing the whole counter
// prefix. That makes the per-row reset cost O(rules touched by the row)
// instead of O(|T|) — on thousand-rule tables with sparse rows the
// clear of the counter slice used to dominate the matcher itself (see
// BenchmarkTranslatorSparseRow).
type translatorScratch struct {
	counts []int32
	gens   []uint32
	gen    uint32
	out    [2]*bitset.Set // indexed by the *target* view
	row    [2]*bitset.Set // indexed by the *from* view
}

// nextGen advances the scratch to a fresh generation, invalidating
// every counter in O(1). On uint32 wraparound (once per 2^32 rows) the
// tags are resynchronized with one full clear so a stale tag from four
// billion rows ago can never alias the new generation.
func (sc *translatorScratch) nextGen() uint32 {
	sc.gen++
	if sc.gen == 0 {
		clear(sc.gens)
		sc.gen = 1
	}
	return sc.gen
}

// CompileTranslator compiles t against d's vocabularies. The table is
// validated first (itemsets canonical and within the vocabularies);
// compilation is O(Σ |rule|) and the result references only its own
// storage, so d and t may be mutated or discarded afterwards.
func CompileTranslator(d *dataset.Dataset, t *Table) (*Translator, error) {
	if err := t.Validate(d); err != nil {
		return nil, fmt.Errorf("core: cannot compile translator: %w", err)
	}
	tr := &Translator{nRules: t.Size()}
	for _, v := range []dataset.View{dataset.Left, dataset.Right} {
		tr.names[v] = slices.Clone(d.Names(v))
		tr.items[v] = d.Items(v)
	}
	for _, from := range []dataset.View{dataset.Left, dataset.Right} {
		cd := &tr.dirs[from]
		nFrom, nTo := tr.items[from], tr.items[from.Opposite()]
		cd.post = make([][]int32, nFrom)
		for ti, r := range t.Rules {
			if !r.AppliesTo(from) {
				continue
			}
			ante, cons := r.Antecedent(from), r.Consequent(from)
			idx := int32(len(cd.rules))
			cd.rules = append(cd.rules, compiledRule{
				lhs:      bitset.FromIndices(nFrom, ante),
				rhs:      bitset.FromIndices(nTo, cons),
				lhsLen:   int32(len(ante)),
				tableIdx: int32(ti),
			})
			for _, i := range ante {
				cd.post[i] = append(cd.post[i], idx)
			}
		}
	}
	return tr, nil
}

// Items returns the compiled vocabulary size of view v.
func (tr *Translator) Items(v dataset.View) int { return tr.items[v] }

// Rules returns the number of rules in the compiled table.
func (tr *Translator) Rules() int { return tr.nRules }

func (tr *Translator) getScratch() *translatorScratch {
	sc, _ := tr.scratch.Get().(*translatorScratch)
	if sc == nil {
		n := max(len(tr.dirs[0].rules), len(tr.dirs[1].rules))
		sc = &translatorScratch{counts: make([]int32, n), gens: make([]uint32, n)}
		sc.out[dataset.Left] = bitset.New(tr.items[dataset.Left])
		sc.out[dataset.Right] = bitset.New(tr.items[dataset.Right])
		sc.row[dataset.Left] = bitset.New(tr.items[dataset.Left])
		sc.row[dataset.Right] = bitset.New(tr.items[dataset.Right])
	}
	return sc
}

func (tr *Translator) putScratch(sc *translatorScratch) { tr.scratch.Put(sc) }

// checkRow panics when row's width does not match the compiled from
// vocabulary — the same misuse TranslateRow would surface as an opaque
// range panic deep in a bit operation.
func (tr *Translator) checkRow(from dataset.View, row *bitset.Set) {
	if row.Len() != tr.items[from] {
		panic(fmt.Sprintf("core: Translator: row has %d items, compiled %v vocabulary has %d",
			row.Len(), from, tr.items[from]))
	}
}

// translateInto writes the translation t′ of row into out using the
// counting matcher. Counter hygiene is generational: the row starts a
// fresh generation and a counter is zeroed the first time its rule is
// touched, so rules the row never overlaps cost nothing — neither a
// probe nor a clear.
func (cd *compiledDir) translateInto(out *bitset.Set, row *bitset.Set, sc *translatorScratch) {
	out.Clear()
	gen := sc.nextGen()
	counts, gens := sc.counts, sc.gens
	for wi, w := range row.Words() {
		base := wi * bitset.WordBits
		for w != 0 {
			i := base + bits.TrailingZeros64(w)
			w &= w - 1
			for _, ri := range cd.post[i] {
				if gens[ri] != gen {
					gens[ri] = gen
					counts[ri] = 0
				}
				if counts[ri]++; counts[ri] == cd.rules[ri].lhsLen {
					out.Or(cd.rules[ri].rhs)
				}
			}
		}
	}
}

// Translate translates one from-view row through the compiled table and
// returns the translated target-view item ids in ascending order — the
// t′ of Algorithm 1, bit-identical to the reference TranslateRow. Safe
// for concurrent use.
func (tr *Translator) Translate(from dataset.View, row *bitset.Set) []int {
	return tr.TranslateInto(nil, from, row)
}

// TranslateInto is Translate appending into dst, for callers that
// recycle the id buffer across rows.
func (tr *Translator) TranslateInto(dst []int, from dataset.View, row *bitset.Set) []int {
	tr.checkRow(from, row)
	sc := tr.getScratch()
	out := sc.out[from.Opposite()]
	tr.dirs[from].translateInto(out, row, sc)
	dst = out.AppendIndices(dst)
	tr.putScratch(sc)
	return dst
}

// NewRow builds a from-view row for the per-row serving methods from
// item ids, validated against the compiled vocabulary. Use it when
// fresh traffic arrives as ids and the caller wants to reuse one row
// across requests (refill it via Dataset-independent code); for the
// one-shot form see TranslateIDs.
func (tr *Translator) NewRow(from dataset.View, ids []int) (*bitset.Set, error) {
	row := bitset.New(tr.items[from])
	if err := fillRow(row, ids); err != nil {
		return nil, fmt.Errorf("core: %v row: %w", from, err)
	}
	return row, nil
}

// TranslateIDs translates one from-view transaction given directly as
// item ids — the serving entry for fresh traffic that arrives as ids
// rather than prebuilt rows. The translated target-view ids are
// appended to dst in ascending order. Out-of-vocabulary ids error.
// Safe for concurrent use; steady-state calls allocate nothing beyond
// dst's growth.
func (tr *Translator) TranslateIDs(dst []int, from dataset.View, ids []int) ([]int, error) {
	sc := tr.getScratch()
	defer tr.putScratch(sc)
	row := sc.row[from]
	if err := fillRow(row, ids); err != nil {
		return dst, fmt.Errorf("core: %v row: %w", from, err)
	}
	out := sc.out[from.Opposite()]
	tr.dirs[from].translateInto(out, row, sc)
	return out.AppendIndices(dst), nil
}

// TranslateCorrect translates row and derives the corrections against
// truth, the actual target-view row: Uncovered = truth \ t′ and
// Errors = t′ \ truth. Together with the returned translation the
// caller can reconstruct truth losslessly (t = t′ ⊕ (U ∪ E)). Safe for
// concurrent use.
func (tr *Translator) TranslateCorrect(from dataset.View, row, truth *bitset.Set) ([]int, Corrections) {
	tr.checkRow(from, row)
	target := from.Opposite()
	if truth.Len() != tr.items[target] {
		panic(fmt.Sprintf("core: Translator: truth has %d items, compiled %v vocabulary has %d",
			truth.Len(), target, tr.items[target]))
	}
	sc := tr.getScratch()
	out := sc.out[target]
	tr.dirs[from].translateInto(out, row, sc)
	trans := out.AppendIndices(nil)
	var c Corrections
	truth.ForEach(func(i int) bool {
		if !out.Contains(i) {
			c.Uncovered = append(c.Uncovered, i)
		}
		return true
	})
	out.ForEach(func(i int) bool {
		if !truth.Contains(i) {
			c.Errors = append(c.Errors, i)
		}
		return true
	})
	tr.putScratch(sc)
	return trans, c
}

// MatchingRules returns the table indices (in table order) of the rules
// that fire on the given from-view row — the serving-side introspection
// hook ("why was this item produced?"). It runs the word-level LHS-mask
// subset test per applicable rule. Safe for concurrent use.
func (tr *Translator) MatchingRules(from dataset.View, row *bitset.Set) []int {
	tr.checkRow(from, row)
	var out []int
	for i := range tr.dirs[from].rules {
		cr := &tr.dirs[from].rules[i]
		if cr.lhs.SubsetOf(row) {
			out = append(out, int(cr.tableIdx))
		}
	}
	return out
}

// translateCtxProbe bounds the cancellation latency of the batch and
// stream paths: one ctx.Err() probe every 256 rows.
const translateCtxProbe = 256 - 1

// TranslateBatch translates every row of view from of d, returning one
// ascending id slice per transaction (t′ for the whole view, the
// serving-side counterpart of the reference Translate). Cancelling ctx
// aborts between rows with ctx.Err(). Safe for concurrent use; for
// parallel serving, shard the transactions across goroutines and call
// it per shard.
func (tr *Translator) TranslateBatch(ctx context.Context, d *dataset.Dataset, from dataset.View) ([][]int, error) {
	if err := tr.compatible(d); err != nil {
		return nil, err
	}
	sc := tr.getScratch()
	defer tr.putScratch(sc)
	cd := &tr.dirs[from]
	out := sc.out[from.Opposite()]
	res := make([][]int, d.Size())
	// One amortized arena backs every row's ids: growth reallocations
	// leave already-sliced rows pointing at the previous backing array,
	// which stays valid — so the batch does O(log n) allocations instead
	// of one per row.
	arena := make([]int, 0, d.Size()*2)
	for t := 0; t < d.Size(); t++ {
		if t&translateCtxProbe == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		cd.translateInto(out, d.Row(from, t), sc)
		start := len(arena)
		arena = out.AppendIndices(arena)
		res[t] = arena[start:len(arena):len(arena)]
	}
	return res, nil
}

// TranslateBatchIDs is TranslateBatch for rows given directly as item
// id lists — the serving daemon's batch entry, where a request body
// carries many transactions that never exist as a Dataset. All rows are
// translated through one pooled scratch and one amortized arena (same
// O(log n) allocation contract as TranslateBatch). Out-of-vocabulary
// ids fail the whole batch with the offending row's index; cancelling
// ctx aborts between rows with ctx.Err(). Safe for concurrent use.
func (tr *Translator) TranslateBatchIDs(ctx context.Context, from dataset.View, rows [][]int) ([][]int, error) {
	sc := tr.getScratch()
	defer tr.putScratch(sc)
	cd := &tr.dirs[from]
	out := sc.out[from.Opposite()]
	row := sc.row[from]
	res := make([][]int, len(rows))
	arena := make([]int, 0, len(rows)*2)
	for t, ids := range rows {
		if t&translateCtxProbe == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if err := fillRow(row, ids); err != nil {
			return nil, fmt.Errorf("core: row %d: %w", t, err)
		}
		cd.translateInto(out, row, sc)
		start := len(arena)
		arena = out.AppendIndices(arena)
		res[t] = arena[start:len(arena):len(arena)]
	}
	return res, nil
}

// Apply applies the compiled table to every transaction of d and
// reports the translation and correction statistics — the serving-path
// equivalent of the package-level Apply, reproducing its report
// bit-for-bit without materializing per-row translation or correction
// sets. d may be any dataset over vocabularies of the compiled sizes
// (the mined dataset, a holdout split, fresh traffic). Cancelling ctx
// aborts between rows with ctx.Err(). Safe for concurrent use.
func (tr *Translator) Apply(ctx context.Context, d *dataset.Dataset, from dataset.View) (ApplyReport, error) {
	if err := tr.compatible(d); err != nil {
		return ApplyReport{}, err
	}
	target := from.Opposite()
	rep := ApplyReport{From: from, Cells: d.Size() * d.Items(target)}
	sc := tr.getScratch()
	defer tr.putScratch(sc)
	cd := &tr.dirs[from]
	out := sc.out[target]
	for t := 0; t < d.Size(); t++ {
		if t&translateCtxProbe == 0 {
			if err := ctx.Err(); err != nil {
				return ApplyReport{}, err
			}
		}
		cd.translateInto(out, d.Row(from, t), sc)
		truth := d.Row(target, t)
		rep.TranslatedOnes += out.Count()
		rep.Uncovered += bitset.AndNotCount(truth, out) // |t \ t′| = |U_t|
		rep.Errors += bitset.AndNotCount(out, truth)    // |t′ \ t| = |E_t|
	}
	return rep, nil
}

// ApplyStream is Apply over the text dataset format read incrementally:
// transactions are translated and scored as they are parsed, so
// datasets far larger than memory stream through in one pass. The
// stream's L/R vocabularies must match the compiled ones exactly (names
// and order). Cancelling ctx aborts between rows with ctx.Err(). Safe
// for concurrent use.
func (tr *Translator) ApplyStream(ctx context.Context, r io.Reader, from dataset.View) (ApplyReport, error) {
	rr := dataset.NewRowReader(r)
	namesL, namesR, err := rr.Header()
	if err != nil {
		return ApplyReport{}, err
	}
	if !slices.Equal(namesL, tr.names[dataset.Left]) || !slices.Equal(namesR, tr.names[dataset.Right]) {
		return ApplyReport{}, fmt.Errorf("core: stream vocabularies do not match the compiled translator")
	}
	target := from.Opposite()
	sc := tr.getScratch()
	defer tr.putScratch(sc)
	cd := &tr.dirs[from]
	out := sc.out[target]
	rowF := bitset.New(tr.items[from])
	rowT := bitset.New(tr.items[target])
	rep := ApplyReport{From: from}
	for n := 0; ; n++ {
		if n&translateCtxProbe == 0 {
			if err := ctx.Err(); err != nil {
				return ApplyReport{}, err
			}
		}
		left, right, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return ApplyReport{}, err
		}
		src, dst := left, right
		if from == dataset.Right {
			src, dst = right, left
		}
		if err := fillRow(rowF, src); err != nil {
			return ApplyReport{}, fmt.Errorf("core: line %d: %w", rr.Line(), err)
		}
		if err := fillRow(rowT, dst); err != nil {
			return ApplyReport{}, fmt.Errorf("core: line %d: %w", rr.Line(), err)
		}
		cd.translateInto(out, rowF, sc)
		rep.TranslatedOnes += out.Count()
		rep.Uncovered += bitset.AndNotCount(rowT, out)
		rep.Errors += bitset.AndNotCount(out, rowT)
		rep.Cells += tr.items[target]
	}
	return rep, nil
}

// compatible checks that d's vocabulary sizes match the compiled ones;
// translation is id-based, so sizes (not names) are the hard contract.
func (tr *Translator) compatible(d *dataset.Dataset) error {
	for _, v := range []dataset.View{dataset.Left, dataset.Right} {
		if d.Items(v) != tr.items[v] {
			return fmt.Errorf("core: dataset has %d %v items, compiled translator has %d",
				d.Items(v), v, tr.items[v])
		}
	}
	return nil
}

// fillRow loads sorted-or-not item ids into a cleared row bitset,
// range-checking each id against the row's width. Callers add their
// own context (stream line, view) when wrapping the error.
func fillRow(row *bitset.Set, ids []int) error {
	row.Clear()
	for _, id := range ids {
		if id < 0 || id >= row.Len() {
			return fmt.Errorf("item %d out of range [0,%d)", id, row.Len())
		}
		row.Add(id)
	}
	return nil
}
