package core

import (
	"twoview/internal/bitset"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/mdl"
)

// This file is the state side of the sharded mining engine
// (internal/shard): PartialState is the columnar cover state restricted
// to one item-range partition, and ItemCount/GainFromCounts/CoverTotals
// are the pieces a coordinator needs to reassemble the monolith's exact
// float arithmetic from the partitions' integer summaries.
//
// The split of responsibilities is what makes sharding bit-identical:
//
//   - a partition performs only *integer* work — popcounts over its own
//     ucol/ecol columns (the same fused kernels gainDir/applyDir use) —
//     and ships per-item (covered, errors) pairs;
//   - the coordinator performs all *float* accumulation, in exactly the
//     order gainDir/applyDir would (consequent-item order, with the
//     same skip-on-equal guard), via GainFromCounts and CoverTotals.
//
// Integer counts are schedule- and failure-independent, so the merged
// floats are too: any shard count, any worker count, and any recovery
// history produce the same bits as the monolithic State.

// ItemCount is the unit of the sharded gain protocol: for one rule
// direction and one consequent item, the number of transactions where
// the item becomes covered and where it becomes a new error. A slice of
// ItemCounts in consequent-item order is the entire message a shard
// sends per scored rule direction.
type ItemCount struct {
	Item    int32
	Covered int32
	Errors  int32
}

// DirCounts carries the per-item counts of both directions of one rule:
// Fwd for the X→Y direction (target view Right, items of Y) and Back
// for X←Y (target view Left, items of X). A direction the rule does not
// apply to is nil.
type DirCounts struct {
	Fwd  []ItemCount
	Back []ItemCount
}

// PartialState is the columnar cover state of one item-range partition:
// the ucol/ecol tidset columns of State, but only for target-view items
// in [lo, hi) per view, and none of the row-wise mirrors, scalars or
// tub arrays (those live with the coordinator; see CoverTotals). It is
// the private, message-isolated state a mining shard owns.
//
// A PartialState is a pure function of (dataset, ranges, rule log):
// rebuilding one with NewPartialState + Replay after a shard crash
// yields bit-identical columns, which is the recovery story of the
// shard supervisor.
type PartialState struct {
	d          *dataset.Dataset
	lo, hi     [2]int
	ucol, ecol [2][]bitset.Set

	// Serial scratch for Apply (covered/error tidsets and antecedent
	// supports), like State.scratch. ScoreDir never touches these, so
	// concurrent ScoreDir calls against one PartialState are safe.
	scratch, tids *bitset.Set
}

// NewPartialState returns the partition [loL, hiL) × [loR, hiR) of the
// empty-table cover state: every owned U column is the item's support
// tidset, every owned E column is empty — exactly the owned slice of
// NewState's columns.
func NewPartialState(d *dataset.Dataset, loL, hiL, loR, hiR int) *PartialState {
	ps := &PartialState{d: d}
	ps.lo[dataset.Left], ps.hi[dataset.Left] = loL, hiL
	ps.lo[dataset.Right], ps.hi[dataset.Right] = loR, hiR
	n := d.Size()
	for _, v := range []dataset.View{dataset.Left, dataset.Right} {
		lo, hi := ps.lo[v], ps.hi[v]
		cols := d.Columns(v)
		ps.ucol[v] = bitset.NewBatch(hi-lo, n)
		ps.ecol[v] = bitset.NewBatch(hi-lo, n)
		for i := lo; i < hi; i++ {
			ps.ucol[v][i-lo].Copy(cols[i])
		}
	}
	ps.scratch = bitset.New(n)
	ps.tids = bitset.New(n)
	return ps
}

// Range returns the partition's item range [lo, hi) for the target view.
func (ps *PartialState) Range(target dataset.View) (lo, hi int) {
	return ps.lo[target], ps.hi[target]
}

// UncoveredCol returns the partition's U column of item i (absolute id)
// of the target view. i must be inside the partition. Read-only.
func (ps *PartialState) UncoveredCol(target dataset.View, i int) *bitset.Set {
	return &ps.ucol[target][i-ps.lo[target]]
}

// ErrorsCol returns the partition's E column of item i (absolute id) of
// the target view. i must be inside the partition. Read-only.
func (ps *PartialState) ErrorsCol(target dataset.View, i int) *bitset.Set {
	return &ps.ecol[target][i-ps.lo[target]]
}

// ScoreDir computes the per-item counts of one rule direction for the
// consequent items this partition owns, appending to dst: per owned
// item y of cons, the covered count |tids ∩ ucol[y]| and the new-error
// count |tids \ (supp(y) ∪ ecol[y])| — the same two fused kernels as
// State.gainDir, yielding the same integers. Items outside the
// partition are someone else's; items inside are emitted even at
// (0, 0), so a coordinator can concatenate the partitions' slices in
// partition order and walk cons exactly once (a wire transport may
// compress the zero entries; see internal/shard's protocol doc).
//
// ScoreDir only reads the partition, so any number of concurrent
// ScoreDir calls (a shard's worker pool scoring a candidate batch) are
// safe against each other.
func (ps *PartialState) ScoreDir(target dataset.View, tids *bitset.Set, cons itemset.Itemset, dst []ItemCount) []ItemCount {
	lo, hi := ps.lo[target], ps.hi[target]
	ucol, ecol := ps.ucol[target], ps.ecol[target]
	cols := ps.d.Columns(target)
	//lint:ctxprobe-ok bounded per-rule work (|cons| kernel calls); shard drivers probe ctx at message granularity
	for _, y := range cons {
		if y < lo || y >= hi {
			continue
		}
		covered := bitset.AndCount(tids, &ucol[y-lo])
		errs := bitset.AndNotAndNotCount(tids, cols[y], &ecol[y-lo])
		dst = append(dst, ItemCount{Item: int32(y), Covered: int32(covered), Errors: int32(errs)})
	}
	return dst
}

// ScoreRule scores both directions of the rule skeleton (x, y) against
// the partition, with optional precomputed support tidsets (nil tidsets
// are computed into internal scratch — not safe concurrently; pass
// cached tidsets from parallel scorers). The returned DirCounts always
// carries both directions: the coordinator composes →/←/↔ gains from
// the same two count vectors, like evaluate/scoreRange do from gainDir.
func (ps *PartialState) ScoreRule(x, y itemset.Itemset, tidX, tidY *bitset.Set, fwd, back []ItemCount) DirCounts {
	if tidX == nil {
		ps.d.SupportSetInto(ps.tids, dataset.Left, x)
		tidX = ps.tids
	}
	fwd = ps.ScoreDir(dataset.Right, tidX, y, fwd)
	if tidY == nil {
		ps.d.SupportSetInto(ps.tids, dataset.Right, y)
		tidY = ps.tids
	}
	back = ps.ScoreDir(dataset.Left, tidY, x, back)
	return DirCounts{Fwd: fwd, Back: back}
}

// CoverObserver observes, during PartialState.Apply, the covered tidset
// of each owned consequent item — the transactions where the item just
// moved from U to covered — in application order. The set is scratch:
// observers must copy what they keep. The sharded EXACT driver ships
// these tidsets in the apply acknowledgement so the coordinator can
// maintain its transaction-granular bounds (TubMirror); the other
// drivers pass nil and the counts alone suffice.
type CoverObserver func(target dataset.View, item int, covered *bitset.Set)

// Apply adds rule r to the partition — the owned slice of
// State.applyDir's column updates — and returns the per-item counts of
// both applied directions (appending to fwd/back), from which a
// coordinator updates its scalar mirrors (CoverTotals.Apply). Like
// applyDir it must never run concurrently with itself or ScoreDir on
// the same partition; a shard applies between scoring phases.
func (ps *PartialState) Apply(r Rule, fwd, back []ItemCount, onCover CoverObserver) DirCounts {
	if r.AppliesTo(dataset.Left) {
		ps.d.SupportSetInto(ps.tids, dataset.Left, r.X)
		fwd = ps.applyDir(dataset.Right, ps.tids, r.Y, fwd, onCover)
	}
	if r.AppliesTo(dataset.Right) {
		ps.d.SupportSetInto(ps.tids, dataset.Right, r.Y)
		back = ps.applyDir(dataset.Left, ps.tids, r.X, back, onCover)
	}
	return DirCounts{Fwd: fwd, Back: back}
}

// applyDir updates the owned U/E columns for one rule direction,
// mirroring State.applyDir restricted to the partition: per owned
// consequent item, materialize the covered tidset and the new-error
// tidset, update the columns wholesale, and record the two counts.
func (ps *PartialState) applyDir(target dataset.View, tids *bitset.Set, cons itemset.Itemset, dst []ItemCount, onCover CoverObserver) []ItemCount {
	lo, hi := ps.lo[target], ps.hi[target]
	cols := ps.d.Columns(target)
	//lint:ctxprobe-ok bounded per-rule work (|cons| kernel calls); shards apply between message checkpoints
	for _, y := range cons {
		if y < lo || y >= hi {
			continue
		}
		ucol, ecol := &ps.ucol[target][y-lo], &ps.ecol[target][y-lo]

		covered := ps.scratch
		bitset.IntersectInto(covered, tids, ucol)
		covCnt := covered.Count()
		if onCover != nil {
			onCover(target, y, covered)
		}
		if covCnt > 0 {
			ucol.AndNot(covered)
		}

		errs := ps.scratch
		errs.Copy(tids)
		errs.AndNot(cols[y])
		errs.AndNot(ecol)
		errCnt := errs.Count()
		if errCnt > 0 {
			ecol.Or(errs)
		}

		dst = append(dst, ItemCount{Item: int32(y), Covered: int32(covCnt), Errors: int32(errCnt)})
	}
	return dst
}

// Replay rebuilds the partition's cover columns from an accepted-rule
// log by applying every rule in order, discarding the counts (the
// coordinator already accounted for them when the rules were accepted).
// NewPartialState + Replay is the deterministic recovery path of the
// shard supervisor: the resulting columns are bit-identical to those of
// a partition that lived through the run, because the columns are a
// pure function of (dataset, ranges, log). onRule, if non-nil, observes
// each rule before it is applied (the supervisor threads a fault point
// through it).
func (ps *PartialState) Replay(log []Rule, onRule func(i int, r Rule)) {
	for i, r := range log {
		if onRule != nil {
			onRule(i, r)
		}
		ps.Apply(r, nil, nil, nil)
	}
}

// GainFromCounts folds per-item count messages into the gain
// contribution of one rule direction, with exactly State.gainDir's
// float arithmetic: accumulate in consequent-item order, skip items
// whose covered and error counts cancel (also guarding the
// zero-support-item Inf·0 case), one multiply-add per remaining item.
// parts are the partitions' ItemCount slices in partition order; since
// partitions are ascending contiguous item ranges and each ScoreDir
// emits in cons order, their concatenation is the full cons walk.
func GainFromCounts(coder *mdl.Coder, target dataset.View, parts ...[]ItemCount) float64 {
	gain := 0.0
	for _, part := range parts {
		for _, c := range part {
			if c.Covered == c.Errors {
				continue
			}
			gain += coder.ItemLen(target, int(c.Item)) * float64(c.Covered-c.Errors)
		}
	}
	return gain
}

// CoverTotals mirrors, on the coordinator side of a sharded run, the
// scalar summaries the monolithic State maintains: |U| and |E| per
// target view and the correction lengths L(C|T). It is fed by the
// per-item counts of the shards' Apply replies and reproduces
// State.applyDir's scalar updates bit-for-bit, so a sharded run reports
// the same IterationStats as the monolith.
type CoverTotals struct {
	coder *mdl.Coder

	UOnes   [2]int
	EOnes   [2]int
	CorrLen [2]float64
}

// NewCoverTotals returns the empty-table scalars, accumulated in the
// same order as NewState (transactions ascending, per view): uOnes from
// the row popcounts and corrLen from the per-row encoded lengths.
func NewCoverTotals(d *dataset.Dataset, coder *mdl.Coder) *CoverTotals {
	ct := &CoverTotals{coder: coder}
	n := d.Size()
	for _, v := range []dataset.View{dataset.Left, dataset.Right} {
		for t := 0; t < n; t++ {
			row := d.Row(v, t)
			ct.UOnes[v] += row.Count()
			ct.CorrLen[v] += coder.BitsLen(v, row)
		}
	}
	return ct
}

// ApplyDir folds the per-item counts of one applied rule direction into
// the scalars, mirroring the tail of State.applyDir per item in
// consequent order: covered items leave U, new errors enter E, and the
// correction length moves by ItemLen·(errs−covered) in a single
// multiply (skipped when the counts cancel, like gainDir — so the gain
// accepted for the rule equals the score change exactly). parts are the
// partitions' slices in partition order, concatenating to the full
// consequent walk.
func (ct *CoverTotals) ApplyDir(target dataset.View, parts ...[]ItemCount) {
	for _, part := range parts {
		for _, c := range part {
			ct.UOnes[target] -= int(c.Covered)
			ct.EOnes[target] += int(c.Errors)
			if c.Covered != c.Errors {
				ct.CorrLen[target] += ct.coder.ItemLen(target, int(c.Item)) * float64(int(c.Errors)-int(c.Covered))
			}
		}
	}
}

// Apply folds both directions of one applied rule, in AddRule's order
// (the X→Y direction first, then X←Y). fwdParts/backParts are the
// partitions' Apply replies in partition order; a direction the rule
// does not apply to must be empty.
func (ct *CoverTotals) Apply(r Rule, fwdParts, backParts [][]ItemCount) {
	if r.AppliesTo(dataset.Left) {
		ct.ApplyDir(dataset.Right, fwdParts...)
	}
	if r.AppliesTo(dataset.Right) {
		ct.ApplyDir(dataset.Left, backParts...)
	}
}

// Score returns L(D_L↔R, T) for the given table under these totals,
// like State.Score.
func (ct *CoverTotals) Score(table *Table) float64 {
	return table.Len(ct.coder) + ct.CorrLen[dataset.Left] + ct.CorrLen[dataset.Right]
}

// TubMirror maintains the transaction-based upper bounds tub(t) =
// L(U_t | D_target) on the coordinator side of a sharded run, fed by
// the per-item covered tidsets the shards' apply acknowledgements carry
// (see CoverObserver). The sharded EXACT driver needs it for the
// monolith's item potential ordering (bestRule sorts by Σ tub), whose
// float accumulation history must be reproduced exactly; SELECT and
// GREEDY never read tub and run without one.
type TubMirror struct {
	coder *mdl.Coder
	tub   [2][]float64
}

// NewTubMirror returns the empty-table bounds, initialized like
// NewState: tub(t) = L(row | D_target) per transaction in ascending
// order.
func NewTubMirror(d *dataset.Dataset, coder *mdl.Coder) *TubMirror {
	tm := &TubMirror{coder: coder}
	n := d.Size()
	for _, v := range []dataset.View{dataset.Left, dataset.Right} {
		tm.tub[v] = make([]float64, n)
		for t := 0; t < n; t++ {
			tm.tub[v][t] = coder.BitsLen(v, d.Row(v, t))
		}
	}
	return tm
}

// ApplyItem folds one applied consequent item's covered tidset into the
// bounds, mirroring State.applyDir's per-item walk: each covered
// transaction loses the item's length, visited in ascending transaction
// order. Callers must feed items in application order (consequent order
// within a direction, X→Y direction before X←Y) for the accumulation
// history — and hence the bits — to match the monolith.
func (tm *TubMirror) ApplyItem(target dataset.View, item int, covered *bitset.Set) {
	l := tm.coder.ItemLen(target, item)
	tub := tm.tub[target]
	covered.ForEach(func(t int) bool {
		tub[t] -= l
		return true
	})
}

// SumTub returns Σ_{t ∈ tids} tub(t) for the target view, accumulated
// in ascending transaction order like State.SumTub.
func (tm *TubMirror) SumTub(target dataset.View, tids *bitset.Set) float64 {
	return bitset.WeightedSum(tids, tm.tub[target])
}
