package core

import (
	"context"
	"errors"

	"twoview/internal/dataset"
)

// ShardMiner is the supervised sharded mining engine behind
// ParallelOptions.Shards. The implementation lives in internal/shard,
// which core cannot import (shard builds on core), so the engine is
// injected: internal/shard registers itself in an init function, and
// linking it in — the twoview facade and both CLIs blank-import it —
// arms the knob. The engine receives the same options the monolithic
// entry point got, Shards > 0 included; it must not dispatch back.
type ShardMiner interface {
	MineExact(ctx context.Context, d *dataset.Dataset, opt ExactOptions) (*Result, error)
	MineSelect(ctx context.Context, d *dataset.Dataset, cands []Candidate, opt SelectOptions) (*Result, error)
	MineGreedy(ctx context.Context, d *dataset.Dataset, cands []Candidate, opt GreedyOptions) (*Result, error)
}

// shardMiner is written once from internal/shard's init (which
// happens-before any mining call) and read by the dispatch below.
var shardMiner ShardMiner

// RegisterShardMiner installs the sharded engine. It is called from an
// init function; calling it later than that is a race with mining.
func RegisterShardMiner(m ShardMiner) { shardMiner = m }

// errNoShardMiner reports a Shards > 0 request without a linked engine.
var errNoShardMiner = errors.New(
	"core: ParallelOptions.Shards > 0 but no sharded engine is linked in (import the twoview facade or twoview/internal/shard)")

// shardEngine resolves the sharding knobs: (nil, nil) means run the
// monolith, a non-nil engine means dispatch to it. Shards > 0 opts in,
// as does a non-empty ShardAddrs list (the TCP transport), which
// implies Shards = len(ShardAddrs) when Shards is left 0.
func shardEngine(o ParallelOptions) (ShardMiner, error) {
	if o.Shards <= 0 && len(o.ShardAddrs) == 0 {
		return nil, nil
	}
	if shardMiner == nil {
		return nil, errNoShardMiner
	}
	return shardMiner, nil
}
