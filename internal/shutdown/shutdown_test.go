package shutdown

import (
	"context"
	"errors"
	"syscall"
	"testing"
	"time"
)

// A SIGINT raised at the process must cancel the notify context; stop
// then restores default handling without blocking.
func TestNotifyContextCancelsOnSignal(t *testing.T) {
	ctx, stop := NotifyContext(context.Background())
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGINT did not cancel the notify context")
	}
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Fatalf("ctx.Err() = %v, want context.Canceled", ctx.Err())
	}
}

// Drain runs every step in order, even after a failure, and returns the
// first error.
func TestDrainRunsAllStepsInOrder(t *testing.T) {
	var order []int
	boom := errors.New("step 2 failed")
	later := errors.New("step 3 failed")
	err := Drain(time.Second,
		func(context.Context) error { order = append(order, 1); return nil },
		func(context.Context) error { order = append(order, 2); return boom },
		func(context.Context) error { order = append(order, 3); return later },
	)
	if !errors.Is(err, boom) {
		t.Fatalf("Drain = %v, want first error %v", err, boom)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("step order %v, want [1 2 3]", order)
	}
}

// The shared deadline bounds a stuck step: it observes ctx.Done and the
// drain reports the deadline error instead of hanging.
func TestDrainBoundsStuckStep(t *testing.T) {
	start := time.Now()
	followUp := false
	err := Drain(30*time.Millisecond,
		func(ctx context.Context) error {
			<-ctx.Done() // a drain step that would otherwise never finish
			return ctx.Err()
		},
		func(context.Context) error { followUp = true; return nil },
	)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain took %v against a 30ms deadline", elapsed)
	}
	if !followUp {
		t.Fatal("later steps skipped after a stuck step")
	}
}
