// Package shutdown is the shared graceful-termination path of the
// twoview binaries: one place that maps process signals to context
// cancellation and runs ordered drain steps under a bounded deadline.
//
// The interactive miner (cmd/translator) and the serving daemon
// (cmd/translatord) want the same two halves: NotifyContext so the
// first SIGINT/SIGTERM cancels in-flight work instead of killing the
// process, and Drain so cleanup after that cancellation is best-effort
// but can never hang shutdown forever.
package shutdown

import (
	"context"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// NotifyContext returns a copy of parent that is cancelled by the
// process termination signals (SIGINT, SIGTERM). The returned stop
// function releases the signal registration — after it is called a
// second signal gets default handling (process death), which is the
// right escape hatch for a user who is done waiting for the drain.
func NotifyContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// Step is one drain action: flip a readiness gate, stop accepting
// connections, flush a file. It must honor ctx — the shared deadline is
// the only thing standing between a stuck step and a hung shutdown.
type Step func(ctx context.Context) error

// Drain runs the steps in order under one shared deadline. Every step
// runs even if an earlier one fails — drains are best-effort cleanup,
// and skipping the rest would leak what they release — and the first
// error (a step's, or the deadline's via the steps observing ctx) is
// returned.
func Drain(timeout time.Duration, steps ...Step) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var first error
	for _, step := range steps {
		if err := step(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}
