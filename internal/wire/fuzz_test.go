package wire

import (
	"encoding/binary"
	"reflect"
	"testing"
)

// FuzzWireCodec is the differential fuzz of the codec: any input that
// decodes must re-encode and re-decode to the same message (the codec
// has one canonical form per message), and no input — truncated,
// corrupted, or oversized — may panic or allocate past the frame-size
// bound. The checked-in corpus under testdata/fuzz/FuzzWireCodec seeds
// one valid frame per kind plus adversarial shapes: truncated prefixes,
// flipped header bytes, and length-amplification claims.
func FuzzWireCodec(f *testing.F) {
	for _, m := range sampleMsgs() {
		enc, err := Encode(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		f.Add(enc[:len(enc)/2])
		if len(enc) > HeaderSize {
			flipped := append([]byte(nil), enc...)
			flipped[HeaderSize] ^= 0xFF
			f.Add(flipped)
		}
	}
	// Oversized length claim and length-amplified element count.
	huge := make([]byte, HeaderSize)
	binary.BigEndian.PutUint32(huge, MaxFrame+1)
	huge[4], huge[5] = Version, byte(KindCrash)
	f.Add(huge)
	amp := []byte{0, 0, 0, 4, Version, byte(KindReply), 1, 2, 3}
	amp = binary.AppendUvarint(amp, 1<<30)
	f.Add(amp)

	f.Fuzz(func(t *testing.T, b []byte) {
		m, n, err := Decode(b)
		if err != nil {
			return
		}
		if n < HeaderSize || n > len(b) {
			t.Fatalf("consumed %d bytes of %d", n, len(b))
		}
		enc, err := Encode(nil, m)
		if err != nil {
			t.Fatalf("re-encode of decoded %T failed: %v", m, err)
		}
		m2, _, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded %T failed: %v", m, err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode/encode/decode diverged:\n first %#v\nsecond %#v", m, m2)
		}
	})
}
