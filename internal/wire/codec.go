package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"twoview/internal/bitset"
	"twoview/internal/core"
	"twoview/internal/itemset"
)

// Payload encoding primitives and the per-message payload codecs.
// Everything here is defensive on the decode side: every length is
// validated against the bytes actually remaining before any allocation,
// growth is append-based (proportional to input, never to a claimed
// length), and no input can panic the decoder.

var (
	errTruncated = errors.New("wire: truncated payload")
	errTrailing  = errors.New("wire: trailing bytes after payload")
	errCorrupt   = errors.New("wire: corrupt payload")
)

// preallocCap bounds speculative preallocation from decoded lengths:
// the decoder may reserve up to this many elements up front, then grows
// by append so total allocation tracks the input actually supplied.
const preallocCap = 1024

// dec is a bounds-checked payload reader. After the first error every
// read returns the zero value; callers check err once at the end.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail(errTruncated)
		return 0
	}
	d.off += n
	return v
}

// length reads a count that must be payable by at least min bytes per
// element from the remaining payload — the anti-amplification guard.
func (d *dec) length(min int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if v > uint64(len(d.b)-d.off)/uint64(min) {
		d.fail(errCorrupt)
		return 0
	}
	return int(v)
}

func (d *dec) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail(errTruncated)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b)-d.off {
		d.fail(errTruncated)
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *dec) hash() Hash {
	var h Hash
	copy(h[:], d.bytes(len(h)))
	return h
}

func (d *dec) int32() int32 {
	v := d.uvarint()
	if v > math.MaxInt32 {
		d.fail(errCorrupt)
		return 0
	}
	return int32(v)
}

func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return errTrailing
	}
	return nil
}

// appendItemset writes s as a length plus ascending deltas (first item
// absolute, then gaps): itemsets are canonical (strictly ascending,
// non-negative) everywhere in the protocol.
func appendItemset(dst []byte, s itemset.Itemset) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	prev := -1
	for _, it := range s {
		dst = binary.AppendUvarint(dst, uint64(it-prev-1))
		prev = it
	}
	return dst
}

func (d *dec) itemset() itemset.Itemset {
	n := d.length(1)
	if d.err != nil || n == 0 {
		return nil
	}
	s := make(itemset.Itemset, 0, min(n, preallocCap))
	next := uint64(0) // the smallest admissible item: prev + 1
	for i := 0; i < n; i++ {
		delta := d.uvarint()
		if d.err != nil {
			return nil
		}
		it := next + delta
		if delta > math.MaxInt32 || it > math.MaxInt32 {
			d.fail(errCorrupt)
			return nil
		}
		s = append(s, int(it))
		next = it + 1
	}
	return s
}

// appendRule writes the rule as X, direction, Y.
func appendRule(dst []byte, r core.Rule) []byte {
	dst = appendItemset(dst, r.X)
	dst = binary.AppendUvarint(dst, uint64(r.Dir))
	return appendItemset(dst, r.Y)
}

func (d *dec) rule() core.Rule {
	var r core.Rule
	r.X = d.itemset()
	dir := d.uvarint()
	if dir > uint64(core.Both) {
		d.fail(errCorrupt)
		return core.Rule{}
	}
	r.Dir = core.Direction(dir)
	r.Y = d.itemset()
	return r
}

// appendCounts writes one direction's per-item count slice with its
// zero triples run-length compressed: alternating run headers
// (runLen<<1 | isZero), zero runs as bare item deltas, non-zero runs as
// (delta, covered, errors) triples. Items are strictly ascending across
// the whole slice (ScoreDir emits in consequent-item order), so deltas
// encode the items exactly.
func appendCounts(dst []byte, counts []core.ItemCount) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(counts)))
	prev := -1
	for i := 0; i < len(counts); {
		zero := counts[i].Covered == 0 && counts[i].Errors == 0
		j := i + 1
		for j < len(counts) && (counts[j].Covered == 0 && counts[j].Errors == 0) == zero {
			j++
		}
		header := uint64(j-i) << 1
		if zero {
			header |= 1
		}
		dst = binary.AppendUvarint(dst, header)
		for ; i < j; i++ {
			c := counts[i]
			dst = binary.AppendUvarint(dst, uint64(int(c.Item)-prev-1))
			prev = int(c.Item)
			if !zero {
				dst = binary.AppendUvarint(dst, uint64(c.Covered))
				dst = binary.AppendUvarint(dst, uint64(c.Errors))
			}
		}
	}
	return dst
}

func (d *dec) counts() []core.ItemCount {
	n := d.length(1)
	if d.err != nil || n == 0 {
		return nil
	}
	counts := make([]core.ItemCount, 0, min(n, preallocCap))
	next := uint64(0) // the smallest admissible item: prev + 1
	for len(counts) < n {
		header := d.uvarint()
		if d.err != nil {
			return nil
		}
		runLen := int(header >> 1)
		zero := header&1 == 1
		if runLen < 1 || runLen > n-len(counts) {
			d.fail(errCorrupt)
			return nil
		}
		for k := 0; k < runLen; k++ {
			delta := d.uvarint()
			it := next + delta
			if delta > math.MaxInt32 || it > math.MaxInt32 {
				d.fail(errCorrupt)
				return nil
			}
			var c core.ItemCount
			c.Item = int32(it)
			next = it + 1
			if !zero {
				c.Covered = d.int32()
				c.Errors = d.int32()
			}
			if d.err != nil {
				return nil
			}
			counts = append(counts, c)
		}
	}
	return counts
}

// appendBitset writes a tidset as its bit length plus raw little-endian
// words.
func appendBitset(dst []byte, s *bitset.Set) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.Len()))
	for _, w := range s.Words() {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

func (d *dec) bitset() *bitset.Set {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > math.MaxInt32 {
		d.fail(errCorrupt)
		return nil
	}
	words := (int(n) + 63) / 64
	raw := d.bytes(8 * words)
	if d.err != nil {
		return nil
	}
	s := bitset.New(int(n))
	dst := s.Words()
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(raw[8*i:])
	}
	// Reject dirty trailing bits: the in-memory invariant is that bits
	// past Len are zero, and popcount kernels depend on it.
	if tail := int(n) % 64; tail != 0 && words > 0 && dst[words-1]>>tail != 0 {
		d.fail(errCorrupt)
		return nil
	}
	return s
}

// --- per-message payload codecs ---

func appendHello(dst []byte, m *Hello) []byte {
	dst = binary.AppendUvarint(dst, uint64(m.Part))
	dst = binary.AppendUvarint(dst, m.Term)
	for _, v := range [5]int32{m.LoL, m.HiL, m.LoR, m.HiR, m.Workers} {
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	dst = append(dst, m.DatasetHash[:]...)
	dst = append(dst, m.CandsHash[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(m.Log)))
	for _, r := range m.Log {
		dst = appendRule(dst, r)
	}
	return dst
}

func decodeHello(d *dec) *Hello {
	m := &Hello{Part: d.int32(), Term: d.uvarint()}
	m.LoL, m.HiL = d.int32(), d.int32()
	m.LoR, m.HiR = d.int32(), d.int32()
	m.Workers = d.int32()
	m.DatasetHash = d.hash()
	m.CandsHash = d.hash()
	n := d.length(1)
	if n > 0 && d.err == nil {
		m.Log = make([]core.Rule, 0, min(n, preallocCap))
		for i := 0; i < n && d.err == nil; i++ {
			m.Log = append(m.Log, d.rule())
		}
	}
	return m
}

func appendHelloAck(dst []byte, m *HelloAck) []byte {
	dst = binary.AppendUvarint(dst, uint64(m.Part))
	dst = binary.AppendUvarint(dst, m.Term)
	return append(dst, m.Need)
}

func decodeHelloAck(d *dec) *HelloAck {
	m := &HelloAck{Part: d.int32(), Term: d.uvarint(), Need: d.u8()}
	if m.Need&^(NeedDataset|NeedCands) != 0 {
		d.fail(errCorrupt)
	}
	return m
}

func appendBlob(dst []byte, m *Blob) []byte {
	dst = append(dst, m.Role)
	dst = append(dst, m.Hash[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(m.Data)))
	return append(dst, m.Data...)
}

func decodeBlob(d *dec) *Blob {
	m := &Blob{Role: d.u8(), Hash: d.hash()}
	if d.err == nil && m.Role != NeedDataset && m.Role != NeedCands {
		d.fail(errCorrupt)
		return m
	}
	n := d.length(1)
	if data := d.bytes(n); d.err == nil {
		// Copy out: frames may be decoded from a reused read buffer.
		m.Data = append([]byte(nil), data...)
	}
	return m
}

func appendScore(dst []byte, m *Score) []byte {
	dst = binary.AppendUvarint(dst, uint64(m.Part))
	dst = binary.AppendUvarint(dst, m.Term)
	dst = binary.AppendUvarint(dst, m.Seq)
	dst = binary.AppendUvarint(dst, uint64(m.Lease))
	dst = binary.AppendUvarint(dst, uint64(len(m.CandIdx)))
	// Plain uvarints, not deltas: the order of CandIdx is part of the
	// request (the greedy driver scores candidates in its own
	// length-descending walk order), so the sequence is not monotonic.
	for _, idx := range m.CandIdx {
		dst = binary.AppendUvarint(dst, uint64(idx))
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.Pairs)))
	for _, p := range m.Pairs {
		dst = appendItemset(dst, p.X)
		dst = appendItemset(dst, p.Y)
	}
	return dst
}

func decodeScore(d *dec) *Score {
	m := &Score{Part: d.int32(), Term: d.uvarint(), Seq: d.uvarint()}
	m.Lease = time.Duration(d.uvarint())
	if m.Lease < 0 {
		d.fail(errCorrupt)
		return m
	}
	nIdx := d.length(1)
	if nIdx > 0 && d.err == nil {
		m.CandIdx = make([]int32, 0, min(nIdx, preallocCap))
		for i := 0; i < nIdx && d.err == nil; i++ {
			idx := d.uvarint()
			if idx > math.MaxInt32 {
				d.fail(errCorrupt)
				break
			}
			m.CandIdx = append(m.CandIdx, int32(idx))
		}
	}
	nPairs := d.length(1)
	if nPairs > 0 && d.err == nil {
		if len(m.CandIdx) > 0 {
			d.fail(errCorrupt) // a Score carries indices or pairs, never both
			return m
		}
		m.Pairs = make([]Pair, 0, min(nPairs, preallocCap))
		for i := 0; i < nPairs && d.err == nil; i++ {
			m.Pairs = append(m.Pairs, Pair{X: d.itemset(), Y: d.itemset()})
		}
	}
	return m
}

func appendApply(dst []byte, m *Apply) []byte {
	dst = binary.AppendUvarint(dst, uint64(m.Part))
	dst = binary.AppendUvarint(dst, m.Term)
	dst = binary.AppendUvarint(dst, m.Seq)
	dst = binary.AppendUvarint(dst, uint64(m.Lease))
	dst = appendRule(dst, m.Rule)
	cover := byte(0)
	if m.WantCover {
		cover = 1
	}
	return append(dst, cover)
}

func decodeApply(d *dec) *Apply {
	m := &Apply{Part: d.int32(), Term: d.uvarint(), Seq: d.uvarint()}
	m.Lease = time.Duration(d.uvarint())
	if m.Lease < 0 {
		d.fail(errCorrupt)
		return m
	}
	m.Rule = d.rule()
	switch d.u8() {
	case 0:
	case 1:
		m.WantCover = true
	default:
		d.fail(errCorrupt)
	}
	return m
}

func appendReply(dst []byte, m *Reply) []byte {
	dst = binary.AppendUvarint(dst, uint64(m.Part))
	dst = binary.AppendUvarint(dst, m.Term)
	dst = binary.AppendUvarint(dst, m.Seq)
	dst = binary.AppendUvarint(dst, uint64(len(m.Counts)))
	for _, dc := range m.Counts {
		dst = appendCounts(dst, dc.Fwd)
		dst = appendCounts(dst, dc.Back)
	}
	if m.Covers == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.AppendUvarint(dst, uint64(len(m.Covers.Fwd)))
	for _, s := range m.Covers.Fwd {
		dst = appendBitset(dst, s)
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.Covers.Back)))
	for _, s := range m.Covers.Back {
		dst = appendBitset(dst, s)
	}
	return dst
}

func decodeReply(d *dec) *Reply {
	m := &Reply{Part: d.int32(), Term: d.uvarint(), Seq: d.uvarint()}
	n := d.length(2)
	if n > 0 && d.err == nil {
		m.Counts = make([]core.DirCounts, 0, min(n, preallocCap))
		for i := 0; i < n && d.err == nil; i++ {
			m.Counts = append(m.Counts, core.DirCounts{Fwd: d.counts(), Back: d.counts()})
		}
	}
	switch d.u8() {
	case 0:
	case 1:
		cov := &Covers{}
		nf := d.length(1)
		for i := 0; i < nf && d.err == nil; i++ {
			cov.Fwd = append(cov.Fwd, d.bitset())
		}
		nb := d.length(1)
		for i := 0; i < nb && d.err == nil; i++ {
			cov.Back = append(cov.Back, d.bitset())
		}
		m.Covers = cov
	default:
		d.fail(errCorrupt)
	}
	return m
}

func appendCrash(dst []byte, m *Crash) []byte {
	dst = binary.AppendUvarint(dst, uint64(m.Part))
	return binary.AppendUvarint(dst, m.Term)
}

func decodeCrash(d *dec) *Crash {
	return &Crash{Part: d.int32(), Term: d.uvarint()}
}

// AppendCandidates serializes a candidate list for the NeedCands blob:
// itemsets only. Shard hosts recompute the support tidsets themselves —
// they are dataset-static — so the transfer stays proportional to the
// pattern text, not to |D|.
func AppendCandidates(dst []byte, cands []core.Candidate) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(cands)))
	for i := range cands {
		dst = appendItemset(dst, cands[i].X)
		dst = appendItemset(dst, cands[i].Y)
	}
	return dst
}

// DecodeCandidates parses a NeedCands blob. Only X and Y are populated;
// the caller derives TidX/TidY from its dataset.
func DecodeCandidates(b []byte) ([]core.Candidate, error) {
	d := &dec{b: b}
	n := d.length(2)
	var cands []core.Candidate
	if n > 0 && d.err == nil {
		cands = make([]core.Candidate, 0, min(n, preallocCap))
		for i := 0; i < n && d.err == nil; i++ {
			cands = append(cands, core.Candidate{X: d.itemset(), Y: d.itemset()})
		}
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("wire: candidate blob: %w", err)
	}
	return cands, nil
}
