// Package wire is the binary codec of the sharded mining protocol:
// the HELLO/SCORE/APPLY/CRASH messages internal/shard's supervisor and
// a shard host exchange, framed for a TCP stream. It is the wire
// reading of the protocol documented in internal/shard/doc.go — the
// in-process engine and the TCP transport speak the same messages, so
// the codec is pure representation: nothing in this package makes a
// supervision or mining decision.
//
// # Framing
//
// Every message travels as one length-prefixed frame:
//
//	offset  size  field
//	0       4     payload length (big-endian uint32, header excluded)
//	4       1     protocol version (Version)
//	5       1     message kind (KindHello ... KindCrash)
//	6       len   payload
//
// The length prefix counts only the payload, so a reader can size its
// buffer before touching the kind byte. Frames larger than MaxFrame are
// rejected by both Encode and Decode: a corrupted or hostile length
// prefix can never make the decoder allocate past that bound, because
// every variable-length field is additionally validated against the
// bytes actually remaining in the frame before any allocation.
// A version byte other than Version fails the frame immediately —
// framing changes bump Version and old peers reject new frames at
// offset 4, not mid-payload.
//
// # Payload encoding
//
// Payload fields use unsigned varints (binary.AppendUvarint) for
// integers, varint-length-prefixed byte strings for blobs, and raw
// little-endian uint64 words for bitsets. Itemsets and per-item count
// slices are delta-encoded: items are strictly ascending in every
// message of the protocol, so the deltas stay small and the decoder
// gets ascending order (and int32 range) validated for free. Candidate
// index slices are the one exception — their order is part of the
// request (the greedy driver walks candidates in its own order), so
// they ride as plain uvarints.
//
// Count slices (core.ItemCount) are run-length encoded around their
// zero triples: a partition answers a SCORE entry with every owned
// consequent item, most of which have (covered, errors) == (0, 0) once
// mining converges, so runs of zero triples collapse to a run header
// plus their item deltas. The compression is lossless — Decode
// reconstructs exactly the triples ScoreDir emitted, zero or not — so
// the coordinator's folds see bit-identical inputs either way.
//
// # Dataset and candidate transfer
//
// The HELLO-time bootstrap transfers are content-addressed: Hello
// carries the SHA-256 of the dataset's serialized form (and of the
// candidate list, when the run has one), the host answers with the
// subset it does not already hold (HelloAck.Need), and only that subset
// flows as Blob frames. A shard host persists blobs under their hex
// hash, so repeat runs over the same dataset — and reconnects after a
// worker restart — HELLO straight into a local cache hit and transfer
// nothing.
package wire
