package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"time"

	"twoview/internal/bitset"
	"twoview/internal/core"
	"twoview/internal/itemset"
)

// Version is the protocol version carried by every frame header. Peers
// reject frames with any other value, so incompatible codec changes
// fail the connection at the first frame instead of corrupting a run.
const Version = 1

// MaxFrame is the payload-size ceiling enforced by Encode and Decode.
// It must admit the largest legitimate frame — a dataset Blob — and
// bounds what a corrupted length prefix can make a reader buffer.
const MaxFrame = 1 << 26 // 64 MiB

// HeaderSize is the fixed frame header: 4-byte payload length,
// 1-byte version, 1-byte kind.
const HeaderSize = 6

// Kind identifies a frame's message type.
type Kind uint8

const (
	// KindHello announces one partition incarnation to a shard host:
	// ranges, term, content hashes, and the accepted-rule log to replay.
	KindHello Kind = iota + 1
	// KindHelloAck answers a Hello with the set of blobs the host still
	// needs (possibly none — the content-hash cache hit).
	KindHelloAck
	// KindBlob transfers one content-addressed payload (dataset or
	// candidate list) after a HelloAck requested it.
	KindBlob
	// KindScore is a leased scoring request (candidate indices or
	// inline pairs).
	KindScore
	// KindApply is a leased apply request for one accepted rule.
	KindApply
	// KindReply is a completion: per-entry counts, plus covered tidsets
	// for apply-with-cover.
	KindReply
	// KindCrash is a shard host's voluntary retire notice.
	KindCrash

	kindMax = KindCrash
)

// Msg is one protocol message; the concrete types below implement it.
type Msg interface{ Kind() Kind }

// Hash is a SHA-256 content hash, the key of the HELLO-time transfer
// cache. The zero Hash means "absent" (a run without candidates).
type Hash [sha256.Size]byte

// HashBytes returns the content hash of b.
func HashBytes(b []byte) Hash { return sha256.Sum256(b) }

// IsZero reports whether h is the absent-content sentinel.
func (h Hash) IsZero() bool { return h == Hash{} }

// String returns the hex form, used as the cache file name.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Need bits of HelloAck, doubling as Blob roles: the bit a host sets in
// Need is the Role of the blob that satisfies it.
const (
	NeedDataset uint8 = 1 << iota
	NeedCands
)

// Hello announces one partition incarnation: "host items
// [LoL,HiL)×[LoR,HiR) of the content-addressed dataset at term Term,
// rebuilt from Log". It is resent verbatim after a reconnect, so a
// host must treat a Hello for an already-hosted (Part, Term) as
// idempotent.
type Hello struct {
	Part    int32
	Term    uint64
	LoL     int32
	HiL     int32
	LoR     int32
	HiR     int32
	Workers int32

	DatasetHash Hash
	// CandsHash is zero for runs without a candidate list (EXACT).
	CandsHash Hash

	// Log is the accepted-rule log snapshot this incarnation replays at
	// birth — the same snapshot an in-process proc is born from.
	Log []core.Rule
}

func (*Hello) Kind() Kind { return KindHello }

// HelloAck reports which of the Hello's content hashes the host cannot
// serve from its cache. Need == 0 is the cache hit: the incarnation
// boots without any transfer.
type HelloAck struct {
	Part int32
	Term uint64
	Need uint8
}

func (*HelloAck) Kind() Kind { return KindHelloAck }

// Blob is one content-addressed transfer: the serialized dataset
// (Role == NeedDataset, dataset text format) or candidate list
// (Role == NeedCands, AppendCandidates encoding).
type Blob struct {
	Role uint8
	Hash Hash
	Data []byte
}

func (*Blob) Kind() Kind { return KindBlob }

// Pair is one inline (X, Y) pair of an EXACT scoring request.
type Pair struct {
	X, Y itemset.Itemset
}

// Score is a leased scoring request: either CandIdx (indices into the
// announced candidate list; SELECT/GREEDY) or Pairs (EXACT), never
// both.
type Score struct {
	Part  int32
	Term  uint64
	Seq   uint64
	Lease time.Duration

	CandIdx []int32
	Pairs   []Pair
}

func (*Score) Kind() Kind { return KindScore }

// Apply is a leased apply request for one accepted rule. WantCover asks
// the reply to carry the per-item covered tidsets (EXACT runs, for the
// coordinator's tub mirror).
type Apply struct {
	Part  int32
	Term  uint64
	Seq   uint64
	Lease time.Duration

	Rule      core.Rule
	WantCover bool
}

func (*Apply) Kind() Kind { return KindApply }

// Covers carries, aligned with a Reply's Counts[0] slices, the covered
// tidset of each owned consequent item of an applied rule.
type Covers struct {
	Fwd  []*bitset.Set
	Back []*bitset.Set
}

// Reply is a completion: one DirCounts per scored entry (Score) or
// exactly one (Apply), restricted to the partition's owned items, with
// zero triples run-length compressed on the wire. The (Part, Term, Seq)
// triple is the dedup key — the transport may duplicate or reorder
// frames freely.
type Reply struct {
	Part int32
	Term uint64
	Seq  uint64

	Counts []core.DirCounts
	// Covers accompanies Counts[0] of an apply-with-cover reply.
	Covers *Covers
}

func (*Reply) Kind() Kind { return KindReply }

// Crash is a host's voluntary retire notice for one incarnation:
// recovered panic or self-detected lease blowout. A broken connection
// is the involuntary spelling of the same event; the supervisor maps
// both onto its CRASH path.
type Crash struct {
	Part int32
	Term uint64
}

func (*Crash) Kind() Kind { return KindCrash }
