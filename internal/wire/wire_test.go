package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
	"time"

	"twoview/internal/bitset"
	"twoview/internal/core"
	"twoview/internal/itemset"
)

// sampleMsgs is one representative of every message kind, exercising
// the interesting payload shapes: empty and multi-rule logs, candidate
// indices and inline pairs, zero-triple runs inside count slices, and
// covers with ragged bit widths.
func sampleMsgs() []Msg {
	tid := func(n int, idx ...int) *bitset.Set {
		s := bitset.New(n)
		for _, i := range idx {
			s.Add(i)
		}
		return s
	}
	return []Msg{
		&Hello{
			Part: 2, Term: 7, LoL: 0, HiL: 3, LoR: 1, HiR: 6, Workers: 4,
			DatasetHash: HashBytes([]byte("dataset")),
			CandsHash:   HashBytes([]byte("cands")),
			Log: []core.Rule{
				{X: itemset.New(0, 1), Dir: core.Both, Y: itemset.New(0)},
				{X: itemset.New(2), Dir: core.Forward, Y: itemset.New(1, 4)},
			},
		},
		&Hello{Part: 0, Term: 0, HiL: 1, HiR: 1, Workers: 1, DatasetHash: HashBytes(nil)},
		&HelloAck{Part: 1, Term: 3, Need: NeedDataset | NeedCands},
		&HelloAck{Part: 0, Term: 9},
		&Blob{Role: NeedDataset, Hash: HashBytes([]byte("x")), Data: []byte("L\ta\nR\tb\n0 | 0\n")},
		&Blob{Role: NeedCands, Hash: HashBytes([]byte("y")), Data: nil},
		&Score{Part: 1, Term: 2, Seq: 40, Lease: 250 * time.Millisecond, CandIdx: []int32{0, 3, 4, 100}},
		// Non-ascending indices: the greedy driver scores candidates in
		// length-descending order, so CandIdx order must survive the wire.
		&Score{Part: 1, Term: 2, Seq: 41, Lease: 250 * time.Millisecond, CandIdx: []int32{100, 3, 7, 3, 0}},
		&Score{Part: 0, Term: 1, Seq: 1, Lease: time.Second, Pairs: []Pair{
			{X: itemset.New(0), Y: itemset.New(2, 3)},
			{X: itemset.New(1, 5), Y: itemset.New(0)},
		}},
		&Score{Part: 3, Term: 0, Seq: 2, Lease: 0},
		&Apply{Part: 0, Term: 4, Seq: 17, Lease: 10 * time.Second,
			Rule: core.Rule{X: itemset.New(0, 2), Dir: core.Backward, Y: itemset.New(1)}, WantCover: true},
		&Reply{Part: 2, Term: 5, Seq: 40, Counts: []core.DirCounts{
			{
				Fwd: []core.ItemCount{
					{Item: 0, Covered: 0, Errors: 0},
					{Item: 1, Covered: 0, Errors: 0},
					{Item: 2, Covered: 9, Errors: 1},
					{Item: 5, Covered: 0, Errors: 0},
				},
				Back: []core.ItemCount{{Item: 3, Covered: 4, Errors: 4}},
			},
			{Fwd: nil, Back: nil},
		}},
		&Reply{Part: 0, Term: 1, Seq: 3,
			Counts: []core.DirCounts{{Fwd: []core.ItemCount{{Item: 7, Covered: 1, Errors: 0}}}},
			Covers: &Covers{
				Fwd:  []*bitset.Set{tid(80, 0, 63, 64, 79), tid(80)},
				Back: []*bitset.Set{tid(1, 0)},
			}},
		&Crash{Part: 1, Term: 6},
	}
}

// TestRoundTrip pins decode(encode(m)) == m for every message shape.
func TestRoundTrip(t *testing.T) {
	for _, m := range sampleMsgs() {
		enc, err := Encode(nil, m)
		if err != nil {
			t.Fatalf("%T: encode: %v", m, err)
		}
		got, n, err := Decode(enc)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if n != len(enc) {
			t.Fatalf("%T: consumed %d of %d bytes", m, n, len(enc))
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("%T roundtrip diverged:\n got %#v\nwant %#v", m, got, m)
		}
	}
}

// TestRoundTripConcatenated pins the stream property: frames decode one
// after another from a single buffer, each reporting its consumed size.
func TestRoundTripConcatenated(t *testing.T) {
	msgs := sampleMsgs()
	var stream []byte
	var err error
	for _, m := range msgs {
		if stream, err = Encode(stream, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; len(stream) > 0; i++ {
		m, n, err := Decode(stream)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(m, msgs[i]) {
			t.Fatalf("frame %d diverged", i)
		}
		stream = stream[n:]
	}
}

// TestWriteReadMsg pins the io-level wrappers against a stream with
// multiple frames and a reused buffer.
func TestWriteReadMsg(t *testing.T) {
	msgs := sampleMsgs()
	var buf bytes.Buffer
	var scratch []byte
	var err error
	for _, m := range msgs {
		if scratch, err = WriteMsg(&buf, scratch, m); err != nil {
			t.Fatal(err)
		}
	}
	var rbuf []byte
	for i := range msgs {
		var m Msg
		m, rbuf, err = ReadMsg(&buf, rbuf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(m, msgs[i]) {
			t.Fatalf("frame %d diverged", i)
		}
	}
}

// TestZeroTripleCompression pins that the RLE actually compresses: a
// count slice that is mostly zero triples must encode smaller than its
// dense 12-byte-per-triple form, and still roundtrip exactly.
func TestZeroTripleCompression(t *testing.T) {
	counts := make([]core.ItemCount, 500)
	for i := range counts {
		counts[i].Item = int32(i)
	}
	counts[250] = core.ItemCount{Item: 250, Covered: 3, Errors: 1}
	m := &Reply{Part: 0, Term: 1, Seq: 1, Counts: []core.DirCounts{{Fwd: counts}}}
	enc, err := Encode(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > 2*len(counts) {
		t.Fatalf("500 mostly-zero triples encoded to %d bytes; RLE is not engaging", len(enc))
	}
	got, _, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatal("compressed roundtrip diverged")
	}
}

// TestTruncatedFramesError pins that every proper prefix of a valid
// frame errors and never panics.
func TestTruncatedFramesError(t *testing.T) {
	for _, m := range sampleMsgs() {
		enc, err := Encode(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(enc); i++ {
			if _, _, err := Decode(enc[:i]); err == nil {
				t.Fatalf("%T: prefix of %d/%d bytes decoded without error", m, i, len(enc))
			}
		}
	}
}

// TestHeaderValidation pins the explicit framing failures: oversized
// length prefix, version mismatch, unknown kind, trailing payload.
func TestHeaderValidation(t *testing.T) {
	valid, err := Encode(nil, &Crash{Part: 1, Term: 2})
	if err != nil {
		t.Fatal(err)
	}

	oversized := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(oversized, MaxFrame+1)
	if _, _, err := Decode(oversized); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized length: err = %v, want ErrFrameTooLarge", err)
	}

	badVersion := append([]byte(nil), valid...)
	badVersion[4] = Version + 1
	if _, _, err := Decode(badVersion); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: err = %v, want ErrBadVersion", err)
	}

	badKind := append([]byte(nil), valid...)
	badKind[5] = byte(kindMax) + 1
	if _, _, err := Decode(badKind); !errors.Is(err, ErrBadKind) {
		t.Fatalf("bad kind: err = %v, want ErrBadKind", err)
	}

	trailing := append(append([]byte(nil), valid...), 0xFF)
	binary.BigEndian.PutUint32(trailing, uint32(len(valid)-HeaderSize+1))
	if _, _, err := Decode(trailing); err == nil {
		t.Fatal("trailing payload bytes decoded without error")
	}
}

// TestLengthAmplificationRejected pins the anti-amplification guard: a
// tiny frame claiming a huge element count must error up front, not
// allocate proportionally to the claim.
func TestLengthAmplificationRejected(t *testing.T) {
	// A Reply frame whose payload claims 2^24 count entries in 4 bytes.
	payload := []byte{1, 2, 3} // part, term, seq
	payload = binary.AppendUvarint(payload, 1<<24)
	frame := make([]byte, HeaderSize, HeaderSize+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	frame[4], frame[5] = Version, byte(KindReply)
	frame = append(frame, payload...)
	if _, _, err := Decode(frame); err == nil {
		t.Fatal("length-amplified frame decoded without error")
	}
}

// TestEncodeRejectsOversizedPayload pins the encoder half of MaxFrame.
func TestEncodeRejectsOversizedPayload(t *testing.T) {
	m := &Blob{Role: NeedDataset, Hash: HashBytes(nil), Data: make([]byte, MaxFrame)}
	if _, err := Encode(nil, m); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// TestDirtyTrailingBitsRejected pins that a covers bitset with set bits
// past its declared width is rejected: the in-memory invariant every
// popcount kernel depends on must hold for decoded sets too.
func TestDirtyTrailingBitsRejected(t *testing.T) {
	m := &Reply{Counts: []core.DirCounts{{Fwd: []core.ItemCount{{Item: 0, Covered: 1}}}},
		Covers: &Covers{Fwd: []*bitset.Set{bitset.New(3)}}}
	enc, err := Encode(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	// The 3-bit set's single word is the last 8 payload bytes; set a
	// bit above position 3.
	enc[len(enc)-1] |= 0x80
	if _, _, err := Decode(enc); err == nil {
		t.Fatal("dirty trailing bits decoded without error")
	}
}

// TestCandidateBlobRoundTrip pins the candidate-list blob helpers.
func TestCandidateBlobRoundTrip(t *testing.T) {
	cands := []core.Candidate{
		{X: itemset.New(0, 1), Y: itemset.New(2)},
		{X: itemset.New(4), Y: itemset.New(0, 1, 5)},
	}
	b := AppendCandidates(nil, cands)
	got, err := DecodeCandidates(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cands) {
		t.Fatalf("%d candidates, want %d", len(got), len(cands))
	}
	for i := range cands {
		if !got[i].X.Equal(cands[i].X) || !got[i].Y.Equal(cands[i].Y) {
			t.Fatalf("candidate %d diverged: %v -> %v", i, cands[i], got[i])
		}
	}
	if _, err := DecodeCandidates(b[:len(b)-1]); err == nil {
		t.Fatal("truncated candidate blob decoded without error")
	}
}
