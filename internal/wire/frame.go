package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame-level errors. Transports distinguish nothing finer than "this
// connection is poisoned": any framing error maps onto the CRASH path.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrBadVersion    = errors.New("wire: protocol version mismatch")
	ErrBadKind       = errors.New("wire: unknown message kind")
	ErrShortHeader   = errors.New("wire: short frame header")
)

// Encode appends one framed message to dst and returns the extended
// slice. It fails only on a payload larger than MaxFrame.
func Encode(dst []byte, m Msg) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, Version, byte(m.Kind()))
	switch m := m.(type) {
	case *Hello:
		dst = appendHello(dst, m)
	case *HelloAck:
		dst = appendHelloAck(dst, m)
	case *Blob:
		dst = appendBlob(dst, m)
	case *Score:
		dst = appendScore(dst, m)
	case *Apply:
		dst = appendApply(dst, m)
	case *Reply:
		dst = appendReply(dst, m)
	case *Crash:
		dst = appendCrash(dst, m)
	default:
		return dst[:start], fmt.Errorf("wire: cannot encode %T", m)
	}
	payload := len(dst) - start - HeaderSize
	if payload > MaxFrame {
		return dst[:start], fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, payload)
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(payload))
	return dst, nil
}

// FrameLen validates a frame header and returns its payload length.
// Proxies and readers use it to size reads without decoding payloads.
func FrameLen(header []byte) (int, error) {
	if len(header) < HeaderSize {
		return 0, ErrShortHeader
	}
	n := binary.BigEndian.Uint32(header)
	if n > MaxFrame {
		return 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if header[4] != Version {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, header[4], Version)
	}
	if k := Kind(header[5]); k < KindHello || k > kindMax {
		return 0, fmt.Errorf("%w: %d", ErrBadKind, header[5])
	}
	return int(n), nil
}

// Decode parses one complete frame from the front of b, returning the
// message and the number of bytes consumed. It never panics and never
// allocates more than a small multiple of the frame it was given,
// whatever the bytes claim.
func Decode(b []byte) (Msg, int, error) {
	payload, err := FrameLen(b)
	if err != nil {
		return nil, 0, err
	}
	if len(b) < HeaderSize+payload {
		return nil, 0, errTruncated
	}
	d := &dec{b: b[HeaderSize : HeaderSize+payload]}
	var m Msg
	switch Kind(b[5]) {
	case KindHello:
		m = decodeHello(d)
	case KindHelloAck:
		m = decodeHelloAck(d)
	case KindBlob:
		m = decodeBlob(d)
	case KindScore:
		m = decodeScore(d)
	case KindApply:
		m = decodeApply(d)
	case KindReply:
		m = decodeReply(d)
	case KindCrash:
		m = decodeCrash(d)
	}
	if err := d.done(); err != nil {
		return nil, 0, err
	}
	return m, HeaderSize + payload, nil
}

// WriteMsg encodes m into buf (reusing its capacity) and writes the
// frame to w, returning the grown buffer for reuse.
func WriteMsg(w io.Writer, buf []byte, m Msg) ([]byte, error) {
	buf, err := Encode(buf[:0], m)
	if err != nil {
		return buf, err
	}
	_, err = w.Write(buf)
	return buf, err
}

// ReadMsg reads exactly one frame from r into buf (reusing its
// capacity), decodes it, and returns the message and the grown buffer.
// Any framing or codec error poisons the stream: the caller must treat
// the connection as dead (the protocol has no frame resynchronization —
// recovery is the supervisor's redial path).
func ReadMsg(r io.Reader, buf []byte) (Msg, []byte, error) {
	buf = grow(buf, HeaderSize)
	if _, err := io.ReadFull(r, buf[:HeaderSize]); err != nil {
		return nil, buf, err
	}
	payload, err := FrameLen(buf[:HeaderSize])
	if err != nil {
		return nil, buf, err
	}
	total := HeaderSize + payload
	buf = grow(buf, total)
	if _, err := io.ReadFull(r, buf[HeaderSize:total]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, buf, err
	}
	m, _, err := Decode(buf[:total])
	return m, buf, err
}

// grow returns buf with length exactly n, preserving existing contents
// (ReadMsg grows the buffer after the header is already in it).
func grow(buf []byte, n int) []byte {
	if cap(buf) < n {
		nb := make([]byte, n)
		copy(nb, buf)
		return nb
	}
	return buf[:n]
}
