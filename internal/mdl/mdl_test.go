package mdl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"twoview/internal/bitset"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
)

// four transactions; left item 0 occurs in 2 of 4 (1 bit), left item 1 in
// 1 of 4 (2 bits), right item 0 in all 4 (0 bits), right item 1 never.
func fixture(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := dataset.MustNew([]string{"a", "b"}, []string{"p", "q"})
	rows := [][2][]int{
		{{0}, {0}},
		{{0, 1}, {0}},
		{{}, {0}},
		{{}, {0}},
	}
	for _, r := range rows {
		if err := d.AddRow(r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestItemLen(t *testing.T) {
	c := NewCoder(fixture(t))
	if got := c.ItemLen(dataset.Left, 0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("L(a) = %v, want 1", got)
	}
	if got := c.ItemLen(dataset.Left, 1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("L(b) = %v, want 2", got)
	}
	if got := c.ItemLen(dataset.Right, 0); got != 0 {
		t.Fatalf("L(p) = %v, want 0", got)
	}
	if got := c.ItemLen(dataset.Right, 1); !math.IsInf(got, 1) {
		t.Fatalf("L(q) = %v, want +Inf", got)
	}
	if c.Size() != 4 {
		t.Fatalf("Size = %d", c.Size())
	}
}

func TestSetLenAndBitsLenAgree(t *testing.T) {
	c := NewCoder(fixture(t))
	x := itemset.New(0, 1)
	want := c.ItemLen(dataset.Left, 0) + c.ItemLen(dataset.Left, 1)
	if got := c.SetLen(dataset.Left, x); math.Abs(got-want) > 1e-12 {
		t.Fatalf("SetLen = %v, want %v", got, want)
	}
	b := bitset.FromIndices(2, []int{0, 1})
	if got := c.BitsLen(dataset.Left, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("BitsLen = %v, want %v", got, want)
	}
	if got := c.SetLen(dataset.Left, nil); got != 0 {
		t.Fatalf("SetLen(∅) = %v", got)
	}
}

func TestBitsLenWidthMismatchPanics(t *testing.T) {
	c := NewCoder(fixture(t))
	defer func() {
		if recover() == nil {
			t.Fatal("BitsLen with wrong width did not panic")
		}
	}()
	c.BitsLen(dataset.Left, bitset.New(5))
}

func TestDirAndRuleLen(t *testing.T) {
	if DirLen(true) != 1 || DirLen(false) != 2 {
		t.Fatal("DirLen wrong")
	}
	c := NewCoder(fixture(t))
	x, y := itemset.New(0), itemset.New(0)
	// L(a)=1, L(p)=0.
	if got := c.RuleLen(x, y, true); math.Abs(got-2) > 1e-12 {
		t.Fatalf("RuleLen bidir = %v, want 2", got)
	}
	if got := c.RuleLen(x, y, false); math.Abs(got-3) > 1e-12 {
		t.Fatalf("RuleLen unidir = %v, want 3", got)
	}
}

func TestDataAndBaselineLen(t *testing.T) {
	d := fixture(t)
	c := NewCoder(d)
	// Left view: rows cost 1, 1+2, 0, 0 bits.
	if got := c.DataLen(d, dataset.Left); math.Abs(got-4) > 1e-12 {
		t.Fatalf("DataLen(L) = %v, want 4", got)
	}
	// Right view: item p costs 0 bits everywhere.
	if got := c.DataLen(d, dataset.Right); got != 0 {
		t.Fatalf("DataLen(R) = %v, want 0", got)
	}
	if got := c.BaselineLen(d); math.Abs(got-4) > 1e-12 {
		t.Fatalf("BaselineLen = %v, want 4", got)
	}
}

func TestEmptyDatasetInfLengths(t *testing.T) {
	d := dataset.MustNew([]string{"a"}, []string{"b"})
	c := NewCoder(d)
	if !math.IsInf(c.ItemLen(dataset.Left, 0), 1) {
		t.Fatal("items of an empty dataset must cost +Inf")
	}
	if c.BaselineLen(d) != 0 {
		t.Fatal("baseline of an empty dataset must be 0")
	}
}

// Properties: code lengths are non-negative and antitone in support; the
// baseline equals Σ_items supp(I)·L(I).
func TestQuickCoderProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nL, nR := 1+r.Intn(8), 1+r.Intn(8)
		d := dataset.MustNew(dataset.GenericNames("l", nL), dataset.GenericNames("r", nR))
		n := 1 + r.Intn(40)
		for i := 0; i < n; i++ {
			var left, right []int
			for j := 0; j < nL; j++ {
				if r.Intn(4) == 0 {
					left = append(left, j)
				}
			}
			for j := 0; j < nR; j++ {
				if r.Intn(4) == 0 {
					right = append(right, j)
				}
			}
			if err := d.AddRow(left, right); err != nil {
				return false
			}
		}
		c := NewCoder(d)
		for _, v := range []dataset.View{dataset.Left, dataset.Right} {
			for i := 0; i < d.Items(v); i++ {
				l := c.ItemLen(v, i)
				if l < 0 {
					return false
				}
				if s := d.ItemSupport(v, i); (s == 0) != math.IsInf(l, 1) {
					return false
				}
			}
			// Antitone in support.
			for i := 0; i < d.Items(v); i++ {
				for j := 0; j < d.Items(v); j++ {
					si, sj := d.ItemSupport(v, i), d.ItemSupport(v, j)
					if si > 0 && sj > 0 && si < sj && c.ItemLen(v, i) < c.ItemLen(v, j) {
						return false
					}
				}
			}
			// Baseline decomposition.
			want := 0.0
			for i := 0; i < d.Items(v); i++ {
				if s := d.ItemSupport(v, i); s > 0 {
					want += float64(s) * c.ItemLen(v, i)
				}
			}
			if math.Abs(c.DataLen(d, v)-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
