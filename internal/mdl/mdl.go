// Package mdl implements the encoded-length computations of §4.1 of the
// paper. Every item I of a view V gets a Shannon-optimal code of length
// L(I|D_V) = -log2 P(I|D_V) where P is the item's empirical probability of
// occurring in the data. Itemsets, translation rules, translation tables
// and correction tables are encoded by summing item code lengths; the
// direction of a rule costs 1 bit (bidirectional) or 2 bits (one bit for
// "unidirectional" plus one for which direction).
//
// The three framework components that §4.1 proves to be additive constants
// (the item code table itself, correction-row framing, and table framing)
// are deliberately excluded from all lengths.
package mdl

import (
	"fmt"
	"math"

	"twoview/internal/bitset"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
)

// Coder holds the per-item code lengths of both views of a dataset and the
// dataset size. It is immutable after construction.
type Coder struct {
	lenL, lenR []float64
	size       int
}

// NewCoder computes item code lengths from the empirical item frequencies
// of d. Items that never occur get +Inf length: they can never appear in a
// rule or correction produced from valid data, and any attempt to encode
// them surfaces as an infinite score rather than a silent error.
func NewCoder(d *dataset.Dataset) *Coder {
	c := &Coder{size: d.Size()}
	c.lenL = itemLengths(d, dataset.Left)
	c.lenR = itemLengths(d, dataset.Right)
	return c
}

func itemLengths(d *dataset.Dataset, v dataset.View) []float64 {
	n := d.Items(v)
	out := make([]float64, n)
	total := float64(d.Size())
	for i := 0; i < n; i++ {
		supp := d.ItemSupport(v, i)
		if supp == 0 || d.Size() == 0 {
			out[i] = math.Inf(1)
			continue
		}
		// -log2(supp/|D|); exactly 0 for items occurring everywhere.
		out[i] = -math.Log2(float64(supp) / total)
	}
	return out
}

// Size returns |D| used to compute the empirical probabilities.
func (c *Coder) Size() int { return c.size }

// ItemLen returns L(I|D_v) for item i of view v in bits.
func (c *Coder) ItemLen(v dataset.View, i int) float64 {
	return c.lengths(v)[i]
}

func (c *Coder) lengths(v dataset.View) []float64 {
	if v == dataset.Left {
		return c.lenL
	}
	return c.lenR
}

// SetLen returns L(X|D_v) = Σ_{I∈X} L(I|D_v) in bits.
func (c *Coder) SetLen(v dataset.View, x itemset.Itemset) float64 {
	lens := c.lengths(v)
	total := 0.0
	for _, i := range x {
		total += lens[i]
	}
	return total
}

// BitsLen returns the encoded length of the items of a bitset over I_v.
// It is the bitset counterpart of SetLen, used by hot loops.
func (c *Coder) BitsLen(v dataset.View, b *bitset.Set) float64 {
	lens := c.lengths(v)
	if b.Len() != len(lens) {
		panic(fmt.Sprintf("mdl: bitset width %d does not match |I_%v|=%d", b.Len(), v, len(lens)))
	}
	total := 0.0
	b.ForEach(func(i int) bool {
		total += lens[i]
		return true
	})
	return total
}

// DirLen returns L(◇): 1 bit for bidirectional rules, 2 bits otherwise.
func DirLen(bidirectional bool) float64 {
	if bidirectional {
		return 1
	}
	return 2
}

// RuleLen returns L(X ◇ Y) = L(X|D_L) + L(◇) + L(Y|D_R).
func (c *Coder) RuleLen(x, y itemset.Itemset, bidirectional bool) float64 {
	return c.SetLen(dataset.Left, x) + DirLen(bidirectional) + c.SetLen(dataset.Right, y)
}

// DataLen returns the baseline encoded length of one full view: the cost of
// the correction table when the translation table is empty (then C = D_v).
func (c *Coder) DataLen(d *dataset.Dataset, v dataset.View) float64 {
	total := 0.0
	for t := 0; t < d.Size(); t++ {
		total += c.BitsLen(v, d.Row(v, t))
	}
	return total
}

// BaselineLen returns L(D,∅) = L(D_L→R|∅) + L(D_L←R|∅), the uncompressed
// size of the bidirectional translation reported in Table 1.
func (c *Coder) BaselineLen(d *dataset.Dataset) float64 {
	return c.DataLen(d, dataset.Left) + c.DataLen(d, dataset.Right)
}
