package eval

import (
	"context"
	"math"
	"strings"
	"testing"

	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/mdl"
	"twoview/internal/synth"
)

func sampleData(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := dataset.MustNew([]string{"a", "b"}, []string{"p", "q"})
	rows := [][2][]int{
		{{0, 1}, {0}},
		{{0, 1}, {0}},
		{{0}, {0, 1}},
		{{1}, {1}},
	}
	for _, r := range rows {
		if err := d.AddRow(r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestMaxConfidence(t *testing.T) {
	d := sampleData(t)
	// a -> p: joint 3, supp(a)=3, supp(p)=3 → both directions 1.0.
	r := core.Rule{X: itemset.New(0), Dir: core.Forward, Y: itemset.New(0)}
	if got := MaxConfidence(d, r); math.Abs(got-1) > 1e-12 {
		t.Fatalf("c+ = %v, want 1", got)
	}
	// b -> q: joint 1, supp(b)=3, supp(q)=2 → max(1/3, 1/2) = 0.5.
	r = core.Rule{X: itemset.New(1), Dir: core.Forward, Y: itemset.New(1)}
	if got := MaxConfidence(d, r); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("c+ = %v, want 0.5", got)
	}
	// Zero joint support → 0.
	r = core.Rule{X: itemset.New(0, 1), Dir: core.Forward, Y: itemset.New(0, 1)}
	if got := MaxConfidence(d, r); got != 0 {
		t.Fatalf("c+ = %v, want 0", got)
	}
}

func TestEvaluateMatchesFromResult(t *testing.T) {
	d := sampleData(t)
	cands, err := core.MineCandidates(context.Background(), d, 1, 0, core.ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.MineSelect(context.Background(), d, cands, core.SelectOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := FromResult(d, res)
	b := Evaluate(d, mdl.NewCoder(d), res.Table)
	if a.NumRules != b.NumRules || math.Abs(a.LPct-b.LPct) > 1e-9 ||
		math.Abs(a.CorrPct-b.CorrPct) > 1e-9 || math.Abs(a.AvgConf-b.AvgConf) > 1e-9 {
		t.Fatalf("FromResult %+v != Evaluate %+v", a, b)
	}
}

func TestEvaluateEmptyTable(t *testing.T) {
	d := sampleData(t)
	m := Evaluate(d, mdl.NewCoder(d), &core.Table{})
	if m.NumRules != 0 || m.AvgConf != 0 || math.Abs(m.LPct-100) > 1e-9 {
		t.Fatalf("empty table metrics = %+v", m)
	}
}

func TestTopRulesAndRulesWithItem(t *testing.T) {
	d := sampleData(t)
	tab := &core.Table{Rules: []core.Rule{
		{X: itemset.New(0), Dir: core.Both, Y: itemset.New(0)},
		{X: itemset.New(1), Dir: core.Forward, Y: itemset.New(1)},
	}}
	top := TopRules(d, tab, 5)
	if len(top) != 2 {
		t.Fatalf("TopRules returned %d", len(top))
	}
	if top[0].Supp != 3 || math.Abs(top[0].Conf-1) > 1e-12 {
		t.Fatalf("TopRules[0] = %+v", top[0])
	}
	withQ := RulesWithItem(tab, dataset.Right, 1)
	if len(withQ) != 1 || !withQ[0].X.Equal(itemset.New(1)) {
		t.Fatalf("RulesWithItem = %v", withQ)
	}
	if n := len(RulesWithItem(tab, dataset.Left, 0)); n != 1 {
		t.Fatalf("RulesWithItem left = %d", n)
	}
}

func TestTextTable(t *testing.T) {
	tt := NewTextTable("name", "value")
	tt.AddRow("alpha", 3.14159)
	tt.AddRow("b", 42)
	out := tt.String()
	if !strings.Contains(out, "3.14") || !strings.Contains(out, "42") {
		t.Fatalf("render missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	// All lines aligned to the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Fatal("separator not aligned with header")
	}
}

func TestWriteDot(t *testing.T) {
	d := sampleData(t)
	tab := &core.Table{Rules: []core.Rule{
		{X: itemset.New(0), Dir: core.Both, Y: itemset.New(0)},
		{X: itemset.New(1), Dir: core.Forward, Y: itemset.New(1)},
		{X: itemset.New(0), Dir: core.Backward, Y: itemset.New(1)},
	}}
	var b strings.Builder
	if err := WriteDot(&b, d, tab, "test"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"graph \"test\"",
		"L0 [label=\"a\"]",
		"R1 [label=\"q\"]",
		// Bidirectional rule: both edges black.
		"L0 -- rule0 [color=black];",
		"rule0 -- R0 [color=black];",
		// Forward rule: away from left item (grey), toward right (black).
		"L1 -- rule1 [color=grey];",
		"rule1 -- R1 [color=black];",
		// Backward rule: toward left (black), away from right (grey).
		"L0 -- rule2 [color=black];",
		"rule2 -- R1 [color=grey];",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable1Smoke(t *testing.T) {
	var b strings.Builder
	if err := RunTable1(context.Background(), &b, 0.02); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"abalone", "elections", "L(D,∅)"} {
		if !strings.Contains(b.String(), name) {
			t.Fatalf("table 1 missing %q", name)
		}
	}
}

func TestRunTable2SmallSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 2 (small) reproduction")
	}
	// Exhaustive exact search on scaled-down versions of the narrow
	// small-group datasets; wide datasets (wine: 68 items) make EXACT
	// slow exactly as in the paper and belong to cmd/experiments, not
	// unit tests.
	light := []synth.Profile{
		mustProfile("car"), mustProfile("tictactoe"), mustProfile("yeast"),
	}
	var b strings.Builder
	rows, err := RunTable2(context.Background(), &b, 0.05, true, light...)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for _, row := range rows {
		if len(row.Methods) != 4 {
			t.Fatalf("%s: %d methods, want 4 (incl. exact)", row.Dataset, len(row.Methods))
		}
		for _, mc := range row.Methods {
			if mc.LPct <= 0 || mc.LPct > 200 {
				t.Fatalf("%s/%s: implausible L%% %v", row.Dataset, mc.Name, mc.LPct)
			}
		}
	}
}

func TestRunTable2LargeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 2 (large) reproduction")
	}
	var b strings.Builder
	rows, err := RunTable2(context.Background(), &b, 0.02, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d rows, want 7", len(rows))
	}
	for _, row := range rows {
		if len(row.Methods) != 3 {
			t.Fatalf("%s: %d methods, want 3 (no exact)", row.Dataset, len(row.Methods))
		}
	}
}

func TestRunTable3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 3 reproduction")
	}
	p, err := synth.ProfileByName("house")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	rows, err := RunTable3(context.Background(), &b, 0.2, []synth.Profile{p})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 methods", len(rows))
	}
	methods := map[string]Metrics{}
	for _, r := range rows {
		methods[r.Method] = r.Metrics
	}
	// The paper's headline: TRANSLATOR compresses better than the
	// baselines under the translation encoding.
	tr := methods["TRANSLATOR"]
	if tr.LPct >= 100 {
		t.Fatalf("TRANSLATOR did not compress: %v", tr.LPct)
	}
	for _, name := range []string{"SIGRULES", "REREMI", "KRIMP"} {
		if m, ok := methods[name]; !ok {
			t.Fatalf("method %s missing", name)
		} else if m.LPct < tr.LPct-1e-9 {
			t.Fatalf("%s beats TRANSLATOR on L%%: %v < %v", name, m.LPct, tr.LPct)
		}
	}
}

func TestRunFig2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 2 reproduction")
	}
	var b strings.Builder
	iters, err := RunFig2(context.Background(), &b, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) == 0 {
		t.Fatal("no iterations traced")
	}
	// |U| must be non-increasing, |E| non-decreasing, score decreasing.
	for i := 1; i < len(iters); i++ {
		if iters[i].UncoveredL > iters[i-1].UncoveredL || iters[i].UncoveredR > iters[i-1].UncoveredR {
			t.Fatal("|U| increased")
		}
		if iters[i].ErrorsL < iters[i-1].ErrorsL || iters[i].ErrorsR < iters[i-1].ErrorsR {
			t.Fatal("|E| decreased")
		}
		if iters[i].Score >= iters[i-1].Score {
			t.Fatal("score did not decrease")
		}
	}
}

func TestRunFig3Smoke(t *testing.T) {
	var b strings.Builder
	if err := RunFig3(context.Background(), &b, 0.1); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "graph \"") != 6 {
		t.Fatalf("expected 6 DOT graphs, got %d", strings.Count(out, "graph \""))
	}
}

func TestRunExampleRulesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example-rule reproduction")
	}
	var b strings.Builder
	if err := RunExampleRules(context.Background(), &b, "house", 0.3); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, m := range []string{"TRANSLATOR", "SIGRULES", "REREMI"} {
		if !strings.Contains(out, m) {
			t.Fatalf("missing method %s", m)
		}
	}
	if err := RunExampleRules(context.Background(), &b, "nope", 0.3); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestRunFig6And7Smoke(t *testing.T) {
	var b strings.Builder
	if err := RunFig6(context.Background(), &b, 0.2); err != nil {
		t.Fatal(err)
	}
	if err := RunFig7(context.Background(), &b, 0.1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Fig. 7") {
		t.Fatal("fig 7 output missing")
	}
}

func TestRunRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery reproduction")
	}
	p, err := synth.ProfileByName("car")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := RunRecovery(context.Background(), &b, 0.2, []synth.Profile{p}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "car") {
		t.Fatal("recovery output missing dataset")
	}
}

func TestRunAblationSmoke(t *testing.T) {
	p, err := synth.ProfileByName("car")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := RunAblation(context.Background(), &b, 0.05, 1, []synth.Profile{p}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no bounds") {
		t.Fatal("ablation output incomplete")
	}
}

func TestRunExplosionSmoke(t *testing.T) {
	p, err := synth.ProfileByName("car")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := RunExplosion(context.Background(), &b, 0.1, []synth.Profile{p}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "pattern explosion") || !strings.Contains(b.String(), "car") {
		t.Fatalf("explosion output incomplete:\n%s", b.String())
	}
}

func TestWriteIterationsCSV(t *testing.T) {
	d := sampleData(t)
	cands, err := core.MineCandidates(context.Background(), d, 1, 0, core.ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.MineSelect(context.Background(), d, cands, core.SelectOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteIterationsCSV(&b, res.Iterations); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != len(res.Iterations)+1 {
		t.Fatalf("%d CSV lines for %d iterations", len(lines), len(res.Iterations))
	}
	if !strings.HasPrefix(lines[0], "iteration,") {
		t.Fatalf("header wrong: %q", lines[0])
	}
}
