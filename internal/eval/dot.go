package eval

import (
	"fmt"
	"io"
	"strings"

	"twoview/internal/core"
	"twoview/internal/dataset"
)

// WriteDot renders a rule set as the tripartite graph of Fig. 3 in
// Graphviz DOT: left-hand items on the left, one node per rule in the
// middle, right-hand items on the right. An edge connects a rule to every
// item it contains; it is drawn black when the implication points toward
// the item (or the rule is bidirectional) and grey when the implication
// only points away from it, matching the paper's figure legend.
func WriteDot(w io.Writer, d *dataset.Dataset, t *core.Table, title string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", title)
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontsize=9];\n")

	usedL, usedR := map[int]bool{}, map[int]bool{}
	for _, r := range t.Rules {
		for _, i := range r.X {
			usedL[i] = true
		}
		for _, i := range r.Y {
			usedR[i] = true
		}
	}
	b.WriteString("  { rank=source;\n")
	for i := 0; i < d.Items(dataset.Left); i++ {
		if usedL[i] {
			fmt.Fprintf(&b, "    L%d [label=%q];\n", i, d.Name(dataset.Left, i))
		}
	}
	b.WriteString("  }\n  { rank=sink;\n")
	for i := 0; i < d.Items(dataset.Right); i++ {
		if usedR[i] {
			fmt.Fprintf(&b, "    R%d [label=%q];\n", i, d.Name(dataset.Right, i))
		}
	}
	b.WriteString("  }\n")

	for ri, r := range t.Rules {
		fmt.Fprintf(&b, "  rule%d [label=\"r%d %s\", shape=ellipse];\n", ri, ri+1, r.Dir)
		for _, i := range r.X {
			// Toward the left item means direction Backward (or Both).
			color := "grey"
			if r.Dir == core.Backward || r.Dir == core.Both {
				color = "black"
			}
			fmt.Fprintf(&b, "  L%d -- rule%d [color=%s];\n", i, ri, color)
		}
		for _, i := range r.Y {
			color := "grey"
			if r.Dir == core.Forward || r.Dir == core.Both {
				color = "black"
			}
			fmt.Fprintf(&b, "  rule%d -- R%d [color=%s];\n", ri, i, color)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
