package eval

import (
	"twoview/internal/core"
	"twoview/internal/dataset"
)

// RuleQuality collects the standard interestingness measures of one
// translation rule on a dataset, complementing the MDL-based view with
// the measures the association-mining literature reports.
type RuleQuality struct {
	Rule core.Rule
	// Supp is |supp(X ∪ Y)|, SuppX and SuppY the per-side supports.
	Supp, SuppX, SuppY int
	// ConfForward is c(X→Y), ConfBackward is c(X←Y), Conf is c+.
	ConfForward, ConfBackward, Conf float64
	// Lift is P(XY) / (P(X)·P(Y)); 1 means independence.
	Lift float64
	// Leverage is P(XY) − P(X)·P(Y) (Webb's measure).
	Leverage float64
	// Jaccard is |supp(X)∩supp(Y)| / |supp(X)∪supp(Y)| (the
	// redescription-mining accuracy).
	Jaccard float64
}

// Quality computes all measures for one rule.
func Quality(d *dataset.Dataset, r core.Rule) RuleQuality {
	q := RuleQuality{Rule: r}
	q.Supp = d.JointSupportSet(r.X, r.Y).Count()
	q.SuppX = d.Support(dataset.Left, r.X)
	q.SuppY = d.Support(dataset.Right, r.Y)
	n := float64(d.Size())
	if n == 0 {
		return q
	}
	if q.SuppX > 0 {
		q.ConfForward = float64(q.Supp) / float64(q.SuppX)
	}
	if q.SuppY > 0 {
		q.ConfBackward = float64(q.Supp) / float64(q.SuppY)
	}
	q.Conf = q.ConfForward
	if q.ConfBackward > q.Conf {
		q.Conf = q.ConfBackward
	}
	pXY := float64(q.Supp) / n
	pX := float64(q.SuppX) / n
	pY := float64(q.SuppY) / n
	if pX > 0 && pY > 0 {
		q.Lift = pXY / (pX * pY)
	}
	q.Leverage = pXY - pX*pY
	if union := q.SuppX + q.SuppY - q.Supp; union > 0 {
		q.Jaccard = float64(q.Supp) / float64(union)
	}
	return q
}

// QualityTable computes measures for every rule of a table, in table
// order.
func QualityTable(d *dataset.Dataset, t *core.Table) []RuleQuality {
	out := make([]RuleQuality, 0, t.Size())
	for _, r := range t.Rules {
		out = append(out, Quality(d, r))
	}
	return out
}
