// Package eval implements the evaluation harness of §6: the metrics used
// throughout the paper's tables (|T|, average rule length, |C|%, average
// maximum confidence c+, compression ratio L%), the renderers that
// regenerate every table and figure, and the DOT bipartite visualizations
// of Fig. 3.
package eval

import (
	"time"

	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/mdl"
)

// Metrics are the evaluation criteria of §6 for one rule set on one
// dataset.
type Metrics struct {
	NumRules int     // |T|
	AvgLen   float64 // average items per rule ("l" in Table 3)
	CorrPct  float64 // |C|% under the translation encoding
	AvgConf  float64 // average c+ over the rule set
	LPct     float64 // compression ratio L%
	Runtime  time.Duration
}

// MaxConfidence returns c+(X ◇ Y) = max{c(X→Y), c(X←Y)} on the dataset,
// the direction-agnostic confidence of §6 ("to avoid penalizing methods
// that induce bidirectional rules").
func MaxConfidence(d *dataset.Dataset, r core.Rule) float64 {
	joint := d.JointSupportSet(r.X, r.Y).Count()
	if joint == 0 {
		return 0
	}
	best := 0.0
	if s := d.Support(dataset.Left, r.X); s > 0 {
		best = float64(joint) / float64(s)
	}
	if s := d.Support(dataset.Right, r.Y); s > 0 {
		if c := float64(joint) / float64(s); c > best {
			best = c
		}
	}
	return best
}

// Evaluate scores an arbitrary translation table on d under the paper's
// encoding and computes all Table 3 metrics. The runtime field is left
// zero; callers measure mining time themselves.
func Evaluate(d *dataset.Dataset, coder *mdl.Coder, t *core.Table) Metrics {
	s := core.EvaluateTable(d, coder, t)
	m := Metrics{
		NumRules: t.Size(),
		AvgLen:   t.AvgRuleItems(),
		CorrPct:  s.CorrectionRatio(),
		LPct:     s.CompressionRatio(),
	}
	if t.Size() > 0 {
		total := 0.0
		for _, r := range t.Rules {
			total += MaxConfidence(d, r)
		}
		m.AvgConf = total / float64(t.Size())
	}
	return m
}

// FromResult computes metrics for a TRANSLATOR result, reusing its final
// state instead of replaying the table.
func FromResult(d *dataset.Dataset, res *core.Result) Metrics {
	t := res.Table
	m := Metrics{
		NumRules: t.Size(),
		AvgLen:   t.AvgRuleItems(),
		CorrPct:  res.State.CorrectionRatio(),
		LPct:     res.State.CompressionRatio(),
		Runtime:  res.Runtime,
	}
	if t.Size() > 0 {
		total := 0.0
		for _, r := range t.Rules {
			total += MaxConfidence(d, r)
		}
		m.AvgConf = total / float64(t.Size())
	}
	return m
}

// RuleStats carries the presentation measures for one rule (Figs. 4–7).
type RuleStats struct {
	Rule core.Rule
	Supp int
	Conf float64 // c+
}

// TopRules returns the first n rules of a table with their stats,
// formatted in mining order (TRANSLATOR adds most-compressing rules
// first, so table order is the paper's "top rules" order).
func TopRules(d *dataset.Dataset, t *core.Table, n int) []RuleStats {
	if n > t.Size() {
		n = t.Size()
	}
	out := make([]RuleStats, 0, n)
	for _, r := range t.Rules[:n] {
		out = append(out, RuleStats{
			Rule: r,
			Supp: d.JointSupportSet(r.X, r.Y).Count(),
			Conf: MaxConfidence(d, r),
		})
	}
	return out
}

// RulesWithItem returns every rule of t containing the given item of the
// given view, preserving table order (Fig. 6 focuses on one item).
func RulesWithItem(t *core.Table, v dataset.View, item int) []core.Rule {
	var out []core.Rule
	for _, r := range t.Rules {
		side := r.X
		if v == dataset.Right {
			side = r.Y
		}
		if side.Contains(item) {
			out = append(out, r)
		}
	}
	return out
}
