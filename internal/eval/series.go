package eval

import (
	"encoding/csv"
	"fmt"
	"io"

	"twoview/internal/core"
)

// WriteIterationsCSV exports a mining trace as CSV (one row per added
// rule), the plotting-friendly form of Fig. 2's series: iteration,
// |U_L|, |U_R|, |E_L|, |E_R|, L(T), L(D_L→R|T), L(D_L←R|T), total score,
// gain, and the rule itself.
func WriteIterationsCSV(w io.Writer, iters []core.IterationStats) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"iteration", "uncovered_left", "uncovered_right",
		"errors_left", "errors_right",
		"table_len", "corr_len_l2r", "corr_len_r2l", "score", "gain", "rule",
	}); err != nil {
		return err
	}
	for _, it := range iters {
		rec := []string{
			fmt.Sprintf("%d", it.Iteration),
			fmt.Sprintf("%d", it.UncoveredL),
			fmt.Sprintf("%d", it.UncoveredR),
			fmt.Sprintf("%d", it.ErrorsL),
			fmt.Sprintf("%d", it.ErrorsR),
			fmt.Sprintf("%.4f", it.TableLen),
			fmt.Sprintf("%.4f", it.CorrLenR),
			fmt.Sprintf("%.4f", it.CorrLenL),
			fmt.Sprintf("%.4f", it.Score),
			fmt.Sprintf("%.4f", it.Gain),
			it.Rule.String(),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
