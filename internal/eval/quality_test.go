package eval

import (
	"math"
	"testing"

	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
)

func TestQualityMeasures(t *testing.T) {
	d := sampleData(t) // 4 rows; a: rows 0-2, p: rows 0-2; b: 0,1,3; q: 2,3
	q := Quality(d, core.Rule{X: itemset.New(0), Dir: core.Both, Y: itemset.New(0)})
	if q.Supp != 3 || q.SuppX != 3 || q.SuppY != 3 {
		t.Fatalf("supports: %+v", q)
	}
	if math.Abs(q.ConfForward-1) > 1e-12 || math.Abs(q.ConfBackward-1) > 1e-12 || q.Conf != 1 {
		t.Fatalf("confidences: %+v", q)
	}
	// lift = (3/4) / (3/4 · 3/4) = 4/3.
	if math.Abs(q.Lift-4.0/3) > 1e-12 {
		t.Fatalf("lift = %v", q.Lift)
	}
	// leverage = 3/4 − 9/16 = 3/16.
	if math.Abs(q.Leverage-3.0/16) > 1e-12 {
		t.Fatalf("leverage = %v", q.Leverage)
	}
	if math.Abs(q.Jaccard-1) > 1e-12 {
		t.Fatalf("jaccard = %v", q.Jaccard)
	}
}

func TestQualityAsymmetricRule(t *testing.T) {
	d := sampleData(t)
	// b → q: joint {3}, supp(b)=3, supp(q)=2.
	q := Quality(d, core.Rule{X: itemset.New(1), Dir: core.Forward, Y: itemset.New(1)})
	if math.Abs(q.ConfForward-1.0/3) > 1e-12 || math.Abs(q.ConfBackward-0.5) > 1e-12 {
		t.Fatalf("confidences: fwd=%v bwd=%v", q.ConfForward, q.ConfBackward)
	}
	if q.Conf != q.ConfBackward {
		t.Fatal("c+ must be the max direction")
	}
	// jaccard = 1 / (3+2-1) = 0.25.
	if math.Abs(q.Jaccard-0.25) > 1e-12 {
		t.Fatalf("jaccard = %v", q.Jaccard)
	}
	if q.Conf != MaxConfidence(d, q.Rule) {
		t.Fatal("Conf must equal MaxConfidence")
	}
}

func TestQualityDegenerate(t *testing.T) {
	d := dataset.MustNew([]string{"x"}, []string{"y"})
	q := Quality(d, core.Rule{X: itemset.New(0), Dir: core.Both, Y: itemset.New(0)})
	if q.Lift != 0 || q.Jaccard != 0 || q.Conf != 0 {
		t.Fatalf("empty dataset quality: %+v", q)
	}
}

func TestQualityTableOrder(t *testing.T) {
	d := sampleData(t)
	tab := &core.Table{Rules: []core.Rule{
		{X: itemset.New(0), Dir: core.Both, Y: itemset.New(0)},
		{X: itemset.New(1), Dir: core.Forward, Y: itemset.New(1)},
	}}
	qs := QualityTable(d, tab)
	if len(qs) != 2 || qs[0].Rule.Compare(tab.Rules[0]) != 0 {
		t.Fatal("QualityTable order wrong")
	}
	// Independence sanity: lift > 1 for the positively associated rule.
	if qs[0].Lift <= 1 {
		t.Fatal("positively associated rule should have lift > 1")
	}
}
