package eval

import (
	"context"
	"fmt"
	"io"
	"time"

	"twoview/internal/baseline/krimp"
	"twoview/internal/baseline/reremi"
	"twoview/internal/baseline/sigrules"
	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/mdl"
	"twoview/internal/synth"
)

// This file regenerates every table and figure of the paper's evaluation
// (§6) on the synthetic analogues of the fourteen datasets. All runners
// accept a scale factor that shrinks the datasets proportionally, so the
// full suite stays tractable on one machine; shapes are preserved.

// Workers is the worker-pool size every runner passes to the mining
// algorithms — candidate mining included: 0 means GOMAXPROCS, 1 forces
// serial execution. Results are identical regardless (every parallel
// path is deterministic in the worker count); cmd/experiments exposes it
// as -workers.
var Workers int

// Shards is the item-range shard count every runner passes to the
// miners: 0 runs the monolithic engine, > 0 opts into the supervised
// sharded engine (which the caller must link in — cmd/experiments
// blank-imports internal/shard and exposes this as -shards). Results
// are identical regardless.
var Shards int

// ShardAddrs lifts the sharded engine onto TCP: each entry is a
// shardworker daemon address the coordinator dials and supervises
// (cmd/experiments exposes this as -shard-addrs). Empty keeps every
// shard in-process. Results are identical regardless.
var ShardAddrs []string

// Session is the persistent worker runtime the runners mine on; nil
// means the shared package-wide runtime. A caller running a long batch
// of experiments can install one (and Close it afterwards) so every
// table and figure reuses the same parked workers.
var Session *core.Session

// par returns the shared ParallelOptions of the runners.
func par() core.ParallelOptions {
	return core.ParallelOptions{Workers: Workers, Shards: Shards, ShardAddrs: ShardAddrs, Session: Session}
}

// Gen materializes a profile at the given scale.
func Gen(p synth.Profile, scale float64) (*dataset.Dataset, []core.Rule, error) {
	if scale > 0 && scale != 1 {
		p = p.Scaled(scale)
	}
	return synth.Generate(p)
}

// maxCandidates mirrors the paper's experimental protocol: "we fix minsup
// such that the number of candidates remains manageable (between 10K and
// 200K)" (§6.1).
const maxCandidates = 200_000

// cappedCandidates mines closed two-view candidates, doubling minsup
// until the candidate set stays below maxCandidates. It returns the
// candidates and the effective minimum support.
func cappedCandidates(ctx context.Context, d *dataset.Dataset, minsup int) ([]core.Candidate, int, error) {
	return core.MineCandidatesCapped(ctx, d, minsup, maxCandidates, par())
}

// RunTable1 regenerates Table 1: dataset properties and uncompressed
// sizes L(D,∅).
func RunTable1(ctx context.Context, w io.Writer, scale float64) error {
	t := NewTextTable("Dataset", "|D|", "|I_L|", "|I_R|", "d_L", "d_R", "L(D,∅)")
	for _, p := range synth.Profiles() {
		if err := ctx.Err(); err != nil {
			return err
		}
		d, _, err := Gen(p, scale)
		if err != nil {
			return err
		}
		st := d.Stats()
		coder := mdl.NewCoder(d)
		t.AddRow(p.Name, st.Size, st.ItemsL, st.ItemsR,
			fmt.Sprintf("%.3f", st.DensityL), fmt.Sprintf("%.3f", st.DensityR),
			fmt.Sprintf("%.0f", coder.BaselineLen(d)))
	}
	fmt.Fprintln(w, "Table 1: dataset properties (synthetic analogues)")
	return t.Render(w)
}

// Table2Row is one dataset's entry in Table 2.
type Table2Row struct {
	Dataset string
	MinSup  int
	Methods []MethodCells
}

// MethodCells is one method's |T| / L% / runtime triple.
type MethodCells struct {
	Name    string
	T       int
	LPct    float64
	Runtime time.Duration
}

// runTranslators runs the requested TRANSLATOR variants on one dataset.
// It returns the method cells and the effective minimum support used for
// candidate mining.
func runTranslators(ctx context.Context, d *dataset.Dataset, minsup int, withExact bool) ([]MethodCells, int, error) {
	var out []MethodCells
	if withExact {
		res, err := core.MineExact(ctx, d, core.ExactOptions{ParallelOptions: par()})
		if err != nil {
			return nil, minsup, err
		}
		m := FromResult(d, res)
		out = append(out, MethodCells{"T-EXACT", m.NumRules, m.LPct, m.Runtime})
	}
	candStart := time.Now()
	cands, minsup, err := cappedCandidates(ctx, d, minsup)
	if err != nil {
		return nil, minsup, err
	}
	candTime := time.Since(candStart)
	for _, cfg := range []struct {
		name string
		k    int
	}{{"T-SELECT(1)", 1}, {"T-SELECT(25)", 25}} {
		res, err := core.MineSelect(ctx, d, cands, core.SelectOptions{K: cfg.k, ParallelOptions: par()})
		if err != nil {
			return nil, minsup, err
		}
		m := FromResult(d, res)
		out = append(out, MethodCells{cfg.name, m.NumRules, m.LPct, m.Runtime + candTime})
	}
	res, err := core.MineGreedy(ctx, d, cands, core.GreedyOptions{ParallelOptions: par()})
	if err != nil {
		return nil, minsup, err
	}
	m := FromResult(d, res)
	out = append(out, MethodCells{"T-GREEDY", m.NumRules, m.LPct, m.Runtime + candTime})
	return out, minsup, nil
}

// RunTable2 regenerates Table 2: the comparison of the search strategies.
// small=true runs the top half (with TRANSLATOR-EXACT, minsup 1); false
// runs the bottom half (per-dataset minsup, no exact search). A nil
// profile list means the standard small/large group.
func RunTable2(ctx context.Context, w io.Writer, scale float64, small bool, profiles ...synth.Profile) ([]Table2Row, error) {
	if profiles == nil {
		if small {
			profiles = synth.SmallProfiles()
		} else {
			profiles = synth.LargeProfiles()
		}
	}
	var rows []Table2Row
	header := []string{"Dataset", "msup"}
	for _, p := range profiles {
		sp := p
		if scale > 0 && scale != 1 {
			sp = p.Scaled(scale)
		}
		d, _, err := synth.Generate(sp)
		if err != nil {
			return nil, err
		}
		cells, minsup, err := runTranslators(ctx, d, sp.MinSupport, small)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{Dataset: p.Name, MinSup: minsup, Methods: cells})
	}
	if len(rows) == 0 {
		return rows, nil
	}
	for _, mc := range rows[0].Methods {
		header = append(header, mc.Name+" |T|", mc.Name+" L%", mc.Name+" time")
	}
	t := NewTextTable(header...)
	for _, row := range rows {
		cells := []interface{}{row.Dataset, row.MinSup}
		for _, mc := range row.Methods {
			cells = append(cells, mc.T, mc.LPct, mc.Runtime)
		}
		t.AddRow(cells...)
	}
	half := "top (small datasets, minsup=1, with T-EXACT)"
	if !small {
		half = "bottom (large datasets, per-dataset minsup)"
	}
	fmt.Fprintf(w, "Table 2 %s\n", half)
	return rows, t.Render(w)
}

// Table3Row is one dataset × method row of Table 3.
type Table3Row struct {
	Dataset string
	Method  string
	Metrics Metrics
	Note    string
}

// RunTable3 regenerates Table 3: TRANSLATOR-SELECT(1) against the
// significant-rule, redescription and KRIMP baselines, all scored under
// the translation encoding.
func RunTable3(ctx context.Context, w io.Writer, scale float64, profiles []synth.Profile) ([]Table3Row, error) {
	if profiles == nil {
		profiles = synth.Profiles()
	}
	var rows []Table3Row
	for _, p := range profiles {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sp := p
		if scale > 0 && scale != 1 {
			sp = p.Scaled(scale)
		}
		d, _, err := synth.Generate(sp)
		if err != nil {
			return nil, err
		}
		coder := mdl.NewCoder(d)

		// TRANSLATOR-SELECT(1).
		start := time.Now()
		cands, _, err := cappedCandidates(ctx, d, sp.MinSupport)
		if err != nil {
			return nil, err
		}
		res, err := core.MineSelect(ctx, d, cands, core.SelectOptions{K: 1, ParallelOptions: par()})
		if err != nil {
			return nil, err
		}
		m := FromResult(d, res)
		m.Runtime = time.Since(start)
		rows = append(rows, Table3Row{p.Name, "TRANSLATOR", m, ""})

		// Significant rule discovery (MAGNUM OPUS substitute). The
		// baselines are not cancellable internally; the batch observes
		// ctx between methods.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start = time.Now()
		sig, err := sigrules.Mine(d, sigrules.Options{MinSupport: sp.MinSupport, Seed: sp.Seed})
		if err != nil {
			return nil, err
		}
		m = Evaluate(d, coder, sigrules.ToTable(sig))
		m.Runtime = time.Since(start)
		rows = append(rows, Table3Row{p.Name, "SIGRULES", m, ""})

		// Redescription mining (REREMI substitute).
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start = time.Now()
		rds := reremi.Mine(d, reremi.Options{MinSupport: sp.MinSupport})
		m = Evaluate(d, coder, reremi.ToTable(rds))
		m.Runtime = time.Since(start)
		rows = append(rows, Table3Row{p.Name, "REREMI", m, ""})

		// KRIMP on the concatenated views. Its candidates are *all*
		// closed itemsets of the joined data (not just two-view ones),
		// so the same §6.1 explosion protocol applies: double the
		// support until the candidate set is manageable.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start = time.Now()
		kminsup := maxI(2, sp.MinSupport)
		var kres *krimp.Result
		for {
			kres, err = krimp.Mine(d, krimp.Options{MinSupport: kminsup, MaxResults: maxCandidates})
			if err == nil {
				break
			}
			kminsup *= 2
			if kminsup > d.Size() {
				return nil, err
			}
		}
		ktab, dropped := krimp.ToTranslationTable(kres, d)
		m = Evaluate(d, coder, ktab)
		// The paper keeps the complete code table as the model, so
		// single-view itemsets still cost table bits without aiding the
		// translation — fold that in to match Table 3's protocol.
		if extra := krimp.SingleViewTableLen(d, coder, dropped); extra > 0 {
			if base := coder.BaselineLen(d); base > 0 {
				m.LPct += 100 * extra / base
			}
			m.NumRules += len(dropped)
		}
		m.Runtime = time.Since(start)
		note := ""
		if len(dropped) > 0 {
			note = fmt.Sprintf("incl. %d single-view itemsets", len(dropped))
		}
		rows = append(rows, Table3Row{p.Name, "KRIMP", m, note})
	}
	t := NewTextTable("Dataset", "Method", "|T|", "l", "|C|%", "c+", "L%", "time", "note")
	for _, r := range rows {
		t.AddRow(r.Dataset, r.Method, r.Metrics.NumRules, r.Metrics.AvgLen,
			r.Metrics.CorrPct, r.Metrics.AvgConf, r.Metrics.LPct, r.Metrics.Runtime, r.Note)
	}
	fmt.Fprintln(w, "Table 3: TRANSLATOR vs significant rules, redescriptions, KRIMP")
	return rows, t.Render(w)
}

// RunFig2 regenerates Fig. 2: the evolution of |U|, |E| and the encoded
// lengths while TRANSLATOR-SELECT(1) builds a table for House.
func RunFig2(ctx context.Context, w io.Writer, scale float64) ([]core.IterationStats, error) {
	p, err := synth.ProfileByName("house")
	if err != nil {
		return nil, err
	}
	d, _, err := Gen(p, scale)
	if err != nil {
		return nil, err
	}
	cands, _, err := cappedCandidates(ctx, d, p.MinSupport)
	if err != nil {
		return nil, err
	}
	res, err := core.MineSelect(ctx, d, cands, core.SelectOptions{K: 1, ParallelOptions: par()})
	if err != nil {
		return nil, err
	}
	t := NewTextTable("iter", "|U_L|", "|U_R|", "|E_L|", "|E_R|",
		"L(T)", "L(D_L→R|T)", "L(D_L←R|T)", "L(D_L↔R,T)")
	base := res.State.Baseline()
	t.AddRow(0, d.Ones(dataset.Left), d.Ones(dataset.Right), 0, 0,
		0.0, "", "", fmt.Sprintf("%.0f", base))
	for _, it := range res.Iterations {
		t.AddRow(it.Iteration, it.UncoveredL, it.UncoveredR, it.ErrorsL, it.ErrorsR,
			it.TableLen, fmt.Sprintf("%.0f", it.CorrLenR), fmt.Sprintf("%.0f", it.CorrLenL),
			fmt.Sprintf("%.0f", it.Score))
	}
	fmt.Fprintln(w, "Fig. 2: construction of a translation table for House with T-SELECT(1)")
	return res.Iterations, t.Render(w)
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
