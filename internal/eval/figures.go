package eval

import (
	"context"
	"fmt"
	"io"
	"time"

	"twoview/internal/baseline/assoc"
	"twoview/internal/baseline/reremi"
	"twoview/internal/baseline/sigrules"
	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/synth"
)

// methodTables mines the three rule sets Fig. 3–6 compare: TRANSLATOR-
// SELECT(1), significant rules and redescriptions, on one dataset.
func methodTables(ctx context.Context, d *dataset.Dataset, minsup int, seed int64) (map[string]*core.Table, error) {
	out := map[string]*core.Table{}
	cands, _, err := cappedCandidates(ctx, d, minsup)
	if err != nil {
		return nil, err
	}
	res, err := core.MineSelect(ctx, d, cands, core.SelectOptions{K: 1, ParallelOptions: par()})
	if err != nil {
		return nil, err
	}
	out["TRANSLATOR"] = res.Table
	sig, err := sigrules.Mine(d, sigrules.Options{MinSupport: minsup, Seed: seed})
	if err != nil {
		return nil, err
	}
	out["SIGRULES"] = sigrules.ToTable(sig)
	out["REREMI"] = reremi.ToTable(reremi.Mine(d, reremi.Options{MinSupport: minsup}))
	return out, nil
}

// RunFig3 regenerates Fig. 3: DOT visualizations of the rule sets found
// on CAL500 and House by the three methods. The writer receives one DOT
// graph per (dataset, method), separated by comment headers.
func RunFig3(ctx context.Context, w io.Writer, scale float64) error {
	for _, name := range []string{"cal500", "house"} {
		p, err := synth.ProfileByName(name)
		if err != nil {
			return err
		}
		d, _, err := Gen(p, scale)
		if err != nil {
			return err
		}
		tables, err := methodTables(ctx, d, p.MinSupport, p.Seed)
		if err != nil {
			return err
		}
		for _, method := range []string{"TRANSLATOR", "SIGRULES", "REREMI"} {
			fmt.Fprintf(w, "// Fig. 3: %s on %s (%d rules)\n", method, name, tables[method].Size())
			if err := WriteDot(w, d, tables[method], name+"-"+method); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// RunExampleRules regenerates Figs. 4 and 5: the top three rules per
// method on the named dataset.
func RunExampleRules(ctx context.Context, w io.Writer, profile string, scale float64) error {
	p, err := synth.ProfileByName(profile)
	if err != nil {
		return err
	}
	d, _, err := Gen(p, scale)
	if err != nil {
		return err
	}
	tables, err := methodTables(ctx, d, p.MinSupport, p.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Example rules mined from %s (top 3 per method)\n", profile)
	for _, method := range []string{"TRANSLATOR", "SIGRULES", "REREMI"} {
		fmt.Fprintf(w, "\n%s:\n", method)
		stats := TopRules(d, tables[method], 3)
		if len(stats) == 0 {
			fmt.Fprintln(w, "  (no rules)")
			continue
		}
		for _, rs := range stats {
			fmt.Fprintf(w, "  %-60s supp=%-5d c+=%.2f\n", rs.Rule.Format(d), rs.Supp, rs.Conf)
		}
	}
	return nil
}

// RunFig6 regenerates Fig. 6: every rule containing one focus item
// (the 'Genre:Rock' analogue) per method on CAL500. The focus item is the
// most frequent right-hand item of the TRANSLATOR table, which plays the
// same role as a prominent genre item.
func RunFig6(ctx context.Context, w io.Writer, scale float64) error {
	p, err := synth.ProfileByName("cal500")
	if err != nil {
		return err
	}
	d, _, err := Gen(p, scale)
	if err != nil {
		return err
	}
	tables, err := methodTables(ctx, d, p.MinSupport, p.Seed)
	if err != nil {
		return err
	}
	focus := mostUsedItem(tables["TRANSLATOR"], dataset.Right)
	if focus < 0 {
		fmt.Fprintln(w, "Fig. 6: no rules found, no focus item")
		return nil
	}
	fmt.Fprintf(w, "Fig. 6: rules containing right-hand item %q per method\n",
		d.Name(dataset.Right, focus))
	for _, method := range []string{"TRANSLATOR", "SIGRULES", "REREMI"} {
		fmt.Fprintf(w, "\n%s:\n", method)
		rules := RulesWithItem(tables[method], dataset.Right, focus)
		if len(rules) == 0 {
			fmt.Fprintln(w, "  (none)")
			continue
		}
		for _, r := range rules {
			fmt.Fprintf(w, "  %-60s c+=%.2f\n", r.Format(d), MaxConfidence(d, r))
		}
	}
	return nil
}

// RunFig7 regenerates Fig. 7: example rules from Elections, where only
// TRANSLATOR output is shown in the paper.
func RunFig7(ctx context.Context, w io.Writer, scale float64) error {
	p, err := synth.ProfileByName("elections")
	if err != nil {
		return err
	}
	d, _, err := Gen(p, scale)
	if err != nil {
		return err
	}
	cands, _, err := cappedCandidates(ctx, d, p.MinSupport)
	if err != nil {
		return err
	}
	res, err := core.MineSelect(ctx, d, cands, core.SelectOptions{K: 1, ParallelOptions: par()})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig. 7: example rules mined from Elections with T-SELECT(1)")
	for _, rs := range TopRules(d, res.Table, 4) {
		fmt.Fprintf(w, "  %-60s supp=%-5d c+=%.2f\n", rs.Rule.Format(d), rs.Supp, rs.Conf)
	}
	return nil
}

// mostUsedItem returns the item of view v occurring in the most rules of
// t, or -1 for an empty table.
func mostUsedItem(t *core.Table, v dataset.View) int {
	// Dense counting slice rather than a map: items are small column
	// indices, and slice iteration makes the smallest-item tie-break
	// order-independent by construction (detorder-clean).
	maxItem := -1
	for _, r := range t.Rules {
		side := r.X
		if v == dataset.Right {
			side = r.Y
		}
		for _, i := range side {
			if i > maxItem {
				maxItem = i
			}
		}
	}
	if maxItem < 0 {
		return -1
	}
	counts := make([]int, maxItem+1)
	for _, r := range t.Rules {
		side := r.X
		if v == dataset.Right {
			side = r.Y
		}
		for _, i := range side {
			counts[i]++
		}
	}
	best, bestN := -1, 0
	for i, n := range counts {
		if n > bestN {
			best, bestN = i, n
		}
	}
	return best
}

// RunRecovery runs the extension experiment X1: planted-rule recovery.
// For each profile, SELECT(1) is mined and we report how many planted
// rules are matched by a mined rule (item overlap on both sides) and the
// exact-match count.
func RunRecovery(ctx context.Context, w io.Writer, scale float64, profiles []synth.Profile) error {
	if profiles == nil {
		profiles = synth.SmallProfiles()
	}
	t := NewTextTable("Dataset", "planted", "overlap-recovered", "exact", "|T|", "L%")
	for _, p := range profiles {
		sp := p
		if scale > 0 && scale != 1 {
			sp = p.Scaled(scale)
		}
		d, planted, err := synth.Generate(sp)
		if err != nil {
			return err
		}
		cands, _, err := cappedCandidates(ctx, d, sp.MinSupport)
		if err != nil {
			return err
		}
		res, err := core.MineSelect(ctx, d, cands, core.SelectOptions{K: 1, ParallelOptions: par()})
		if err != nil {
			return err
		}
		overlap, exact := 0, 0
		for _, pr := range planted {
			matched, exactMatch := false, false
			for _, mr := range res.Table.Rules {
				if pr.X.Intersects(mr.X) && pr.Y.Intersects(mr.Y) {
					matched = true
				}
				if pr.X.Equal(mr.X) && pr.Y.Equal(mr.Y) {
					exactMatch = true
				}
			}
			if matched {
				overlap++
			}
			if exactMatch {
				exact++
			}
		}
		m := FromResult(d, res)
		t.AddRow(p.Name, len(planted), overlap, exact, m.NumRules, m.LPct)
	}
	fmt.Fprintln(w, "Extension X1: planted-rule recovery with T-SELECT(1)")
	return t.Render(w)
}

// RunExplosion regenerates §6.3's opening comparison: the number of raw
// cross-view association rules (mined with the lowest c+ and support of
// any TRANSLATOR rule as thresholds, exactly the paper's protocol)
// against the number of rules TRANSLATOR selects.
func RunExplosion(ctx context.Context, w io.Writer, scale float64, profiles []synth.Profile) error {
	if profiles == nil {
		profiles = []synth.Profile{
			mustProfile("car"), mustProfile("house"),
			mustProfile("wine"), mustProfile("yeast"),
		}
	}
	t := NewTextTable("Dataset", "|T| (TRANSLATOR)", "minconf", "minsupp", "assoc rules", "ratio")
	for _, p := range profiles {
		sp := p
		if scale > 0 && scale != 1 {
			sp = p.Scaled(scale)
		}
		d, _, err := synth.Generate(sp)
		if err != nil {
			return err
		}
		cands, _, err := cappedCandidates(ctx, d, sp.MinSupport)
		if err != nil {
			return err
		}
		res, err := core.MineSelect(ctx, d, cands, core.SelectOptions{K: 1, ParallelOptions: par()})
		if err != nil {
			return err
		}
		if res.Table.Size() == 0 {
			t.AddRow(p.Name, 0, "-", "-", "-", "-")
			continue
		}
		// The paper's thresholds: the lowest c+ and joint support among
		// the TRANSLATOR rules, per dataset.
		minConf, minSupp := 1.0, d.Size()
		for _, r := range res.Table.Rules {
			if c := MaxConfidence(d, r); c < minConf {
				minConf = c
			}
			if s := d.JointSupportSet(r.X, r.Y).Count(); s < minSupp {
				minSupp = s
			}
		}
		n, err := assoc.Count(d, assoc.Options{MinSupport: minSupp, MinConfidence: minConf})
		if err != nil {
			return err
		}
		ratio := float64(n) / float64(res.Table.Size())
		t.AddRow(p.Name, res.Table.Size(),
			fmt.Sprintf("%.2f", minConf), minSupp, n, fmt.Sprintf("%.0fx", ratio))
	}
	fmt.Fprintln(w, "§6.3 pattern explosion: raw cross-view association rules vs TRANSLATOR")
	return t.Render(w)
}

// RunAblation runs extension X2: wall-clock effect of the §5.2 pruning
// bounds on the first TRANSLATOR-EXACT iterations.
func RunAblation(ctx context.Context, w io.Writer, scale float64, rules int, profiles []synth.Profile) error {
	if profiles == nil {
		// Narrow datasets: the unpruned ablation runs enumerate the whole
		// occurring-pair space, which is infeasible on wide data (wine).
		profiles = []synth.Profile{mustProfile("car"), mustProfile("tictactoe"), mustProfile("yeast")}
	}
	t := NewTextTable("Dataset", "full pruning", "no rub", "no qub", "no bounds")
	for _, p := range profiles {
		d, _, err := Gen(p, scale)
		if err != nil {
			return err
		}
		var times []time.Duration
		for _, opt := range []core.ExactOptions{
			{MaxRules: rules, ParallelOptions: par()},
			{MaxRules: rules, DisableRub: true, ParallelOptions: par()},
			{MaxRules: rules, DisableQub: true, ParallelOptions: par()},
			{MaxRules: rules, DisableRub: true, DisableQub: true, ParallelOptions: par()},
		} {
			start := time.Now()
			if _, err := core.MineExact(ctx, d, opt); err != nil {
				return err
			}
			times = append(times, time.Since(start))
		}
		t.AddRow(p.Name, times[0], times[1], times[2], times[3])
	}
	fmt.Fprintf(w, "Extension X2: pruning ablation (first %d exact rules)\n", rules)
	return t.Render(w)
}

func mustProfile(name string) synth.Profile {
	p, err := synth.ProfileByName(name)
	if err != nil {
		panic(err)
	}
	return p
}
