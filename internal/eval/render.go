package eval

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// TextTable accumulates rows and renders them with aligned columns, right
// alignment for numeric-looking cells.
type TextTable struct {
	header []string
	rows   [][]string
}

// NewTextTable creates a table with the given column headers.
func NewTextTable(header ...string) *TextTable {
	return &TextTable{header: header}
}

// AddRow appends one row; each cell is formatted with %v.
func (t *TextTable) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the aligned table to w.
func (t *TextTable) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *TextTable) String() string {
	var b strings.Builder
	t.Render(&b) // strings.Builder never errors
	return b.String()
}
