package pool

import "context"

// Context-aware phase submission. Every primitive in this file is the
// exact counterpart of its ctx-less sibling with one extra rule: once
// ctx is cancelled, no new tasks are dispensed. Tasks already running
// finish normally, the phase barrier releases as usual, and the Runtime
// stays fully reusable — a cancelled phase drains its workers back to
// the parked state instead of wedging them. The primitives then report
// ctx.Err().
//
// The determinism contract is unaffected: with an uncancelled context
// the per-task ctx.Err() probe reads nil and the execution is
// instruction-for-instruction the one the ctx-less primitive performs,
// so results stay bit-identical for every worker count. Under
// cancellation the partial work is discarded by the callers (they
// return the context error), so the schedule-dependence of *which*
// tasks ran before the cut is never observable.
//
// Cancellation granularity is the task: a phase stops between tasks,
// never inside one. Long-running tasks (deep search branches) keep
// their own periodic ctx probes — see the miners — so the latency of a
// cancellation is bounded by a probe interval, not by a whole branch.

// RunCtx is Run with a cancellation cut between tasks: when ctx is
// cancelled, the dispensing of new tasks stops, running tasks finish,
// and ctx.Err() is returned. A nil error means every task ran.
func (p *Pool[S]) RunCtx(ctx context.Context, tasks int, fn func(s S, task int)) error {
	if len(p.states) == 1 {
		for t := 0; t < tasks; t++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(p.states[0], t)
		}
		return ctx.Err()
	}
	p.rt.phase(len(p.states), tasks, func(slot, t int) bool {
		if ctx.Err() != nil {
			return false
		}
		fn(p.states[slot], t)
		return true
	})
	return ctx.Err()
}

// RunErrCtx is RunErr with the cancellation cut of RunCtx. When the
// context is cancelled its error takes precedence over any task error:
// task errors observed mid-cancellation are schedule-dependent, while
// ctx.Err() is not.
func (p *Pool[S]) RunErrCtx(ctx context.Context, tasks int, fn func(s S, task int) error) error {
	err := p.RunErr(tasks, func(s S, task int) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return fn(s, task)
	})
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// MapOrderedIntoCtxOn is MapOrderedIntoOn with the cancellation cut of
// RunCtx. On cancellation the returned slice (resized to length n, with
// only some slots written) is scratch for reuse, never data: callers
// must discard its contents alongside the returned ctx.Err().
func MapOrderedIntoCtxOn[T any](rt *Runtime, ctx context.Context, dst []T, workers, n int, fn func(i int) T) ([]T, error) {
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]T, n)
	}
	workers = Size(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return dst, err
			}
			dst[i] = fn(i)
		}
		return dst, ctx.Err()
	}
	if rt == nil {
		rt = Default()
	}
	rt.phase(workers, n, func(_, i int) bool {
		if ctx.Err() != nil {
			return false
		}
		dst[i] = fn(i)
		return true
	})
	return dst, ctx.Err()
}

// MapChunksIntoCtxOn is MapChunksIntoOn with the cancellation cut of
// RunCtx. On cancellation the returned slice is dst unchanged (no
// partial chunks are appended) alongside ctx.Err().
func MapChunksIntoCtxOn[T any](rt *Runtime, ctx context.Context, dst []T, workers, n, chunk int, fn func(lo, hi int) []T) ([]T, error) {
	if n <= 0 {
		return dst, ctx.Err()
	}
	if chunk < 1 {
		chunk = 1
	}
	tasks := (n + chunk - 1) / chunk
	if tasks == 1 {
		if err := ctx.Err(); err != nil {
			return dst, err
		}
		part := fn(0, n)
		// Honour the no-partial-appends contract: a cancellation during
		// the chunk leaves dst untouched, like the multi-task path.
		if err := ctx.Err(); err != nil {
			return dst, err
		}
		return append(dst, part...), nil
	}
	parts := make([][]T, tasks)
	if rt == nil {
		rt = Default()
	}
	rt.phase(Size(workers, tasks), tasks, func(_, t int) bool {
		if ctx.Err() != nil {
			return false
		}
		lo := t * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		parts[t] = fn(lo, hi)
		return true
	})
	if err := ctx.Err(); err != nil {
		return dst, err
	}
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	if free := cap(dst) - len(dst); free < total {
		grown := make([]T, len(dst), len(dst)+total)
		copy(grown, dst)
		dst = grown
	}
	for _, part := range parts {
		dst = append(dst, part...)
	}
	return dst, nil
}
