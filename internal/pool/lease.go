package pool

import (
	"context"
	"time"
)

// Lease bounds phase work with a deadline: it derives a
// deadline-carrying context whose expiry stops the dispensing of new
// tasks exactly like an explicit cancellation (see ctx.go), so a phase
// run under a lease can never hold its workers past the grant. It is
// the worker-side half of the shard supervisor's lease protocol
// (internal/shard): the supervisor grants a lease with each dispatched
// message, the shard runs its scoring phases under Lease.Context, and
// a shard that cannot finish in time drains its own phase and reports
// failure instead of wedging — while the supervisor independently
// detects the blown lease and rebuilds the partition.
//
// Determinism is unaffected in the usual way: an unexpired lease is an
// uncancelled context, under which the ctx-aware primitives are
// bit-identical to their plain siblings; an expired lease surfaces as
// context.DeadlineExceeded and the caller discards the partial work.
type Lease struct {
	ctx    context.Context
	cancel context.CancelFunc
}

// NewLease grants a lease of duration d under parent. Call End when the
// leased work is finished (expired or not) to release the timer.
func NewLease(parent context.Context, d time.Duration) Lease {
	ctx, cancel := context.WithTimeout(parent, d)
	return Lease{ctx: ctx, cancel: cancel}
}

// Context returns the lease's deadline-bounded context, for the ctx
// phase primitives (RunCtx, MapOrderedIntoCtxOn, ...).
func (l Lease) Context() context.Context { return l.ctx }

// Expired reports whether the lease can no longer authorize work:
// its deadline passed, its End was called, or its parent was cancelled.
func (l Lease) Expired() bool { return l.ctx.Err() != nil }

// Err returns the lease context's error: nil while the lease is live,
// context.DeadlineExceeded once the grant ran out, or the parent's
// cancellation error.
func (l Lease) Err() error { return l.ctx.Err() }

// End releases the lease's timer resources and invalidates it. Safe to
// call more than once.
func (l Lease) End() { l.cancel() }
