package pool

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// Many small phases on one persistent pool: the round-structured shape
// of the searches (SELECT rounds, GREEDY blocks). Every task of every
// phase must run exactly once on the parked workers. Run under -race in
// CI, this also checks the phase barrier publishes worker-state writes.
func TestRuntimeManySmallPhases(t *testing.T) {
	rt := NewRuntime()
	defer rt.Close()
	p := NewOn(rt, 4, func(w int) *int { return new(int) })
	want := 0
	for round := 0; round < 300; round++ {
		tasks := round % 9 // includes zero-task phases
		want += tasks
		p.Run(tasks, func(s *int, _ int) { *s++ })
	}
	got := 0
	for _, s := range p.States() {
		got += *s
	}
	if got != want {
		t.Fatalf("ran %d tasks across phases, want %d", got, want)
	}
}

// Sequential pools on one runtime share its parked workers.
func TestRuntimeSharedAcrossPools(t *testing.T) {
	rt := NewRuntime()
	defer rt.Close()
	for i := 0; i < 10; i++ {
		p := NewOn(rt, 3, func(w int) *[]int { return new([]int) })
		p.Run(50, func(s *[]int, task int) { *s = append(*s, task) })
		n := 0
		for _, s := range p.States() {
			n += len(*s)
		}
		if n != 50 {
			t.Fatalf("pool %d: %d tasks ran, want 50", i, n)
		}
	}
	var total atomic.Int64
	out := MapOrderedOn(rt, 4, 100, func(i int) int { total.Add(1); return i })
	if len(out) != 100 || total.Load() != 100 {
		t.Fatalf("MapOrderedOn: len=%d calls=%d", len(out), total.Load())
	}
	chunks := MapChunksIntoOn(rt, nil, 4, 100, 8, func(lo, hi int) []int {
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	})
	for i, v := range chunks {
		if v != i {
			t.Fatalf("MapChunksIntoOn: chunks[%d] = %d", i, v)
		}
	}
}

// A panic in a task must propagate to the submitting goroutine and must
// not wedge the parked workers: the same runtime keeps executing
// subsequent phases, and the panicking phase's barrier still releases.
func TestRuntimePanicDoesNotWedgeWorkers(t *testing.T) {
	rt := NewRuntime()
	defer rt.Close()
	p := NewOn(rt, 4, func(w int) struct{} { return struct{}{} })

	for round := 0; round < 3; round++ {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("round %d: panic did not propagate", round)
				}
				if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
					t.Fatalf("round %d: unexpected panic value %v", round, r)
				}
			}()
			p.Run(100, func(_ struct{}, task int) {
				if task == 17 {
					panic("boom")
				}
			})
		}()

		// The runtime must still be fully operational.
		var ran atomic.Int64
		p.Run(64, func(struct{}, int) { ran.Add(1) })
		if ran.Load() != 64 {
			t.Fatalf("round %d: %d tasks ran after panic, want 64", round, ran.Load())
		}
	}
}

// Panic propagation on the serial (inline) path needs no recovery
// machinery but must behave the same.
func TestRuntimePanicSerial(t *testing.T) {
	p := New(1, func(w int) struct{} { return struct{}{} })
	defer func() {
		if recover() == nil {
			t.Fatal("serial panic did not propagate")
		}
	}()
	p.Run(5, func(_ struct{}, task int) {
		if task == 3 {
			panic("boom")
		}
	})
}

// Pool edge cases: more workers than tasks, and zero tasks.
func TestPoolEdgeCases(t *testing.T) {
	rt := NewRuntime()
	defer rt.Close()

	// workers > tasks: every task still runs exactly once.
	p := NewOn(rt, 7, func(w int) *[]int { return new([]int) })
	p.Run(3, func(s *[]int, task int) { *s = append(*s, task) })
	seen := map[int]int{}
	for _, s := range p.States() {
		for _, task := range *s {
			seen[task]++
		}
	}
	if len(seen) != 3 || seen[0] != 1 || seen[1] != 1 || seen[2] != 1 {
		t.Fatalf("workers>tasks: task coverage %v", seen)
	}

	// tasks == 0: no-op, no deadlock, states untouched.
	ran := false
	p.Run(0, func(*[]int, int) { ran = true })
	if ran {
		t.Fatal("zero-task phase ran a task")
	}
	if err := p.RunErr(0, func(*[]int, int) error { return nil }); err != nil {
		t.Fatalf("zero-task RunErr: %v", err)
	}
}

// RunErr on the runtime: failures stop dispensing, the runtime stays
// usable, and the phase barrier releases with undispensed tasks
// refunded.
func TestRuntimeRunErrStops(t *testing.T) {
	rt := NewRuntime()
	defer rt.Close()
	p := NewOn(rt, 4, func(w int) struct{} { return struct{}{} })
	var dispensed atomic.Int64
	err := p.RunErr(10_000, func(_ struct{}, task int) error {
		dispensed.Add(1)
		if task >= 5 {
			return errBoom{}
		}
		return nil
	})
	if err == nil {
		t.Fatal("error not returned")
	}
	if n := dispensed.Load(); n >= 10_000 {
		t.Fatalf("dispensing did not stop early (%d tasks ran)", n)
	}
	// Still alive.
	var ran atomic.Int64
	p.Run(32, func(struct{}, int) { ran.Add(1) })
	if ran.Load() != 32 {
		t.Fatalf("%d tasks ran after RunErr stop, want 32", ran.Load())
	}
}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }

// Concurrent submitters may share one runtime; phases must not corrupt
// each other. (The searches submit sequentially, but the runtime's
// contract is stronger.)
func TestRuntimeConcurrentSubmitters(t *testing.T) {
	rt := NewRuntime()
	defer rt.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := NewOn(rt, 3, func(w int) *int { return new(int) })
			for round := 0; round < 50; round++ {
				p.Run(20, func(s *int, _ int) { *s++ })
			}
			total := 0
			for _, s := range p.States() {
				total += *s
			}
			if total != 50*20 {
				t.Errorf("submitter ran %d tasks, want 1000", total)
			}
		}()
	}
	wg.Wait()
}

// Close is idempotent and leaves running work unharmed when called
// after the last phase.
func TestRuntimeCloseIdempotent(t *testing.T) {
	rt := NewRuntime()
	p := NewOn(rt, 2, func(w int) struct{} { return struct{}{} })
	p.Run(10, func(struct{}, int) {})
	rt.Close()
	rt.Close()
}

// Close racing an in-flight phase must not panic or lose tasks: the
// phase stops recruiting helpers and the submitter drains the tasks
// itself. New submissions after Close panic with the pool's own
// message.
func TestRuntimeCloseMidPhase(t *testing.T) {
	rt := NewRuntime()
	p := NewOn(rt, 4, func(w int) struct{} { return struct{}{} })
	var once sync.Once
	var ran atomic.Int64
	p.Run(200, func(_ struct{}, task int) {
		// Close lands while the phase is running (and possibly still
		// recruiting); every task must complete regardless.
		once.Do(rt.Close)
		ran.Add(1)
	})
	if ran.Load() != 200 {
		t.Fatalf("%d tasks ran across Close, want 200", ran.Load())
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("submission after Close did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "closed Runtime") {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	p.Run(10, func(struct{}, int) {})
}
