package pool

import (
	"errors"
	"sort"
	"sync"
	"testing"
)

func TestSize(t *testing.T) {
	for _, tc := range []struct{ workers, tasks, min, max int }{
		{1, 100, 1, 1},
		{4, 100, 4, 4},
		{4, 2, 2, 2},             // workers > tasks: capped at tasks
		{7, 3, 3, 3},             // workers > tasks again
		{0, 0, 1, 1},             // tasks == 0: still at least one worker
		{4, 0, 1, 1},             // tasks == 0 with explicit workers
		{1, 0, 1, 1},             // tasks == 0, serial
		{0, 1 << 30, 1, 1 << 30}, // 0 → GOMAXPROCS, whatever it is
		{-3, 5, 1, 5},
	} {
		got := Size(tc.workers, tc.tasks)
		if got < tc.min || got > tc.max {
			t.Errorf("Size(%d, %d) = %d, want in [%d, %d]",
				tc.workers, tc.tasks, got, tc.min, tc.max)
		}
	}
}

func TestMaxRaise(t *testing.T) {
	var m Max
	if m.Load() != 0 {
		t.Fatalf("zero Max loads %v", m.Load())
	}
	m.Raise(1.5)
	m.Raise(0.5) // lower: no effect
	if m.Load() != 1.5 {
		t.Fatalf("Load = %v, want 1.5", m.Load())
	}
	// Concurrent raises settle on the global maximum.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Raise(float64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if m.Load() != 7999 {
		t.Fatalf("concurrent max = %v, want 7999", m.Load())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Add()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 400 {
		t.Fatalf("counter = %d, want 400", c.Load())
	}
}

// Every task must run exactly once, on some worker's own state.
func TestPoolRunCoversAllTasks(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		p := New(workers, func(w int) *[]int { return new([]int) })
		p.Run(100, func(s *[]int, task int) { *s = append(*s, task) })
		var all []int
		for _, s := range p.States() {
			all = append(all, *s...)
		}
		sort.Ints(all)
		if len(all) != 100 {
			t.Fatalf("workers=%d: %d tasks ran, want 100", workers, len(all))
		}
		for i, v := range all {
			if v != i {
				t.Fatalf("workers=%d: task %d missing or duplicated", workers, i)
			}
		}
	}
}

// Sequential phases over the same pool share worker states.
func TestPoolPhases(t *testing.T) {
	p := New(3, func(w int) *int { return new(int) })
	p.Run(30, func(s *int, _ int) { *s++ })
	p.Run(12, func(s *int, _ int) { *s++ })
	total := 0
	for _, s := range p.States() {
		total += *s
	}
	if total != 42 {
		t.Fatalf("phase totals = %d, want 42", total)
	}
}

func TestPoolRunErr(t *testing.T) {
	errBoom := errors.New("boom")
	for _, workers := range []int{1, 2, 4} {
		p := New(workers, func(w int) struct{} { return struct{}{} })
		err := p.RunErr(50, func(_ struct{}, task int) error {
			if task >= 10 {
				return errBoom
			}
			return nil
		})
		if !errors.Is(err, errBoom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		if err := p.RunErr(20, func(struct{}, int) error { return nil }); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		out := MapOrdered(workers, 100, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
	if out := MapOrdered(4, 0, func(i int) int { return i }); len(out) != 0 {
		t.Fatal("empty map not empty")
	}
}

// MapChunksInto output must be the in-order concatenation, independent of
// worker count, including chunks that produce a variable number of
// results.
func TestMapChunksIntoDeterministic(t *testing.T) {
	fn := func(lo, hi int) []int {
		var out []int
		for i := lo; i < hi; i++ {
			if i%3 != 0 { // variable-length chunk output
				out = append(out, i)
			}
		}
		return out
	}
	want := MapChunksInto(nil, 1, 1000, 64, fn)
	for _, workers := range []int{2, 4, 7} {
		got := MapChunksInto(nil, workers, 1000, 64, fn)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// MapChunksInto must append to the destination and reuse its capacity
// when it suffices (the per-round buffer-reuse pattern of MineSelect).
func TestMapChunksInto(t *testing.T) {
	fn := func(lo, hi int) []int {
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	}
	got := MapChunksInto([]int{-1}, 4, 100, 16, fn)
	if len(got) != 101 || got[0] != -1 || got[1] != 0 || got[100] != 99 {
		t.Fatalf("prefix not preserved: len=%d got[0]=%d", len(got), got[0])
	}
	buf := make([]int, 0, 256)
	out := MapChunksInto(buf, 4, 100, 16, fn)
	if &out[:1][0] != &buf[:1][0] {
		t.Fatal("sufficient capacity was not reused")
	}
	if out2 := MapChunksInto(nil, 3, 0, 16, fn); len(out2) != 0 {
		t.Fatal("n=0 must return dst unchanged")
	}
}
