package pool

// Stress tests and benchmarks for the cond-parked phase handoff: the
// wake-all Broadcast that replaced the per-worker channel rendezvous.
// The failure mode of a broken generation/broadcast protocol is a lost
// wakeup — a worker parked forever while a phase waits for its helper —
// which these tests surface as a test-binary timeout; the -race runs in
// CI additionally check the claim bookkeeping under contention.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// Thousands of tiny phases from concurrent submitters on one shared
// Runtime: the worst case for handoff, every phase pays the full
// submit/wake/claim/park round trip and the parked set is churning
// constantly. Every task of every phase must run exactly once.
func TestHandoffStressTinyPhases(t *testing.T) {
	rt := NewRuntime()
	defer rt.Close()
	const (
		submitters = 4
		rounds     = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := NewOn(rt, 3, func(w int) *int { return new(int) })
			want := 0
			for round := 0; round < rounds; round++ {
				tasks := 1 + (g+round)%3
				want += tasks
				p.Run(tasks, func(s *int, _ int) { *s++ })
			}
			got := 0
			for _, s := range p.States() {
				got += *s
			}
			if got != want {
				t.Errorf("submitter %d: ran %d tasks, want %d", g, got, want)
			}
		}(g)
	}
	wg.Wait()
}

// Panicking and context-cancelled phases interleaved with healthy ones
// on one Runtime: neither may wedge a parked worker or leak a pending
// claim that a later phase's helper could swallow.
func TestHandoffStressPanicAndCancel(t *testing.T) {
	rt := NewRuntime()
	defer rt.Close()
	p := NewOn(rt, 4, func(w int) struct{} { return struct{}{} })
	for round := 0; round < 200; round++ {
		switch round % 3 {
		case 0: // healthy phase
			var ran atomic.Int64
			p.Run(16, func(struct{}, int) { ran.Add(1) })
			if ran.Load() != 16 {
				t.Fatalf("round %d: %d tasks ran, want 16", round, ran.Load())
			}
		case 1: // panicking phase
			func() {
				defer func() {
					if recover() == nil {
						t.Fatalf("round %d: panic did not propagate", round)
					}
				}()
				p.Run(32, func(_ struct{}, task int) {
					if task == 7 {
						panic("handoff stress boom")
					}
				})
			}()
		case 2: // cancelled phase
			ctx, cancel := context.WithCancel(context.Background())
			err := p.RunCtx(ctx, 64, func(_ struct{}, task int) {
				if task == 3 {
					cancel()
				}
			})
			cancel()
			if err != context.Canceled {
				t.Fatalf("round %d: RunCtx = %v, want context.Canceled", round, err)
			}
		}
	}
}

// A Runtime reused across sequential pools with full drains in between
// (the Session lifecycle: mine, idle, mine again) keeps waking its
// parked workers; spawned workers are reused, not multiplied.
func TestHandoffRuntimeReuse(t *testing.T) {
	rt := NewRuntime()
	defer rt.Close()
	for session := 0; session < 20; session++ {
		p := NewOn(rt, 4, func(w int) *int { return new(int) })
		for round := 0; round < 20; round++ {
			p.Run(8, func(s *int, _ int) { *s++ })
		}
		total := 0
		for _, s := range p.States() {
			total += *s
		}
		if total != 20*8 {
			t.Fatalf("session %d: ran %d tasks, want 160", session, total)
		}
	}
	rt.mu.Lock()
	spawned, demand, pending := rt.spawned, rt.demand, len(rt.pending)
	rt.mu.Unlock()
	if spawned > 3 {
		t.Fatalf("spawned %d workers for 4-slot phases, want <= 3", spawned)
	}
	if demand != 0 || pending != 0 {
		t.Fatalf("after drain: demand=%d pending=%d, want 0/0", demand, pending)
	}
}

// BenchmarkPhaseHandoff measures the cost of one empty phase — submit,
// wake, claim, barrier — with zero-work tasks, so the number is pure
// handoff overhead. One task per slot keeps every helper recruited.
func BenchmarkPhaseHandoff(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			rt := NewRuntime()
			defer rt.Close()
			p := NewOn(rt, workers, func(w int) struct{} { return struct{}{} })
			p.Run(workers, func(struct{}, int) {}) // spawn the workers up front
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Run(workers, func(struct{}, int) {})
			}
		})
	}
}
