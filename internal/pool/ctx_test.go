package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// A context cancelled before submission runs no tasks at all.
func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rt := NewRuntime()
	defer rt.Close()
	p := NewOn(rt, 4, func(int) int { return 0 })
	var ran atomic.Int64
	err := p.RunCtx(ctx, 100, func(int, int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d tasks ran on a pre-cancelled context", n)
	}
}

// Cancelling mid-phase stops the dispensing of new tasks, drains the
// running ones, and leaves the Runtime fully reusable: a follow-up
// phase on the same runtime (and the same pool) completes normally.
func TestRunCtxMidPhaseCancelDrainsAndReuses(t *testing.T) {
	rt := NewRuntime()
	defer rt.Close()
	for _, workers := range []int{1, 2, 4, 7} {
		ctx, cancel := context.WithCancel(context.Background())
		p := NewOn(rt, workers, func(int) int { return 0 })
		var ran atomic.Int64
		err := p.RunCtx(ctx, 1000, func(_ int, task int) {
			if task == 3 {
				cancel()
			}
			ran.Add(1)
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n >= 1000 {
			t.Fatalf("workers=%d: cancellation did not cut the phase (%d tasks ran)", workers, n)
		}
		// The runtime must not be wedged: a fresh phase completes.
		ran.Store(0)
		if err := p.RunCtx(context.Background(), 50, func(int, int) { ran.Add(1) }); err != nil {
			t.Fatalf("workers=%d: follow-up phase failed: %v", workers, err)
		}
		if n := ran.Load(); n != 50 {
			t.Fatalf("workers=%d: follow-up phase ran %d of 50 tasks", workers, n)
		}
		cancel()
	}
}

// The context error takes precedence over task errors in RunErrCtx, and
// plain task errors still pass through untouched when the context stays
// alive.
func TestRunErrCtx(t *testing.T) {
	rt := NewRuntime()
	defer rt.Close()
	p := NewOn(rt, 3, func(int) int { return 0 })

	errBoom := errors.New("boom")
	err := p.RunErrCtx(context.Background(), 20, func(_ int, task int) error {
		if task == 5 {
			return errBoom
		}
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want %v", err, errBoom)
	}

	ctx, cancel := context.WithCancel(context.Background())
	err = p.RunErrCtx(ctx, 20, func(_ int, task int) error {
		if task == 2 {
			cancel()
			return errBoom // the context error must win
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// With an uncancelled context the ctx variants compute exactly what the
// ctx-less primitives compute.
func TestCtxVariantsMatchPlainOnes(t *testing.T) {
	rt := NewRuntime()
	defer rt.Close()
	n := 500
	fn := func(i int) int { return i * i }

	want := MapOrderedOn(rt, 4, n, fn)
	got, err := MapOrderedIntoCtxOn(rt, context.Background(), nil, 4, n, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MapOrderedIntoCtxOn[%d] = %d, want %d", i, got[i], want[i])
		}
	}

	chunkFn := func(lo, hi int) []int {
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, 3*i)
		}
		return out
	}
	wantC := MapChunksIntoOn(rt, nil, 4, n, 64, chunkFn)
	gotC, err := MapChunksIntoCtxOn(rt, context.Background(), nil, 4, n, 64, chunkFn)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotC) != len(wantC) {
		t.Fatalf("len = %d, want %d", len(gotC), len(wantC))
	}
	for i := range wantC {
		if gotC[i] != wantC[i] {
			t.Fatalf("MapChunksIntoCtxOn[%d] = %d, want %d", i, gotC[i], wantC[i])
		}
	}
}

// Cancelled map phases return the context error and never append
// partial chunks.
func TestMapCtxCancelled(t *testing.T) {
	rt := NewRuntime()
	defer rt.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := MapOrderedIntoCtxOn(rt, ctx, nil, 4, 100, func(i int) int { return i }); !errors.Is(err, context.Canceled) {
		t.Fatalf("MapOrderedIntoCtxOn err = %v, want context.Canceled", err)
	}
	dst := []int{7}
	out, err := MapChunksIntoCtxOn(rt, ctx, dst, 4, 100, 8, func(lo, hi int) []int { return []int{lo} })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("MapChunksIntoCtxOn err = %v, want context.Canceled", err)
	}
	if len(out) != 1 || out[0] != 7 {
		t.Fatalf("MapChunksIntoCtxOn appended partial chunks: %v", out)
	}
}

// A storm of cancelled phases leaves the runtime healthy for a final
// full phase — the drain path never leaks or wedges workers.
func TestRepeatedCancelledPhases(t *testing.T) {
	rt := NewRuntime()
	defer rt.Close()
	p := NewOn(rt, 6, func(int) int { return 0 })
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		_ = p.RunCtx(ctx, 200, func(_ int, task int) {
			if task == 0 {
				cancel()
			}
		})
		cancel()
	}
	var ran atomic.Int64
	if err := p.RunCtx(context.Background(), 100, func(int, int) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 100 {
		t.Fatalf("final phase ran %d of 100 tasks", ran.Load())
	}
}
