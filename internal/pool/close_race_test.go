package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Runtime.Close racing an in-flight ctx-cancelled phase: the phase must
// drain (barrier releases, RunCtx returns the context error), the
// workers must exit, and nothing may deadlock — whichever of
// {cancel, Close, task completion} wins each round's race. The
// submitter keeps unclaimed tasks for itself when Close steals the
// workers, so completion is guaranteed either way.
func TestCloseRacesCancelledPhase(t *testing.T) {
	for round := 0; round < 100; round++ {
		rt := NewRuntime()
		p := NewOn(rt, 4, func(w int) struct{} { return struct{}{} })
		ctx, cancel := context.WithCancel(context.Background())

		started := make(chan struct{})
		var once sync.Once
		var raced sync.WaitGroup
		raced.Add(1)
		go func() {
			defer raced.Done()
			<-started
			// Shuffle the interleaving across rounds: sometimes cancel
			// first, sometimes Close first, sometimes back to back.
			if round%2 == 0 {
				cancel()
			}
			if round%3 == 0 {
				runtime.Gosched()
			}
			rt.Close()
			cancel()
		}()

		done := make(chan error, 1)
		go func() {
			done <- p.RunCtx(ctx, 256, func(struct{}, int) {
				once.Do(func() { close(started) })
				runtime.Gosched()
			})
		}()
		select {
		case err := <-done:
			if err != nil && err != context.Canceled {
				t.Fatalf("round %d: RunCtx = %v, want nil or context.Canceled", round, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: phase wedged against Close", round)
		}
		raced.Wait()

		// The closed runtime must reject new phases loudly, not hang.
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("round %d: submission after Close did not panic", round)
				}
			}()
			p.Run(4, func(struct{}, int) {})
		}()
	}
}

// A task panic re-raised on the submitter must leave the Runtime
// reusable for the next pool — the Session lifecycle after a poisoned
// phase. (The handoff stress test covers repeated panics on one Pool;
// this pins reuse across Pools sharing the Runtime.)
func TestRuntimeReuseAcrossPoolsAfterTaskPanic(t *testing.T) {
	rt := NewRuntime()
	defer rt.Close()
	for round := 0; round < 20; round++ {
		p := NewOn(rt, 4, func(w int) struct{} { return struct{}{} })
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("round %d: task panic did not propagate", round)
				}
			}()
			p.Run(64, func(_ struct{}, task int) {
				if task == 13 {
					panic("poisoned task")
				}
			})
		}()
		// Same Runtime, fresh Pool: a full healthy phase must run.
		q := NewOn(rt, 4, func(w int) struct{} { return struct{}{} })
		var ran atomic.Int64
		q.Run(128, func(struct{}, int) { ran.Add(1) })
		if ran.Load() != 128 {
			t.Fatalf("round %d: %d tasks ran after panic, want 128", round, ran.Load())
		}
	}
}
