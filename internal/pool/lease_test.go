package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// An unexpired lease is an uncancelled context: the phase runs every
// task and the results are exactly those of the plain primitive.
func TestLeaseUnexpiredRunsAllTasks(t *testing.T) {
	rt := NewRuntime()
	defer rt.Close()
	l := NewLease(context.Background(), time.Hour)
	defer l.End()

	got, err := MapOrderedIntoCtxOn(rt, l.Context(), nil, 4, 64, func(i int) int { return i * i })
	if err != nil {
		t.Fatalf("unexpired lease: err = %v", err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
	if l.Expired() {
		t.Fatal("lease expired without its deadline passing")
	}
}

// A blown lease stops the dispensing of new tasks and surfaces as
// context.DeadlineExceeded; the runtime stays parked and reusable.
func TestLeaseExpiryStopsDispensing(t *testing.T) {
	rt := NewRuntime()
	defer rt.Close()
	l := NewLease(context.Background(), time.Millisecond)

	var ran atomic.Int64
	const tasks = 1 << 20
	_, err := MapOrderedIntoCtxOn(rt, l.Context(), nil, 2, tasks, func(i int) int {
		ran.Add(1)
		time.Sleep(200 * time.Microsecond) // ensure the deadline lands mid-phase
		return i
	})
	l.End()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired lease: err = %v, want DeadlineExceeded", err)
	}
	if !l.Expired() || !errors.Is(l.Err(), context.DeadlineExceeded) {
		t.Fatalf("Expired/Err out of sync: expired=%v err=%v", l.Expired(), l.Err())
	}
	if n := ran.Load(); n == tasks {
		t.Fatal("every task ran despite the blown lease")
	}

	// The drained runtime must accept the next phase as if nothing
	// happened.
	got, err := MapOrderedIntoCtxOn(rt, context.Background(), nil, 2, 8, func(i int) int { return i })
	if err != nil || len(got) != 8 {
		t.Fatalf("runtime unusable after blown lease: %v %v", got, err)
	}
}

// End invalidates the lease immediately, before any deadline.
func TestLeaseEndInvalidates(t *testing.T) {
	l := NewLease(context.Background(), time.Hour)
	l.End()
	if !l.Expired() {
		t.Fatal("ended lease still authorizes work")
	}
	l.End() // idempotent
}
