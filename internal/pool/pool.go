// Package pool is the single worker-pool abstraction behind every
// parallel search in this repository: the TRANSLATOR-EXACT
// branch-and-bound, TRANSLATOR-SELECT scoring and re-checking,
// TRANSLATOR-GREEDY block scoring, and the ECLAT candidate walk.
//
// # Persistent runtime
//
// All parallel execution happens on a Runtime: a set of long-lived
// worker goroutines parked on a run queue. Pool.Run, Pool.RunErr,
// MapOrdered and MapChunksInto are *phases* — batches of dynamically
// scheduled tasks — submitted to an already-running Runtime, so the
// round-structured searches (SELECT re-scores every candidate each
// round, GREEDY scores block after block, EXACT runs a seed and a DFS
// phase per added rule) pay one wake-all broadcast per phase instead of
// a goroutine launch per worker per phase. Parked workers also keep their
// grown stacks, which the deeply recursive searches would otherwise
// re-grow on every fresh goroutine.
//
// A lazily started package-wide Runtime (Default) serves callers that
// do not manage one; long mining sessions can own a private Runtime
// (see core.Session) and Close it when done.
//
// # Determinism contract
//
// All primitives share one determinism contract: the values a caller
// observes are bit-identical for every worker count, including 1.
// The contract rests on three rules that every primitive enforces:
//
//   - work is partitioned by *task index*, never by worker, and any
//     task-level chunking uses sizes fixed by the caller, so the set of
//     per-task computations (and their floating-point evaluation order)
//     does not depend on the number of workers;
//   - each task writes only its own slot (MapOrdered), its own chunk
//     (MapChunksInto), or its own worker-local state (Pool), so no result
//     depends on cross-worker timing;
//   - cross-worker communication is restricted to monotone values (Max,
//     Counter) that callers may only use in ways that are insensitive to
//     the order of updates — e.g. pruning thresholds that are strict
//     lower bounds on what must still be visited.
//
// Scheduling is dynamic (workers pull task indices from a shared
// counter), because search-tree branch costs are heavily skewed;
// dynamic assignment changes only *which worker* runs a task, which the
// rules above make unobservable.
//
// # Cancellation
//
// Every primitive has a context-aware sibling (RunCtx, RunErrCtx,
// MapOrderedIntoCtxOn, MapChunksIntoCtxOn — see ctx.go): cancelling the
// context stops the dispensing of new tasks, drains the running ones,
// and returns ctx.Err(), leaving the Runtime parked and reusable. With
// an uncancelled context the ctx variants are bit-identical to the
// plain ones.
package pool

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"twoview/internal/fault"
)

// Size resolves a Workers knob against the machine and the task count:
// 0 means GOMAXPROCS, and the result never exceeds tasks (there is no
// point in idle workers) nor falls below 1.
func Size(workers, tasks int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > tasks {
		workers = tasks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Runtime is a persistent set of parked worker goroutines fed by a run
// queue. Workers are spawned lazily, on the first phase that needs
// them, and grow to the largest concurrency any phase has requested;
// between phases they park on a condition variable guarded by a
// generation counter, costing nothing. A Runtime is safe for concurrent
// use; phases submitted concurrently share the workers.
//
// Phase handoff is wake-all, not per-worker: the submitter appends its
// job to the pending queue, bumps the generation, and issues a single
// Broadcast; every parked worker wakes and claims a helper slot from
// the queue under the lock. Compared to the previous per-worker channel
// rendezvous this makes submission cost independent of the helper count
// — one lock acquisition and one futex wake for the whole phase instead
// of `helpers` synchronous channel sends — which is what the
// round-structured searches pay per round.
//
// The zero Runtime is not usable; use NewRuntime, or Default for the
// shared package-wide instance.
type Runtime struct {
	mu      sync.Mutex
	wake    sync.Cond   // workers park here; L is &mu
	gen     uint64      // bumped on every announce and on Close
	pending []*phaseJob // phases with unclaimed helper slots, FIFO

	spawned int  // background workers launched so far
	demand  int  // helpers wanted by phases currently in flight
	closed  bool // no further submissions allowed
}

// NewRuntime returns a new, empty runtime. Workers are spawned on
// demand by the phases submitted to it. Call Close when no more phases
// will be submitted; the package Default runtime is never closed.
func NewRuntime() *Runtime {
	rt := &Runtime{}
	rt.wake.L = &rt.mu
	return rt
}

var (
	defaultOnce sync.Once
	defaultRT   *Runtime
)

// Default returns the shared package-wide runtime, starting it on first
// use. It is never closed; its workers park between phases.
func Default() *Runtime {
	defaultOnce.Do(func() { defaultRT = NewRuntime() })
	return defaultRT
}

// Close shuts the runtime down: parked workers exit, and submitting a
// new phase panics. Close is idempotent and safe against in-flight
// phases: a phase racing Close keeps its claimed helpers, loses its
// unclaimed ones (workers check closed before claiming), and finishes
// the remaining tasks on the submitting goroutine.
func (rt *Runtime) Close() {
	rt.mu.Lock()
	if !rt.closed {
		rt.closed = true
		rt.gen++
	}
	rt.mu.Unlock()
	rt.wake.Broadcast()
}

// announce registers a phase's helper demand, grows the worker set to
// cover the demand of every phase in flight (so concurrent submitters
// never compete for the same parked workers), enqueues the job, and
// wakes all parked workers with a single Broadcast. Parked workers are
// never torn down between phases (that is the point of the runtime), so
// spawned only grows, up to the peak concurrent demand.
func (rt *Runtime) announce(j *phaseJob, helpers int) {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		panic("pool: phase submitted to a closed Runtime")
	}
	rt.demand += helpers
	for rt.spawned < rt.demand {
		rt.spawned++
		go rt.worker()
	}
	rt.pending = append(rt.pending, j)
	rt.gen++
	rt.mu.Unlock()
	rt.wake.Broadcast()
}

// retract returns a phase's helper demand after its barrier and
// withdraws the job's unclaimed helper slots, if any: when the
// submitter finished every task before all helpers woke (tiny phases),
// the job must not linger on the queue for a later worker to claim.
func (rt *Runtime) retract(j *phaseJob, helpers int) {
	rt.mu.Lock()
	rt.demand -= helpers
	if j.claims > 0 {
		j.claims = 0
		for i, p := range rt.pending {
			if p == j {
				last := len(rt.pending) - 1
				rt.pending[i] = rt.pending[last]
				rt.pending[last] = nil
				rt.pending = rt.pending[:last]
				break
			}
		}
	}
	rt.mu.Unlock()
}

// claimLocked takes one helper slot from the oldest pending phase,
// dropping the phase from the queue when its last slot is claimed.
// Callers hold rt.mu.
func (rt *Runtime) claimLocked() *phaseJob {
	if len(rt.pending) == 0 {
		return nil
	}
	j := rt.pending[0]
	j.claims--
	if j.claims == 0 {
		copy(rt.pending, rt.pending[1:])
		last := len(rt.pending) - 1
		rt.pending[last] = nil
		rt.pending = rt.pending[:last]
	}
	return j
}

// worker is the body of one persistent background worker: claim a
// helper slot from the pending queue, execute a share of that phase,
// and park on the generation counter when the queue is empty. The
// park loop re-reads gen under the lock after the queue was seen empty,
// so an announce (which bumps gen under the same lock before
// broadcasting) can never be missed — the classic lost-wakeup pattern.
func (rt *Runtime) worker() {
	rt.mu.Lock()
	for {
		for !rt.closed {
			j := rt.claimLocked()
			if j == nil {
				break
			}
			rt.mu.Unlock()
			j.run()
			rt.mu.Lock()
		}
		if rt.closed {
			rt.mu.Unlock()
			return
		}
		gen := rt.gen
		for rt.gen == gen && !rt.closed {
			rt.wake.Wait()
		}
	}
}

// phase executes fn(slot, t) for every t in [0, tasks) with up to
// `slots` concurrent executors: the calling goroutine plus at most
// slots-1 recruited workers. Task indices are dispensed dynamically;
// slot indices in [0, slots) identify executors, not fixed workers. A
// task returning false stops the dispensing of new tasks (running ones
// finish). phase returns when every dispensed task has finished — a
// barrier, so consecutive phases are sequential and their writes are
// visible to each other. A panic in a task cancels the phase and is
// re-raised on the calling goroutine; the runtime's workers survive.
//
// With slots <= 1 (or a single task) the phase runs inline on the
// calling goroutine: genuinely serial, no goroutines, no atomics.
func (rt *Runtime) phase(slots, tasks int, fn func(slot, task int) bool) {
	if tasks <= 0 {
		return
	}
	if fault.Enabled {
		// Chaos builds only (-tags faultinject; compiled away otherwise):
		// scripted failpoints at phase submission and around individual
		// tasks, so tests can inject a slow handoff or a panicking task
		// and assert the drain/re-raise/reuse contract under -race. Which
		// task a scheduled "pool.task" action lands on is
		// schedule-dependent by design — recovery must hold wherever it
		// strikes.
		fault.Fire("pool.phase.submit")
		inner := fn
		fn = func(slot, task int) bool {
			fault.Fire("pool.task")
			return inner(slot, task)
		}
	}
	helpers := slots - 1
	if helpers > tasks-1 {
		helpers = tasks - 1
	}
	if helpers <= 0 {
		for t := 0; t < tasks; t++ {
			if !fn(0, t) {
				return
			}
		}
		return
	}
	j := &phaseJob{fn: fn, tasks: tasks, slots: int32(helpers + 1), claims: helpers}
	j.wg.Add(tasks)
	// One announce wakes every parked worker; announce guarantees
	// enough workers exist for every phase in flight, so the job's
	// helper slots are claimed promptly. If the runtime is closed
	// mid-phase, unclaimed slots are abandoned and the submitter
	// finishes the tasks itself (the per-task barrier does not count
	// helpers, so it releases regardless of how many claimed).
	rt.announce(j, helpers)
	j.run()
	j.wg.Wait()
	rt.retract(j, helpers)
	if p := j.panicked.Load(); p != nil {
		panic(p.val)
	}
}

// phaseJob is one submitted phase. Completion is tracked per task: the
// WaitGroup starts at `tasks`, every finished task decrements it, and
// stop refunds the tasks that will never be dispensed, so the barrier
// in phase releases exactly when all dispensed work is done.
type phaseJob struct {
	fn     func(slot, task int) bool
	tasks  int
	slots  int32
	claims int // unclaimed helper slots; guarded by the Runtime's mu

	nextTask atomic.Int64 // tasks dispensed so far (may overshoot)
	nextSlot atomic.Int32
	wg       sync.WaitGroup
	stopOnce sync.Once
	panicked atomic.Pointer[panicValue]
}

type panicValue struct{ val any }

// stopCutoff is added to nextTask on stop; it exceeds any real task
// count, so every subsequent pull sees an exhausted phase.
const stopCutoff = int64(1) << 40

// stop cancels the dispensing of new tasks and refunds the undispensed
// ones to the completion barrier. Tasks already running finish and
// account for themselves.
func (j *phaseJob) stop() {
	j.stopOnce.Do(func() {
		dispensed := j.nextTask.Swap(stopCutoff)
		if dispensed < int64(j.tasks) {
			j.wg.Add(-(j.tasks - int(dispensed)))
		}
	})
}

// run is one executor's share of the phase: claim a slot, pull tasks
// until exhausted or stopped. Executors beyond the slot budget (which
// cannot happen with claim-counted recruitment, but is guarded anyway)
// do not participate. A panicking task records the first panic, cancels the
// phase, and leaves the executing worker healthy.
func (j *phaseJob) run() {
	slot := int(j.nextSlot.Add(1)) - 1
	if slot >= int(j.slots) {
		return
	}
	defer func() {
		if p := recover(); p != nil {
			j.panicked.CompareAndSwap(nil, &panicValue{val: p})
			j.stop()
			j.wg.Done() // the panicked task was dispensed but never finished
		}
	}()
	for {
		// Compare in int64: after stop() the counter holds stopCutoff,
		// which must not be truncated into a small valid index on
		// 32-bit platforms.
		t64 := j.nextTask.Add(1) - 1
		if t64 >= int64(j.tasks) {
			return
		}
		keep := j.fn(slot, int(t64))
		j.wg.Done()
		if !keep {
			j.stop()
			return
		}
	}
}

// Max publishes a monotonically increasing non-negative float64 across
// workers as the bit pattern of an atomic uint64. Non-negative IEEE-754
// values order exactly like their unsigned bit patterns, which makes the
// compare-and-swap loop in Raise correct without locks.
//
// The searches use it for the incumbent best gain: pruning against a
// threshold that any worker may raise at any time stays deterministic
// as long as pruning is *strict* (bound < threshold), because then a
// late update can only skip subtrees that cannot change the champion.
type Max struct{ bits atomic.Uint64 }

// Load returns the current maximum (0 before any Raise).
func (m *Max) Load() float64 { return math.Float64frombits(m.bits.Load()) }

// Raise lifts the published value to at least v (monotone CAS max).
// v must be non-negative.
func (m *Max) Raise(v float64) {
	for {
		old := m.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if m.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Reset drops the published value back to 0, for reusing one Max across
// sequential searches (e.g. the per-iteration best-rule searches of one
// mining session). It must not race with Raise or Load; the phase
// barrier between searches provides that.
func (m *Max) Reset() { m.bits.Store(0) }

// Counter is a shared monotone event counter (e.g. results emitted so
// far across all workers). Deterministic uses are limited to threshold
// tests whose outcome does not depend on which worker contributed which
// increment — such as "abort once more than N results exist", where the
// abort fires in every schedule iff the total exceeds N.
type Counter struct{ n atomic.Int64 }

// Add increments the counter by one and returns the new total.
func (c *Counter) Add() int64 { return c.n.Add(1) }

// Load returns the current total.
func (c *Counter) Load() int64 { return c.n.Load() }

// Pool runs phases of dynamically-scheduled tasks over a fixed set of
// per-worker states. It is the shape used by searches that accumulate a
// champion or a result list per worker and merge afterwards: build the
// pool once, run one or more task phases, then fold States() under a
// total order. The phases execute on the pool's Runtime; worker states
// are handed to whichever executor claims the matching slot, which the
// determinism rules make unobservable.
//
// With one worker every phase executes inline on the calling goroutine,
// so Workers==1 is genuinely serial (no goroutines, no atomics beyond
// the task counter).
type Pool[S any] struct {
	rt     *Runtime
	states []S
}

// New builds a pool of `workers` states on the Default runtime, each
// state created by mk (called with the worker index, in order, on the
// calling goroutine).
func New[S any](workers int, mk func(w int) S) *Pool[S] {
	return NewOn[S](nil, workers, mk)
}

// NewOn is New on an explicit runtime; rt == nil means Default.
func NewOn[S any](rt *Runtime, workers int, mk func(w int) S) *Pool[S] {
	if workers < 1 {
		workers = 1
	}
	if rt == nil {
		rt = Default()
	}
	states := make([]S, workers)
	for w := range states {
		states[w] = mk(w)
	}
	return &Pool[S]{rt: rt, states: states}
}

// States returns the per-worker states in worker order, for merging
// after the phases have run. The order is deterministic, but callers
// must merge under a total order anyway: which tasks ran on which
// worker is schedule-dependent.
func (p *Pool[S]) States() []S { return p.states }

// Run executes fn(state, task) for every task in [0, tasks), pulling
// task indices dynamically. It returns when all tasks have finished
// (a barrier), so consecutive Run calls form sequential phases over the
// same worker states. It is RunCtx on the background context (whose
// Err probe is a constant nil), so the two share one body.
func (p *Pool[S]) Run(tasks int, fn func(s S, task int)) {
	p.RunCtx(context.Background(), tasks, fn)
}

// RunErr is Run for fallible tasks. After the first failure no new
// tasks are dispensed (running ones finish), and the error of the
// lowest-indexed failed task among those that ran is returned. When the
// failure condition is schedule-independent — the only use in this
// repository is the ECLAT result-cap overflow, which trips in every
// schedule iff the total result count exceeds the cap — the returned
// error is deterministic too.
func (p *Pool[S]) RunErr(tasks int, fn func(s S, task int) error) error {
	if len(p.states) == 1 {
		for t := 0; t < tasks; t++ {
			if err := fn(p.states[0], t); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		mu    sync.Mutex
		errAt = -1
		first error
	)
	p.rt.phase(len(p.states), tasks, func(slot, t int) bool {
		err := fn(p.states[slot], t)
		if err == nil {
			return true
		}
		mu.Lock()
		if errAt < 0 || t < errAt {
			errAt, first = t, err
		}
		mu.Unlock()
		return false
	})
	return first
}

// MapOrdered returns out with out[i] = fn(i) for i in [0, n), computed
// on the Default runtime by up to `workers` executors pulling indices
// dynamically. Each index writes only its own slot, so the result is
// independent of the worker count. Intended for expensive per-item work
// (gain evaluations); for cheap per-item work over large n, prefer
// MapChunksInto.
func MapOrdered[T any](workers, n int, fn func(i int) T) []T {
	return MapOrderedOn(nil, workers, n, fn)
}

// MapOrderedOn is MapOrdered on an explicit runtime; rt == nil means
// Default.
func MapOrderedOn[T any](rt *Runtime, workers, n int, fn func(i int) T) []T {
	return MapOrderedIntoOn(rt, nil, workers, n, fn)
}

// MapOrderedIntoOn is MapOrderedOn writing into dst's storage when its
// capacity suffices (the returned slice always has length n), so
// round-structured callers — SELECT's per-round re-check, GREEDY's
// per-block speculative scoring — can reuse one result buffer across
// rounds instead of allocating a fresh slice per phase. Stale dst
// contents are never read: every slot in [0, n) is overwritten. It is
// the ctx variant on the background context, sharing one body.
func MapOrderedIntoOn[T any](rt *Runtime, dst []T, workers, n int, fn func(i int) T) []T {
	out, _ := MapOrderedIntoCtxOn(rt, context.Background(), dst, workers, n, fn)
	return out
}

// MapChunksInto splits [0, n) into fixed-size chunks, applies fn to
// each chunk (dynamically scheduled on the Default runtime), and
// appends the per-chunk slices to dst in chunk order, so callers
// invoking it repeatedly (e.g. once per search round) can reuse one
// destination buffer. Because the chunk size is a caller-fixed constant
// — never derived from the worker count — both the per-chunk
// computations and the concatenation order are identical for every
// worker count.
func MapChunksInto[T any](dst []T, workers, n, chunk int, fn func(lo, hi int) []T) []T {
	return MapChunksIntoOn(nil, dst, workers, n, chunk, fn)
}

// MapChunksIntoOn is MapChunksInto on an explicit runtime; rt == nil
// means Default. It is the ctx variant on the background context,
// sharing one body.
func MapChunksIntoOn[T any](rt *Runtime, dst []T, workers, n, chunk int, fn func(lo, hi int) []T) []T {
	out, _ := MapChunksIntoCtxOn(rt, context.Background(), dst, workers, n, chunk, fn)
	return out
}
