// Package pool is the single worker-pool abstraction behind every
// parallel search in this repository: the TRANSLATOR-EXACT
// branch-and-bound, TRANSLATOR-SELECT scoring and re-checking,
// TRANSLATOR-GREEDY block scoring, and the ECLAT candidate walk.
//
// All primitives share one determinism contract: the values a caller
// observes are bit-identical for every worker count, including 1.
// The contract rests on three rules that every primitive enforces:
//
//   - work is partitioned by *task index*, never by worker, and any
//     task-level chunking uses sizes fixed by the caller, so the set of
//     per-task computations (and their floating-point evaluation order)
//     does not depend on the number of workers;
//   - each task writes only its own slot (MapOrdered), its own chunk
//     (MapChunksInto), or its own worker-local state (Pool), so no result
//     depends on cross-worker timing;
//   - cross-worker communication is restricted to monotone values (Max,
//     Counter) that callers may only use in ways that are insensitive to
//     the order of updates — e.g. pruning thresholds that are strict
//     lower bounds on what must still be visited.
//
// Scheduling is dynamic (workers pull task indices from a shared
// counter), because search-tree branch costs are heavily skewed;
// dynamic assignment changes only *which worker* runs a task, which the
// rules above make unobservable.
package pool

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Size resolves a Workers knob against the machine and the task count:
// 0 means GOMAXPROCS, and the result never exceeds tasks (there is no
// point in idle workers) nor falls below 1.
func Size(workers, tasks int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > tasks {
		workers = tasks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Max publishes a monotonically increasing non-negative float64 across
// workers as the bit pattern of an atomic uint64. Non-negative IEEE-754
// values order exactly like their unsigned bit patterns, which makes the
// compare-and-swap loop in Raise correct without locks.
//
// The searches use it for the incumbent best gain: pruning against a
// threshold that any worker may raise at any time stays deterministic
// as long as pruning is *strict* (bound < threshold), because then a
// late update can only skip subtrees that cannot change the champion.
type Max struct{ bits atomic.Uint64 }

// Load returns the current maximum (0 before any Raise).
func (m *Max) Load() float64 { return math.Float64frombits(m.bits.Load()) }

// Raise lifts the published value to at least v (monotone CAS max).
// v must be non-negative.
func (m *Max) Raise(v float64) {
	for {
		old := m.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if m.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Counter is a shared monotone event counter (e.g. results emitted so
// far across all workers). Deterministic uses are limited to threshold
// tests whose outcome does not depend on which worker contributed which
// increment — such as "abort once more than N results exist", where the
// abort fires in every schedule iff the total exceeds N.
type Counter struct{ n atomic.Int64 }

// Add increments the counter by one and returns the new total.
func (c *Counter) Add() int64 { return c.n.Add(1) }

// Load returns the current total.
func (c *Counter) Load() int64 { return c.n.Load() }

// Pool runs phases of dynamically-scheduled tasks over a fixed set of
// per-worker states. It is the shape used by searches that accumulate a
// champion or a result list per worker and merge afterwards: build the
// pool once, run one or more task phases, then fold States() under a
// total order.
//
// With one worker every phase executes inline on the calling goroutine,
// so Workers==1 is genuinely serial (no goroutines, no atomics beyond
// the task counter).
type Pool[S any] struct {
	states []S
}

// New builds a pool of `workers` states, each created by mk (called with
// the worker index, in order, on the calling goroutine).
func New[S any](workers int, mk func(w int) S) *Pool[S] {
	if workers < 1 {
		workers = 1
	}
	states := make([]S, workers)
	for w := range states {
		states[w] = mk(w)
	}
	return &Pool[S]{states: states}
}

// States returns the per-worker states in worker order, for merging
// after the phases have run. The order is deterministic, but callers
// must merge under a total order anyway: which tasks ran on which
// worker is schedule-dependent.
func (p *Pool[S]) States() []S { return p.states }

// Run executes fn(state, task) for every task in [0, tasks), pulling
// task indices dynamically. It returns when all tasks have finished
// (a barrier), so consecutive Run calls form sequential phases over the
// same worker states.
func (p *Pool[S]) Run(tasks int, fn func(s S, task int)) {
	if len(p.states) == 1 {
		for t := 0; t < tasks; t++ {
			fn(p.states[0], t)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := range p.states {
		wg.Add(1)
		go func(s S) {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= tasks {
					return
				}
				fn(s, t)
			}
		}(p.states[w])
	}
	wg.Wait()
}

// RunErr is Run for fallible tasks. After the first failure no new
// tasks are dispensed (running ones finish), and the error of the
// lowest-indexed failed task among those that ran is returned. When the
// failure condition is schedule-independent — the only use in this
// repository is the ECLAT result-cap overflow, which trips in every
// schedule iff the total result count exceeds the cap — the returned
// error is deterministic too.
func (p *Pool[S]) RunErr(tasks int, fn func(s S, task int) error) error {
	if len(p.states) == 1 {
		for t := 0; t < tasks; t++ {
			if err := fn(p.states[0], t); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
		errAt  = -1
		first  error
	)
	for w := range p.states {
		wg.Add(1)
		go func(s S) {
			defer wg.Done()
			for !failed.Load() {
				t := int(next.Add(1)) - 1
				if t >= tasks {
					return
				}
				if err := fn(s, t); err != nil {
					failed.Store(true)
					mu.Lock()
					if errAt < 0 || t < errAt {
						errAt, first = t, err
					}
					mu.Unlock()
					return
				}
			}
		}(p.states[w])
	}
	wg.Wait()
	return first
}

// MapOrdered returns out with out[i] = fn(i) for i in [0, n), computed
// by `workers` goroutines pulling indices dynamically. Each index writes
// only its own slot, so the result is independent of the worker count.
// Intended for expensive per-item work (gain evaluations); for cheap
// per-item work over large n, prefer MapChunksInto.
func MapOrdered[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	workers = Size(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// MapChunksInto splits [0, n) into fixed-size chunks, applies fn to
// each chunk (dynamically scheduled), and appends the per-chunk slices
// to dst in chunk order, so callers invoking it repeatedly (e.g. once
// per search round) can reuse one destination buffer. Because the chunk
// size is a caller-fixed constant — never derived from the worker count
// — both the per-chunk computations and the concatenation order are
// identical for every worker count.
func MapChunksInto[T any](dst []T, workers, n, chunk int, fn func(lo, hi int) []T) []T {
	if n <= 0 {
		return dst
	}
	if chunk < 1 {
		chunk = 1
	}
	tasks := (n + chunk - 1) / chunk
	if tasks == 1 {
		return append(dst, fn(0, n)...)
	}
	parts := make([][]T, tasks)
	p := New(Size(workers, tasks), func(int) struct{} { return struct{}{} })
	p.Run(tasks, func(_ struct{}, t int) {
		lo := t * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		parts[t] = fn(lo, hi)
	})
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	if free := cap(dst) - len(dst); free < total {
		grown := make([]T, len(dst), len(dst)+total)
		copy(grown, dst)
		dst = grown
	}
	for _, part := range parts {
		dst = append(dst, part...)
	}
	return dst
}
