package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file ingests the raw attribute-value formats the paper's source
// repositories use — ARFF (UCI/MULAN) and headered CSV — into Columns,
// which Booleanize and SplitBalanced then turn into a two-view dataset.
// Together they reproduce the full preprocessing path of §6: parse →
// discretize numerics into equal-height bins → one item per categorical
// value → split items into two views of similar density.

// LoadARFF parses a dense ARFF file: @attribute declarations (numeric /
// real / integer or a nominal {a,b,c} set; string attributes are treated
// as categorical) followed by @data rows. '?' marks missing values.
// Sparse ARFF rows ({idx value, ...}) are not supported.
func LoadARFF(r io.Reader) ([]*Column, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var cols []*Column
	inData := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		lower := strings.ToLower(text)
		switch {
		case strings.HasPrefix(lower, "@relation"):
			// Name only; ignored.
		case strings.HasPrefix(lower, "@attribute"):
			if inData {
				return nil, fmt.Errorf("arff: line %d: @attribute after @data", line)
			}
			col, err := parseARFFAttribute(text)
			if err != nil {
				return nil, fmt.Errorf("arff: line %d: %v", line, err)
			}
			cols = append(cols, col)
		case strings.HasPrefix(lower, "@data"):
			if len(cols) == 0 {
				return nil, fmt.Errorf("arff: line %d: @data before any @attribute", line)
			}
			inData = true
		default:
			if !inData {
				return nil, fmt.Errorf("arff: line %d: unexpected content %q before @data", line, text)
			}
			if strings.HasPrefix(text, "{") {
				return nil, fmt.Errorf("arff: line %d: sparse ARFF rows are not supported", line)
			}
			if err := appendARFFRow(cols, text); err != nil {
				return nil, fmt.Errorf("arff: line %d: %v", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !inData {
		return nil, fmt.Errorf("arff: missing @data section")
	}
	return cols, nil
}

func parseARFFAttribute(text string) (*Column, error) {
	// @attribute <name> <type>; the name may be quoted.
	rest := strings.TrimSpace(text[len("@attribute"):])
	if rest == "" {
		return nil, fmt.Errorf("missing attribute name")
	}
	var name string
	if rest[0] == '\'' || rest[0] == '"' {
		q := rest[0]
		end := strings.IndexByte(rest[1:], q)
		if end < 0 {
			return nil, fmt.Errorf("unterminated quoted name")
		}
		name = rest[1 : 1+end]
		rest = strings.TrimSpace(rest[2+end:])
	} else {
		fields := strings.Fields(rest)
		name = fields[0]
		rest = strings.TrimSpace(rest[len(fields[0]):])
	}
	if name == "" || rest == "" {
		return nil, fmt.Errorf("malformed attribute declaration")
	}
	switch typ := strings.ToLower(rest); {
	case typ == "numeric" || typ == "real" || typ == "integer":
		return &Column{Name: name, Kind: Numeric}, nil
	case strings.HasPrefix(rest, "{"):
		if !strings.HasSuffix(rest, "}") {
			return nil, fmt.Errorf("unterminated nominal set for %q", name)
		}
		return &Column{Name: name, Kind: Categorical}, nil
	case typ == "string":
		return &Column{Name: name, Kind: Categorical}, nil
	default:
		return nil, fmt.Errorf("unsupported attribute type %q for %q", rest, name)
	}
}

func appendARFFRow(cols []*Column, text string) error {
	values, err := splitARFFValues(text)
	if err != nil {
		return err
	}
	if len(values) != len(cols) {
		return fmt.Errorf("row has %d values, want %d", len(values), len(cols))
	}
	return appendRow(cols, values)
}

// splitARFFValues splits a comma-separated row honouring single quotes.
func splitARFFValues(text string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case c == '\'':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			out = append(out, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote in row %q", text)
	}
	out = append(out, strings.TrimSpace(cur.String()))
	return out, nil
}

// appendRow appends one parsed value per column.
func appendRow(cols []*Column, values []string) error {
	for i, col := range cols {
		v := values[i]
		missing := v == "?" || v == ""
		switch col.Kind {
		case Numeric:
			var parsed float64
			if !missing {
				var err error
				if parsed, err = strconv.ParseFloat(v, 64); err != nil {
					return fmt.Errorf("column %q: bad numeric value %q", col.Name, v)
				}
			}
			col.Values = append(col.Values, parsed)
			col.Missing = append(col.Missing, missing)
		case Categorical:
			if missing {
				v = ""
			}
			col.Labels = append(col.Labels, v)
		}
	}
	return nil
}

// LoadCSV parses a headered CSV file and infers column kinds: a column
// where every non-missing value parses as a number is Numeric, otherwise
// Categorical. '?' and empty cells mark missing values.
func LoadCSV(r io.Reader) ([]*Column, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csv: %v", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("csv: need a header row and at least one data row")
	}
	header := records[0]
	rows := records[1:]

	cols := make([]*Column, len(header))
	for c, name := range header {
		if strings.TrimSpace(name) == "" {
			return nil, fmt.Errorf("csv: empty name for column %d", c+1)
		}
		numeric := true
		seen := false
		for _, row := range rows {
			v := strings.TrimSpace(row[c])
			if v == "" || v == "?" {
				continue
			}
			seen = true
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				numeric = false
				break
			}
		}
		kind := Categorical
		if numeric && seen {
			kind = Numeric
		}
		cols[c] = &Column{Name: strings.TrimSpace(name), Kind: kind}
	}
	for _, row := range rows {
		values := make([]string, len(row))
		for i, v := range row {
			values[i] = strings.TrimSpace(v)
		}
		if err := appendRow(cols, values); err != nil {
			return nil, fmt.Errorf("csv: %v", err)
		}
	}
	return cols, nil
}

// Ingest runs the full preprocessing pipeline of §6 on raw columns:
// Booleanize (equal-height bins, one item per categorical value) and
// split the items into two density-balanced views.
func Ingest(cols []*Column, opt BooleanizeOptions) (*Dataset, error) {
	bt, err := Booleanize(cols, opt)
	if err != nil {
		return nil, err
	}
	return SplitBalanced(bt)
}

// IngestSplit is Ingest with an explicit attribute-to-view assignment:
// every item produced by attribute i goes to sideOf[i]. This supports the
// natural two-view datasets (CAL500, Emotions, Elections) where the paper
// assigns whole attributes to views by meaning rather than by balance.
func IngestSplit(cols []*Column, opt BooleanizeOptions, sideOf []View) (*Dataset, error) {
	if len(sideOf) != len(cols) {
		return nil, fmt.Errorf("dataset: assignment covers %d attributes, have %d columns",
			len(sideOf), len(cols))
	}
	bt, err := Booleanize(cols, opt)
	if err != nil {
		return nil, err
	}
	// Items are named "<attr>=<...>"; map each item back to its
	// attribute by longest "<attr>=" prefix (attribute names and values
	// may themselves contain '=').
	itemSide := make([]View, len(bt.ItemNames))
	for i, item := range bt.ItemNames {
		bestLen := -1
		for c, col := range cols {
			if len(col.Name) > bestLen && strings.HasPrefix(item, col.Name+"=") {
				bestLen = len(col.Name)
				itemSide[i] = sideOf[c]
			}
		}
		if bestLen < 0 {
			return nil, fmt.Errorf("dataset: item %q does not map to an attribute", item)
		}
	}
	return SplitByAssignment(bt, itemSide)
}
