package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"twoview/internal/itemset"
)

func toy(t *testing.T) *Dataset {
	t.Helper()
	d := MustNew(
		[]string{"A", "B", "C", "D"},
		[]string{"P", "Q", "S"},
	)
	rows := [][2][]int{
		{{0, 1}, {0, 2}},
		{{1, 2}, {1}},
		{{2}, {1, 2}},
		{{0, 1, 2}, {0}},
		{{3}, {}},
	}
	for _, r := range rows {
		if err := d.AddRow(r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]string{"a", "a"}, []string{"b"}); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := New([]string{""}, []string{"b"}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := New([]string{"a"}, []string{"a"}); err != nil {
		t.Fatal("same name in different views must be allowed:", err)
	}
}

func TestAddRowValidation(t *testing.T) {
	d := MustNew([]string{"a"}, []string{"b"})
	if err := d.AddRow([]int{1}, nil); err == nil {
		t.Fatal("out-of-range left item accepted")
	}
	if err := d.AddRow(nil, []int{-1}); err == nil {
		t.Fatal("out-of-range right item accepted")
	}
	if err := d.AddRow([]int{0}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if d.Size() != 1 {
		t.Fatalf("Size = %d", d.Size())
	}
}

func TestBasicAccessors(t *testing.T) {
	d := toy(t)
	if d.Size() != 5 || d.Items(Left) != 4 || d.Items(Right) != 3 {
		t.Fatalf("dims = %d,%d,%d", d.Size(), d.Items(Left), d.Items(Right))
	}
	if d.Name(Left, 3) != "D" || d.Name(Right, 2) != "S" {
		t.Fatal("names wrong")
	}
	if Left.Opposite() != Right || Right.Opposite() != Left {
		t.Fatal("Opposite wrong")
	}
	if Left.String() != "L" || Right.String() != "R" {
		t.Fatal("View.String wrong")
	}
	if !d.Row(Left, 0).ContainsAll([]int{0, 1}) || d.Row(Left, 0).Count() != 2 {
		t.Fatal("Row(Left,0) wrong")
	}
	if d.Row(Right, 4).Count() != 0 {
		t.Fatal("empty right side expected for row 4")
	}
}

func TestColumnsAndSupport(t *testing.T) {
	d := toy(t)
	colsL := d.Columns(Left)
	if got := colsL[1].Indices(); !intsEqual(got, []int{0, 1, 3}) {
		t.Fatalf("column B tids = %v", got)
	}
	if d.ItemSupport(Right, 1) != 2 {
		t.Fatalf("supp(Q) = %d", d.ItemSupport(Right, 1))
	}
	if got := d.Support(Left, itemset.New(1, 2)); got != 2 {
		t.Fatalf("supp({B,C}) = %d", got)
	}
	// Empty itemset is supported everywhere.
	if got := d.Support(Left, nil); got != d.Size() {
		t.Fatalf("supp(∅) = %d", got)
	}
	if got := d.JointSupportSet(itemset.New(0), itemset.New(0)).Indices(); !intsEqual(got, []int{0, 3}) {
		t.Fatalf("joint supp(A;P) = %v", got)
	}
}

func TestColumnCacheInvalidation(t *testing.T) {
	d := toy(t)
	before := d.ItemSupport(Left, 0)
	if err := d.AddRow([]int{0}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if got := d.ItemSupport(Left, 0); got != before+1 {
		t.Fatalf("support after AddRow = %d, want %d", got, before+1)
	}
}

func TestDensityAndStats(t *testing.T) {
	d := toy(t)
	wantL := float64(2+2+1+3+1) / float64(5*4)
	if got := d.Density(Left); math.Abs(got-wantL) > 1e-12 {
		t.Fatalf("DensityL = %v, want %v", got, wantL)
	}
	s := d.Stats()
	if s.Size != 5 || s.ItemsL != 4 || s.ItemsR != 3 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.DensityL != d.Density(Left) || s.DensityR != d.Density(Right) {
		t.Fatal("Stats densities disagree")
	}
	empty := MustNew([]string{"a"}, []string{"b"})
	if empty.Density(Left) != 0 {
		t.Fatal("empty dataset density must be 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := toy(t)
	c := d.Clone()
	if err := d.AddRow([]int{0}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if c.Size() != 5 || d.Size() != 6 {
		t.Fatal("Clone not independent")
	}
	if c.Name(Left, 0) != "A" {
		t.Fatal("Clone lost names")
	}
}

func TestSubset(t *testing.T) {
	d := toy(t)
	s, err := d.Subset([]int{4, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 3 {
		t.Fatalf("Subset size = %d", s.Size())
	}
	if !s.Row(Left, 1).Equal(d.Row(Left, 0)) || !s.Row(Left, 2).Equal(d.Row(Left, 0)) {
		t.Fatal("Subset rows wrong")
	}
	if _, err := d.Subset([]int{99}); err == nil {
		t.Fatal("out-of-range subset accepted")
	}
}

func TestGenericNames(t *testing.T) {
	got := GenericNames("x", 3)
	if len(got) != 3 || got[0] != "x0" || got[2] != "x2" {
		t.Fatalf("GenericNames = %v", got)
	}
}

// Property: for random datasets, Support(X) computed via column tidsets
// equals a direct row scan, and density equals ones/cells.
func TestQuickSupportMatchesRowScan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nL, nR := 2+r.Intn(6), 2+r.Intn(6)
		d := MustNew(GenericNames("l", nL), GenericNames("r", nR))
		n := 1 + r.Intn(30)
		for i := 0; i < n; i++ {
			var left, right []int
			for j := 0; j < nL; j++ {
				if r.Intn(3) == 0 {
					left = append(left, j)
				}
			}
			for j := 0; j < nR; j++ {
				if r.Intn(3) == 0 {
					right = append(right, j)
				}
			}
			if err := d.AddRow(left, right); err != nil {
				return false
			}
		}
		var x itemset.Itemset
		for j := 0; j < nL; j++ {
			if r.Intn(3) == 0 {
				x = append(x, j)
			}
		}
		want := 0
		for t := 0; t < d.Size(); t++ {
			if d.Row(Left, t).ContainsAll(x) {
				want++
			}
		}
		ones := 0
		for t := 0; t < d.Size(); t++ {
			ones += d.Row(Left, t).Count()
		}
		return d.Support(Left, x) == want &&
			d.Ones(Left) == ones &&
			math.Abs(d.Density(Left)-float64(ones)/float64(n*nL)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
