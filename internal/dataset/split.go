package dataset

import (
	"fmt"
	"sort"
)

// This file implements view splitting: the paper splits single-table
// repository datasets "such that the items were evenly distributed over two
// views having similar densities" (§6). SplitBalanced reproduces that:
// items are assigned greedily, in decreasing order of support, to whichever
// view currently has fewer total ones (breaking ties by item count), which
// balances both density and vocabulary size.

// SplitBalanced partitions the items of a Boolean table into two views and
// returns the resulting two-view dataset. The greedy assignment is
// deterministic for a given table.
func SplitBalanced(t *BoolTable) (*Dataset, error) {
	n := len(t.ItemNames)
	if n < 2 {
		return nil, fmt.Errorf("dataset: need at least 2 items to split, have %d", n)
	}
	supp := make([]int, n)
	for _, row := range t.Rows {
		for _, it := range row {
			if it < 0 || it >= n {
				return nil, fmt.Errorf("dataset: row references item %d outside [0,%d)", it, n)
			}
			supp[it]++
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if supp[order[a]] != supp[order[b]] {
			return supp[order[a]] > supp[order[b]]
		}
		return order[a] < order[b]
	})

	sideOf := make([]View, n)
	onesL, onesR, cntL, cntR := 0, 0, 0, 0
	for _, it := range order {
		toLeft := onesL < onesR || (onesL == onesR && cntL <= cntR)
		if toLeft {
			sideOf[it] = Left
			onesL += supp[it]
			cntL++
		} else {
			sideOf[it] = Right
			onesR += supp[it]
			cntR++
		}
	}
	return SplitByAssignment(t, sideOf)
}

// SplitByAssignment builds a two-view dataset from a Boolean table and an
// explicit item-to-view assignment (sideOf[i] tells which view item i goes
// to). Both views must be non-empty.
func SplitByAssignment(t *BoolTable, sideOf []View) (*Dataset, error) {
	n := len(t.ItemNames)
	if len(sideOf) != n {
		return nil, fmt.Errorf("dataset: assignment covers %d items, table has %d", len(sideOf), n)
	}
	newID := make([]int, n)
	var namesL, namesR []string
	for i, side := range sideOf {
		if side == Left {
			newID[i] = len(namesL)
			namesL = append(namesL, t.ItemNames[i])
		} else {
			newID[i] = len(namesR)
			namesR = append(namesR, t.ItemNames[i])
		}
	}
	if len(namesL) == 0 || len(namesR) == 0 {
		return nil, fmt.Errorf("dataset: split leaves a view empty (%d left, %d right)", len(namesL), len(namesR))
	}
	d, err := New(namesL, namesR)
	if err != nil {
		return nil, err
	}
	for _, row := range t.Rows {
		var left, right []int
		for _, it := range row {
			if sideOf[it] == Left {
				left = append(left, newID[it])
			} else {
				right = append(right, newID[it])
			}
		}
		if err := d.AddRow(left, right); err != nil {
			return nil, err
		}
	}
	return d, nil
}
