package dataset

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// Fuzzers: the text readers must never panic on malformed input, and
// anything they accept must round-trip through the writer.

func FuzzRead(f *testing.F) {
	f.Add("L\ta\tb\nR\tc\n0 1 | 0\n")
	f.Add("# only a comment\n")
	f.Add("L\ta\nR\tb\n0|\n|0\n")
	f.Add("L\nR\n|\n")
	f.Add("L\ta\nL\tb\n")
	f.Add("R\tx\n0 | 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		d2, err := Read(&buf)
		if err != nil {
			t.Fatalf("writer output not readable: %v", err)
		}
		if d2.Size() != d.Size() || d2.Items(Left) != d.Items(Left) || d2.Items(Right) != d.Items(Right) {
			t.Fatal("round trip changed dimensions")
		}
		for i := 0; i < d.Size(); i++ {
			if !d2.Row(Left, i).Equal(d.Row(Left, i)) || !d2.Row(Right, i).Equal(d.Row(Right, i)) {
				t.Fatal("round trip changed rows")
			}
		}
	})
}

// FuzzRowReader: the streaming reader must never panic, and on any
// input that both paths accept it must agree with the materializing
// Read (which is RowReader run to completion plus range validation).
func FuzzRowReader(f *testing.F) {
	f.Add("L\ta\tb\nR\tc\n0 1 | 0\n")
	f.Add("L\ta\nR\tb\n# comment\n\n0|0\n")
	f.Add("R\tx\nL\ty\n0 | 0\n") // headers in either order
	f.Add("L\ta\nL\tb\n")        // duplicate header
	f.Add("0|0\nL\ta\nR\tb\n")   // row before headers
	f.Add("L\ta\nR\tb\n0 0\n")   // missing '|' separator
	f.Add("L\ta\nR\tb\n-1|x\n")  // malformed ids
	f.Fuzz(func(t *testing.T, input string) {
		rr := NewRowReader(strings.NewReader(input))
		namesL, namesR, err := rr.Header()
		if err != nil {
			return // rejection is fine; panics are not
		}
		rows := 0
		for {
			_, _, err := rr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return
			}
			rows++
			if got := rr.Line(); got < 1 {
				t.Fatalf("Line() = %d after a parsed row", got)
			}
		}
		d, err := Read(strings.NewReader(input))
		if err != nil {
			// Read layers range validation on top of the streamer, so
			// it may reject what the syntax-only streamer accepted.
			return
		}
		if d.Size() != rows {
			t.Fatalf("streaming read %d rows, Read materialized %d", rows, d.Size())
		}
		if d.Items(Left) != len(namesL) || d.Items(Right) != len(namesR) {
			t.Fatalf("vocabulary mismatch: streamed %d/%d items, Read has %d/%d",
				len(namesL), len(namesR), d.Items(Left), d.Items(Right))
		}
	})
}

func FuzzLoadARFF(f *testing.F) {
	f.Add("@relation r\n@attribute a numeric\n@data\n1\n")
	f.Add("@attribute a {x,y}\n@data\nx\n")
	f.Add("% c\n@data\n")
	f.Add("@attribute 'q a' real\n@data\n?\n")
	f.Fuzz(func(t *testing.T, input string) {
		cols, err := LoadARFF(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted columns must be rectangular.
		if len(cols) == 0 {
			return
		}
		n := cols[0].rows()
		for _, c := range cols {
			if c.rows() != n {
				t.Fatal("accepted ragged columns")
			}
		}
	})
}

func FuzzLoadCSV(f *testing.F) {
	f.Add("a,b\n1,x\n2,y\n")
	f.Add("a\n?\n")
	f.Add("h1,h2\n,\n")
	f.Fuzz(func(t *testing.T, input string) {
		cols, err := LoadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(cols) == 0 {
			t.Fatal("accepted CSV with zero columns")
		}
		n := cols[0].rows()
		for _, c := range cols {
			if c.rows() != n {
				t.Fatal("accepted ragged columns")
			}
		}
	})
}
