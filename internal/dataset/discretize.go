package dataset

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the preprocessing the paper applies to the UCI and
// MULAN repository datasets (§6, "Data pre-processing"): numerical
// attributes are discretized using equal-height (equal-frequency) bins and
// each categorical attribute-value is converted into an item.

// ColumnKind distinguishes attribute types in a raw attribute-value table.
type ColumnKind int

const (
	// Numeric columns are discretized into equal-height bins.
	Numeric ColumnKind = iota
	// Categorical columns get one Boolean item per distinct value.
	Categorical
)

// Column is one attribute of a raw table. For Numeric columns Values holds
// the parsed numbers and Missing marks unparseable entries; for Categorical
// columns Labels holds the raw strings (empty string = missing).
type Column struct {
	Name    string
	Kind    ColumnKind
	Values  []float64 // Numeric only, len = number of rows
	Missing []bool    // Numeric only, optional
	Labels  []string  // Categorical only, len = number of rows
}

// rows returns the number of rows in the column.
func (c *Column) rows() int {
	if c.Kind == Numeric {
		return len(c.Values)
	}
	return len(c.Labels)
}

// EqualHeightThresholds returns the k-1 cut points of an equal-height
// (equal-frequency) binning of values into k bins. Duplicate cut points are
// merged, so fewer than k bins may result for heavily tied data.
func EqualHeightThresholds(values []float64, k int) []float64 {
	if k < 2 || len(values) == 0 {
		return nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var cuts []float64
	for b := 1; b < k; b++ {
		idx := b * len(sorted) / k
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		cut := sorted[idx]
		if len(cuts) == 0 || cut > cuts[len(cuts)-1] {
			cuts = append(cuts, cut)
		}
	}
	return cuts
}

// binOf returns the bin index of v for the given ascending cut points:
// bin i covers [cuts[i-1], cuts[i]) with the first bin open below and the
// last bin open above.
func binOf(v float64, cuts []float64) int {
	for i, c := range cuts {
		if v < c {
			return i
		}
	}
	return len(cuts)
}

// BooleanizeOptions controls Booleanize.
type BooleanizeOptions struct {
	// Bins is the number of equal-height bins per numeric attribute.
	// The paper uses 5. Zero means 5.
	Bins int
	// MaxFrequency drops items occurring in more than this fraction of
	// rows (the paper drops items in more than half of the transactions
	// for Elections). Zero disables dropping.
	MaxFrequency float64
}

// BoolTable is a Booleanized attribute-value table: one item per
// (attribute, bin-or-value), ready to be split into two views.
type BoolTable struct {
	ItemNames []string
	Rows      [][]int // per row, sorted item ids
}

// Booleanize converts raw columns into a Boolean table following the
// paper's preprocessing: equal-height bins for numeric attributes and one
// item per categorical attribute-value. Missing entries produce no item.
func Booleanize(cols []*Column, opt BooleanizeOptions) (*BoolTable, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("dataset: no columns to booleanize")
	}
	bins := opt.Bins
	if bins == 0 {
		bins = 5
	}
	nRows := cols[0].rows()
	for _, c := range cols {
		if c.rows() != nRows {
			return nil, fmt.Errorf("dataset: column %q has %d rows, want %d", c.Name, c.rows(), nRows)
		}
	}

	var names []string
	rowItems := make([][]int, nRows)
	addItem := func(name string, rows []int) {
		if opt.MaxFrequency > 0 && float64(len(rows)) > opt.MaxFrequency*float64(nRows) {
			return
		}
		id := len(names)
		names = append(names, name)
		for _, r := range rows {
			rowItems[r] = append(rowItems[r], id)
		}
	}

	for _, c := range cols {
		switch c.Kind {
		case Numeric:
			var present []float64
			for r, v := range c.Values {
				if (c.Missing == nil || !c.Missing[r]) && !math.IsNaN(v) {
					present = append(present, v)
				}
			}
			cuts := EqualHeightThresholds(present, bins)
			byBin := make([][]int, len(cuts)+1)
			for r, v := range c.Values {
				if (c.Missing != nil && c.Missing[r]) || math.IsNaN(v) {
					continue
				}
				b := binOf(v, cuts)
				byBin[b] = append(byBin[b], r)
			}
			for b, rows := range byBin {
				if len(rows) == 0 {
					continue
				}
				addItem(fmt.Sprintf("%s=bin%d/%d", c.Name, b+1, len(byBin)), rows)
			}
		case Categorical:
			byVal := map[string][]int{}
			var order []string
			for r, lab := range c.Labels {
				if lab == "" {
					continue
				}
				if _, ok := byVal[lab]; !ok {
					order = append(order, lab)
				}
				byVal[lab] = append(byVal[lab], r)
			}
			sort.Strings(order)
			for _, lab := range order {
				addItem(fmt.Sprintf("%s=%s", c.Name, lab), byVal[lab])
			}
		default:
			return nil, fmt.Errorf("dataset: column %q has unknown kind %d", c.Name, c.Kind)
		}
	}
	for r := range rowItems {
		sort.Ints(rowItems[r])
	}
	return &BoolTable{ItemNames: names, Rows: rowItems}, nil
}
