package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	d := toy(t)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDataset(t, d, got)
}

func TestReadFileWriteFile(t *testing.T) {
	d := toy(t)
	path := filepath.Join(t.TempDir(), "toy.tv")
	if err := WriteFile(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDataset(t, d, got)
}

func TestReadTolerance(t *testing.T) {
	in := "# comment\n\nL\ta\tb\n# another\nR\tc\n0 1 | 0\n\n1|\n"
	d, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 2 || d.Items(Left) != 2 || d.Items(Right) != 1 {
		t.Fatalf("dims = %d,%d,%d", d.Size(), d.Items(Left), d.Items(Right))
	}
	if d.Row(Right, 1).Count() != 0 {
		t.Fatal("second row right side should be empty")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"row before headers":  "0 | 0\nL\ta\nR\tb\n",
		"missing separator":   "L\ta\nR\tb\n0 0\n",
		"bad id":              "L\ta\nR\tb\nx | 0\n",
		"out of range":        "L\ta\nR\tb\n5 | 0\n",
		"duplicate L header":  "L\ta\nL\tb\nR\tc\n0|0\n",
		"no headers at all":   "# nothing\n",
		"duplicate item name": "L\ta\ta\nR\tb\n0|0\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadEmptyDatasetWithHeaders(t *testing.T) {
	d, err := Read(strings.NewReader("L\ta\nR\tb\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 0 || d.Items(Left) != 1 {
		t.Fatal("empty dataset with headers should parse")
	}
}

func assertSameDataset(t *testing.T, want, got *Dataset) {
	t.Helper()
	if got.Size() != want.Size() {
		t.Fatalf("size %d != %d", got.Size(), want.Size())
	}
	for _, v := range []View{Left, Right} {
		if got.Items(v) != want.Items(v) {
			t.Fatalf("items(%v) %d != %d", v, got.Items(v), want.Items(v))
		}
		for i := 0; i < want.Items(v); i++ {
			if got.Name(v, i) != want.Name(v, i) {
				t.Fatalf("name(%v,%d) %q != %q", v, i, got.Name(v, i), want.Name(v, i))
			}
		}
		for tr := 0; tr < want.Size(); tr++ {
			if !got.Row(v, tr).Equal(want.Row(v, tr)) {
				t.Fatalf("row(%v,%d) differs", v, tr)
			}
		}
	}
}
