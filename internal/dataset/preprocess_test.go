package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEqualHeightThresholds(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cuts := EqualHeightThresholds(vals, 5)
	if len(cuts) != 4 {
		t.Fatalf("cuts = %v", cuts)
	}
	// Each bin should hold 2 of the 10 values.
	counts := make([]int, 5)
	for _, v := range vals {
		counts[binOf(v, cuts)]++
	}
	for b, c := range counts {
		if c != 2 {
			t.Fatalf("bin %d holds %d values (cuts %v, counts %v)", b, c, cuts, counts)
		}
	}
}

func TestEqualHeightThresholdsTies(t *testing.T) {
	vals := []float64{1, 1, 1, 1, 1, 1, 1, 2}
	cuts := EqualHeightThresholds(vals, 5)
	// Heavy ties collapse duplicate cut points.
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatalf("cuts not strictly increasing: %v", cuts)
		}
	}
	if EqualHeightThresholds(nil, 5) != nil {
		t.Fatal("no values should give no cuts")
	}
	if EqualHeightThresholds(vals, 1) != nil {
		t.Fatal("k=1 should give no cuts")
	}
}

func TestQuickEqualHeightBalance(t *testing.T) {
	// On distinct values, equal-height bins differ in size by a bounded amount.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i) + r.Float64()*0.5 // distinct
		}
		r.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		k := 2 + r.Intn(6)
		cuts := EqualHeightThresholds(vals, k)
		counts := make([]int, len(cuts)+1)
		for _, v := range vals {
			counts[binOf(v, cuts)]++
		}
		lo, hi := n, 0
		for _, c := range counts {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		return hi-lo <= n/k+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBooleanize(t *testing.T) {
	cols := []*Column{
		{Name: "age", Kind: Numeric, Values: []float64{10, 20, 30, 40, 50, 60}},
		{Name: "color", Kind: Categorical, Labels: []string{"red", "blue", "red", "", "blue", "red"}},
	}
	bt, err := Booleanize(cols, BooleanizeOptions{Bins: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 3 bins for age + 2 colors = 5 items.
	if len(bt.ItemNames) != 5 {
		t.Fatalf("items = %v", bt.ItemNames)
	}
	// Every row has exactly one age item; row 3 has no color item.
	for r, row := range bt.Rows {
		nAge, nColor := 0, 0
		for _, it := range row {
			name := bt.ItemNames[it]
			if name[:3] == "age" {
				nAge++
			} else {
				nColor++
			}
		}
		if nAge != 1 {
			t.Fatalf("row %d has %d age items", r, nAge)
		}
		wantColor := 1
		if r == 3 {
			wantColor = 0
		}
		if nColor != wantColor {
			t.Fatalf("row %d has %d color items, want %d", r, nColor, wantColor)
		}
	}
}

func TestBooleanizeMissingNumeric(t *testing.T) {
	cols := []*Column{{
		Name: "x", Kind: Numeric,
		Values:  []float64{1, math.NaN(), 3, 4},
		Missing: []bool{false, false, true, false},
	}}
	bt, err := Booleanize(cols, BooleanizeOptions{Bins: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(bt.Rows[1]) != 0 || len(bt.Rows[2]) != 0 {
		t.Fatal("missing values must produce no items")
	}
	if len(bt.Rows[0]) != 1 || len(bt.Rows[3]) != 1 {
		t.Fatal("present values must produce one item")
	}
}

func TestBooleanizeMaxFrequency(t *testing.T) {
	cols := []*Column{{
		Name: "c", Kind: Categorical,
		Labels: []string{"a", "a", "a", "b"},
	}}
	bt, err := Booleanize(cols, BooleanizeOptions{MaxFrequency: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// "c=a" occurs in 75% of rows and must be dropped.
	if len(bt.ItemNames) != 1 || bt.ItemNames[0] != "c=b" {
		t.Fatalf("items = %v", bt.ItemNames)
	}
}

func TestBooleanizeErrors(t *testing.T) {
	if _, err := Booleanize(nil, BooleanizeOptions{}); err == nil {
		t.Fatal("no columns accepted")
	}
	cols := []*Column{
		{Name: "a", Kind: Numeric, Values: []float64{1}},
		{Name: "b", Kind: Numeric, Values: []float64{1, 2}},
	}
	if _, err := Booleanize(cols, BooleanizeOptions{}); err == nil {
		t.Fatal("ragged columns accepted")
	}
}

func TestSplitBalanced(t *testing.T) {
	bt := &BoolTable{
		ItemNames: []string{"i0", "i1", "i2", "i3"},
		Rows: [][]int{
			{0, 1, 2, 3},
			{0, 1},
			{0, 2},
			{0},
		},
	}
	d, err := SplitBalanced(bt)
	if err != nil {
		t.Fatal(err)
	}
	if d.Items(Left)+d.Items(Right) != 4 || d.Size() != 4 {
		t.Fatalf("split dims wrong: %d+%d items, %d rows", d.Items(Left), d.Items(Right), d.Size())
	}
	// Total ones must be preserved.
	if d.Ones(Left)+d.Ones(Right) != 4+2+2+1 {
		t.Fatal("split lost or duplicated ones")
	}
	// Ones should be near-balanced: the heaviest item (supp 4) alone on one
	// side, the rest (total 5) on the other.
	diff := d.Ones(Left) - d.Ones(Right)
	if diff < -1 || diff > 1 {
		t.Fatalf("ones imbalance: %d vs %d", d.Ones(Left), d.Ones(Right))
	}
}

func TestSplitByAssignment(t *testing.T) {
	bt := &BoolTable{
		ItemNames: []string{"a", "b", "c"},
		Rows:      [][]int{{0, 1, 2}, {1}},
	}
	d, err := SplitByAssignment(bt, []View{Left, Right, Left})
	if err != nil {
		t.Fatal(err)
	}
	if d.Name(Left, 0) != "a" || d.Name(Left, 1) != "c" || d.Name(Right, 0) != "b" {
		t.Fatal("assignment names wrong")
	}
	if !d.Row(Left, 0).ContainsAll([]int{0, 1}) || !d.Row(Right, 0).Contains(0) {
		t.Fatal("assignment rows wrong")
	}
	if _, err := SplitByAssignment(bt, []View{Left, Left, Left}); err == nil {
		t.Fatal("empty right view accepted")
	}
	if _, err := SplitByAssignment(bt, []View{Left}); err == nil {
		t.Fatal("short assignment accepted")
	}
}

func TestSplitErrors(t *testing.T) {
	if _, err := SplitBalanced(&BoolTable{ItemNames: []string{"only"}}); err == nil {
		t.Fatal("single-item split accepted")
	}
	bad := &BoolTable{ItemNames: []string{"a", "b"}, Rows: [][]int{{7}}}
	if _, err := SplitBalanced(bad); err == nil {
		t.Fatal("row with bad item accepted")
	}
}

func TestQuickSplitPreservesCells(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nItems := 2 + r.Intn(10)
		nRows := 1 + r.Intn(40)
		bt := &BoolTable{ItemNames: GenericNames("i", nItems)}
		ones := 0
		for i := 0; i < nRows; i++ {
			var row []int
			for j := 0; j < nItems; j++ {
				if r.Intn(3) == 0 {
					row = append(row, j)
					ones++
				}
			}
			bt.Rows = append(bt.Rows, row)
		}
		d, err := SplitBalanced(bt)
		if err != nil {
			return false
		}
		return d.Ones(Left)+d.Ones(Right) == ones &&
			d.Items(Left)+d.Items(Right) == nItems &&
			d.Size() == nRows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
