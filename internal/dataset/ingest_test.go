package dataset

import (
	"strings"
	"testing"
)

const sampleARFF = `% comment line
@relation weather

@attribute temperature numeric
@attribute 'outlook' {sunny, overcast, rainy}
@attribute humidity REAL
@data
30.5, sunny, 80
?, overcast, 75
25.0, rainy, ?
22.1, sunny, 60
`

func TestLoadARFF(t *testing.T) {
	cols, err := LoadARFF(strings.NewReader(sampleARFF))
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 {
		t.Fatalf("%d columns", len(cols))
	}
	if cols[0].Kind != Numeric || cols[1].Kind != Categorical || cols[2].Kind != Numeric {
		t.Fatal("kinds wrong")
	}
	if cols[0].Name != "temperature" || cols[1].Name != "outlook" {
		t.Fatalf("names wrong: %q %q", cols[0].Name, cols[1].Name)
	}
	if len(cols[0].Values) != 4 {
		t.Fatalf("%d rows", len(cols[0].Values))
	}
	if !cols[0].Missing[1] || cols[0].Missing[0] {
		t.Fatal("numeric missing flags wrong")
	}
	if cols[1].Labels[2] != "rainy" {
		t.Fatalf("label = %q", cols[1].Labels[2])
	}
	if cols[2].Missing == nil || !cols[2].Missing[2] {
		t.Fatal("humidity missing flag wrong")
	}
}

func TestLoadARFFErrors(t *testing.T) {
	cases := map[string]string{
		"no data section":   "@relation x\n@attribute a numeric\n",
		"data before attrs": "@relation x\n@data\n1\n",
		"bad type":          "@attribute a date\n@data\n1\n",
		"sparse row":        "@attribute a numeric\n@data\n{0 1}\n",
		"ragged row":        "@attribute a numeric\n@attribute b numeric\n@data\n1\n",
		"bad numeric":       "@attribute a numeric\n@data\nxyz\n",
		"unterminated set":  "@attribute a {x, y\n@data\nx\n",
		"late attribute":    "@attribute a numeric\n@data\n1\n@attribute b numeric\n",
		"stray content":     "hello\n@data\n",
	}
	for name, in := range cases {
		if _, err := LoadARFF(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

const sampleCSV = `age,city,income
25,oslo,50000
31,bergen,?
?,oslo,61000
44,tromso,70000
`

func TestLoadCSV(t *testing.T) {
	cols, err := LoadCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 {
		t.Fatalf("%d columns", len(cols))
	}
	if cols[0].Kind != Numeric || cols[1].Kind != Categorical || cols[2].Kind != Numeric {
		t.Fatalf("kinds wrong: %v %v %v", cols[0].Kind, cols[1].Kind, cols[2].Kind)
	}
	if !cols[0].Missing[2] {
		t.Fatal("age row 3 should be missing")
	}
	if cols[1].Labels[3] != "tromso" {
		t.Fatal("labels wrong")
	}
}

func TestLoadCSVErrors(t *testing.T) {
	if _, err := LoadCSV(strings.NewReader("only_header\n")); err == nil {
		t.Fatal("header-only csv accepted")
	}
	if _, err := LoadCSV(strings.NewReader(",b\n1,2\n")); err == nil {
		t.Fatal("empty column name accepted")
	}
	if _, err := LoadCSV(strings.NewReader("a,b\n1\n")); err == nil {
		t.Fatal("ragged csv accepted")
	}
}

func TestIngestEndToEnd(t *testing.T) {
	cols, err := LoadARFF(strings.NewReader(sampleARFF))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Ingest(cols, BooleanizeOptions{Bins: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 4 {
		t.Fatalf("size = %d", d.Size())
	}
	if d.Items(Left) == 0 || d.Items(Right) == 0 {
		t.Fatal("a view is empty")
	}
	// Total items: 2 temperature bins + 3 outlooks + 2 humidity bins.
	if d.Items(Left)+d.Items(Right) != 7 {
		t.Fatalf("items = %d + %d, want 7", d.Items(Left), d.Items(Right))
	}
}

func TestIngestSplitByAttribute(t *testing.T) {
	cols, err := LoadCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	// Demographics (age, city) left, income right — a "natural" split.
	d, err := IngestSplit(cols, BooleanizeOptions{Bins: 2}, []View{Left, Left, Right})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Items(Left); i++ {
		name := d.Name(Left, i)
		if !strings.HasPrefix(name, "age=") && !strings.HasPrefix(name, "city=") {
			t.Fatalf("left item %q from wrong attribute", name)
		}
	}
	for i := 0; i < d.Items(Right); i++ {
		if !strings.HasPrefix(d.Name(Right, i), "income=") {
			t.Fatalf("right item %q from wrong attribute", d.Name(Right, i))
		}
	}
	if _, err := IngestSplit(cols, BooleanizeOptions{}, []View{Left}); err == nil {
		t.Fatal("short assignment accepted")
	}
}

func TestIngestSplitAmbiguousNames(t *testing.T) {
	// Attribute names where one is a prefix of another must resolve to
	// the longest match.
	cols := []*Column{
		{Name: "a", Kind: Categorical, Labels: []string{"x", "y"}},
		{Name: "a=b", Kind: Categorical, Labels: []string{"z", "z"}},
	}
	d, err := IngestSplit(cols, BooleanizeOptions{}, []View{Left, Right})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Items(Right); i++ {
		if !strings.HasPrefix(d.Name(Right, i), "a=b=") {
			t.Fatalf("right item %q should come from attribute a=b", d.Name(Right, i))
		}
	}
}
