package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"twoview/internal/fault"
)

// The text format, one dataset per file:
//
//	# comment lines and blank lines are ignored
//	L <tab-separated item names of the left view>
//	R <tab-separated item names of the right view>
//	<left item ids separated by spaces> | <right item ids>
//	...
//
// Exactly one L line and one R line must precede the first row. Either side
// of a row may be empty. Item names must not contain tabs or newlines.

// Write serializes d in the text format.
func Write(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# twoview dataset: %d transactions, %d+%d items\n",
		d.Size(), d.Items(Left), d.Items(Right))
	writeHeader(bw, "L", d.Names(Left))
	writeHeader(bw, "R", d.Names(Right))
	for t := 0; t < d.Size(); t++ {
		writeIDs(bw, d.Row(Left, t).Indices())
		bw.WriteString(" | ")
		writeIDs(bw, d.Row(Right, t).Indices())
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// writeHeader emits "L" alone for an empty vocabulary so that the reader
// does not mistake a trailing tab for one empty item name.
func writeHeader(bw *bufio.Writer, side string, names []string) {
	if len(names) == 0 {
		fmt.Fprintf(bw, "%s\n", side)
		return
	}
	fmt.Fprintf(bw, "%s\t%s\n", side, strings.Join(names, "\t"))
}

func writeIDs(bw *bufio.Writer, ids []int) {
	for i, id := range ids {
		if i > 0 {
			bw.WriteByte(' ')
		}
		bw.WriteString(strconv.Itoa(id))
	}
}

// Read parses a dataset in the text format. It is RowReader run to
// completion with the rows materialized into a Dataset; callers that
// must not hold the whole dataset in memory (the serving layer's
// streaming translation) use RowReader directly.
func Read(r io.Reader) (*Dataset, error) {
	rr := NewRowReader(r)
	namesL, namesR, err := rr.Header()
	if err != nil {
		return nil, err
	}
	d, err := New(namesL, namesR)
	if err != nil {
		return nil, err
	}
	for {
		left, right, err := rr.Next()
		if err == io.EOF {
			return d, nil
		}
		if err != nil {
			return nil, err
		}
		if err := d.AddRow(left, right); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %v", rr.Line(), err)
		}
	}
}

// RowReader streams a dataset in the text format one transaction at a
// time: the L/R headers first (Header), then one id pair per row (Next).
// It is the memory-bounded access path under Read, built for consumers
// — like the Translator's ApplyStream — that process arbitrarily large
// datasets row by row without materializing them.
type RowReader struct {
	sc             *bufio.Scanner
	namesL, namesR []string
	line           int
	headerRead     bool
	left, right    []int // reused across Next calls
}

// NewRowReader returns a reader over the text format.
func NewRowReader(r io.Reader) *RowReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	return &RowReader{sc: sc}
}

// Header consumes the L/R header lines (in either order, skipping
// comments and blank lines) and returns the two vocabularies. It is
// idempotent and invoked implicitly by the first Next.
func (rr *RowReader) Header() (namesL, namesR []string, err error) {
	if rr.headerRead {
		return rr.namesL, rr.namesR, nil
	}
	for rr.sc.Scan() {
		rr.line++
		text := strings.TrimRight(rr.sc.Text(), "\r\n")
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(text, "L\t") || text == "L":
			if rr.namesL != nil {
				return nil, nil, fmt.Errorf("dataset: line %d: duplicate L header", rr.line)
			}
			rr.namesL = splitNames(text)
		case strings.HasPrefix(text, "R\t") || text == "R":
			if rr.namesR != nil {
				return nil, nil, fmt.Errorf("dataset: line %d: duplicate R header", rr.line)
			}
			rr.namesR = splitNames(text)
		default:
			return nil, nil, fmt.Errorf("dataset: line %d: row before L/R headers", rr.line)
		}
		if rr.namesL != nil && rr.namesR != nil {
			rr.headerRead = true
			return rr.namesL, rr.namesR, nil
		}
	}
	if err := rr.sc.Err(); err != nil {
		return nil, nil, err
	}
	return nil, nil, fmt.Errorf("dataset: missing L/R headers")
}

// Next returns the item ids of the next transaction. The returned
// slices are reused by the following Next call; callers that retain
// them must copy. The end of the stream is signalled with io.EOF. Ids
// are syntax-checked only — range validation against a vocabulary is
// the consumer's concern (AddRow in Read, the width check in streaming
// consumers).
func (rr *RowReader) Next() (left, right []int, err error) {
	if fault.Enabled {
		// Chaos builds only: lets tests script a transient read error
		// mid-stream ("the storage hiccuped on row k") and assert that
		// streaming consumers surface it cleanly instead of wedging.
		if err := fault.Point("dataset.rowreader.next"); err != nil {
			return nil, nil, fmt.Errorf("dataset: line %d: %w", rr.line, err)
		}
	}
	if !rr.headerRead {
		if _, _, err := rr.Header(); err != nil {
			return nil, nil, err
		}
	}
	for rr.sc.Scan() {
		rr.line++
		text := strings.TrimRight(rr.sc.Text(), "\r\n")
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if strings.HasPrefix(text, "L\t") || text == "L" {
			return nil, nil, fmt.Errorf("dataset: line %d: duplicate L header", rr.line)
		}
		if strings.HasPrefix(text, "R\t") || text == "R" {
			return nil, nil, fmt.Errorf("dataset: line %d: duplicate R header", rr.line)
		}
		parts := strings.SplitN(text, "|", 2)
		if len(parts) != 2 {
			return nil, nil, fmt.Errorf("dataset: line %d: missing '|' separator in row %q", rr.line, text)
		}
		if rr.left, err = parseIDsInto(rr.left[:0], parts[0]); err != nil {
			return nil, nil, fmt.Errorf("dataset: line %d: %v", rr.line, err)
		}
		if rr.right, err = parseIDsInto(rr.right[:0], parts[1]); err != nil {
			return nil, nil, fmt.Errorf("dataset: line %d: %v", rr.line, err)
		}
		return rr.left, rr.right, nil
	}
	if err := rr.sc.Err(); err != nil {
		return nil, nil, err
	}
	return nil, nil, io.EOF
}

// Line returns the line number of the most recently parsed line, for
// error reporting by consumers.
func (rr *RowReader) Line() int { return rr.line }

func splitNames(header string) []string {
	fields := strings.Split(header, "\t")[1:]
	// "L" alone (no tab) means an empty vocabulary, which New will reject
	// only if rows reference items.
	out := make([]string, 0, len(fields))
	for _, f := range fields {
		out = append(out, f)
	}
	return out
}

func parseIDsInto(dst []int, s string) ([]int, error) {
	for _, f := range strings.Fields(s) {
		id, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad item id %q", f)
		}
		dst = append(dst, id)
	}
	return dst, nil
}

// WriteFile writes d to path in the text format.
func WriteFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a dataset from path.
func ReadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
