package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The text format, one dataset per file:
//
//	# comment lines and blank lines are ignored
//	L <tab-separated item names of the left view>
//	R <tab-separated item names of the right view>
//	<left item ids separated by spaces> | <right item ids>
//	...
//
// Exactly one L line and one R line must precede the first row. Either side
// of a row may be empty. Item names must not contain tabs or newlines.

// Write serializes d in the text format.
func Write(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# twoview dataset: %d transactions, %d+%d items\n",
		d.Size(), d.Items(Left), d.Items(Right))
	writeHeader(bw, "L", d.Names(Left))
	writeHeader(bw, "R", d.Names(Right))
	for t := 0; t < d.Size(); t++ {
		writeIDs(bw, d.Row(Left, t).Indices())
		bw.WriteString(" | ")
		writeIDs(bw, d.Row(Right, t).Indices())
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// writeHeader emits "L" alone for an empty vocabulary so that the reader
// does not mistake a trailing tab for one empty item name.
func writeHeader(bw *bufio.Writer, side string, names []string) {
	if len(names) == 0 {
		fmt.Fprintf(bw, "%s\n", side)
		return
	}
	fmt.Fprintf(bw, "%s\t%s\n", side, strings.Join(names, "\t"))
}

func writeIDs(bw *bufio.Writer, ids []int) {
	for i, id := range ids {
		if i > 0 {
			bw.WriteByte(' ')
		}
		bw.WriteString(strconv.Itoa(id))
	}
}

// Read parses a dataset in the text format.
func Read(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var d *Dataset
	var namesL, namesR []string
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r\n")
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(text, "L\t") || text == "L":
			if namesL != nil {
				return nil, fmt.Errorf("dataset: line %d: duplicate L header", line)
			}
			namesL = splitNames(text)
		case strings.HasPrefix(text, "R\t") || text == "R":
			if namesR != nil {
				return nil, fmt.Errorf("dataset: line %d: duplicate R header", line)
			}
			namesR = splitNames(text)
		default:
			if namesL == nil || namesR == nil {
				return nil, fmt.Errorf("dataset: line %d: row before L/R headers", line)
			}
			if d == nil {
				var err error
				if d, err = New(namesL, namesR); err != nil {
					return nil, err
				}
			}
			left, right, err := parseRow(text)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %v", line, err)
			}
			if err := d.AddRow(left, right); err != nil {
				return nil, fmt.Errorf("dataset: line %d: %v", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if namesL == nil || namesR == nil {
		return nil, fmt.Errorf("dataset: missing L/R headers")
	}
	if d == nil {
		// Headers but zero rows: still a valid (empty) dataset.
		return New(namesL, namesR)
	}
	return d, nil
}

func splitNames(header string) []string {
	fields := strings.Split(header, "\t")[1:]
	// "L" alone (no tab) means an empty vocabulary, which New will reject
	// only if rows reference items.
	out := make([]string, 0, len(fields))
	for _, f := range fields {
		out = append(out, f)
	}
	return out
}

func parseRow(text string) (left, right []int, err error) {
	parts := strings.SplitN(text, "|", 2)
	if len(parts) != 2 {
		return nil, nil, fmt.Errorf("missing '|' separator in row %q", text)
	}
	if left, err = parseIDs(parts[0]); err != nil {
		return nil, nil, err
	}
	if right, err = parseIDs(parts[1]); err != nil {
		return nil, nil, err
	}
	return left, right, nil
}

func parseIDs(s string) ([]int, error) {
	fields := strings.Fields(s)
	out := make([]int, 0, len(fields))
	for _, f := range fields {
		id, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad item id %q", f)
		}
		out = append(out, id)
	}
	return out, nil
}

// WriteFile writes d to path in the text format.
func WriteFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a dataset from path.
func ReadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
