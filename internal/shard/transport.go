package shard

import (
	"context"

	"twoview/internal/core"
)

// transport is where a run's partitions live: in-process goroutine
// groups (localTransport) or shardworker daemons over TCP
// (tcpTransport). The supervisor is transport-blind — it speaks the
// same spawn/deliver protocol either way, and both transports surface
// every failure through the two channels the supervisor already
// handles: crash notices in its inbox and silence (recovered by the
// lease timer). Neither deliver path ever blocks the supervisor: a
// full queue or broken connection drops the request, which is
// indistinguishable from a crashed shard and recovered the same way.
type transport interface {
	// spawn starts (or, over TCP, announces) incarnation (part, term),
	// born from the given accepted-rule log snapshot. A previous
	// incarnation of the partition is implicitly replaced.
	spawn(part int, term uint64, log []core.Rule)
	// deliver hands the round's request to partition part's current
	// incarnation. It never blocks: the request is dropped on a full
	// mailbox, full write queue, or broken connection, and the lease
	// timer recovers.
	deliver(part int, req *request)
	// stats folds the transport's counters into rs.
	stats(rs *runStats)
	// close tears down connections. Incarnation goroutines hang off the
	// supervisor context and are tracked on run.wg; close only has to
	// unblock what context cancellation alone cannot reach.
	close()
}

// localTransport runs every partition as an in-process proc — the
// engine exactly as it behaves without TCP.
type localTransport struct {
	sv    *supervisor
	procs []*proc
}

func newLocalTransport(sv *supervisor) *localTransport {
	return &localTransport{sv: sv, procs: make([]*proc, len(sv.parts))}
}

func (t *localTransport) spawn(part int, term uint64, log []core.Rule) {
	if old := t.procs[part]; old != nil {
		old.cancel()
	}
	ctx, cancel := context.WithCancel(t.sv.ctx)
	p := &proc{
		run:     t.sv.run,
		part:    t.sv.parts[part],
		term:    term,
		ctx:     ctx,
		cancel:  cancel,
		mailbox: make(chan *request, queueDepth),
		out:     t.sv.inbox,
		log:     log,
	}
	t.sv.run.wg.Add(1)
	go p.loop()
	t.procs[part] = p
}

func (t *localTransport) deliver(part int, req *request) {
	select {
	case t.procs[part].mailbox <- req:
	default:
		// Mailbox full: the incarnation is wedged or already replaced.
		// Dropping here is the backpressure contract — the condition
		// surfaces as lease expiry and the partition is rebuilt, instead
		// of the supervisor blocking or the mailbox growing without
		// bound.
	}
}

func (t *localTransport) stats(*runStats) {}

func (t *localTransport) close() {} // procs die with the supervisor context
