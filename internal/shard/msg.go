package shard

import (
	"time"

	"twoview/internal/bitset"
	"twoview/internal/core"
	"twoview/internal/itemset"
)

// The in-process forms of the SCORE/APPLY/CRASH messages of the
// protocol (see the package doc for the wire-format reading). Requests
// flow supervisor → shard mailbox, replies and crash notices flow
// shard → supervisor inbox; nothing else crosses the boundary after
// bootstrap.

type msgKind uint8

const (
	msgScore msgKind = iota + 1
	msgApply
)

// pairMsg is one inline (X, Y) pair of an EXACT scoring request. The
// itemsets are owned by the coordinator and immutable once sent.
type pairMsg struct {
	x, y itemset.Itemset
}

// request is one leased work message from the supervisor to a shard.
type request struct {
	kind msgKind
	// seq is the round number and term the receiving incarnation's
	// number; the pair makes completions dedupable (see reply).
	seq, term uint64
	// lease bounds the shard's work on this message: scoring phases run
	// under a pool.Lease of this duration.
	lease time.Duration

	// msgScore payload: either indices into the run's announced
	// candidate list (SELECT/GREEDY) or inline pairs (EXACT).
	candIdx []int32
	pairs   []pairMsg

	// msgApply payload: the accepted rule, and whether the
	// acknowledgement must carry per-item covered tidsets (EXACT, for
	// the coordinator's tub mirror).
	rule      core.Rule
	wantCover bool
}

// tasks returns the number of scoring entries the request carries.
func (req *request) tasks() int {
	if len(req.candIdx) > 0 {
		return len(req.candIdx)
	}
	return len(req.pairs)
}

// dirCovers carries, aligned with an apply acknowledgement's count
// slices, the covered tidset of each owned consequent item — owned
// clones, safe to retain on the coordinator.
type dirCovers struct {
	fwd, back []*bitset.Set
}

// reply is a shard's completion or crash notice. The supervisor accepts
// a completion only if (part, term, seq) matches the incarnation and
// round it is waiting on; everything else — duplicates, reorders, and
// messages from replaced incarnations — is discarded by value. A crash
// notice carries only (part, term): it retires that incarnation.
type reply struct {
	part      int
	term, seq uint64
	crash     bool

	// counts holds one DirCounts per scored entry (msgScore) or exactly
	// one (msgApply), restricted to the partition's owned items.
	counts []core.DirCounts
	// covers accompanies counts[0] of an apply acknowledgement when the
	// request set wantCover.
	covers *dirCovers
}
