package shard

import "time"

// stopwatch starts timing and returns a function reporting the elapsed
// wall time — the single sanctioned wall-clock read in this package,
// mirroring core's: the duration lands in Result.Runtime, observational
// metadata only. Everything time-dependent in the engine proper — lease
// deadlines, expiry detection — runs on timers (context.WithTimeout,
// time.NewTimer), never on wall-clock reads, so no supervision decision
// can depend on absolute time.
func stopwatch() func() time.Duration {
	start := time.Now() //lint:wallclock-ok observational: feeds Result.Runtime only, never a mining or supervision decision
	return func() time.Duration {
		return time.Since(start) //lint:wallclock-ok observational: feeds Result.Runtime only, never a mining or supervision decision
	}
}
