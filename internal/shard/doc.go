// Package shard is the supervised sharded mining engine behind
// core.ParallelOptions.Shards: the columnar cover state is partitioned
// by item range into N shard goroutine groups that own their ucol/ecol
// columns privately (core.PartialState) and exchange only small
// messages with a coordinator — no shared State. The engine runs all
// three TRANSLATOR searches (EXACT, SELECT, GREEDY) bit-identical to
// the monolithic in-process miners for every shard count, worker
// count, and injected failure schedule.
//
// # Architecture
//
// One mining call builds a run: a supervisor goroutine (the caller's)
// and cfg.Shards shard procs, each a goroutine group owning one
// Partition of both item alphabets. Mining proceeds in rounds, each a
// leased broadcast-gather:
//
//	supervisor                      shard p (one of N)
//	----------                      ------------------
//	seq++; for every partition:
//	  dispatch req{seq, term, lease} ──▶ mailbox
//	                                 score/apply on the partition
//	                                 (workers-wide phase under the
//	                                  lease, internal/pool.Lease)
//	  gather  ◀── reply{part, term, seq, counts}
//	  merge in partition order (bit-identical fold, see below)
//
// Shards never talk to each other, never share mutable state with the
// coordinator, and hold no floats: a shard computes integer per-item
// (covered, errors) pairs with the same fused popcount kernels the
// monolith uses, and the coordinator performs all float accumulation
// in exactly the monolith's order (core.GainFromCounts,
// core.CoverTotals, core.TubMirror). Integer counts are schedule- and
// failure-independent, which is what makes the whole engine so.
//
// # Supervision: leases, terms, replay
//
// The coordinator is a supervisor, not a barrier. Every dispatched
// message is a lease with a deadline; a shard that panics, crashes by
// fault injection, or blows its lease is torn down and its partition
// rebuilt: the supervisor bumps the partition's term (incarnation
// number), spawns a fresh proc that reconstructs its columns from the
// accepted-rule log (core.PartialState Replay — a pure function of
// dataset, ranges and log), and re-dispatches the in-flight request.
// Replies are deduplicated by (partition, term, seq): duplicated
// completions, reordered completions, and completions from abandoned
// incarnations are discarded by value, never by timing. The rule log
// is appended only after an apply round fully completes, so a shard
// rebuilt mid-apply replays the log without the in-flight rule and
// then applies it via the re-dispatch — never twice.
//
// Shards also self-bound: each scoring phase runs under the granted
// lease (pool.Lease), so a shard that cannot finish in time drains its
// own phase, retires the incarnation with a crash notice, and frees
// its workers instead of wedging them.
//
// # Message protocol
//
// The in-process message types below are also the wire format the TCP
// transport speaks (internal/wire encodes them; see below); in-process
// fields that are Go pointers into shared immutable structures become
// explicit transfers at bootstrap, exactly once per worker:
//
//	HELLO     coordinator → shard: dataset (or its content hash for a
//	          shard-local cache), the partition's item ranges
//	          [loL,hiL)×[loR,hiR), and the candidate announcement (the
//	          candidate itemsets, for SELECT/GREEDY runs; shards
//	          compute and cache the support tidsets themselves — they
//	          are dataset-static). In-process: the shared *Dataset and
//	          []Candidate pointers carried by the run.
//	SCORE     coordinator → shard: {seq, term, lease} plus either
//	          candidate indices (SELECT/GREEDY: u32 indices into the
//	          announced candidate list) or inline pairs (EXACT: two
//	          item-id arrays per pair). Shard replies with, per entry,
//	          the owned consequent items' (item, covered, errors)
//	          integer triples in item order — both rule directions.
//	          Zero triples may be run-length compressed on the wire;
//	          the fold skips them by value either way.
//	APPLY     coordinator → shard: {seq, term, lease, rule}. The shard
//	          updates its columns and replies with the same per-item
//	          triples for the applied rule; when the request sets
//	          want_cover (EXACT runs), each triple additionally carries
//	          the covered transaction-id bitmap, from which the
//	          coordinator maintains its transaction-granular bounds
//	          (core.TubMirror). This is the only message whose size
//	          scales with |D|, and it flows once per accepted rule.
//	CRASH     shard → coordinator: {part, term} — a voluntary retire
//	          notice (recovered panic or self-detected lease blowout).
//	          On TCP the same path is a broken/timed-out connection;
//	          the supervisor's lease timer already covers silent death.
//
// All replies carry (part, term, seq) for the dedup rule above, so the
// transport may deliver duplicates or reorder freely; the protocol is
// idempotent at the receiver by discard, not by re-execution.
//
// # Transports: in-process and TCP
//
// The supervisor drives partitions through a transport it cannot
// otherwise observe. The in-process transport (transport.go) spawns
// shard procs with bounded mailboxes. The TCP transport (net.go),
// selected by core.ParallelOptions.ShardAddrs, places partition p on
// shardworker daemon Addrs[p mod len(Addrs)] (cmd/shardworker) and
// speaks the protocol in internal/wire's framing. HELLO carries the
// dataset and candidate list as content hashes; the worker acks with
// the set it is missing and only those blobs are transferred — a
// worker that has seen the content before (earlier run, earlier
// incarnation, or a restart with -cache DIR) boots from its cache with
// zero transfer.
//
// Every network failure is funneled onto a supervision path that
// already exists: a broken, poisoned, or timed-out connection
// synthesizes CRASH notices for the incarnations it hosted (then
// redials with deterministic doubling backoff and re-announces the
// desired incarnations via HELLO), a full queue or disconnected
// address drops the request and the lease recovers it, and duplicated
// or reordered frames are discarded by the dedup rule. Because shards
// exchange only integers and the coordinator folds them in monolith
// order, the mined tables stay bit-identical for any shard placement,
// connection-failure schedule, and worker count — the property the
// network chaos suite (chaos_net_test.go, `make chaos-net`) asserts.
//
// Backpressure is one constant, queueDepth: the capacity of every
// in-process mailbox and the per-partition budget of a TCP session's
// write queue. A full queue never blocks the supervisor and never
// grows — delivery is dropped and surfaces as lease expiry.
//
// # Failpoints
//
// Under -tags faultinject (see internal/fault) the engine exposes:
//
//	shard.dispatch   supervisor, before handing a request to a mailbox
//	shard.recv       shard, on taking a request (Delay = stall a shard
//	                 past its lease; Panic = crash before any work)
//	shard.task       shard, around each scoring task of a phase
//	                 (Panic = crash mid-phase on a pool worker)
//	shard.apply      shard, before applying an accepted rule
//	shard.reply      shard, before sending a completion (Err = drop
//	                 the message; the lease expires and recovery runs)
//	shard.reply.dup  shard, after sending (Err = send the completion
//	                 twice, exercising the dedup rule)
//	shard.replay     shard, per replayed rule during a rebuild
//	                 (Panic = crash during recovery itself)
//
// The chaos suite (chaos_test.go, `make chaos-shard`) scripts these
// and asserts the mined table stays reference-identical while
// recovery demonstrably fired.
package shard
