package shard

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"twoview/internal/core"
	"twoview/internal/itemset"
)

// Worker-process harness shared by the TCP property tests, the network
// chaos suite (chaos_net_test.go) and BenchmarkShardTCPLoopback: build
// cmd/shardworker once per test binary, launch real worker processes on
// loopback, and scrape their ephemeral listen addresses.

var workerBin struct {
	once sync.Once
	path string
	err  error
}

// buildWorker builds the shardworker binary (once) and returns its path.
func buildWorker(tb testing.TB) string {
	tb.Helper()
	workerBin.once.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			workerBin.err = err
			return
		}
		dir, err := os.MkdirTemp("", "shardworker-bin-")
		if err != nil {
			workerBin.err = err
			return
		}
		out := filepath.Join(dir, "shardworker")
		cmd := exec.Command("go", "build", "-o", out, "./cmd/shardworker")
		cmd.Dir = root
		if msg, err := cmd.CombinedOutput(); err != nil {
			workerBin.err = fmt.Errorf("building shardworker: %v\n%s", err, msg)
			return
		}
		workerBin.path = out
	})
	if workerBin.err != nil {
		tb.Fatal(workerBin.err)
	}
	return workerBin.path
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// workerProc is one running shardworker process.
type workerProc struct {
	tb    testing.TB
	cmd   *exec.Cmd
	addr  string
	cache string
}

// startWorker launches a shardworker on the given address ("" = an
// ephemeral loopback port) with the given cache directory ("" = a fresh
// private one) and waits for it to report its listen address.
func startWorker(tb testing.TB, addr, cache string) *workerProc {
	tb.Helper()
	bin := buildWorker(tb)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	if cache == "" {
		cache = tb.TempDir()
	}
	cmd := exec.Command(bin, "-addr", addr, "-cache", cache)
	cmd.Stderr = io.Discard
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		tb.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		tb.Fatal(err)
	}
	w := &workerProc{tb: tb, cmd: cmd, cache: cache}
	tb.Cleanup(w.kill)

	lines := bufio.NewScanner(stdout)
	got := make(chan bool, 1)
	go func() { got <- lines.Scan() }()
	select {
	case ok := <-got:
		if !ok {
			tb.Fatal("shardworker exited before reporting its address")
		}
	case <-time.After(10 * time.Second):
		tb.Fatal("shardworker did not report its address")
	}
	line := lines.Text()
	w.addr = strings.TrimPrefix(line, "listening ")
	if w.addr == line || w.addr == "" {
		tb.Fatalf("unexpected shardworker banner %q", line)
	}
	// Drain the rest of stdout so the worker never blocks on a full pipe.
	go func() {
		for lines.Scan() {
		}
	}()
	return w
}

// kill terminates the worker immediately (also the cleanup path).
// Idempotent, so chaos tests can kill mid-run and let cleanup re-fire.
func (w *workerProc) kill() {
	if w.cmd.Process != nil {
		w.cmd.Process.Kill()
	}
	w.cmd.Wait()
}

// tcpGrid is the acceptance grid of the TCP transport: shards ∈ {2, 3}
// spread over 2 worker processes, workers ∈ {1, 4} inside each shard.
var tcpShards = []int{2, 3}
var tcpWorkers = []int{1, 4}

// TestTCPShardedMatchesMonolith is the distributed acceptance property:
// EXACT, SELECT and GREEDY mined over TCP — two real shardworker
// processes on loopback — must be bit-identical to the monolith for
// every (shards, workers) cell. It also pins the HELLO-time transfer
// economics across the runs sharing the workers: the dataset and
// candidate blobs cross the wire once each, and every later run boots
// from cache hits.
func TestTCPShardedMatchesMonolith(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns shardworker processes")
	}
	d := plantedDataset(t, 29)
	cands := mustCandidates(t, d)
	refExact, err := core.MineExact(context.Background(), d, core.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refSelect, err := core.MineSelect(context.Background(), d, cands, core.SelectOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	refGreedy, err := core.MineGreedy(context.Background(), d, cands, core.GreedyOptions{BlockSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(refExact.Table.Rules) == 0 || len(refSelect.Table.Rules) == 0 || len(refGreedy.Table.Rules) == 0 {
		t.Fatal("a reference mined no rules; test is vacuous")
	}

	w1 := startWorker(t, "", "")
	w2 := startWorker(t, "", "")
	addrs := []string{w1.addr, w2.addr}

	ctx := context.Background()
	totalBlobs, totalHits := 0, 0
	for runIdx, shards := range tcpShards {
		for _, workers := range tcpWorkers {
			cfg := Config{Shards: shards, Workers: workers, Addrs: addrs}

			res, st, err := mineExact(ctx, d, core.ExactOptions{}, cfg)
			if err != nil {
				t.Fatalf("tcp exact shards=%d workers=%d: %v", shards, workers, err)
			}
			sameResult(t, formatCell("tcp exact", shards, workers), refExact, res)
			if st.dials < 2 {
				t.Fatalf("exact shards=%d: dialed %d workers, want 2", shards, st.dials)
			}
			totalBlobs += st.blobsSent
			totalHits += st.cacheHits

			res, st, err = mineSelect(ctx, d, cands, core.SelectOptions{K: 3}, cfg)
			if err != nil {
				t.Fatalf("tcp select shards=%d workers=%d: %v", shards, workers, err)
			}
			sameResult(t, formatCell("tcp select", shards, workers), refSelect, res)
			totalBlobs += st.blobsSent
			totalHits += st.cacheHits

			res, st, err = mineGreedy(ctx, d, cands, core.GreedyOptions{BlockSize: 16}, cfg)
			if err != nil {
				t.Fatalf("tcp greedy shards=%d workers=%d: %v", shards, workers, err)
			}
			sameResult(t, formatCell("tcp greedy", shards, workers), refGreedy, res)
			totalBlobs += st.blobsSent
			totalHits += st.cacheHits

			_ = runIdx
		}
	}
	// Across all runs, each worker needed the dataset once and the
	// candidate list once: 4 transfers total, everything else cache hits.
	if totalBlobs != 4 {
		t.Errorf("blobs sent across all runs = %d, want 4 (dataset+candidates × 2 workers)", totalBlobs)
	}
	if totalHits == 0 {
		t.Error("no HELLO answered from cache across repeat runs")
	}
}

// TestTCPPublicDispatch pins the ShardAddrs plumbing end to end: the
// public core entry point with only ShardAddrs set (Shards left 0) must
// route through the TCP engine and still match the monolith.
func TestTCPPublicDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns shardworker processes")
	}
	d := plantedDataset(t, 31)
	ref, err := core.MineExact(context.Background(), d, core.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w1 := startWorker(t, "", "")
	w2 := startWorker(t, "", "")
	res, err := core.MineExact(context.Background(), d, core.ExactOptions{
		ParallelOptions: core.ParallelOptions{ShardAddrs: []string{w1.addr, w2.addr}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "public ShardAddrs dispatch", ref, res)
}

// TestMailboxBackpressure is the regression test of the backpressure
// contract: deliver on a full in-process mailbox returns immediately
// and drops (never blocks, never grows the queue), and an undrained
// queue surfaces as lease expiry — the supervisor restarts the
// partition and the round still completes.
func TestMailboxBackpressure(t *testing.T) {
	// deliver past a full mailbox: bounded and non-blocking. If it
	// blocked, the test would time out; the queue must also never exceed
	// the shared backpressure constant.
	dead := &proc{mailbox: make(chan *request, queueDepth)}
	lt := &localTransport{procs: []*proc{dead}}
	for i := 0; i < queueDepth+5; i++ {
		lt.deliver(0, &request{kind: msgScore})
	}
	if len(dead.mailbox) != queueDepth {
		t.Fatalf("mailbox holds %d requests, want the backpressure bound %d", len(dead.mailbox), queueDepth)
	}

	// A wedged partition whose mailbox is never drained again: the
	// dispatched request sits in the bounded queue, the lease expires,
	// and the supervisor rebuilds — queue-full is lease-expiry, not a
	// hang.
	d := plantedDataset(t, 37)
	r := newRun(context.Background(), d, nil, Config{Shards: 2, Lease: 50 * time.Millisecond, MaxRestarts: 10})
	defer r.close()
	lt2 := r.sv.tr.(*localTransport)
	lt2.procs[0].cancel() // wedge partition 0 silently
	reps, err := r.sv.scorePairs([]pairMsg{{x: itemset.New(0), y: itemset.New(0)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0] == nil || reps[1] == nil {
		t.Fatal("round did not gather both partitions")
	}
	if r.sv.restarts == 0 {
		t.Fatal("undrained queue did not surface as lease expiry")
	}
}

// BenchmarkShardTCPLoopback measures a full SELECT mining run through
// the sharded engine, in-process versus two shardworker processes on
// loopback — the protocol and codec overhead of distribution.
func BenchmarkShardTCPLoopback(b *testing.B) {
	d := plantedDataset(b, 41)
	cands := mustCandidates(b, d)
	opt := core.SelectOptions{K: 3}
	ctx := context.Background()

	b.Run("inproc", func(b *testing.B) {
		cfg := Config{Shards: 2, Workers: 2}
		for i := 0; i < b.N; i++ {
			if _, _, err := mineSelect(ctx, d, cands, opt, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tcp", func(b *testing.B) {
		w1 := startWorker(b, "", "")
		w2 := startWorker(b, "", "")
		cfg := Config{Shards: 2, Workers: 2, Addrs: []string{w1.addr, w2.addr}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := mineSelect(ctx, d, cands, opt, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
