package shard

import (
	"bytes"
	"context"
	"sync"
	"time"

	"twoview/internal/bitset"
	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/mdl"
	"twoview/internal/pool"
	"twoview/internal/wire"
)

// Config sizes one sharded mining run. The zero value of every field
// selects a default; none of the fields influence the mined table.
type Config struct {
	// Shards is the number of item-range partitions, each owned by one
	// shard proc; values < 1 mean 1 (a single shard still runs the full
	// message protocol). Results are identical for every value.
	Shards int
	// Workers sets each shard's scoring-pool size, like
	// core.ParallelOptions.Workers: 0 means GOMAXPROCS, 1 disables
	// parallelism inside the shard. Results are identical regardless.
	Workers int
	// Lease is the deadline granted with every dispatched message; a
	// shard that has not completed within it is presumed dead and its
	// partition is rebuilt. 0 means DefaultLease. Too-short leases cost
	// rebuild work, never correctness: a late completion from a
	// replaced incarnation is discarded by term.
	Lease time.Duration
	// MaxRestarts caps partition rebuilds per run; past it the run
	// fails rather than loop on a deterministically crashing shard
	// (e.g. a persistent fault schedule). 0 means DefaultMaxRestarts.
	MaxRestarts int
	// Addrs lifts the engine onto TCP: each address is a shardworker
	// daemon (cmd/shardworker) and partition p is placed on
	// Addrs[p % len(Addrs)]. Empty (the default) runs every shard
	// in-process. The supervision protocol is identical either way; a
	// broken or timed-out connection is one more way for an incarnation
	// to crash.
	Addrs []string
	// RedialBackoff is the base delay before redialing a broken
	// connection; successive failed dials back off deterministically
	// (doubling, capped) — no randomness, so a failure schedule replays
	// identically. 0 means DefaultRedialBackoff.
	RedialBackoff time.Duration
}

// Defaults for Config's zero fields. The lease default is generous: it
// is a liveness failsafe, not a pacing mechanism, and only has to beat
// the longest legitimate phase of a round.
const (
	DefaultLease         = 10 * time.Second
	DefaultMaxRestarts   = 100
	DefaultRedialBackoff = 50 * time.Millisecond
)

// queueDepth is the single backpressure constant of the engine: the
// capacity of every in-process shard mailbox and the per-partition
// budget of a TCP session's write queue. A full queue never blocks the
// supervisor and never buffers without bound — the frame is dropped and
// the condition surfaces as lease expiry, the same path as a crash.
const queueDepth = 2

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Lease <= 0 {
		c.Lease = DefaultLease
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = DefaultMaxRestarts
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = DefaultRedialBackoff
	}
	return c
}

// configFrom maps the miner-facing knobs to a shard Config. A non-empty
// address list with Shards left 0 means one partition per address.
func configFrom(par core.ParallelOptions) Config {
	shards := par.Shards
	if shards == 0 && len(par.ShardAddrs) > 0 {
		shards = len(par.ShardAddrs)
	}
	return Config{Shards: shards, Workers: par.Workers, Addrs: par.ShardAddrs}
}

// Partition is one shard's slice of both item alphabets: the items
// [LoL, HiL) of the left view and [LoR, HiR) of the right view. The
// split is by contiguous ascending ranges, so concatenating the
// partitions' per-item messages in partition order walks the full
// alphabet in item order — which is what keeps the coordinator's float
// folds in the monolith's exact accumulation order.
type Partition struct {
	Index    int
	LoL, HiL int
	LoR, HiR int
}

// split partitions both alphabets into n balanced contiguous ranges
// (range p is [p·m/n, (p+1)·m/n)). n may exceed the item count; the
// excess partitions are empty and their shards answer every round with
// empty counts.
func split(d *dataset.Dataset, n int) []Partition {
	mL, mR := d.Items(dataset.Left), d.Items(dataset.Right)
	parts := make([]Partition, n)
	for p := 0; p < n; p++ {
		parts[p] = Partition{
			Index: p,
			LoL:   p * mL / n, HiL: (p + 1) * mL / n,
			LoR: p * mR / n, HiR: (p + 1) * mR / n,
		}
	}
	return parts
}

// runStats counts the supervision events of one run, for the chaos
// suite to assert that recovery actually fired.
type runStats struct {
	// restarts is the number of partition rebuilds (crash notices,
	// blown leases).
	restarts int
	// stale is the number of discarded completions: duplicates,
	// reorders, and messages from replaced incarnations.
	stale int

	// TCP transport counters; all zero for in-process runs.

	// dials is the number of established worker connections; redials is
	// how many of them replaced a broken one.
	dials, redials int
	// blobsSent counts dataset/candidate transfers the HELLO negotiation
	// actually performed; cacheHits counts the HELLOs a worker answered
	// entirely from its content-hash cache.
	blobsSent, cacheHits int
}

// run is the per-mining-call context shared by the supervisor and every
// shard incarnation: the immutable inputs (dataset, coder, candidates)
// and the private worker runtime all shard scoring phases park on.
type run struct {
	d     *dataset.Dataset
	coder *mdl.Coder
	cands []core.Candidate
	cfg   Config
	// workers is the resolved per-shard scoring pool size.
	workers int
	rt      *pool.Runtime
	sv      *supervisor
	// wg tracks every proc goroutine ever spawned, so close can wait
	// for them all before releasing the worker runtime.
	wg sync.WaitGroup

	// Reused coordinator-side merge scratch: the partitions' count
	// slices of the entry being folded, in partition order.
	fwdParts, backParts [][]core.ItemCount

	// Content-addressed transfer blobs of the TCP transport, computed
	// once per run (empty for in-process runs): the dataset in its text
	// serialization and the candidate list in wire encoding, each with
	// the SHA-256 a HELLO announces.
	datasetBlob []byte
	datasetHash wire.Hash
	candsBlob   []byte
	candsHash   wire.Hash
}

// newRun builds the engine for one mining call: resolves the config,
// materializes the shared read-only structures (the column caches must
// exist before shard goroutines read them concurrently), and starts the
// supervisor with its initial shard procs.
func newRun(ctx context.Context, d *dataset.Dataset, cands []core.Candidate, cfg Config) *run {
	cfg = cfg.withDefaults()
	d.Columns(dataset.Left)
	d.Columns(dataset.Right)
	r := &run{
		d:       d,
		coder:   mdl.NewCoder(d),
		cands:   cands,
		cfg:     cfg,
		workers: pool.Size(cfg.Workers, 1<<30),
		rt:      pool.NewRuntime(),
	}
	r.fwdParts = make([][]core.ItemCount, cfg.Shards)
	r.backParts = make([][]core.ItemCount, cfg.Shards)
	if len(cfg.Addrs) > 0 {
		var buf bytes.Buffer
		if err := dataset.Write(&buf, d); err != nil {
			// The text serializer only fails on writer errors, which a
			// bytes.Buffer never produces.
			panic(err)
		}
		r.datasetBlob = buf.Bytes()
		r.datasetHash = wire.HashBytes(r.datasetBlob)
		if len(cands) > 0 {
			r.candsBlob = wire.AppendCandidates(nil, cands)
			r.candsHash = wire.HashBytes(r.candsBlob)
		}
	}
	r.sv = newSupervisor(ctx, r)
	return r
}

// close tears the run down: cancel every shard, wait for their
// goroutines to drain, then release the worker runtime.
func (r *run) close() {
	r.sv.close()
	r.wg.Wait()
	r.rt.Close()
}

func (r *run) stats() *runStats {
	rs := &runStats{restarts: r.sv.restarts, stale: r.sv.stale}
	r.sv.tr.stats(rs)
	return rs
}

// qub is the candidate quick bound of §5.2 — State.Qub, which reads
// only the coder, never the cover state. Because it is state-free, the
// set of candidates that can ever score positive is fixed for the whole
// run and the drivers compute it once.
func (r *run) qub(c *core.Candidate) float64 {
	return float64(c.TidX.Count())*r.coder.SetLen(dataset.Right, c.Y) +
		float64(c.TidY.Count())*r.coder.SetLen(dataset.Left, c.X) -
		r.coder.RuleLen(c.X, c.Y, true)
}

// applyRule runs an APPLY round for an accepted rule and folds the
// acknowledgements into the coordinator mirrors: the scalar totals
// always, and — when tubm is non-nil (EXACT) — the per-item covered
// tidsets into the tub mirror, in the monolith's application order
// (consequent order within a direction, X→Y direction before X←Y).
func applyRule(r *run, totals *core.CoverTotals, tubm *core.TubMirror, table *core.Table, rule core.Rule) error {
	reps, err := r.sv.apply(rule, tubm != nil)
	if err != nil {
		return err
	}
	for p, rep := range reps {
		r.fwdParts[p] = rep.counts[0].Fwd
		r.backParts[p] = rep.counts[0].Back
	}
	totals.Apply(rule, r.fwdParts, r.backParts)
	if tubm != nil {
		for _, rep := range reps {
			for i, c := range rep.counts[0].Fwd {
				tubm.ApplyItem(dataset.Right, int(c.Item), rep.covers.fwd[i])
			}
		}
		for _, rep := range reps {
			for i, c := range rep.counts[0].Back {
				tubm.ApplyItem(dataset.Left, int(c.Item), rep.covers.back[i])
			}
		}
	}
	table.Rules = append(table.Rules, rule)
	return nil
}

// record appends the iteration's stats to the result, built from the
// coordinator mirrors with exactly the fields Result.record reads off
// the monolithic State, and forwards to the callbacks. It reports
// whether mining should continue.
func record(res *core.Result, r *run, totals *core.CoverTotals, table *core.Table, rule core.Rule, gain float64, trace core.TraceFunc, onIter core.IterationFunc) bool {
	it := core.IterationStats{
		Iteration:  len(res.Iterations) + 1,
		Rule:       rule,
		Gain:       gain,
		Score:      totals.Score(table),
		UncoveredL: totals.UOnes[dataset.Left],
		UncoveredR: totals.UOnes[dataset.Right],
		ErrorsL:    totals.EOnes[dataset.Left],
		ErrorsR:    totals.EOnes[dataset.Right],
		TableLen:   table.Len(r.coder),
		CorrLenL:   totals.CorrLen[dataset.Left],
		CorrLenR:   totals.CorrLen[dataset.Right],
	}
	res.Iterations = append(res.Iterations, it)
	if trace != nil {
		trace(it)
	}
	if onIter != nil {
		return onIter(it)
	}
	return true
}

// anyIn reports whether any item of s is in mask (core's anyIn).
func anyIn(s []int, mask *bitset.Set) bool {
	for _, it := range s {
		if mask.Contains(it) {
			return true
		}
	}
	return false
}
