package shard

import (
	"context"
	"fmt"
	"time"

	"twoview/internal/core"
	"twoview/internal/fault"
)

// supervisor is the coordinator side of a sharded run: it owns the
// accepted-rule log, the partition → incarnation map, and the round
// protocol. It is a real supervisor, not a barrier — every round is a
// leased broadcast-gather in which a shard that crashes, goes silent or
// answers too late is replaced by a fresh incarnation rebuilt from the
// log, and the round completes with the successor's answer.
//
// Determinism does not depend on any of that machinery firing or not:
// replies are integers over a partition state that is a pure function
// of (dataset, ranges, log), so the gathered counts are the same
// whether they come from the original incarnation or its tenth
// replacement, and the coordinator's float folds see identical inputs
// under every failure schedule.
type supervisor struct {
	run *run
	cfg Config

	parts []Partition
	// tr is where the incarnations live: in-process procs or shardworker
	// daemons over TCP. The supervision protocol is transport-blind.
	tr transport
	// terms[p] is partition p's current incarnation number; replies
	// from older terms are stale by definition.
	terms []uint64
	// seq is the round number, shared by all partitions.
	seq uint64
	// inbox receives every incarnation's replies and crash notices. Its
	// capacity covers a full round of replies plus crash noise, so
	// retiring procs never block on a supervisor that is between reads.
	inbox chan *reply

	// log is the accepted-rule log: the authoritative mining history,
	// appended only after the apply round for the rule has fully
	// completed, so a mid-apply rebuild replays up to — never into —
	// the in-flight rule.
	log []core.Rule

	restarts int
	stale    int

	ctx    context.Context
	cancel context.CancelFunc
}

func newSupervisor(ctx context.Context, r *run) *supervisor {
	sctx, cancel := context.WithCancel(ctx)
	sv := &supervisor{
		run:    r,
		cfg:    r.cfg,
		parts:  split(r.d, r.cfg.Shards),
		ctx:    sctx,
		cancel: cancel,
		inbox:  make(chan *reply, 4*r.cfg.Shards+16),
	}
	sv.terms = make([]uint64, len(sv.parts))
	if len(sv.cfg.Addrs) > 0 {
		sv.tr = newTCPTransport(sv, sv.cfg.Addrs)
	} else {
		sv.tr = newLocalTransport(sv)
	}
	for p := range sv.parts {
		sv.tr.spawn(p, 0, nil)
	}
	return sv
}

// close cancels every live incarnation and tears the transport down.
// Callers wait on run.wg for the goroutines themselves.
func (sv *supervisor) close() {
	sv.cancel()
	sv.tr.close()
}

// restart replaces partition part's incarnation: bump the term
// (instantly staling everything the old one might still send) and
// spawn a successor from the log; the transport replaces the old
// incarnation as a side effect. When redispatch is set the successor
// is immediately handed the in-flight request.
func (sv *supervisor) restart(part int, mk func(part int) *request, redispatch bool) error {
	if sv.restarts >= sv.cfg.MaxRestarts {
		return fmt.Errorf("shard: partition %d crashed with the run's restart budget (%d) exhausted", part, sv.cfg.MaxRestarts)
	}
	sv.restarts++
	sv.terms[part]++
	sv.tr.spawn(part, sv.terms[part], sv.log)
	if redispatch {
		sv.dispatch(part, mk)
	}
	return nil
}

// dispatch builds and delivers the round's request for partition part.
// Delivery never blocks: a dead incarnation, full mailbox, or broken
// connection drops the request, and the lease timer recovers.
func (sv *supervisor) dispatch(part int, mk func(part int) *request) {
	req := mk(part)
	req.seq, req.term, req.lease = sv.seq, sv.terms[part], sv.cfg.Lease
	if fault.Enabled {
		fault.Fire("shard.dispatch")
	}
	sv.tr.deliver(part, req)
}

// round runs one leased broadcast-gather: dispatch mk's request to
// every partition, then gather until every partition has answered for
// this round with its current term — restarting partitions as crash
// notices arrive and leases expire. The returned replies are indexed by
// partition, so the caller's merge runs in partition order regardless
// of arrival order.
func (sv *supervisor) round(mk func(part int) *request) ([]*reply, error) {
	sv.seq++
	out := make([]*reply, len(sv.parts))
	pending := len(out)
	for part := range sv.parts {
		sv.dispatch(part, mk)
	}
	// The lease timer is the liveness failsafe for silent deaths (a
	// shard that can still panic sends a crash notice; one that is
	// wedged or whose completion was lost sends nothing). It re-arms
	// for as long as the round is incomplete.
	timer := time.NewTimer(sv.cfg.Lease)
	defer timer.Stop()
	for pending > 0 {
		select {
		case <-sv.ctx.Done():
			return nil, sv.ctx.Err()
		case m := <-sv.inbox:
			switch {
			case m.crash:
				if m.term != sv.terms[m.part] {
					sv.stale++ // a replaced incarnation's dying word
					continue
				}
				if err := sv.restart(m.part, mk, out[m.part] == nil); err != nil {
					return nil, err
				}
			case m.seq != sv.seq || m.term != sv.terms[m.part] || out[m.part] != nil:
				// Stale round, stale incarnation, or duplicate delivery:
				// discarded by value — correctness never depends on the
				// transport not duplicating or reordering.
				sv.stale++
			default:
				out[m.part] = m
				pending--
			}
		case <-timer.C:
			for part := range out {
				if out[part] == nil {
					if err := sv.restart(part, mk, true); err != nil {
						return nil, err
					}
				}
			}
			timer.Reset(sv.cfg.Lease)
		}
	}
	return out, nil
}

// scoreCands runs a SCORE round over indices into the run's candidate
// list.
func (sv *supervisor) scoreCands(idx []int32) ([]*reply, error) {
	return sv.round(func(int) *request {
		return &request{kind: msgScore, candIdx: idx}
	})
}

// scorePairs runs a SCORE round over inline (X, Y) pairs.
func (sv *supervisor) scorePairs(pairs []pairMsg) ([]*reply, error) {
	return sv.round(func(int) *request {
		return &request{kind: msgScore, pairs: pairs}
	})
}

// apply runs an APPLY round for an accepted rule, then — and only
// then — appends it to the log. A partition rebuilt while the round is
// in flight therefore replays a log without r and receives r via the
// re-dispatched request: the rule reaches every incarnation's columns
// exactly once.
func (sv *supervisor) apply(r core.Rule, wantCover bool) ([]*reply, error) {
	reps, err := sv.round(func(int) *request {
		return &request{kind: msgApply, rule: r, wantCover: wantCover}
	})
	if err != nil {
		return nil, err
	}
	sv.log = append(sv.log, r)
	return reps, nil
}
