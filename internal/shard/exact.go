package shard

import (
	"context"
	"slices"
	"sort"

	"twoview/internal/bitset"
	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
)

// This file is the sharded TRANSLATOR-EXACT driver. The enumeration —
// the ECLAT-style DFS over occurring pairs, in the monolith's exact
// item order — runs on the coordinator, which owns every float the
// search ranks by; the shards evaluate batches of enumerated pairs
// (integer counts only) and apply accepted rules. Three deliberate
// differences from the monolith, none observable in the result:
//
//   - No rub pruning and no seed phase: both only shrink the set of
//     evaluated pairs, and the pruning threshold is always an achieved
//     gain ≤ the final best gain, so every pair they skip loses
//     strictly (qub/rub bound the gain from above, and the skip test
//     is strict <). Evaluating a superset changes no champion under
//     the (gain, Rule.Compare) total order. rub would need the tub
//     sums fused into every tidset intersection — all-shard traffic
//     per DFS node — for bounds that §6.1 shows decay after the first
//     iterations anyway; qub needs only the path lengths and support
//     counts the coordinator already has, so it is kept.
//   - Pairs are evaluated in batches (one SCORE round per batch)
//     instead of immediately, so the incumbent the qub filter sees
//     lags the monolith's by at most a batch — a larger evaluated
//     superset, same champion.
//   - The item potentials that order the search come from the
//     coordinator's TubMirror, maintained from the covered tidsets the
//     apply acknowledgements carry — the identical update history, so
//     the identical float bits — instead of from a live State.
type exactDriver struct {
	r    *run
	opt  core.ExactOptions
	tubm *core.TubMirror

	// ctx of the current bestRule call, probed inside the DFS at the
	// monolith's granularity.
	ctx   context.Context
	ticks uint

	// items is rebuilt (re-sorted by potential) every iteration; the
	// slice is reused.
	items []exItem
	// levels is the per-depth DFS scratch, grown on first descent.
	levels []exLevel
	// batch accumulates enumerated pairs between SCORE rounds; keep is
	// the flush-local surviving-index scratch and pairs the wire view.
	batch []pairEval
	keep  []int
	pairs []pairMsg

	full, fullY, fullXY *bitset.Set

	// The champion under the (gain, Rule.Compare) total order. Its
	// itemsets alias the batch entries' owned clones.
	best     core.Rule
	bestGain float64
	found    bool
}

// exItem is the monolith's joinedItem: one item of the joined alphabet.
type exItem struct {
	view dataset.View
	id   int
	col  *bitset.Set
	len  float64
	pot  float64
}

type exLevel struct {
	xy, side *bitset.Set
	set      itemset.Itemset
}

// pairEval is one enumerated pair awaiting evaluation: owned itemset
// clones, the support counts for qub, and the DFS-path-accumulated
// lengths (whose float addition order the monolith's champion gains
// depend on — which is why the coordinator, which replicates the DFS
// paths, must accumulate them rather than recompute Σ ItemLen in any
// other order).
type pairEval struct {
	x, y         itemset.Itemset
	suppX, suppY int
	lenX, lenY   float64
}

// exactBatch is the SCORE-round batch size: enumeration cost per pair
// is tiny next to a round's dispatch-gather overhead, so batches keep
// the shards' phases meaty. The value affects only how far the qub
// incumbent lags, never the result.
const exactBatch = 256

// exactCtxProbeMask mirrors the monolith's in-branch cancellation probe
// granularity: one ctx.Err() per 1024 extensions.
const exactCtxProbeMask = 1<<10 - 1

func newExactDriver(r *run, opt core.ExactOptions, tubm *core.TubMirror) *exactDriver {
	n := r.d.Size()
	ed := &exactDriver{r: r, opt: opt, tubm: tubm}
	ed.full = bitset.New(n)
	ed.full.Fill()
	ed.fullY, ed.fullXY = ed.full.Clone(), ed.full.Clone()
	return ed
}

func mineExact(ctx context.Context, d *dataset.Dataset, opt core.ExactOptions, cfg Config) (*core.Result, *runStats, error) {
	elapsed := stopwatch()
	r := newRun(ctx, d, nil, cfg)
	defer r.close()

	totals := core.NewCoverTotals(d, r.coder)
	tubm := core.NewTubMirror(d, r.coder)
	table := &core.Table{}
	res := &core.Result{}
	ed := newExactDriver(r, opt, tubm)

	var err error
	for opt.MaxRules == 0 || len(table.Rules) < opt.MaxRules {
		if err = ctx.Err(); err != nil {
			break
		}
		var rule core.Rule
		var gain float64
		var ok bool
		if rule, gain, ok, err = ed.bestRule(ctx); err != nil || !ok || gain <= core.GainEpsilon {
			break
		}
		if err = applyRule(r, totals, tubm, table, rule); err != nil {
			break
		}
		if !record(res, r, totals, table, rule, gain, opt.Trace, opt.OnIteration) {
			break
		}
	}
	res.Table = table
	res.State = core.EvaluateTable(d, r.coder, table)
	res.Runtime = elapsed()
	return res, r.stats(), err
}

// bestRule finds argmax_r Δ_{D,T}(r) with the monolith's deterministic
// tie-break: enumerate in the potential-sorted item order, evaluate
// through SCORE rounds, keep the champion.
func (ed *exactDriver) bestRule(ctx context.Context) (core.Rule, float64, bool, error) {
	d := ed.r.d
	ed.ctx = ctx
	items := ed.items[:0]
	for _, v := range []dataset.View{dataset.Left, dataset.Right} {
		cols := d.Columns(v)
		for i := 0; i < d.Items(v); i++ {
			if cols[i].Empty() {
				continue
			}
			items = append(items, exItem{
				view: v,
				id:   i,
				col:  cols[i],
				len:  ed.r.coder.ItemLen(v, i),
				pot:  ed.tubm.SumTub(v.Opposite(), cols[i]),
			})
		}
	}
	slices.SortFunc(items, func(a, b exItem) int {
		switch {
		case a.pot > b.pot:
			return -1
		case a.pot < b.pot:
			return 1
		case a.view != b.view:
			return int(a.view) - int(b.view)
		default:
			return a.id - b.id
		}
	})
	ed.items = items
	ed.best, ed.bestGain, ed.found = core.Rule{}, 0, false

	for k := range items {
		if err := ed.extend(nil, nil, ed.full, ed.fullY, ed.fullXY, k, 0, 0, 0); err != nil {
			return core.Rule{}, 0, false, err
		}
	}
	if err := ed.flush(); err != nil {
		return core.Rule{}, 0, false, err
	}
	if !ed.found {
		return core.Rule{}, 0, false, nil
	}
	return core.Rule{X: ed.best.X.Clone(), Dir: ed.best.Dir, Y: ed.best.Y.Clone()}, ed.bestGain, true, nil
}

func (ed *exactDriver) bufs(depth int) *exLevel {
	for len(ed.levels) <= depth {
		n := ed.r.d.Size()
		ed.levels = append(ed.levels, exLevel{xy: bitset.New(n), side: bitset.New(n)})
	}
	return &ed.levels[depth]
}

// extend grows the pair (x, y) by the item at position k, enqueues the
// result for evaluation when both sides are non-empty, and recurses
// into positions > k — the monolith's extend minus the rub arithmetic.
func (ed *exactDriver) extend(x, y itemset.Itemset, tidX, tidY, tidXY *bitset.Set, k, depth int, lenX, lenY float64) error {
	if ed.ticks++; ed.ticks&exactCtxProbeMask == 0 {
		if err := ed.ctx.Err(); err != nil {
			return err
		}
	}
	it := ed.items[k]
	bufs := ed.bufs(depth)
	childXY := bufs.xy
	bitset.IntersectInto(childXY, tidXY, it.col)
	if childXY.Empty() {
		return nil // X∪Y must occur in the data (§5.2)
	}
	bufs.set = insertItemInto(bufs.set, x, y, it)
	var cx, cy itemset.Itemset
	var ctX, ctY *bitset.Set
	clenX, clenY := lenX, lenY
	if it.view == dataset.Left {
		cx, cy = bufs.set, y
		ctX = bufs.side
		bitset.IntersectInto(ctX, tidX, it.col)
		ctY = tidY
		clenX += it.len
	} else {
		cx, cy = x, bufs.set
		ctX = tidX
		ctY = bufs.side
		bitset.IntersectInto(ctY, tidY, it.col)
		clenY += it.len
	}
	if len(cx) > 0 && len(cy) > 0 {
		if err := ed.enqueue(cx, cy, ctX, ctY, clenX, clenY); err != nil {
			return err
		}
	}
	for k2 := k + 1; k2 < len(ed.items); k2++ {
		if err := ed.extend(cx, cy, ctX, ctY, childXY, k2, depth+1, clenX, clenY); err != nil {
			return err
		}
	}
	return nil
}

// insertItemInto writes (x or y) ∪ {it.id} into dst, reusing capacity —
// the monolith's insertItemInto.
func insertItemInto(dst itemset.Itemset, x, y itemset.Itemset, it exItem) itemset.Itemset {
	s := x
	if it.view == dataset.Right {
		s = y
	}
	i := sort.SearchInts(s, it.id)
	dst = append(dst[:0], s[:i]...)
	dst = append(dst, it.id)
	return append(dst, s[i:]...)
}

// enqueue records an enumerated pair for the next SCORE round, flushing
// a full batch.
func (ed *exactDriver) enqueue(x, y itemset.Itemset, tidX, tidY *bitset.Set, lenX, lenY float64) error {
	ed.batch = append(ed.batch, pairEval{
		x: x.Clone(), y: y.Clone(),
		suppX: tidX.Count(), suppY: tidY.Count(),
		lenX: lenX, lenY: lenY,
	})
	if len(ed.batch) >= exactBatch {
		return ed.flush()
	}
	return nil
}

// flush evaluates the accumulated batch: filter by qub against the live
// incumbent (strict <, like the monolith's evaluate — a pair whose
// bound merely equals the incumbent may still win the Compare
// tie-break), run one SCORE round over the survivors, fold the counts
// into the three directions' gains with the monolith's arithmetic, and
// update the champion under its exact comparison rule.
func (ed *exactDriver) flush() error {
	if len(ed.batch) == 0 {
		return nil
	}
	batch := ed.batch
	ed.batch = ed.batch[:0]
	keep := ed.keep[:0]
	pairs := ed.pairs[:0]
	for i := range batch {
		pe := &batch[i]
		if !ed.opt.DisableQub {
			qub := float64(pe.suppX)*pe.lenY + float64(pe.suppY)*pe.lenX - (pe.lenX + pe.lenY + 1)
			if qub < ed.bestGain {
				continue
			}
		}
		keep = append(keep, i)
		pairs = append(pairs, pairMsg{x: pe.x, y: pe.y})
	}
	ed.keep, ed.pairs = keep, pairs
	if len(pairs) == 0 {
		return nil
	}
	reps, err := ed.r.sv.scorePairs(pairs)
	if err != nil {
		return err
	}
	r := ed.r
	for pi, bi := range keep {
		pe := &batch[bi]
		for p, rep := range reps {
			r.fwdParts[p] = rep.counts[pi].Fwd
			r.backParts[p] = rep.counts[pi].Back
		}
		gainF := core.GainFromCounts(r.coder, dataset.Right, r.fwdParts...)
		gainB := core.GainFromCounts(r.coder, dataset.Left, r.backParts...)
		lenBi := pe.lenX + pe.lenY + 1
		lenUni := pe.lenX + pe.lenY + 2
		for _, cand := range [3]struct {
			dir  core.Direction
			gain float64
		}{
			{core.Forward, gainF - lenUni},
			{core.Backward, gainB - lenUni},
			{core.Both, gainF + gainB - lenBi},
		} {
			rl := core.Rule{X: pe.x, Dir: cand.dir, Y: pe.y}
			if cand.gain > ed.bestGain ||
				(ed.found && cand.gain == ed.bestGain && rl.Compare(ed.best) < 0) {
				ed.best = rl
				ed.bestGain = cand.gain
				ed.found = true
			}
		}
	}
	return nil
}
