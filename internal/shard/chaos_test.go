//go:build faultinject

package shard

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"twoview/internal/core"
	"twoview/internal/fault"
)

// leaseForTest is the short lease the lease-driven scenarios run under:
// long enough that a healthy round on the 80-row fixtures never blows
// it (even under -race on a loaded runner — spurious expiries would
// only add rebuilds, never break identity, but they would blur what a
// scenario proves), short enough to keep the stall scenarios fast.
const leaseForTest = 100 * time.Millisecond

// Chaos coverage for the sharded engine under -tags faultinject: every
// scenario scripts a failure schedule against a named failpoint
// (internal/fault), mines through it, and asserts the two halves of the
// robustness contract — the result is bit-identical to the undisturbed
// monolith (sameResult: rules rule-for-rule, every iteration float, the
// final score), and the supervision machinery actually fired (runStats,
// fault.Hits). References are computed before any schedule is armed.
//
// The scenarios map onto the protocol's failure modes:
//
//	shard.task      a scoring task panics mid-phase (crash mid-round)
//	shard.recv      a shard dies on receive, or stalls past its lease
//	shard.reply     a completion is lost in transit
//	shard.reply.dup a completion is delivered twice (dedup/reorder)
//	shard.apply     a shard dies mid-apply (replay-from-log rebuild)
//	shard.replay    the rebuild itself crashes (supervised restart of
//	                the restart)

// A panic injected into one shard's scoring task re-raises on the shard
// proc, which retires with a crash notice; the supervisor rebuilds the
// partition and re-dispatches, and the round — and the whole mine —
// completes bit-identically.
func TestChaosShardCrashMidScore(t *testing.T) {
	defer fault.Reset()
	d := plantedDataset(t, 31)
	cands := mustCandidates(t, d)
	ref, err := core.MineSelect(context.Background(), d, cands, core.SelectOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}

	fault.Set("shard.task", fault.Action{Skip: 3, Panic: "chaos: poisoned scoring task"})
	res, stats, err := mineSelect(context.Background(), d, cands,
		core.SelectOptions{K: 3}, Config{Shards: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fault.Hits("shard.task") == 0 {
		t.Fatal("schedule never fired; scenario is vacuous")
	}
	if stats.restarts == 0 {
		t.Fatal("no partition was rebuilt; the crash went unsupervised")
	}
	sameResult(t, "crash mid-score", ref, res)
}

// A shard that panics on receive dies before producing anything; the
// supervisor restarts it and hands the successor the in-flight request.
func TestChaosShardCrashOnReceive(t *testing.T) {
	defer fault.Reset()
	d := plantedDataset(t, 37)
	cands := mustCandidates(t, d)
	ref, err := core.MineGreedy(context.Background(), d, cands, core.GreedyOptions{BlockSize: 16})
	if err != nil {
		t.Fatal(err)
	}

	fault.Set("shard.recv", fault.Action{Skip: 2, Panic: "chaos: killed on receive"})
	res, stats, err := mineGreedy(context.Background(), d, cands,
		core.GreedyOptions{BlockSize: 16}, Config{Shards: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.restarts == 0 {
		t.Fatal("no partition was rebuilt; the crash went unsupervised")
	}
	sameResult(t, "crash on receive", ref, res)
}

// A shard that stalls past its lease is presumed dead: the lease timer
// rebuilds the partition and re-dispatches, and whatever the stalled
// incarnation eventually sends is staled by its term. (No assertion on
// the stale count — the replaced incarnation may also just drop its
// late completion on its cancelled context; both exits are correct.)
func TestChaosShardDelayPastLease(t *testing.T) {
	defer fault.Reset()
	d := plantedDataset(t, 41)
	cands := mustCandidates(t, d)
	ref, err := core.MineSelect(context.Background(), d, cands, core.SelectOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}

	lease := leaseForTest
	fault.Set("shard.recv", fault.Action{Delay: 6 * lease})
	res, stats, err := mineSelect(context.Background(), d, cands,
		core.SelectOptions{K: 2}, Config{Shards: 3, Workers: 1, Lease: lease})
	if err != nil {
		t.Fatal(err)
	}
	if stats.restarts == 0 {
		t.Fatal("lease expiry never rebuilt the stalled partition")
	}
	sameResult(t, "delay past lease", ref, res)
}

// A completion lost in transit looks exactly like a stalled shard: the
// lease recovers it through a rebuilt incarnation whose completion does
// arrive.
func TestChaosShardDroppedReply(t *testing.T) {
	defer fault.Reset()
	d := plantedDataset(t, 43)
	cands := mustCandidates(t, d)
	ref, err := core.MineSelect(context.Background(), d, cands, core.SelectOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}

	fault.Set("shard.reply", fault.Action{Err: errors.New("chaos: completion lost")})
	res, stats, err := mineSelect(context.Background(), d, cands,
		core.SelectOptions{K: 3}, Config{Shards: 2, Workers: 2, Lease: leaseForTest})
	if err != nil {
		t.Fatal(err)
	}
	if stats.restarts == 0 {
		t.Fatal("the dropped completion was never recovered")
	}
	sameResult(t, "dropped reply", ref, res)
}

// A duplicated completion is discarded by value — (part, term, seq)
// dedup — whether it lands inside its own round or trails into the
// next one as a stale seq.
func TestChaosShardDuplicateReply(t *testing.T) {
	defer fault.Reset()
	d := plantedDataset(t, 47)
	cands := mustCandidates(t, d)
	ref, err := core.MineSelect(context.Background(), d, cands, core.SelectOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}

	dup := errors.New("chaos: duplicate delivery")
	fault.Set("shard.reply.dup",
		fault.Action{Err: dup}, fault.Action{Err: dup}, fault.Action{Err: dup})
	res, stats, err := mineSelect(context.Background(), d, cands,
		core.SelectOptions{K: 3}, Config{Shards: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.stale == 0 {
		t.Fatal("no duplicate was discarded; dedup untested")
	}
	if stats.restarts != 0 {
		t.Fatalf("duplicates caused %d rebuilds; dedup should be restart-free", stats.restarts)
	}
	sameResult(t, "duplicate reply", ref, res)
}

// A shard that dies mid-apply is rebuilt by replaying the accepted-rule
// log — which excludes the in-flight rule, delivered instead via the
// re-dispatched request, so it reaches the successor's columns exactly
// once. The schedule also kills the first rebuild during its replay,
// proving the restart path is itself supervised.
func TestChaosShardCrashDuringApplyAndReplay(t *testing.T) {
	defer fault.Reset()
	d := twoPlantDataset(t, 53)
	cands := mustCandidates(t, d)
	ref, err := core.MineSelect(context.Background(), d, cands, core.SelectOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Table.Rules) < 2 {
		t.Fatal("need at least 2 reference rules so a rebuild has a log to replay")
	}

	// With 2 shards, apply hits 1-2 are the first rule; hit 3 is the
	// second rule's apply on one shard, whose log then holds rule 1.
	fault.Set("shard.apply", fault.Action{Skip: 2, Panic: "chaos: killed mid-apply"})
	fault.Set("shard.replay", fault.Action{Panic: "chaos: killed mid-replay"})
	res, stats, err := mineSelect(context.Background(), d, cands,
		core.SelectOptions{K: 3}, Config{Shards: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.restarts < 2 {
		t.Fatalf("restarts = %d, want >= 2 (the apply crash, then the replay crash)", stats.restarts)
	}
	if fault.Hits("shard.replay") == 0 {
		t.Fatal("no rebuild ever replayed the log")
	}
	sameResult(t, "crash during apply+replay", ref, res)
}

// The EXACT driver under a compound schedule — a poisoned pair-scoring
// task and a killed apply in the same run — exercising the tub-mirror
// acknowledgement path through a rebuilt incarnation.
func TestChaosShardExactCompoundSchedule(t *testing.T) {
	defer fault.Reset()
	d := plantedDataset(t, 59)
	ref, err := core.MineExact(context.Background(), d, core.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Table.Rules) == 0 {
		t.Fatal("reference mined no rules; test is vacuous")
	}

	fault.Set("shard.task", fault.Action{Skip: 10, Panic: "chaos: poisoned pair task"})
	fault.Set("shard.apply", fault.Action{Panic: "chaos: killed mid-apply"})
	res, stats, err := mineExact(context.Background(), d,
		core.ExactOptions{}, Config{Shards: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.restarts < 2 {
		t.Fatalf("restarts = %d, want >= 2 (one per armed point)", stats.restarts)
	}
	sameResult(t, "exact compound schedule", ref, res)
}

// A partition that crashes past the run's restart budget fails the run
// with an error instead of looping on a deterministically dying shard.
func TestChaosShardRestartBudgetExhausted(t *testing.T) {
	defer fault.Reset()
	d := plantedDataset(t, 61)
	cands := mustCandidates(t, d)

	boom := fault.Action{Panic: "chaos: persistent crash"}
	fault.Set("shard.recv", boom, boom, boom, boom)
	_, _, err := mineSelect(context.Background(), d, cands,
		core.SelectOptions{K: 3}, Config{Shards: 2, Workers: 1, MaxRestarts: 1})
	if err == nil {
		t.Fatal("a persistently crashing shard must fail the run")
	}
	if !strings.Contains(err.Error(), "restart budget") {
		t.Fatalf("err = %v, want the restart-budget failure", err)
	}
}
