package shard

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"twoview/internal/core"
	"twoview/internal/wire"
)

// tcpTransport places partitions on shardworker daemons
// (cmd/shardworker): partition p lives on Addrs[p % len(Addrs)], spoken
// to in the wire encoding of the same HELLO/SCORE/APPLY/CRASH protocol
// the in-process transport runs over channels. Every network failure is
// funneled onto a path the supervisor already handles: a broken or
// poisoned connection synthesizes crash notices for the incarnations it
// hosted, a full write queue or disconnected address drops the request
// and the lease timer recovers, and duplicated or reordered frames are
// discarded by the (part, term, seq) dedup rule. The transport itself
// makes no mining or supervision decision — the supervisor cannot tell
// it apart from the in-process one except by latency.
type tcpTransport struct {
	sv     *supervisor
	mgrs   []*connMgr
	byPart []*connMgr
}

func newTCPTransport(sv *supervisor, addrs []string) *tcpTransport {
	t := &tcpTransport{sv: sv}
	t.mgrs = make([]*connMgr, len(addrs))
	for i, a := range addrs {
		t.mgrs[i] = &connMgr{
			sv:      sv,
			addr:    a,
			desired: make([]*incarnation, len(sv.parts)),
			parked:  make([]*request, len(sv.parts)),
		}
	}
	t.byPart = make([]*connMgr, len(sv.parts))
	for p := range sv.parts {
		m := t.mgrs[p%len(t.mgrs)]
		t.byPart[p] = m
		m.nparts++
	}
	for _, m := range t.mgrs {
		sv.run.wg.Add(1)
		go m.loop()
	}
	return t
}

func (t *tcpTransport) spawn(part int, term uint64, log []core.Rule) {
	t.byPart[part].spawn(part, term, log)
}

func (t *tcpTransport) deliver(part int, req *request) {
	t.byPart[part].deliver(part, req)
}

func (t *tcpTransport) stats(rs *runStats) {
	for _, m := range t.mgrs {
		m.mu.Lock()
		rs.dials += m.dials
		if m.dials > 1 {
			rs.redials += m.dials - 1
		}
		rs.blobsSent += m.blobsSent
		rs.cacheHits += m.cacheHits
		m.mu.Unlock()
	}
}

// close is a no-op: the managers exit through the supervisor context
// (the dialer honours it and each session's watcher closes the conn).
func (t *tcpTransport) close() {}

// incarnation is one desired (term, birth log) of a partition — the
// state a fresh session announces via HELLO, and the term a dead
// session's synthesized crash notices carry.
type incarnation struct {
	term uint64
	log  []core.Rule
}

// connMgr owns one worker address: it dials (and redials, with
// deterministic backoff), announces the desired incarnations on every
// new session, relays replies, and converts session death into crash
// notices. One goroutine per address runs loop; spawn and deliver are
// called from the supervisor goroutine.
type connMgr struct {
	sv   *supervisor
	addr string
	// nparts is how many partitions this address hosts; it sizes each
	// session's write queue: queueDepth data frames per partition plus
	// headroom for the control frames (HELLOs, blobs).
	nparts int

	mu sync.Mutex
	// desired[p] is partition p's current incarnation when it is hosted
	// here, nil otherwise.
	desired []*incarnation
	// parked[p] is the newest request dispatched to partition p while no
	// session was up (the initial dial, or a redial window); a fresh
	// session sends it right after the HELLOs. One slot per partition —
	// the same depth-bounded, newest-wins contract as every other queue
	// here — and it only shortcuts the wait: a request that stayed
	// parked is recovered by the lease like any other drop.
	parked []*request
	sess   *session

	dials     int
	blobsSent int
	cacheHits int
}

func (m *connMgr) spawn(part int, term uint64, log []core.Rule) {
	m.mu.Lock()
	m.desired[part] = &incarnation{term: term, log: log}
	sess := m.sess
	m.mu.Unlock()
	if sess != nil {
		sess.sendControl(m.helloFrame(part, term, log))
	}
}

func (m *connMgr) deliver(part int, req *request) {
	m.mu.Lock()
	sess := m.sess
	if sess == nil {
		m.parked[part] = req // delivered on connect; the lease backstops
		m.mu.Unlock()
		return
	}
	m.parked[part] = nil
	m.mu.Unlock()
	frame, err := encodeRequest(int32(part), req)
	if err != nil {
		return
	}
	sess.sendData(frame)
}

// helloFrame encodes partition part's HELLO. A nil return (a log past
// MaxFrame — far beyond any real table) is silently dropped; the
// missing announcement surfaces as lease expiry.
func (m *connMgr) helloFrame(part int, term uint64, log []core.Rule) []byte {
	r := m.sv.run
	p := m.sv.parts[part]
	frame, err := wire.Encode(nil, &wire.Hello{
		Part: int32(part), Term: term,
		LoL: int32(p.LoL), HiL: int32(p.HiL),
		LoR: int32(p.LoR), HiR: int32(p.HiR),
		Workers:     int32(r.workers),
		DatasetHash: r.datasetHash,
		CandsHash:   r.candsHash,
		Log:         log,
	})
	if err != nil {
		return nil
	}
	return frame
}

// encodeRequest maps an in-process request onto its wire form.
func encodeRequest(part int32, req *request) ([]byte, error) {
	switch req.kind {
	case msgScore:
		s := &wire.Score{Part: part, Term: req.term, Seq: req.seq, Lease: req.lease, CandIdx: req.candIdx}
		if len(req.pairs) > 0 {
			s.Pairs = make([]wire.Pair, len(req.pairs))
			for i, pr := range req.pairs {
				s.Pairs[i] = wire.Pair{X: pr.x, Y: pr.y}
			}
		}
		return wire.Encode(nil, s)
	case msgApply:
		return wire.Encode(nil, &wire.Apply{
			Part: part, Term: req.term, Seq: req.seq, Lease: req.lease,
			Rule: req.rule, WantCover: req.wantCover,
		})
	}
	return nil, fmt.Errorf("shard: unencodable request kind %d", req.kind)
}

// loop dials the address until the run ends, serving one session per
// successful dial. Backoff doubles per consecutive failed dial from the
// configured base, capped — and with no randomness, so a failure
// schedule replays identically.
func (m *connMgr) loop() {
	defer m.sv.run.wg.Done()
	ctx := m.sv.ctx
	var dialer net.Dialer
	attempt := 0
	for ctx.Err() == nil {
		if attempt > 0 {
			if !sleepCtx(ctx, redialDelay(m.sv.cfg.RedialBackoff, attempt)) {
				return
			}
		}
		conn, err := dialer.DialContext(ctx, "tcp", m.addr)
		if err != nil {
			attempt++
			continue
		}
		m.serve(conn)
		// The session was established and died: the next dial is a
		// redial, backing off from the base again.
		attempt = 1
	}
}

// maxRedialDelay caps the backoff schedule.
const maxRedialDelay = time.Second

func redialDelay(base time.Duration, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt && d < maxRedialDelay; i++ {
		d *= 2
	}
	if d > maxRedialDelay {
		d = maxRedialDelay
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// serve runs one established session: announce the desired
// incarnations, relay frames both ways, and on any failure synthesize
// crash notices for everything this address hosted — a dead connection
// and a crashed shard are the same event to the supervisor.
func (m *connMgr) serve(conn net.Conn) {
	sv := m.sv
	sess := &session{
		conn: conn,
		out:  make(chan []byte, queueDepth*m.nparts+m.nparts+4),
		done: make(chan struct{}),
	}
	sv.run.wg.Add(2)
	go func() { // a cancelled run must unblock the blocking read below
		defer sv.run.wg.Done()
		select {
		case <-sv.ctx.Done():
			sess.close()
		case <-sess.done:
		}
	}()
	go sess.writeLoop(&sv.run.wg)

	m.mu.Lock()
	m.dials++
	m.sess = sess
	announce := append([]*incarnation(nil), m.desired...)
	queued := append([]*request(nil), m.parked...)
	for part := range m.parked {
		m.parked[part] = nil
	}
	m.mu.Unlock()
	for part, inc := range announce {
		if inc != nil {
			sess.sendControl(m.helloFrame(part, inc.term, inc.log))
		}
	}
	// Requests that arrived while disconnected ride right behind the
	// HELLOs (same FIFO queue, so the worker sees the announcement
	// first); without this, every dial window would cost a full lease.
	for part, req := range queued {
		if req == nil {
			continue
		}
		if frame, err := encodeRequest(int32(part), req); err == nil {
			sess.sendData(frame)
		}
	}

	var buf []byte
	for {
		var msg wire.Msg
		var err error
		msg, buf, err = wire.ReadMsg(conn, buf)
		if err != nil {
			break
		}
		if !m.handle(sess, msg) {
			break
		}
	}
	sess.close()

	// Terms may have moved while the session was dying; the crash
	// notices carry the current desired terms so none arrives stale.
	m.mu.Lock()
	m.sess = nil
	dead := append([]*incarnation(nil), m.desired...)
	m.mu.Unlock()
	for part, inc := range dead {
		if inc == nil {
			continue
		}
		select {
		case sv.inbox <- &reply{part: part, term: inc.term, crash: true}:
		case <-sv.ctx.Done():
			return
		}
	}
}

// handle processes one inbound frame. A false return poisons the
// session: an unexpected kind means the peer and coordinator disagree
// about the protocol state, and the only safe recovery is the redial
// path.
func (m *connMgr) handle(sess *session, msg wire.Msg) bool {
	switch msg := msg.(type) {
	case *wire.Reply:
		rep := &reply{part: int(msg.Part), term: msg.Term, seq: msg.Seq, counts: msg.Counts}
		if msg.Covers != nil {
			rep.covers = &dirCovers{fwd: msg.Covers.Fwd, back: msg.Covers.Back}
		}
		return m.forward(rep)
	case *wire.Crash:
		return m.forward(&reply{part: int(msg.Part), term: msg.Term, crash: true})
	case *wire.HelloAck:
		m.handleAck(sess, msg)
		return true
	default:
		return false
	}
}

func (m *connMgr) forward(rep *reply) bool {
	select {
	case m.sv.inbox <- rep:
		return true
	case <-m.sv.ctx.Done():
		return false
	}
}

// handleAck answers a HELLO acknowledgement: count the full cache hit,
// or send the blobs the worker asked for — each at most once per
// session, however many partitions request it.
func (m *connMgr) handleAck(sess *session, ack *wire.HelloAck) {
	r := m.sv.run
	if ack.Need == 0 {
		m.mu.Lock()
		m.cacheHits++
		m.mu.Unlock()
		return
	}
	sess.mu.Lock()
	needD := ack.Need&wire.NeedDataset != 0 && !sess.sentDataset
	needC := ack.Need&wire.NeedCands != 0 && !sess.sentCands && len(r.candsBlob) > 0
	sess.sentDataset = sess.sentDataset || needD
	sess.sentCands = sess.sentCands || needC
	sess.mu.Unlock()
	if needD {
		m.sendBlob(sess, wire.NeedDataset, r.datasetHash, r.datasetBlob)
	}
	if needC {
		m.sendBlob(sess, wire.NeedCands, r.candsHash, r.candsBlob)
	}
}

func (m *connMgr) sendBlob(sess *session, role uint8, hash wire.Hash, data []byte) {
	frame, err := wire.Encode(nil, &wire.Blob{Role: role, Hash: hash, Data: data})
	if err != nil {
		return // dataset past MaxFrame; surfaces as lease expiry
	}
	sess.sendControl(frame)
	m.mu.Lock()
	m.blobsSent++
	m.mu.Unlock()
}

// session is one established connection: a bounded write queue drained
// by a writer goroutine, and a done latch that ties reader, writer and
// watcher teardown together.
type session struct {
	conn net.Conn
	out  chan []byte
	done chan struct{}
	once sync.Once

	mu sync.Mutex
	// Per-session blob dedup: every partition's HELLO may ask for the
	// same content, which only has to cross the wire once.
	sentDataset, sentCands bool
}

func (s *session) close() {
	s.once.Do(func() {
		close(s.done)
		s.conn.Close()
	})
}

// sendControl enqueues a frame that must not be silently lost (HELLO,
// Blob). If the queue is wedged full the session is poisoned instead:
// the redial resends every control frame from the desired state, which
// a drop would not.
func (s *session) sendControl(frame []byte) {
	if frame == nil {
		return
	}
	select {
	case s.out <- frame:
	case <-s.done:
	default:
		s.close()
	}
}

// sendData enqueues a request frame, dropping it when the queue is
// full — the same backpressure contract as the in-process mailbox: the
// queue never grows, the supervisor never blocks, and the drop surfaces
// as lease expiry.
func (s *session) sendData(frame []byte) {
	select {
	case s.out <- frame:
	default:
	}
}

func (s *session) writeLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case frame := <-s.out:
			if _, err := s.conn.Write(frame); err != nil {
				s.close()
				return
			}
		case <-s.done:
			return
		}
	}
}
