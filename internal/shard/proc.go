package shard

import (
	"context"

	"twoview/internal/bitset"
	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/fault"
	"twoview/internal/pool"
)

// proc is one incarnation of a shard: a goroutine group (the message
// loop plus its scoring pool's share of the run's workers) owning one
// partition's columns privately. A proc is born from the accepted-rule
// log, serves leased requests until its context is cancelled (replaced
// by the supervisor) or it fails (panic, blown lease), and on failure
// retires with a crash notice; it never repairs itself — recovery is
// the supervisor's job, by rebuilding a successor from the log.
type proc struct {
	run  *run
	part Partition
	term uint64

	ctx    context.Context
	cancel context.CancelFunc
	// mailbox receives the supervisor's requests. It is buffered so the
	// supervisor can hand a dead-but-undetected incarnation its request
	// without blocking; the request dies with the proc and the lease
	// timer recovers.
	mailbox chan *request
	// out is the supervisor's inbox.
	out chan<- *reply
	// log is the accepted-rule log snapshot this incarnation replays at
	// birth. Append-only on the supervisor side, read-only here.
	log []core.Rule
}

// scorer is one pool worker's scratch: support tidsets for inline-pair
// scoring.
type scorer struct {
	tidX, tidY *bitset.Set
}

// loop is the proc's goroutine: rebuild the partition from the log,
// then serve requests until cancelled. Any panic — injected or real —
// is converted into a crash notice; the columns die with the
// incarnation, so a half-applied update can never leak into a
// successor, which rebuilds from the log instead.
func (p *proc) loop() {
	defer p.run.wg.Done()
	defer p.cancel()
	defer func() {
		if r := recover(); r != nil {
			p.notifyCrash()
		}
	}()

	ps := core.NewPartialState(p.run.d, p.part.LoL, p.part.HiL, p.part.LoR, p.part.HiR)
	ps.Replay(p.log, func(int, core.Rule) {
		if fault.Enabled {
			fault.Fire("shard.replay")
		}
	})
	n := p.run.d.Size()
	scorers := pool.NewOn(p.run.rt, p.run.workers, func(int) *scorer {
		return &scorer{tidX: bitset.New(n), tidY: bitset.New(n)}
	})

	for {
		select {
		case <-p.ctx.Done():
			return
		case req := <-p.mailbox:
			if fault.Enabled {
				fault.Fire("shard.recv")
			}
			var rep *reply
			var err error
			switch req.kind {
			case msgScore:
				rep, err = p.handleScore(scorers, ps, req)
			case msgApply:
				rep = p.handleApply(ps, req)
			}
			if err != nil {
				// The scoring phase drained early: the lease expired
				// (or the incarnation was replaced mid-phase). Retire;
				// the supervisor's own timer may not have fired yet, so
				// the notice speeds recovery up but is not load-bearing.
				p.notifyCrash()
				return
			}
			p.send(rep)
		}
	}
}

// handleScore scores the request's entries against the partition on the
// proc's worker pool, under the granted lease. Scoring only reads the
// partition, so the entries are one phase of independent tasks; the
// per-entry counts land in their own slots (the pool's own-slot rule).
func (p *proc) handleScore(scorers *pool.Pool[*scorer], ps *core.PartialState, req *request) (*reply, error) {
	rep := &reply{part: p.part.Index, term: p.term, seq: req.seq}
	rep.counts = make([]core.DirCounts, req.tasks())
	lease := pool.NewLease(p.ctx, req.lease)
	defer lease.End()
	var err error
	if len(req.candIdx) > 0 {
		cands := p.run.cands
		err = scorers.RunCtx(lease.Context(), len(req.candIdx), func(s *scorer, i int) {
			if fault.Enabled {
				fault.Fire("shard.task")
			}
			c := &cands[req.candIdx[i]]
			rep.counts[i] = ps.ScoreRule(c.X, c.Y, c.TidX, c.TidY, nil, nil)
		})
	} else {
		err = scorers.RunCtx(lease.Context(), len(req.pairs), func(s *scorer, i int) {
			if fault.Enabled {
				fault.Fire("shard.task")
			}
			pr := req.pairs[i]
			p.run.d.SupportSetInto(s.tidX, dataset.Left, pr.x)
			p.run.d.SupportSetInto(s.tidY, dataset.Right, pr.y)
			rep.counts[i] = ps.ScoreRule(pr.x, pr.y, s.tidX, s.tidY, nil, nil)
		})
	}
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// handleApply applies the accepted rule to the partition and
// acknowledges with the per-item counts (and, on request, the covered
// tidsets for the coordinator's tub mirror).
func (p *proc) handleApply(ps *core.PartialState, req *request) *reply {
	if fault.Enabled {
		fault.Fire("shard.apply")
	}
	rep := &reply{part: p.part.Index, term: p.term, seq: req.seq}
	var onCover core.CoverObserver
	if req.wantCover {
		covers := &dirCovers{}
		rep.covers = covers
		onCover = func(target dataset.View, item int, covered *bitset.Set) {
			c := covered.Clone()
			if target == dataset.Right {
				covers.fwd = append(covers.fwd, c)
			} else {
				covers.back = append(covers.back, c)
			}
		}
	}
	dc := ps.Apply(req.rule, nil, nil, onCover)
	rep.counts = []core.DirCounts{dc}
	return rep
}

// send delivers a completion, honouring the drop/duplicate failpoints:
// a dropped completion simply never arrives (the lease recovers it), a
// duplicated one arrives twice (the dedup rule discards the second).
func (p *proc) send(rep *reply) {
	if fault.Enabled {
		if err := fault.Point("shard.reply"); err != nil {
			return // injected message loss
		}
	}
	p.deliver(rep)
	if fault.Enabled {
		if err := fault.Point("shard.reply.dup"); err != nil {
			p.deliver(rep) // injected duplicate delivery
		}
	}
}

func (p *proc) deliver(rep *reply) {
	select {
	case p.out <- rep:
	case <-p.ctx.Done():
	}
}

// notifyCrash retires the incarnation with a CRASH notice. Best-effort:
// if the incarnation was already replaced (context cancelled), nobody
// is waiting for the notice.
func (p *proc) notifyCrash() {
	select {
	case p.out <- &reply{part: p.part.Index, term: p.term, crash: true}:
	case <-p.ctx.Done():
	}
}
