package shard

import (
	"context"
	"slices"

	"twoview/internal/core"
	"twoview/internal/dataset"
)

// This file is the sharded TRANSLATOR-GREEDY driver: the monolith's
// single-pass filter (greedy.go in internal/core) with each speculation
// window scored by one SCORE round over the shards. The window logic is
// untouched — its boundaries depend only on accept positions, which are
// state- (never schedule-) dependent — and every decision is made
// against the merged gains of exactly the state the serial pass would
// have used, so the accepted sequence is bit-identical.

const (
	greedyMinBlock = 8
	greedyMaxBlock = 512
)

// greedyScore mirrors the monolith's: one candidate's best-of-three
// instantiation, or ok=false when discarded.
type greedyScore struct {
	rule core.Rule
	gain float64
	ok   bool
}

func mineGreedy(ctx context.Context, d *dataset.Dataset, cands []core.Candidate, opt core.GreedyOptions, cfg Config) (*core.Result, *runStats, error) {
	elapsed := stopwatch()
	r := newRun(ctx, d, cands, cfg)
	defer r.close()

	totals := core.NewCoverTotals(d, r.coder)
	table := &core.Table{}
	res := &core.Result{}

	// Candidate order: length desc, support desc, then deterministic —
	// the monolith's comparator verbatim.
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		ca, cb := &cands[a], &cands[b]
		la, lb := len(ca.X)+len(ca.Y), len(cb.X)+len(cb.Y)
		if la != lb {
			return lb - la
		}
		if ca.Supp != cb.Supp {
			return cb.Supp - ca.Supp
		}
		ra := core.Rule{X: ca.X, Y: ca.Y}
		rb := core.Rule{X: cb.X, Y: cb.Y}
		return ra.Compare(rb)
	})

	// The state-free qub verdict per candidate, once for the run (the
	// monolith re-evaluates the same formula at every consideration).
	qubOK := make([]bool, len(cands))
	for ci := range cands {
		qubOK[ci] = r.qub(&cands[ci]) > core.GainEpsilon
	}

	maxBlock := opt.BlockSize
	if maxBlock <= 0 {
		maxBlock = greedyMaxBlock
	}
	var idx []int32
	var scores []greedyScore
	pos, block := 0, min(greedyMinBlock, maxBlock)
	var err error
	stopped := false
	for pos < len(order) && !stopped {
		if err = ctx.Err(); err != nil {
			break
		}
		if opt.MaxRules > 0 && len(table.Rules) >= opt.MaxRules {
			break
		}
		end := min(pos+block, len(order))
		// One SCORE round evaluates the window's qub-surviving
		// candidates against the current (round-start) cover state.
		idx = idx[:0]
		for j := pos; j < end; j++ {
			if qubOK[order[j]] {
				idx = append(idx, int32(order[j]))
			}
		}
		scores = scores[:0]
		for range end - pos {
			scores = append(scores, greedyScore{})
		}
		if len(idx) > 0 {
			var reps []*reply
			if reps, err = r.sv.scoreCands(idx); err != nil {
				break
			}
			k := 0
			for j := pos; j < end; j++ {
				if !qubOK[order[j]] {
					continue
				}
				scores[j-pos] = r.mergeGreedy(&cands[order[j]], reps, k)
				k++
			}
		}
		// The serial walk: first accept invalidates the window's tail.
		next := end
		block = min(block*2, maxBlock)
		for j := pos; j < end; j++ {
			sc := scores[j-pos]
			if !sc.ok {
				continue
			}
			if err = applyRule(r, totals, nil, table, sc.rule); err != nil {
				break
			}
			if !record(res, r, totals, table, sc.rule, sc.gain, opt.Trace, opt.OnIteration) {
				stopped = true
			}
			next = j + 1
			block = min(greedyMinBlock, maxBlock)
			break
		}
		if err != nil {
			break
		}
		pos = next
	}
	res.Table = table
	res.State = core.EvaluateTable(d, r.coder, table)
	res.Runtime = elapsed()
	return res, r.stats(), err
}

// mergeGreedy folds entry k of a SCORE round into the candidate's
// best-of-three instantiation, with the monolith's exact comparison
// sequence (strictly-greater updates in Forward, Backward, Both order).
func (r *run) mergeGreedy(c *core.Candidate, reps []*reply, k int) greedyScore {
	for p, rep := range reps {
		r.fwdParts[p] = rep.counts[k].Fwd
		r.backParts[p] = rep.counts[k].Back
	}
	gainF := core.GainFromCounts(r.coder, dataset.Right, r.fwdParts...)
	gainB := core.GainFromCounts(r.coder, dataset.Left, r.backParts...)
	lenUni := r.coder.RuleLen(c.X, c.Y, false)
	lenBi := r.coder.RuleLen(c.X, c.Y, true)

	best := core.Rule{X: c.X, Dir: core.Forward, Y: c.Y}
	bestGain := gainF - lenUni
	if g := gainB - lenUni; g > bestGain {
		best, bestGain = core.Rule{X: c.X, Dir: core.Backward, Y: c.Y}, g
	}
	if g := gainF + gainB - lenBi; g > bestGain {
		best, bestGain = core.Rule{X: c.X, Dir: core.Both, Y: c.Y}, g
	}
	if bestGain <= core.GainEpsilon {
		return greedyScore{}
	}
	return greedyScore{rule: best, gain: bestGain, ok: true}
}
