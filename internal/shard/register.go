package shard

import (
	"context"

	"twoview/internal/core"
	"twoview/internal/dataset"
)

// engine adapts the package's drivers to core.ShardMiner. core cannot
// import this package (shard builds on core), so the wiring is
// inverted: init below registers the engine, and anything that links
// internal/shard in — the twoview facade, both CLIs — arms
// core.ParallelOptions.Shards.
type engine struct{}

func init() { core.RegisterShardMiner(engine{}) }

func (engine) MineExact(ctx context.Context, d *dataset.Dataset, opt core.ExactOptions) (*core.Result, error) {
	res, _, err := mineExact(ctx, d, opt, configFrom(opt.ParallelOptions))
	return res, err
}

func (engine) MineSelect(ctx context.Context, d *dataset.Dataset, cands []core.Candidate, opt core.SelectOptions) (*core.Result, error) {
	res, _, err := mineSelect(ctx, d, cands, opt, configFrom(opt.ParallelOptions))
	return res, err
}

func (engine) MineGreedy(ctx context.Context, d *dataset.Dataset, cands []core.Candidate, opt core.GreedyOptions) (*core.Result, error) {
	res, _, err := mineGreedy(ctx, d, cands, opt, configFrom(opt.ParallelOptions))
	return res, err
}
