package shard

import (
	"context"
	"sort"

	"twoview/internal/bitset"
	"twoview/internal/core"
	"twoview/internal/dataset"
)

// This file is the sharded TRANSLATOR-SELECT(k) driver: the monolith's
// round structure (selectalg.go in internal/core), with the scoring
// pass replaced by a SCORE round over the shards and every accepted
// rule flowing through an APPLY round. Bit-identity rests on three
// facts, each pinned by tests:
//
//   - the shards' merged integer counts reproduce gainDir's floats
//     exactly (core.GainFromCounts);
//   - the candidate quick bound is state-free, so the monolith's
//     per-round qub filter admits the same candidate set every round —
//     computed here once up front;
//   - the monolith's Line-8 re-check gain equals the scored gain
//     bit-for-bit (the re-check reads exactly the round-start state, by
//     the overlap-filter invariance argument at core's recheckGains,
//     and (0+a)+b−c ≡ a+b−c in IEEE arithmetic for the direction
//     compositions involved), so the add walk can reuse the scored
//     values.

type scoredRule struct {
	rule core.Rule
	gain float64
}

func mineSelect(ctx context.Context, d *dataset.Dataset, cands []core.Candidate, opt core.SelectOptions, cfg Config) (*core.Result, *runStats, error) {
	elapsed := stopwatch()
	if opt.K < 1 {
		opt.K = 1
	}
	r := newRun(ctx, d, cands, cfg)
	defer r.close()

	totals := core.NewCoverTotals(d, r.coder)
	table := &core.Table{}
	res := &core.Result{}

	// The state-free qub filter, once for the whole run.
	survivors := make([]int32, 0, len(cands))
	for ci := range cands {
		if r.qub(&cands[ci]) > core.GainEpsilon {
			survivors = append(survivors, int32(ci))
		}
	}

	usedL := bitset.New(d.Items(dataset.Left))
	usedR := bitset.New(d.Items(dataset.Right))
	var scored []scoredRule
	var err error
	stopped := false
	for !stopped {
		if err = ctx.Err(); err != nil {
			break
		}
		if opt.MaxRules > 0 && len(table.Rules) >= opt.MaxRules {
			break
		}
		// Line 3: one SCORE round scores every surviving candidate on
		// its owning shards; the merge walks candidates in index order,
		// appending the same three directions the monolith's scoreRange
		// does.
		scored = scored[:0]
		if len(survivors) > 0 {
			var reps []*reply
			if reps, err = r.sv.scoreCands(survivors); err != nil {
				break
			}
			scored = r.mergeScored(survivors, reps, scored)
		}
		if len(scored) == 0 {
			break
		}
		sort.Slice(scored, func(a, b int) bool {
			if scored[a].gain != scored[b].gain {
				return scored[a].gain > scored[b].gain
			}
			return scored[a].rule.Compare(scored[b].rule) < 0
		})
		if len(scored) > opt.K {
			scored = scored[:opt.K]
		}

		// Lines 5-10: the serial add walk, with an APPLY round where
		// the monolith has AddRule. The scored gain doubles as the
		// Line-8 re-check (see the file comment).
		usedL.Reset(d.Items(dataset.Left))
		usedR.Reset(d.Items(dataset.Right))
		added := false
		for _, sr := range scored {
			if opt.MaxRules > 0 && len(table.Rules) >= opt.MaxRules {
				break
			}
			if anyIn(sr.rule.X, usedL) || anyIn(sr.rule.Y, usedR) {
				continue
			}
			if sr.gain <= core.GainEpsilon {
				continue
			}
			if err = applyRule(r, totals, nil, table, sr.rule); err != nil {
				break
			}
			if !record(res, r, totals, table, sr.rule, sr.gain, opt.Trace, opt.OnIteration) {
				stopped = true
			}
			for _, it := range sr.rule.X {
				usedL.Add(it)
			}
			for _, it := range sr.rule.Y {
				usedR.Add(it)
			}
			added = true
			if stopped {
				break
			}
		}
		if err != nil || !added {
			break
		}
	}
	res.Table = table
	res.State = core.EvaluateTable(d, r.coder, table)
	res.Runtime = elapsed()
	return res, r.stats(), err
}

// mergeScored folds one SCORE round's replies into scored rules, in
// candidate-index order — the same order, content and float bits as the
// monolith's scoreRange over the qub-surviving candidates.
func (r *run) mergeScored(survivors []int32, reps []*reply, dst []scoredRule) []scoredRule {
	coder := r.coder
	for i, ci := range survivors {
		c := &r.cands[ci]
		for p, rep := range reps {
			r.fwdParts[p] = rep.counts[i].Fwd
			r.backParts[p] = rep.counts[i].Back
		}
		gainF := core.GainFromCounts(coder, dataset.Right, r.fwdParts...)
		gainB := core.GainFromCounts(coder, dataset.Left, r.backParts...)
		lenUni := coder.RuleLen(c.X, c.Y, false)
		lenBi := coder.RuleLen(c.X, c.Y, true)
		for _, sr := range [3]scoredRule{
			{core.Rule{X: c.X, Dir: core.Forward, Y: c.Y}, gainF - lenUni},
			{core.Rule{X: c.X, Dir: core.Backward, Y: c.Y}, gainB - lenUni},
			{core.Rule{X: c.X, Dir: core.Both, Y: c.Y}, gainF + gainB - lenBi},
		} {
			if sr.gain > core.GainEpsilon {
				dst = append(dst, sr)
			}
		}
	}
	return dst
}
