package shard

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"twoview/internal/core"
	"twoview/internal/dataset"
)

// The acceptance grid of the sharded engine: every miner must be
// bit-identical to the monolith for shards ∈ {1,2,4,7} × workers ∈
// {1,2,4,7} (7 > the 6-item alphabets, so the grid includes empty
// partitions). "Bit-identical" is literal: rules compared rule-for-rule
// and every float of every IterationStats compared with ==.

var gridShards = []int{1, 2, 4, 7}
var gridWorkers = []int{1, 2, 4, 7}

// plantedDataset mirrors core's test fixture: a strong bidirectional
// association {l0,l1} <-> {r0,r1} in 60 of 80 transactions plus noise.
func plantedDataset(t testing.TB, seed int64) *dataset.Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	d := dataset.MustNew(dataset.GenericNames("l", 6), dataset.GenericNames("r", 6))
	for i := 0; i < 80; i++ {
		var left, right []int
		if i < 60 {
			left = append(left, 0, 1)
			right = append(right, 0, 1)
		}
		for j := 2; j < 6; j++ {
			if r.Intn(5) == 0 {
				left = append(left, j)
			}
			if r.Intn(5) == 0 {
				right = append(right, j)
			}
		}
		if err := d.AddRow(left, right); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// twoPlantDataset plants two disjoint associations — {l0,l1} <-> {r0,r1}
// and {l2,l3} <-> {r2,r3} — so the miners accept several rules, for
// tests that need truncation to bite.
func twoPlantDataset(t testing.TB, seed int64) *dataset.Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	d := dataset.MustNew(dataset.GenericNames("l", 6), dataset.GenericNames("r", 6))
	for i := 0; i < 80; i++ {
		var left, right []int
		if i < 50 {
			left = append(left, 0, 1)
			right = append(right, 0, 1)
		}
		if i >= 30 {
			left = append(left, 2, 3)
			right = append(right, 2, 3)
		}
		for j := 4; j < 6; j++ {
			if r.Intn(5) == 0 {
				left = append(left, j)
			}
			if r.Intn(5) == 0 {
				right = append(right, j)
			}
		}
		if err := d.AddRow(left, right); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func mustCandidates(t testing.TB, d *dataset.Dataset) []core.Candidate {
	t.Helper()
	cands, err := core.MineCandidates(context.Background(), d, 5, 0, core.ParallelOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return cands
}

// sameResult asserts got is bit-identical to the reference: the table
// rule-for-rule, every recorded iteration float-for-float, and the
// final state score.
func sameResult(t *testing.T, label string, want, got *core.Result) {
	t.Helper()
	if len(got.Table.Rules) != len(want.Table.Rules) {
		t.Fatalf("%s: %d rules, want %d", label, len(got.Table.Rules), len(want.Table.Rules))
	}
	for i := range want.Table.Rules {
		if got.Table.Rules[i].Compare(want.Table.Rules[i]) != 0 {
			t.Fatalf("%s: rule %d = %v, want %v", label, i, got.Table.Rules[i], want.Table.Rules[i])
		}
	}
	if len(got.Iterations) != len(want.Iterations) {
		t.Fatalf("%s: %d iterations, want %d", label, len(got.Iterations), len(want.Iterations))
	}
	for i, w := range want.Iterations {
		g := got.Iterations[i]
		if g.Gain != w.Gain || g.Score != w.Score ||
			g.UncoveredL != w.UncoveredL || g.UncoveredR != w.UncoveredR ||
			g.ErrorsL != w.ErrorsL || g.ErrorsR != w.ErrorsR ||
			g.TableLen != w.TableLen || g.CorrLenL != w.CorrLenL || g.CorrLenR != w.CorrLenR {
			t.Fatalf("%s: iteration %d diverges:\n got %+v\nwant %+v", label, i, g, w)
		}
	}
	if g, w := got.State.Score(), want.State.Score(); g != w {
		t.Fatalf("%s: final score %v, want %v", label, g, w)
	}
}

// TestShardedExactDeterminism pins MineExact across the shard × worker
// grid to the monolith, through the public Shards knob (which also
// proves the init registration is armed in this binary).
func TestShardedExactDeterminism(t *testing.T) {
	d := plantedDataset(t, 7)
	ref, err := core.MineExact(context.Background(), d, core.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Table.Rules) == 0 {
		t.Fatal("reference mined no rules; test is vacuous")
	}
	for _, shards := range gridShards {
		for _, workers := range gridWorkers {
			opt := core.ExactOptions{ParallelOptions: core.ParallelOptions{Shards: shards, Workers: workers}}
			res, err := core.MineExact(context.Background(), d, opt)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			sameResult(t, formatCell("exact", shards, workers), ref, res)
		}
	}
}

// TestShardedSelectDeterminism pins MineSelect (k=3) across the grid.
func TestShardedSelectDeterminism(t *testing.T) {
	d := plantedDataset(t, 11)
	cands := mustCandidates(t, d)
	ref, err := core.MineSelect(context.Background(), d, cands, core.SelectOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Table.Rules) == 0 {
		t.Fatal("reference mined no rules; test is vacuous")
	}
	for _, shards := range gridShards {
		for _, workers := range gridWorkers {
			opt := core.SelectOptions{K: 3, ParallelOptions: core.ParallelOptions{Shards: shards, Workers: workers}}
			res, err := core.MineSelect(context.Background(), d, cands, opt)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			sameResult(t, formatCell("select", shards, workers), ref, res)
		}
	}
}

// TestShardedGreedyDeterminism pins MineGreedy across the grid, with a
// small BlockSize so accepts split speculation windows.
func TestShardedGreedyDeterminism(t *testing.T) {
	d := plantedDataset(t, 13)
	cands := mustCandidates(t, d)
	ref, err := core.MineGreedy(context.Background(), d, cands, core.GreedyOptions{BlockSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Table.Rules) == 0 {
		t.Fatal("reference mined no rules; test is vacuous")
	}
	for _, shards := range gridShards {
		for _, workers := range gridWorkers {
			opt := core.GreedyOptions{BlockSize: 16, ParallelOptions: core.ParallelOptions{Shards: shards, Workers: workers}}
			res, err := core.MineGreedy(context.Background(), d, cands, opt)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			sameResult(t, formatCell("greedy", shards, workers), ref, res)
		}
	}
}

// TestShardedSelectOptionsParity pins the option paths the grid doesn't
// cover: MaxRules truncation and the OnIteration early stop must cut
// the sharded run at the same rule as the monolith.
func TestShardedSelectOptionsParity(t *testing.T) {
	d := twoPlantDataset(t, 17)
	cands := mustCandidates(t, d)
	refFull, err := core.MineSelect(context.Background(), d, cands, core.SelectOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(refFull.Table.Rules) < 2 {
		t.Fatal("need at least 2 reference rules; fixture broken")
	}

	ref, err := core.MineSelect(context.Background(), d, cands, core.SelectOptions{K: 3, MaxRules: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.MineSelect(context.Background(), d, cands, core.SelectOptions{
		K: 3, MaxRules: 2,
		ParallelOptions: core.ParallelOptions{Shards: 3, Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "select maxrules=2", ref, got)

	stopAfter := func(n int) core.IterationFunc {
		return func(it core.IterationStats) bool { return it.Iteration < n }
	}
	ref, err = core.MineSelect(context.Background(), d, cands, core.SelectOptions{K: 3, OnIteration: stopAfter(2)})
	if err != nil {
		t.Fatal(err)
	}
	got, err = core.MineSelect(context.Background(), d, cands, core.SelectOptions{
		K: 3, OnIteration: stopAfter(2),
		ParallelOptions: core.ParallelOptions{Shards: 2, Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "select early stop", ref, got)
}

// TestShardedCancel pins the cancellation contract: a cancelled context
// surfaces as ctx.Err() with the partial table intact and the run torn
// down cleanly.
func TestShardedCancel(t *testing.T) {
	d := plantedDataset(t, 19)
	cands := mustCandidates(t, d)
	ctx, cancel := context.WithCancel(context.Background())
	stopped := false
	opt := core.SelectOptions{
		K: 1,
		OnIteration: func(core.IterationStats) bool {
			cancel() // cancel mid-run, at an iteration boundary
			stopped = true
			return true
		},
		ParallelOptions: core.ParallelOptions{Shards: 2, Workers: 2},
	}
	res, err := core.MineSelect(ctx, d, cands, opt)
	if !stopped {
		t.Fatal("run finished before the hook fired; cancellation untested")
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Table == nil || len(res.Table.Rules) == 0 {
		t.Fatal("cancelled run lost its partial table")
	}
}

// TestSplitCoversAlphabets pins the partition arithmetic: ascending,
// contiguous, covering, and tolerant of n > items.
func TestSplitCoversAlphabets(t *testing.T) {
	d := plantedDataset(t, 23)
	for _, n := range []int{1, 2, 3, 6, 7, 13} {
		parts := split(d, n)
		if len(parts) != n {
			t.Fatalf("n=%d: %d partitions", n, len(parts))
		}
		loL, loR := 0, 0
		for p, pt := range parts {
			if pt.Index != p || pt.LoL != loL || pt.LoR != loR || pt.HiL < pt.LoL || pt.HiR < pt.LoR {
				t.Fatalf("n=%d: partition %d malformed: %+v", n, p, pt)
			}
			loL, loR = pt.HiL, pt.HiR
		}
		if loL != d.Items(dataset.Left) || loR != d.Items(dataset.Right) {
			t.Fatalf("n=%d: ranges end at (%d, %d), want (%d, %d)",
				n, loL, loR, d.Items(dataset.Left), d.Items(dataset.Right))
		}
	}
}

func formatCell(miner string, shards, workers int) string {
	return fmt.Sprintf("%s shards=%d workers=%d", miner, shards, workers)
}
