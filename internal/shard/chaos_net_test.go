//go:build faultinject

package shard

import (
	"context"
	"encoding/binary"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"twoview/internal/core"
	"twoview/internal/wire"
)

// Network chaos for the TCP transport: every scenario runs real
// shardworker processes on loopback with a scripted network fault
// between coordinator and worker — a connection dropped mid-frame, a
// reply truncated at the wire, duplicated frames, a worker process
// killed and restarted mid-run — mines through it, and asserts the same
// contract as the in-process chaos suite: the result is bit-identical
// to the undisturbed monolith and the recovery counters (restarts,
// redials, cache hits) prove the machinery actually fired.

// chaosNetLease keeps the recovery scenarios brisk without risking
// spurious expiries on a loaded -race runner: a healthy loopback round
// on the 80-row fixtures completes in well under a millisecond.
const chaosNetLease = 500 * time.Millisecond

// proxyAction is a faultProxy script's verdict on one relayed frame.
type proxyAction int

const (
	actForward      proxyAction = iota
	actHalfThenDrop             // write half the frame, then kill both conns
	actDuplicate                // write the frame twice
)

// dirC2W/dirW2C tag the relay direction a script sees.
const (
	dirC2W = '>' // coordinator → worker
	dirW2C = '<' // worker → coordinator
)

// faultProxy is a frame-aware TCP proxy between the coordinator and one
// shardworker: it parses the length-prefixed framing (header only — the
// payload stays opaque) and asks the script what to do with each frame,
// which is how the scenarios cut connections at exact protocol moments
// instead of racing a timer. Each coordinator dial gets its own backend
// connection, so the redial path flows through untouched.
type faultProxy struct {
	tb     testing.TB
	ln     net.Listener
	target string
	// script is called per frame with the direction, kind, and the
	// 1-based frame count of that direction within the current session.
	// It may be called from two goroutines (one per direction).
	script func(dir byte, kind wire.Kind, n int) proxyAction
}

func startProxy(tb testing.TB, target string, script func(dir byte, kind wire.Kind, n int) proxyAction) *faultProxy {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	p := &faultProxy{tb: tb, ln: ln, target: target, script: script}
	tb.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go p.relay(conn)
		}
	}()
	return p
}

func (p *faultProxy) addr() string { return p.ln.Addr().String() }

// relay serves one coordinator connection against a fresh backend
// connection; either side's death (or a script kill) tears down both.
func (p *faultProxy) relay(co net.Conn) {
	cw, err := net.Dial("tcp", p.target)
	if err != nil {
		co.Close()
		return
	}
	var once sync.Once
	kill := func() {
		once.Do(func() {
			co.Close()
			cw.Close()
		})
	}
	go p.pump(dirC2W, co, cw, kill)
	p.pump(dirW2C, cw, co, kill)
}

func (p *faultProxy) pump(dir byte, src, dst net.Conn, kill func()) {
	defer kill()
	n := 0
	for {
		hdr := make([]byte, wire.HeaderSize)
		if _, err := io.ReadFull(src, hdr); err != nil {
			return
		}
		plen := binary.BigEndian.Uint32(hdr)
		if plen > wire.MaxFrame {
			return
		}
		frame := make([]byte, wire.HeaderSize+int(plen))
		copy(frame, hdr)
		if _, err := io.ReadFull(src, frame[wire.HeaderSize:]); err != nil {
			return
		}
		n++
		switch p.script(dir, wire.Kind(frame[5]), n) {
		case actForward:
			if _, err := dst.Write(frame); err != nil {
				return
			}
		case actDuplicate:
			if _, err := dst.Write(frame); err != nil {
				return
			}
			if _, err := dst.Write(frame); err != nil {
				return
			}
		case actHalfThenDrop:
			dst.Write(frame[:len(frame)/2])
			return
		}
	}
}

// The connection dies mid-SCORE: the first scoring request is cut in
// half on its way to the worker, killing both sides of the proxy. The
// worker's decoder rejects the torn frame, the coordinator synthesizes
// crash notices, redials, re-announces via HELLO (a cache hit — the
// worker process never died), and the run completes bit-identically.
func TestChaosNetConnDropMidScore(t *testing.T) {
	d := plantedDataset(t, 31)
	cands := mustCandidates(t, d)
	ref, err := core.MineSelect(context.Background(), d, cands, core.SelectOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}

	w := startWorker(t, "", "")
	var fired atomic.Bool
	proxy := startProxy(t, w.addr, func(dir byte, kind wire.Kind, n int) proxyAction {
		if dir == dirC2W && kind == wire.KindScore && fired.CompareAndSwap(false, true) {
			return actHalfThenDrop
		}
		return actForward
	})

	res, stats, err := mineSelect(context.Background(), d, cands, core.SelectOptions{K: 3},
		Config{Shards: 2, Workers: 2, Addrs: []string{proxy.addr()}, Lease: chaosNetLease, RedialBackoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !fired.Load() {
		t.Fatal("the drop never fired; scenario is vacuous")
	}
	if stats.redials == 0 {
		t.Fatal("the cut connection was never redialed")
	}
	if stats.restarts == 0 {
		t.Fatal("the dead session never surfaced as partition crashes")
	}
	sameResult(t, "net: conn drop mid-score", ref, res)
}

// A reply is truncated at the wire — the worker's completion arrives as
// a partial frame followed by EOF. The coordinator's decoder kills the
// session, and recovery is the same crash-synthesis + redial path as a
// clean connection drop.
func TestChaosNetPartialReplyThenClose(t *testing.T) {
	d := plantedDataset(t, 37)
	cands := mustCandidates(t, d)
	ref, err := core.MineGreedy(context.Background(), d, cands, core.GreedyOptions{BlockSize: 16})
	if err != nil {
		t.Fatal(err)
	}

	w := startWorker(t, "", "")
	var fired atomic.Bool
	proxy := startProxy(t, w.addr, func(dir byte, kind wire.Kind, n int) proxyAction {
		if dir == dirW2C && kind == wire.KindReply && fired.CompareAndSwap(false, true) {
			return actHalfThenDrop
		}
		return actForward
	})

	res, stats, err := mineGreedy(context.Background(), d, cands, core.GreedyOptions{BlockSize: 16},
		Config{Shards: 2, Workers: 1, Addrs: []string{proxy.addr()}, Lease: chaosNetLease, RedialBackoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !fired.Load() {
		t.Fatal("the truncation never fired; scenario is vacuous")
	}
	if stats.redials == 0 || stats.restarts == 0 {
		t.Fatalf("recovery never fired: redials=%d restarts=%d", stats.redials, stats.restarts)
	}
	sameResult(t, "net: partial reply then close", ref, res)
}

// Every completion is delivered twice. The duplicates are discarded by
// value — the (part, term, seq) dedup rule — with no restart and no
// redial: a duplicating network is not a failure, just noise.
func TestChaosNetDuplicatedReplies(t *testing.T) {
	d := plantedDataset(t, 41)
	cands := mustCandidates(t, d)
	ref, err := core.MineSelect(context.Background(), d, cands, core.SelectOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}

	w := startWorker(t, "", "")
	proxy := startProxy(t, w.addr, func(dir byte, kind wire.Kind, n int) proxyAction {
		if dir == dirW2C && kind == wire.KindReply {
			return actDuplicate
		}
		return actForward
	})

	res, stats, err := mineSelect(context.Background(), d, cands, core.SelectOptions{K: 3},
		Config{Shards: 3, Workers: 2, Addrs: []string{proxy.addr()}, Lease: chaosNetLease})
	if err != nil {
		t.Fatal(err)
	}
	if stats.stale == 0 {
		t.Fatal("no duplicate was discarded; dedup untested")
	}
	if stats.restarts != 0 || stats.redials != 0 {
		t.Fatalf("duplicates caused recovery (restarts=%d redials=%d); dedup should be free", stats.restarts, stats.redials)
	}
	sameResult(t, "net: duplicated replies", ref, res)
}

// The worker process is killed after the first accepted rule and a
// replacement is started on the same address with the same cache
// directory. The coordinator redials, re-announces every incarnation
// with its accepted-rule log, and the replacement answers each HELLO
// from its on-disk cache — the restart transfers zero blobs.
func TestChaosNetWorkerRestartCacheHit(t *testing.T) {
	d := twoPlantDataset(t, 43)
	cands := mustCandidates(t, d)
	ref, err := core.MineSelect(context.Background(), d, cands, core.SelectOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Table.Rules) < 2 {
		t.Fatal("need at least 2 reference rules so the kill lands mid-run")
	}

	cacheDir := t.TempDir()
	w := startWorker(t, "", cacheDir)
	addr := w.addr

	killed := false
	onIter := func(core.IterationStats) bool {
		if !killed {
			killed = true
			w.kill()
			// Same address, same cache: the replacement must serve every
			// re-announced HELLO without a transfer. startWorker blocks
			// until it is listening, so the coordinator's redial loop
			// (backing off deterministically against the dead port) finds
			// it as soon as the backoff allows.
			startWorker(t, addr, cacheDir)
		}
		return true
	}

	res, stats, err := mineSelect(context.Background(), d, cands,
		core.SelectOptions{K: 3, OnIteration: onIter},
		Config{Shards: 2, Workers: 2, Addrs: []string{addr}, Lease: chaosNetLease, RedialBackoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("the kill never fired; scenario is vacuous")
	}
	if stats.redials == 0 || stats.restarts == 0 {
		t.Fatalf("recovery never fired: redials=%d restarts=%d", stats.redials, stats.restarts)
	}
	if stats.cacheHits == 0 {
		t.Fatal("the restarted worker never answered a HELLO from cache")
	}
	if stats.blobsSent != 2 {
		t.Fatalf("blobsSent = %d, want 2 (dataset+candidates, first session only — a restart must transfer nothing)", stats.blobsSent)
	}
	sameResult(t, "net: worker restart with cache-hit HELLO", ref, res)
}
