package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// errOverloaded is the admission gate's shed signal: the in-flight
// budget was full and the arrival aged out of the queue-wait bound.
var errOverloaded = errors.New("server: overloaded")

// gate is the concurrency-limit admission control of the translate
// paths: a counting semaphore of in-flight slots plus a bounded queue
// wait. Beyond the budget, arrivals wait at most maxWait for a slot and
// are then shed — keeping the latency of *admitted* requests bounded
// (p99 ≈ queue bound + service time) instead of letting an unbounded
// queue push every request's latency toward infinity under overload.
type gate struct {
	sem chan struct{}
	// shedSeq drives the deterministic retry-hint jitter; see
	// retryAfterMS.
	shedSeq atomic.Uint64
}

func newGate(maxInFlight int) *gate {
	return &gate{sem: make(chan struct{}, maxInFlight)}
}

// admit blocks until an in-flight slot is free, the queue-wait bound
// expires (errOverloaded), or the request context ends (its error).
// The fast path — budget not exhausted — is one channel operation.
func (g *gate) admit(ctx context.Context, maxWait time.Duration) error {
	select {
	case g.sem <- struct{}{}:
		return nil
	default:
	}
	timer := time.NewTimer(maxWait)
	defer timer.Stop()
	select {
	case g.sem <- struct{}{}:
		return nil
	case <-timer.C:
		return errOverloaded
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns an in-flight slot.
func (g *gate) release() { <-g.sem }

// retryAfterMS is the backoff hint attached to a shed response: a value
// in [2·maxWait, 4·maxWait) milliseconds, jittered per shed event so a
// herd of shed clients does not retry in lockstep. The jitter is a
// Weyl sequence (golden-ratio multiplicative hash of a shed counter),
// not a PRNG draw: it spreads retries uniformly while keeping the
// daemon's behaviour a pure function of its request history, which the
// chaos suite relies on.
func (g *gate) retryAfterMS(maxWait time.Duration) int64 {
	base := maxWait.Milliseconds() * 2
	if base < 1 {
		base = 1
	}
	seq := g.shedSeq.Add(1)
	jitter := int64(seq*0x9E3779B97F4A7C15>>1) % base
	if jitter < 0 {
		jitter = -jitter
	}
	return base + jitter
}
