package server

import "time"

// now is the package's single wall-clock read. internal/server sits in
// twovet's nowallclock scope like the mining packages, so every timing
// site must route through this one annotated helper: serving-side
// timing (queue-wait accounting, reload latency reporting, request
// deadlines) is operational and observational — it can never influence
// a translation result, which remains a pure function of (table, row).
func now() time.Time {
	//lint:wallclock-ok serving timing is observational; translations stay pure functions of (table, row)
	return time.Now()
}
