// Package server is the fault-tolerant HTTP serving layer of the
// translatord daemon: it wraps a compiled core.Translator in a network
// endpoint that is robust by construction, not by hope.
//
// Every request passes through three nested guards:
//
//   - Panic containment: a panic anywhere in a handler is recovered and
//     turned into a 500 for that one request; the process — and every
//     other in-flight request — survives. One bad row cannot take the
//     daemon down.
//   - Admission control: at most MaxInFlight translate requests execute
//     concurrently; arrivals beyond the budget queue for at most
//     MaxQueueWait and are then shed with 429, a Retry-After header and
//     a deterministically jittered retry_after_ms hint. Shedding keeps
//     the served p99 bounded under overload instead of letting the
//     queue collapse every request's latency; /healthz is exempt, so
//     the daemon still reports live while shedding.
//   - Deadlines: every request runs under a context deadline — the
//     server default, or the client's X-Deadline-Ms header capped at
//     MaxDeadline — and a request that outruns it gets 504 instead of
//     holding resources indefinitely.
//
// The translation table itself is served through an epoch-tagged
// core.TranslatorHandle: POST /reload compiles the replacement in the
// background (requests keep flowing on the old table), atomically swaps
// the epoch, and drains the old one before reporting success — zero
// downtime, and no request ever observes a torn table. Each response
// carries the epoch that produced it.
//
// Endpoints:
//
//	POST /translate        one row           {"from":"L","items":[...]}
//	POST /translate/batch  many rows         {"from":"L","rows":[[...],...]}
//	GET  /healthz          liveness          always 200 while the process serves
//	GET  /readyz           readiness         503 until loaded / while draining
//	POST /reload           zero-downtime table swap (single-flight)
//
// The chaos suite (-tags faultinject, see internal/fault) drives the
// failure paths deterministically: handler panics, slow handlers
// blowing deadlines, reload compiles failing or racing live batches.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/fault"
)

// Options configures a Server. The zero value of every field selects a
// production-safe default.
type Options struct {
	// DefaultDeadline is the per-request deadline applied when the
	// client sends none (default 2s).
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines (default 10s).
	MaxDeadline time.Duration
	// MaxInFlight is the concurrent translate-request budget; arrivals
	// beyond it queue and then shed (default 64).
	MaxInFlight int
	// MaxQueueWait bounds how long an arrival may wait for an
	// in-flight slot before being shed with 429 (default 100ms).
	MaxQueueWait time.Duration
	// MaxBatchRows bounds the row count of one batch request
	// (default 8192).
	MaxBatchRows int
	// MaxBodyBytes bounds request body size (default 8 MiB).
	MaxBodyBytes int64
	// Reload produces a freshly compiled Translator for POST /reload —
	// typically by re-reading the table and dataset files. nil disables
	// the endpoint (501).
	Reload func(ctx context.Context) (*core.Translator, error)
	// Log receives operational events (contained panics, reloads).
	// nil means the standard logger.
	Log *log.Logger
}

func (o Options) withDefaults() Options {
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = 2 * time.Second
	}
	if o.MaxDeadline <= 0 {
		o.MaxDeadline = 10 * time.Second
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	if o.MaxQueueWait <= 0 {
		o.MaxQueueWait = 100 * time.Millisecond
	}
	if o.MaxBatchRows <= 0 {
		o.MaxBatchRows = 8192
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	return o
}

// Server serves a compiled Translator over HTTP. Create it with New,
// mount Handler on an http.Server, and call BeginShutdown before
// draining connections.
type Server struct {
	opts   Options
	handle *core.TranslatorHandle
	gate   *gate
	ready  atomic.Bool
	// reloading makes POST /reload single-flight: a second reload while
	// one is compiling is rejected with 409 instead of racing the swap.
	reloading atomic.Bool
}

// New returns a Server serving tr as epoch 1.
func New(tr *core.Translator, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:   opts,
		handle: core.NewTranslatorHandle(tr),
		gate:   newGate(opts.MaxInFlight),
	}
	s.ready.Store(true)
	return s
}

// Epoch returns the currently installed table epoch (1-based).
func (s *Server) Epoch() uint64 {
	_, ep := s.handle.Current()
	return ep
}

// BeginShutdown flips /readyz to 503 so load balancers stop routing new
// traffic, without interrupting in-flight requests — the first step of
// the graceful drain (the second is http.Server.Shutdown).
func (s *Server) BeginShutdown() { s.ready.Store(false) }

// Handler returns the daemon's HTTP routes. Translate paths are
// panic-contained, admission-gated and deadline-bounded; health and
// reload paths are panic-contained only (shedding liveness probes or
// admin actions under load would defeat their purpose).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /translate", s.contain(s.gated(s.deadlined(s.handleTranslate))))
	mux.HandleFunc("POST /translate/batch", s.contain(s.gated(s.deadlined(s.handleBatch))))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /reload", s.contain(s.handleReload))
	return mux
}

// ---- request/response bodies ----

type translateRequest struct {
	From  string `json:"from"`
	Items []int  `json:"items"`
}

type translateResponse struct {
	Items []int  `json:"items"`
	Epoch uint64 `json:"epoch"`
}

type batchRequest struct {
	From string  `json:"from"`
	Rows [][]int `json:"rows"`
}

type batchResponse struct {
	Rows  [][]int `json:"rows"`
	Epoch uint64  `json:"epoch"`
}

type reloadResponse struct {
	Epoch     uint64 `json:"epoch"`
	Rules     int    `json:"rules"`
	Drained   bool   `json:"old_epoch_drained"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

type errorResponse struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// ---- middleware ----

// contain recovers a handler panic into a 500 for that request alone:
// the panic is logged with its route and the process keeps serving.
func (s *Server) contain(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.logf("panic contained serving %s: %v", r.URL.Path, p)
				// If the handler already started its response this write
				// is a no-op; the client sees a truncated body, which is
				// the honest outcome for a mid-stream panic.
				writeError(w, http.StatusInternalServerError, "internal error: request aborted")
			}
		}()
		h(w, r)
	}
}

// gated applies admission control: acquire an in-flight slot, bounded
// by the queue-wait budget, or shed the request with 429 + Retry-After.
func (s *Server) gated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if err := s.gate.admit(r.Context(), s.opts.MaxQueueWait); err != nil {
			if errors.Is(err, errOverloaded) {
				hint := s.gate.retryAfterMS(s.opts.MaxQueueWait)
				w.Header().Set("Retry-After", strconv.FormatInt((hint+999)/1000, 10))
				writeJSON(w, http.StatusTooManyRequests, errorResponse{
					Error:        "overloaded: in-flight budget and queue-wait bound exceeded",
					RetryAfterMS: hint,
				})
				return
			}
			// The client went away (or its deadline fired) while queued.
			writeError(w, http.StatusServiceUnavailable, "cancelled while queued for admission")
			return
		}
		defer s.gate.release()
		h(w, r)
	}
}

// deadlined runs the handler under the per-request deadline: the server
// default, or the client's X-Deadline-Ms capped at MaxDeadline.
func (s *Server) deadlined(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		d := s.opts.DefaultDeadline
		if hdr := r.Header.Get("X-Deadline-Ms"); hdr != "" {
			ms, err := strconv.ParseInt(hdr, 10, 64)
			if err != nil || ms <= 0 {
				writeError(w, http.StatusBadRequest, "X-Deadline-Ms must be a positive integer")
				return
			}
			d = min(time.Duration(ms)*time.Millisecond, s.opts.MaxDeadline)
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// ---- handlers ----

func (s *Server) handleTranslate(w http.ResponseWriter, r *http.Request) {
	var req translateRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	from, ok := parseView(w, req.From)
	if !ok {
		return
	}
	if fault.Enabled {
		// Chaos hook: scripted per-request panics and slow handlers.
		fault.Fire("server.translate")
	}
	e := s.handle.Acquire()
	defer e.Release()
	ids, err := e.Translator().TranslateIDs(nil, from, req.Items)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if deadlineBlown(w, r.Context()) {
		return
	}
	if ids == nil {
		ids = []int{}
	}
	writeJSON(w, http.StatusOK, translateResponse{Items: ids, Epoch: e.Epoch()})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	from, ok := parseView(w, req.From)
	if !ok {
		return
	}
	if len(req.Rows) > s.opts.MaxBatchRows {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d rows exceeds the %d-row limit", len(req.Rows), s.opts.MaxBatchRows))
		return
	}
	if fault.Enabled {
		fault.Fire("server.translate")
	}
	// The whole batch rides one pinned epoch and one arena-backed
	// compiled call: every row of the response comes from the same
	// table generation by construction.
	e := s.handle.Acquire()
	defer e.Release()
	rows, err := e.Translator().TranslateBatchIDs(r.Context(), from, req.Rows)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded mid-batch")
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if deadlineBlown(w, r.Context()) {
		return
	}
	for i, row := range rows {
		if row == nil {
			rows[i] = []int{}
		}
	}
	writeJSON(w, http.StatusOK, batchResponse{Rows: rows, Epoch: e.Epoch()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// Liveness is unconditional while the process can run handlers:
	// shedding load (429s on translate paths) is a healthy state, not a
	// dead one, and restart loops triggered by overload would only add
	// cold-start pressure.
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	tr, ep := s.handle.Current()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "epoch": ep, "rules": tr.Rules()})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.opts.Reload == nil {
		writeError(w, http.StatusNotImplemented, "no reload source configured")
		return
	}
	if !s.reloading.CompareAndSwap(false, true) {
		writeError(w, http.StatusConflict, "reload already in progress")
		return
	}
	defer s.reloading.Store(false)
	start := now()

	if fault.Enabled {
		if err := fault.Point("server.reload.compile"); err != nil {
			writeError(w, http.StatusInternalServerError,
				fmt.Sprintf("reload failed: %v (previous table still serving)", err))
			return
		}
	}
	// Compile in the background of live traffic: requests keep flowing
	// on the current epoch for the whole duration of this call.
	tr, err := s.opts.Reload(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError,
			fmt.Sprintf("reload failed: %v (previous table still serving)", err))
		return
	}
	old := s.handle.Swap(tr)
	// Drain the retired epoch before declaring success. The drain gets
	// its own budget (not the client's, which may already be nearly
	// spent): in-flight requests hold the old epoch for at most their
	// own deadline, so MaxDeadline bounds the wait.
	drainCtx, cancel := context.WithTimeout(context.Background(), s.opts.MaxDeadline)
	defer cancel()
	drained := old.Drain(drainCtx) == nil
	_, epoch := s.handle.Current()
	s.logf("reloaded table: epoch %d, %d rules, old epoch drained=%v", epoch, tr.Rules(), drained)
	writeJSON(w, http.StatusOK, reloadResponse{
		Epoch:     epoch,
		Rules:     tr.Rules(),
		Drained:   drained,
		ElapsedMS: now().Sub(start).Milliseconds(),
	})
}

// ---- plumbing ----

// deadlineBlown turns a spent request context into a 504. Handlers call
// it after producing a result: a response computed past the deadline
// must not masquerade as a timely one.
func deadlineBlown(w http.ResponseWriter, ctx context.Context) bool {
	if ctx.Err() != nil {
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded")
		return true
	}
	return false
}

// decodeJSON reads a size-capped JSON body into dst, answering 400/413
// itself; the false return means the response is already written.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

// parseView resolves the wire name of a view ("L"/"R", case-insensitive
// long forms accepted), answering 400 itself on anything else.
func parseView(w http.ResponseWriter, name string) (dataset.View, bool) {
	switch name {
	case "L", "l", "left", "Left", "LEFT":
		return dataset.Left, true
	case "R", "r", "right", "Right", "RIGHT":
		return dataset.Right, true
	}
	writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown view %q: want L or R", name))
	return 0, false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past WriteHeader have no channel back to the
	// client; the connection-level error is theirs to observe.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Log != nil {
		s.opts.Log.Printf(format, args...)
		return
	}
	log.Printf("translatord: "+format, args...)
}
