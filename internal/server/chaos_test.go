//go:build faultinject

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/fault"
)

// Chaos coverage for the daemon under -tags faultinject: scripted
// failpoints strike inside the translate handlers and the reload path,
// and the recovery contract is that the process keeps serving, results
// stay bit-identical to the in-process Translator, and no failure mode
// wedges a worker or tears a table.

// A panic injected into the translate handler becomes a 500 for that
// one request; the next request is served correctly, and /healthz never
// flinches.
func TestChaosHandlerPanicContained(t *testing.T) {
	defer fault.Reset()
	tr, d := serveFixture(t, 51)
	s := New(tr, Options{Log: log.New(io.Discard, "", 0)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	items := d.Row(dataset.Left, 0).Indices()
	fault.Set("server.translate", fault.Action{Panic: "chaos: handler bomb"})

	code, body, _ := postJSON(t, ts.URL+"/translate",
		map[string]any{"from": "L", "items": items}, nil)
	if code != http.StatusInternalServerError {
		t.Fatalf("bombed request: status %d: %s", code, body)
	}
	if code, _ := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after contained panic: status %d", code)
	}

	// The schedule is spent: the very next request must succeed and
	// match the in-process result.
	code, body, _ = postJSON(t, ts.URL+"/translate",
		map[string]any{"from": "L", "items": items}, nil)
	if code != http.StatusOK {
		t.Fatalf("request after contained panic: status %d: %s", code, body)
	}
	var got translateResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want, err := tr.TranslateIDs(nil, dataset.Left, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != len(want) {
		t.Fatalf("post-panic result %v, want %v", got.Items, want)
	}
	for i := range want {
		if got.Items[i] != want[i] {
			t.Fatalf("post-panic result %v, want %v", got.Items, want)
		}
	}
}

// A handler held past its deadline by an injected delay answers 504 —
// both under the server default and under a client deadline capped by
// MaxDeadline — and clean service resumes immediately after.
func TestChaosDeadlineBlowout(t *testing.T) {
	defer fault.Reset()
	tr, d := serveFixture(t, 52)
	s := New(tr, Options{
		DefaultDeadline: 20 * time.Millisecond,
		MaxDeadline:     30 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	items := d.Row(dataset.Left, 1).Indices()

	// Server default deadline.
	fault.Set("server.translate", fault.Action{Delay: 120 * time.Millisecond})
	code, body, _ := postJSON(t, ts.URL+"/translate",
		map[string]any{"from": "L", "items": items}, nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("slow handler under default deadline: status %d: %s", code, body)
	}

	// A client asking for a huge deadline is capped at MaxDeadline, so
	// the same delay still blows it.
	fault.Set("server.translate", fault.Action{Delay: 120 * time.Millisecond})
	code, body, _ = postJSON(t, ts.URL+"/translate",
		map[string]any{"from": "L", "items": items},
		map[string]string{"X-Deadline-Ms": "60000"})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("slow handler under capped client deadline: status %d: %s", code, body)
	}

	// Batches respect the deadline too.
	fault.Set("server.translate", fault.Action{Delay: 120 * time.Millisecond})
	code, body, _ = postJSON(t, ts.URL+"/translate/batch",
		map[string]any{"from": "L", "rows": [][]int{items}}, nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("slow batch: status %d: %s", code, body)
	}

	fault.Reset()
	code, body, _ = postJSON(t, ts.URL+"/translate",
		map[string]any{"from": "L", "items": items}, nil)
	if code != http.StatusOK {
		t.Fatalf("clean request after blowouts: status %d: %s", code, body)
	}
}

// A reload whose compile step faults answers 500, keeps the old epoch
// installed and serving, and a clean retry succeeds.
func TestChaosReloadCompileFault(t *testing.T) {
	defer fault.Reset()
	trA, trB := tinyTranslator(t, 0), tinyTranslator(t, 1)
	s := New(trA, Options{
		Log:    log.New(io.Discard, "", 0),
		Reload: func(context.Context) (*core.Translator, error) { return trB, nil },
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fault.Set("server.reload.compile", fault.Action{Err: errors.New("chaos: compile torn")})
	code, body, _ := postJSON(t, ts.URL+"/reload", struct{}{}, nil)
	if code != http.StatusInternalServerError {
		t.Fatalf("faulted reload: status %d: %s", code, body)
	}
	if !bytes.Contains(body, []byte("previous table still serving")) {
		t.Fatalf("faulted reload does not promise continuity: %s", body)
	}
	if ep := s.Epoch(); ep != 1 {
		t.Fatalf("epoch after faulted reload = %d, want 1", ep)
	}
	code, body, _ = postJSON(t, ts.URL+"/translate",
		map[string]any{"from": "L", "items": []int{0}}, nil)
	var resp translateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || len(resp.Items) != 1 || resp.Items[0] != 0 || resp.Epoch != 1 {
		t.Fatalf("old table not serving after faulted reload: %d %s", code, body)
	}

	fault.Reset()
	code, _, _ = postJSON(t, ts.URL+"/reload", struct{}{}, nil)
	if code != http.StatusOK || s.Epoch() != 2 {
		t.Fatalf("clean retry: status %d, epoch %d", code, s.Epoch())
	}
}

// Reloads racing live batch traffic: every batch response must be
// entirely the output of the epoch it reports — old table or new table,
// never a mix — and every retired epoch must drain.
func TestChaosReloadRacingLiveBatches(t *testing.T) {
	defer fault.Reset()
	trA, trB := tinyTranslator(t, 0), tinyTranslator(t, 1)
	// Epoch n serves trA when n is odd, trB when n is even — so a
	// response's epoch pins exactly which output is legal.
	var flips atomic.Uint64
	s := New(trA, Options{
		Log: log.New(io.Discard, "", 0),
		Reload: func(context.Context) (*core.Translator, error) {
			if flips.Add(1)%2 == 1 {
				return trB, nil
			}
			return trA, nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rows := [][]int{{0}, {0, 1}, {0, 2}, {0, 3}}
	stop := make(chan struct{})
	var torn, served atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, body, _ := postJSON(t, ts.URL+"/translate/batch",
					map[string]any{"from": "L", "rows": rows}, nil)
				if code != http.StatusOK {
					torn.Add(1)
					continue
				}
				var resp batchResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					torn.Add(1)
					continue
				}
				want := 0
				if resp.Epoch%2 == 0 {
					want = 1
				}
				for _, out := range resp.Rows {
					if len(out) != 1 || out[0] != want {
						torn.Add(1)
					}
				}
				served.Add(1)
			}
		}()
	}

	for i := 0; i < 25; i++ {
		code, body, _ := postJSON(t, ts.URL+"/reload", struct{}{}, nil)
		if code != http.StatusOK {
			t.Fatalf("reload %d under live batches: status %d: %s", i, code, body)
		}
		var rel reloadResponse
		if err := json.Unmarshal(body, &rel); err != nil {
			t.Fatal(err)
		}
		if !rel.Drained {
			t.Fatalf("reload %d: retired epoch did not drain under live traffic", i)
		}
	}
	close(stop)
	wg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d torn or failed batch responses across reloads", n)
	}
	if served.Load() == 0 {
		t.Fatal("no batches served during the reload storm")
	}
	if ep := s.Epoch(); ep != 26 {
		t.Fatalf("final epoch = %d, want 26", ep)
	}
}

// Overload with slow handlers: shed requests get 429, served requests'
// p99 stays under 2× the admission budget (queue-wait bound plus
// injected service time), and /healthz stays green the whole storm.
func TestChaosSheddingHoldsP99(t *testing.T) {
	defer fault.Reset()
	tr, d := serveFixture(t, 53)
	// The herd's demand (24 clients × 20ms service on 2 slots ≈ 220ms
	// expected queue wait) far exceeds the 60ms queue-wait bound, so the
	// gate must shed — that is the scenario under test.
	const (
		maxInFlight = 2
		queueWait   = 60 * time.Millisecond
		serviceTime = 20 * time.Millisecond
	)
	s := New(tr, Options{MaxInFlight: maxInFlight, MaxQueueWait: queueWait})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	items := d.Row(dataset.Left, 2).Indices()

	// Dedicated keep-alive transport: the p99 assertion measures the
	// daemon's admission behaviour, not client connection churn.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 64,
	}}
	defer client.CloseIdleConnections()

	// Every admitted request pays an injected service time, so the
	// in-flight budget actually saturates under the client herd.
	const totalReqs = 24 * 8
	delays := make([]fault.Action, totalReqs)
	for i := range delays {
		delays[i] = fault.Action{Delay: serviceTime}
	}
	fault.Set("server.translate", delays...)

	payload, err := json.Marshal(map[string]any{"from": "L", "items": items})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var servedLat []time.Duration
	var shed, failed int
	healthGreen := true

	var wg sync.WaitGroup
	for c := 0; c < 24; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Establish this worker's connection outside the timed loop.
			if resp, err := client.Get(ts.URL + "/healthz"); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			for r := 0; r < 8; r++ {
				start := time.Now()
				resp, err := client.Post(ts.URL+"/translate", "application/json",
					bytes.NewReader(payload))
				lat := time.Since(start)
				code := 0
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					code = resp.StatusCode
				}
				mu.Lock()
				switch code {
				case http.StatusOK:
					servedLat = append(servedLat, lat)
				case http.StatusTooManyRequests:
					shed++
				default:
					failed++
				}
				mu.Unlock()
			}
		}()
	}
	// Probe liveness while the storm runs.
	probeDone := make(chan struct{})
	go func() {
		defer close(probeDone)
		for i := 0; i < 10; i++ {
			if code, _ := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
				mu.Lock()
				healthGreen = false
				mu.Unlock()
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	wg.Wait()
	<-probeDone

	if failed != 0 {
		t.Fatalf("%d requests failed with neither 200 nor 429", failed)
	}
	if shed == 0 {
		t.Fatal("storm did not shed a single request — gate never saturated")
	}
	if len(servedLat) == 0 {
		t.Fatal("storm served nothing — gate wedged")
	}
	if !healthGreen {
		t.Fatal("healthz went red during the storm")
	}
	sort.Slice(servedLat, func(i, j int) bool { return servedLat[i] < servedLat[j] })
	p99 := servedLat[len(servedLat)*99/100]
	budget := queueWait + serviceTime
	if p99 > 2*budget {
		t.Fatalf("served p99 = %v, want <= 2× admission budget %v (served %d, shed %d)",
			p99, budget, len(servedLat), shed)
	}
	t.Logf("storm: served %d (p99 %v), shed %d, budget %v", len(servedLat), p99, shed, budget)
}
