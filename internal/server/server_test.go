package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/synth"
)

// serveFixture compiles a Translator from the planted rules of a small
// synthetic two-view dataset — real mined-model shape, deterministic
// content — so endpoint responses can be checked bit for bit against
// the in-process compiled path.
func serveFixture(t testing.TB, seed int64) (*core.Translator, *dataset.Dataset) {
	t.Helper()
	d, rules, err := synth.Generate(synth.Profile{
		Name: "serve", Size: 160, ItemsL: 24, ItemsR: 24,
		DensityL: 0.12, DensityR: 0.12,
		BidirRules: 4, UniRules: 2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.CompileTranslator(d, &core.Table{Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	return tr, d
}

// tinyTranslator compiles a one-rule table l0 -> r<target> over a tiny
// vocabulary, for reload tests that need two distinguishable epochs.
func tinyTranslator(t testing.TB, target int) *core.Translator {
	t.Helper()
	d := dataset.MustNew(dataset.GenericNames("l", 4), dataset.GenericNames("r", 4))
	tab := &core.Table{Rules: []core.Rule{
		{X: itemset.Itemset{0}, Y: itemset.Itemset{target}, Dir: core.Forward},
	}}
	tr, err := core.CompileTranslator(d, tab)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func postJSON(t testing.TB, url string, body any, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, resp.Header
}

func getStatus(t testing.TB, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// Every /translate response must be bit-identical to the in-process
// compiled Translator on the same items, in both directions, and carry
// the serving epoch.
func TestServingTranslateMatchesInProcess(t *testing.T) {
	tr, d := serveFixture(t, 41)
	s := New(tr, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, from := range []dataset.View{dataset.Left, dataset.Right} {
		wire := "L"
		if from == dataset.Right {
			wire = "R"
		}
		for ti := 0; ti < d.Size(); ti += 7 {
			items := d.Row(from, ti).Indices()
			code, body, _ := postJSON(t, ts.URL+"/translate",
				map[string]any{"from": wire, "items": items}, nil)
			if code != http.StatusOK {
				t.Fatalf("row %d from %s: status %d: %s", ti, wire, code, body)
			}
			var got translateResponse
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatal(err)
			}
			want, err := tr.TranslateIDs(nil, from, items)
			if err != nil {
				t.Fatal(err)
			}
			if got.Epoch != 1 {
				t.Fatalf("row %d: epoch %d, want 1", ti, got.Epoch)
			}
			if len(got.Items) != len(want) {
				t.Fatalf("row %d from %s: %v, want %v", ti, wire, got.Items, want)
			}
			for i := range want {
				if got.Items[i] != want[i] {
					t.Fatalf("row %d from %s: %v, want %v", ti, wire, got.Items, want)
				}
			}
		}
	}

	// An empty translation serializes as [], never null.
	code, body, _ := postJSON(t, ts.URL+"/translate",
		map[string]any{"from": "L", "items": []int{}}, nil)
	if code != http.StatusOK {
		t.Fatalf("empty row: status %d: %s", code, body)
	}
	if !bytes.Contains(body, []byte(`"items":[]`)) {
		t.Fatalf("empty translation not []: %s", body)
	}
}

// A batch response must match the per-row in-process results exactly,
// come from one epoch, and serialize empty rows as [].
func TestServingBatchMatchesInProcess(t *testing.T) {
	tr, d := serveFixture(t, 42)
	s := New(tr, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rows := make([][]int, d.Size())
	for ti := range rows {
		rows[ti] = d.Row(dataset.Left, ti).Indices()
	}
	code, body, _ := postJSON(t, ts.URL+"/translate/batch",
		map[string]any{"from": "L", "rows": rows}, nil)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var got batchResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 1 {
		t.Fatalf("epoch %d, want 1", got.Epoch)
	}
	if len(got.Rows) != len(rows) {
		t.Fatalf("%d result rows, want %d", len(got.Rows), len(rows))
	}
	for ti, items := range rows {
		want, err := tr.TranslateIDs(nil, dataset.Left, items)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rows[ti] == nil {
			t.Fatalf("row %d decoded as null", ti)
		}
		if len(got.Rows[ti]) != len(want) {
			t.Fatalf("row %d: %v, want %v", ti, got.Rows[ti], want)
		}
		for i := range want {
			if got.Rows[ti][i] != want[i] {
				t.Fatalf("row %d: %v, want %v", ti, got.Rows[ti], want)
			}
		}
	}
}

func TestServingRequestValidation(t *testing.T) {
	tr, _ := serveFixture(t, 43)
	s := New(tr, Options{MaxBatchRows: 4, MaxBodyBytes: 1 << 10})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	t.Run("unknown view", func(t *testing.T) {
		code, body, _ := postJSON(t, ts.URL+"/translate",
			map[string]any{"from": "sideways", "items": []int{0}}, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("status %d: %s", code, body)
		}
	})
	t.Run("unknown item id", func(t *testing.T) {
		code, body, _ := postJSON(t, ts.URL+"/translate",
			map[string]any{"from": "L", "items": []int{9999}}, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("status %d: %s", code, body)
		}
	})
	t.Run("malformed body", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/translate", "application/json",
			strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d", resp.StatusCode)
		}
	})
	t.Run("batch over row limit", func(t *testing.T) {
		code, body, _ := postJSON(t, ts.URL+"/translate/batch",
			map[string]any{"from": "L", "rows": [][]int{{0}, {1}, {2}, {0}, {1}}}, nil)
		if code != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d: %s", code, body)
		}
	})
	t.Run("body over byte limit", func(t *testing.T) {
		big := make([]int, 2048)
		code, body, _ := postJSON(t, ts.URL+"/translate",
			map[string]any{"from": "L", "items": big}, nil)
		if code != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d: %s", code, body)
		}
	})
	t.Run("bad deadline header", func(t *testing.T) {
		for _, hdr := range []string{"-5", "0", "soon"} {
			code, body, _ := postJSON(t, ts.URL+"/translate",
				map[string]any{"from": "L", "items": []int{0}},
				map[string]string{"X-Deadline-Ms": hdr})
			if code != http.StatusBadRequest {
				t.Fatalf("X-Deadline-Ms=%q: status %d: %s", hdr, code, body)
			}
		}
		// A valid header is accepted (capped server-side).
		code, body, _ := postJSON(t, ts.URL+"/translate",
			map[string]any{"from": "L", "items": []int{0}},
			map[string]string{"X-Deadline-Ms": "600000"})
		if code != http.StatusOK {
			t.Fatalf("valid deadline: status %d: %s", code, body)
		}
	})
	t.Run("wrong method", func(t *testing.T) {
		code, _ := getStatus(t, ts.URL+"/translate")
		if code != http.StatusMethodNotAllowed {
			t.Fatalf("GET /translate: status %d", code)
		}
	})
}

// With the in-flight budget exhausted, arrivals must shed with 429, a
// Retry-After header and a jittered retry_after_ms hint in
// [2·MaxQueueWait, 4·MaxQueueWait) — while /healthz stays green, and
// service resumes the moment slots free up.
func TestServingShedsWhenSaturated(t *testing.T) {
	tr, _ := serveFixture(t, 44)
	s := New(tr, Options{MaxInFlight: 2, MaxQueueWait: 20 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy both in-flight slots directly: the gate is the only thing
	// between the mux and the handler, so this models two requests
	// parked inside their handlers.
	s.gate.sem <- struct{}{}
	s.gate.sem <- struct{}{}

	code, body, hdr := postJSON(t, ts.URL+"/translate",
		map[string]any{"from": "L", "items": []int{0}}, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated: status %d: %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After header")
	}
	var shed errorResponse
	if err := json.Unmarshal(body, &shed); err != nil {
		t.Fatal(err)
	}
	base := int64(2 * 20) // 2 × MaxQueueWait in ms
	if shed.RetryAfterMS < base || shed.RetryAfterMS >= 2*base {
		t.Fatalf("retry_after_ms = %d, want in [%d, %d)", shed.RetryAfterMS, base, 2*base)
	}

	if code, _ := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while shedding: status %d", code)
	}

	<-s.gate.sem
	<-s.gate.sem
	code, body, _ = postJSON(t, ts.URL+"/translate",
		map[string]any{"from": "L", "items": []int{0}}, nil)
	if code != http.StatusOK {
		t.Fatalf("after release: status %d: %s", code, body)
	}
}

func TestGateAdmission(t *testing.T) {
	g := newGate(1)
	if err := g.admit(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("fast path: %v", err)
	}
	if err := g.admit(context.Background(), 10*time.Millisecond); !errors.Is(err, errOverloaded) {
		t.Fatalf("saturated admit = %v, want errOverloaded", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if err := g.admit(ctx, time.Minute); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled admit = %v, want context.Canceled", err)
	}
	g.release()
	if err := g.admit(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("post-release admit: %v", err)
	}

	for i := 0; i < 200; i++ {
		ms := g.retryAfterMS(20 * time.Millisecond)
		if ms < 40 || ms >= 80 {
			t.Fatalf("hint %d: %d ms outside [40, 80)", i, ms)
		}
	}
}

// POST /reload must swap epochs atomically: responses carry the new
// epoch and the new table's output, the retired epoch drains, and
// repeated reloads keep counting up.
func TestServingReloadSwapsEpochs(t *testing.T) {
	trA, trB := tinyTranslator(t, 0), tinyTranslator(t, 1)
	next := trB
	s := New(trA, Options{
		Reload: func(context.Context) (*core.Translator, error) { return next, nil },
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	translate := func() (int, uint64) {
		t.Helper()
		code, body, _ := postJSON(t, ts.URL+"/translate",
			map[string]any{"from": "L", "items": []int{0}}, nil)
		if code != http.StatusOK {
			t.Fatalf("translate: status %d: %s", code, body)
		}
		var resp translateResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Items) != 1 {
			t.Fatalf("items %v, want exactly one", resp.Items)
		}
		return resp.Items[0], resp.Epoch
	}

	if id, ep := translate(); id != 0 || ep != 1 {
		t.Fatalf("before reload: item %d epoch %d, want 0/1", id, ep)
	}

	code, body, _ := postJSON(t, ts.URL+"/reload", struct{}{}, nil)
	if code != http.StatusOK {
		t.Fatalf("reload: status %d: %s", code, body)
	}
	var rel reloadResponse
	if err := json.Unmarshal(body, &rel); err != nil {
		t.Fatal(err)
	}
	if rel.Epoch != 2 || rel.Rules != 1 || !rel.Drained {
		t.Fatalf("reload response %+v, want epoch 2, 1 rule, drained", rel)
	}
	if id, ep := translate(); id != 1 || ep != 2 {
		t.Fatalf("after reload: item %d epoch %d, want 1/2", id, ep)
	}

	// readyz reports the new epoch; a second reload keeps counting.
	code, body = getStatus(t, ts.URL+"/readyz")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"epoch":2`)) {
		t.Fatalf("readyz after reload: %d %s", code, body)
	}
	next = trA
	code, body, _ = postJSON(t, ts.URL+"/reload", struct{}{}, nil)
	if code != http.StatusOK {
		t.Fatalf("second reload: status %d: %s", code, body)
	}
	if id, ep := translate(); id != 0 || ep != 3 {
		t.Fatalf("after second reload: item %d epoch %d, want 0/3", id, ep)
	}
}

func TestServingReloadFailures(t *testing.T) {
	t.Run("not configured", func(t *testing.T) {
		s := New(tinyTranslator(t, 0), Options{})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		code, body, _ := postJSON(t, ts.URL+"/reload", struct{}{}, nil)
		if code != http.StatusNotImplemented {
			t.Fatalf("status %d: %s", code, body)
		}
	})
	t.Run("source error keeps old table", func(t *testing.T) {
		s := New(tinyTranslator(t, 0), Options{
			Reload: func(context.Context) (*core.Translator, error) {
				return nil, fmt.Errorf("table file corrupted")
			},
		})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		code, body, _ := postJSON(t, ts.URL+"/reload", struct{}{}, nil)
		if code != http.StatusInternalServerError {
			t.Fatalf("status %d: %s", code, body)
		}
		if !bytes.Contains(body, []byte("previous table still serving")) {
			t.Fatalf("error body does not promise continuity: %s", body)
		}
		if ep := s.Epoch(); ep != 1 {
			t.Fatalf("epoch after failed reload = %d, want 1", ep)
		}
		code, _, _ = postJSON(t, ts.URL+"/translate",
			map[string]any{"from": "L", "items": []int{0}}, nil)
		if code != http.StatusOK {
			t.Fatalf("translate after failed reload: status %d", code)
		}
	})
	t.Run("single flight", func(t *testing.T) {
		s := New(tinyTranslator(t, 0), Options{
			Reload: func(context.Context) (*core.Translator, error) {
				return tinyTranslator(t, 1), nil
			},
		})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		s.reloading.Store(true) // a reload is mid-compile
		code, body, _ := postJSON(t, ts.URL+"/reload", struct{}{}, nil)
		if code != http.StatusConflict {
			t.Fatalf("status %d: %s", code, body)
		}
		s.reloading.Store(false)
		code, _, _ = postJSON(t, ts.URL+"/reload", struct{}{}, nil)
		if code != http.StatusOK {
			t.Fatalf("reload after conflict cleared: status %d", code)
		}
	})
}

// Liveness and readiness split: BeginShutdown flips readyz to 503 so
// the balancer stops routing, but the process stays live and keeps
// serving whatever still arrives.
func TestServingReadinessLifecycle(t *testing.T) {
	tr, _ := serveFixture(t, 45)
	s := New(tr, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := getStatus(t, ts.URL+"/readyz")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"epoch":1`)) {
		t.Fatalf("readyz: %d %s", code, body)
	}
	s.BeginShutdown()
	if code, _ := getStatus(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after BeginShutdown: status %d", code)
	}
	if code, _ := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after BeginShutdown: status %d", code)
	}
	code, _, _ = postJSON(t, ts.URL+"/translate",
		map[string]any{"from": "L", "items": []int{0}}, nil)
	if code != http.StatusOK {
		t.Fatalf("in-flight traffic during drain: status %d", code)
	}
}
