package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"twoview/internal/dataset"
)

// BenchmarkTranslatordLoad is the daemon's closed-loop load harness:
// a fixed client herd drives /translate/batch over real HTTP against
// planted synthetic data at GOMAXPROCS=4 and reports end-to-end
// throughput (rows/s) and served tail latency (p99-ms). benchreport
// tracks both across commits; a shedding or admission regression shows
// up as a p99 cliff long before correctness tests would notice.
func BenchmarkTranslatordLoad(b *testing.B) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	const (
		clients   = 8
		batchRows = 64
		burstsPer = 4 // batch requests per client per iteration
	)
	tr, d := serveFixture(b, 71)
	s := New(tr, Options{MaxInFlight: clients})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rows := make([][]int, batchRows)
	for i := range rows {
		rows[i] = d.Row(dataset.Left, i%d.Size()).Indices()
	}
	payload, err := json.Marshal(map[string]any{"from": "L", "rows": rows})
	if err != nil {
		b.Fatal(err)
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients,
		MaxIdleConnsPerHost: clients,
	}}
	defer client.CloseIdleConnections()

	post := func() (int, error) {
		resp, err := client.Post(ts.URL+"/translate/batch", "application/json",
			bytes.NewReader(payload))
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	// Warm the connection pool outside the measured region.
	for i := 0; i < clients; i++ {
		if code, err := post(); err != nil || code != http.StatusOK {
			b.Fatalf("warmup: status %d, err %v", code, err)
		}
	}

	var mu sync.Mutex
	var lats []time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < burstsPer; r++ {
					start := time.Now()
					code, err := post()
					lat := time.Since(start)
					if err != nil || code != http.StatusOK {
						b.Errorf("load request: status %d, err %v", code, err)
						return
					}
					mu.Lock()
					lats = append(lats, lat)
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()

	totalRows := float64(len(lats) * batchRows)
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(totalRows/secs, "rows/s")
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		p99 := lats[len(lats)*99/100]
		b.ReportMetric(float64(p99.Microseconds())/1000, "p99-ms")
	}
}
