// Package fault is a deterministic failpoint registry for chaos
// testing: named hooks threaded through the serving daemon's hot paths
// (internal/server), the streaming dataset reader (dataset.RowReader)
// and the worker pool's phase submission (internal/pool), which tests
// arm with a seeded schedule of injected errors, delays and panics.
//
// The package ships in two builds selected by the `faultinject` build
// tag:
//
//   - Default build: Enabled is the constant false, Point returns nil
//     and Fire does nothing. Every call site guards itself with
//     `if fault.Enabled { ... }`, so the hooks compile away entirely —
//     production binaries carry zero overhead, not even a branch.
//   - `-tags faultinject`: Enabled is true and the registry is live.
//     Tests script failures with Set and a FIFO list of Actions per
//     point; each evaluation of the point consumes (or skips past) the
//     schedule deterministically, so a chaos scenario like "the third
//     task of the mine panics" or "the second reload compile fails"
//     replays identically on every run.
//
// Schedules are per-point FIFO queues. An Action's Skip field lets a
// single entry pass through the first n evaluations before firing, so
// "fail the k-th hit" needs one entry, not k. Exhausted or absent
// schedules make the point a pass-through. The registry is safe for
// concurrent use: points are evaluated from request handlers and pool
// workers while tests read Hits for assertions.
//
// The registry deliberately has no time- or randomness-driven firing
// modes: schedules are positional only, so an injected fault is a pure
// function of (schedule, hit number) and chaos tests stay replayable
// under -race and across machines.
package fault

import "time"

// Action is one scheduled behaviour of a failpoint. The zero Action is
// an explicit pass-through (useful as a spacer); otherwise at most one
// of Err and Panic should be set. Delay composes with either: the point
// sleeps first, then errors/panics/passes.
type Action struct {
	// Skip passes through this many evaluations before the action
	// fires, without consuming it.
	Skip int
	// Delay makes the point sleep before resolving, simulating a slow
	// dependency (a slow client, a long compile).
	Delay time.Duration
	// Err is returned by Point (Fire panics with it instead, since its
	// call sites have no error path).
	Err error
	// Panic is the value the point panics with.
	Panic any
}
