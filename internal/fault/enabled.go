//go:build faultinject

package fault

import (
	"sync"
	"time"
)

// Enabled reports whether fault injection is compiled in.
const Enabled = true

var (
	mu        sync.Mutex
	schedules = map[string][]Action{}
	hits      = map[string]int{}
)

// Set replaces the schedule of the named point with the given FIFO
// action list and resets its hit counter.
func Set(name string, actions ...Action) {
	mu.Lock()
	defer mu.Unlock()
	schedules[name] = append([]Action(nil), actions...)
	hits[name] = 0
}

// Reset clears every schedule and hit counter, returning the registry
// to the pass-through state. Chaos tests call it between scenarios.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	clear(schedules)
	clear(hits)
}

// Hits reports how many times the named point has been evaluated since
// its schedule was last Set (or since Reset).
func Hits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	return hits[name]
}

// next consumes one evaluation of the named point: it counts the hit,
// skips past Action spacers, and pops the head action when its Skip
// budget is spent. The action is resolved outside the lock (sleeps and
// panics must not serialize the registry).
func next(name string) (Action, bool) {
	mu.Lock()
	defer mu.Unlock()
	hits[name]++
	q := schedules[name]
	if len(q) == 0 {
		return Action{}, false
	}
	if q[0].Skip > 0 {
		q[0].Skip--
		return Action{}, false
	}
	a := q[0]
	schedules[name] = q[1:]
	return a, true
}

// Point evaluates the named failpoint: it sleeps through a scheduled
// delay, returns a scheduled error, panics with a scheduled panic
// value, and otherwise passes (returns nil).
func Point(name string) error {
	a, ok := next(name)
	if !ok {
		return nil
	}
	if a.Delay > 0 {
		time.Sleep(a.Delay)
	}
	if a.Panic != nil {
		panic(a.Panic)
	}
	return a.Err
}

// Fire is Point for call sites without an error path (the pool's phase
// submission): scheduled errors panic instead of being returned.
func Fire(name string) {
	if err := Point(name); err != nil {
		panic(err)
	}
}
