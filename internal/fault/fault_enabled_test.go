//go:build faultinject

package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestScheduleFIFO(t *testing.T) {
	defer Reset()
	errA, errB := errors.New("a"), errors.New("b")
	Set("p", Action{Err: errA}, Action{}, Action{Err: errB})
	if err := Point("p"); !errors.Is(err, errA) {
		t.Fatalf("hit 1: %v, want errA", err)
	}
	if err := Point("p"); err != nil {
		t.Fatalf("hit 2 (spacer): %v, want nil", err)
	}
	if err := Point("p"); !errors.Is(err, errB) {
		t.Fatalf("hit 3: %v, want errB", err)
	}
	// Exhausted schedule: pass-through forever.
	for i := 0; i < 5; i++ {
		if err := Point("p"); err != nil {
			t.Fatalf("exhausted hit: %v, want nil", err)
		}
	}
	if n := Hits("p"); n != 8 {
		t.Fatalf("Hits = %d, want 8", n)
	}
}

func TestSkipFiresOnNthHit(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Set("p", Action{Skip: 3, Err: boom})
	for i := 1; i <= 3; i++ {
		if err := Point("p"); err != nil {
			t.Fatalf("hit %d: %v, want pass", i, err)
		}
	}
	if err := Point("p"); !errors.Is(err, boom) {
		t.Fatalf("hit 4: %v, want boom", err)
	}
	if err := Point("p"); err != nil {
		t.Fatalf("hit 5: %v, want pass (consumed)", err)
	}
}

func TestPanicAndFire(t *testing.T) {
	defer Reset()
	Set("p", Action{Panic: "kapow"})
	func() {
		defer func() {
			if r := recover(); r != "kapow" {
				t.Errorf("recover = %v, want kapow", r)
			}
		}()
		_ = Point("p")
	}()
	// Fire turns scheduled errors into panics.
	boom := errors.New("boom")
	Set("q", Action{Err: boom})
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("Fire did not panic on a scheduled error")
			}
		}()
		Fire("q")
	}()
}

func TestDelay(t *testing.T) {
	defer Reset()
	Set("p", Action{Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Point("p"); err != nil {
		t.Fatalf("Point = %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay too short: %v", d)
	}
}

// Unset points must stay cheap and safe under concurrent evaluation
// (they run on every pool task in chaos builds).
func TestConcurrentPassThrough(t *testing.T) {
	defer Reset()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := Point("unset"); err != nil {
					t.Error("unset point returned error")
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := Hits("unset"); n != 8000 {
		t.Fatalf("Hits = %d, want 8000", n)
	}
}
