//go:build faultinject

package fault

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestScheduleFIFO(t *testing.T) {
	defer Reset()
	errA, errB := errors.New("a"), errors.New("b")
	Set("p", Action{Err: errA}, Action{}, Action{Err: errB})
	if err := Point("p"); !errors.Is(err, errA) {
		t.Fatalf("hit 1: %v, want errA", err)
	}
	if err := Point("p"); err != nil {
		t.Fatalf("hit 2 (spacer): %v, want nil", err)
	}
	if err := Point("p"); !errors.Is(err, errB) {
		t.Fatalf("hit 3: %v, want errB", err)
	}
	// Exhausted schedule: pass-through forever.
	for i := 0; i < 5; i++ {
		if err := Point("p"); err != nil {
			t.Fatalf("exhausted hit: %v, want nil", err)
		}
	}
	if n := Hits("p"); n != 8 {
		t.Fatalf("Hits = %d, want 8", n)
	}
}

func TestSkipFiresOnNthHit(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Set("p", Action{Skip: 3, Err: boom})
	for i := 1; i <= 3; i++ {
		if err := Point("p"); err != nil {
			t.Fatalf("hit %d: %v, want pass", i, err)
		}
	}
	if err := Point("p"); !errors.Is(err, boom) {
		t.Fatalf("hit 4: %v, want boom", err)
	}
	if err := Point("p"); err != nil {
		t.Fatalf("hit 5: %v, want pass (consumed)", err)
	}
}

func TestPanicAndFire(t *testing.T) {
	defer Reset()
	Set("p", Action{Panic: "kapow"})
	func() {
		defer func() {
			if r := recover(); r != "kapow" {
				t.Errorf("recover = %v, want kapow", r)
			}
		}()
		_ = Point("p")
	}()
	// Fire turns scheduled errors into panics.
	boom := errors.New("boom")
	Set("q", Action{Err: boom})
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("Fire did not panic on a scheduled error")
			}
		}()
		Fire("q")
	}()
}

func TestDelay(t *testing.T) {
	defer Reset()
	Set("p", Action{Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Point("p"); err != nil {
		t.Fatalf("Point = %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay too short: %v", d)
	}
}

// The shard supervisor evaluates points from its own goroutine while
// every shard incarnation's workers evaluate the same points — and the
// test harness calls Set/Reset between (and, on restarts, effectively
// during) rounds. The registry contract under that contention:
// no data races, and every scheduled action consumed exactly once.
func TestConcurrentSetResetVsFire(t *testing.T) {
	defer Reset()
	const (
		evaluators = 8
		rounds     = 40
	)
	stop := make(chan struct{})
	var consumed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < evaluators; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := Point("stress"); err != nil {
					consumed.Add(1)
				}
				Fire("stress.quiet") // never scheduled: pure pass-through
			}
		}()
	}
	// The scheduler goroutine: re-arm, let the evaluators chew, clear —
	// racing Set and Reset against in-flight Point calls the whole time.
	boom := errors.New("stress")
	for r := 0; r < rounds; r++ {
		Set("stress", Action{Err: boom}, Action{Err: boom}, Action{Err: boom})
		for Hits("stress") < 3 { // spin until the schedule was surely reached
			runtime.Gosched()
		}
		if r%5 == 0 {
			Reset()
		}
	}
	close(stop)
	wg.Wait()
	// Every Set replaces the previous schedule, and Reset may discard
	// unconsumed actions — so consumed is bounded by, not equal to, the
	// scheduled total. The real assertions are the race detector and
	// that consumption never exceeded what was scheduled.
	if got, max := consumed.Load(), int64(rounds*3); got == 0 || got > max {
		t.Fatalf("consumed %d scheduled errors, want (0, %d]", got, max)
	}
}

// FIFO order must survive a concurrent Set: a replaced schedule is
// either the old list or the new one, never an interleaving — observed
// here as a single consumer always seeing the new schedule's actions in
// order after Set returns.
func TestSetReplacesScheduleAtomically(t *testing.T) {
	defer Reset()
	errOld, errNew1, errNew2 := errors.New("old"), errors.New("new1"), errors.New("new2")
	for i := 0; i < 100; i++ {
		Set("p", Action{Err: errOld}, Action{Err: errOld})
		done := make(chan struct{})
		go func() {
			defer close(done)
			Set("p", Action{Err: errNew1}, Action{Err: errNew2})
		}()
		<-done
		if err := Point("p"); !errors.Is(err, errNew1) {
			t.Fatalf("iter %d hit 1: %v, want new1", i, err)
		}
		if err := Point("p"); !errors.Is(err, errNew2) {
			t.Fatalf("iter %d hit 2: %v, want new2", i, err)
		}
		if err := Point("p"); err != nil {
			t.Fatalf("iter %d hit 3: %v, want exhausted pass-through", i, err)
		}
	}
}

// Unset points must stay cheap and safe under concurrent evaluation
// (they run on every pool task in chaos builds).
func TestConcurrentPassThrough(t *testing.T) {
	defer Reset()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := Point("unset"); err != nil {
					t.Error("unset point returned error")
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := Hits("unset"); n != 8000 {
		t.Fatalf("Hits = %d, want 8000", n)
	}
}
