//go:build !faultinject

package fault

import "testing"

// The default build must be inert: every entry point is a pass-through
// regardless of what a (compiled-away) schedule would say.
func TestDisabledIsInert(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the faultinject tag")
	}
	Set("p", Action{Panic: "never"})
	if err := Point("p"); err != nil {
		t.Fatalf("Point = %v, want nil", err)
	}
	Fire("p") // must not panic
	if n := Hits("p"); n != 0 {
		t.Fatalf("Hits = %d, want 0", n)
	}
	Reset()
}
