//go:build !faultinject

package fault

// Enabled reports whether fault injection is compiled in. In the
// default build it is the constant false, so call sites guarded by
// `if fault.Enabled` are eliminated at compile time.
const Enabled = false

// Point is a no-op in the default build.
func Point(name string) error { return nil }

// Fire is a no-op in the default build.
func Fire(name string) {}

// Set is a no-op in the default build.
func Set(name string, actions ...Action) {}

// Reset is a no-op in the default build.
func Reset() {}

// Hits always reports zero in the default build.
func Hits(name string) int { return 0 }
