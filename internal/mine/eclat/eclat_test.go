package eclat

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"twoview/internal/dataset"
	"twoview/internal/itemset"
)

// small builds a 2+2-item dataset whose lattice is easy to verify by hand.
func small(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := dataset.MustNew([]string{"a", "b"}, []string{"p", "q"})
	rows := [][2][]int{
		{{0, 1}, {0}},    // a b | p
		{{0, 1}, {0, 1}}, // a b | p q
		{{0}, {0}},       // a   | p
		{{1}, {1}},       //   b |   q
	}
	for _, r := range rows {
		if err := d.AddRow(r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestMineFrequentAll(t *testing.T) {
	d := small(t)
	fis, err := Mine(context.Background(), d, Options{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{ // joined ids: a=0 b=1 p=2 q=3
		"{0}":       3,
		"{1}":       3,
		"{2}":       3,
		"{3}":       2,
		"{0 1}":     2,
		"{0 2}":     3,
		"{0 3}":     1,
		"{1 2}":     2,
		"{1 3}":     2,
		"{2 3}":     1,
		"{0 1 2}":   2,
		"{0 1 3}":   1,
		"{0 2 3}":   1,
		"{1 2 3}":   1,
		"{0 1 2 3}": 1,
	}
	if len(fis) != len(want) {
		t.Fatalf("got %d itemsets, want %d", len(fis), len(want))
	}
	for _, fi := range fis {
		if want[fi.Items.String()] != fi.Supp {
			t.Errorf("%v: supp=%d, want %d", fi.Items, fi.Supp, want[fi.Items.String()])
		}
		if fi.Tids.Count() != fi.Supp {
			t.Errorf("%v: tids count %d != supp %d", fi.Items, fi.Tids.Count(), fi.Supp)
		}
	}
}

func TestMineMinSupport(t *testing.T) {
	d := small(t)
	fis, err := Mine(context.Background(), d, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, fi := range fis {
		if fi.Supp < 2 {
			t.Errorf("%v has supp %d < 2", fi.Items, fi.Supp)
		}
	}
	// {0} {1} {2} {3} {0 1} {0 2} {1 2} {1 3} {0 1 2}
	if len(fis) != 9 {
		t.Fatalf("got %d itemsets with minsup 2, want 9", len(fis))
	}
}

func TestMineTwoViewFilter(t *testing.T) {
	d := small(t)
	fis, err := Mine(context.Background(), d, Options{MinSupport: 1, TwoView: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, fi := range fis {
		x, y := Split(fi.Items, d.Items(dataset.Left))
		if x.Empty() || y.Empty() {
			t.Errorf("%v is not a two-view itemset", fi.Items)
		}
	}
	// All 15 minus the 3 pure-left ({0},{1},{0 1}) and 3 pure-right.
	if len(fis) != 9 {
		t.Fatalf("got %d two-view itemsets, want 9", len(fis))
	}
}

func TestMineClosedSmall(t *testing.T) {
	d := small(t)
	fis, err := Mine(context.Background(), d, Options{MinSupport: 1, Closed: true})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, fi := range fis {
		if _, dup := got[fi.Items.String()]; dup {
			t.Fatalf("duplicate closed itemset %v", fi.Items)
		}
		got[fi.Items.String()] = fi.Supp
	}
	want := bruteForceClosed(d, 1)
	if len(got) != len(want) {
		t.Fatalf("closed sets: got %v want %v", got, want)
	}
	for k, s := range want {
		if got[k] != s {
			t.Errorf("closed %s: supp %d, want %d", k, got[k], s)
		}
	}
}

func TestMaxItems(t *testing.T) {
	d := small(t)
	fis, err := Mine(context.Background(), d, Options{MinSupport: 1, MaxItems: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, fi := range fis {
		if len(fi.Items) > 2 {
			t.Errorf("%v exceeds MaxItems", fi.Items)
		}
	}
	if len(fis) != 10 {
		t.Fatalf("got %d itemsets, want 10", len(fis))
	}
}

func TestMaxResults(t *testing.T) {
	d := small(t)
	if _, err := Mine(context.Background(), d, Options{MinSupport: 1, MaxResults: 3}); err == nil {
		t.Fatal("expected explosion error")
	}
}

func TestSplit(t *testing.T) {
	x, y := Split(itemset.New(0, 2, 5), 3)
	if !x.Equal(itemset.New(0, 2)) || !y.Equal(itemset.New(2)) {
		t.Fatalf("Split = %v / %v", x, y)
	}
	x, y = Split(nil, 3)
	if x != nil || y != nil {
		t.Fatal("Split(nil) should be nil/nil")
	}
}

// The parallel walk must return the exact same itemsets, supports and
// tidsets, in the same order, for every worker count and option mix.
func TestMineParallelDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		d := randomDataset(r)
		for _, opt := range []Options{
			{MinSupport: 1},
			{MinSupport: 2, Closed: true},
			{MinSupport: 1, Closed: true, TwoView: true},
			{MinSupport: 1, MaxItems: 3},
		} {
			opt.Workers = 1
			serial, err := Mine(context.Background(), d, opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 7} {
				opt.Workers = workers
				par, err := Mine(context.Background(), d, opt)
				if err != nil {
					t.Fatal(err)
				}
				if len(par) != len(serial) {
					t.Fatalf("trial %d workers=%d opts=%+v: %d itemsets, serial %d",
						trial, workers, opt, len(par), len(serial))
				}
				for i := range serial {
					if !par[i].Items.Equal(serial[i].Items) || par[i].Supp != serial[i].Supp ||
						!par[i].Tids.Equal(serial[i].Tids) {
						t.Fatalf("trial %d workers=%d: itemset %d differs", trial, workers, i)
					}
				}
			}
		}
	}
}

// The MaxResults overflow must trip for every worker count (the emission
// counter is global, so success/failure is schedule-independent).
func TestMaxResultsParallel(t *testing.T) {
	d := small(t)
	for _, workers := range []int{1, 2, 4, 7} {
		if _, err := Mine(context.Background(), d, Options{MinSupport: 1, MaxResults: 3, Workers: workers}); err == nil {
			t.Fatalf("workers=%d: expected explosion error", workers)
		}
		// A cap the output fits under must never trip.
		fis, err := Mine(context.Background(), d, Options{MinSupport: 1, MaxResults: 100, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(fis) != 15 {
			t.Fatalf("workers=%d: %d itemsets, want 15", workers, len(fis))
		}
	}
}

func TestSortOrderDeterministic(t *testing.T) {
	d := small(t)
	a, _ := Mine(context.Background(), d, Options{MinSupport: 1})
	b, _ := Mine(context.Background(), d, Options{MinSupport: 1})
	for i := range a {
		if !a[i].Items.Equal(b[i].Items) {
			t.Fatal("mining is not deterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Supp > a[i-1].Supp {
			t.Fatal("output not sorted by support desc")
		}
	}
}

// --- brute-force references ---

// enumerate all subsets of the joined alphabet (small m), returning
// support by itemset string.
func bruteForceFrequent(d *dataset.Dataset, minsup int) map[string]int {
	nL, nR := d.Items(dataset.Left), d.Items(dataset.Right)
	m := nL + nR
	out := map[string]int{}
	for mask := 1; mask < 1<<m; mask++ {
		var is itemset.Itemset
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				is = append(is, i)
			}
		}
		supp := jointSupport(d, is, nL)
		if supp >= minsup {
			out[is.String()] = supp
		}
	}
	return out
}

func jointSupport(d *dataset.Dataset, is itemset.Itemset, nL int) int {
	x, y := Split(is, nL)
	return d.JointSupportSet(x, y).Count()
}

func bruteForceClosed(d *dataset.Dataset, minsup int) map[string]int {
	freq := bruteForceFrequent(d, minsup)
	type entry struct {
		is   itemset.Itemset
		supp int
	}
	var all []entry
	for k, s := range freq {
		all = append(all, entry{parseSet(k), s})
	}
	out := map[string]int{}
	for _, e := range all {
		closed := true
		for _, o := range all {
			if o.supp == e.supp && len(o.is) > len(e.is) && e.is.SubsetOf(o.is) {
				closed = false
				break
			}
		}
		if closed {
			out[e.is.String()] = e.supp
		}
	}
	return out
}

func parseSet(s string) itemset.Itemset {
	var out itemset.Itemset
	num := -1
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			if num < 0 {
				num = 0
			}
			num = num*10 + int(r-'0')
		default:
			if num >= 0 {
				out = append(out, num)
				num = -1
			}
		}
	}
	sort.Ints(out)
	return out
}

func randomDataset(r *rand.Rand) *dataset.Dataset {
	nL, nR := 1+r.Intn(4), 1+r.Intn(4)
	d := dataset.MustNew(dataset.GenericNames("l", nL), dataset.GenericNames("r", nR))
	n := 1 + r.Intn(25)
	for i := 0; i < n; i++ {
		var left, right []int
		for j := 0; j < nL; j++ {
			if r.Intn(2) == 0 {
				left = append(left, j)
			}
		}
		for j := 0; j < nR; j++ {
			if r.Intn(2) == 0 {
				right = append(right, j)
			}
		}
		d.AddRow(left, right)
	}
	return d
}

func TestQuickFrequentMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minsup := 1 + r.Intn(3)
		fis, err := Mine(context.Background(), d, Options{MinSupport: minsup})
		if err != nil {
			return false
		}
		want := bruteForceFrequent(d, minsup)
		if len(fis) != len(want) {
			return false
		}
		for _, fi := range fis {
			if want[fi.Items.String()] != fi.Supp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickClosedMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		minsup := 1 + r.Intn(3)
		fis, err := Mine(context.Background(), d, Options{MinSupport: minsup, Closed: true})
		if err != nil {
			return false
		}
		want := bruteForceClosed(d, minsup)
		seen := map[string]bool{}
		for _, fi := range fis {
			key := fi.Items.String()
			if seen[key] {
				return false // duplicate emission
			}
			seen[key] = true
			if want[key] != fi.Supp {
				return false
			}
		}
		return len(seen) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
