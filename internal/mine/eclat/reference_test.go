package eclat

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"twoview/internal/bitset"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
)

// This file pins the free-list/scratch-reuse walk to the seed
// implementation: referenceMine is the pre-recycling walk (fresh
// allocations per node, no tidset reuse, no in-place itemset edits),
// kept verbatim as an executable specification. The property tests
// require the recycled walk to emit exactly the same FI sequence —
// order included — on random datasets.

// referenceMine mirrors Mine with the seed allocation behavior, serial.
func referenceMine(d *dataset.Dataset, opt Options) ([]FI, error) {
	if opt.MinSupport < 1 {
		opt.MinSupport = 1
	}
	nL := d.Items(dataset.Left)
	m := nL + d.Items(dataset.Right)
	cols := make([]*bitset.Set, m)
	for i, c := range d.Columns(dataset.Left) {
		cols[i] = c
	}
	for i, c := range d.Columns(dataset.Right) {
		cols[nL+i] = c
	}
	var freq []int
	for i := 0; i < m; i++ {
		if cols[i].Count() >= opt.MinSupport {
			freq = append(freq, i)
		}
	}
	sort.Slice(freq, func(a, b int) bool {
		ca, cb := cols[freq[a]].Count(), cols[freq[b]].Count()
		if ca != cb {
			return ca < cb
		}
		return freq[a] < freq[b]
	})
	r := &refMiner{d: d, opt: opt, nLeft: nL, cols: cols, order: freq}
	all := bitset.New(d.Size())
	all.Fill()
	for k := range r.order {
		if err := r.branch(nil, all, k); err != nil {
			return nil, err
		}
	}
	sort.Slice(r.out, func(a, b int) bool {
		if r.out[a].Supp != r.out[b].Supp {
			return r.out[a].Supp > r.out[b].Supp
		}
		return itemset.Compare(r.out[a].Items, r.out[b].Items) < 0
	})
	return r.out, nil
}

type refMiner struct {
	d     *dataset.Dataset
	opt   Options
	nLeft int
	cols  []*bitset.Set
	order []int
	out   []FI
}

func (m *refMiner) branch(cur itemset.Itemset, tids *bitset.Set, k int) error {
	it := m.order[k]
	if cur.Contains(it) {
		return nil
	}
	child := bitset.New(m.d.Size())
	bitset.IntersectInto(child, tids, m.cols[it])
	supp := child.Count()
	if supp < m.opt.MinSupport {
		return nil
	}
	cand := refInsert(cur, it)
	if m.opt.MaxItems > 0 && len(cand) > m.opt.MaxItems {
		return nil
	}
	next, emit := cand, cand
	if m.opt.Closed {
		closure, ok := m.closure(cand, child, k)
		if !ok {
			return nil
		}
		next, emit = closure, closure
		if m.opt.MaxItems > 0 && len(emit) > m.opt.MaxItems {
			emit = nil
		}
	}
	if emit != nil && (!m.opt.TwoView || len(emit) >= 2 && emit[0] < m.nLeft && emit[len(emit)-1] >= m.nLeft) {
		fi := FI{Items: emit, Supp: supp}
		if !m.opt.DropTids {
			fi.Tids = child
		}
		m.out = append(m.out, fi)
		if m.opt.MaxResults > 0 && len(m.out) > m.opt.MaxResults {
			return errRefOverflow
		}
	}
	for j := k + 1; j < len(m.order); j++ {
		if err := m.branch(next, child, j); err != nil {
			return err
		}
	}
	return nil
}

func (m *refMiner) closure(cur itemset.Itemset, tids *bitset.Set, k int) (itemset.Itemset, bool) {
	closure := cur
	for r, it := range m.order {
		if cur.Contains(it) {
			continue
		}
		if tids.SubsetOf(m.cols[it]) {
			if r < k {
				return nil, false
			}
			closure = refInsert(closure, it)
		}
	}
	return closure, true
}

func refInsert(s itemset.Itemset, x int) itemset.Itemset {
	i := sort.SearchInts(s, x)
	out := make(itemset.Itemset, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, x)
	return append(out, s[i:]...)
}

type refOverflow struct{}

func (refOverflow) Error() string { return "reference overflow" }

var errRefOverflow = refOverflow{}

// sameFIs requires bit-identical output sequences: itemsets, supports,
// tidsets, in the same order.
func sameFIs(t *testing.T, got, want []FI, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d itemsets, reference %d", ctx, len(got), len(want))
	}
	for i := range want {
		if !got[i].Items.Equal(want[i].Items) || got[i].Supp != want[i].Supp {
			t.Fatalf("%s: itemset %d = %v/%d, reference %v/%d",
				ctx, i, got[i].Items, got[i].Supp, want[i].Items, want[i].Supp)
		}
		switch {
		case want[i].Tids == nil:
			if got[i].Tids != nil {
				t.Fatalf("%s: itemset %d has tids under DropTids", ctx, i)
			}
		case got[i].Tids == nil || !got[i].Tids.Equal(want[i].Tids):
			t.Fatalf("%s: itemset %d tidset differs", ctx, i)
		}
	}
}

// The recycled walk must emit exactly the reference FI sequence on
// random datasets, for every option mix and worker count.
func TestRecyclingMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		d := randomDataset(r)
		for _, opt := range []Options{
			{MinSupport: 1},
			{MinSupport: 2},
			{MinSupport: 1, Closed: true},
			{MinSupport: 1, Closed: true, TwoView: true},
			{MinSupport: 1, Closed: true, TwoView: true, DropTids: true},
			{MinSupport: 1, MaxItems: 2},
			{MinSupport: 1, Closed: true, MaxItems: 2},
		} {
			want, refErr := referenceMine(d, opt)
			if refErr != nil {
				t.Fatal(refErr)
			}
			for _, workers := range []int{1, 2, 4, 7} {
				opt.Workers = workers
				got, err := Mine(context.Background(), d, opt)
				if err != nil {
					t.Fatalf("trial %d workers %d: %v", trial, workers, err)
				}
				sameFIs(t, got, want, "trial/workers mix")
			}
		}
	}
}

// quick.Check property: for arbitrary seeds, closed two-view mining
// with recycling equals the seed implementation, order included.
func TestQuickRecyclingMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		opt := Options{MinSupport: 1 + r.Intn(3), Closed: r.Intn(2) == 0,
			TwoView: r.Intn(2) == 0, MaxItems: r.Intn(4)}
		want, err := referenceMine(d, opt)
		if err != nil {
			return false
		}
		opt.Workers = 1 + r.Intn(4)
		got, err := Mine(context.Background(), d, opt)
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if !got[i].Items.Equal(want[i].Items) || got[i].Supp != want[i].Supp {
				return false
			}
			if (got[i].Tids == nil) != (want[i].Tids == nil) {
				return false
			}
			if want[i].Tids != nil && !got[i].Tids.Equal(want[i].Tids) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// DropTids must change nothing but the Tids fields, and must leave the
// free-list actually recycling (no retained tidsets at all).
func TestDropTids(t *testing.T) {
	d := small(t)
	with, err := Mine(context.Background(), d, Options{MinSupport: 1, Closed: true, TwoView: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Mine(context.Background(), d, Options{MinSupport: 1, Closed: true, TwoView: true, DropTids: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(with) != len(without) {
		t.Fatalf("%d vs %d itemsets", len(with), len(without))
	}
	for i := range with {
		if !with[i].Items.Equal(without[i].Items) || with[i].Supp != without[i].Supp {
			t.Fatalf("itemset %d differs under DropTids", i)
		}
		if without[i].Tids != nil {
			t.Fatalf("itemset %d retains tids under DropTids", i)
		}
		if with[i].Tids == nil || with[i].Tids.Count() != with[i].Supp {
			t.Fatalf("itemset %d lost its tids without DropTids", i)
		}
	}
}
