// Package eclat mines frequent and closed frequent itemsets over the
// joined alphabet of a two-view dataset using depth-first tidset
// intersection (the ECLAT algorithm of Zaki et al.), with a
// prefix-preserving closure extension for closed itemsets. It provides the
// candidate sets used by TRANSLATOR-SELECT and TRANSLATOR-GREEDY: closed
// frequent *two-view* itemsets, i.e. itemsets with items from both views
// (§5.3 of the paper).
//
// The walk parallelizes over the top-level branches of the search tree
// (one branch per frequent item, in the global search order) on the
// internal/pool worker pool: within one call the columns, search order
// and closure structures are read-only, every worker collects its own
// output slice, and the final support-descending sort is a total order,
// so the mined set is bit-identical for every worker count. The
// MaxResults overflow guard counts emissions through a shared
// pool.Counter; it trips in every schedule iff the total number of
// results exceeds the cap, so success/failure is deterministic too.
//
// The walk is allocation-free in steady state: each worker recycles the
// tidsets of non-emitted nodes through a bitset.FreeList and builds
// candidate itemsets in per-depth scratch buffers, so the only
// allocations that survive warm-up are the emitted results themselves
// (and none at all under DropTids). Emitted tidsets and itemsets are
// caller-owned and never recycled.
package eclat

import (
	"context"
	"fmt"
	"sort"

	"twoview/internal/bitset"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/pool"
)

// FI is a mined frequent itemset over the joined alphabet: left items keep
// their ids, right items are offset by |I_L|.
type FI struct {
	Items itemset.Itemset // joined ids, canonical
	Supp  int             // |supp(Items)| over the joined data
	Tids  *bitset.Set     // supporting transactions (nil under DropTids)
}

// Split separates a joined itemset into its left and right parts, undoing
// the offset.
func Split(joined itemset.Itemset, nLeft int) (x, y itemset.Itemset) {
	for _, i := range joined {
		if i < nLeft {
			x = append(x, i)
		} else {
			y = append(y, i-nLeft)
		}
	}
	return x, y
}

// SplitInPlace is Split without the allocations: x aliases the left half
// of joined (capacity-capped) and y its right half with the offset
// removed by mutating joined. The caller must own joined and not use it
// afterwards.
func SplitInPlace(joined itemset.Itemset, nLeft int) (x, y itemset.Itemset) {
	split := sort.SearchInts(joined, nLeft)
	x, y = joined[:split:split], joined[split:]
	for k := range y {
		y[k] -= nLeft
	}
	return x, y
}

// Options configures mining.
type Options struct {
	// MinSupport is the minimal absolute support; values < 1 are
	// treated as 1 (every itemset must occur).
	MinSupport int
	// Closed restricts output to closed itemsets (no superset with the
	// same support).
	Closed bool
	// TwoView keeps only itemsets with at least one item in each view.
	TwoView bool
	// MaxItems bounds the itemset size; 0 means unbounded.
	MaxItems int
	// MaxResults aborts mining with an error when exceeded; it protects
	// against accidental pattern explosions. 0 means unbounded.
	MaxResults int
	// DropTids omits the supporting tidsets from the results (FI.Tids
	// is nil). Callers that only need the itemsets and supports — the
	// candidate mine derives per-view tidsets separately — should set
	// it: every walk tidset then recycles through the free-list and the
	// mine allocates almost nothing beyond the output itself.
	DropTids bool
	// Workers sets the worker-pool size for the tidset-intersection
	// walk: 0 means GOMAXPROCS, 1 disables parallelism. The mined set
	// is identical for any value.
	Workers int
	// Runtime is the persistent worker runtime to run the walk on; nil
	// means the shared pool.Default runtime.
	Runtime *pool.Runtime
}

// walk is everything the depth-first search reads but never writes: it is
// shared by all workers of one Mine call.
type walk struct {
	d       *dataset.Dataset
	ctx     context.Context
	opt     Options
	nLeft   int
	cols    []*bitset.Set
	order   []int         // frequent items in search order
	emitted *pool.Counter // MaxResults accounting across workers
}

// ctxProbeMask gates the in-branch cancellation probe: one ctx.Err()
// call per 1024 visited nodes, so a single huge top-level branch still
// observes cancellation promptly while the steady-state walk pays one
// counter increment and mask per node.
const ctxProbeMask = 1<<10 - 1

// Mine returns the (closed) frequent itemsets of the joined views of d
// under the given options, sorted by decreasing support with a
// deterministic tie-break.
//
// Cancelling ctx aborts the walk between branches (and, within a
// branch, at the next node probe) and returns ctx.Err(); the partial
// output is discarded. With an uncancelled context the mined set is
// bit-identical for every worker count, exactly as before.
func Mine(ctx context.Context, d *dataset.Dataset, opt Options) ([]FI, error) {
	if opt.MinSupport < 1 {
		opt.MinSupport = 1
	}
	nL := d.Items(dataset.Left)
	m := nL + d.Items(dataset.Right)

	cols := make([]*bitset.Set, m)
	for i, c := range d.Columns(dataset.Left) {
		cols[i] = c
	}
	for i, c := range d.Columns(dataset.Right) {
		cols[nL+i] = c
	}

	// Frequent single items, in ascending support order: extending by
	// rarer items first keeps tidsets small early (standard ECLAT
	// heuristic) while remaining deterministic.
	var freq []int
	for i := 0; i < m; i++ {
		if cols[i].Count() >= opt.MinSupport {
			freq = append(freq, i)
		}
	}
	sort.Slice(freq, func(a, b int) bool {
		ca, cb := cols[freq[a]].Count(), cols[freq[b]].Count()
		if ca != cb {
			return ca < cb
		}
		return freq[a] < freq[b]
	})
	w := &walk{d: d, ctx: ctx, opt: opt, nLeft: nL, cols: cols, order: freq,
		emitted: new(pool.Counter)}

	all := bitset.New(d.Size())
	all.Fill()

	// One task per top-level branch, dynamically scheduled (branch sizes
	// are heavily skewed toward the rare early items); each worker
	// appends to its own miner.out and recycles through its own
	// free-list.
	workers := pool.Size(opt.Workers, len(w.order))
	p := pool.NewOn(opt.Runtime, workers, func(int) *miner { return &miner{walk: w} })
	err := p.RunErrCtx(ctx, len(w.order), func(mi *miner, k int) error {
		return mi.branch(nil, all, k, 0)
	})
	if err != nil {
		return nil, err
	}

	total := 0
	for _, mi := range p.States() {
		total += len(mi.out)
	}
	out := make([]FI, 0, total)
	for _, mi := range p.States() {
		out = append(out, mi.out...)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Supp != out[b].Supp {
			return out[a].Supp > out[b].Supp
		}
		return itemset.Compare(out[a].Items, out[b].Items) < 0
	})
	return out, nil
}

// miner is one worker's share of the walk: the shared read-only
// structures plus a private output slice and private recycling scratch
// (the free-list of node tidsets and the per-depth itemset buffers).
type miner struct {
	*walk
	out []FI

	free  bitset.FreeList   // tidsets of non-emitted nodes, recycled
	sets  []itemset.Itemset // per-depth candidate/closure scratch
	ticks uint              // node counter driving the periodic ctx probe
}

// scratch returns the (emptied) itemset buffer of the given depth,
// allocating only when the walk goes deeper than ever before on this
// worker.
func (m *miner) scratch(depth int) itemset.Itemset {
	for len(m.sets) <= depth {
		m.sets = append(m.sets, nil)
	}
	return m.sets[depth][:0]
}

// dfs grows the current itemset (cur, with tidset tids) by items at order
// positions ≥ start. depth is the recursion level, used to select the
// per-depth scratch buffers.
func (m *miner) dfs(cur itemset.Itemset, tids *bitset.Set, start, depth int) error {
	for k := start; k < len(m.order); k++ {
		if err := m.branch(cur, tids, k, depth); err != nil {
			return err
		}
	}
	return nil
}

// branch extends the current itemset (cur, with tidset tids) by the item
// at order position k and recurses into positions > k. For closed mining
// it applies the prefix-preserving closure test: the closure of the
// extension must not contain any item that precedes the generating item
// in the search order, otherwise the branch duplicates an
// already-explored closed set.
//
// Scratch discipline: the extended itemset lives in this depth's scratch
// buffer (siblings at the same depth overwrite it only after the subtree
// below has returned) and the child tidset comes from the worker's
// free-list. Both are cloned, or handed over, only on emission —
// everything else recycles, so the steady-state walk does not allocate.
func (m *miner) branch(cur itemset.Itemset, tids *bitset.Set, k, depth int) error {
	if m.ticks++; m.ticks&ctxProbeMask == 0 {
		if err := m.ctx.Err(); err != nil {
			return err
		}
	}
	it := m.order[k]
	if cur.Contains(it) {
		return nil // already absorbed by a closure on this path
	}
	// The child tidset is fully overwritten by the intersection, so a
	// recycled set needs no clearing.
	child := m.free.Get(m.d.Size())
	bitset.IntersectInto(child, tids, m.cols[it])
	supp := child.Count()
	if supp < m.opt.MinSupport {
		m.free.Put(child)
		return nil
	}
	cand := insertSortedInto(m.scratch(depth), cur, it)
	if m.opt.MaxItems > 0 && len(cand) > m.opt.MaxItems {
		m.sets[depth] = cand
		m.free.Put(child)
		return nil
	}
	next := cand
	emit := cand
	if m.opt.Closed {
		closure, ok := m.closure(cand, child, k)
		if !ok {
			// Non-canonical: an item preceding position k closes
			// cand, so this branch (and every extension, whose
			// closure would contain that item too) duplicates an
			// already-explored closed set.
			m.sets[depth] = cand
			m.free.Put(child)
			return nil
		}
		next, emit = closure, closure
		if m.opt.MaxItems > 0 && len(emit) > m.opt.MaxItems {
			emit = nil // closure outgrew the bound; recurse only
		}
	}
	m.sets[depth] = next // remember grown capacity for reuse
	retained := false
	if emit != nil && (!m.opt.TwoView || m.isTwoView(emit)) {
		fi := FI{Items: emit.Clone(), Supp: supp}
		if !m.opt.DropTids {
			fi.Tids = child
			retained = true
		}
		m.out = append(m.out, fi)
		if m.opt.MaxResults > 0 && int(m.emitted.Add()) > m.opt.MaxResults {
			return fmt.Errorf("eclat: more than %d itemsets; raise MinSupport", m.opt.MaxResults)
		}
	}
	err := m.dfs(next, child, k+1, depth+1)
	if !retained {
		//lint:freelistown-ok retained is set exactly when fi.Tids captured child, so this Put never recycles an emitted tidset
		m.free.Put(child)
	}
	return err
}

// closure extends cur in place with every item whose tidset is a superset
// of tids. ok is false when some such item precedes position k in the
// search order without being in cur (the ppc test). cur must live in the
// caller's scratch buffer; the returned slice is the (possibly regrown)
// same buffer.
func (m *miner) closure(cur itemset.Itemset, tids *bitset.Set, k int) (itemset.Itemset, bool) {
	// Each order position is visited once, so testing Contains against
	// the growing set is equivalent to testing against the original cur:
	// an item added by this loop is never revisited.
	for r, it := range m.order {
		if cur.Contains(it) {
			continue
		}
		if tids.SubsetOf(m.cols[it]) {
			if r < k {
				return nil, false
			}
			cur = insertInPlace(cur, it)
		}
	}
	return cur, true
}

func (m *miner) isTwoView(s itemset.Itemset) bool {
	return len(s) >= 2 && s[0] < m.nLeft && s[len(s)-1] >= m.nLeft
}

// insertSortedInto writes s ∪ {x} into dst (which must be empty and must
// not alias s), reusing dst's capacity.
func insertSortedInto(dst, s itemset.Itemset, x int) itemset.Itemset {
	i := sort.SearchInts(s, x)
	dst = append(dst, s[:i]...)
	dst = append(dst, x)
	return append(dst, s[i:]...)
}

// insertInPlace inserts x into the sorted set s, shifting the tail right;
// it allocates only when s must grow beyond its capacity.
func insertInPlace(s itemset.Itemset, x int) itemset.Itemset {
	i := sort.SearchInts(s, x)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}
