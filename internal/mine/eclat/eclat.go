// Package eclat mines frequent and closed frequent itemsets over the
// joined alphabet of a two-view dataset using depth-first tidset
// intersection (the ECLAT algorithm of Zaki et al.), with a
// prefix-preserving closure extension for closed itemsets. It provides the
// candidate sets used by TRANSLATOR-SELECT and TRANSLATOR-GREEDY: closed
// frequent *two-view* itemsets, i.e. itemsets with items from both views
// (§5.3 of the paper).
//
// The walk parallelizes over the top-level branches of the search tree
// (one branch per frequent item, in the global search order) on the
// internal/pool worker pool: within one call the columns, search order
// and closure structures are read-only, every worker collects its own
// output slice, and the final support-descending sort is a total order,
// so the mined set is bit-identical for every worker count. The
// MaxResults overflow guard counts emissions through a shared
// pool.Counter; it trips in every schedule iff the total number of
// results exceeds the cap, so success/failure is deterministic too.
package eclat

import (
	"fmt"
	"sort"

	"twoview/internal/bitset"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
	"twoview/internal/pool"
)

// FI is a mined frequent itemset over the joined alphabet: left items keep
// their ids, right items are offset by |I_L|.
type FI struct {
	Items itemset.Itemset // joined ids, canonical
	Supp  int             // |supp(Items)| over the joined data
	Tids  *bitset.Set     // supporting transactions
}

// Split separates a joined itemset into its left and right parts, undoing
// the offset.
func Split(joined itemset.Itemset, nLeft int) (x, y itemset.Itemset) {
	for _, i := range joined {
		if i < nLeft {
			x = append(x, i)
		} else {
			y = append(y, i-nLeft)
		}
	}
	return x, y
}

// Options configures mining.
type Options struct {
	// MinSupport is the minimal absolute support; values < 1 are
	// treated as 1 (every itemset must occur).
	MinSupport int
	// Closed restricts output to closed itemsets (no superset with the
	// same support).
	Closed bool
	// TwoView keeps only itemsets with at least one item in each view.
	TwoView bool
	// MaxItems bounds the itemset size; 0 means unbounded.
	MaxItems int
	// MaxResults aborts mining with an error when exceeded; it protects
	// against accidental pattern explosions. 0 means unbounded.
	MaxResults int
	// Workers sets the worker-pool size for the tidset-intersection
	// walk: 0 means GOMAXPROCS, 1 disables parallelism. The mined set
	// is identical for any value.
	Workers int
}

// walk is everything the depth-first search reads but never writes: it is
// shared by all workers of one Mine call.
type walk struct {
	d       *dataset.Dataset
	opt     Options
	nLeft   int
	cols    []*bitset.Set
	order   []int         // frequent items in search order
	emitted *pool.Counter // MaxResults accounting across workers
}

// Mine returns the (closed) frequent itemsets of the joined views of d
// under the given options, sorted by decreasing support with a
// deterministic tie-break.
func Mine(d *dataset.Dataset, opt Options) ([]FI, error) {
	if opt.MinSupport < 1 {
		opt.MinSupport = 1
	}
	nL := d.Items(dataset.Left)
	m := nL + d.Items(dataset.Right)

	cols := make([]*bitset.Set, m)
	for i, c := range d.Columns(dataset.Left) {
		cols[i] = c
	}
	for i, c := range d.Columns(dataset.Right) {
		cols[nL+i] = c
	}

	// Frequent single items, in ascending support order: extending by
	// rarer items first keeps tidsets small early (standard ECLAT
	// heuristic) while remaining deterministic.
	var freq []int
	for i := 0; i < m; i++ {
		if cols[i].Count() >= opt.MinSupport {
			freq = append(freq, i)
		}
	}
	sort.Slice(freq, func(a, b int) bool {
		ca, cb := cols[freq[a]].Count(), cols[freq[b]].Count()
		if ca != cb {
			return ca < cb
		}
		return freq[a] < freq[b]
	})
	w := &walk{d: d, opt: opt, nLeft: nL, cols: cols, order: freq,
		emitted: new(pool.Counter)}

	all := bitset.New(d.Size())
	all.Fill()

	// One task per top-level branch, dynamically scheduled (branch sizes
	// are heavily skewed toward the rare early items); each worker
	// appends to its own miner.out.
	workers := pool.Size(opt.Workers, len(w.order))
	p := pool.New(workers, func(int) *miner { return &miner{walk: w} })
	err := p.RunErr(len(w.order), func(mi *miner, k int) error {
		return mi.branch(nil, all, k)
	})
	if err != nil {
		return nil, err
	}

	var out []FI
	for _, mi := range p.States() {
		out = append(out, mi.out...)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Supp != out[b].Supp {
			return out[a].Supp > out[b].Supp
		}
		return itemset.Compare(out[a].Items, out[b].Items) < 0
	})
	return out, nil
}

// miner is one worker's share of the walk: the shared read-only
// structures plus a private output slice.
type miner struct {
	*walk
	out []FI
}

// dfs grows the current itemset (cur, with tidset tids) by items at order
// positions ≥ start.
func (m *miner) dfs(cur itemset.Itemset, tids *bitset.Set, start int) error {
	for k := start; k < len(m.order); k++ {
		if err := m.branch(cur, tids, k); err != nil {
			return err
		}
	}
	return nil
}

// branch extends the current itemset (cur, with tidset tids) by the item
// at order position k and recurses into positions > k. For closed mining
// it applies the prefix-preserving closure test: the closure of the
// extension must not contain any item that precedes the generating item
// in the search order, otherwise the branch duplicates an
// already-explored closed set.
func (m *miner) branch(cur itemset.Itemset, tids *bitset.Set, k int) error {
	it := m.order[k]
	if cur.Contains(it) {
		return nil // already absorbed by a closure on this path
	}
	child := bitset.New(m.d.Size())
	bitset.IntersectInto(child, tids, m.cols[it])
	supp := child.Count()
	if supp < m.opt.MinSupport {
		return nil
	}
	cand := insertSorted(cur, it)
	if m.opt.MaxItems > 0 && len(cand) > m.opt.MaxItems {
		return nil
	}
	next := cand
	emit := cand
	if m.opt.Closed {
		closure, ok := m.closure(cand, child, k)
		if !ok {
			// Non-canonical: an item preceding position k closes
			// cand, so this branch (and every extension, whose
			// closure would contain that item too) duplicates an
			// already-explored closed set.
			return nil
		}
		next, emit = closure, closure
		if m.opt.MaxItems > 0 && len(emit) > m.opt.MaxItems {
			emit = nil // closure outgrew the bound; recurse only
		}
	}
	if emit != nil && (!m.opt.TwoView || m.isTwoView(emit)) {
		m.out = append(m.out, FI{Items: emit, Supp: supp, Tids: child})
		if m.opt.MaxResults > 0 && int(m.emitted.Add()) > m.opt.MaxResults {
			return fmt.Errorf("eclat: more than %d itemsets; raise MinSupport", m.opt.MaxResults)
		}
	}
	return m.dfs(next, child, k+1)
}

// closure returns cur extended with every item whose tidset is a superset
// of tids. ok is false when some such item precedes position k in the
// search order without being in cur (the ppc test).
func (m *miner) closure(cur itemset.Itemset, tids *bitset.Set, k int) (itemset.Itemset, bool) {
	closure := cur
	for r, it := range m.order {
		if cur.Contains(it) {
			continue
		}
		if tids.SubsetOf(m.cols[it]) {
			if r < k {
				return nil, false
			}
			closure = insertSorted(closure, it)
		}
	}
	return closure, true
}

func (m *miner) isTwoView(s itemset.Itemset) bool {
	return len(s) >= 2 && s[0] < m.nLeft && s[len(s)-1] >= m.nLeft
}

func insertSorted(s itemset.Itemset, x int) itemset.Itemset {
	i := sort.SearchInts(s, x)
	out := make(itemset.Itemset, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, x)
	return append(out, s[i:]...)
}
