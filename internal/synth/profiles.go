package synth

import "fmt"

// Profiles returns the fourteen dataset profiles calibrated to Table 1 of
// the paper: the same |D|, |I_L|, |I_R| and densities d_L, d_R. Planted
// rule counts are chosen roughly proportional to the table sizes the
// paper's TRANSLATOR-SELECT(1) discovers (Table 2), so the synthetic
// analogues carry a comparable amount of cross-view structure. MinSupport
// mirrors the per-dataset candidate thresholds of Table 2's lower half.
func Profiles() []Profile {
	return []Profile{
		// --- Table 2, top half: exact search feasible, minsup = 1 ---
		{Name: "abalone", Size: 4177, ItemsL: 27, ItemsR: 31,
			DensityL: 0.185, DensityR: 0.129,
			BidirRules: 10, UniRules: 12, Seed: 101, Small: true},
		{Name: "car", Size: 1728, ItemsL: 15, ItemsR: 10,
			DensityL: 0.267, DensityR: 0.300,
			BidirRules: 3, UniRules: 4, Seed: 102, Small: true},
		{Name: "chesskrvk", Size: 28056, ItemsL: 24, ItemsR: 34,
			DensityL: 0.167, DensityR: 0.088,
			BidirRules: 16, UniRules: 20, Seed: 103, Small: true},
		{Name: "nursery", Size: 12960, ItemsL: 19, ItemsR: 13,
			DensityL: 0.263, DensityR: 0.308,
			BidirRules: 4, UniRules: 6, Seed: 104, Small: true},
		{Name: "tictactoe", Size: 958, ItemsL: 15, ItemsR: 14,
			DensityL: 0.333, DensityR: 0.357,
			BidirRules: 8, UniRules: 10, Seed: 105, Small: true},
		{Name: "wine", Size: 178, ItemsL: 35, ItemsR: 33,
			DensityL: 0.200, DensityR: 0.212,
			BidirRules: 6, UniRules: 8, Seed: 106, Small: true},
		{Name: "yeast", Size: 1484, ItemsL: 24, ItemsR: 26,
			DensityL: 0.167, DensityR: 0.192,
			BidirRules: 7, UniRules: 9, Seed: 107, Small: true},

		// --- Table 2, bottom half: candidate-based search only ---
		{Name: "adult", Size: 48842, ItemsL: 44, ItemsR: 53,
			DensityL: 0.179, DensityR: 0.132,
			BidirRules: 3, UniRules: 5, Seed: 108, MinSupport: 4885},
		{Name: "cal500", Size: 502, ItemsL: 78, ItemsR: 97,
			DensityL: 0.241, DensityR: 0.074,
			BidirRules: 10, UniRules: 14, Seed: 109, MinSupport: 20},
		{Name: "crime", Size: 2215, ItemsL: 244, ItemsR: 294,
			DensityL: 0.201, DensityR: 0.194,
			BidirRules: 20, UniRules: 28, Seed: 110, MinSupport: 200},
		{Name: "elections", Size: 1846, ItemsL: 82, ItemsR: 867,
			DensityL: 0.061, DensityR: 0.034,
			BidirRules: 12, UniRules: 18, Seed: 111, MinSupport: 47},
		{Name: "emotions", Size: 593, ItemsL: 430, ItemsR: 12,
			DensityL: 0.167, DensityR: 0.501,
			BidirRules: 5, UniRules: 7, Seed: 112, MinSupport: 40,
			RuleItemsMin: 2, RuleItemsMax: 3},
		{Name: "house", Size: 435, ItemsL: 26, ItemsR: 24,
			DensityL: 0.347, DensityR: 0.334,
			BidirRules: 7, UniRules: 9, Seed: 113, MinSupport: 8},
		{Name: "mammals", Size: 2575, ItemsL: 95, ItemsR: 94,
			DensityL: 0.172, DensityR: 0.169,
			BidirRules: 10, UniRules: 12, Seed: 114, MinSupport: 773},
	}
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("synth: unknown profile %q", name)
}

// SmallProfiles returns the Table-2-top datasets (exact search feasible).
func SmallProfiles() []Profile {
	var out []Profile
	for _, p := range Profiles() {
		if p.Small {
			out = append(out, p)
		}
	}
	return out
}

// LargeProfiles returns the Table-2-bottom datasets.
func LargeProfiles() []Profile {
	var out []Profile
	for _, p := range Profiles() {
		if !p.Small {
			out = append(out, p)
		}
	}
	return out
}
