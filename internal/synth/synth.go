// Package synth generates synthetic Boolean two-view datasets calibrated
// to the fourteen real-world datasets of the paper's Table 1 (|D|, |I_L|,
// |I_R|, d_L, d_R). The real datasets (LUCS/KDD, UCI, MULAN repositories,
// the European mammal atlas and the 2011 Finnish election engine data)
// are not redistributable inside this offline module; these generators
// are the documented substitution (see README.md, section "Reproducing
// the paper").
//
// Each dataset is a superposition of
//
//   - Zipf-skewed independent background noise per view, calibrated so the
//     overall view density matches the target, and
//   - planted cross-view associations: bidirectional rules (X and Y firing
//     together on a random row subset) and unidirectional rules (X implies
//     Y with high confidence, while Y also occurs alone so the converse
//     does not hold), both subject to per-bit dropout noise.
//
// The planted rules are returned as ground truth, enabling the recovery
// experiments that real data cannot support.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"twoview/internal/core"
	"twoview/internal/dataset"
	"twoview/internal/itemset"
)

// Profile describes one dataset to generate.
type Profile struct {
	Name           string
	Size           int // |D|
	ItemsL, ItemsR int
	DensityL       float64
	DensityR       float64

	// BidirRules and UniRules are the numbers of planted associations.
	BidirRules, UniRules int
	// RuleItemsMin/Max bound the itemset size per side of planted rules.
	RuleItemsMin, RuleItemsMax int
	// CoverageMin/Max bound the fraction of rows supporting each rule.
	CoverageMin, CoverageMax float64
	// Dropout is the probability that a planted bit is omitted.
	Dropout float64
	// Confidence is the forward confidence of unidirectional rules.
	Confidence float64
	// Seed makes generation reproducible.
	Seed int64

	// MinSupport is the suggested candidate threshold for SELECT/GREEDY
	// on this dataset (Table 2 uses 1 for the small datasets and
	// dataset-specific values for the large ones).
	MinSupport int
	// Small marks datasets of Table 2's top half, where exhaustive
	// TRANSLATOR-EXACT is feasible.
	Small bool

	// ZipfSkew shapes the background item marginals; 0 means 1.1.
	ZipfSkew float64
}

// Scaled returns a copy of p with the number of transactions (and the
// suggested support threshold) scaled by f, for fast tests and benchmarks.
func (p Profile) Scaled(f float64) Profile {
	q := p
	q.Size = maxInt(10, int(float64(p.Size)*f))
	if p.MinSupport > 1 {
		q.MinSupport = maxInt(1, int(float64(p.MinSupport)*f))
	}
	return q
}

func (p Profile) withDefaults() Profile {
	if p.RuleItemsMax == 0 {
		p.RuleItemsMin, p.RuleItemsMax = 2, 3
	}
	if p.CoverageMax == 0 {
		p.CoverageMin, p.CoverageMax = 0.08, 0.25
	}
	if p.Dropout == 0 {
		p.Dropout = 0.05
	}
	if p.Confidence == 0 {
		p.Confidence = 0.9
	}
	if p.ZipfSkew == 0 {
		p.ZipfSkew = 1.1
	}
	if p.MinSupport < 1 {
		p.MinSupport = 1
	}
	return p
}

// Generate builds the dataset of a profile together with its planted
// ground-truth rules. Generation is deterministic for a given profile.
func Generate(p Profile) (*dataset.Dataset, []core.Rule, error) {
	p = p.withDefaults()
	if p.Size <= 0 || p.ItemsL <= 0 || p.ItemsR <= 0 {
		return nil, nil, fmt.Errorf("synth: profile %q has empty dimensions", p.Name)
	}
	if p.RuleItemsMax > p.ItemsL || p.RuleItemsMax > p.ItemsR {
		return nil, nil, fmt.Errorf("synth: profile %q rules larger than vocabulary", p.Name)
	}
	r := rand.New(rand.NewSource(p.Seed))

	rowsL := newMatrix(p.Size, p.ItemsL)
	rowsR := newMatrix(p.Size, p.ItemsR)

	rules := plantRules(p, r, rowsL, rowsR)

	// Calibrate background so the final density matches the target:
	// measure the planted contribution, then fill the remainder with
	// Zipf-skewed independent noise.
	fillBackground(r, rowsL, p.DensityL, p.ZipfSkew)
	fillBackground(r, rowsR, p.DensityR, p.ZipfSkew)

	d, err := dataset.New(dataset.GenericNames("L", p.ItemsL), dataset.GenericNames("R", p.ItemsR))
	if err != nil {
		return nil, nil, err
	}
	for t := 0; t < p.Size; t++ {
		if err := d.AddRow(indices(rowsL[t]), indices(rowsR[t])); err != nil {
			return nil, nil, err
		}
	}
	return d, rules, nil
}

// MustGenerate is Generate for profiles known to be valid.
func MustGenerate(p Profile) (*dataset.Dataset, []core.Rule) {
	d, rules, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return d, rules
}

func newMatrix(rows, cols int) [][]bool {
	m := make([][]bool, rows)
	for i := range m {
		m[i] = make([]bool, cols)
	}
	return m
}

func indices(row []bool) []int {
	var out []int
	for i, b := range row {
		if b {
			out = append(out, i)
		}
	}
	return out
}

// plantRules embeds the cross-view associations and returns the ground
// truth. Itemsets of different rules may overlap, mirroring real data.
// Per-rule coverage is capped so that the planted structure consumes at
// most ~60% of each view's density budget, leaving room for background
// noise and keeping the final density on target.
func plantRules(p Profile, r *rand.Rand, rowsL, rowsR [][]bool) []core.Rule {
	var rules []core.Rule
	seen := map[string]bool{}
	total := p.BidirRules + p.UniRules
	if total == 0 {
		return rules
	}
	avgItems := float64(p.RuleItemsMin+p.RuleItemsMax) / 2
	// Expected ones per view ≈ total · coverage · |D| · avgItems (the
	// uni-rule consequent-alone rows add ~50% on the right; fold that in).
	capL := 0.6 * p.DensityL * float64(p.ItemsL) / (float64(total) * avgItems)
	capR := 0.6 * p.DensityR * float64(p.ItemsR) / (1.5 * float64(total) * avgItems)
	covCap := math.Min(capL, capR)
	covMin, covMax := p.CoverageMin, p.CoverageMax
	if covMax > covCap {
		covMax = covCap
	}
	if covMin > covMax {
		covMin = covMax / 2
	}
	p.CoverageMin, p.CoverageMax = covMin, covMax
	for len(rules) < total {
		x := randomItemset(r, p.ItemsL, p.RuleItemsMin, p.RuleItemsMax)
		y := randomItemset(r, p.ItemsR, p.RuleItemsMin, p.RuleItemsMax)
		key := x.String() + "|" + y.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		bidir := len(rules) < p.BidirRules
		cov := p.CoverageMin + r.Float64()*(p.CoverageMax-p.CoverageMin)
		support := r.Perm(p.Size)[:maxInt(1, int(cov*float64(p.Size)))]
		if bidir {
			for _, t := range support {
				setBits(r, rowsL[t], x, p.Dropout)
				setBits(r, rowsR[t], y, p.Dropout)
			}
			rules = append(rules, core.Rule{X: x, Dir: core.Both, Y: y})
		} else {
			for _, t := range support {
				setBits(r, rowsL[t], x, p.Dropout)
				if r.Float64() < p.Confidence {
					setBits(r, rowsR[t], y, p.Dropout)
				}
			}
			// Y also fires alone on extra rows, so Y ⇒ X does not hold
			// and the association stays unidirectional.
			extra := r.Perm(p.Size)[:maxInt(1, len(support)/2)]
			for _, t := range extra {
				setBits(r, rowsR[t], y, p.Dropout)
			}
			rules = append(rules, core.Rule{X: x, Dir: core.Forward, Y: y})
		}
	}
	return rules
}

func randomItemset(r *rand.Rand, n, minItems, maxItems int) itemset.Itemset {
	k := minItems
	if maxItems > minItems {
		k += r.Intn(maxItems - minItems + 1)
	}
	if k > n {
		k = n
	}
	perm := r.Perm(n)[:k]
	sort.Ints(perm)
	return itemset.Itemset(perm)
}

func setBits(r *rand.Rand, row []bool, items itemset.Itemset, dropout float64) {
	for _, i := range items {
		if r.Float64() >= dropout {
			row[i] = true
		}
	}
}

// fillBackground adds independent per-item noise with Zipf-skewed
// marginals, calibrated so the final expected density hits the target.
func fillBackground(r *rand.Rand, rows [][]bool, target, skew float64) {
	n, m := len(rows), len(rows[0])
	if n == 0 || m == 0 {
		return
	}
	planted := 0
	for _, row := range rows {
		for _, b := range row {
			if b {
				planted++
			}
		}
	}
	need := target*float64(n*m) - float64(planted)
	if need <= 0 {
		return // planted structure alone already reaches the density
	}
	// Zipf weights over items, shuffled so rule items are not special.
	weights := make([]float64, m)
	sum := 0.0
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+2), skew)
		sum += weights[i]
	}
	r.Shuffle(m, func(i, j int) { weights[i], weights[j] = weights[j], weights[i] })
	// Per-item probability, capped at 0.75 (in the spirit of the paper capping item
	// frequency for Elections). Probability mass cut off by the cap is
	// water-filled onto the uncapped items so the density target holds
	// even for strongly skewed, wide vocabularies.
	const cap05 = 0.75
	probs := make([]float64, m)
	remaining := need / float64(n) // expected ones per row
	active := make([]int, m)
	for i := range active {
		active[i] = i
	}
	for len(active) > 0 && remaining > 1e-12 {
		sumW := 0.0
		for _, i := range active {
			sumW += weights[i]
		}
		var capped []int
		var next []int
		for _, i := range active {
			p := remaining * weights[i] / sumW
			if p >= cap05 {
				capped = append(capped, i)
			} else {
				next = append(next, i)
			}
		}
		if len(capped) == 0 {
			for _, i := range active {
				probs[i] = remaining * weights[i] / sumW
			}
			break
		}
		for _, i := range capped {
			probs[i] = cap05
			remaining -= cap05
		}
		active = next
	}
	for _, row := range rows {
		for i := range row {
			if !row[i] && r.Float64() < probs[i] {
				row[i] = true
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
