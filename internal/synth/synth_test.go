package synth

import (
	"context"
	"math"
	"testing"

	"twoview/internal/core"
	"twoview/internal/dataset"
)

func TestGenerateDimensions(t *testing.T) {
	p := Profile{Name: "t", Size: 300, ItemsL: 20, ItemsR: 15,
		DensityL: 0.2, DensityR: 0.3, BidirRules: 2, UniRules: 2, Seed: 1}
	d, rules, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 300 || d.Items(dataset.Left) != 20 || d.Items(dataset.Right) != 15 {
		t.Fatalf("dims = %d, %d, %d", d.Size(), d.Items(dataset.Left), d.Items(dataset.Right))
	}
	if len(rules) != 4 {
		t.Fatalf("planted %d rules, want 4", len(rules))
	}
	nBidir := 0
	for _, r := range rules {
		if err := r.Validate(d); err != nil {
			t.Fatalf("ground-truth rule invalid: %v", err)
		}
		if r.Dir == core.Both {
			nBidir++
		}
	}
	if nBidir != 2 {
		t.Fatalf("%d bidirectional rules, want 2", nBidir)
	}
}

func TestGenerateDensityCalibration(t *testing.T) {
	p := Profile{Name: "t", Size: 4000, ItemsL: 30, ItemsR: 25,
		DensityL: 0.18, DensityR: 0.12, BidirRules: 3, UniRules: 3, Seed: 2}
	d, _, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Density(dataset.Left); math.Abs(got-0.18) > 0.02 {
		t.Fatalf("dL = %v, want ≈ 0.18", got)
	}
	if got := d.Density(dataset.Right); math.Abs(got-0.12) > 0.02 {
		t.Fatalf("dR = %v, want ≈ 0.12", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Profile{Name: "t", Size: 200, ItemsL: 12, ItemsR: 12,
		DensityL: 0.2, DensityR: 0.2, BidirRules: 2, UniRules: 1, Seed: 3}
	d1, r1, _ := Generate(p)
	d2, r2, _ := Generate(p)
	if d1.Size() != d2.Size() {
		t.Fatal("sizes differ")
	}
	for i := 0; i < d1.Size(); i++ {
		if !d1.Row(dataset.Left, i).Equal(d2.Row(dataset.Left, i)) ||
			!d1.Row(dataset.Right, i).Equal(d2.Row(dataset.Right, i)) {
			t.Fatal("rows differ between identical seeds")
		}
	}
	for i := range r1 {
		if r1[i].Compare(r2[i]) != 0 {
			t.Fatal("ground truth differs")
		}
	}
	p.Seed = 4
	d3, _, _ := Generate(p)
	same := true
	for i := 0; i < d1.Size() && same; i++ {
		same = d1.Row(dataset.Left, i).Equal(d3.Row(dataset.Left, i))
	}
	if same {
		t.Fatal("different seeds gave identical data")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, _, err := Generate(Profile{Name: "bad"}); err == nil {
		t.Fatal("empty profile accepted")
	}
	p := Profile{Name: "bad", Size: 10, ItemsL: 2, ItemsR: 2,
		RuleItemsMin: 3, RuleItemsMax: 3, BidirRules: 1}
	if _, _, err := Generate(p); err == nil {
		t.Fatal("oversized rule items accepted")
	}
}

func TestPlantedStructureIsDiscoverable(t *testing.T) {
	// The planted bidirectional rule must be strongly associated: its
	// sides co-occur far above independence.
	p := Profile{Name: "t", Size: 2000, ItemsL: 15, ItemsR: 15,
		DensityL: 0.15, DensityR: 0.15, BidirRules: 1, UniRules: 0,
		CoverageMin: 0.3, CoverageMax: 0.3, Seed: 5}
	d, rules, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	r := rules[0]
	joint := float64(d.JointSupportSet(r.X, r.Y).Count()) / float64(d.Size())
	pX := float64(d.Support(dataset.Left, r.X)) / float64(d.Size())
	pY := float64(d.Support(dataset.Right, r.Y)) / float64(d.Size())
	if joint < 3*pX*pY {
		t.Fatalf("planted rule too weak: joint=%v pX*pY=%v", joint, pX*pY)
	}
	if joint < 0.15 {
		t.Fatalf("planted coverage lost: %v", joint)
	}
}

func TestUniRuleIsAsymmetric(t *testing.T) {
	p := Profile{Name: "t", Size: 3000, ItemsL: 12, ItemsR: 12,
		DensityL: 0.1, DensityR: 0.1, BidirRules: 0, UniRules: 1,
		CoverageMin: 0.25, CoverageMax: 0.25, Seed: 6, Dropout: 0.01}
	d, rules, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	r := rules[0]
	joint := float64(d.JointSupportSet(r.X, r.Y).Count())
	confF := joint / float64(d.Support(dataset.Left, r.X))
	confB := joint / float64(d.Support(dataset.Right, r.Y))
	if confF < 0.7 {
		t.Fatalf("forward confidence too low: %v", confF)
	}
	if confB > confF-0.1 {
		t.Fatalf("association not asymmetric: fwd=%v bwd=%v", confF, confB)
	}
}

func TestProfilesMatchTable1(t *testing.T) {
	want := map[string][3]int{ // |D|, |I_L|, |I_R|
		"abalone": {4177, 27, 31}, "adult": {48842, 44, 53},
		"cal500": {502, 78, 97}, "car": {1728, 15, 10},
		"chesskrvk": {28056, 24, 34}, "crime": {2215, 244, 294},
		"elections": {1846, 82, 867}, "emotions": {593, 430, 12},
		"house": {435, 26, 24}, "mammals": {2575, 95, 94},
		"nursery": {12960, 19, 13}, "tictactoe": {958, 15, 14},
		"wine": {178, 35, 33}, "yeast": {1484, 24, 26},
	}
	ps := Profiles()
	if len(ps) != len(want) {
		t.Fatalf("%d profiles, want %d", len(ps), len(want))
	}
	for _, p := range ps {
		w, ok := want[p.Name]
		if !ok {
			t.Fatalf("unexpected profile %q", p.Name)
		}
		if p.Size != w[0] || p.ItemsL != w[1] || p.ItemsR != w[2] {
			t.Fatalf("%s: dims (%d,%d,%d), want %v", p.Name, p.Size, p.ItemsL, p.ItemsR, w)
		}
	}
	if len(SmallProfiles()) != 7 || len(LargeProfiles()) != 7 {
		t.Fatal("small/large split wrong")
	}
	if _, err := ProfileByName("house"); err != nil {
		t.Fatal(err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestScaled(t *testing.T) {
	p, _ := ProfileByName("adult")
	s := p.Scaled(0.1)
	if s.Size != 4884 {
		t.Fatalf("scaled size = %d", s.Size)
	}
	if s.MinSupport != 488 {
		t.Fatalf("scaled minsup = %d", s.MinSupport)
	}
	tiny := p.Scaled(0.00001)
	if tiny.Size < 10 || tiny.MinSupport < 1 {
		t.Fatal("scaling floor violated")
	}
}

// The headline sanity check: a generated small dataset must be
// compressible by TRANSLATOR and the planted rules recoverable to a
// reasonable degree (item-level overlap between mined and planted rules).
func TestMinedTablesRecoverPlantedStructure(t *testing.T) {
	p := Profile{Name: "t", Size: 600, ItemsL: 12, ItemsR: 12,
		DensityL: 0.15, DensityR: 0.15, BidirRules: 3, UniRules: 2,
		Seed: 7}
	d, planted, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := core.MineCandidates(context.Background(), d, 5, 0, core.ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.MineSelect(context.Background(), d, cands, core.SelectOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.State.CompressionRatio() >= 100 {
		t.Fatalf("no compression on planted data: L%%=%v", res.State.CompressionRatio())
	}
	// Each planted bidirectional rule should overlap some mined rule on
	// both sides.
	recovered := 0
	for _, pr := range planted {
		for _, mr := range res.Table.Rules {
			if pr.X.Intersects(mr.X) && pr.Y.Intersects(mr.Y) {
				recovered++
				break
			}
		}
	}
	if recovered < len(planted)*2/3 {
		t.Fatalf("only %d/%d planted rules overlapped by mined rules", recovered, len(planted))
	}
}
