//go:build bitset_scalar

package bitset

import "math/bits"

// This file is the scalar differential reference for the striped cores
// in kernels_striped.go: the original one-word-at-a-time loops (as
// shipped through PR 4) behind the same internal core signatures.
// Building with `-tags bitset_scalar` swaps them in wholesale, so the
// full test suite — including the miners' bit-identical determinism
// properties — can run against either build. striped_test.go asserts
// the two cores agree word-for-word (and bit-for-bit for the float
// accumulators) on every width boundary.
const (
	// stripeWords is 1 in the scalar build: no unrolling.
	stripeWords = 1
	// The width gates of the striped build are 1 here (every width is
	// "above the gate" of a build with no stripes); striped_test.go
	// reads them to place its boundary widths.
	stripeMinWords    = 1
	stripeMinSumWords = 1
	// scalarKernels reports which build of the cores is active.
	scalarKernels = true
)

func countWords(a []uint64) int {
	c := 0
	for _, w := range a {
		c += bits.OnesCount64(w)
	}
	return c
}

func andCountWords(a, b []uint64) int {
	c := 0
	for i := range a {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

func andNotCountWords(a, b []uint64) int {
	c := 0
	for i := range a {
		c += bits.OnesCount64(a[i] &^ b[i])
	}
	return c
}

func andNotAndNotCountWords(a, b, c []uint64) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] &^ b[i] &^ c[i])
	}
	return n
}

func intersectWords(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] & b[i]
	}
}

func andWords(a, b []uint64) {
	for i := range a {
		a[i] &= b[i]
	}
}

func orWords(a, b []uint64) {
	for i := range a {
		a[i] |= b[i]
	}
}

func andNotWords(a, b []uint64) {
	for i := range a {
		a[i] &^= b[i]
	}
}

func xorWords(a, b []uint64) {
	for i := range a {
		a[i] ^= b[i]
	}
}

func equalWords(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func subsetWords(a, b []uint64) bool {
	for i := range a {
		if a[i]&^b[i] != 0 {
			return false
		}
	}
	return true
}

func intersectsWords(a, b []uint64) bool {
	for i := range a {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}

func intersectSumWords(dst, a, b []uint64, w []float64) float64 {
	total := 0.0
	for i := range dst {
		word := a[i] & b[i]
		dst[i] = word
		total = addWeighted(total, word, w, i*wordBits)
	}
	return total
}

func weightedSumWords(a []uint64, w []float64) float64 {
	total := 0.0
	for i, word := range a {
		total = addWeighted(total, word, w, i*wordBits)
	}
	return total
}
