package bitset

// FreeList is a size-classed recycler for Sets, keyed by word-storage
// capacity. It exists for search walks that create one tidset per
// visited node but retain only the emitted ones (the ECLAT candidate
// mine): recycling the non-emitted tidsets makes the steady-state walk
// allocation-free.
//
// Ownership rule: a Set handed to Put must no longer be referenced by
// the caller — the next Get may return it with different contents. Sets
// that escape to a caller (emitted results) must simply never be Put.
//
// In practice one walk uses a single width, so the first size class a
// FreeList sees is kept in inline fields: the Get/Put pair on the walk's
// innermost branch costs two slice operations, no map access. Any other
// classes (a re-used FreeList after a dataset changed width) fall back
// to a map.
//
// A FreeList is not safe for concurrent use; parallel walks keep one
// per worker. The zero value is ready to use.
type FreeList struct {
	hotW int    // word capacity of the inline class; 0 = unset
	hot  []*Set // recycled sets of word capacity hotW

	// classes[w] holds recycled sets whose word capacity is exactly w,
	// for the rare widths beyond the inline class.
	classes map[int][]*Set
}

// Get returns a Set of width n bits, recycling one from the matching
// size class when available. The bit contents of a recycled Set are
// UNSPECIFIED: Get is intended for consumers that fully overwrite the
// words (IntersectInto, Copy); call Reset or Clear first otherwise.
func (f *FreeList) Get(n int) *Set {
	w := (n + wordBits - 1) / wordBits
	if w == f.hotW && len(f.hot) > 0 {
		s := f.hot[len(f.hot)-1]
		f.hot[len(f.hot)-1] = nil
		f.hot = f.hot[:len(f.hot)-1]
		s.words = s.words[:w]
		s.n = n
		return s
	}
	if list := f.classes[w]; len(list) > 0 {
		s := list[len(list)-1]
		list[len(list)-1] = nil
		f.classes[w] = list[:len(list)-1]
		s.words = s.words[:w]
		s.n = n
		return s
	}
	return New(n)
}

// Put recycles s into its size class. s must not be used afterwards.
func (f *FreeList) Put(s *Set) {
	if s == nil || cap(s.words) == 0 {
		return
	}
	w := cap(s.words)
	if f.hotW == w || f.hotW == 0 {
		f.hotW = w
		f.hot = append(f.hot, s)
		return
	}
	if f.classes == nil {
		f.classes = make(map[int][]*Set)
	}
	f.classes[w] = append(f.classes[w], s)
}

// Len returns the total number of recycled sets currently held, for
// tests and diagnostics.
func (f *FreeList) Len() int {
	n := len(f.hot)
	for _, list := range f.classes {
		n += len(list)
	}
	return n
}
