package bitset

// Width-boundary property tests for the kernel layer: every exported
// kernel must agree with a bit-level reference implementation (written
// here with per-bit probes, independent of both word cores) on every
// boundary the striped cores care about — the empty set, single-word
// widths, the 64-bit word boundaries, the stripe boundary (stripeWords
// words) ± 1 word, and random large widths. The same tests run under
// the default striped build and under `-tags bitset_scalar`, which is
// what pins the two builds to each other: each one separately equals
// the bit-level reference, including the trailing-word masking of the
// `&^`-style kernels and the exact float accumulation order of
// IntersectIntoSum / WeightedSum.

import (
	"math/rand"
	"testing"
)

// boundaryWidths are the bit widths every kernel property is checked
// at: 0, 1, the word boundary ±1, the stripe boundary ±1 (in words and
// in bits), both width gates of the striped build ±1 (so the scalar
// fallthrough and the striped path are each exercised on both sides of
// their crossover), and a couple of larger random-ish widths.
func boundaryWidths() []int {
	stripeBits := stripeWords * wordBits
	minBits := stripeMinWords * wordBits
	minSumBits := stripeMinSumWords * wordBits
	widths := []int{
		0, 1, 63, 64, 65, 255, 256, 257,
		stripeBits - 1, stripeBits, stripeBits + 1,
		(stripeWords-1)*wordBits + 1, // one word short of a stripe, partial
		(stripeWords+1)*wordBits - 1, // one word past a stripe, partial
		2*stripeBits + 7,
		minBits - 1, minBits, minBits + 1, minBits + 7,
		minSumBits - 1, minSumBits, minSumBits + 1,
		1000, 4096, 4099,
		minBits + 3*stripeBits + 5, // deep in the striped path, partial tail
	}
	// Dedup while preserving order; stripe widths may collide with the
	// fixed entries (with stripeWords=4, stripeBits=256 already listed).
	seen := map[int]bool{}
	out := widths[:0]
	for _, n := range widths {
		if n >= 0 && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// densities cover empty, sparse, dense and full sets; full sets are the
// trailing-word masking stress (every dead bit of b and c would leak
// into the `a &^ b &^ c` style kernels if the invariant broke).
var densities = []float64{0, 0.05, 0.5, 1}

func fillRandom(r *rand.Rand, s *Set, density float64) {
	for i := 0; i < s.Len(); i++ {
		if density == 1 || r.Float64() < density {
			s.Add(i)
		}
	}
}

// Bit-level references: one probe per bit position, no word walks.

func refAndCount(a, b *Set) int {
	c := 0
	for i := 0; i < a.Len(); i++ {
		if a.Contains(i) && b.Contains(i) {
			c++
		}
	}
	return c
}

func refAndNotCount(a, b *Set) int {
	c := 0
	for i := 0; i < a.Len(); i++ {
		if a.Contains(i) && !b.Contains(i) {
			c++
		}
	}
	return c
}

func refAndNotAndNotCount(a, b, c *Set) int {
	n := 0
	for i := 0; i < a.Len(); i++ {
		if a.Contains(i) && !b.Contains(i) && !c.Contains(i) {
			n++
		}
	}
	return n
}

// refWeightedSum accumulates exactly like the contract demands: one
// addition per set bit, ascending order.
func refWeightedSum(s *Set, w []float64) float64 {
	total := 0.0
	for i := 0; i < s.Len(); i++ {
		if s.Contains(i) {
			total += w[i]
		}
	}
	return total
}

func TestKernelsMatchBitReference(t *testing.T) {
	t.Logf("kernel build: scalar=%v stripeWords=%d", scalarKernels, stripeWords)
	r := rand.New(rand.NewSource(42))
	for _, n := range boundaryWidths() {
		for _, da := range densities {
			for _, db := range densities {
				a, b, c := New(n), New(n), New(n)
				fillRandom(r, a, da)
				fillRandom(r, b, db)
				fillRandom(r, c, (da+db)/2)
				w := make([]float64, n)
				for i := range w {
					// Deliberately non-associative-friendly magnitudes so an
					// accumulation-order change actually shows up.
					w[i] = r.Float64() * float64(uint64(1)<<uint(i%40))
				}

				if got, want := AndCount(a, b), refAndCount(a, b); got != want {
					t.Fatalf("n=%d da=%v db=%v: AndCount = %d, want %d", n, da, db, got, want)
				}
				if got, want := AndNotCount(a, b), refAndNotCount(a, b); got != want {
					t.Fatalf("n=%d da=%v db=%v: AndNotCount = %d, want %d", n, da, db, got, want)
				}
				if got, want := AndNotAndNotCount(a, b, c), refAndNotAndNotCount(a, b, c); got != want {
					t.Fatalf("n=%d da=%v db=%v: AndNotAndNotCount = %d, want %d", n, da, db, got, want)
				}
				if got, want := a.Count(), refAndCount(a, a); got != want {
					t.Fatalf("n=%d da=%v: Count = %d, want %d", n, da, got, want)
				}

				// IntersectInto and the fused sum agree with the reference
				// and with each other, bit for bit on the float.
				dst := New(n)
				IntersectInto(dst, a, b)
				for i := 0; i < n; i++ {
					if dst.Contains(i) != (a.Contains(i) && b.Contains(i)) {
						t.Fatalf("n=%d: IntersectInto wrong at bit %d", n, i)
					}
				}
				dst2 := New(n)
				sum := IntersectIntoSum(dst2, a, b, w)
				if !dst2.Equal(dst) {
					t.Fatalf("n=%d: IntersectIntoSum set differs from IntersectInto", n)
				}
				if want := refWeightedSum(dst, w); sum != want {
					t.Fatalf("n=%d: IntersectIntoSum = %v, want %v (bit-exact)", n, sum, want)
				}
				if got, want := WeightedSum(a, w), refWeightedSum(a, w); got != want {
					t.Fatalf("n=%d: WeightedSum = %v, want %v (bit-exact)", n, got, want)
				}

				// In-place word ops against per-bit expectations.
				checkOp := func(name string, op func(x, y *Set), want func(x, y bool) bool) {
					x := a.Clone()
					op(x, b)
					for i := 0; i < n; i++ {
						if x.Contains(i) != want(a.Contains(i), b.Contains(i)) {
							t.Fatalf("n=%d: %s wrong at bit %d", n, name, i)
						}
					}
				}
				checkOp("And", func(x, y *Set) { x.And(y) }, func(p, q bool) bool { return p && q })
				checkOp("Or", func(x, y *Set) { x.Or(y) }, func(p, q bool) bool { return p || q })
				checkOp("AndNot", func(x, y *Set) { x.AndNot(y) }, func(p, q bool) bool { return p && !q })
				checkOp("Xor", func(x, y *Set) { x.Xor(y) }, func(p, q bool) bool { return p != q })

				// Predicates.
				if got, want := a.Intersects(b), refAndCount(a, b) > 0; got != want {
					t.Fatalf("n=%d: Intersects = %v, want %v", n, got, want)
				}
				if got, want := a.SubsetOf(b), refAndNotCount(a, b) == 0; got != want {
					t.Fatalf("n=%d: SubsetOf = %v, want %v", n, got, want)
				}
				if got, want := a.Equal(b), refAndNotCount(a, b) == 0 && refAndNotCount(b, a) == 0; got != want {
					t.Fatalf("n=%d: Equal = %v, want %v", n, got, want)
				}
				if !a.Equal(a.Clone()) {
					t.Fatalf("n=%d: Equal(clone) = false", n)
				}
				if !a.ContainsAll(a.Indices()) {
					t.Fatalf("n=%d: ContainsAll(own indices) = false", n)
				}
				if n > 0 && da > 0 && !a.Empty() {
					// Flip one present bit off b-clone-of-a: ContainsAll must
					// early-exit false.
					missing := a.Indices()[0]
					x := a.Clone()
					x.Remove(missing)
					if x.ContainsAll(a.Indices()) {
						t.Fatalf("n=%d: ContainsAll missed a removed bit", n)
					}
				}
			}
		}
	}
}

// TestKernelsTrailingWordMasking plants garbage-free full sets right at
// partial trailing words: with every bit of a, b set in [0, n), the
// `&^`-style kernels see ^b words whose dead bits (≥ n) are all 1; the
// counts must still ignore them.
func TestKernelsTrailingWordMasking(t *testing.T) {
	for _, n := range boundaryWidths() {
		a, b, c := New(n), New(n), New(n)
		a.Fill()
		// b, c empty: a &^ b &^ c must count exactly n, not the dead bits.
		if got := AndNotCount(a, b); got != n {
			t.Fatalf("n=%d: AndNotCount(full, empty) = %d, want %d", n, got, n)
		}
		if got := AndNotAndNotCount(a, b, c); got != n {
			t.Fatalf("n=%d: AndNotAndNotCount(full, empty, empty) = %d, want %d", n, got, n)
		}
		b.Fill()
		if got := AndNotCount(a, b); got != 0 {
			t.Fatalf("n=%d: AndNotCount(full, full) = %d, want 0", n, got)
		}
		if !a.SubsetOf(b) || !a.Equal(b) {
			t.Fatalf("n=%d: full sets must be equal subsets", n)
		}
		if n > 0 && !a.Intersects(b) {
			t.Fatalf("n=%d: full sets must intersect", n)
		}
		if n == 0 && a.Intersects(b) {
			t.Fatal("width-0 sets cannot intersect")
		}
	}
}

// TestFreeListClasses pins the inline hot class and the map fallback:
// recycling through one width never allocates a map, and a second width
// falls back without disturbing the first.
func TestFreeListClasses(t *testing.T) {
	var f FreeList
	a := f.Get(100)
	b := f.Get(100)
	f.Put(a)
	f.Put(b)
	if f.Len() != 2 {
		t.Fatalf("Len = %d after two Puts, want 2", f.Len())
	}
	if f.classes != nil {
		t.Fatal("single-width recycling must not allocate the class map")
	}
	got := f.Get(100)
	if got != b && got != a {
		t.Fatal("Get did not recycle a hot-class set")
	}
	if got.Len() != 100 {
		t.Fatalf("recycled width = %d, want 100", got.Len())
	}

	// A different word capacity lands in the map, and both classes keep
	// recycling independently.
	wide := f.Get(1000)
	f.Put(wide)
	if f.Len() != 2 {
		t.Fatalf("Len = %d with two classes, want 2", f.Len())
	}
	if w := f.Get(1000); w != wide {
		t.Fatal("map-class set was not recycled")
	}
	if s := f.Get(100); s == nil || s.Len() != 100 {
		t.Fatal("hot class disturbed by map fallback")
	}

	// Same word capacity, different bit width: recycles and re-widths.
	f.Put(f.Get(97))
	if s := f.Get(99); s.Len() != 99 {
		t.Fatalf("re-width within a class: Len = %d, want 99", s.Len())
	}
}
