package bitset

import (
	"math/rand"
	"testing"
)

func randomSet(r *rand.Rand, n int, density float64) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Float64() < density {
			s.Add(i)
		}
	}
	return s
}

func BenchmarkAndCount(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randomSet(r, 50_000, 0.2)
	y := randomSet(r, 50_000, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndCount(x, y)
	}
}

func BenchmarkIntersectInto(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	x := randomSet(r, 50_000, 0.2)
	y := randomSet(r, 50_000, 0.2)
	dst := New(50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectInto(dst, x, y)
	}
}

func BenchmarkForEach(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	x := randomSet(r, 50_000, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0
		x.ForEach(func(j int) bool {
			sum += j
			return true
		})
	}
}

func BenchmarkSubsetOf(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	big := randomSet(r, 50_000, 0.5)
	small := big.Clone()
	small.And(randomSet(r, 50_000, 0.3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !small.SubsetOf(big) {
			b.Fatal("subset violated")
		}
	}
}
