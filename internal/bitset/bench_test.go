package bitset

import (
	"fmt"
	"math/rand"
	"testing"
)

// Kernel microbenchmarks, width-parameterized so the striped-vs-scalar
// ratio is visible per size class: words=4 is one stripe (256 bits,
// the planted datasets' tidset ballpark — below the width gates, so it
// must match the scalar build), words=256+ is where the stripes engage
// and must pay off. Run the same benchmarks with `-tags bitset_scalar`
// for the differential baseline:
//
//	go test -run='^$' -bench 'AndCount|IntersectInto' ./internal/bitset/
//	go test -run='^$' -bench 'AndCount|IntersectInto' -tags bitset_scalar ./internal/bitset/
//
// (or `make bench-kernels`, which runs both builds back to back).
var benchWords = []int{1, 4, 16, 64, 256, 1024}

func randomSet(r *rand.Rand, n int, density float64) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Float64() < density {
			s.Add(i)
		}
	}
	return s
}

// benchSets returns two random sets of the given word count and
// density, and a weight vector covering them.
func benchSets(seed int64, words int, density float64) (x, y *Set, w []float64) {
	r := rand.New(rand.NewSource(seed))
	n := words * WordBits
	x = randomSet(r, n, density)
	y = randomSet(r, n, density)
	w = make([]float64, n)
	for i := range w {
		w[i] = r.Float64()
	}
	return x, y, w
}

func benchWidths(b *testing.B, seed int64, run func(b *testing.B, x, y *Set, w []float64)) {
	for _, words := range benchWords {
		x, y, w := benchSets(seed, words, 0.2)
		b.Run(fmt.Sprintf("words=%d", words), func(b *testing.B) {
			run(b, x, y, w)
		})
	}
}

// benchWidthsSparse is the 1%-density variant: the regime of deep
// search branches, where the striped cores' all-zero-stripe skip in the
// weighted-sum kernels actually fires.
func benchWidthsSparse(b *testing.B, seed int64, run func(b *testing.B, x, y *Set, w []float64)) {
	for _, words := range benchWords {
		x, y, w := benchSets(seed, words, 0.01)
		b.Run(fmt.Sprintf("words=%d", words), func(b *testing.B) {
			run(b, x, y, w)
		})
	}
}

var (
	sinkInt   int
	sinkFloat float64
	sinkBool  bool
)

func BenchmarkAndCount(b *testing.B) {
	benchWidths(b, 1, func(b *testing.B, x, y *Set, _ []float64) {
		for i := 0; i < b.N; i++ {
			sinkInt = AndCount(x, y)
		}
	})
}

func BenchmarkAndNotCount(b *testing.B) {
	benchWidths(b, 2, func(b *testing.B, x, y *Set, _ []float64) {
		for i := 0; i < b.N; i++ {
			sinkInt = AndNotCount(x, y)
		}
	})
}

func BenchmarkAndNotAndNotCount(b *testing.B) {
	benchWidths(b, 3, func(b *testing.B, x, y *Set, _ []float64) {
		z := y.Clone()
		z.Xor(x)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinkInt = AndNotAndNotCount(x, y, z)
		}
	})
}

func BenchmarkIntersectInto(b *testing.B) {
	benchWidths(b, 4, func(b *testing.B, x, y *Set, _ []float64) {
		dst := New(x.Len())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			IntersectInto(dst, x, y)
		}
	})
}

func BenchmarkIntersectIntoSum(b *testing.B) {
	benchWidths(b, 5, func(b *testing.B, x, y *Set, w []float64) {
		dst := New(x.Len())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinkFloat = IntersectIntoSum(dst, x, y, w)
		}
	})
}

func BenchmarkWeightedSum(b *testing.B) {
	benchWidths(b, 6, func(b *testing.B, x, _ *Set, w []float64) {
		for i := 0; i < b.N; i++ {
			sinkFloat = WeightedSum(x, w)
		}
	})
}

func BenchmarkIntersectIntoSumSparse(b *testing.B) {
	benchWidthsSparse(b, 5, func(b *testing.B, x, y *Set, w []float64) {
		dst := New(x.Len())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinkFloat = IntersectIntoSum(dst, x, y, w)
		}
	})
}

func BenchmarkWeightedSumSparse(b *testing.B) {
	benchWidthsSparse(b, 6, func(b *testing.B, x, _ *Set, w []float64) {
		for i := 0; i < b.N; i++ {
			sinkFloat = WeightedSum(x, w)
		}
	})
}

func BenchmarkEqual(b *testing.B) {
	benchWidths(b, 7, func(b *testing.B, x, _ *Set, _ []float64) {
		// Worst case: equal sets, no early exit.
		y := x.Clone()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinkBool = x.Equal(y)
		}
	})
}

func BenchmarkSubsetOf(b *testing.B) {
	benchWidths(b, 8, func(b *testing.B, x, y *Set, _ []float64) {
		// Worst case: a genuine subset, no early exit.
		small := x.Clone()
		small.And(y)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinkBool = small.SubsetOf(x)
		}
	})
}

func BenchmarkCount(b *testing.B) {
	benchWidths(b, 9, func(b *testing.B, x, _ *Set, _ []float64) {
		for i := 0; i < b.N; i++ {
			sinkInt = x.Count()
		}
	})
}

func BenchmarkForEach(b *testing.B) {
	r := rand.New(rand.NewSource(10))
	x := randomSet(r, 50_000, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0
		x.ForEach(func(j int) bool {
			sum += j
			return true
		})
		sinkInt = sum
	}
}

// BenchmarkFreeList measures the Get/Put pair on the hot (inline) size
// class — the ECLAT walk's per-node recycling cost.
func BenchmarkFreeList(b *testing.B) {
	var f FreeList
	f.Put(New(4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Put(f.Get(4096))
	}
}
