package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	if !s.Empty() || s.Count() != 0 {
		t.Fatalf("new set not empty: count=%d", s.Count())
	}
}

func TestNewZeroWidth(t *testing.T) {
	s := New(0)
	if !s.Empty() || s.Count() != 0 || s.Len() != 0 {
		t.Fatal("zero-width set should be empty")
	}
	s.Fill()
	if s.Count() != 0 {
		t.Fatal("Fill on zero-width set must stay empty")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("bit %d set before Add", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("bit %d not set after Add", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Remove(64)
	if s.Contains(64) || s.Count() != 7 {
		t.Fatalf("Remove(64) failed: count=%d", s.Count())
	}
	// Removing an absent bit is a no-op.
	s.Remove(64)
	if s.Count() != 7 {
		t.Fatal("double Remove changed count")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(64)
	for _, f := range []func(){
		func() { s.Add(64) },
		func() { s.Add(-1) },
		func() { s.Contains(64) },
		func() { s.Remove(100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestReset(t *testing.T) {
	s := New(100)
	s.Add(3)
	s.Add(99)
	words := s.Words()

	// Shrinking and re-growing within capacity must reuse storage and
	// clear every bit.
	s.Reset(64)
	if s.Len() != 64 || !s.Empty() {
		t.Fatalf("Reset(64): len=%d empty=%v", s.Len(), s.Empty())
	}
	s.Reset(100)
	if s.Len() != 100 || !s.Empty() {
		t.Fatalf("Reset(100): len=%d empty=%v", s.Len(), s.Empty())
	}
	if &s.Words()[0] != &words[0] {
		t.Fatal("Reset within capacity reallocated")
	}

	// Growing past capacity allocates but still yields an empty set.
	s.Add(42)
	s.Reset(1000)
	if s.Len() != 1000 || !s.Empty() {
		t.Fatalf("Reset(1000): len=%d empty=%v", s.Len(), s.Empty())
	}
	s.Add(999)
	if !s.Contains(999) {
		t.Fatal("grown set unusable")
	}
}

func TestFreeList(t *testing.T) {
	var f FreeList
	a := f.Get(100)
	if a.Len() != 100 || !a.Empty() {
		t.Fatalf("fresh Get: len=%d empty=%v", a.Len(), a.Empty())
	}
	a.Add(7)
	f.Put(a)
	if f.Len() != 1 {
		t.Fatalf("free list holds %d, want 1", f.Len())
	}
	// Same size class: recycled, contents unspecified (may be dirty).
	b := f.Get(100)
	if b != a {
		t.Fatal("matching class was not recycled")
	}
	if f.Len() != 0 {
		t.Fatal("recycled set still on the list")
	}
	// A different word-count class misses and allocates fresh.
	f.Put(b)
	c := f.Get(1000)
	if c == b || c.Len() != 1000 {
		t.Fatal("class mismatch must allocate")
	}
	// Same word count, different bit width: recycled with the new width.
	e := f.Get(90) // 90 and 100 bits are both two words
	if e != b || e.Len() != 90 {
		t.Fatalf("width-compatible class not recycled (len=%d)", e.Len())
	}
	f.Put(nil) // must not panic
}

func TestNewBatch(t *testing.T) {
	batch := NewBatch(5, 70)
	if len(batch) != 5 {
		t.Fatalf("batch size %d", len(batch))
	}
	for i := range batch {
		if batch[i].Len() != 70 || !batch[i].Empty() {
			t.Fatalf("batch[%d]: len=%d empty=%v", i, batch[i].Len(), batch[i].Empty())
		}
	}
	// Sets must be independent despite the shared backing.
	batch[1].Fill()
	batch[2].Add(69)
	if !batch[0].Empty() || !batch[3].Empty() {
		t.Fatal("batch sets alias each other")
	}
	if batch[1].Count() != 70 || batch[2].Count() != 1 {
		t.Fatalf("batch contents wrong: %d, %d", batch[1].Count(), batch[2].Count())
	}
	// The word slices are capacity-capped so one set cannot grow into
	// its neighbor's words.
	if cap(batch[0].Words()) != len(batch[0].Words()) {
		t.Fatal("batch words not capacity-capped")
	}
	if out := NewBatch(0, 10); len(out) != 0 {
		t.Fatal("empty batch")
	}
}

func TestFillTrim(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Fatalf("Fill(%d): count=%d", n, s.Count())
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromIndices(200, []int{1, 5, 70, 150})
	b := FromIndices(200, []int{5, 70, 199})

	and := a.Clone()
	and.And(b)
	if got := and.Indices(); !equalInts(got, []int{5, 70}) {
		t.Fatalf("And = %v", got)
	}
	or := a.Clone()
	or.Or(b)
	if got := or.Indices(); !equalInts(got, []int{1, 5, 70, 150, 199}) {
		t.Fatalf("Or = %v", got)
	}
	diff := a.Clone()
	diff.AndNot(b)
	if got := diff.Indices(); !equalInts(got, []int{1, 150}) {
		t.Fatalf("AndNot = %v", got)
	}
	xor := a.Clone()
	xor.Xor(b)
	if got := xor.Indices(); !equalInts(got, []int{1, 150, 199}) {
		t.Fatalf("Xor = %v", got)
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched widths did not panic")
		}
	}()
	a.And(b)
}

func TestIntersectInto(t *testing.T) {
	a := FromIndices(100, []int{1, 2, 3, 80})
	b := FromIndices(100, []int{2, 3, 99})
	dst := New(100)
	dst.Add(50) // stale content must be overwritten
	IntersectInto(dst, a, b)
	if got := dst.Indices(); !equalInts(got, []int{2, 3}) {
		t.Fatalf("IntersectInto = %v", got)
	}
	if AndCount(a, b) != 2 {
		t.Fatalf("AndCount = %d, want 2", AndCount(a, b))
	}
	// Aliasing dst with an operand is allowed.
	IntersectInto(a, a, b)
	if got := a.Indices(); !equalInts(got, []int{2, 3}) {
		t.Fatalf("aliased IntersectInto = %v", got)
	}
}

func TestSubsetEqualIntersects(t *testing.T) {
	a := FromIndices(70, []int{0, 65})
	b := FromIndices(70, []int{0, 3, 65})
	if !a.SubsetOf(b) {
		t.Fatal("a should be a subset of b")
	}
	if b.SubsetOf(a) {
		t.Fatal("b should not be a subset of a")
	}
	if !a.SubsetOf(a) || !a.Equal(a.Clone()) {
		t.Fatal("reflexivity failed")
	}
	if a.Equal(b) {
		t.Fatal("a != b expected")
	}
	if !a.Intersects(b) {
		t.Fatal("a intersects b expected")
	}
	c := FromIndices(70, []int{1, 2})
	if a.Intersects(c) {
		t.Fatal("a and c are disjoint")
	}
	if !New(70).SubsetOf(a) {
		t.Fatal("empty set is subset of everything")
	}
	// Sets of different widths are never Equal.
	if New(70).Equal(New(71)) {
		t.Fatal("different widths must not be Equal")
	}
}

func TestForEachOrderAndStop(t *testing.T) {
	s := FromIndices(300, []int{5, 64, 128, 255, 299})
	var got []int
	s.ForEach(func(i int) bool {
		got = append(got, i)
		return true
	})
	if !equalInts(got, []int{5, 64, 128, 255, 299}) {
		t.Fatalf("ForEach order = %v", got)
	}
	var first []int
	s.ForEach(func(i int) bool {
		first = append(first, i)
		return len(first) < 2
	})
	if !equalInts(first, []int{5, 64}) {
		t.Fatalf("early stop = %v", first)
	}
}

func TestContainsAll(t *testing.T) {
	s := FromIndices(100, []int{3, 10, 64})
	if !s.ContainsAll([]int{10, 3}) {
		t.Fatal("ContainsAll subset failed")
	}
	if s.ContainsAll([]int{3, 11}) {
		t.Fatal("ContainsAll should reject missing bit")
	}
	if !s.ContainsAll(nil) {
		t.Fatal("ContainsAll(nil) should be true")
	}
}

func TestCopyClearClone(t *testing.T) {
	a := FromIndices(80, []int{1, 79})
	b := New(80)
	b.Copy(a)
	if !a.Equal(b) {
		t.Fatal("Copy failed")
	}
	c := a.Clone()
	a.Clear()
	if !a.Empty() {
		t.Fatal("Clear failed")
	}
	if c.Count() != 2 {
		t.Fatal("Clone must be independent of the original")
	}
}

func TestString(t *testing.T) {
	if got := FromIndices(10, []int{1, 3}).String(); got != "{1 3}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

// --- property-based tests against a map-based reference implementation ---

type refSet map[int]bool

func randomPair(r *rand.Rand, n int) (*Set, refSet) {
	s, ref := New(n), refSet{}
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			s.Add(i)
			ref[i] = true
		}
	}
	return s, ref
}

func refIndices(ref refSet) []int {
	out := make([]int, 0, len(ref))
	for i := range ref {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func TestQuickAlgebraMatchesReference(t *testing.T) {
	f := func(seed int64, width uint16) bool {
		n := int(width%257) + 1
		r := rand.New(rand.NewSource(seed))
		a, ra := randomPair(r, n)
		b, rb := randomPair(r, n)

		and := a.Clone()
		and.And(b)
		or := a.Clone()
		or.Or(b)
		diff := a.Clone()
		diff.AndNot(b)
		xor := a.Clone()
		xor.Xor(b)

		wantAnd, wantOr, wantDiff, wantXor := refSet{}, refSet{}, refSet{}, refSet{}
		for i := 0; i < n; i++ {
			if ra[i] && rb[i] {
				wantAnd[i] = true
			}
			if ra[i] || rb[i] {
				wantOr[i] = true
			}
			if ra[i] && !rb[i] {
				wantDiff[i] = true
			}
			if ra[i] != rb[i] {
				wantXor[i] = true
			}
		}
		return equalInts(and.Indices(), refIndices(wantAnd)) &&
			equalInts(or.Indices(), refIndices(wantOr)) &&
			equalInts(diff.Indices(), refIndices(wantDiff)) &&
			equalInts(xor.Indices(), refIndices(wantXor)) &&
			and.Count() == len(wantAnd) &&
			AndCount(a, b) == len(wantAnd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubsetDefinition(t *testing.T) {
	f := func(seed int64, width uint16) bool {
		n := int(width%200) + 1
		r := rand.New(rand.NewSource(seed))
		a, ra := randomPair(r, n)
		b, rb := randomPair(r, n)
		want := true
		for i := range ra {
			if ra[i] && !rb[i] {
				want = false
			}
		}
		return a.SubsetOf(b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// a \ b == a ∩ (universe \ b): AndNot agrees with And of complement.
	f := func(seed int64, width uint16) bool {
		n := int(width%150) + 1
		r := rand.New(rand.NewSource(seed))
		a, _ := randomPair(r, n)
		b, _ := randomPair(r, n)
		left := a.Clone()
		left.AndNot(b)
		comp := New(n)
		comp.Fill()
		comp.AndNot(b)
		right := a.Clone()
		right.And(comp)
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- fused popcount kernels (AndCount, AndNotCount, AndNotAndNotCount) ---

// The kernels must agree with the naive bit-probe definitions for random
// sets of random widths (crossing word boundaries both ways).
func TestQuickFusedCountKernels(t *testing.T) {
	f := func(seed int64, width uint16) bool {
		n := int(width%300) + 1
		r := rand.New(rand.NewSource(seed))
		a, _ := randomPair(r, n)
		b, _ := randomPair(r, n)
		c, _ := randomPair(r, n)
		and, andNot, andNotAndNot := 0, 0, 0
		for i := 0; i < n; i++ {
			switch {
			case a.Contains(i) && b.Contains(i):
				and++
			case a.Contains(i) && !b.Contains(i):
				andNot++
			}
			if a.Contains(i) && !b.Contains(i) && !c.Contains(i) {
				andNotAndNot++
			}
		}
		return AndCount(a, b) == and &&
			AndNotCount(a, b) == andNot &&
			AndNotAndNotCount(a, b, c) == andNotAndNot
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The complement of an operand must not leak bits beyond the width: the
// dead bits of ^b and ^c in the trailing word are masked out by a's
// invariant-zero dead bits.
func TestFusedCountsTrailingWordMasking(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 70, 127, 128, 129} {
		full := New(n)
		full.Fill()
		empty := New(n)
		if got := AndNotCount(full, empty); got != n {
			t.Fatalf("width %d: AndNotCount(full, empty) = %d, want %d", n, got, n)
		}
		if got := AndNotAndNotCount(full, empty, empty); got != n {
			t.Fatalf("width %d: AndNotAndNotCount(full, empty, empty) = %d, want %d", n, got, n)
		}
		if got := AndCount(full, full); got != n {
			t.Fatalf("width %d: AndCount(full, full) = %d, want %d", n, got, n)
		}
		if got := AndNotAndNotCount(full, full, empty); got != 0 {
			t.Fatalf("width %d: AndNotAndNotCount(full, full, empty) = %d, want 0", n, got)
		}
	}
}

func TestFusedCountWidthMismatchPanics(t *testing.T) {
	a, b, c := New(10), New(10), New(11)
	for name, fn := range map[string]func(){
		"AndCount":               func() { AndCount(a, c) },
		"AndNotCount":            func() { AndNotCount(a, c) },
		"AndNotAndNotCount-mid":  func() { AndNotAndNotCount(a, c, b) },
		"AndNotAndNotCount-last": func() { AndNotAndNotCount(a, b, c) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with mismatched widths did not panic", name)
				}
			}()
			fn()
		}()
	}
}
