//go:build !bitset_scalar

package bitset

import "math/bits"

// This file holds the striped word cores behind every exported kernel
// and set operation. Above a width gate, each core processes
// stripeWords words per iteration with independent accumulators — the
// unrolled bodies have no loop-carried dependency between lanes, so
// the four popcounts issue back to back instead of serializing on one
// register — and finishes with a scalar tail over the remaining words
// (the trailing word's dead bits are already masked by the
// package-wide width invariant, so the tail needs no extra masking).
// Below the gate the cores run the plain one-word loop: the stripe
// prologue (operand re-slicing, truncated bound, accumulator merge) is
// pure overhead when there are only a handful of stripes, and measured
// 15–30% slower than scalar on ≤16-word sets.
//
// The exported signatures in bitset.go are unchanged. Building with
// `-tags bitset_scalar` swaps in the original one-word-at-a-time loops
// from kernels_scalar.go as a differential reference; striped_test.go
// asserts the two builds agree on every width boundary, including the
// gate boundaries.
//
// Loop shape and thresholds were chosen by measurement on the
// development hardware (see README "Kernels"): an index loop over a
// truncated bound (n := len &^ 3) with the secondary operands
// pre-shrunk to len(a) — re-slicing the operands each stripe
// (a = a[4:]) loses the gain to slice-header updates, and bounding the
// loop by i+4 <= len defeats bounds-check elimination; 8-wide stripes
// measured no better than 4-wide on long sets. The dense-input ceiling
// is real (a scalar popcount loop already runs near the issue width of
// this hardware), so the count/logic stripes only engage on long sets;
// the weighted-sum cores additionally skip the bit-walk of all-zero
// stripes, which pays 1.5–2.5× on the sparse tidsets of deep search
// branches and engages at a much lower width.
const (
	// stripeWords is the unroll factor of the striped cores, in words.
	stripeWords = 4
	// stripeMinWords gates the striped count/logic/predicate paths:
	// shorter inputs run the scalar loop. Dense-input crossover
	// measured between 64 words (scalar ~6% ahead) and 256 words
	// (striped level to ~1.1× ahead).
	stripeMinWords = 128
	// stripeMinSumWords gates the weighted-sum stripes (which carry
	// the all-zero-stripe skip): the skip already wins on sparse sets
	// at a few stripes, so only sub-2-stripe inputs run scalar.
	stripeMinSumWords = 2 * stripeWords
	// scalarKernels reports which build of the cores is active, for
	// tests and benchmarks that label their output.
	scalarKernels = false
)

// countWords returns Σ popcount(a[i]).
func countWords(a []uint64) int {
	i, c := 0, 0
	if len(a) >= stripeMinWords {
		var c0, c1, c2, c3 int
		n := len(a) &^ (stripeWords - 1)
		for ; i < n; i += stripeWords {
			c0 += bits.OnesCount64(a[i])
			c1 += bits.OnesCount64(a[i+1])
			c2 += bits.OnesCount64(a[i+2])
			c3 += bits.OnesCount64(a[i+3])
		}
		c = c0 + c1 + c2 + c3
	}
	for ; i < len(a); i++ {
		c += bits.OnesCount64(a[i])
	}
	return c
}

// andCountWords returns Σ popcount(a[i] & b[i]).
func andCountWords(a, b []uint64) int {
	b = b[:len(a)]
	i, c := 0, 0
	if len(a) >= stripeMinWords {
		var c0, c1, c2, c3 int
		n := len(a) &^ (stripeWords - 1)
		for ; i < n; i += stripeWords {
			c0 += bits.OnesCount64(a[i] & b[i])
			c1 += bits.OnesCount64(a[i+1] & b[i+1])
			c2 += bits.OnesCount64(a[i+2] & b[i+2])
			c3 += bits.OnesCount64(a[i+3] & b[i+3])
		}
		c = c0 + c1 + c2 + c3
	}
	for ; i < len(a); i++ {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

// andNotCountWords returns Σ popcount(a[i] &^ b[i]).
func andNotCountWords(a, b []uint64) int {
	b = b[:len(a)]
	i, c := 0, 0
	if len(a) >= stripeMinWords {
		var c0, c1, c2, c3 int
		n := len(a) &^ (stripeWords - 1)
		for ; i < n; i += stripeWords {
			c0 += bits.OnesCount64(a[i] &^ b[i])
			c1 += bits.OnesCount64(a[i+1] &^ b[i+1])
			c2 += bits.OnesCount64(a[i+2] &^ b[i+2])
			c3 += bits.OnesCount64(a[i+3] &^ b[i+3])
		}
		c = c0 + c1 + c2 + c3
	}
	for ; i < len(a); i++ {
		c += bits.OnesCount64(a[i] &^ b[i])
	}
	return c
}

// andNotAndNotCountWords returns Σ popcount(a[i] &^ b[i] &^ c[i]).
func andNotAndNotCountWords(a, b, c []uint64) int {
	b = b[:len(a)]
	c = c[:len(a)]
	i, out := 0, 0
	if len(a) >= stripeMinWords {
		var c0, c1, c2, c3 int
		n := len(a) &^ (stripeWords - 1)
		for ; i < n; i += stripeWords {
			c0 += bits.OnesCount64(a[i] &^ b[i] &^ c[i])
			c1 += bits.OnesCount64(a[i+1] &^ b[i+1] &^ c[i+1])
			c2 += bits.OnesCount64(a[i+2] &^ b[i+2] &^ c[i+2])
			c3 += bits.OnesCount64(a[i+3] &^ b[i+3] &^ c[i+3])
		}
		out = c0 + c1 + c2 + c3
	}
	for ; i < len(a); i++ {
		out += bits.OnesCount64(a[i] &^ b[i] &^ c[i])
	}
	return out
}

// intersectWords sets dst[i] = a[i] & b[i]. dst may alias a or b.
func intersectWords(dst, a, b []uint64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	i := 0
	if len(dst) >= stripeMinWords {
		n := len(dst) &^ (stripeWords - 1)
		for ; i < n; i += stripeWords {
			dst[i] = a[i] & b[i]
			dst[i+1] = a[i+1] & b[i+1]
			dst[i+2] = a[i+2] & b[i+2]
			dst[i+3] = a[i+3] & b[i+3]
		}
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] & b[i]
	}
}

// andWords sets a[i] &= b[i].
func andWords(a, b []uint64) {
	b = b[:len(a)]
	i := 0
	if len(a) >= stripeMinWords {
		n := len(a) &^ (stripeWords - 1)
		for ; i < n; i += stripeWords {
			a[i] &= b[i]
			a[i+1] &= b[i+1]
			a[i+2] &= b[i+2]
			a[i+3] &= b[i+3]
		}
	}
	for ; i < len(a); i++ {
		a[i] &= b[i]
	}
}

// orWords sets a[i] |= b[i] (union).
func orWords(a, b []uint64) {
	b = b[:len(a)]
	i := 0
	if len(a) >= stripeMinWords {
		n := len(a) &^ (stripeWords - 1)
		for ; i < n; i += stripeWords {
			a[i] |= b[i]
			a[i+1] |= b[i+1]
			a[i+2] |= b[i+2]
			a[i+3] |= b[i+3]
		}
	}
	for ; i < len(a); i++ {
		a[i] |= b[i]
	}
}

// andNotWords sets a[i] &^= b[i] (subtraction).
func andNotWords(a, b []uint64) {
	b = b[:len(a)]
	i := 0
	if len(a) >= stripeMinWords {
		n := len(a) &^ (stripeWords - 1)
		for ; i < n; i += stripeWords {
			a[i] &^= b[i]
			a[i+1] &^= b[i+1]
			a[i+2] &^= b[i+2]
			a[i+3] &^= b[i+3]
		}
	}
	for ; i < len(a); i++ {
		a[i] &^= b[i]
	}
}

// xorWords sets a[i] ^= b[i].
func xorWords(a, b []uint64) {
	b = b[:len(a)]
	i := 0
	if len(a) >= stripeMinWords {
		n := len(a) &^ (stripeWords - 1)
		for ; i < n; i += stripeWords {
			a[i] ^= b[i]
			a[i+1] ^= b[i+1]
			a[i+2] ^= b[i+2]
			a[i+3] ^= b[i+3]
		}
	}
	for ; i < len(a); i++ {
		a[i] ^= b[i]
	}
}

// equalWords reports a[i] == b[i] for all i, early-exiting per stripe:
// the four lanes fold into one OR before the single branch.
func equalWords(a, b []uint64) bool {
	b = b[:len(a)]
	i := 0
	if len(a) >= stripeMinWords {
		n := len(a) &^ (stripeWords - 1)
		for ; i < n; i += stripeWords {
			if (a[i]^b[i])|(a[i+1]^b[i+1])|(a[i+2]^b[i+2])|(a[i+3]^b[i+3]) != 0 {
				return false
			}
		}
	}
	for ; i < len(a); i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// subsetWords reports a[i] &^ b[i] == 0 for all i (a ⊆ b), early-exiting
// per stripe.
func subsetWords(a, b []uint64) bool {
	b = b[:len(a)]
	i := 0
	if len(a) >= stripeMinWords {
		n := len(a) &^ (stripeWords - 1)
		for ; i < n; i += stripeWords {
			if (a[i]&^b[i])|(a[i+1]&^b[i+1])|(a[i+2]&^b[i+2])|(a[i+3]&^b[i+3]) != 0 {
				return false
			}
		}
	}
	for ; i < len(a); i++ {
		if a[i]&^b[i] != 0 {
			return false
		}
	}
	return true
}

// intersectsWords reports a[i] & b[i] != 0 for some i, early-exiting per
// stripe.
func intersectsWords(a, b []uint64) bool {
	b = b[:len(a)]
	i := 0
	if len(a) >= stripeMinWords {
		n := len(a) &^ (stripeWords - 1)
		for ; i < n; i += stripeWords {
			if (a[i]&b[i])|(a[i+1]&b[i+1])|(a[i+2]&b[i+2])|(a[i+3]&b[i+3]) != 0 {
				return true
			}
		}
	}
	for ; i < len(a); i++ {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}

// intersectSumWords sets dst[i] = a[i] & b[i] and returns the weighted
// sum of the result's set bits, accumulated strictly in ascending bit
// order (each addition is total += w[bit], same association as the
// scalar core — the float result is bit-identical by contract). The
// stripe only unrolls the word intersection; an all-zero stripe skips
// its four bit walks entirely, which is the common case on the sparse
// tidsets of deep search branches.
func intersectSumWords(dst, a, b []uint64, w []float64) float64 {
	a = a[:len(dst)]
	b = b[:len(dst)]
	total := 0.0
	i := 0
	if len(dst) >= stripeMinSumWords {
		n := len(dst) &^ (stripeWords - 1)
		for ; i < n; i += stripeWords {
			w0 := a[i] & b[i]
			w1 := a[i+1] & b[i+1]
			w2 := a[i+2] & b[i+2]
			w3 := a[i+3] & b[i+3]
			dst[i], dst[i+1], dst[i+2], dst[i+3] = w0, w1, w2, w3
			if w0|w1|w2|w3 != 0 {
				base := i * wordBits
				total = addWeighted(total, w0, w, base)
				total = addWeighted(total, w1, w, base+wordBits)
				total = addWeighted(total, w2, w, base+2*wordBits)
				total = addWeighted(total, w3, w, base+3*wordBits)
			}
		}
	}
	for ; i < len(dst); i++ {
		word := a[i] & b[i]
		dst[i] = word
		total = addWeighted(total, word, w, i*wordBits)
	}
	return total
}

// weightedSumWords returns the weighted sum of a's set bits, ascending
// bit order, with the same all-zero stripe skip as intersectSumWords.
func weightedSumWords(a []uint64, w []float64) float64 {
	total := 0.0
	i := 0
	if len(a) >= stripeMinSumWords {
		n := len(a) &^ (stripeWords - 1)
		for ; i < n; i += stripeWords {
			w0, w1, w2, w3 := a[i], a[i+1], a[i+2], a[i+3]
			if w0|w1|w2|w3 != 0 {
				base := i * wordBits
				total = addWeighted(total, w0, w, base)
				total = addWeighted(total, w1, w, base+wordBits)
				total = addWeighted(total, w2, w, base+2*wordBits)
				total = addWeighted(total, w3, w, base+3*wordBits)
			}
		}
	}
	for ; i < len(a); i++ {
		total = addWeighted(total, a[i], w, i*wordBits)
	}
	return total
}
