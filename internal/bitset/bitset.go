// Package bitset provides dense, fixed-width bitmaps used throughout the
// repository both as transaction tidsets (one bit per transaction) and as
// item rows (one bit per item of a view). All operations are word-wise on
// 64-bit words; none allocate unless explicitly documented.
//
// Every kernel and set operation runs on a shared layer of word cores
// that, above a measured width gate, process 4-word stripes per
// iteration with a scalar tail, and below it run the plain one-word
// loop (see kernels_striped.go). Building with `-tags bitset_scalar`
// swaps in the original one-word loops as a differential reference;
// the exported signatures and all results — including the bit-exact
// float accumulation order of IntersectIntoSum and WeightedSum — are
// identical under both builds.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// WordBits is the width of one storage word, for hot loops that walk
// Words() directly and need to convert word indices to bit positions.
const WordBits = wordBits

// Set is a fixed-width bitmap. The zero value is an empty set of width 0;
// use New to create a set of a given width. Bits at positions >= width are
// always zero (maintained as an invariant by all operations).
type Set struct {
	words []uint64
	n     int // width in bits
}

// New returns an empty set able to hold n bits.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative width %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// NewBatch returns count empty sets of width n carved out of a single
// backing words allocation, for bulk materialization of tidsets that
// are retained together (e.g. the per-view supports of a candidate
// set): two allocations instead of 2·count. The sets are independent —
// their word slices do not overlap — but share the backing array's
// lifetime.
func NewBatch(count, n int) []Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative width %d", n))
	}
	w := (n + wordBits - 1) / wordBits
	words := make([]uint64, count*w)
	sets := make([]Set, count)
	for i := range sets {
		sets[i] = Set{words: words[i*w : (i+1)*w : (i+1)*w], n: n}
	}
	return sets
}

// FromIndices returns a set of width n with exactly the given bits set.
func FromIndices(n int, idx []int) *Set {
	s := New(n)
	for _, i := range idx {
		s.Add(i)
	}
	return s
}

// Len returns the width of the set in bits.
func (s *Set) Len() int { return s.n }

// Words exposes the underlying words for read-only iteration by hot loops.
func (s *Set) Words() []uint64 { return s.words }

// Add sets bit i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	return countWords(s.words)
}

// Empty reports whether no bit is set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Copy overwrites s with the contents of o. Widths must match.
func (s *Set) Copy(o *Set) {
	s.mustMatch(o)
	copy(s.words, o.words)
}

// Clear unsets all bits.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Reset re-widths s to n bits and clears every bit, growing in place:
// the existing word storage is reused whenever its capacity suffices,
// so resetting inside a hot loop does not allocate in steady state.
func (s *Set) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative width %d", n))
	}
	w := (n + wordBits - 1) / wordBits
	if cap(s.words) >= w {
		s.words = s.words[:w]
		for i := range s.words {
			s.words[i] = 0
		}
	} else {
		s.words = make([]uint64, w)
	}
	s.n = n
}

// Fill sets all bits in [0, width).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim zeroes the bits beyond the width in the last word.
func (s *Set) trim() {
	if r := s.n % wordBits; r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(r)) - 1
	}
}

func (s *Set) mustMatch(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: width mismatch %d != %d", s.n, o.n))
	}
}

// And sets s = s ∩ o.
func (s *Set) And(o *Set) {
	s.mustMatch(o)
	andWords(s.words, o.words)
}

// Or sets s = s ∪ o (set union).
func (s *Set) Or(o *Set) {
	s.mustMatch(o)
	orWords(s.words, o.words)
}

// AndNot sets s = s \ o (set subtraction).
func (s *Set) AndNot(o *Set) {
	s.mustMatch(o)
	andNotWords(s.words, o.words)
}

// Xor sets s = s △ o (symmetric difference).
func (s *Set) Xor(o *Set) {
	s.mustMatch(o)
	xorWords(s.words, o.words)
}

// IntersectInto sets dst = a ∩ b, reusing dst's storage. All three must have
// the same width. dst may alias a or b.
func IntersectInto(dst, a, b *Set) {
	a.mustMatch(b)
	a.mustMatch(dst)
	intersectWords(dst.words, a.words, b.words)
}

// IntersectIntoSum sets dst = a ∩ b like IntersectInto and returns
// Σ_{i ∈ dst} w[i], accumulated in ascending bit order — the same order
// as ForEach, so the sum is bit-identical to iterating the intersection
// after the fact. The striped core only unrolls the word intersection;
// the accumulation is still one addition per set bit in ascending bit
// order, so the float result is bit-identical under both kernel builds
// (that identity is part of the contract — the exact search's rub
// bounds must not depend on the kernel build). w must cover the set
// width. Fusing the intersection with the weighted sum saves the hot
// search loops a second pass over the words (the exact search's rub
// bound is a tub-weighted sum over every freshly intersected tidset).
func IntersectIntoSum(dst, a, b *Set, w []float64) float64 {
	a.mustMatch(b)
	a.mustMatch(dst)
	return intersectSumWords(dst.words, a.words, b.words, w)
}

// WeightedSum returns Σ_{i ∈ s} w[i], accumulated in ascending bit
// order — one addition per set bit, same association under both kernel
// builds, so the float result is bit-identical by contract. w must
// cover the set width. It is the kernel behind the cover state's
// tub-weighted sums (core.State.SumTub).
func WeightedSum(s *Set, w []float64) float64 {
	return weightedSumWords(s.words, w)
}

// addWeighted folds w[base+j] into total for every set bit j of word,
// in ascending bit order, one addition at a time. Shared by both kernel
// builds so the accumulation association is identical by construction.
func addWeighted(total float64, word uint64, w []float64, base int) float64 {
	for word != 0 {
		total += w[base+bits.TrailingZeros64(word)]
		word &= word - 1
	}
	return total
}

// AndCount returns |a ∩ b| in one fused pass: no temporary set, one
// popcount per word. It is the kernel behind the columnar cover state's
// "items that become covered" count.
func AndCount(a, b *Set) int {
	a.mustMatch(b)
	return andCountWords(a.words, b.words)
}

// AndNotCount returns |a \ b| in one fused pass.
func AndNotCount(a, b *Set) int {
	a.mustMatch(b)
	return andNotCountWords(a.words, b.words)
}

// AndNotAndNotCount returns |a \ (b ∪ c)| in one fused pass: no
// temporary set, single loop, one popcount per word. It is the kernel
// behind the columnar cover state's "items that become errors" count
// (transactions in the support that neither contain the item nor
// already carry it as an error). Note ^b and ^c set the dead bits past
// the width, but a's trailing word keeps them zero (the package-wide
// invariant), so the conjunction masks them back out.
func AndNotAndNotCount(a, b, c *Set) int {
	a.mustMatch(b)
	a.mustMatch(c)
	return andNotAndNotCountWords(a.words, b.words, c.words)
}

// Equal reports whether s and o contain exactly the same bits. It
// early-exits on the first differing stripe.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	return equalWords(s.words, o.words)
}

// SubsetOf reports whether every bit of s is also set in o. It
// early-exits on the first violating stripe.
func (s *Set) SubsetOf(o *Set) bool {
	s.mustMatch(o)
	return subsetWords(s.words, o.words)
}

// Intersects reports whether s and o share at least one bit. It
// early-exits on the first intersecting stripe.
func (s *Set) Intersects(o *Set) bool {
	s.mustMatch(o)
	return intersectsWords(s.words, o.words)
}

// ContainsAll reports whether every index in idx is set, exiting on the
// first missing one. idx must be within range; it does not need to be
// sorted, but sorted slices (itemsets are kept sorted) probe each
// 64-bit word once instead of once per index.
func (s *Set) ContainsAll(idx []int) bool {
	words := s.words
	wi := -1
	var w uint64
	for _, i := range idx {
		s.check(i)
		if j := i / wordBits; j != wi {
			wi, w = j, words[j]
		}
		if w&(1<<uint(i%wordBits)) == 0 {
			return false
		}
	}
	return true
}

// ForEach calls f for every set bit in ascending order. If f returns false,
// iteration stops early.
func (s *Set) ForEach(f func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Indices returns the set bits in ascending order as a fresh slice.
func (s *Set) Indices() []int {
	return s.AppendIndices(make([]int, 0, s.Count()))
}

// AppendIndices appends the set bits to dst in ascending order, for
// callers recycling an id buffer across rows (the serving layer's
// per-row translations).
func (s *Set) AppendIndices(dst []int) []int {
	s.ForEach(func(i int) bool {
		dst = append(dst, i)
		return true
	})
	return dst
}

// String renders the set as {i1 i2 ...} for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
