// Package bitset provides dense, fixed-width bitmaps used throughout the
// repository both as transaction tidsets (one bit per transaction) and as
// item rows (one bit per item of a view). All operations are word-wise on
// 64-bit words; none allocate unless explicitly documented.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// WordBits is the width of one storage word, for hot loops that walk
// Words() directly and need to convert word indices to bit positions.
const WordBits = wordBits

// Set is a fixed-width bitmap. The zero value is an empty set of width 0;
// use New to create a set of a given width. Bits at positions >= width are
// always zero (maintained as an invariant by all operations).
type Set struct {
	words []uint64
	n     int // width in bits
}

// New returns an empty set able to hold n bits.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative width %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// NewBatch returns count empty sets of width n carved out of a single
// backing words allocation, for bulk materialization of tidsets that
// are retained together (e.g. the per-view supports of a candidate
// set): two allocations instead of 2·count. The sets are independent —
// their word slices do not overlap — but share the backing array's
// lifetime.
func NewBatch(count, n int) []Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative width %d", n))
	}
	w := (n + wordBits - 1) / wordBits
	words := make([]uint64, count*w)
	sets := make([]Set, count)
	for i := range sets {
		sets[i] = Set{words: words[i*w : (i+1)*w : (i+1)*w], n: n}
	}
	return sets
}

// FromIndices returns a set of width n with exactly the given bits set.
func FromIndices(n int, idx []int) *Set {
	s := New(n)
	for _, i := range idx {
		s.Add(i)
	}
	return s
}

// Len returns the width of the set in bits.
func (s *Set) Len() int { return s.n }

// Words exposes the underlying words for read-only iteration by hot loops.
func (s *Set) Words() []uint64 { return s.words }

// Add sets bit i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bit is set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Copy overwrites s with the contents of o. Widths must match.
func (s *Set) Copy(o *Set) {
	s.mustMatch(o)
	copy(s.words, o.words)
}

// Clear unsets all bits.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Reset re-widths s to n bits and clears every bit, growing in place:
// the existing word storage is reused whenever its capacity suffices,
// so resetting inside a hot loop does not allocate in steady state.
func (s *Set) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative width %d", n))
	}
	w := (n + wordBits - 1) / wordBits
	if cap(s.words) >= w {
		s.words = s.words[:w]
		for i := range s.words {
			s.words[i] = 0
		}
	} else {
		s.words = make([]uint64, w)
	}
	s.n = n
}

// Fill sets all bits in [0, width).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim zeroes the bits beyond the width in the last word.
func (s *Set) trim() {
	if r := s.n % wordBits; r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(r)) - 1
	}
}

func (s *Set) mustMatch(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: width mismatch %d != %d", s.n, o.n))
	}
}

// And sets s = s ∩ o.
func (s *Set) And(o *Set) {
	s.mustMatch(o)
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// Or sets s = s ∪ o.
func (s *Set) Or(o *Set) {
	s.mustMatch(o)
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// AndNot sets s = s \ o.
func (s *Set) AndNot(o *Set) {
	s.mustMatch(o)
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// Xor sets s = s △ o (symmetric difference).
func (s *Set) Xor(o *Set) {
	s.mustMatch(o)
	for i := range s.words {
		s.words[i] ^= o.words[i]
	}
}

// IntersectInto sets dst = a ∩ b, reusing dst's storage. All three must have
// the same width. dst may alias a or b.
func IntersectInto(dst, a, b *Set) {
	a.mustMatch(b)
	a.mustMatch(dst)
	for i := range dst.words {
		dst.words[i] = a.words[i] & b.words[i]
	}
}

// IntersectIntoSum sets dst = a ∩ b like IntersectInto and returns
// Σ_{i ∈ dst} w[i], accumulated in ascending bit order — the same order
// as ForEach, so the sum is bit-identical to iterating the intersection
// after the fact. w must cover the set width. Fusing the intersection
// with the weighted sum saves the hot search loops a second pass over
// the words (the exact search's rub bound is a tub-weighted sum over
// every freshly intersected tidset).
func IntersectIntoSum(dst, a, b *Set, w []float64) float64 {
	a.mustMatch(b)
	a.mustMatch(dst)
	total := 0.0
	for i := range dst.words {
		word := a.words[i] & b.words[i]
		dst.words[i] = word
		for word != 0 {
			total += w[i*wordBits+bits.TrailingZeros64(word)]
			word &= word - 1
		}
	}
	return total
}

// AndCount returns |a ∩ b| in one fused pass: no temporary set, one
// popcount per word. It is the kernel behind the columnar cover state's
// "items that become covered" count.
func AndCount(a, b *Set) int {
	a.mustMatch(b)
	c := 0
	for i := range a.words {
		c += bits.OnesCount64(a.words[i] & b.words[i])
	}
	return c
}

// AndNotCount returns |a \ b| in one fused pass.
func AndNotCount(a, b *Set) int {
	a.mustMatch(b)
	c := 0
	for i := range a.words {
		c += bits.OnesCount64(a.words[i] &^ b.words[i])
	}
	return c
}

// AndNotAndNotCount returns |a \ (b ∪ c)| in one fused pass: no
// temporary set, single loop, one popcount per word. It is the kernel
// behind the columnar cover state's "items that become errors" count
// (transactions in the support that neither contain the item nor
// already carry it as an error). Note ^b and ^c set the dead bits past
// the width, but a's trailing word keeps them zero (the package-wide
// invariant), so the conjunction masks them back out.
func AndNotAndNotCount(a, b, c *Set) int {
	a.mustMatch(b)
	a.mustMatch(c)
	n := 0
	for i := range a.words {
		n += bits.OnesCount64(a.words[i] &^ b.words[i] &^ c.words[i])
	}
	return n
}

// Equal reports whether s and o contain exactly the same bits.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every bit of s is also set in o.
func (s *Set) SubsetOf(o *Set) bool {
	s.mustMatch(o)
	for i := range s.words {
		if s.words[i]&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and o share at least one bit.
func (s *Set) Intersects(o *Set) bool {
	s.mustMatch(o)
	for i := range s.words {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// ContainsAll reports whether every index in idx is set. idx must be within
// range; it does not need to be sorted.
func (s *Set) ContainsAll(idx []int) bool {
	for _, i := range idx {
		if !s.Contains(i) {
			return false
		}
	}
	return true
}

// ForEach calls f for every set bit in ascending order. If f returns false,
// iteration stops early.
func (s *Set) ForEach(f func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Indices returns the set bits in ascending order as a fresh slice.
func (s *Set) Indices() []int {
	return s.AppendIndices(make([]int, 0, s.Count()))
}

// AppendIndices appends the set bits to dst in ascending order, for
// callers recycling an id buffer across rows (the serving layer's
// per-row translations).
func (s *Set) AppendIndices(dst []int) []int {
	s.ForEach(func(i int) bool {
		dst = append(dst, i)
		return true
	})
	return dst
}

// String renders the set as {i1 i2 ...} for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
