package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path   string // import path ("twoview/internal/core"), or the directory for ad-hoc loads
	Dir    string
	Fset   *token.FileSet
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// Loader loads and type-checks packages with one shared FileSet and
// one shared importer, so dependencies (stdlib and module-internal)
// are type-checked once per process, not once per package.
//
// Type checking uses the stdlib source importer, which resolves module
// import paths by consulting the go command; the loader therefore
// must run with the module root as working directory (cmd/twovet and
// the tests both do).
type Loader struct {
	Dir  string // module root; "" means the current directory
	fset *token.FileSet
	imp  types.Importer
}

func (l *Loader) init() {
	if l.fset == nil {
		l.fset = token.NewFileSet()
		l.imp = importer.ForCompiler(l.fset, "source", nil)
	}
}

// Load resolves the patterns and type-checks every matched package.
// A pattern naming an existing directory is loaded ad hoc (this is how
// the testdata fixture packages, invisible to `go list`, are loaded);
// anything else is passed to `go list`.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	l.init()
	var pkgs []*Package
	var listPatterns []string
	for _, pat := range patterns {
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.Dir, pat)
		}
		if st, err := os.Stat(dir); err == nil && st.IsDir() && !strings.Contains(pat, "...") {
			p, err := l.loadDir(dir)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, p)
			continue
		}
		listPatterns = append(listPatterns, pat)
	}
	if len(listPatterns) > 0 {
		listed, err := l.goList(listPatterns)
		if err != nil {
			return nil, err
		}
		for _, li := range listed {
			p, err := l.check(li.ImportPath, li.Dir, li.files())
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

// LoadDir loads the single package in dir without consulting `go
// list`, so directories the go tool ignores (testdata fixtures) load
// too. The package path is the cleaned directory path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	l.init()
	return l.loadDir(dir)
}

func (l *Loader) loadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(files)
	return l.check(filepath.Clean(dir), dir, files)
}

func (l *Loader) check(path, dir string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		parsed, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, parsed)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Syntax: syntax, Types: tpkg, Info: info}, nil
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

func (li *listedPackage) files() []string {
	out := make([]string, 0, len(li.GoFiles))
	for _, f := range li.GoFiles {
		out = append(out, filepath.Join(li.Dir, f))
	}
	return out
}

func (l *Loader) goList(patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}
