package lint_test

import (
	"testing"

	"twoview/internal/lint"
	"twoview/internal/lint/linttest"
)

// One fixture package per analyzer; each holds flagged patterns with
// `// want` expectations next to allowed or annotated twins, so every
// test fails both on a missed finding and on a false positive.

func TestDetorder(t *testing.T) {
	linttest.Run(t, "testdata/src/detorder", lint.Detorder)
}

func TestCtxprobe(t *testing.T) {
	linttest.Run(t, "testdata/src/ctxprobe", lint.Ctxprobe)
}

func TestFreelistown(t *testing.T) {
	linttest.Run(t, "testdata/src/freelistown", lint.Freelistown)
}

func TestNowallclock(t *testing.T) {
	linttest.Run(t, "testdata/src/nowallclock", lint.Nowallclock)
}

func TestScratchescape(t *testing.T) {
	linttest.Run(t, "testdata/src/scratchescape", lint.Scratchescape)
}
