package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Freelistown enforces the bitset.FreeList ownership rule from PR 3: a
// Set handed to Put is owned by the free-list — the next Get may return
// it with different contents — so (1) the same variable must not be Put
// twice on one control-flow path, and (2) a value that has escaped the
// function as part of an emitted result (stored into a struct field or
// composite literal, appended to an output slice, returned) must never
// be Put afterwards. Violating either silently corrupts a *different*
// node's tidset later in the walk, the nastiest-to-bisect class of bug
// the allocation-free ECLAT walk can produce.
//
// The analysis is an intraprocedural abstract walk over the control
// flow: the per-path state tracks which variables the free-list
// currently owns (released) and which have escaped into results;
// branch joins union the states of the arms that can fall through, and
// loop bodies are walked twice so back-edge violations surface. Sites
// where a boolean guard provably separates the escape from the Put
// (the `retained` dance in the ECLAT walk) carry //lint:freelistown-ok.
var Freelistown = &Analyzer{
	Name:      "freelistown",
	Directive: "freelistown-ok",
	Doc: "enforce free-list ownership: no double-Put of one variable on a " +
		"control-flow path, and no Put after the value escaped via an emitted " +
		"result. Guarded hand-offs the analysis cannot see through carry " +
		"//lint:freelistown-ok <reason>.",
	Run: runFreelistown,
}

func runFreelistown(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Functions without a FreeList.Put have nothing to violate.
			hasPut := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if _, ok := pass.freeListPutArg(call); ok {
						hasPut = true
					}
				}
				return !hasPut
			})
			if !hasPut {
				continue
			}
			w := &freelistWalker{pass: pass, reported: map[token.Pos]bool{}}
			w.walkBlock(fd.Body.List, newOwnState())
		}
	}
	return nil
}

// freeListPutArg matches calls of bitset.FreeList.Put with a plain
// variable argument.
func (p *Pass) freeListPutArg(call *ast.CallExpr) (*types.Var, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" || len(call.Args) != 1 {
		return nil, false
	}
	fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "FreeList" {
		return nil, false
	}
	if pkg := named.Obj().Pkg(); pkg == nil || !isBitsetPath(pkg.Path()) {
		return nil, false
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, ok := p.ObjectOf(id).(*types.Var)
	return v, ok
}

func isBitsetPath(path string) bool {
	return path == "bitset" || len(path) > 7 && path[len(path)-7:] == "/bitset"
}

// ownState is the per-path abstract state of the walk.
type ownState struct {
	released map[*types.Var]bool // owned by the free-list since the last (re)assignment
	escaped  map[*types.Var]bool // stored into an emitted result on this path
}

func newOwnState() *ownState {
	return &ownState{released: map[*types.Var]bool{}, escaped: map[*types.Var]bool{}}
}

func (s *ownState) clone() *ownState {
	out := newOwnState()
	for k, v := range s.released {
		out.released[k] = v
	}
	for k, v := range s.escaped {
		out.escaped[k] = v
	}
	return out
}

// merge unions src into s: a variable released or escaped on any arm
// that can fall through stays released/escaped afterwards.
func (s *ownState) merge(src *ownState) {
	for k, v := range src.released {
		if v {
			s.released[k] = true
		}
	}
	for k, v := range src.escaped {
		if v {
			s.escaped[k] = true
		}
	}
}

// freelistWalker runs the branch-aware ownership walk. Reports are
// deduplicated by position (loop bodies are walked twice).
type freelistWalker struct {
	pass     *Pass
	reported map[token.Pos]bool
}

// walkBlock walks stmts, mutating st. It returns true when control
// cannot fall out of the list (return / break / continue / goto /
// panic / all arms terminate).
func (w *freelistWalker) walkBlock(stmts []ast.Stmt, st *ownState) bool {
	for _, stmt := range stmts {
		if w.walkStmt(stmt, st) {
			return true
		}
	}
	return false
}

func (w *freelistWalker) walkStmt(stmt ast.Stmt, st *ownState) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
			w.handlePut(call, st)
		}
		w.scanEscapes(s.X, st)
	case *ast.DeferStmt:
		w.handlePut(s.Call, st)
		w.scanEscapes(s.Call, st)
	case *ast.AssignStmt:
		// Pairwise stores into selectors/indices escape the RHS ident;
		// composite literals anywhere in the RHS capture their idents.
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				switch s.Lhs[i].(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					w.markEscape(s.Rhs[i], st)
				}
			}
		}
		for _, rhs := range s.Rhs {
			w.scanEscapes(rhs, st)
		}
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if v, ok := w.pass.ObjectOf(id).(*types.Var); ok {
					// Reassigned: the variable now names a fresh value the
					// caller owns; prior release/escape no longer applies.
					delete(st.released, v)
					delete(st.escaped, v)
				}
			}
		}
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return w.walkBlock(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanEscapes(s.Cond, st)
		thenSt := st.clone()
		thenTerm := w.walkBlock(s.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseSt)
		}
		if !thenTerm {
			st.merge(thenSt)
		}
		if !elseTerm {
			st.merge(elseSt)
		}
		return thenTerm && elseTerm && s.Else != nil
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.walkLoopBody(s.Body, st)
	case *ast.RangeStmt:
		w.walkLoopBody(s.Body, st)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			clauses = sw.Body.List
		case *ast.SelectStmt:
			clauses = sw.Body.List
		}
		for _, c := range clauses {
			var body []ast.Stmt
			switch cc := c.(type) {
			case *ast.CaseClause:
				body = cc.Body
			case *ast.CommClause:
				body = cc.Body
			}
			caseSt := st.clone()
			if !w.walkBlock(body, caseSt) {
				st.merge(caseSt)
			}
		}
	}
	return false
}

// walkLoopBody walks a loop body twice: the first pass establishes the
// per-iteration state, the second catches violations that only appear
// through the back edge (a Put or escape of a variable not re-obtained
// before the next iteration).
func (w *freelistWalker) walkLoopBody(body *ast.BlockStmt, st *ownState) {
	first := st.clone()
	w.walkBlock(body.List, first)
	second := first.clone()
	w.walkBlock(body.List, second)
	st.merge(second)
}

func (w *freelistWalker) handlePut(call *ast.CallExpr, st *ownState) {
	v, ok := w.pass.freeListPutArg(call)
	if !ok {
		return
	}
	switch {
	case st.escaped[v] && !w.reported[call.Pos()]:
		w.reported[call.Pos()] = true
		w.pass.report(call.Pos(),
			"%s escaped into an emitted result on this path and is now recycled with FreeList.Put; "+
				"emitted values must never be recycled (the next Get would alias them)", v.Name())
	case st.released[v] && !w.reported[call.Pos()]:
		w.reported[call.Pos()] = true
		w.pass.report(call.Pos(),
			"possible double-Put of %s: the free-list may already own it, and a double-Put "+
				"aliases the next two Gets to one Set", v.Name())
	}
	st.released[v] = true
}

// markEscape records the escape of a plain-identifier expression.
func (w *freelistWalker) markEscape(e ast.Expr, st *ownState) {
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := w.pass.ObjectOf(id).(*types.Var); ok {
			st.escaped[v] = true
		}
	}
}

// scanEscapes marks idents captured by composite literals or appended
// to slices anywhere inside expression e.
func (w *freelistWalker) scanEscapes(e ast.Expr, st *ownState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				w.markEscape(val, st)
			}
		case *ast.CallExpr:
			if id, ok := node.Fun.(*ast.Ident); ok && id.Name == "append" {
				for _, arg := range node.Args[1:] {
					w.markEscape(arg, st)
				}
			}
		}
		return true
	})
}
