package lint

import (
	"go/ast"
	"go/types"
)

// Detorder guards the repo's first contract: miners return bit-identical
// tables for any worker count, and everything downstream of them
// (facades, figure/table rendering) must preserve that determinism. A
// single `range` over a map in a result-producing path silently breaks
// it — Go randomizes map iteration order per run — which is exactly the
// class of bug the PR 1–4 merge discipline (determinism property tests
// at workers ∈ {1,2,4,7}) exists to catch after the fact. Detorder
// rejects it at lint time instead.
//
// The fix is to iterate a sorted key slice (see
// internal/dataset/discretize.go for the idiomatic pattern) or, when
// the loop is genuinely order-insensitive (a commutative reduction),
// to justify the site with //lint:nondeterministic-ok <reason>.
var Detorder = &Analyzer{
	Name:      "detorder",
	Directive: "nondeterministic-ok",
	Doc: "flag map iteration in result-producing packages " +
		"(internal/core, internal/mine, internal/pool, internal/eval, " +
		"internal/server, internal/fault, internal/shard, internal/wire, " +
		"cmd/shardworker, the facades); " +
		"map order is randomized per run, so any map range that can influence " +
		"emitted results breaks the bit-identical-tables contract. " +
		"Iterate sorted keys, or annotate with //lint:nondeterministic-ok <reason>.",
	Run: runDetorder,
}

// detorderScopes are the result-producing packages: the mining core and
// candidate walk, the worker pool (its merges define result order), the
// experiment/figure renderers (their output is the reproduced paper),
// the public facades, and the serving layer (internal/server emits
// translation responses, internal/fault replays scripted failure
// schedules — both must be bit-reproducible run to run). internal/shard
// joins with the sharded engine: its coordinator folds per-partition
// messages into gains, so any map-ordered walk over partitions or
// pending replies would break the bit-identical-tables contract
// (replies are merged in partition-index order, never arrival or map
// order). internal/wire and cmd/shardworker extend the same contract
// across the network: frames must encode byte-identically run to run
// (a map-ordered walk while serializing would break replayability),
// and the worker daemon's announce/boot walks must follow partition
// order, which is why its hosts and pending lists are slices, never
// maps. Parsers, bit-kernels and baselines are out of scope: their
// maps are lookups or feed order-insensitive summaries.
var detorderScopes = []string{
	"", "internal/core", "internal/mine", "internal/pool", "internal/eval",
	"internal/server", "internal/fault", "internal/shard",
	"internal/wire", "cmd/shardworker",
}

func runDetorder(pass *Pass) error {
	if !hasScope(pass.Pkg.Path(), detorderScopes...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if rng.Key == nil && rng.Value == nil {
				// `for range m {}` runs the body len(m) times with no
				// key exposure; nothing order-dependent can leak.
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				pass.report(rng.Pos(),
					"map iteration order is nondeterministic and this package produces results; "+
						"iterate a sorted key slice, or annotate //lint:nondeterministic-ok <reason>")
			}
			return true
		})
	}
	return nil
}
