// Package lint is the repo's custom static-analysis suite: five
// analyzers that turn the codebase's core invariants — deterministic
// result tables, bounded cancellation latency, free-list ownership, no
// wall-clock/randomness in mined results, no escaping pooled scratch —
// from "property-tested" into "impossible to merge broken". The
// cmd/twovet multichecker runs them over the module in CI, next to vet
// and staticcheck.
//
// The analyzer/pass shape deliberately mirrors
// golang.org/x/tools/go/analysis so the analyzers could be ported to
// the real driver verbatim. The x/tools dependency itself is not
// vendored here — the module is dependency-free by policy — so this
// package carries the minimal stdlib-only driver the suite needs:
// loading via `go list`, type checking via go/types with the source
// importer, and `// want`-comment testing via the sibling linttest
// package.
//
// # Suppressing a finding
//
// Every analyzer honours a justification directive placed on the
// flagged line or on the line directly above it:
//
//	//lint:<key> <reason>
//
// where <key> is the analyzer's directive key (e.g.
// nondeterministic-ok, ctxprobe-ok, freelistown-ok, wallclock-ok,
// scratchescape-ok). The reason is mandatory by convention: the
// directive documents why the invariant holds at this site even though
// the analyzer cannot prove it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in -list output.
	Name string
	// Doc is a one-paragraph description: the invariant the analyzer
	// guards and the escape-hatch directive it honours.
	Doc string
	// Directive is the //lint: key that suppresses this analyzer's
	// findings at a site (empty means the analyzer has no escape hatch).
	Directive string
	// Run reports findings on one package via pass.Reportf.
	Run func(*Pass) error
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
	// directives maps filename -> line -> set of //lint: keys that
	// apply to that line (a directive covers its own line and the line
	// below it, so it can trail the flagged code or sit above it).
	directives map[string]map[int]map[string]bool
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// Suppressed reports whether a //lint:<key> directive covers pos —
// i.e. the directive comment is on the same line as pos or on the line
// directly above it.
func (p *Pass) Suppressed(pos token.Pos, key string) bool {
	if p.directives == nil {
		p.directives = map[string]map[int]map[string]bool{}
		for _, f := range p.Files {
			fname := p.Fset.Position(f.Pos()).Filename
			lines := p.directives[fname]
			if lines == nil {
				lines = map[int]map[string]bool{}
				p.directives[fname] = lines
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:")
					if !ok {
						continue
					}
					fields := strings.Fields(text)
					if len(fields) == 0 {
						continue
					}
					line := p.Fset.Position(c.Pos()).Line
					for _, l := range [2]int{line, line + 1} {
						if lines[l] == nil {
							lines[l] = map[string]bool{}
						}
						lines[l][fields[0]] = true
					}
				}
			}
		}
	}
	at := p.Fset.Position(pos)
	return p.directives[at.Filename][at.Line][key]
}

// report is the shared finding-or-suppress entry used by the
// analyzers: it drops the diagnostic when the analyzer's directive
// covers pos.
func (p *Pass) report(pos token.Pos, format string, args ...any) {
	if p.Analyzer.Directive != "" && p.Suppressed(pos, p.Analyzer.Directive) {
		return
	}
	p.Reportf(pos, format, args...)
}

// Run executes the analyzers over the loaded packages and returns all
// findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Syntax,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(a, b int) bool {
		da, db := diags[a], diags[b]
		if da.Pos.Filename != db.Pos.Filename {
			return da.Pos.Filename < db.Pos.Filename
		}
		if da.Pos.Line != db.Pos.Line {
			return da.Pos.Line < db.Pos.Line
		}
		if da.Pos.Column != db.Pos.Column {
			return da.Pos.Column < db.Pos.Column
		}
		return da.Analyzer < db.Analyzer
	})
	return diags, nil
}

// inModule reports whether a package path belongs to this module.
// Analyzer scopes treat every non-module path (ad-hoc testdata
// fixtures) as in scope, so the testdata packages exercise the checks
// without carrying module-path prefixes.
func inModule(path string) bool {
	return path == modulePath || strings.HasPrefix(path, modulePath+"/")
}

// modulePath is the module this suite lints. The scopes below are
// repo-specific by design: the analyzers encode this codebase's
// invariants, not generic Go style.
const modulePath = "twoview"

// hasScope reports whether path falls under any of the given
// module-relative scopes ("" means exactly the module root package —
// the facade — with no subtree).
func hasScope(path string, scopes ...string) bool {
	if !inModule(path) {
		return true // ad-hoc fixture package: always in scope
	}
	for _, s := range scopes {
		if s == "" {
			if path == modulePath {
				return true
			}
			continue
		}
		full := modulePath + "/" + s
		if path == full || strings.HasPrefix(path, full+"/") {
			return true
		}
	}
	return false
}
