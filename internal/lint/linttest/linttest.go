// Package linttest is the `// want`-comment harness for the
// internal/lint analyzers, in the style of
// golang.org/x/tools/go/analysis/analysistest: a fixture package under
// testdata/ marks each line expected to be flagged with a trailing
//
//	// want `regexp`
//
// comment. Run loads the fixture ad hoc (the go tool ignores testdata
// directories, so the fixtures never build or vet with the module),
// runs one analyzer over it, and fails the test on any missing or
// unexpected diagnostic. Fixtures may import real module packages
// (twoview/internal/bitset and friends); the loader type-checks them
// from source.
package linttest

import (
	"fmt"
	"regexp"
	"testing"

	"twoview/internal/lint"
)

var wantRe = regexp.MustCompile("// want `([^`]+)`")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run checks analyzer a against the fixture package in dir.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	loader := &lint.Loader{}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	wants := collectWants(t, pkg)
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, e := range wants[key] {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: no diagnostic matching %q", key, e.re)
			}
		}
	}
}

// collectWants maps "file:line" to the expectations declared on that
// line of the fixture.
func collectWants(t *testing.T, pkg *lint.Package) map[string][]*expectation {
	t.Helper()
	wants := map[string][]*expectation{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				wants[key] = append(wants[key], &expectation{re: re})
			}
		}
	}
	return wants
}
