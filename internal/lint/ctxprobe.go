package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ctxprobe guards the worker-count-independent cancellation latency
// established in PR 5: every hot loop that submits pool phases or runs
// bit kernels must observe cancellation — directly (ctx.Err/ctx.Done or
// a select), by delegation (calling something that takes the ctx), or
// through a periodic `ticks&ctxProbeMask`-style probe. A new miner loop
// that forgets all three regresses cancellation latency from "bounded"
// to "until the loop finishes", which no functional test catches.
//
// Bounded per-call work that is probed one level up (the per-consequent
// kernel loops inside gainDir/applyDir) carries //lint:ctxprobe-ok.
var Ctxprobe = &Analyzer{
	Name:      "ctxprobe",
	Directive: "ctxprobe-ok",
	Doc: "require a cancellation checkpoint in miner/DFS/walk loops " +
		"(internal/core, internal/mine, internal/shard) that submit pool phases or call " +
		"bitset kernels: a ctx.Err()/ctx.Done() probe, a call threading a " +
		"context.Context, a select, or a *ProbeMask-gated periodic probe. " +
		"Loops whose per-iteration work is bounded and probed by the caller " +
		"carry //lint:ctxprobe-ok <reason>.",
	Run: runCtxprobe,
}

// internal/server is in scope because its handlers own per-request
// deadlines: a serving loop that stops observing its context regresses
// 504s back into held worker slots. internal/shard is in scope because
// its drivers are the miners' round loops re-homed (DFS, speculation
// windows, round gathers): a sharded loop that stops observing its
// context turns cancellation into a wedged supervisor holding N shard
// goroutine groups. cmd/shardworker is in scope for the same reason on
// the far side of the wire: a host loop that stops observing its
// incarnation context would keep scoring for a coordinator that has
// already replaced it. internal/wire is registered so codec loops stay
// covered if they ever grow a kernel call.
var ctxprobeScopes = []string{
	"internal/core", "internal/mine", "internal/server", "internal/shard",
	"internal/wire", "cmd/shardworker",
}

// poolPhaseFuncs are the phase-submission entry points of
// internal/pool: calling one inside a loop makes that loop a
// round-structured hot path.
var poolPhaseFuncs = map[string]bool{
	"Run": true, "RunErr": true, "RunCtx": true, "RunErrCtx": true,
	"MapOrdered": true, "MapOrderedOn": true, "MapOrderedIntoOn": true,
	"MapOrderedIntoCtxOn": true, "MapChunksInto": true,
	"MapChunksIntoOn": true, "MapChunksIntoCtxOn": true,
}

// kernelFuncs are the fused word-loop kernels of internal/bitset (the
// striped-core entry points of kernels_striped.go); a loop over kernel
// calls is a gain/update hot path.
var kernelFuncs = map[string]bool{
	"AndCount": true, "AndNotCount": true, "AndNotAndNotCount": true,
	"IntersectInto": true, "IntersectIntoSum": true, "WeightedSum": true,
}

func runCtxprobe(pass *Pass) error {
	if !hasScope(pass.Pkg.Path(), ctxprobeScopes...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				// Ranging over an array (not slice) has a compile-time
				// constant trip count; those loops are the small fixed
				// per-rule direction sweeps, not hot walks.
				if t := pass.TypeOf(loop.X); t != nil {
					if _, isArray := t.Underlying().(*types.Array); isArray {
						return true
					}
				}
				body = loop.Body
			default:
				return true
			}
			if !pass.loopIsHot(body) || pass.loopHasProbe(body) {
				return true
			}
			pass.report(n.Pos(),
				"loop submits pool phases or runs bitset kernels without a cancellation checkpoint; "+
					"probe ctx (ctx.Err, a ctx-threading call, or a *ProbeMask-gated check) "+
					"or annotate //lint:ctxprobe-ok <reason>")
			return true
		})
	}
	return nil
}

// loopIsHot reports whether body (including nested closures, excluding
// nested loops — those are flagged on their own) contains a pool phase
// submission or a bitset kernel call.
func (p *Pass) loopIsHot(body *ast.BlockStmt) bool {
	hot := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || hot {
			return !hot
		}
		if obj := p.calleeObject(call); obj != nil && obj.Pkg() != nil {
			path := obj.Pkg().Path()
			switch {
			case strings.HasSuffix(path, "/pool") && poolPhaseFuncs[obj.Name()]:
				hot = true
			case strings.HasSuffix(path, "/bitset") && kernelFuncs[obj.Name()]:
				hot = true
			}
		}
		return !hot
	})
	return hot
}

// loopHasProbe reports whether body contains any accepted cancellation
// evidence: a ctx.Err/ctx.Done call, any call threading a
// context.Context argument, a select statement, or a reference to a
// *ProbeMask constant (the periodic-probe idiom).
func (p *Pass) loopHasProbe(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch node := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.Ident:
			if strings.Contains(node.Name, "ProbeMask") || strings.Contains(node.Name, "probeMask") {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
				if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && isContext(p.TypeOf(sel.X)) {
					found = true
					return false
				}
			}
			for _, arg := range node.Args {
				if isContext(p.TypeOf(arg)) {
					found = true
					return false
				}
			}
		}
		return !found
	})
	return found
}

// calleeObject resolves a call's callee to its object (function or
// method), or nil for indirect calls.
func (p *Pass) calleeObject(call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return p.ObjectOf(fun)
	case *ast.SelectorExpr:
		return p.ObjectOf(fun.Sel)
	}
	return nil
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
