package lint

// All returns the full suite in stable order — the set cmd/twovet runs
// and the meta-test in cmd/twovet pins (an analyzer silently falling
// out of the multichecker is itself a regression).
func All() []*Analyzer {
	return []*Analyzer{
		Ctxprobe,
		Detorder,
		Freelistown,
		Nowallclock,
		Scratchescape,
	}
}
