package lint

import (
	"go/ast"
	"go/types"
)

// Nowallclock keeps timing and randomness out of the packages whose
// outputs must be pure functions of (dataset, options): the mining
// core, the candidate walk, the bit kernels, the coder, the itemset
// utilities and the worker pool. A time.Now-derived value or a
// math/rand draw that leaks into a mined table makes runs unreproducible
// in a way no worker-count sweep can catch. Observational timing is
// confined to single annotated helpers — core.stopwatch for the
// reported Result.Runtime metric, server.now for serving-side latency
// reporting — rather than scattered call sites.
var Nowallclock = &Analyzer{
	Name:      "nowallclock",
	Directive: "wallclock-ok",
	Doc: "forbid time.Now/time.Since and math/rand in the mining, kernel, " +
		"translator and serving packages (internal/core, internal/mine, " +
		"internal/bitset, internal/itemset, internal/mdl, internal/pool, " +
		"internal/server, internal/fault, internal/shard) outside _test.go files: " +
		"timing and randomness must never influence mined tables or served " +
		"translations. Purely observational sites carry //lint:wallclock-ok <reason>.",
	Run: runNowallclock,
}

// internal/server and internal/fault join the scope with the serving
// daemon: translations must stay pure functions of (table, row), and
// failpoint schedules must replay identically, so both packages confine
// wall-clock reads to one annotated helper (server.now) and flag any
// new site. Timer-based waiting (time.NewTimer, time.Sleep through a
// scheduled fault delay) is fine; reading the clock is not.
// internal/shard joins with the sharded engine: its supervision runs
// entirely on timers (lease expiry re-arms time.NewTimer) precisely so
// no mining or recovery decision ever reads the clock — a clock-read
// lease would make failure schedules, and therefore runStats,
// machine-dependent. Its one observational read (Result.Runtime's
// stopwatch) is the annotated helper. internal/wire and cmd/shardworker
// extend the same discipline over TCP: redial backoff is deterministic
// doubling, leases travel as durations and run on timers at the
// receiver, and the wire format carries no timestamps — a clock read
// on either side would make connection-failure schedules
// machine-dependent.
var nowallclockScopes = []string{
	"internal/core", "internal/mine", "internal/bitset",
	"internal/itemset", "internal/mdl", "internal/pool",
	"internal/server", "internal/fault", "internal/shard",
	"internal/wire", "cmd/shardworker",
}

// wallClockFuncs are the forbidden time package entry points. Duration
// arithmetic and constants are fine; only reading the clock is not.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runNowallclock(pass *Pass) error {
	if !hasScope(pass.Pkg.Path(), nowallclockScopes...) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			switch imp.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				pass.report(imp.Pos(),
					"math/rand in a determinism-critical package: randomness must never influence mined results")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.ObjectOf(sel.Sel)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if _, isFunc := obj.(*types.Func); isFunc && wallClockFuncs[obj.Name()] {
				pass.report(sel.Pos(),
					"time.%s in a determinism-critical package: wall-clock values must never influence mined results "+
						"(annotate //lint:wallclock-ok <reason> for purely observational metrics)", obj.Name())
			}
			return true
		})
	}
	return nil
}
