package lint

import "testing"

// The serving layer and the sharded engine ride the same determinism
// contracts as the mining core: translations are pure functions of
// (table, row), failpoint schedules replay identically, and the shard
// coordinator's folds must be bit-reproducible under every failure
// schedule. The distributed layer rides them too: internal/wire frames
// must encode byte-identically and carry no timestamps, and
// cmd/shardworker returns the same integers an in-process shard would
// for any clock and any connection-failure schedule. This pins the
// scope registration so a future analyzer refactor cannot silently
// drop internal/server, internal/fault, internal/shard, internal/wire
// or cmd/shardworker out of coverage.
func TestServingPackagesAreInAnalyzerScope(t *testing.T) {
	cases := []struct {
		pkg    string
		name   string
		scopes []string
	}{
		{"twoview/internal/server", "detorder", detorderScopes},
		{"twoview/internal/fault", "detorder", detorderScopes},
		{"twoview/internal/shard", "detorder", detorderScopes},
		{"twoview/internal/server", "ctxprobe", ctxprobeScopes},
		{"twoview/internal/shard", "ctxprobe", ctxprobeScopes},
		{"twoview/internal/server", "nowallclock", nowallclockScopes},
		{"twoview/internal/fault", "nowallclock", nowallclockScopes},
		{"twoview/internal/shard", "nowallclock", nowallclockScopes},
		{"twoview/internal/wire", "detorder", detorderScopes},
		{"twoview/internal/wire", "ctxprobe", ctxprobeScopes},
		{"twoview/internal/wire", "nowallclock", nowallclockScopes},
		{"twoview/cmd/shardworker", "detorder", detorderScopes},
		{"twoview/cmd/shardworker", "ctxprobe", ctxprobeScopes},
		{"twoview/cmd/shardworker", "nowallclock", nowallclockScopes},
	}
	for _, c := range cases {
		if !hasScope(c.pkg, c.scopes...) {
			t.Errorf("%s not in %s scope", c.pkg, c.name)
		}
	}
	// Sanity: scoping still excludes, rather than matching everything.
	if hasScope("twoview/internal/dataset", ctxprobeScopes...) {
		t.Error("internal/dataset unexpectedly in ctxprobe scope")
	}
	if hasScope("twoview/internal/serverless", "internal/server") {
		t.Error("prefix matching leaks across package-name boundaries")
	}
}
