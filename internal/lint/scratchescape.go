package lint

import (
	"go/ast"
	"go/types"
)

// Scratchescape guards the pooled-scratch contract shared by
// core.Session.scratchPool, the Translator's sync.Pool scratch and any
// future pool: a value borrowed from a pool is valid only until the
// matching Put, so storing it into a struct field, a composite
// literal, a package variable, or returning it hands callers a buffer
// that a concurrent borrower will overwrite. That failure mode is a
// data race that -race only catches when two borrowers actually
// collide, which planted tests rarely arrange; the analyzer rejects
// the escape statically.
//
// Borrow sources are calls to sync.Pool.Get (through any type
// assertion) and calls to functions or methods named getScratch — the
// repo's blessed borrow-wrapper name. The wrappers themselves
// (functions named getScratch) are exempt: returning the fresh borrow
// is their job.
var Scratchescape = &Analyzer{
	Name:      "scratchescape",
	Directive: "scratchescape-ok",
	Doc: "forbid storing sync.Pool/getScratch borrows into struct fields, " +
		"composite literals, package variables, or returning them: pooled " +
		"scratch is only valid until the matching Put. Deliberate ownership " +
		"transfers carry //lint:scratchescape-ok <reason>.",
	Run: runScratchescape,
}

func runScratchescape(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "getScratch" {
				continue // the borrow wrapper itself must return the borrow
			}
			pass.checkScratchFunc(fd)
		}
	}
	return nil
}

func (p *Pass) checkScratchFunc(fd *ast.FuncDecl) {
	// Collect variables assigned from a borrow source.
	borrowed := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		if !p.isBorrowCall(as.Rhs[0]) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if v, ok := p.ObjectOf(id).(*types.Var); ok {
				borrowed[v] = true
			}
		}
		return true
	})
	if len(borrowed) == 0 {
		return
	}

	isBorrowedIdent := func(e ast.Expr) (*types.Var, bool) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil, false
		}
		v, ok := p.ObjectOf(id).(*types.Var)
		if !ok || !borrowed[v] {
			return nil, false
		}
		return v, true
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				if v, ok := isBorrowedIdent(res); ok {
					p.report(res.Pos(),
						"%s is borrowed from a scratch pool and must not be returned; "+
							"copy the data out or annotate //lint:scratchescape-ok <reason>", v.Name())
				}
			}
		case *ast.AssignStmt:
			if len(node.Lhs) != len(node.Rhs) {
				return true
			}
			for i := range node.Lhs {
				v, ok := isBorrowedIdent(node.Rhs[i])
				if !ok {
					continue
				}
				switch lhs := node.Lhs[i].(type) {
				case *ast.SelectorExpr:
					p.report(node.Rhs[i].Pos(),
						"%s is borrowed from a scratch pool and must not be stored into a field; "+
							"the pool will hand it to another borrower after Put", v.Name())
				case *ast.Ident:
					if obj, ok := p.ObjectOf(lhs).(*types.Var); ok && obj.Parent() == p.Pkg.Scope() {
						p.report(node.Rhs[i].Pos(),
							"%s is borrowed from a scratch pool and must not be stored into package variable %s",
							v.Name(), obj.Name())
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if v, ok := isBorrowedIdent(val); ok {
					p.report(val.Pos(),
						"%s is borrowed from a scratch pool and must not be stored into a composite literal", v.Name())
				}
			}
		}
		return true
	})
}

// isBorrowCall matches `pool.Get()` on a sync.Pool (through any
// unwrapping type assertion) and calls to get-scratch wrappers.
func (p *Pass) isBorrowCall(e ast.Expr) bool {
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := p.calleeObject(call)
	if obj == nil {
		return false
	}
	if obj.Name() == "getScratch" {
		return true
	}
	if obj.Name() == "Get" && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
		if fn, ok := obj.(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // sync.Pool.Get (sync has no other Get method)
			}
		}
	}
	return false
}
