// Package scratchescape exercises the scratchescape analyzer: values
// borrowed from a sync.Pool or a getScratch wrapper must not outlive
// the borrow window.
package scratchescape

import "sync"

var pool = sync.Pool{New: func() any { return new(buffer) }}

type buffer struct{ words []uint64 }

type holder struct{ scratch *buffer }

var leaked *buffer

// Flagged: returning a pooled borrow.
func Borrow() *buffer {
	b := pool.Get().(*buffer)
	return b // want `must not be returned`
}

// Flagged: storing a borrow into a struct field.
func (h *holder) Attach() {
	b := pool.Get().(*buffer)
	h.scratch = b // want `must not be stored into a field`
	pool.Put(b)
}

// Flagged: storing a borrow into a package variable.
func Leak() {
	b := pool.Get().(*buffer)
	leaked = b // want `package variable`
	pool.Put(b)
}

// Flagged: capturing a borrow in a composite literal.
func Wrap() {
	b := pool.Get().(*buffer)
	h := holder{scratch: b} // want `composite literal`
	_ = h
	pool.Put(b)
}

// Allowed: use confined to the borrow/Put window.
func Sum() int {
	b := pool.Get().(*buffer)
	defer pool.Put(b)
	n := 0
	for _, w := range b.words {
		n += int(w)
	}
	return n
}

// Allowed: the blessed wrapper returns its fresh borrow.
func getScratch() *buffer {
	b := pool.Get().(*buffer)
	return b
}

// Allowed: wrapper borrows are tracked too; the annotation records the
// deliberate ownership transfer.
func Handoff() *buffer {
	b := getScratch()
	//lint:scratchescape-ok fixture: caller assumes the Put obligation
	return b
}
