// Package broken deliberately violates multiple twovet invariants; the
// cmd/twovet meta-test asserts the multichecker exits non-zero on it.
package broken

import "time"

// Emit trips detorder (map range in a result path) and nowallclock
// (reading the clock).
func Emit(m map[string]int) (string, time.Time) {
	out := ""
	for k := range m {
		out += k
	}
	return out, time.Now()
}
