// Package ctxprobe exercises the ctxprobe analyzer on loops driving
// bitset kernels: a kernel loop needs a cancellation checkpoint.
package ctxprobe

import (
	"context"

	"twoview/internal/bitset"
	"twoview/internal/pool"
)

// Flagged: unbounded kernel loop with no cancellation checkpoint.
func Sum(sets []*bitset.Set, q *bitset.Set) int {
	total := 0
	for _, s := range sets { // want `without a cancellation checkpoint`
		total += bitset.AndCount(s, q)
	}
	return total
}

// Allowed: masked ctx probe inside the loop body.
func SumProbed(ctx context.Context, sets []*bitset.Set, q *bitset.Set) (int, error) {
	const ctxProbeMask = 1<<10 - 1
	total := 0
	for i, s := range sets {
		if i&ctxProbeMask == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		total += bitset.AndCount(s, q)
	}
	return total, nil
}

// Allowed: bounded loop justified by annotation.
func SumSmall(sets []*bitset.Set, q *bitset.Set) int {
	total := 0
	//lint:ctxprobe-ok fixture: bounded by construction
	for _, s := range sets {
		total += bitset.AndCount(s, q)
	}
	return total
}

// Flagged: the weighted-sum kernel is a striped-core entry point too.
func SumWeighted(sets []*bitset.Set, w []float64) float64 {
	total := 0.0
	for _, s := range sets { // want `without a cancellation checkpoint`
		total += bitset.WeightedSum(s, w)
	}
	return total
}

// Flagged: the shard-round shape without its probe — a loop submitting
// one pool phase per round; cancelling the caller would leave the
// rounds spinning and the workers owned.
func Rounds(p *pool.Pool[int], rounds, tasks int) {
	for r := 0; r < rounds; r++ { // want `without a cancellation checkpoint`
		p.Run(tasks, func(int, int) {})
	}
}

// Allowed: the supervised twin — each round's phase runs under a
// context-threading submission (the shard drivers' RunCtx-under-lease
// idiom), which is cancellation evidence by itself.
func RoundsLeased(ctx context.Context, p *pool.Pool[int], rounds, tasks int) error {
	for r := 0; r < rounds; r++ {
		if err := p.RunCtx(ctx, tasks, func(int, int) {}); err != nil {
			return err
		}
	}
	return nil
}

// Allowed: delegation — the serving-batch idiom, where each iteration
// threads the request context into a callee that owns the probing.
func SumDelegated(ctx context.Context, sets []*bitset.Set, q *bitset.Set) (int, error) {
	total := 0
	for _, s := range sets {
		total += bitset.AndCount(s, q)
		if err := checkpoint(ctx, total); err != nil {
			return 0, err
		}
	}
	return total, nil
}

func checkpoint(ctx context.Context, _ int) error { return ctx.Err() }

// Allowed: the same weighted-sum loop with a masked ctx probe.
func SumWeightedProbed(ctx context.Context, sets []*bitset.Set, w []float64) (float64, error) {
	const ctxProbeMask = 1<<10 - 1
	total := 0.0
	for i, s := range sets {
		if i&ctxProbeMask == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		total += bitset.WeightedSum(s, w)
	}
	return total, nil
}

// Flagged: the worker-daemon anti-pattern — a host loop scoring rounds
// without observing its incarnation context would keep computing for a
// coordinator that already replaced it.
func HostRounds(p *pool.Pool[int], rounds, tasks int) {
	for r := 0; r < rounds; r++ { // want `without a cancellation checkpoint`
		p.Run(tasks, func(int, int) {})
	}
}

// Allowed: the shardworker host idiom — every scoring phase runs under
// the incarnation's context (RunCtx under a lease), so cancellation is
// observed at phase granularity.
func HostRoundsLeased(ctx context.Context, p *pool.Pool[int], rounds, tasks int) error {
	for r := 0; r < rounds; r++ {
		if err := p.RunCtx(ctx, tasks, func(int, int) {}); err != nil {
			return err
		}
	}
	return nil
}
