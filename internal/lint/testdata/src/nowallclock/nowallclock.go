// Package nowallclock exercises the nowallclock analyzer: clock reads
// and math/rand imports are flagged in determinism-critical code.
package nowallclock

import (
	"math/rand" // want `math/rand in a determinism-critical package`
	"time"
)

// Flagged twice: reading the clock.
func Stamp() time.Duration {
	start := time.Now()      // want `time.Now in a determinism-critical package`
	return time.Since(start) // want `time.Since in a determinism-critical package`
}

func Draw() int { return rand.Intn(7) }

// Allowed: duration arithmetic without reading the clock.
func Budget(d time.Duration) time.Duration { return 2 * d }

// Allowed: observational site justified by annotation.
func Observe() time.Time {
	//lint:wallclock-ok fixture: observational metric only
	return time.Now()
}
