// Package nowallclock exercises the nowallclock analyzer: clock reads
// and math/rand imports are flagged in determinism-critical code.
package nowallclock

import (
	"math/rand" // want `math/rand in a determinism-critical package`
	"time"
)

// Flagged twice: reading the clock.
func Stamp() time.Duration {
	start := time.Now()      // want `time.Now in a determinism-critical package`
	return time.Since(start) // want `time.Since in a determinism-critical package`
}

func Draw() int { return rand.Intn(7) }

// Allowed: duration arithmetic without reading the clock.
func Budget(d time.Duration) time.Duration { return 2 * d }

// Allowed: observational site justified by annotation.
func Observe() time.Time {
	//lint:wallclock-ok fixture: observational metric only
	return time.Now()
}

// Flagged: a bare clock helper — the serving-layer idiom is the
// annotated twin below, one blessed helper per package.
func BareNow() time.Time {
	return time.Now() // want `time.Now in a determinism-critical package`
}

// Allowed: the server.now idiom, the package's single annotated read.
func ServingNow() time.Time {
	//lint:wallclock-ok fixture: serving timing is observational
	return time.Now()
}

// Flagged: a clock-read lease — deriving a shard-supervision deadline
// from the wall clock would make failure schedules (and therefore
// recovery statistics) machine- and load-dependent.
func LeaseDeadline(lease time.Duration) time.Time {
	return time.Now().Add(lease) // want `time.Now in a determinism-critical package`
}

// Allowed: the shard-supervisor idiom — the lease is a timer, re-armed
// while the round is incomplete; nothing ever reads the clock.
func LeaseTimer(lease time.Duration) *time.Timer { return time.NewTimer(lease) }

// Flagged: time.Until reads the clock just as much as time.Now does.
func Remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `time.Until in a determinism-critical package`
}

// Allowed: timer-based waiting never reads the wall clock.
func Waiter(d time.Duration) *time.Timer { return time.NewTimer(d) }

// Flagged: a wall-clock redial schedule — backoff derived from the
// current time makes connection-failure schedules machine-dependent.
func RedialAt(last time.Time, backoff time.Duration) bool {
	return time.Since(last) > backoff // want `time.Since in a determinism-critical package`
}

// Allowed: the TCP transport's idiom — deterministic doubling backoff
// waited out on a timer; no mining or recovery decision reads a clock.
func RedialBackoff(base time.Duration, attempt int) *time.Timer {
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
	}
	return time.NewTimer(d)
}
